/**
 * @file
 * §4.3 ablations:
 *
 *  (1) Per-CPU knode fast-path lists vs. kmap-only lookups. The
 *      paper reports the lists cut rbtree accesses by 54%.
 *  (2) Split rbtree-cache/rbtree-slab vs. a single per-knode tree.
 *      The paper measured ~10 memory references per traversal of a
 *      single big tree, motivating the split.
 *  (3) Per-CPU frame lists (Linux pcp lists) vs. buddy-only order-0
 *      allocation. The lists are the allocator default
 *      (TierManager::setUsePerCpuFrameLists); this section measures
 *      the buddy split/coalesce work they absorb.
 */

#include "bench/harness.hh"
#include "bench/parallel.hh"

using namespace kloc;
using namespace kloc::bench;

namespace {

struct LookupResult
{
    double hitRate = 0;
    uint64_t treeVisits = 0;
    Tick elapsed{};
};

/** Drive the knode lookup path like syscall-heavy file churn. */
LookupResult
driveLookups(const BenchConfig &config, bool use_per_cpu)
{
    TwoTierPlatform platform(twoTierConfig(config));
    System &sys = platform.sys();
    platform.applyStrategy(StrategyKind::Kloc);
    KlocManager &kloc = sys.kloc();
    kloc.setUsePerCpuLists(use_per_cpu);

    // A file population like RocksDB's: hundreds of knodes, zipfian
    // access concentrated per CPU (threads own hot file sets).
    constexpr unsigned kKnodes = 512;
    std::vector<Knode *> knodes;
    for (unsigned i = 0; i < kKnodes; ++i)
        knodes.push_back(kloc.mapKnode(1000 + i));

    ZipfianGenerator zipf(kKnodes, 0.99, 42);
    const uint64_t before_visits = kloc.treeNodesVisited();
    const Tick before = sys.machine().now();
    constexpr unsigned kLookups = 200000;
    for (unsigned i = 0; i < kLookups; ++i) {
        // Each CPU leans on its own hot subset, like per-thread fds.
        const unsigned cpu = i % sys.machine().cpuCount();
        sys.machine().setCurrentCpu(cpu);
        const uint64_t pick = (zipf.next() + cpu * 3) % kKnodes;
        Knode *knode = kloc.findKnode(1000 + pick);
        if (knode)
            kloc.markActive(knode);
    }
    LookupResult result;
    result.elapsed = sys.machine().now() - before;
    result.treeVisits = kloc.treeNodesVisited() - before_visits;
    const auto &stats = kloc.stats();
    result.hitRate = stats.perCpuHits + stats.perCpuMisses > 0
        ? static_cast<double>(stats.perCpuHits) /
          static_cast<double>(stats.perCpuHits + stats.perCpuMisses)
        : 0.0;
    for (Knode *knode : knodes)
        kloc.unmapKnode(knode);
    return result;
}

/** Measure per-knode object-tree traversal work, split vs merged. */
std::pair<double, double>
driveTreeShape(const BenchConfig &config, bool split)
{
    TwoTierPlatform platform(twoTierConfig(config));
    System &sys = platform.sys();
    platform.applyStrategy(StrategyKind::Kloc);
    KlocManager &kloc = sys.kloc();
    kloc.setSplitTrees(split);

    Knode *knode = kloc.mapKnode(77);
    // A big file's object population: cache pages + slab metadata.
    constexpr unsigned kObjects = 20000;
    std::vector<std::unique_ptr<KernelObject>> objects;
    const uint64_t before = kloc.treeNodesVisited();
    for (unsigned i = 0; i < kObjects; ++i) {
        const KobjKind kind = i % 2 == 0 ? KobjKind::PageCachePage
                                         : KobjKind::Extent;
        auto obj = std::make_unique<KernelObject>(kind);
        if (!sys.heap().allocBacking(*obj, true, knode->id))
            break;
        kloc.addObject(knode, obj.get());
        objects.push_back(std::move(obj));
    }
    const double insert_visits =
        static_cast<double>(kloc.treeNodesVisited() - before) /
        static_cast<double>(objects.size());
    const uint64_t before_remove = kloc.treeNodesVisited();
    for (auto &obj : objects) {
        kloc.removeObject(obj.get());
        sys.heap().freeBacking(*obj);
    }
    const double remove_visits =
        static_cast<double>(kloc.treeNodesVisited() - before_remove) /
        static_cast<double>(objects.size());
    kloc.unmapKnode(knode);
    return {insert_visits, remove_visits};
}

/** Outcome of one order-0 frame-churn run. */
struct FrameChurnResult
{
    uint64_t splits = 0;
    uint64_t coalesces = 0;
    uint64_t cached = 0;
};

/**
 * Drive kernel-style frame churn: every CPU alternates short-lived
 * order-0 allocations over a small live window — the pattern the
 * per-CPU frame lists exist to absorb. Counts the buddy
 * split/coalesce events that reach the tracer.
 */
FrameChurnResult
driveFrameChurn(const BenchConfig &config, bool use_lists)
{
    TwoTierPlatform platform(twoTierConfig(config));
    System &sys = platform.sys();
    sys.tiers().setUsePerCpuFrameLists(use_lists);
    sys.machine().tracer().setEnabled(true);

    const uint64_t ops = config.ops / 2;
    constexpr size_t kLiveWindow = 64;
    std::vector<Frame *> live;
    size_t next = 0;
    for (uint64_t i = 0; i < ops; ++i) {
        sys.machine().setCurrentCpu(
            static_cast<unsigned>(i % sys.machine().cpuCount()));
        Frame *frame = sys.tiers().alloc(0, ObjClass::App, true,
                                         {platform.fastTier()});
        if (frame == nullptr)
            continue;
        if (live.size() < kLiveWindow) {
            live.push_back(frame);
        } else {
            sys.tiers().free(live[next]);
            live[next] = frame;
            next = (next + 1) % kLiveWindow;
        }
    }
    FrameChurnResult result;
    result.cached = sys.tiers().tier(platform.fastTier()).pcpCached();
    for (Frame *frame : live)
        sys.tiers().free(frame);
    for (const TraceEvent &event : sys.machine().tracer().events()) {
        if (event.type == TraceEventType::BuddySplit)
            ++result.splits;
        else if (event.type == TraceEventType::BuddyCoalesce)
            ++result.coalesces;
    }
    return result;
}

} // namespace

int
main()
{
    const BenchConfig config = BenchConfig::fromEnv();

    // Six independent drivers; mixed result types, so slots + one
    // pool rather than a typed sweep().
    LookupResult with_lists, without;
    std::pair<double, double> split_shape, one_shape;
    FrameChurnResult pcp_frames, buddy_only;
    {
        RunPool pool(config.jobs);
        pool.submit([&] { with_lists = driveLookups(config, true); });
        pool.submit([&] { without = driveLookups(config, false); });
        pool.submit([&] { split_shape = driveTreeShape(config, true); });
        pool.submit([&] { one_shape = driveTreeShape(config, false); });
        pool.submit([&] { pcp_frames = driveFrameChurn(config, true); });
        pool.submit([&] { buddy_only = driveFrameChurn(config, false); });
        pool.wait();
    }

    JsonReport report("ablation_percpu", config.outdir);
    section("Ablation: per-CPU knode fast-path lists (§4.3)");
    std::printf("%-18s %10s %14s %12s\n", "config", "hit rate",
                "tree visits", "time (ms)");
    std::printf("%-18s %9.1f%% %14llu %12.2f\n", "per-cpu lists",
                100.0 * with_lists.hitRate,
                (unsigned long long)with_lists.treeVisits,
                static_cast<double>(with_lists.elapsed) / kMillisecond);
    std::printf("%-18s %9.1f%% %14llu %12.2f\n", "kmap only", 0.0,
                (unsigned long long)without.treeVisits,
                static_cast<double>(without.elapsed) / kMillisecond);
    if (without.treeVisits > 0) {
        std::printf("-> per-CPU lists cut rbtree accesses by %.0f%% "
                    "(paper: 54%%)\n",
                    100.0 *
                        (1.0 - static_cast<double>(with_lists.treeVisits) /
                               static_cast<double>(without.treeVisits)));
    }
    std::printf("   (the real-world win is avoided kmap *contention*; "
                "this single-threaded\n    model only surfaces the "
                "access-count reduction, not the lock scaling)\n");

    section("Ablation: split rbtree-cache/rbtree-slab vs single tree");
    const auto [split_ins, split_rem] = split_shape;
    const auto [one_ins, one_rem] = one_shape;
    std::printf("%-18s %16s %16s\n", "config", "insert visits/op",
                "remove visits/op");
    std::printf("%-18s %16.1f %16.1f\n", "split trees", split_ins,
                split_rem);
    std::printf("%-18s %16.1f %16.1f\n", "single tree", one_ins, one_rem);
    std::printf("-> paper: a single tree costs ~10 references per "
                "traversal; the split roughly halves the depth\n");

    section("Ablation: per-CPU frame lists vs buddy-only order-0");
    std::printf("%-18s %14s %14s %12s\n", "config", "buddy splits",
                "coalesces", "pcp cached");
    std::printf("%-18s %14llu %14llu %12llu\n", "pcp frame lists",
                (unsigned long long)pcp_frames.splits,
                (unsigned long long)pcp_frames.coalesces,
                (unsigned long long)pcp_frames.cached);
    std::printf("%-18s %14llu %14llu %12llu\n", "buddy only",
                (unsigned long long)buddy_only.splits,
                (unsigned long long)buddy_only.coalesces,
                (unsigned long long)buddy_only.cached);
    if (buddy_only.splits + buddy_only.coalesces > 0) {
        const double with_ops = static_cast<double>(pcp_frames.splits +
                                                    pcp_frames.coalesces);
        const double without_ops = static_cast<double>(
            buddy_only.splits + buddy_only.coalesces);
        std::printf("-> frame lists absorb %.0f%% of buddy "
                    "split/coalesce work under churn\n",
                    100.0 * (1.0 - with_ops / without_ops));
    }

    report.add("percpu_lists.hit_rate", with_lists.hitRate, "ratio",
               "higher", true);
    report.add("percpu_lists.tree_visits",
               static_cast<double>(with_lists.treeVisits), "visits",
               "lower", true);
    report.add("kmap_only.tree_visits",
               static_cast<double>(without.treeVisits), "visits", "lower",
               true);
    report.add("split_trees.insert_visits_per_op", split_ins, "visits",
               "lower", true);
    report.add("single_tree.insert_visits_per_op", one_ins, "visits",
               "lower", true);
    report.add("pcp_frames.buddy_splits",
               static_cast<double>(pcp_frames.splits), "events", "lower",
               true);
    report.add("pcp_frames.buddy_coalesces",
               static_cast<double>(pcp_frames.coalesces), "events",
               "lower", true);
    report.add("buddy_only.buddy_splits",
               static_cast<double>(buddy_only.splits), "events", "lower",
               true);
    report.write();
    return 0;
}
