/**
 * @file
 * §7.3 ablation: KLOCs and I/O prefetching.
 *
 * Runs RocksDB with the adaptive readahead on and off under Naive
 * and under KLOCs. The paper: prefetching amplifies fast-memory
 * pollution under Naive/Nimble (prefetched-but-cold pages linger),
 * while KLOCs can identify the kernel objects tied to cold pages
 * and demote them — readahead + KLOCs improves RocksDB by ~1.26x.
 */

#include "bench/harness.hh"
#include "bench/parallel.hh"

using namespace kloc;
using namespace kloc::bench;

namespace {

double
run(const BenchConfig &config, const std::string &workload_name,
    StrategyKind kind, bool readahead)
{
    // Memory-scarce configuration: total memory below the dataset so
    // cold reads exist and prefetching has something to hide.
    TwoTierPlatform::Config platform_config = twoTierConfig(config);
    platform_config.fastCapacity = 4 * kGiB;
    platform_config.slowCapacity = 16 * kGiB;
    platform_config.system.fs.readaheadEnabled = readahead;
    TwoTierPlatform platform(platform_config);
    System &sys = platform.sys();
    platform.applyStrategy(kind);
    sys.fs().startDaemons();
    auto workload = makeWorkload(workload_name, workloadConfig(config));
    const WorkloadResult result = runMeasured(sys, *workload);
    workload->teardown(sys);
    return result.throughput();
}

} // namespace

int
main()
{
    const BenchConfig config = BenchConfig::fromEnv();
    const std::vector<std::string> workloads = {"rocksdb", "filebench"};
    const std::vector<StrategyKind> strategies = {
        StrategyKind::Naive, StrategyKind::NimblePlusPlus,
        StrategyKind::Kloc};

    // (workload, strategy, readahead) grid in print order; readahead
    // off is the even slot of each pair.
    const size_t runs = workloads.size() * strategies.size() * 2;
    const auto throughputs = sweep<double>(config, runs, [&](size_t i) {
        const std::string &workload =
            workloads[i / (strategies.size() * 2)];
        const StrategyKind kind =
            strategies[(i / 2) % strategies.size()];
        return run(config, workload, kind, i % 2 == 1);
    });

    JsonReport report("ablation_prefetch", config.outdir);
    for (size_t w = 0; w < workloads.size(); ++w) {
        const std::string &workload = workloads[w];
        std::printf("\n==== Ablation: readahead x strategy (%s, "
                    "memory-scarce) ====\n", workload.c_str());
        std::printf("%-18s %14s %14s %10s\n", "strategy", "no prefetch",
                    "prefetch", "gain");
        for (size_t s = 0; s < strategies.size(); ++s) {
            const StrategyKind kind = strategies[s];
            const size_t base = (w * strategies.size() + s) * 2;
            const double off = throughputs[base];
            const double on = throughputs[base + 1];
            std::printf("%-18s %14.0f %14.0f %9.2fx\n",
                        strategyName(kind), off, on,
                        off > 0 ? on / off : 1.0);
            report.add(workload + "." + strategyName(kind) +
                           ".readahead_gain",
                       off > 0 ? on / off : 1.0, "x", "higher", true);
        }
    }
    report.write();
    std::printf("\npaper: prefetching helps KLOCs most (~1.26x on "
                "RocksDB) because cold prefetched pages are demoted "
                "promptly\n");
    return 0;
}
