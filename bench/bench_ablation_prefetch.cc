/**
 * @file
 * §7.3 ablation: KLOCs and I/O prefetching.
 *
 * Runs RocksDB with the adaptive readahead on and off under Naive
 * and under KLOCs. The paper: prefetching amplifies fast-memory
 * pollution under Naive/Nimble (prefetched-but-cold pages linger),
 * while KLOCs can identify the kernel objects tied to cold pages
 * and demote them — readahead + KLOCs improves RocksDB by ~1.26x.
 */

#include "bench/harness.hh"

using namespace kloc;
using namespace kloc::bench;

namespace {

double
run(const std::string &workload_name, StrategyKind kind, bool readahead)
{
    // Memory-scarce configuration: total memory below the dataset so
    // cold reads exist and prefetching has something to hide.
    TwoTierPlatform::Config platform_config = twoTierConfig();
    platform_config.fastCapacity = 4 * kGiB;
    platform_config.slowCapacity = 16 * kGiB;
    platform_config.system.fs.readaheadEnabled = readahead;
    TwoTierPlatform platform(platform_config);
    System &sys = platform.sys();
    platform.applyStrategy(kind);
    sys.fs().startDaemons();
    auto workload = makeWorkload(workload_name, workloadConfig());
    const WorkloadResult result = runMeasured(sys, *workload);
    workload->teardown(sys);
    return result.throughput();
}

} // namespace

int
main()
{
    JsonReport report("ablation_prefetch");
    for (const char *workload : {"rocksdb", "filebench"}) {
        std::printf("\n==== Ablation: readahead x strategy (%s, "
                    "memory-scarce) ====\n", workload);
        std::printf("%-18s %14s %14s %10s\n", "strategy", "no prefetch",
                    "prefetch", "gain");
        for (const StrategyKind kind :
             {StrategyKind::Naive, StrategyKind::NimblePlusPlus,
              StrategyKind::Kloc}) {
            const double off = run(workload, kind, false);
            const double on = run(workload, kind, true);
            std::printf("%-18s %14.0f %14.0f %9.2fx\n",
                        strategyName(kind), off, on,
                        off > 0 ? on / off : 1.0);
            std::fflush(stdout);
            report.add(std::string(workload) + "." +
                           strategyName(kind) + ".readahead_gain",
                       off > 0 ? on / off : 1.0, "x", "higher", true);
        }
    }
    report.write();
    std::printf("\npaper: prefetching helps KLOCs most (~1.26x on "
                "RocksDB) because cold prefetched pages are demoted "
                "promptly\n");
    return 0;
}
