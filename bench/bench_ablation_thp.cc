/**
 * @file
 * §5 future-work hypothesis: KLOCs with transparent huge pages.
 *
 * The paper's multi-page-size discussion predicts higher gains with
 * THP because direct placement avoids splitting/migrating huge
 * pages. This bench backs the app arena with 2 MB pages and compares
 * base-page vs huge-page runs under Nimble++ and KLOCs.
 */

#include "bench/harness.hh"
#include "bench/parallel.hh"

using namespace kloc;
using namespace kloc::bench;

namespace {

double
run(const BenchConfig &bench_config, const std::string &workload_name,
    StrategyKind kind, bool huge)
{
    TwoTierPlatform platform(twoTierConfig(bench_config));
    System &sys = platform.sys();
    platform.applyStrategy(kind);
    sys.fs().startDaemons();
    WorkloadConfig config = workloadConfig(bench_config);
    config.hugePages = huge;
    auto workload = makeWorkload(workload_name, config);
    const WorkloadResult result = runMeasured(sys, *workload);
    workload->teardown(sys);
    return result.throughput();
}

} // namespace

int
main()
{
    const BenchConfig config = BenchConfig::fromEnv();
    const std::vector<std::string> workloads = {"redis", "cassandra"};
    const std::vector<StrategyKind> strategies = {
        StrategyKind::NimblePlusPlus, StrategyKind::Kloc};

    // (workload, strategy, page size) grid in print order; huge pages
    // are the odd slot of each pair.
    const size_t runs = workloads.size() * strategies.size() * 2;
    const auto throughputs = sweep<double>(config, runs, [&](size_t i) {
        const std::string &workload =
            workloads[i / (strategies.size() * 2)];
        const StrategyKind kind =
            strategies[(i / 2) % strategies.size()];
        return run(config, workload, kind, i % 2 == 1);
    });

    section("Extension: transparent huge pages for the app arena (§5)");
    std::printf("%-11s %-18s %12s %12s %8s\n", "workload", "strategy",
                "4KB pages", "2MB pages", "gain");
    JsonReport report("ablation_thp", config.outdir);
    for (size_t w = 0; w < workloads.size(); ++w) {
        for (size_t s = 0; s < strategies.size(); ++s) {
            const StrategyKind kind = strategies[s];
            const size_t slot = (w * strategies.size() + s) * 2;
            const double base = throughputs[slot];
            const double huge = throughputs[slot + 1];
            std::printf("%-11s %-18s %12.0f %12.0f %7.2fx\n",
                        workloads[w].c_str(), strategyName(kind), base,
                        huge, base > 0 ? huge / base : 1.0);
            report.add(workloads[w] + "." + strategyName(kind) +
                           ".thp_gain",
                       base > 0 ? huge / base : 1.0, "x", "higher",
                       true);
        }
    }
    report.write();
    std::printf("\npaper (§5) hypothesised KLOCs gains with THP; in "
                "this model huge pages\n*reduce* tiering effectiveness: "
                "2 MB blocks hold hot and cold data\nhostage together "
                "and migrate at 512x the cost — the classic huge-page/"
                "\ntiering granularity tension (one reason Nimble "
                "exists).\n");
    return 0;
}
