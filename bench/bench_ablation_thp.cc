/**
 * @file
 * §5 future-work hypothesis: KLOCs with transparent huge pages.
 *
 * The paper's multi-page-size discussion predicts higher gains with
 * THP because direct placement avoids splitting/migrating huge
 * pages. This bench backs the app arena with 2 MB pages and compares
 * base-page vs huge-page runs under Nimble++ and KLOCs.
 */

#include "bench/harness.hh"

using namespace kloc;
using namespace kloc::bench;

namespace {

double
run(const std::string &workload_name, StrategyKind kind, bool huge)
{
    TwoTierPlatform platform(twoTierConfig());
    System &sys = platform.sys();
    platform.applyStrategy(kind);
    sys.fs().startDaemons();
    WorkloadConfig config = workloadConfig();
    config.hugePages = huge;
    auto workload = makeWorkload(workload_name, config);
    const WorkloadResult result = runMeasured(sys, *workload);
    workload->teardown(sys);
    return result.throughput();
}

} // namespace

int
main()
{
    section("Extension: transparent huge pages for the app arena (§5)");
    std::printf("%-11s %-18s %12s %12s %8s\n", "workload", "strategy",
                "4KB pages", "2MB pages", "gain");
    JsonReport report("ablation_thp");
    for (const char *workload : {"redis", "cassandra"}) {
        for (const StrategyKind kind :
             {StrategyKind::NimblePlusPlus, StrategyKind::Kloc}) {
            const double base = run(workload, kind, false);
            const double huge = run(workload, kind, true);
            std::printf("%-11s %-18s %12.0f %12.0f %7.2fx\n", workload,
                        strategyName(kind), base, huge,
                        base > 0 ? huge / base : 1.0);
            std::fflush(stdout);
            report.add(std::string(workload) + "." +
                           strategyName(kind) + ".thp_gain",
                       base > 0 ? huge / base : 1.0, "x", "higher",
                       true);
        }
    }
    report.write();
    std::printf("\npaper (§5) hypothesised KLOCs gains with THP; in "
                "this model huge pages\n*reduce* tiering effectiveness: "
                "2 MB blocks hold hot and cold data\nhostage together "
                "and migrate at 512x the cost — the classic huge-page/"
                "\ntiering granularity tension (one reason Nimble "
                "exists).\n");
    return 0;
}
