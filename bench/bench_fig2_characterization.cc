/**
 * @file
 * Figure 2: prevalence of kernel objects.
 *
 *  2a: per-workload breakdown of allocated pages by class (app vs
 *      page cache vs FS slab vs network), with raw page counts.
 *  2b: app-vs-OS allocation split for Small (10 GB) and Large
 *      (40 GB) inputs.
 *  2c: share of memory *references* to kernel objects vs user data.
 *  2d: lifetimes of application pages vs slab objects vs page-cache
 *      pages (the paper: app pages minutes, slab ~36 ms, cache
 *      ~160 ms).
 *
 * Characterisation runs on the stock greedy (Naive) configuration:
 * it measures the workloads, not a tiering policy. All runs (the
 * large/small grid plus the RocksDB lifetime-detail run) execute on
 * the RunPool; tables print from the ordered results.
 */

#include "bench/harness.hh"
#include "bench/parallel.hh"

using namespace kloc;
using namespace kloc::bench;

namespace {

struct Characterization
{
    uint64_t pagesByClass[kNumObjClasses] = {};
    uint64_t kernelRefs = 0;
    uint64_t userRefs = 0;
    double appLifetimeMs = 0;
    double slabLifetimeMs = 0;
    double cacheLifetimeMs = 0;
};

/** One row of the Fig. 2d lifetime-distribution detail table. */
struct LifetimeDetailRow
{
    const char *label = "";
    double p50Ms = 0;
    double p99Ms = 0;
    uint64_t count = 0;
};

Characterization
characterize(const BenchConfig &bench_config,
             const std::string &workload_name, bool small_input)
{
    TwoTierPlatform platform(twoTierConfig(bench_config));
    System &sys = platform.sys();
    platform.applyStrategy(StrategyKind::Naive);
    sys.fs().startDaemons();

    WorkloadConfig config = workloadConfig(bench_config);
    config.smallInput = small_input;
    auto workload = makeWorkload(workload_name, config);
    runMeasured(sys, *workload);
    workload->teardown(sys);

    Characterization result;
    result.pagesByClass[static_cast<unsigned>(ObjClass::App)] =
        sys.heap().cumulativeAppPages();
    for (unsigned c = 1; c < kNumObjClasses; ++c) {
        result.pagesByClass[c] =
            sys.tiers().cumulativeAllocPages(static_cast<ObjClass>(c));
    }
    result.kernelRefs = sys.machine().kernelRefs();
    result.userRefs = sys.machine().userRefs();
    result.appLifetimeMs =
        sys.tiers().lifetimeHist(ObjClass::App).dist().mean() /
        kMillisecond;
    // Slab object lifetime: average across the slab-allocated kinds.
    double slab_sum = 0;
    uint64_t slab_count = 0;
    for (unsigned k = 0; k < kNumKobjKinds; ++k) {
        const auto kind = static_cast<KobjKind>(k);
        if (!kobjIsSlab(kind))
            continue;
        const auto &hist = sys.heap().objLifetimeHist(kind);
        slab_sum += hist.dist().sum();
        slab_count += hist.dist().count();
    }
    result.slabLifetimeMs =
        slab_count ? slab_sum / static_cast<double>(slab_count) /
                     kMillisecond
                   : 0;
    result.cacheLifetimeMs =
        sys.heap().objLifetimeHist(KobjKind::PageCachePage).dist().mean() /
        kMillisecond;
    return result;
}

/** The Fig. 2d detail run: RocksDB per-kind lifetime percentiles. */
std::vector<LifetimeDetailRow>
lifetimeDetail(const BenchConfig &bench_config)
{
    TwoTierPlatform platform(twoTierConfig(bench_config));
    System &sys = platform.sys();
    platform.applyStrategy(StrategyKind::Naive);
    sys.fs().startDaemons();
    auto workload = makeWorkload("rocksdb", workloadConfig(bench_config));
    runMeasured(sys, *workload);
    workload->teardown(sys);
    const struct
    {
        const char *label;
        KobjKind kind;
    } kinds[] = {{"journal_record", KobjKind::JournalRecord},
                 {"bio", KobjKind::Bio},
                 {"dentry", KobjKind::Dentry},
                 {"radix_node", KobjKind::RadixNode},
                 {"page_cache", KobjKind::PageCachePage}};
    std::vector<LifetimeDetailRow> rows;
    for (const auto &row : kinds) {
        const Histogram &hist = sys.heap().objLifetimeHist(row.kind);
        if (hist.dist().count() == 0)
            continue;
        LifetimeDetailRow out;
        out.label = row.label;
        out.p50Ms = static_cast<double>(hist.percentileUpperBound(0.5)) /
                    kMillisecond;
        out.p99Ms = static_cast<double>(hist.percentileUpperBound(0.99)) /
                    kMillisecond;
        out.count = hist.dist().count();
        rows.push_back(out);
    }
    return rows;
}

} // namespace

int
main()
{
    const BenchConfig config = BenchConfig::fromEnv();
    JsonReport report("fig2_characterization", config.outdir);
    const std::vector<std::string> names = workloadNames();

    // Run grid: per workload a large and a small characterisation,
    // plus one trailing RocksDB lifetime-detail run. Everything is
    // independent, so the whole set shares one pool.
    std::vector<std::pair<std::string, Characterization>> large(
        names.size());
    std::vector<std::pair<std::string, Characterization>> small(
        names.size());
    std::vector<LifetimeDetailRow> detail;
    {
        RunPool pool(config.jobs);
        for (size_t i = 0; i < names.size(); ++i) {
            pool.submit([&, i] {
                large[i] = {names[i], characterize(config, names[i],
                                                   false)};
            });
            pool.submit([&, i] {
                small[i] = {names[i], characterize(config, names[i],
                                                   true)};
            });
        }
        pool.submit([&] { detail = lifetimeDetail(config); });
        pool.wait();
    }

    section("Figure 2a: page allocations by class (Large inputs)");
    std::printf("%-11s %10s %10s %8s %8s %8s %8s | %s\n", "workload",
                "app", "pagecache", "journal", "fs_slab", "sock_buf",
                "block_io", "OS share");
    for (auto &[name, c] : large) {
        uint64_t total = 0, kernel = 0;
        for (unsigned i = 0; i < kNumObjClasses; ++i) {
            total += c.pagesByClass[i];
            if (isKernelClass(static_cast<ObjClass>(i)))
                kernel += c.pagesByClass[i];
        }
        const double os_share =
            total ? 100.0 * static_cast<double>(kernel) /
                    static_cast<double>(total)
                  : 0.0;
        std::printf(
            "%-11s %10llu %10llu %8llu %8llu %8llu %8llu | %5.1f%%\n",
            name.c_str(),
            (unsigned long long)c.pagesByClass[0],
            (unsigned long long)c.pagesByClass[1],
            (unsigned long long)c.pagesByClass[2],
            (unsigned long long)c.pagesByClass[3],
            (unsigned long long)c.pagesByClass[4],
            (unsigned long long)c.pagesByClass[5],
            os_share);
        report.add(name + ".os_page_share_pct", os_share, "%", "higher",
                   true);
        report.add(name + ".slab_lifetime_ms", c.slabLifetimeMs, "ms",
                   "lower", true);
        report.add(name + ".cache_lifetime_ms", c.cacheLifetimeMs, "ms",
                   "lower", true);
    }

    section("Figure 2b: OS share of page allocations, Small vs Large");
    std::printf("%-11s %12s %12s\n", "workload", "small(10GB)",
                "large(40GB)");
    for (size_t i = 0; i < large.size(); ++i) {
        auto os_share = [](const Characterization &c) {
            uint64_t total = 0, kernel = 0;
            for (unsigned j = 0; j < kNumObjClasses; ++j) {
                total += c.pagesByClass[j];
                if (isKernelClass(static_cast<ObjClass>(j)))
                    kernel += c.pagesByClass[j];
            }
            return total ? 100.0 * static_cast<double>(kernel) /
                           static_cast<double>(total)
                         : 0.0;
        };
        std::printf("%-11s %11.1f%% %11.1f%%\n",
                    large[i].first.c_str(), os_share(small[i].second),
                    os_share(large[i].second));
    }

    section("Figure 2c: share of memory references to kernel objects");
    std::printf("%-11s %10s\n", "workload", "OS refs");
    for (auto &[name, c] : large) {
        const uint64_t total = c.kernelRefs + c.userRefs;
        const double ref_share =
            total ? 100.0 * static_cast<double>(c.kernelRefs) /
                    static_cast<double>(total)
                  : 0.0;
        std::printf("%-11s %9.1f%%\n", name.c_str(), ref_share);
        report.add(name + ".kernel_ref_share_pct", ref_share, "%",
                   "higher", true);
    }

    section("Figure 2d: mean object lifetimes (ms, log-scale in paper)");
    std::printf("%-11s %12s %12s %12s\n", "workload", "app pages",
                "slab objs", "cache pages");
    for (auto &[name, c] : large) {
        std::printf("%-11s %12.1f %12.2f %12.2f\n", name.c_str(),
                    c.appLifetimeMs, c.slabLifetimeMs,
                    c.cacheLifetimeMs);
    }
    std::printf("\nlifetime distribution detail (RocksDB, ms):\n");
    std::printf("  %-16s %10s %10s %10s\n", "kind", "p50", "p99",
                "count");
    for (const LifetimeDetailRow &row : detail) {
        std::printf("  %-16s %10.2f %10.2f %10llu\n", row.label,
                    row.p50Ms, row.p99Ms,
                    (unsigned long long)row.count);
    }
    std::printf("\nexpected shape: slab objects live ~ms, cache pages "
                "somewhat longer, app pages orders of magnitude longer\n");
    report.write();
    return 0;
}
