/**
 * @file
 * Figure 4: overall performance on the two-tier memory platform.
 *
 * For every workload, runs all Table 5 strategies plus the AllFast /
 * AllSlow bounds and prints speedup relative to AllSlow — the same
 * series as the paper's Fig. 4 bars.
 *
 * Expected shape (paper): KLOCs outperforms Naive/Nimble/Nimble++
 * everywhere except Cassandra (where it ties Nimble++); AllFast is
 * the upper bound.
 *
 * The (workload x strategy) grid runs on the RunPool (see
 * bench/parallel.hh); rows are printed and reported from the ordered
 * result vector, so the JSON artifact is identical at any KLOC_JOBS.
 */

#include <algorithm>
#include <ctime>

#include "bench/harness.hh"
#include "bench/parallel.hh"

using namespace kloc;
using namespace kloc::bench;

namespace {

/**
 * Process-CPU milliseconds of one (workload, Kloc) run. CPU time
 * rather than wall clock: on shared (or single-core) runners, wall
 * time includes whatever the host steals, and the trace-overhead
 * delta is a few percent — well under that noise. Runs serially
 * (after the pool has drained): a timing probe must not share the
 * machine with concurrent runs.
 */
double
cpuMs(const BenchConfig &config, const std::string &workload, bool trace)
{
    timespec start{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &start);
    runTwoTier(workload, StrategyKind::Kloc, twoTierConfig(config),
               workloadConfig(config), trace);
    timespec end{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &end);
    return 1e3 * (static_cast<double>(end.tv_sec - start.tv_sec)) +
           1e-6 * (static_cast<double>(end.tv_nsec - start.tv_nsec));
}

} // namespace

int
main()
{
    const BenchConfig config = BenchConfig::fromEnv();
    JsonReport report("fig4_twotier", config.outdir);
    const std::vector<StrategyKind> strategies = {
        StrategyKind::AllSlow,         StrategyKind::Naive,
        StrategyKind::Nimble,          StrategyKind::NimblePlusPlus,
        StrategyKind::KlocNoMigration, StrategyKind::Kloc,
        StrategyKind::AllFast,
    };
    const std::vector<std::string> workloads = workloadNames();

    // Workload-major, strategy-minor: the order the table prints in.
    const size_t runs = workloads.size() * strategies.size();
    const auto outcomes = sweep<RunOutcome>(
        config, runs, [&](size_t i) {
            const std::string &workload = workloads[i / strategies.size()];
            const StrategyKind kind = strategies[i % strategies.size()];
            return runTwoTier(workload, kind, twoTierConfig(config),
                              workloadConfig(config), config.trace);
        });

    section("Figure 4: two-tier speedup vs All Slow Mem");
    std::printf("platform: fast %llu MiB @ 1:%u bandwidth ratio, "
                "%llu ops/run, scale 1:%u\n",
                static_cast<unsigned long long>(
                    twoTierConfig(config).fastCapacity / config.scale /
                    kMiB),
                twoTierConfig(config).bandwidthRatio,
                static_cast<unsigned long long>(config.ops),
                config.scale);

    std::printf("\n%-11s", "workload");
    for (const StrategyKind kind : strategies)
        std::printf(" %17s", strategyName(kind));
    std::printf("\n");

    for (size_t w = 0; w < workloads.size(); ++w) {
        const std::string &workload = workloads[w];
        std::printf("%-11s", workload.c_str());
        double all_slow = 0.0;
        for (size_t s = 0; s < strategies.size(); ++s) {
            const StrategyKind kind = strategies[s];
            const RunOutcome &outcome =
                outcomes[w * strategies.size() + s];
            if (kind == StrategyKind::AllSlow)
                all_slow = outcome.throughput;
            std::printf(" %9.0f (%4.2fx)", outcome.throughput,
                        all_slow > 0 ? outcome.throughput / all_slow
                                     : 1.0);
            // Simulated-time throughput is machine-independent, so
            // it gates regressions; so do migration rates.
            report.add(workload + "." + strategyName(kind) +
                           ".ops_per_s",
                       outcome.throughput, "ops/s", "higher", true);
            if (kind == StrategyKind::Kloc && all_slow > 0) {
                report.add(workload + ".klocs.speedup_vs_all_slow",
                           outcome.throughput / all_slow, "x", "higher",
                           true);
                report.add(workload + ".klocs.migrated_pages",
                           static_cast<double>(
                               outcome.migration.migratedPages),
                           "pages", "higher", true);
            }
        }
        std::printf("\n");
    }
    std::printf("\nvalues: ops/s (speedup vs all_slow)\n");

    // --trace overhead: the same run, stopwatch-timed, with the event
    // ring off and on. CPU time varies by host and compiler, so it
    // never gates — it exists for before/after comparison of the
    // emit fast path.
    section("--trace overhead (process CPU time, klocs strategy)");
    const std::string overhead_wl = workloads.front();
    cpuMs(config, overhead_wl, false);  // warm-up
    // Run off/on back-to-back pairs and take the median per-pair
    // overhead: the two halves of a pair share the host's frequency
    // regime, so drift across the binary's lifetime cancels, and the
    // median discards pairs a regime change split down the middle.
    std::vector<double> off_samples, on_samples, pct_samples;
    for (int rep = 0; rep < 5; ++rep) {
        const double off = cpuMs(config, overhead_wl, false);
        const double on = cpuMs(config, overhead_wl, true);
        off_samples.push_back(off);
        on_samples.push_back(on);
        pct_samples.push_back(off > 0 ? 100.0 * (on - off) / off : 0.0);
    }
    const auto median = [](std::vector<double> v) {
        std::sort(v.begin(), v.end());
        return v[v.size() / 2];
    };
    const double off_ms = median(off_samples);
    const double on_ms = median(on_samples);
    const double overhead_pct = median(pct_samples);
    std::printf("%s: trace off %.1f ms, trace on %.1f ms "
                "(overhead %.1f%%)\n",
                overhead_wl.c_str(), off_ms, on_ms, overhead_pct);
    report.add("trace_overhead.cpu_ms_off", off_ms, "ms", "lower",
               false);
    report.add("trace_overhead.cpu_ms_on", on_ms, "ms", "lower", false);
    report.add("trace_overhead.pct", overhead_pct, "%", "lower", false);

    report.write();
    return 0;
}
