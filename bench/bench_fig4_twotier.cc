/**
 * @file
 * Figure 4: overall performance on the two-tier memory platform.
 *
 * For every workload, runs all Table 5 strategies plus the AllFast /
 * AllSlow bounds and prints speedup relative to AllSlow — the same
 * series as the paper's Fig. 4 bars.
 *
 * Expected shape (paper): KLOCs outperforms Naive/Nimble/Nimble++
 * everywhere except Cassandra (where it ties Nimble++); AllFast is
 * the upper bound.
 */

#include "bench/harness.hh"

using namespace kloc;
using namespace kloc::bench;

int
main()
{
    const std::vector<StrategyKind> strategies = {
        StrategyKind::AllSlow,         StrategyKind::Naive,
        StrategyKind::Nimble,          StrategyKind::NimblePlusPlus,
        StrategyKind::KlocNoMigration, StrategyKind::Kloc,
        StrategyKind::AllFast,
    };

    section("Figure 4: two-tier speedup vs All Slow Mem");
    std::printf("platform: fast %llu MiB @ 1:%u bandwidth ratio, "
                "%llu ops/run, scale 1:%u\n",
                static_cast<unsigned long long>(
                    twoTierConfig().fastCapacity / defaultScale() / kMiB),
                twoTierConfig().bandwidthRatio,
                static_cast<unsigned long long>(defaultOps()),
                defaultScale());

    std::printf("\n%-11s", "workload");
    for (const StrategyKind kind : strategies)
        std::printf(" %17s", strategyName(kind));
    std::printf("\n");

    for (const std::string &workload : workloadNames()) {
        std::printf("%-11s", workload.c_str());
        std::fflush(stdout);
        double all_slow = 0.0;
        for (const StrategyKind kind : strategies) {
            const RunOutcome outcome = runTwoTier(
                workload, kind, twoTierConfig(), workloadConfig());
            if (kind == StrategyKind::AllSlow)
                all_slow = outcome.throughput;
            std::printf(" %9.0f (%4.2fx)", outcome.throughput,
                        all_slow > 0 ? outcome.throughput / all_slow
                                     : 1.0);
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    std::printf("\nvalues: ops/s (speedup vs all_slow)\n");
    return 0;
}
