/**
 * @file
 * Figure 4: overall performance on the two-tier memory platform.
 *
 * For every workload, runs all Table 5 strategies plus the AllFast /
 * AllSlow bounds and prints speedup relative to AllSlow — the same
 * series as the paper's Fig. 4 bars.
 *
 * Expected shape (paper): KLOCs outperforms Naive/Nimble/Nimble++
 * everywhere except Cassandra (where it ties Nimble++); AllFast is
 * the upper bound.
 */

#include <algorithm>
#include <ctime>

#include "bench/harness.hh"

using namespace kloc;
using namespace kloc::bench;

namespace {

/**
 * Process-CPU milliseconds of one (workload, Kloc) run. CPU time
 * rather than wall clock: on shared (or single-core) runners, wall
 * time includes whatever the host steals, and the trace-overhead
 * delta is a few percent — well under that noise.
 */
double
cpuMs(const std::string &workload, bool trace)
{
    timespec start{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &start);
    runTwoTier(workload, StrategyKind::Kloc, twoTierConfig(),
               workloadConfig(), trace);
    timespec end{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &end);
    return 1e3 * (static_cast<double>(end.tv_sec - start.tv_sec)) +
           1e-6 * (static_cast<double>(end.tv_nsec - start.tv_nsec));
}

} // namespace

int
main()
{
    JsonReport report("fig4_twotier");
    const std::vector<StrategyKind> strategies = {
        StrategyKind::AllSlow,         StrategyKind::Naive,
        StrategyKind::Nimble,          StrategyKind::NimblePlusPlus,
        StrategyKind::KlocNoMigration, StrategyKind::Kloc,
        StrategyKind::AllFast,
    };

    section("Figure 4: two-tier speedup vs All Slow Mem");
    std::printf("platform: fast %llu MiB @ 1:%u bandwidth ratio, "
                "%llu ops/run, scale 1:%u\n",
                static_cast<unsigned long long>(
                    twoTierConfig().fastCapacity / defaultScale() / kMiB),
                twoTierConfig().bandwidthRatio,
                static_cast<unsigned long long>(defaultOps()),
                defaultScale());

    std::printf("\n%-11s", "workload");
    for (const StrategyKind kind : strategies)
        std::printf(" %17s", strategyName(kind));
    std::printf("\n");

    for (const std::string &workload : workloadNames()) {
        std::printf("%-11s", workload.c_str());
        std::fflush(stdout);
        double all_slow = 0.0;
        for (const StrategyKind kind : strategies) {
            const RunOutcome outcome = runTwoTier(
                workload, kind, twoTierConfig(), workloadConfig());
            if (kind == StrategyKind::AllSlow)
                all_slow = outcome.throughput;
            std::printf(" %9.0f (%4.2fx)", outcome.throughput,
                        all_slow > 0 ? outcome.throughput / all_slow
                                     : 1.0);
            std::fflush(stdout);
            // Simulated-time throughput is machine-independent, so
            // it gates regressions; so do migration rates.
            report.add(workload + "." + strategyName(kind) +
                           ".ops_per_s",
                       outcome.throughput, "ops/s", "higher", true);
            if (kind == StrategyKind::Kloc && all_slow > 0) {
                report.add(workload + ".klocs.speedup_vs_all_slow",
                           outcome.throughput / all_slow, "x", "higher",
                           true);
                report.add(workload + ".klocs.migrated_pages",
                           static_cast<double>(
                               outcome.migration.migratedPages),
                           "pages", "higher", true);
            }
        }
        std::printf("\n");
    }
    std::printf("\nvalues: ops/s (speedup vs all_slow)\n");

    // --trace overhead: the same run, stopwatch-timed, with the event
    // ring off and on. CPU time varies by host and compiler, so it
    // never gates — it exists for before/after comparison of the
    // emit fast path.
    section("--trace overhead (process CPU time, klocs strategy)");
    const std::string overhead_wl = workloadNames().front();
    cpuMs(overhead_wl, false);  // warm-up
    // Run off/on back-to-back pairs and take the median per-pair
    // overhead: the two halves of a pair share the host's frequency
    // regime, so drift across the binary's lifetime cancels, and the
    // median discards pairs a regime change split down the middle.
    std::vector<double> off_samples, on_samples, pct_samples;
    for (int rep = 0; rep < 5; ++rep) {
        const double off = cpuMs(overhead_wl, false);
        const double on = cpuMs(overhead_wl, true);
        off_samples.push_back(off);
        on_samples.push_back(on);
        pct_samples.push_back(off > 0 ? 100.0 * (on - off) / off : 0.0);
    }
    const auto median = [](std::vector<double> v) {
        std::sort(v.begin(), v.end());
        return v[v.size() / 2];
    };
    const double off_ms = median(off_samples);
    const double on_ms = median(on_samples);
    const double overhead_pct = median(pct_samples);
    std::printf("%s: trace off %.1f ms, trace on %.1f ms "
                "(overhead %.1f%%)\n",
                overhead_wl.c_str(), off_ms, on_ms, overhead_pct);
    report.add("trace_overhead.cpu_ms_off", off_ms, "ms", "lower",
               false);
    report.add("trace_overhead.cpu_ms_on", on_ms, "ms", "lower", false);
    report.add("trace_overhead.pct", overhead_pct, "%", "lower", false);

    report.write();
    return 0;
}
