/**
 * @file
 * Figure 5a: the Optane Memory-Mode platform.
 *
 * Protocol (§6.2): a streaming interferer loads socket 0; the
 * workload sets up while scheduled there; the scheduler then moves
 * the task to socket 1 and each policy decides what follows it:
 *
 *   all-remote  — Static: nothing migrates (baseline, speedup 1.0)
 *   autonuma    — stock AutoNUMA: application pages follow
 *   nimble      — AutoNUMA with parallel page copy
 *   klocs       — AutoNUMA + kernel objects via knodes
 *   ideal-local — data was local to socket 1 from the start
 *
 * Paper: ideal 1.6x, KLOCs ~1.5x over AutoNUMA-baseline terms
 * (KLOCs 1.4x over Nimble).
 */

#include "bench/harness.hh"
#include "bench/parallel.hh"

using namespace kloc;
using namespace kloc::bench;

namespace {

double
runOptane(const BenchConfig &bench_config,
          const std::string &workload_name, AutoNumaPolicy::Mode mode,
          bool ideal_local)
{
    OptanePlatform::Config config;
    config.scale = bench_config.scale;
    OptanePlatform platform(config);
    System &sys = platform.sys();
    platform.setInterference(true);
    platform.applyPolicy(mode);
    sys.fs().startDaemons();

    WorkloadConfig wl_config = workloadConfig(bench_config);
    wl_config.cpus = platform.taskCpus();

    // Setup runs on the interfered socket (or directly on the quiet
    // one for the ideal-local bound).
    platform.moveTaskToSocket(ideal_local ? 1 : 0);
    wl_config.cpus = platform.taskCpus();
    auto workload = makeWorkload(workload_name, wl_config);
    workload->setup(sys);
    sys.fs().syncAll();

    // The scheduler migrates the task away from the interference.
    platform.moveTaskToSocket(1);
    workload->setCpus(platform.taskCpus());
    sys.machine().charge(kQuiesceWindow);

    // Warm-up pass: the paper measures long-running steady state, so
    // give each policy its convergence window before measuring.
    workload->run(sys);
    const WorkloadResult result = workload->run(sys);
    workload->teardown(sys);
    return result.throughput();
}

} // namespace

int
main()
{
    const BenchConfig config = BenchConfig::fromEnv();
    struct Row
    {
        const char *label;
        AutoNumaPolicy::Mode mode;
        bool idealLocal;
    };
    const std::vector<Row> rows = {
        {"all-remote", AutoNumaPolicy::Mode::Static, false},
        {"autonuma", AutoNumaPolicy::Mode::AutoNuma, false},
        {"nimble", AutoNumaPolicy::Mode::NimbleApp, false},
        {"klocs", AutoNumaPolicy::Mode::Kloc, false},
        {"ideal-local", AutoNumaPolicy::Mode::Static, true},
    };
    const std::vector<std::string> workloads = workloadNames();

    // Workload-major, policy-minor: the order the table prints in.
    const size_t runs = workloads.size() * rows.size();
    const auto throughputs = sweep<double>(config, runs, [&](size_t i) {
        const std::string &workload = workloads[i / rows.size()];
        const Row &row = rows[i % rows.size()];
        return runOptane(config, workload, row.mode, row.idealLocal);
    });

    section("Figure 5a: Optane Memory Mode, speedup vs all-remote");
    std::printf("%-11s", "workload");
    for (const Row &row : rows)
        std::printf(" %16s", row.label);
    std::printf("\n");

    JsonReport report("fig5a_optane", config.outdir);
    for (size_t w = 0; w < workloads.size(); ++w) {
        const std::string &workload = workloads[w];
        std::printf("%-11s", workload.c_str());
        double baseline = 0;
        for (size_t r = 0; r < rows.size(); ++r) {
            const Row &row = rows[r];
            const double throughput = throughputs[w * rows.size() + r];
            if (baseline == 0)
                baseline = throughput;
            std::printf(" %8.0f (%4.2fx)", throughput,
                        baseline > 0 ? throughput / baseline : 1.0);
            report.add(workload + "." + row.label + ".ops_per_s",
                       throughput, "ops/s", "higher", true);
        }
        std::printf("\n");
    }
    std::printf("\nvalues: ops/s (speedup vs all-remote)\n");
    report.write();
    return 0;
}
