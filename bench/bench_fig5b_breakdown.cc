/**
 * @file
 * Figure 5b: where RocksDB's pages land and how many migrate.
 *
 * For each strategy, reports pages allocated in slow memory for
 * page-cache and slab objects, plus fast->slow (demote) and
 * slow->fast (promote) migration counts. The paper's claim: KLOCs
 * allocates in slow memory far less than Naive/Nimble/Nimble++ and
 * needs fewer migrations than Nimble++ while migrating the *right*
 * pages (demotions dominate, ~88%).
 */

#include "bench/harness.hh"
#include "bench/parallel.hh"

using namespace kloc;
using namespace kloc::bench;

int
main()
{
    const BenchConfig config = BenchConfig::fromEnv();
    const std::vector<StrategyKind> strategies = {
        StrategyKind::Naive,
        StrategyKind::Nimble,
        StrategyKind::NimblePlusPlus,
        StrategyKind::KlocNoMigration,
        StrategyKind::Kloc,
    };

    const auto outcomes = sweep<RunOutcome>(
        config, strategies.size(), [&](size_t i) {
            return runTwoTier("rocksdb", strategies[i],
                              twoTierConfig(config),
                              workloadConfig(config));
        });

    section("Figure 5b: RocksDB slow-memory allocations and migrations");
    std::printf("%-18s %14s %12s %10s %10s %9s\n", "strategy",
                "slow pagecache", "slow slab", "demoted", "promoted",
                "demote%");
    JsonReport report("fig5b_breakdown", config.outdir);
    for (size_t s = 0; s < strategies.size(); ++s) {
        const StrategyKind kind = strategies[s];
        const RunOutcome &outcome = outcomes[s];
        const uint64_t total = outcome.migration.demotedPages +
                               outcome.migration.promotedPages;
        std::printf("%-18s %14llu %12llu %10llu %10llu %8.1f%%\n",
                    strategyName(kind),
                    (unsigned long long)outcome.slowPageCacheAllocPages,
                    (unsigned long long)outcome.slowSlabAllocPages,
                    (unsigned long long)outcome.migration.demotedPages,
                    (unsigned long long)outcome.migration.promotedPages,
                    total ? 100.0 *
                            static_cast<double>(
                                outcome.migration.demotedPages) /
                            static_cast<double>(total)
                          : 0.0);
        const std::string prefix =
            std::string("rocksdb.") + strategyName(kind);
        report.add(prefix + ".slow_pagecache_pages",
                   static_cast<double>(outcome.slowPageCacheAllocPages),
                   "pages", "lower", true);
        report.add(prefix + ".slow_slab_pages",
                   static_cast<double>(outcome.slowSlabAllocPages),
                   "pages", "lower", true);
        report.add(prefix + ".demoted_pages",
                   static_cast<double>(outcome.migration.demotedPages),
                   "pages", "lower", true);
        report.add(prefix + ".promoted_pages",
                   static_cast<double>(outcome.migration.promotedPages),
                   "pages", "lower", true);
    }
    report.write();
    return 0;
}
