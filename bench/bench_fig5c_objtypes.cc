/**
 * @file
 * Figure 5c: contribution of each kernel-object type to KLOCs'
 * performance.
 *
 * Starting from app-pages-only tiering (every kernel class pinned to
 * fast memory), KLOC management is enabled incrementally: +page
 * cache, +journals, +slab objects, +socket buffers, +block I/O.
 * Classes excluded from KLOCs stay pinned in fast memory.
 *
 * Paper: most workloads gain from page-cache coverage; Redis also
 * needs socket buffers; full coverage is best.
 */

#include "bench/harness.hh"

using namespace kloc;
using namespace kloc::bench;

namespace {

double
runWithMask(const std::string &workload_name, uint32_t mask)
{
    TwoTierPlatform platform(twoTierConfig());
    System &sys = platform.sys();
    platform.applyStrategy(StrategyKind::Kloc);
    sys.kloc().setManagedClasses(mask);
    sys.fs().startDaemons();
    auto workload = makeWorkload(workload_name, workloadConfig());
    const WorkloadResult result = runMeasured(sys, *workload);
    workload->teardown(sys);
    return result.throughput();
}

constexpr uint32_t
bit(ObjClass cls)
{
    return 1u << static_cast<unsigned>(cls);
}

} // namespace

int
main()
{
    struct Step
    {
        const char *label;
        uint32_t mask;
    };
    // Cumulative inclusion order from the paper (§7.3). KlocMeta is
    // always manageable (it is KLOC's own bookkeeping).
    const uint32_t meta = bit(ObjClass::KlocMeta);
    std::vector<Step> steps;
    uint32_t mask = meta;
    steps.push_back({"app-only", mask});
    mask |= bit(ObjClass::PageCache);
    steps.push_back({"+pagecache", mask});
    mask |= bit(ObjClass::Journal);
    steps.push_back({"+journal", mask});
    mask |= bit(ObjClass::FsSlab);
    steps.push_back({"+slab", mask});
    mask |= bit(ObjClass::SockBuf);
    steps.push_back({"+sockbuf", mask});
    mask |= bit(ObjClass::BlockIo);
    steps.push_back({"+blockio", mask});

    section("Figure 5c: incremental kernel-object coverage (KLOCs)");
    std::printf("%-11s", "workload");
    for (const Step &step : steps)
        std::printf(" %12s", step.label);
    std::printf("\n");

    JsonReport report("fig5c_objtypes");
    for (const std::string &workload : workloadNames()) {
        std::printf("%-11s", workload.c_str());
        std::fflush(stdout);
        double base = 0;
        for (const Step &step : steps) {
            const double throughput = runWithMask(workload, step.mask);
            if (base == 0)
                base = throughput;
            std::printf("       %4.2fx", base > 0 ? throughput / base
                                                  : 1.0);
            std::fflush(stdout);
            report.add(workload + "." + step.label + ".ops_per_s",
                       throughput, "ops/s", "higher", true);
        }
        std::printf("\n");
    }
    std::printf("\nvalues: speedup vs app-only tiering\n");
    report.write();
    return 0;
}
