/**
 * @file
 * Figure 5c: contribution of each kernel-object type to KLOCs'
 * performance.
 *
 * Starting from app-pages-only tiering (every kernel class pinned to
 * fast memory), KLOC management is enabled incrementally: +page
 * cache, +journals, +slab objects, +socket buffers, +block I/O.
 * Classes excluded from KLOCs stay pinned in fast memory.
 *
 * Paper: most workloads gain from page-cache coverage; Redis also
 * needs socket buffers; full coverage is best.
 */

#include "bench/harness.hh"
#include "bench/parallel.hh"

using namespace kloc;
using namespace kloc::bench;

namespace {

double
runWithMask(const BenchConfig &config, const std::string &workload_name,
            uint32_t mask)
{
    TwoTierPlatform platform(twoTierConfig(config));
    System &sys = platform.sys();
    platform.applyStrategy(StrategyKind::Kloc);
    sys.kloc().setManagedClasses(mask);
    sys.fs().startDaemons();
    auto workload = makeWorkload(workload_name, workloadConfig(config));
    const WorkloadResult result = runMeasured(sys, *workload);
    workload->teardown(sys);
    return result.throughput();
}

constexpr uint32_t
bit(ObjClass cls)
{
    return 1u << static_cast<unsigned>(cls);
}

} // namespace

int
main()
{
    const BenchConfig config = BenchConfig::fromEnv();
    struct Step
    {
        const char *label;
        uint32_t mask;
    };
    // Cumulative inclusion order from the paper (§7.3). KlocMeta is
    // always manageable (it is KLOC's own bookkeeping).
    const uint32_t meta = bit(ObjClass::KlocMeta);
    std::vector<Step> steps;
    uint32_t mask = meta;
    steps.push_back({"app-only", mask});
    mask |= bit(ObjClass::PageCache);
    steps.push_back({"+pagecache", mask});
    mask |= bit(ObjClass::Journal);
    steps.push_back({"+journal", mask});
    mask |= bit(ObjClass::FsSlab);
    steps.push_back({"+slab", mask});
    mask |= bit(ObjClass::SockBuf);
    steps.push_back({"+sockbuf", mask});
    mask |= bit(ObjClass::BlockIo);
    steps.push_back({"+blockio", mask});

    const std::vector<std::string> workloads = workloadNames();

    // Workload-major, step-minor: the order the table prints in.
    const size_t runs = workloads.size() * steps.size();
    const auto throughputs = sweep<double>(config, runs, [&](size_t i) {
        const std::string &workload = workloads[i / steps.size()];
        const Step &step = steps[i % steps.size()];
        return runWithMask(config, workload, step.mask);
    });

    section("Figure 5c: incremental kernel-object coverage (KLOCs)");
    std::printf("%-11s", "workload");
    for (const Step &step : steps)
        std::printf(" %12s", step.label);
    std::printf("\n");

    JsonReport report("fig5c_objtypes", config.outdir);
    for (size_t w = 0; w < workloads.size(); ++w) {
        const std::string &workload = workloads[w];
        std::printf("%-11s", workload.c_str());
        double base = 0;
        for (size_t s = 0; s < steps.size(); ++s) {
            const double throughput = throughputs[w * steps.size() + s];
            if (base == 0)
                base = throughput;
            std::printf("       %4.2fx", base > 0 ? throughput / base
                                                  : 1.0);
            report.add(workload + "." + steps[s].label + ".ops_per_s",
                       throughput, "ops/s", "higher", true);
        }
        std::printf("\n");
    }
    std::printf("\nvalues: speedup vs app-only tiering\n");
    report.write();
    return 0;
}
