/**
 * @file
 * Figure 6: sensitivity to fast-memory capacity and bandwidth ratio.
 *
 * Sweeps fast capacity {4, 8, 32 GB} x fast:slow bandwidth {1:8,
 * 1:4, 1:2}; per cell, reports the average speedup vs AllSlow across
 * workloads for Nimble, Nimble++ and KLOCs, with min/max variance.
 *
 * Paper: KLOCs wins across all cells, gains grow with the bandwidth
 * differential and shrink as fast capacity covers the footprint.
 *
 * The AllSlow baseline is deterministic, so each (cell, workload)
 * pair runs it exactly once and every strategy in that cell shares
 * the result — the serial version re-ran it per strategy, tripling
 * the baseline cost for identical numbers. The Nomad and Jenga
 * competitors (extension) ride the same shared baselines: adding a
 * policy adds only its own runs, never a baseline re-run.
 *
 * Every run executes the workload's ShardContext port on the epoch
 * engine (KLOC_SHARDS picks the worker-thread count; results are
 * worker-count-invariant), and the sweep carries its own fig9-style
 * determinism gates: one representative cell replays at worker
 * counts {1, 2, 4, 8} with zero-drift and trace byte-identity gated,
 * plus the engine's barrier-overhead counters as non-gating
 * `shard.*` metrics.
 */

#include "bench/harness.hh"
#include "bench/parallel.hh"

using namespace kloc;
using namespace kloc::bench;

int
main()
{
    const BenchConfig config = BenchConfig::fromEnv();
    // The paper sweeps {4, 8, 32} GB; the 64 GB row is added here to
    // show convergence once the fast tier covers the whole cached
    // footprint (our simulated footprint is the full dataset, so the
    // paper's 32 GB convergence point lands one step later).
    const std::vector<Bytes> capacities = {4 * kGiB, 8 * kGiB, 32 * kGiB,
                                           64 * kGiB};
    const std::vector<unsigned> ratios = {8, 4, 2};
    const std::vector<std::string> strategies = {
        "nimble", "nimble++", "klocs", "nomad", "jenga",
    };
    // The full 5-workload sweep is expensive; Fig. 6 averages over
    // the evaluation's core set (§6.1 drops Spark anyway).
    const std::vector<std::string> workloads = {"rocksdb", "redis",
                                                "filebench", "cassandra"};

    // Per (capacity, ratio) cell: one AllSlow baseline per workload,
    // then strategy x workload runs. All cells share one pool.
    const size_t cells = capacities.size() * ratios.size();
    const size_t baseline_runs = workloads.size();
    const size_t strategy_runs = strategies.size() * workloads.size();
    const size_t per_cell = baseline_runs + strategy_runs;
    const auto throughputs = sweep<double>(
        config, cells * per_cell, [&](size_t i) {
            const size_t cell = i / per_cell;
            const size_t slot = i % per_cell;
            TwoTierPlatform::Config platform_config = twoTierConfig(config);
            platform_config.fastCapacity = capacities[cell / ratios.size()];
            platform_config.bandwidthRatio = ratios[cell % ratios.size()];
            std::string policy = "all_slow";
            size_t workload;
            if (slot < baseline_runs) {
                workload = slot;
            } else {
                policy = strategies[(slot - baseline_runs) / workloads.size()];
                workload = (slot - baseline_runs) % workloads.size();
            }
            return runTwoTierPolicySharded(workloads[workload], policy,
                                           platform_config,
                                           workloadConfig(config),
                                           /*workers=*/0)
                .outcome.throughput;
        });

    section("Figure 6: capacity x bandwidth sensitivity "
            "(speedup vs all_slow, avg[min..max] across workloads)");
    std::printf("%-14s %6s", "config", "ratio");
    for (const std::string &policy : strategies)
        std::printf(" %24s", policy.c_str());
    std::printf("\n");

    JsonReport report("fig6_sensitivity", config.outdir);
    for (size_t c = 0; c < capacities.size(); ++c) {
        for (size_t r = 0; r < ratios.size(); ++r) {
            const Bytes capacity = capacities[c];
            const unsigned ratio = ratios[r];
            const size_t cell_base = (c * ratios.size() + r) * per_cell;

            std::printf("fast %3lluGB     1:%-4u",
                        (unsigned long long)(capacity / kGiB), ratio);
            for (size_t s = 0; s < strategies.size(); ++s) {
                double sum = 0, lo = 1e30, hi = 0;
                for (size_t w = 0; w < workloads.size(); ++w) {
                    const double slow_tp = throughputs[cell_base + w];
                    const double tp =
                        throughputs[cell_base + baseline_runs +
                                    s * workloads.size() + w];
                    const double speedup =
                        slow_tp > 0 ? tp / slow_tp : 1.0;
                    sum += speedup;
                    lo = std::min(lo, speedup);
                    hi = std::max(hi, speedup);
                }
                const double avg =
                    sum / static_cast<double>(workloads.size());
                std::printf("   %5.2fx [%4.2f..%4.2f]", avg, lo, hi);
                char cell[64];
                std::snprintf(cell, sizeof(cell),
                              "fast%llugb_ratio%u.%s.avg_speedup",
                              (unsigned long long)(capacity / kGiB),
                              ratio, strategies[s].c_str());
                report.add(cell, avg, "x", "higher", true);
            }
            std::printf("\n");
        }
    }
    // Determinism gates on one representative cell (fast 8 GB, 1:8,
    // klocs, rocksdb): worker counts must not move any metric.
    TwoTierPlatform::Config gate_config = twoTierConfig(config);
    gate_config.fastCapacity = 8 * kGiB;
    gate_config.bandwidthRatio = 8;
    const bool gates_ok = addShardGates(report, "rocksdb", "klocs",
                                        gate_config,
                                        workloadConfig(config));

    report.write();
    return gates_ok ? 0 : 1;
}
