/**
 * @file
 * Figure 6: sensitivity to fast-memory capacity and bandwidth ratio.
 *
 * Sweeps fast capacity {4, 8, 32 GB} x fast:slow bandwidth {1:8,
 * 1:4, 1:2}; per cell, reports the average speedup vs AllSlow across
 * workloads for Nimble, Nimble++ and KLOCs, with min/max variance.
 *
 * Paper: KLOCs wins across all cells, gains grow with the bandwidth
 * differential and shrink as fast capacity covers the footprint.
 */

#include "bench/harness.hh"

using namespace kloc;
using namespace kloc::bench;

int
main()
{
    // The paper sweeps {4, 8, 32} GB; the 64 GB row is added here to
    // show convergence once the fast tier covers the whole cached
    // footprint (our simulated footprint is the full dataset, so the
    // paper's 32 GB convergence point lands one step later).
    const std::vector<Bytes> capacities = {4 * kGiB, 8 * kGiB, 32 * kGiB,
                                           64 * kGiB};
    const std::vector<unsigned> ratios = {8, 4, 2};
    const std::vector<StrategyKind> strategies = {
        StrategyKind::Nimble,
        StrategyKind::NimblePlusPlus,
        StrategyKind::Kloc,
    };
    // The full 5-workload sweep is expensive; Fig. 6 averages over
    // the evaluation's core set (§6.1 drops Spark anyway).
    const std::vector<std::string> workloads = {"rocksdb", "redis",
                                                "filebench", "cassandra"};

    section("Figure 6: capacity x bandwidth sensitivity "
            "(speedup vs all_slow, avg[min..max] across workloads)");
    std::printf("%-14s %6s", "config", "ratio");
    for (const StrategyKind kind : strategies)
        std::printf(" %24s", strategyName(kind));
    std::printf("\n");

    JsonReport report("fig6_sensitivity");
    for (const Bytes capacity : capacities) {
        for (const unsigned ratio : ratios) {
            TwoTierPlatform::Config platform_config = twoTierConfig();
            platform_config.fastCapacity = capacity;
            platform_config.bandwidthRatio = ratio;

            std::printf("fast %3lluGB     1:%-4u",
                        (unsigned long long)(capacity / kGiB), ratio);
            std::fflush(stdout);
            for (const StrategyKind kind : strategies) {
                double sum = 0, lo = 1e30, hi = 0;
                for (const std::string &workload : workloads) {
                    const RunOutcome slow_run =
                        runTwoTier(workload, StrategyKind::AllSlow,
                                   platform_config, workloadConfig());
                    const RunOutcome run = runTwoTier(
                        workload, kind, platform_config,
                        workloadConfig());
                    const double speedup = slow_run.throughput > 0
                        ? run.throughput / slow_run.throughput
                        : 1.0;
                    sum += speedup;
                    lo = std::min(lo, speedup);
                    hi = std::max(hi, speedup);
                }
                const double avg =
                    sum / static_cast<double>(workloads.size());
                std::printf("   %5.2fx [%4.2f..%4.2f]", avg, lo, hi);
                std::fflush(stdout);
                char cell[64];
                std::snprintf(cell, sizeof(cell),
                              "fast%llugb_ratio%u.%s.avg_speedup",
                              (unsigned long long)(capacity / kGiB),
                              ratio, strategyName(kind));
                report.add(cell, avg, "x", "higher", true);
            }
            std::printf("\n");
        }
    }
    report.write();
    return 0;
}
