/**
 * @file
 * Figure 7 (extension): thrash resistance of the policy roster.
 *
 * Runs the adversarial `thrash` workload — a working set that
 * oscillates deterministically around fast-tier capacity — under the
 * six dynamic policies (Naive, AutoNUMA, KLOCs, Nomad, Jenga,
 * KLOC+Nomad) plus the AllSlow floor, and reports speedup vs AllSlow
 * together with the thrash diagnostics: transactional-copy abort
 * counts (Nomad), shadow free demotions (Nomad), and the adapted
 * promotion batch (Jenga).
 *
 * Expectation: eager promotion (Naive/AutoNUMA) pays full migration
 * cost on every wave crest; Nomad recovers most of the demotion cost
 * through clean shadow copies; Jenga throttles promotion when the
 * reuse histogram collapses. Both should beat the eager baselines.
 *
 * The AllSlow floor is deterministic and shared by every speedup,
 * so it runs exactly once (the Fig. 6 dedup pattern).
 *
 * Runs execute thrash's ShardContext port on the epoch engine, with
 * fig9-style determinism gates (zero metric drift and trace
 * byte-identity across worker counts {1, 2, 4, 8}) and the engine's
 * barrier-overhead counters reported as non-gating `shard.*`
 * metrics.
 */

#include "bench/harness.hh"
#include "bench/parallel.hh"

using namespace kloc;
using namespace kloc::bench;

int
main()
{
    const BenchConfig config = BenchConfig::fromEnv();
    const std::vector<std::string> &policies = conformancePolicyNames();

    // Slot 0 is the shared AllSlow baseline; slots 1..N the policies.
    const auto outcomes = sweep<RunOutcome>(
        config, 1 + policies.size(), [&](size_t i) {
            const std::string &policy =
                i == 0 ? std::string("all_slow") : policies[i - 1];
            return runTwoTierPolicySharded("thrash", policy,
                                           twoTierConfig(config),
                                           workloadConfig(config),
                                           /*workers=*/0)
                .outcome;
        });

    const double slow_tp = outcomes[0].throughput;

    section("Figure 7: thrash-adversarial policy comparison "
            "(speedup vs all_slow)");
    std::printf("%-16s %10s %8s %10s %10s %10s %8s\n", "policy",
                "ops/s", "speedup", "txn_abort", "shadow_free",
                "migrated", "batch");

    JsonReport report("fig7_policies", config.outdir);
    for (size_t p = 0; p < policies.size(); ++p) {
        const RunOutcome &out = outcomes[1 + p];
        const double speedup =
            slow_tp > 0 ? out.throughput / slow_tp : 1.0;
        const MigrationStats &mig = out.migration;
        const uint64_t aborts = mig.txnAbortedWrite +
                                mig.txnAbortedNoSpace +
                                mig.txnAbortedBlocked;
        std::printf("%-16s %10.0f %7.2fx %10llu %10llu %10llu %8llu\n",
                    policies[p].c_str(), out.throughput, speedup,
                    (unsigned long long)aborts,
                    (unsigned long long)mig.shadowFreeDemotions,
                    (unsigned long long)mig.migratedPages,
                    (unsigned long long)out.finalPromoteBatch);

        const std::string prefix = "thrash." + policies[p];
        report.add(prefix + ".ops_per_s", out.throughput, "ops/s",
                   "higher", true);
        report.add(prefix + ".speedup", speedup, "x", "higher", true);
        // Diagnostics: deterministic, but not success metrics.
        report.add(prefix + ".txn_aborts",
                   static_cast<double>(aborts), "count", "lower", false);
        report.add(prefix + ".shadow_free_demotions",
                   static_cast<double>(mig.shadowFreeDemotions), "count",
                   "higher", false);
        if (out.rateAdaptations > 0) {
            report.add(prefix + ".final_promote_batch",
                       static_cast<double>(out.finalPromoteBatch),
                       "pages", "lower", false);
            report.add(prefix + ".rate_adaptations",
                       static_cast<double>(out.rateAdaptations), "count",
                       "higher", false);
        }
    }

    // Determinism gates: the adversarial scenario under the headline
    // policy must not move with the worker count.
    const bool gates_ok = addShardGates(report, "thrash", "klocs",
                                        twoTierConfig(config),
                                        workloadConfig(config));

    report.write();
    return gates_ok ? 0 : 1;
}
