/**
 * @file
 * Figure 8 (extension): graceful degradation under memory errors.
 *
 * Runs the rocksdb workload under the KLOCs and Nomad policies while
 * an escalating hwpoison load fires — per-access/scan/copy poison
 * probabilities plus scheduled poison_storm bursts on the fast tier —
 * and reports throughput at each error level together with the
 * containment counters: frames poisoned, recoveries (shadow +
 * reread), data losses, and pages quarantined.
 *
 * Expectation: throughput declines *monotonically* with the error
 * rate (each poisoned frame permanently quarantines capacity and the
 * recovery ladder charges copy/reread time) but never collapses —
 * containment converts uncorrectable errors into capacity loss, not
 * failure. Nomad's shadows additionally convert a share of the
 * poisonings into free recoveries; the `recovered` column shows it.
 *
 * Error levels are deterministic: probabilities and storm sizes scale
 * linearly with the level, all under the fixed fault seed, so the
 * sweep is reproducible and pool-order independent.
 */

#include "bench/harness.hh"
#include "bench/parallel.hh"

using namespace kloc;
using namespace kloc::bench;

namespace {

/** One cell: policy × error level, shared-nothing. */
struct DegradationOutcome
{
    RunOutcome run;
    PoisonStats poison;
    uint64_t quarantined = 0;
    int fastHealth = 0;
    int slowHealth = 0;
};

std::string
faultSpecFor(unsigned level)
{
    if (level == 0)
        return {};
    const auto scaled = [level](double base) {
        return std::to_string(base * level);
    };
    return "seed 7\n"
           "frame_poison_access prob " + scaled(1e-5) + "\n"
           "frame_poison_scan prob " + scaled(2e-5) + "\n"
           "frame_poison_copy prob " + scaled(5e-5) + "\n"
           "poison_storm at 5000000 tier 0 frames " +
           std::to_string(4 * level) + " repeat 2 every 20000000\n";
}

DegradationOutcome
runCell(const std::string &policy, unsigned level,
        TwoTierPlatform::Config platform_config,
        WorkloadConfig workload_config)
{
    TwoTierPlatform platform(platform_config);
    System &sys = platform.sys();
    platform.applyPolicyByName(policy);

    const std::string spec_text = faultSpecFor(level);
    if (!spec_text.empty()) {
        FaultSpec spec;
        std::string err;
        if (!FaultSpec::parse(spec_text, spec, &err)) {
            std::fprintf(stderr, "bad fault spec: %s\n", err.c_str());
            std::abort();
        }
        sys.machine().faults().configure(spec);
        sys.migrator().scheduleTierEvents();
    }

    sys.fs().startDaemons();
    auto workload = makeWorkload("rocksdb", workload_config);
    const WorkloadResult result = runMeasured(sys, *workload);

    DegradationOutcome out;
    out.run.throughput = result.throughput();
    out.run.result = result;
    out.run.migration = sys.migrator().stats();
    out.poison = sys.migrator().poisonStats();
    out.quarantined = sys.tiers().quarantinedPages();
    out.fastHealth =
        static_cast<int>(sys.tiers().health(platform.fastTier()));
    out.slowHealth =
        static_cast<int>(sys.tiers().health(platform.slowTier()));
    workload->teardown(sys);
    return out;
}

} // namespace

int
main()
{
    const BenchConfig config = BenchConfig::fromEnv();
    const std::vector<std::string> policies = {"klocs", "nomad"};
    const std::vector<unsigned> levels = {0, 1, 2, 4, 8};

    const auto outcomes = sweep<DegradationOutcome>(
        config, policies.size() * levels.size(), [&](size_t i) {
            const std::string &policy = policies[i / levels.size()];
            const unsigned level = levels[i % levels.size()];
            return runCell(policy, level, twoTierConfig(config),
                           workloadConfig(config));
        });

    section("Figure 8: throughput under escalating memory errors");
    std::printf("%-8s %6s %10s %8s %9s %10s %9s %11s\n", "policy",
                "level", "ops/s", "vs_clean", "poisoned", "recovered",
                "data_loss", "quarantined");

    JsonReport report("fig8_degradation", config.outdir);
    for (size_t p = 0; p < policies.size(); ++p) {
        const double clean =
            outcomes[p * levels.size()].run.throughput;
        for (size_t l = 0; l < levels.size(); ++l) {
            const DegradationOutcome &out = outcomes[p * levels.size() + l];
            const double ratio =
                clean > 0 ? out.run.throughput / clean : 1.0;
            const uint64_t recovered = out.poison.recoveredShadow +
                                       out.poison.recoveredReread;
            std::printf("%-8s %6u %10.0f %7.3fx %9llu %10llu %9llu "
                        "%11llu\n",
                        policies[p].c_str(), levels[l],
                        out.run.throughput, ratio,
                        (unsigned long long)out.poison.poisonedFrames,
                        (unsigned long long)recovered,
                        (unsigned long long)out.poison.dataLoss,
                        (unsigned long long)out.quarantined);

            const std::string prefix = "degradation." + policies[p] +
                                       ".l" + std::to_string(levels[l]);
            report.add(prefix + ".ops_per_s", out.run.throughput,
                       "ops/s", "higher", true);
            report.add(prefix + ".vs_clean", ratio, "x", "higher",
                       false);
            report.add(prefix + ".poisoned_frames",
                       static_cast<double>(out.poison.poisonedFrames),
                       "count", "lower", false);
            report.add(prefix + ".recovered",
                       static_cast<double>(recovered), "count",
                       "higher", false);
            report.add(prefix + ".data_loss",
                       static_cast<double>(out.poison.dataLoss),
                       "count", "lower", false);
            report.add(prefix + ".quarantined_pages",
                       static_cast<double>(out.quarantined), "pages",
                       "lower", false);
        }

        // Degradation shape: each level may cost throughput but must
        // not collapse (no step below half of the previous level).
        bool graceful = true;
        for (size_t l = 1; l < levels.size(); ++l) {
            const double prev =
                outcomes[p * levels.size() + l - 1].run.throughput;
            const double cur =
                outcomes[p * levels.size() + l].run.throughput;
            if (prev > 0 && cur < 0.5 * prev)
                graceful = false;
        }
        std::printf("%-8s degradation is %s\n", policies[p].c_str(),
                    graceful ? "graceful (no >2x step)" : "COLLAPSING");
        report.add("degradation." + policies[p] + ".graceful",
                   graceful ? 1.0 : 0.0, "bool", "higher", true);
    }
    report.write();
    return 0;
}
