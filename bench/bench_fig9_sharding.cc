/**
 * @file
 * Figure 9 (extension): sharded simulation core scaling.
 *
 * One fixed giant fleet scenario (workload/fleet.hh) runs at worker
 * counts 1, 2, 4, 8 (the KLOC_SHARDS axis). The logical shard
 * decomposition never changes — only how many threads advance shards
 * between epoch barriers — so every simulated metric, and the full
 * serialized trace, must be identical at every worker count.
 *
 * Gated metrics are therefore of two kinds: the serial run's
 * simulated results (elapsed virtual time, promotions, demotions,
 * barrier messages), and hard zero-drift gates (max deviation of any
 * simulated metric across worker counts, and trace byte-identity as
 * a 0/1 flag). Wall-clock speedup is reported but never gates: on a
 * single-core runner the worker threads time-slice one CPU, so the
 * speedup is structural, not observable here (see docs/PERF.md).
 */

#include <algorithm>
#include <cmath>
#include <ctime>

#include "bench/harness.hh"
#include "workload/fleet.hh"

using namespace kloc;
using namespace kloc::bench;

namespace {

TierSpec
fleetTier(const char *name, Bytes capacity, Tick latency, Bytes bw)
{
    TierSpec spec;
    spec.name = name;
    spec.capacity = capacity;
    spec.readLatency = latency;
    spec.writeLatency = latency;
    spec.readBandwidth = bw;
    spec.writeBandwidth = bw;
    return spec;
}

/** The fixed giant scenario every worker count replays. */
FleetConfig
fleetConfig(const BenchConfig &config)
{
    FleetConfig fleet;
    fleet.shards = 8;
    fleet.epochs = config.quick ? 8 : 32;
    fleet.opsPerEpoch = config.quick ? 500 : 2000;
    fleet.pagesPerShard = 1024;
    fleet.hotPages = 128;
    fleet.migrateBatch = 16;
    fleet.seed = 42;
    return fleet;
}

struct ShardRun
{
    FleetResult result;
    double wallMs = 0.0;
    std::string trace;
};

/** One fleet run on a fresh System with @p workers threads. */
ShardRun
runShards(const BenchConfig &config, unsigned workers, bool capture_trace)
{
    System::Config sys_config;
    sys_config.cpus = 8;
    sys_config.sockets = 2;
    System sys(sys_config);

    FleetConfig fleet_config = fleetConfig(config);
    fleet_config.workers = workers;
    // Fast tier well under the combined hot set, so barrier-applied
    // promotions contend for real capacity.
    const uint64_t fast_pages =
        fleet_config.shards * fleet_config.hotPages * 2 / 3;
    const uint64_t slow_pages =
        fleet_config.shards * fleet_config.pagesPerShard + fast_pages;
    fleet_config.fastTier = sys.tiers().addTier(
        fleetTier("fast", fast_pages * kPageSize, Tick{80}, 10 * kGiB));
    fleet_config.slowTier = sys.tiers().addTier(
        fleetTier("slow", slow_pages * kPageSize, Tick{300}, 2 * kGiB));

    if (capture_trace)
        sys.machine().tracer().setEnabled(true);

    FleetScenario fleet(sys, fleet_config);
    fleet.setup();
    timespec start{};
    clock_gettime(CLOCK_MONOTONIC, &start);
    ShardRun run;
    run.result = fleet.run();
    timespec end{};
    clock_gettime(CLOCK_MONOTONIC, &end);
    fleet.teardown();
    run.wallMs = 1e3 * static_cast<double>(end.tv_sec - start.tv_sec) +
                 1e-6 * static_cast<double>(end.tv_nsec - start.tv_nsec);
    if (capture_trace)
        run.trace = sys.machine().tracer().serialize();
    return run;
}

/** Relative deviation of @p value from @p base (0 when both 0). */
double
drift(double base, double value)
{
    if (base == 0.0)
        return value == 0.0 ? 0.0 : 1.0;
    return std::abs(value - base) / std::abs(base);
}

} // namespace

int
main()
{
    const BenchConfig config = BenchConfig::fromEnv();
    const std::vector<unsigned> worker_counts = {1, 2, 4, 8};

    // Serial timing probes: each run must own the whole machine, so
    // no RunPool here — the run *under* measurement is the thing
    // being scaled.
    std::vector<ShardRun> runs;
    for (const unsigned workers : worker_counts)
        runs.push_back(runShards(config, workers, /*capture_trace=*/false));

    // Separate trace-enabled runs for the byte-identity gate; traces
    // perturb timing, so they stay out of the wall-clock probes.
    const ShardRun traced_serial =
        runShards(config, 1, /*capture_trace=*/true);
    const ShardRun traced_wide =
        runShards(config, 4, /*capture_trace=*/true);
    const bool traces_identical = traced_serial.trace == traced_wide.trace;

    const FleetResult &base = runs[0].result;
    double max_drift = 0.0;
    for (const ShardRun &run : runs) {
        const FleetResult &r = run.result;
        max_drift = std::max(
            {max_drift,
             drift(static_cast<double>(base.elapsed),
                   static_cast<double>(r.elapsed)),
             drift(static_cast<double>(base.promotedPages),
                   static_cast<double>(r.promotedPages)),
             drift(static_cast<double>(base.demotedPages),
                   static_cast<double>(r.demotedPages)),
             drift(static_cast<double>(base.messages),
                   static_cast<double>(r.messages)),
             drift(static_cast<double>(base.operations),
                   static_cast<double>(r.operations))});
    }

    section("Figure 9: sharded core scaling (fixed fleet scenario)");
    std::printf("%-8s %12s %12s %12s %10s %10s\n", "workers",
                "sim time(ms)", "wall (ms)", "speedup", "promoted",
                "demoted");
    for (size_t i = 0; i < runs.size(); ++i) {
        const FleetResult &r = runs[i].result;
        std::printf("%-8u %12.2f %12.1f %11.2fx %10llu %10llu\n",
                    worker_counts[i],
                    static_cast<double>(r.elapsed) / kMillisecond,
                    runs[i].wallMs, runs[0].wallMs / runs[i].wallMs,
                    (unsigned long long)r.promotedPages,
                    (unsigned long long)r.demotedPages);
    }
    std::printf("-> max simulated-metric drift across worker counts: "
                "%.3g (must be 0)\n", max_drift);
    std::printf("-> trace byte-identity, 1 vs 4 workers: %s\n",
                traces_identical ? "identical" : "DIVERGED");
    std::printf("   (wall-clock speedup needs real cores; single-core "
                "runners time-slice\n    the workers and report ~1x — "
                "the determinism gates are the contract)\n");

    JsonReport report("fig9_sharding", config.outdir);
    report.add("fleet.sim_elapsed_ms",
               static_cast<double>(base.elapsed) / kMillisecond, "ms",
               "lower", true);
    report.add("fleet.promoted_pages",
               static_cast<double>(base.promotedPages), "pages", "higher",
               true);
    report.add("fleet.demoted_pages",
               static_cast<double>(base.demotedPages), "pages", "higher",
               true);
    report.add("fleet.barrier_messages",
               static_cast<double>(base.messages), "msgs", "higher", true);
    report.add("fleet.events_merged",
               static_cast<double>(traced_serial.result.eventsMerged),
               "events", "higher", true);
    report.add("shard.metric_drift", max_drift, "ratio", "lower", true);
    report.add("shard.trace_identical", traces_identical ? 1.0 : 0.0,
               "bool", "higher", true);
    for (size_t i = 0; i < runs.size(); ++i) {
        report.add("wall_ms.workers_" + std::to_string(worker_counts[i]),
                   runs[i].wallMs, "ms", "lower", false);
    }
    report.add("wall_speedup.workers_4", runs[0].wallMs / runs[2].wallMs,
               "x", "higher", false);
    report.write();
    return (max_drift == 0.0 && traces_identical) ? 0 : 1;
}
