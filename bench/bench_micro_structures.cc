/**
 * @file
 * Microbenchmarks of the kernel substrates (google-benchmark):
 * rbtree, radix tree, buddy allocator, slab allocator, LRU scan
 * rate (validating the paper's 2 s per million pages, §3.3), the
 * LRU scan/promote hot path, tier alloc/free, trace emission, and
 * the event queue.
 *
 * Results are mirrored into BENCH_micro_structures.json via the
 * common kloc-bench-v1 schema: each benchmark contributes a
 * wall-clock ns_per_op metric (gate:false — machine-dependent) and
 * any user counters (counters named sim_* derive from virtual time
 * and gate the regression compare).
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "alloc/slab.hh"
#include "base/radix_tree.hh"
#include "base/rbtree.hh"
#include "base/rng.hh"
#include "bench/harness.hh"
#include "bench/report.hh"
#include "mem/buddy_allocator.hh"
#include "mem/lru.hh"
#include "sim/event_queue.hh"
#include "sim/machine.hh"
#include "trace/trace.hh"

namespace kloc {
namespace {

struct BenchItem
{
    explicit BenchItem(uint64_t k) : key(k) {}

    uint64_t key;
    RbNode hook;
};

struct BenchItemKey
{
    uint64_t operator()(const BenchItem &item) const { return item.key; }
};

void
BM_RbTreeInsertErase(benchmark::State &state)
{
    const auto count = static_cast<uint64_t>(state.range(0));
    std::vector<std::unique_ptr<BenchItem>> items;
    for (uint64_t i = 0; i < count; ++i)
        items.push_back(std::make_unique<BenchItem>(i * 2654435761u));
    for (auto _ : state) {
        RbTree<BenchItem, &BenchItem::hook, BenchItemKey> tree;
        for (auto &item : items)
            tree.insert(item.get());
        for (auto &item : items)
            tree.erase(item.get());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(count) * 2);
}
BENCHMARK(BM_RbTreeInsertErase)->Arg(1024)->Arg(16384);

void
BM_RbTreeFind(benchmark::State &state)
{
    const auto count = static_cast<uint64_t>(state.range(0));
    std::vector<std::unique_ptr<BenchItem>> items;
    RbTree<BenchItem, &BenchItem::hook, BenchItemKey> tree;
    for (uint64_t i = 0; i < count; ++i) {
        items.push_back(std::make_unique<BenchItem>(i));
        tree.insert(items.back().get());
    }
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(tree.find(rng.nextBounded(count)));
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RbTreeFind)->Arg(1024)->Arg(65536);

void
BM_RadixInsertLookupErase(benchmark::State &state)
{
    const auto count = static_cast<uint64_t>(state.range(0));
    int slot;  // address-only sentinel; a local keeps it run-private
    for (auto _ : state) {
        RadixTree tree;
        for (uint64_t i = 0; i < count; ++i)
            tree.insert(i, &slot);
        for (uint64_t i = 0; i < count; ++i)
            benchmark::DoNotOptimize(tree.lookup(i));
        for (uint64_t i = 0; i < count; ++i)
            tree.erase(i);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(count) * 3);
}
BENCHMARK(BM_RadixInsertLookupErase)->Arg(4096)->Arg(65536);

void
BM_BuddyAllocFree(benchmark::State &state)
{
    BuddyAllocator buddy(FrameCount{1 << 16});
    std::vector<Pfn> pfns;
    pfns.reserve(1024);
    for (auto _ : state) {
        for (int i = 0; i < 1024; ++i)
            pfns.push_back(buddy.alloc(0));
        for (const Pfn pfn : pfns)
            buddy.free(pfn, 0);
        pfns.clear();
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            2048);
}
BENCHMARK(BM_BuddyAllocFree);

TierSpec
benchTierSpec(uint64_t frames)
{
    TierSpec spec;
    spec.name = "t";
    spec.capacity = frames * kPageSize;
    spec.readLatency = Tick{80};
    spec.writeLatency = Tick{80};
    spec.readBandwidth = 10 * kGiB;
    spec.writeBandwidth = 10 * kGiB;
    return spec;
}

void
BM_SlabAllocFree(benchmark::State &state)
{
    Machine machine(4, 1);
    TierManager tiers(machine);
    LruEngine lru(machine, tiers);
    MemAccessor mem(machine, lru);
    const TierId tier = tiers.addTier(benchTierSpec(4096));
    KmemCache cache(mem, tiers, "bench", Bytes{256}, ObjClass::FsSlab);
    std::vector<SlabRef> refs;
    refs.reserve(512);
    for (auto _ : state) {
        for (int i = 0; i < 512; ++i)
            refs.push_back(cache.alloc({tier}));
        for (SlabRef &ref : refs)
            cache.free(ref);
        refs.clear();
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            1024);
}
BENCHMARK(BM_SlabAllocFree);

/**
 * The TierManager frame alloc/free fast path: buddy carve, frame
 * arena slot, LRU observer fan-out, and the placement-preference
 * walk. This is the path every page-granularity allocation in the
 * simulator takes.
 */
void
BM_TierAllocFree(benchmark::State &state)
{
    Machine machine(4, 1);
    TierManager tiers(machine);
    LruEngine lru(machine, tiers);
    const TierId tier = tiers.addTier(benchTierSpec(8192));
    std::vector<Frame *> frames;
    frames.reserve(1024);
    for (auto _ : state) {
        for (int i = 0; i < 1024; ++i)
            frames.push_back(tiers.alloc(0, ObjClass::App, true, {tier}));
        for (Frame *frame : frames)
            tiers.free(frame);
        frames.clear();
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            2048);
}
BENCHMARK(BM_TierAllocFree);

/**
 * The paper's §3.3 calibration: scanning one million pages costs
 * ~2 seconds of kernel time. Our LRU charges 2 us per visited page;
 * this benchmark reports the simulated scan rate for verification.
 */
void
BM_LruScanRate(benchmark::State &state)
{
    Machine machine(4, 1);
    TierManager tiers(machine);
    LruEngine lru(machine, tiers);
    const TierId tier = tiers.addTier(benchTierSpec(8192));
    std::vector<Frame *> frames;
    for (int i = 0; i < 8192; ++i)
        frames.push_back(tiers.alloc(0, ObjClass::App, true, {tier}));

    Tick sim_time{};
    uint64_t scanned = 0;
    ScanResult result;
    for (auto _ : state) {
        const Tick before = machine.now();
        lru.scanTier(tier, FrameCount{8192}, result);
        sim_time += machine.now() - before;
        scanned += result.scanned;
    }
    // sim_time is charged at 1/4 (background); undo that and convert
    // ns -> us, normalised to one million pages. Expect ~2e6 (the
    // paper's 2 seconds per million pages).
    state.counters["sim_us_per_Mpages"] = benchmark::Counter(
        scanned ? static_cast<double>(sim_time) * 4.0 / 1000.0 *
                  (1e6 / static_cast<double>(scanned))
                : 0,
        benchmark::Counter::kDefaults);
    for (Frame *frame : frames)
        tiers.free(frame);
}
BENCHMARK(BM_LruScanRate);

/**
 * The policy-tick hot path: one demotion scan over a cold tier plus
 * one promotion collection over a hot tier, per op — exactly what
 * GreedyStrategy::scanTick does every period. Steady-state this must
 * not allocate: the scan and candidate scratch is reused across ops.
 */
void
BM_LruScanPromoteOps(benchmark::State &state)
{
    Machine machine(4, 1);
    TierManager tiers(machine);
    LruEngine lru(machine, tiers);
    const TierId cold_tier = tiers.addTier(benchTierSpec(4096));
    const TierId hot_tier = tiers.addTier(benchTierSpec(4096));

    // Cold tier: 2048 never-touched inactive frames (demote source).
    std::vector<Frame *> frames;
    for (int i = 0; i < 2048; ++i)
        frames.push_back(
            tiers.alloc(0, ObjClass::PageCache, true, {cold_tier}));
    // Hot tier: 2048 frames touched twice => active list (promote
    // source); collectHot's two-scan confirmation saturates after the
    // first op, so steady-state ops do identical work.
    for (int i = 0; i < 2048; ++i) {
        Frame *frame =
            tiers.alloc(0, ObjClass::App, true, {hot_tier});
        lru.onAccessed(frame);
        lru.onAccessed(frame);
        frames.push_back(frame);
    }

    ScanResult scan;
    std::vector<FrameRef> hot;
    uint64_t candidates = 0;
    for (auto _ : state) {
        lru.scanTier(cold_tier, FrameCount{64}, scan);
        candidates += scan.demoteCandidates.size();
        lru.collectHot(hot_tier, FrameCount{64}, hot);
        candidates += hot.size();
        benchmark::DoNotOptimize(candidates);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
    state.counters["candidates_per_op"] = benchmark::Counter(
        state.iterations()
            ? static_cast<double>(candidates) /
              static_cast<double>(state.iterations())
            : 0,
        benchmark::Counter::kDefaults);
    for (Frame *frame : frames)
        tiers.free(frame);
}
BENCHMARK(BM_LruScanPromoteOps);

/** Per-event cost of an enabled tracer, unbatched emission. */
void
BM_TraceEmitDirect(benchmark::State &state)
{
    Machine machine(4, 1);
    Tracer &tracer = machine.tracer();
    tracer.setEnabled(true);
    uint64_t pfn = 0;
    for (auto _ : state) {
        for (int i = 0; i < 1024; ++i)
            tracer.emit(TraceEventType::LruActivate, 0, pfn++);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            1024);
}
BENCHMARK(BM_TraceEmitDirect);

/**
 * Per-event cost of an enabled tracer inside a TraceBatch window —
 * the fast path LRU scans and migration loops use. The serialized
 * trace is byte-identical to direct emission.
 */
void
BM_TraceEmitBatched(benchmark::State &state)
{
    Machine machine(4, 1);
    Tracer &tracer = machine.tracer();
    tracer.setEnabled(true);
    uint64_t pfn = 0;
    for (auto _ : state) {
        TraceBatch batch(tracer);
        for (int i = 0; i < 1024; ++i)
            tracer.emit(TraceEventType::LruActivate, 0, pfn++);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            1024);
}
BENCHMARK(BM_TraceEmitBatched);

void
BM_EventQueueChurn(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue events;
        int sink = 0;
        for (int64_t t = 0; t < 4096; ++t)
            events.schedule(Tick{t}, [&sink] { ++sink; });
        events.runDue(Tick{4096});
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            4096);
}
BENCHMARK(BM_EventQueueChurn);

/**
 * Console output as usual, plus every run mirrored into the common
 * kloc-bench-v1 JSON artifact. Counters named sim_* are virtual-time
 * derived (deterministic) and gate the regression compare; wall-clock
 * ns_per_op never gates.
 */
class JsonCollectingReporter : public benchmark::ConsoleReporter
{
  public:
    explicit JsonCollectingReporter(bench::JsonReport &report)
        : _report(report)
    {
    }

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (run.error_occurred)
                continue;
            std::string name = run.benchmark_name();
            for (char &c : name) {
                if (c == '/')
                    c = '.';
            }
            _report.add(name + ".ns_per_op", run.GetAdjustedRealTime(),
                        "ns", "lower", false);
            for (const auto &[counter_name, counter] : run.counters) {
                if (counter_name == "items_per_second") {
                    _report.add(name + ".items_per_s",
                                counter.value, "items/s", "higher",
                                false);
                    continue;
                }
                const bool simulated =
                    counter_name.rfind("sim_", 0) == 0;
                _report.add(name + "." + counter_name, counter.value,
                            "", "lower", simulated);
            }
        }
        ConsoleReporter::ReportRuns(runs);
    }

  private:
    bench::JsonReport &_report;
};

} // namespace
} // namespace kloc

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    // Stays serial by design: google-benchmark owns the timing loops,
    // and wall-clock microbenchmarks sharing cores would measure each
    // other. BenchConfig is still parsed once for the artifact outdir.
    const kloc::bench::BenchConfig config =
        kloc::bench::BenchConfig::fromEnv();
    kloc::bench::JsonReport report("micro_structures", config.outdir);
    kloc::JsonCollectingReporter reporter(report);
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    report.write();
    return 0;
}
