/**
 * @file
 * Microbenchmarks of the kernel substrates (google-benchmark):
 * rbtree, radix tree, buddy allocator, slab allocator, LRU scan
 * rate (validating the paper's 2 s per million pages, §3.3), and
 * the event queue.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "alloc/slab.hh"
#include "base/radix_tree.hh"
#include "base/rbtree.hh"
#include "base/rng.hh"
#include "mem/buddy_allocator.hh"
#include "mem/lru.hh"
#include "sim/event_queue.hh"
#include "sim/machine.hh"

namespace kloc {
namespace {

struct BenchItem
{
    explicit BenchItem(uint64_t k) : key(k) {}

    uint64_t key;
    RbNode hook;
};

struct BenchItemKey
{
    uint64_t operator()(const BenchItem &item) const { return item.key; }
};

void
BM_RbTreeInsertErase(benchmark::State &state)
{
    const auto count = static_cast<uint64_t>(state.range(0));
    std::vector<std::unique_ptr<BenchItem>> items;
    for (uint64_t i = 0; i < count; ++i)
        items.push_back(std::make_unique<BenchItem>(i * 2654435761u));
    for (auto _ : state) {
        RbTree<BenchItem, &BenchItem::hook, BenchItemKey> tree;
        for (auto &item : items)
            tree.insert(item.get());
        for (auto &item : items)
            tree.erase(item.get());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(count) * 2);
}
BENCHMARK(BM_RbTreeInsertErase)->Arg(1024)->Arg(16384);

void
BM_RbTreeFind(benchmark::State &state)
{
    const auto count = static_cast<uint64_t>(state.range(0));
    std::vector<std::unique_ptr<BenchItem>> items;
    RbTree<BenchItem, &BenchItem::hook, BenchItemKey> tree;
    for (uint64_t i = 0; i < count; ++i) {
        items.push_back(std::make_unique<BenchItem>(i));
        tree.insert(items.back().get());
    }
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(tree.find(rng.nextBounded(count)));
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RbTreeFind)->Arg(1024)->Arg(65536);

void
BM_RadixInsertLookupErase(benchmark::State &state)
{
    const auto count = static_cast<uint64_t>(state.range(0));
    static int slot;
    for (auto _ : state) {
        RadixTree tree;
        for (uint64_t i = 0; i < count; ++i)
            tree.insert(i, &slot);
        for (uint64_t i = 0; i < count; ++i)
            benchmark::DoNotOptimize(tree.lookup(i));
        for (uint64_t i = 0; i < count; ++i)
            tree.erase(i);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(count) * 3);
}
BENCHMARK(BM_RadixInsertLookupErase)->Arg(4096)->Arg(65536);

void
BM_BuddyAllocFree(benchmark::State &state)
{
    BuddyAllocator buddy(FrameCount{1 << 16});
    std::vector<Pfn> pfns;
    pfns.reserve(1024);
    for (auto _ : state) {
        for (int i = 0; i < 1024; ++i)
            pfns.push_back(buddy.alloc(0));
        for (const Pfn pfn : pfns)
            buddy.free(pfn, 0);
        pfns.clear();
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            2048);
}
BENCHMARK(BM_BuddyAllocFree);

void
BM_SlabAllocFree(benchmark::State &state)
{
    Machine machine(4, 1);
    TierManager tiers(machine);
    LruEngine lru(machine, tiers);
    MemAccessor mem(machine, lru);
    TierSpec spec;
    spec.name = "t";
    spec.capacity = 4096 * kPageSize;
    spec.readLatency = Tick{80};
    spec.writeLatency = Tick{80};
    spec.readBandwidth = 10 * kGiB;
    spec.writeBandwidth = 10 * kGiB;
    const TierId tier = tiers.addTier(spec);
    KmemCache cache(mem, tiers, "bench", Bytes{256}, ObjClass::FsSlab);
    std::vector<SlabRef> refs;
    refs.reserve(512);
    for (auto _ : state) {
        for (int i = 0; i < 512; ++i)
            refs.push_back(cache.alloc({tier}));
        for (SlabRef &ref : refs)
            cache.free(ref);
        refs.clear();
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            1024);
}
BENCHMARK(BM_SlabAllocFree);

/**
 * The paper's §3.3 calibration: scanning one million pages costs
 * ~2 seconds of kernel time. Our LRU charges 2 us per visited page;
 * this benchmark reports the simulated scan rate for verification.
 */
void
BM_LruScanRate(benchmark::State &state)
{
    Machine machine(4, 1);
    TierManager tiers(machine);
    LruEngine lru(machine, tiers);
    TierSpec spec;
    spec.name = "t";
    spec.capacity = 8192 * kPageSize;
    spec.readLatency = Tick{80};
    spec.writeLatency = Tick{80};
    spec.readBandwidth = 10 * kGiB;
    spec.writeBandwidth = 10 * kGiB;
    const TierId tier = tiers.addTier(spec);
    std::vector<Frame *> frames;
    for (int i = 0; i < 8192; ++i)
        frames.push_back(tiers.alloc(0, ObjClass::App, true, {tier}));

    Tick sim_time{};
    uint64_t scanned = 0;
    for (auto _ : state) {
        const Tick before = machine.now();
        ScanResult result = lru.scanTier(tier, FrameCount{8192});
        sim_time += machine.now() - before;
        scanned += result.scanned;
    }
    // sim_time is charged at 1/4 (background); undo that and convert
    // ns -> us, normalised to one million pages. Expect ~2e6 (the
    // paper's 2 seconds per million pages).
    state.counters["sim_us_per_Mpages"] = benchmark::Counter(
        scanned ? static_cast<double>(sim_time) * 4.0 / 1000.0 *
                  (1e6 / static_cast<double>(scanned))
                : 0,
        benchmark::Counter::kDefaults);
    for (Frame *frame : frames)
        tiers.free(frame);
}
BENCHMARK(BM_LruScanRate);

void
BM_EventQueueChurn(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue events;
        int sink = 0;
        for (int64_t t = 0; t < 4096; ++t)
            events.schedule(Tick{t}, [&sink] { ++sink; });
        events.runDue(Tick{4096});
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            4096);
}
BENCHMARK(BM_EventQueueChurn);

} // namespace
} // namespace kloc

BENCHMARK_MAIN();
