/**
 * @file
 * Table 6: KLOC metadata memory overhead per workload.
 *
 * Reports the peak KLOC metadata footprint (knodes, per-object
 * rbtree pointers, per-CPU lists, migration queues), scaled back to
 * paper scale for comparison with Table 6's 12-101 MB (<1% of
 * memory).
 */

#include "bench/harness.hh"
#include "bench/parallel.hh"

using namespace kloc;
using namespace kloc::bench;

int
main()
{
    const BenchConfig config = BenchConfig::fromEnv();
    const struct
    {
        const char *name;
        int paperMb;
    } paper[] = {{"rocksdb", 101},
                 {"redis", 83},
                 {"filebench", 44},
                 {"cassandra", 12},
                 {"spark", 43}};
    const size_t runs = sizeof(paper) / sizeof(paper[0]);

    const auto outcomes = sweep<RunOutcome>(config, runs, [&](size_t i) {
        return runTwoTier(paper[i].name, StrategyKind::Kloc,
                          twoTierConfig(config), workloadConfig(config));
    });

    section("Table 6: KLOC metadata memory increase");
    std::printf("%-11s %16s %22s %10s\n", "workload", "sim peak (KiB)",
                "at paper scale (MiB)", "paper (MB)");
    JsonReport report("table6_memusage", config.outdir);
    for (size_t i = 0; i < runs; ++i) {
        const auto &row = paper[i];
        const RunOutcome &outcome = outcomes[i];
        const double sim_kib =
            static_cast<double>(outcome.klocPeakMetadata) / kKiB;
        const double paper_scale_mib =
            static_cast<double>(outcome.klocPeakMetadata) *
            config.scale / static_cast<double>(kMiB);
        std::printf("%-11s %16.1f %22.1f %10d\n", row.name, sim_kib,
                    paper_scale_mib, row.paperMb);
        report.add(std::string(row.name) + ".kloc_metadata_kib", sim_kib,
                   "KiB", "lower", true);
    }
    std::printf("\nexpected: tens of MB at paper scale, <1%% of memory\n");
    report.write();
    return 0;
}
