/**
 * @file
 * Shared experiment harness for the per-figure bench binaries.
 *
 * Each figure binary builds fresh platforms per configuration, runs
 * the measured protocol (setup -> quiesce -> measure), and prints
 * the same rows/series the paper reports. Environment knobs (parsed
 * ONCE into a BenchConfig at startup — see BenchConfig::fromEnv):
 *
 *   KLOC_BENCH_QUICK=1   quarter-size runs for smoke testing
 *   KLOC_BENCH_OPS=N     override measured operations per run
 *   KLOC_BENCH_SCALE=N   override the 1:N platform scale
 *   KLOC_BENCH_TRACE=1   run with event tracing enabled
 *   KLOC_BENCH_OUTDIR=D  where BENCH_<name>.json artifacts land
 *   KLOC_JOBS=N          run-executor worker count (bench/parallel.hh)
 */

#ifndef KLOC_BENCH_HARNESS_HH
#define KLOC_BENCH_HARNESS_HH

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <memory>
#include <string>
#include <vector>

#include "base/run_pool.hh"
#include "bench/report.hh"
#include "platform/optane.hh"
#include "platform/two_tier.hh"
#include "policy/jenga.hh"
#include "policy/registry.hh"
#include "workload/runner.hh"
#include "workload/workload.hh"

namespace kloc {
namespace bench {

/**
 * Every environment knob the bench pipeline honours, parsed once at
 * startup and passed to runs explicitly. Runs never call getenv()
 * themselves: repeated lookups were both wasteful and a data race
 * waiting to happen once runs execute on RunPool workers (setenv on
 * the main thread against getenv on a worker is UB).
 */
struct BenchConfig
{
    bool quick = false;       ///< quarter-size smoke runs
    uint64_t ops = 60000;     ///< measured operations per run
    unsigned scale = 64;      ///< 1:N platform/dataset scale divisor
    bool trace = false;       ///< run with event tracing enabled
    unsigned jobs = 1;        ///< run-executor worker threads
    std::string outdir = "."; ///< BENCH_<name>.json destination

    /** Parse the KLOC_BENCH_* / KLOC_JOBS environment, once. */
    static BenchConfig
    fromEnv()
    {
        BenchConfig config;
        config.quick = std::getenv("KLOC_BENCH_QUICK") != nullptr;
        config.ops = config.quick ? 15000 : 60000;
        if (const char *env = std::getenv("KLOC_BENCH_OPS"))
            config.ops = std::strtoull(env, nullptr, 10);
        config.scale = config.quick ? 256 : 64;
        if (const char *env = std::getenv("KLOC_BENCH_SCALE"))
            config.scale =
                static_cast<unsigned>(std::strtoul(env, nullptr, 10));
        config.trace = std::getenv("KLOC_BENCH_TRACE") != nullptr;
        config.jobs = RunPool::defaultWorkers();
        if (const char *env = std::getenv("KLOC_BENCH_OUTDIR"))
            config.outdir = env;
        return config;
    }
};

/** Outcome of one measured two-tier run. */
struct RunOutcome
{
    double throughput = 0.0;
    WorkloadResult result;
    MigrationStats migration;
    uint64_t slowPageCacheAllocPages = 0;
    uint64_t slowSlabAllocPages = 0;
    Bytes klocPeakMetadata{};
    uint64_t kernelRefs = 0;
    uint64_t userRefs = 0;
    /** Jenga only: promote batch after adaptation, and adaptations. */
    uint64_t finalPromoteBatch = 0;
    uint64_t rateAdaptations = 0;
};

/** Harvest the shared RunOutcome fields after a measured run. */
inline RunOutcome
collectTwoTierOutcome(TwoTierPlatform &platform,
                      const WorkloadResult &result)
{
    System &sys = platform.sys();
    RunOutcome outcome;
    outcome.throughput = result.throughput();
    outcome.result = result;
    outcome.migration = sys.migrator().stats();
    const Tier &slow = sys.tiers().tier(platform.slowTier());
    outcome.slowPageCacheAllocPages =
        slow.cumulativeAllocPages(ObjClass::PageCache);
    outcome.slowSlabAllocPages =
        slow.cumulativeAllocPages(ObjClass::FsSlab) +
        slow.cumulativeAllocPages(ObjClass::Journal) +
        slow.cumulativeAllocPages(ObjClass::BlockIo) +
        slow.cumulativeAllocPages(ObjClass::SockBuf);
    outcome.klocPeakMetadata = sys.kloc().peakMetadataBytes();
    outcome.kernelRefs = sys.machine().kernelRefs();
    outcome.userRefs = sys.machine().userRefs();
    if (const auto *jenga =
            dynamic_cast<const JengaStrategy *>(platform.policy())) {
        outcome.finalPromoteBatch = jenga->promoteBatch().value();
        outcome.rateAdaptations = jenga->adaptations();
    }
    return outcome;
}

/**
 * Build a two-tier platform, apply the registry policy @p policy_name,
 * run @p workload_name once, and collect the outcome. Shared-nothing:
 * every call builds its own platform and trace sink from the explicit
 * configs, so calls may run concurrently on RunPool workers.
 */
inline RunOutcome
runTwoTierPolicy(const std::string &workload_name,
                 const std::string &policy_name,
                 TwoTierPlatform::Config platform_config,
                 WorkloadConfig workload_config, bool trace = false)
{
    // The AllFast bound needs a fast tier that holds everything.
    if (policy_name == "all_fast") {
        platform_config.fastCapacity += platform_config.slowCapacity;
    }
    TwoTierPlatform platform(platform_config);
    System &sys = platform.sys();
    if (trace)
        sys.machine().tracer().setEnabled(true);
    platform.applyPolicyByName(policy_name);
    sys.fs().startDaemons();

    auto workload = makeWorkload(workload_name, workload_config);
    const WorkloadResult result = runMeasured(sys, *workload);

    RunOutcome outcome = collectTwoTierOutcome(platform, result);
    workload->teardown(sys);
    return outcome;
}

/** runTwoTierPolicySharded's extras beyond the common RunOutcome. */
struct ShardedOutcome
{
    RunOutcome outcome;
    ShardRunStats shardStats{};
    double wallMs = 0.0;
    /** Serialized trace when capture was requested (identity gates). */
    std::string trace;
};

/**
 * runTwoTierPolicy on the epoch engine: same platform/policy recipe,
 * but the measured run executes the workload's ShardContext port on
 * the fixed 4-shard decomposition with @p workers threads (0 = the
 * KLOC_SHARDS default). Simulated results are worker-count-invariant;
 * wallMs and the ShardRunStats wall counters are host-side and must
 * only feed non-gating metrics.
 */
inline ShardedOutcome
runTwoTierPolicySharded(const std::string &workload_name,
                        const std::string &policy_name,
                        TwoTierPlatform::Config platform_config,
                        WorkloadConfig workload_config, unsigned workers,
                        bool trace = false)
{
    if (policy_name == "all_fast") {
        platform_config.fastCapacity += platform_config.slowCapacity;
    }
    TwoTierPlatform platform(platform_config);
    System &sys = platform.sys();
    if (trace)
        sys.machine().tracer().setEnabled(true);
    platform.applyPolicyByName(policy_name);
    sys.fs().startDaemons();

    auto workload = makeWorkload(workload_name, workload_config);
    ShardPlan plan;
    plan.workers = workers;
    ShardedWorkloadRunner runner(sys, plan);
    timespec start{};
    clock_gettime(CLOCK_MONOTONIC, &start);
    const WorkloadResult result = runner.run(*workload);
    timespec end{};
    clock_gettime(CLOCK_MONOTONIC, &end);

    ShardedOutcome sharded;
    sharded.outcome = collectTwoTierOutcome(platform, result);
    sharded.shardStats = runner.stats();
    sharded.wallMs =
        1e3 * static_cast<double>(end.tv_sec - start.tv_sec) +
        1e-6 * static_cast<double>(end.tv_nsec - start.tv_nsec);
    if (trace)
        sharded.trace = sys.machine().tracer().serialize();
    workload->teardown(sys);
    return sharded;
}

/** Relative deviation of @p value from @p base (0 when both 0). */
inline double
metricDrift(double base, double value)
{
    if (base == 0.0)
        return value == 0.0 ? 0.0 : 1.0;
    return std::abs(value - base) / std::abs(base);
}

/** Worst drift of the gated RunOutcome metrics vs @p base. */
inline double
outcomeDrift(const RunOutcome &base, const RunOutcome &run)
{
    return std::max(
        {metricDrift(base.throughput, run.throughput),
         metricDrift(static_cast<double>(base.result.operations),
                     static_cast<double>(run.result.operations)),
         metricDrift(static_cast<double>(base.result.elapsed),
                     static_cast<double>(run.result.elapsed)),
         metricDrift(static_cast<double>(base.migration.migratedPages),
                     static_cast<double>(run.migration.migratedPages)),
         metricDrift(static_cast<double>(base.kernelRefs),
                     static_cast<double>(run.kernelRefs)),
         metricDrift(static_cast<double>(base.userRefs),
                     static_cast<double>(run.userRefs))});
}

/**
 * Fig-9-style determinism gate for a sharded figure sweep: replay one
 * representative (workload, policy) configuration at worker counts
 * {1, 2, 4, 8} plus traced 1-vs-4 runs, and add the zero-drift and
 * byte-identity gates (gated) alongside the engine's barrier-overhead
 * counters and wall clocks (never gated) to @p report.
 *
 * @return true when the gates hold (drift 0, traces identical).
 */
inline bool
addShardGates(JsonReport &report, const std::string &workload_name,
              const std::string &policy_name,
              const TwoTierPlatform::Config &platform_config,
              const WorkloadConfig &workload_config)
{
    const std::vector<unsigned> worker_counts = {1, 2, 4, 8};
    std::vector<ShardedOutcome> runs;
    for (const unsigned workers : worker_counts) {
        runs.push_back(runTwoTierPolicySharded(
            workload_name, policy_name, platform_config, workload_config,
            workers));
    }
    const ShardedOutcome traced_serial = runTwoTierPolicySharded(
        workload_name, policy_name, platform_config, workload_config, 1,
        /*trace=*/true);
    const ShardedOutcome traced_wide = runTwoTierPolicySharded(
        workload_name, policy_name, platform_config, workload_config, 4,
        /*trace=*/true);
    const bool traces_identical =
        !traced_serial.trace.empty() &&
        traced_serial.trace == traced_wide.trace;

    double max_drift = 0.0;
    for (const ShardedOutcome &run : runs)
        max_drift = std::max(max_drift,
                             outcomeDrift(runs[0].outcome, run.outcome));

    std::printf("-> shard gates (%s under %s): max metric drift %.3g "
                "(must be 0), traces %s\n",
                workload_name.c_str(), policy_name.c_str(), max_drift,
                traces_identical ? "identical" : "DIVERGED");

    report.add("shard.metric_drift", max_drift, "ratio", "lower", true);
    report.add("shard.trace_identical", traces_identical ? 1.0 : 0.0,
               "bool", "higher", true);
    // Engine overhead: deterministic counters plus host wall time —
    // diagnostics for the barrier cost, never success metrics.
    const ShardRunStats &stats = runs[0].shardStats;
    report.add("shard.epochs", static_cast<double>(stats.epochs),
               "epochs", "lower", false);
    report.add("shard.mailbox_messages",
               static_cast<double>(stats.messages), "msgs", "lower",
               false);
    report.add("shard.events_merged",
               static_cast<double>(traced_serial.shardStats.eventsMerged),
               "events", "lower", false);
    report.add("shard.barrier_wall_ns",
               static_cast<double>(stats.barrierWallNs), "ns", "lower",
               false);
    report.add("shard.merge_wall_ns",
               static_cast<double>(stats.mergeWallNs), "ns", "lower",
               false);
    for (size_t i = 0; i < runs.size(); ++i) {
        report.add("wall_ms.workers_" + std::to_string(worker_counts[i]),
                   runs[i].wallMs, "ms", "lower", false);
    }
    report.add("wall_speedup.workers_4", runs[0].wallMs / runs[2].wallMs,
               "x", "higher", false);
    return max_drift == 0.0 && traces_identical;
}

/** runTwoTierPolicy with a StrategyKind (the classic benches). */
inline RunOutcome
runTwoTier(const std::string &workload_name, StrategyKind kind,
           TwoTierPlatform::Config platform_config,
           WorkloadConfig workload_config, bool trace = false)
{
    return runTwoTierPolicy(workload_name, strategyName(kind),
                            platform_config, workload_config, trace);
}

/** Default two-tier platform config at @p config's bench scale. */
inline TwoTierPlatform::Config
twoTierConfig(const BenchConfig &config)
{
    TwoTierPlatform::Config platform_config;
    platform_config.scale = config.scale;
    return platform_config;
}

/** Default workload config at @p config's bench scale. */
inline WorkloadConfig
workloadConfig(const BenchConfig &config)
{
    WorkloadConfig workload_config;
    workload_config.scale = config.scale;
    workload_config.operations = config.ops;
    return workload_config;
}

/** Print a separator + section title. */
inline void
section(const char *title)
{
    std::printf("\n==== %s ====\n", title);
}

} // namespace bench
} // namespace kloc

#endif // KLOC_BENCH_HARNESS_HH
