/**
 * @file
 * Shared experiment harness for the per-figure bench binaries.
 *
 * Each figure binary builds fresh platforms per configuration, runs
 * the measured protocol (setup -> quiesce -> measure), and prints
 * the same rows/series the paper reports. Environment knobs:
 *
 *   KLOC_BENCH_QUICK=1   quarter-size runs for smoke testing
 *   KLOC_BENCH_OPS=N     override measured operations per run
 *   KLOC_BENCH_SCALE=N   override the 1:N platform scale
 *   KLOC_BENCH_TRACE=1   run with event tracing enabled
 *   KLOC_BENCH_OUTDIR=D  where BENCH_<name>.json artifacts land
 */

#ifndef KLOC_BENCH_HARNESS_HH
#define KLOC_BENCH_HARNESS_HH

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/report.hh"
#include "platform/optane.hh"
#include "platform/two_tier.hh"
#include "workload/runner.hh"
#include "workload/workload.hh"

namespace kloc {
namespace bench {

/** Measured operations per run (paper-shape default). */
inline uint64_t
defaultOps()
{
    if (const char *env = std::getenv("KLOC_BENCH_OPS"))
        return std::strtoull(env, nullptr, 10);
    if (std::getenv("KLOC_BENCH_QUICK"))
        return 15000;
    return 60000;
}

/** Platform/dataset scale divisor. */
inline unsigned
defaultScale()
{
    if (const char *env = std::getenv("KLOC_BENCH_SCALE"))
        return static_cast<unsigned>(std::strtoul(env, nullptr, 10));
    if (std::getenv("KLOC_BENCH_QUICK"))
        return 256;
    return 64;
}

/** Outcome of one measured two-tier run. */
struct RunOutcome
{
    double throughput = 0.0;
    WorkloadResult result;
    MigrationStats migration;
    uint64_t slowPageCacheAllocPages = 0;
    uint64_t slowSlabAllocPages = 0;
    Bytes klocPeakMetadata{};
    uint64_t kernelRefs = 0;
    uint64_t userRefs = 0;
};

/**
 * Build a two-tier platform, apply @p kind, run @p workload_name
 * once, and collect the outcome.
 */
inline RunOutcome
runTwoTier(const std::string &workload_name, StrategyKind kind,
           TwoTierPlatform::Config platform_config,
           WorkloadConfig workload_config,
           bool trace = std::getenv("KLOC_BENCH_TRACE") != nullptr)
{
    // The AllFast bound needs a fast tier that holds everything.
    if (kind == StrategyKind::AllFast) {
        platform_config.fastCapacity += platform_config.slowCapacity;
    }
    TwoTierPlatform platform(platform_config);
    System &sys = platform.sys();
    if (trace)
        sys.machine().tracer().setEnabled(true);
    platform.applyStrategy(kind);
    sys.fs().startDaemons();

    auto workload = makeWorkload(workload_name, workload_config);
    const WorkloadResult result = runMeasured(sys, *workload);

    RunOutcome outcome;
    outcome.throughput = result.throughput();
    outcome.result = result;
    outcome.migration = sys.migrator().stats();
    const Tier &slow = sys.tiers().tier(platform.slowTier());
    outcome.slowPageCacheAllocPages =
        slow.cumulativeAllocPages(ObjClass::PageCache);
    outcome.slowSlabAllocPages =
        slow.cumulativeAllocPages(ObjClass::FsSlab) +
        slow.cumulativeAllocPages(ObjClass::Journal) +
        slow.cumulativeAllocPages(ObjClass::BlockIo) +
        slow.cumulativeAllocPages(ObjClass::SockBuf);
    outcome.klocPeakMetadata = sys.kloc().peakMetadataBytes();
    outcome.kernelRefs = sys.machine().kernelRefs();
    outcome.userRefs = sys.machine().userRefs();
    workload->teardown(sys);
    return outcome;
}

/** Default two-tier platform config at bench scale. */
inline TwoTierPlatform::Config
twoTierConfig()
{
    TwoTierPlatform::Config config;
    config.scale = defaultScale();
    return config;
}

/** Default workload config at bench scale. */
inline WorkloadConfig
workloadConfig()
{
    WorkloadConfig config;
    config.scale = defaultScale();
    config.operations = defaultOps();
    return config;
}

/** Print a separator + section title. */
inline void
section(const char *title)
{
    std::printf("\n==== %s ====\n", title);
}

} // namespace bench
} // namespace kloc

#endif // KLOC_BENCH_HARNESS_HH
