/**
 * @file
 * Shared experiment harness for the per-figure bench binaries.
 *
 * Each figure binary builds fresh platforms per configuration, runs
 * the measured protocol (setup -> quiesce -> measure), and prints
 * the same rows/series the paper reports. Environment knobs (parsed
 * ONCE into a BenchConfig at startup — see BenchConfig::fromEnv):
 *
 *   KLOC_BENCH_QUICK=1   quarter-size runs for smoke testing
 *   KLOC_BENCH_OPS=N     override measured operations per run
 *   KLOC_BENCH_SCALE=N   override the 1:N platform scale
 *   KLOC_BENCH_TRACE=1   run with event tracing enabled
 *   KLOC_BENCH_OUTDIR=D  where BENCH_<name>.json artifacts land
 *   KLOC_JOBS=N          run-executor worker count (bench/parallel.hh)
 */

#ifndef KLOC_BENCH_HARNESS_HH
#define KLOC_BENCH_HARNESS_HH

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "base/run_pool.hh"
#include "bench/report.hh"
#include "platform/optane.hh"
#include "platform/two_tier.hh"
#include "policy/jenga.hh"
#include "policy/registry.hh"
#include "workload/runner.hh"
#include "workload/workload.hh"

namespace kloc {
namespace bench {

/**
 * Every environment knob the bench pipeline honours, parsed once at
 * startup and passed to runs explicitly. Runs never call getenv()
 * themselves: repeated lookups were both wasteful and a data race
 * waiting to happen once runs execute on RunPool workers (setenv on
 * the main thread against getenv on a worker is UB).
 */
struct BenchConfig
{
    bool quick = false;       ///< quarter-size smoke runs
    uint64_t ops = 60000;     ///< measured operations per run
    unsigned scale = 64;      ///< 1:N platform/dataset scale divisor
    bool trace = false;       ///< run with event tracing enabled
    unsigned jobs = 1;        ///< run-executor worker threads
    std::string outdir = "."; ///< BENCH_<name>.json destination

    /** Parse the KLOC_BENCH_* / KLOC_JOBS environment, once. */
    static BenchConfig
    fromEnv()
    {
        BenchConfig config;
        config.quick = std::getenv("KLOC_BENCH_QUICK") != nullptr;
        config.ops = config.quick ? 15000 : 60000;
        if (const char *env = std::getenv("KLOC_BENCH_OPS"))
            config.ops = std::strtoull(env, nullptr, 10);
        config.scale = config.quick ? 256 : 64;
        if (const char *env = std::getenv("KLOC_BENCH_SCALE"))
            config.scale =
                static_cast<unsigned>(std::strtoul(env, nullptr, 10));
        config.trace = std::getenv("KLOC_BENCH_TRACE") != nullptr;
        config.jobs = RunPool::defaultWorkers();
        if (const char *env = std::getenv("KLOC_BENCH_OUTDIR"))
            config.outdir = env;
        return config;
    }
};

/** Outcome of one measured two-tier run. */
struct RunOutcome
{
    double throughput = 0.0;
    WorkloadResult result;
    MigrationStats migration;
    uint64_t slowPageCacheAllocPages = 0;
    uint64_t slowSlabAllocPages = 0;
    Bytes klocPeakMetadata{};
    uint64_t kernelRefs = 0;
    uint64_t userRefs = 0;
    /** Jenga only: promote batch after adaptation, and adaptations. */
    uint64_t finalPromoteBatch = 0;
    uint64_t rateAdaptations = 0;
};

/**
 * Build a two-tier platform, apply the registry policy @p policy_name,
 * run @p workload_name once, and collect the outcome. Shared-nothing:
 * every call builds its own platform and trace sink from the explicit
 * configs, so calls may run concurrently on RunPool workers.
 */
inline RunOutcome
runTwoTierPolicy(const std::string &workload_name,
                 const std::string &policy_name,
                 TwoTierPlatform::Config platform_config,
                 WorkloadConfig workload_config, bool trace = false)
{
    // The AllFast bound needs a fast tier that holds everything.
    if (policy_name == "all_fast") {
        platform_config.fastCapacity += platform_config.slowCapacity;
    }
    TwoTierPlatform platform(platform_config);
    System &sys = platform.sys();
    if (trace)
        sys.machine().tracer().setEnabled(true);
    platform.applyPolicyByName(policy_name);
    sys.fs().startDaemons();

    auto workload = makeWorkload(workload_name, workload_config);
    const WorkloadResult result = runMeasured(sys, *workload);

    RunOutcome outcome;
    outcome.throughput = result.throughput();
    outcome.result = result;
    outcome.migration = sys.migrator().stats();
    const Tier &slow = sys.tiers().tier(platform.slowTier());
    outcome.slowPageCacheAllocPages =
        slow.cumulativeAllocPages(ObjClass::PageCache);
    outcome.slowSlabAllocPages =
        slow.cumulativeAllocPages(ObjClass::FsSlab) +
        slow.cumulativeAllocPages(ObjClass::Journal) +
        slow.cumulativeAllocPages(ObjClass::BlockIo) +
        slow.cumulativeAllocPages(ObjClass::SockBuf);
    outcome.klocPeakMetadata = sys.kloc().peakMetadataBytes();
    outcome.kernelRefs = sys.machine().kernelRefs();
    outcome.userRefs = sys.machine().userRefs();
    if (const auto *jenga =
            dynamic_cast<const JengaStrategy *>(platform.policy())) {
        outcome.finalPromoteBatch = jenga->promoteBatch().value();
        outcome.rateAdaptations = jenga->adaptations();
    }
    workload->teardown(sys);
    return outcome;
}

/** runTwoTierPolicy with a StrategyKind (the classic benches). */
inline RunOutcome
runTwoTier(const std::string &workload_name, StrategyKind kind,
           TwoTierPlatform::Config platform_config,
           WorkloadConfig workload_config, bool trace = false)
{
    return runTwoTierPolicy(workload_name, strategyName(kind),
                            platform_config, workload_config, trace);
}

/** Default two-tier platform config at @p config's bench scale. */
inline TwoTierPlatform::Config
twoTierConfig(const BenchConfig &config)
{
    TwoTierPlatform::Config platform_config;
    platform_config.scale = config.scale;
    return platform_config;
}

/** Default workload config at @p config's bench scale. */
inline WorkloadConfig
workloadConfig(const BenchConfig &config)
{
    WorkloadConfig workload_config;
    workload_config.scale = config.scale;
    workload_config.operations = config.ops;
    return workload_config;
}

/** Print a separator + section title. */
inline void
section(const char *title)
{
    std::printf("\n==== %s ====\n", title);
}

} // namespace bench
} // namespace kloc

#endif // KLOC_BENCH_HARNESS_HH
