/**
 * @file
 * Parallel sweep support for the bench binaries.
 *
 * A figure is a grid of independent configurations. Every binary
 * follows the same three-phase shape so any RunPool worker count
 * produces byte-identical kloc-bench-v1 JSON:
 *
 *   1. ENUMERATE the configuration grid into a vector, in the order
 *      the figure prints it.
 *   2. EXECUTE the per-configuration closures on the pool with
 *      sweep() — results come back in submission order, regardless
 *      of completion order. Closures are shared-nothing (each builds
 *      its own platform/trace sink from explicit configs) and MUST
 *      NOT print or touch the JsonReport; both stay owned by the
 *      main thread.
 *   3. REPORT serially: walk the result vector in order, print the
 *      tables, and append metrics to the JsonReport.
 *
 * Because phase 3 is a pure function of the result vector and the
 * vector's order is fixed by submission, KLOC_JOBS=1 and
 * KLOC_JOBS=64 runs emit identical metric rows — the parallel
 * identity tests (tests/integration/test_parallel_identity.cc) and
 * `scripts/bench.sh --compare` hold this line.
 */

#ifndef KLOC_BENCH_PARALLEL_HH
#define KLOC_BENCH_PARALLEL_HH

#include <cstddef>
#include <vector>

#include "base/run_pool.hh"
#include "bench/harness.hh"

namespace kloc {
namespace bench {

/**
 * Run @p fn(0..n-1) on a pool sized by @p config.jobs and return the
 * results in index order.
 */
template <typename T, typename Fn>
std::vector<T>
sweep(const BenchConfig &config, size_t n, Fn fn)
{
    RunPool pool(config.jobs);
    return runIndexed<T>(pool, n, std::move(fn));
}

} // namespace bench
} // namespace kloc

#endif // KLOC_BENCH_PARALLEL_HH
