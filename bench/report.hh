/**
 * @file
 * Common machine-readable result artifact for every bench binary.
 *
 * Each bench emits BENCH_<name>.json next to its stdout tables so
 * scripts/bench.sh can aggregate a whole run into BENCH_results.json
 * and gate regressions against the checked-in baseline.
 *
 * Schema ("kloc-bench-v1"):
 *
 *   {
 *     "schema": "kloc-bench-v1",
 *     "bench": "<binary name without bench_ prefix>",
 *     "peak_rss_kb": <ru_maxrss>,
 *     "metrics": [
 *       {"name": "...", "value": <number>, "unit": "...",
 *        "better": "higher"|"lower", "gate": true|false},
 *       ...
 *     ]
 *   }
 *
 * Only metrics with "gate": true participate in the regression
 * compare: those derive from virtual (simulated) time, which is
 * bit-deterministic across machines and build hosts. Wall-clock
 * metrics (ns/op and friends) are recorded for local before/after
 * comparisons but never gate CI.
 */

#ifndef KLOC_BENCH_REPORT_HH
#define KLOC_BENCH_REPORT_HH

#include <sys/resource.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace kloc {
namespace bench {

/** One reported measurement. */
struct Metric
{
    std::string name;
    double value = 0.0;
    std::string unit;
    std::string better;  ///< "higher" or "lower"
    bool gate = false;   ///< deterministic; compared against baseline
};

/** Collects metrics and writes the common JSON artifact. */
class JsonReport
{
  public:
    /**
     * @param bench   binary name without the bench_ prefix
     * @param outdir  artifact directory (BenchConfig::outdir; the
     *                environment is parsed once at startup, never
     *                here)
     */
    explicit JsonReport(std::string bench, std::string outdir = ".")
        : _bench(std::move(bench)), _outdir(std::move(outdir))
    {
    }

    void
    add(std::string name, double value, std::string unit,
        std::string better, bool gate)
    {
        _metrics.push_back(Metric{std::move(name), value, std::move(unit),
                                  std::move(better), gate});
    }

    /** Peak resident set size of this process in KiB. */
    static long
    peakRssKb()
    {
        struct rusage usage = {};
        getrusage(RUSAGE_SELF, &usage);
        return usage.ru_maxrss;
    }

    /**
     * Write BENCH_<bench>.json under the configured outdir.
     * Returns false on I/O failure.
     */
    bool
    write() const
    {
        const std::string path = _outdir + "/BENCH_" + _bench + ".json";
        std::FILE *out = std::fopen(path.c_str(), "w");
        if (out == nullptr) {
            std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
            return false;
        }
        std::fprintf(out,
                     "{\n"
                     "  \"schema\": \"kloc-bench-v1\",\n"
                     "  \"bench\": \"%s\",\n"
                     "  \"peak_rss_kb\": %ld,\n"
                     "  \"metrics\": [",
                     _bench.c_str(), peakRssKb());
        for (size_t i = 0; i < _metrics.size(); ++i) {
            const Metric &m = _metrics[i];
            std::fprintf(out,
                         "%s\n    {\"name\": \"%s\", \"value\": %.17g, "
                         "\"unit\": \"%s\", \"better\": \"%s\", "
                         "\"gate\": %s}",
                         i == 0 ? "" : ",", m.name.c_str(), m.value,
                         m.unit.c_str(), m.better.c_str(),
                         m.gate ? "true" : "false");
        }
        std::fprintf(out, "\n  ]\n}\n");
        std::fclose(out);
        std::printf("bench json: %s\n", path.c_str());
        return true;
    }

  private:
    std::string _bench;
    std::string _outdir;
    std::vector<Metric> _metrics;
};

} // namespace bench
} // namespace kloc

#endif // KLOC_BENCH_REPORT_HH
