file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_thp.dir/bench_ablation_thp.cc.o"
  "CMakeFiles/bench_ablation_thp.dir/bench_ablation_thp.cc.o.d"
  "bench_ablation_thp"
  "bench_ablation_thp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_thp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
