# Empty dependencies file for bench_ablation_thp.
# This may be replaced when dependencies are built.
