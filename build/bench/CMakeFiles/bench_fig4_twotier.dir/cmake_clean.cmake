file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_twotier.dir/bench_fig4_twotier.cc.o"
  "CMakeFiles/bench_fig4_twotier.dir/bench_fig4_twotier.cc.o.d"
  "bench_fig4_twotier"
  "bench_fig4_twotier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_twotier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
