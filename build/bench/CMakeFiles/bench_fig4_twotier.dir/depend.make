# Empty dependencies file for bench_fig4_twotier.
# This may be replaced when dependencies are built.
