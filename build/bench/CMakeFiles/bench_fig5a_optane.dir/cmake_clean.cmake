file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5a_optane.dir/bench_fig5a_optane.cc.o"
  "CMakeFiles/bench_fig5a_optane.dir/bench_fig5a_optane.cc.o.d"
  "bench_fig5a_optane"
  "bench_fig5a_optane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5a_optane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
