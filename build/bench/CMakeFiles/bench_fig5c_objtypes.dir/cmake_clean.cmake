file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5c_objtypes.dir/bench_fig5c_objtypes.cc.o"
  "CMakeFiles/bench_fig5c_objtypes.dir/bench_fig5c_objtypes.cc.o.d"
  "bench_fig5c_objtypes"
  "bench_fig5c_objtypes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5c_objtypes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
