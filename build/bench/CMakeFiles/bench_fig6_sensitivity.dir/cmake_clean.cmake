file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_sensitivity.dir/bench_fig6_sensitivity.cc.o"
  "CMakeFiles/bench_fig6_sensitivity.dir/bench_fig6_sensitivity.cc.o.d"
  "bench_fig6_sensitivity"
  "bench_fig6_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
