file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_memusage.dir/bench_table6_memusage.cc.o"
  "CMakeFiles/bench_table6_memusage.dir/bench_table6_memusage.cc.o.d"
  "bench_table6_memusage"
  "bench_table6_memusage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_memusage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
