file(REMOVE_RECURSE
  "CMakeFiles/analytics_pipeline.dir/analytics_pipeline.cc.o"
  "CMakeFiles/analytics_pipeline.dir/analytics_pipeline.cc.o.d"
  "analytics_pipeline"
  "analytics_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
