file(REMOVE_RECURSE
  "CMakeFiles/tier_explorer.dir/tier_explorer.cc.o"
  "CMakeFiles/tier_explorer.dir/tier_explorer.cc.o.d"
  "tier_explorer"
  "tier_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tier_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
