file(REMOVE_RECURSE
  "CMakeFiles/kloc_alloc.dir/slab.cc.o"
  "CMakeFiles/kloc_alloc.dir/slab.cc.o.d"
  "libkloc_alloc.a"
  "libkloc_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kloc_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
