file(REMOVE_RECURSE
  "libkloc_alloc.a"
)
