# Empty dependencies file for kloc_alloc.
# This may be replaced when dependencies are built.
