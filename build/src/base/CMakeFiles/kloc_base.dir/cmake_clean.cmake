file(REMOVE_RECURSE
  "CMakeFiles/kloc_base.dir/logging.cc.o"
  "CMakeFiles/kloc_base.dir/logging.cc.o.d"
  "CMakeFiles/kloc_base.dir/radix_tree.cc.o"
  "CMakeFiles/kloc_base.dir/radix_tree.cc.o.d"
  "CMakeFiles/kloc_base.dir/rbtree.cc.o"
  "CMakeFiles/kloc_base.dir/rbtree.cc.o.d"
  "CMakeFiles/kloc_base.dir/rng.cc.o"
  "CMakeFiles/kloc_base.dir/rng.cc.o.d"
  "CMakeFiles/kloc_base.dir/stats.cc.o"
  "CMakeFiles/kloc_base.dir/stats.cc.o.d"
  "libkloc_base.a"
  "libkloc_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kloc_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
