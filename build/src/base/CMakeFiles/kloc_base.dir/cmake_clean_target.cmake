file(REMOVE_RECURSE
  "libkloc_base.a"
)
