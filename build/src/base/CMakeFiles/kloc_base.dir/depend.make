# Empty dependencies file for kloc_base.
# This may be replaced when dependencies are built.
