file(REMOVE_RECURSE
  "CMakeFiles/kloc_core.dir/kloc_manager.cc.o"
  "CMakeFiles/kloc_core.dir/kloc_manager.cc.o.d"
  "libkloc_core.a"
  "libkloc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kloc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
