file(REMOVE_RECURSE
  "libkloc_core.a"
)
