# Empty dependencies file for kloc_core.
# This may be replaced when dependencies are built.
