file(REMOVE_RECURSE
  "CMakeFiles/kloc_fs.dir/block_layer.cc.o"
  "CMakeFiles/kloc_fs.dir/block_layer.cc.o.d"
  "CMakeFiles/kloc_fs.dir/journal.cc.o"
  "CMakeFiles/kloc_fs.dir/journal.cc.o.d"
  "CMakeFiles/kloc_fs.dir/page_cache.cc.o"
  "CMakeFiles/kloc_fs.dir/page_cache.cc.o.d"
  "CMakeFiles/kloc_fs.dir/vfs.cc.o"
  "CMakeFiles/kloc_fs.dir/vfs.cc.o.d"
  "libkloc_fs.a"
  "libkloc_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kloc_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
