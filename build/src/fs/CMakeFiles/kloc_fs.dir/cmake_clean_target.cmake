file(REMOVE_RECURSE
  "libkloc_fs.a"
)
