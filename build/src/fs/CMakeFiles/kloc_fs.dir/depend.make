# Empty dependencies file for kloc_fs.
# This may be replaced when dependencies are built.
