file(REMOVE_RECURSE
  "CMakeFiles/kloc_kobj.dir/kernel_heap.cc.o"
  "CMakeFiles/kloc_kobj.dir/kernel_heap.cc.o.d"
  "CMakeFiles/kloc_kobj.dir/kinds.cc.o"
  "CMakeFiles/kloc_kobj.dir/kinds.cc.o.d"
  "libkloc_kobj.a"
  "libkloc_kobj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kloc_kobj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
