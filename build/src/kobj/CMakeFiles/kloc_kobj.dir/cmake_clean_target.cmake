file(REMOVE_RECURSE
  "libkloc_kobj.a"
)
