# Empty dependencies file for kloc_kobj.
# This may be replaced when dependencies are built.
