
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/buddy_allocator.cc" "src/mem/CMakeFiles/kloc_mem.dir/buddy_allocator.cc.o" "gcc" "src/mem/CMakeFiles/kloc_mem.dir/buddy_allocator.cc.o.d"
  "/root/repo/src/mem/lru.cc" "src/mem/CMakeFiles/kloc_mem.dir/lru.cc.o" "gcc" "src/mem/CMakeFiles/kloc_mem.dir/lru.cc.o.d"
  "/root/repo/src/mem/migration.cc" "src/mem/CMakeFiles/kloc_mem.dir/migration.cc.o" "gcc" "src/mem/CMakeFiles/kloc_mem.dir/migration.cc.o.d"
  "/root/repo/src/mem/tier_manager.cc" "src/mem/CMakeFiles/kloc_mem.dir/tier_manager.cc.o" "gcc" "src/mem/CMakeFiles/kloc_mem.dir/tier_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/kloc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/kloc_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
