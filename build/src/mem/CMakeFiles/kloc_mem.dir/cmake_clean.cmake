file(REMOVE_RECURSE
  "CMakeFiles/kloc_mem.dir/buddy_allocator.cc.o"
  "CMakeFiles/kloc_mem.dir/buddy_allocator.cc.o.d"
  "CMakeFiles/kloc_mem.dir/lru.cc.o"
  "CMakeFiles/kloc_mem.dir/lru.cc.o.d"
  "CMakeFiles/kloc_mem.dir/migration.cc.o"
  "CMakeFiles/kloc_mem.dir/migration.cc.o.d"
  "CMakeFiles/kloc_mem.dir/tier_manager.cc.o"
  "CMakeFiles/kloc_mem.dir/tier_manager.cc.o.d"
  "libkloc_mem.a"
  "libkloc_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kloc_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
