file(REMOVE_RECURSE
  "libkloc_mem.a"
)
