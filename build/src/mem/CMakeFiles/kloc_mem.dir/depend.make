# Empty dependencies file for kloc_mem.
# This may be replaced when dependencies are built.
