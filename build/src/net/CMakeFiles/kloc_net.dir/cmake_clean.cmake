file(REMOVE_RECURSE
  "CMakeFiles/kloc_net.dir/net_stack.cc.o"
  "CMakeFiles/kloc_net.dir/net_stack.cc.o.d"
  "libkloc_net.a"
  "libkloc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kloc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
