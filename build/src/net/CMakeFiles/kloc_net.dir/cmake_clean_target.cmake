file(REMOVE_RECURSE
  "libkloc_net.a"
)
