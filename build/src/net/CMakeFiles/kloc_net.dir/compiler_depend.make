# Empty compiler generated dependencies file for kloc_net.
# This may be replaced when dependencies are built.
