file(REMOVE_RECURSE
  "CMakeFiles/kloc_platform.dir/optane.cc.o"
  "CMakeFiles/kloc_platform.dir/optane.cc.o.d"
  "CMakeFiles/kloc_platform.dir/system.cc.o"
  "CMakeFiles/kloc_platform.dir/system.cc.o.d"
  "CMakeFiles/kloc_platform.dir/two_tier.cc.o"
  "CMakeFiles/kloc_platform.dir/two_tier.cc.o.d"
  "libkloc_platform.a"
  "libkloc_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kloc_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
