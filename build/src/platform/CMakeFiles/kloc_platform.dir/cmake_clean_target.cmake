file(REMOVE_RECURSE
  "libkloc_platform.a"
)
