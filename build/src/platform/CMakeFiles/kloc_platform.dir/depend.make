# Empty dependencies file for kloc_platform.
# This may be replaced when dependencies are built.
