file(REMOVE_RECURSE
  "CMakeFiles/kloc_policy.dir/autonuma.cc.o"
  "CMakeFiles/kloc_policy.dir/autonuma.cc.o.d"
  "CMakeFiles/kloc_policy.dir/strategy.cc.o"
  "CMakeFiles/kloc_policy.dir/strategy.cc.o.d"
  "libkloc_policy.a"
  "libkloc_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kloc_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
