file(REMOVE_RECURSE
  "libkloc_policy.a"
)
