# Empty compiler generated dependencies file for kloc_policy.
# This may be replaced when dependencies are built.
