file(REMOVE_RECURSE
  "CMakeFiles/kloc_sim.dir/machine.cc.o"
  "CMakeFiles/kloc_sim.dir/machine.cc.o.d"
  "CMakeFiles/kloc_sim.dir/memory_model.cc.o"
  "CMakeFiles/kloc_sim.dir/memory_model.cc.o.d"
  "libkloc_sim.a"
  "libkloc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kloc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
