file(REMOVE_RECURSE
  "libkloc_sim.a"
)
