# Empty dependencies file for kloc_sim.
# This may be replaced when dependencies are built.
