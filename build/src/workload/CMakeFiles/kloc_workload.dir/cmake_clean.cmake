file(REMOVE_RECURSE
  "CMakeFiles/kloc_workload.dir/cassandra.cc.o"
  "CMakeFiles/kloc_workload.dir/cassandra.cc.o.d"
  "CMakeFiles/kloc_workload.dir/filebench.cc.o"
  "CMakeFiles/kloc_workload.dir/filebench.cc.o.d"
  "CMakeFiles/kloc_workload.dir/redis.cc.o"
  "CMakeFiles/kloc_workload.dir/redis.cc.o.d"
  "CMakeFiles/kloc_workload.dir/rocksdb.cc.o"
  "CMakeFiles/kloc_workload.dir/rocksdb.cc.o.d"
  "CMakeFiles/kloc_workload.dir/spark.cc.o"
  "CMakeFiles/kloc_workload.dir/spark.cc.o.d"
  "CMakeFiles/kloc_workload.dir/varmail.cc.o"
  "CMakeFiles/kloc_workload.dir/varmail.cc.o.d"
  "CMakeFiles/kloc_workload.dir/webserver.cc.o"
  "CMakeFiles/kloc_workload.dir/webserver.cc.o.d"
  "CMakeFiles/kloc_workload.dir/workload.cc.o"
  "CMakeFiles/kloc_workload.dir/workload.cc.o.d"
  "libkloc_workload.a"
  "libkloc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kloc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
