file(REMOVE_RECURSE
  "libkloc_workload.a"
)
