# Empty dependencies file for kloc_workload.
# This may be replaced when dependencies are built.
