file(REMOVE_RECURSE
  "CMakeFiles/test_alloc.dir/alloc/test_slab.cc.o"
  "CMakeFiles/test_alloc.dir/alloc/test_slab.cc.o.d"
  "test_alloc"
  "test_alloc.pdb"
  "test_alloc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
