file(REMOVE_RECURSE
  "CMakeFiles/test_fs.dir/fs/test_fs_units.cc.o"
  "CMakeFiles/test_fs.dir/fs/test_fs_units.cc.o.d"
  "CMakeFiles/test_fs.dir/fs/test_truncate_poll_snapshot.cc.o"
  "CMakeFiles/test_fs.dir/fs/test_truncate_poll_snapshot.cc.o.d"
  "CMakeFiles/test_fs.dir/fs/test_vfs.cc.o"
  "CMakeFiles/test_fs.dir/fs/test_vfs.cc.o.d"
  "CMakeFiles/test_fs.dir/fs/test_vfs_extended.cc.o"
  "CMakeFiles/test_fs.dir/fs/test_vfs_extended.cc.o.d"
  "CMakeFiles/test_fs.dir/fs/test_vfs_property.cc.o"
  "CMakeFiles/test_fs.dir/fs/test_vfs_property.cc.o.d"
  "test_fs"
  "test_fs.pdb"
  "test_fs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
