file(REMOVE_RECURSE
  "CMakeFiles/test_kobj.dir/kobj/test_kernel_heap.cc.o"
  "CMakeFiles/test_kobj.dir/kobj/test_kernel_heap.cc.o.d"
  "test_kobj"
  "test_kobj.pdb"
  "test_kobj[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kobj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
