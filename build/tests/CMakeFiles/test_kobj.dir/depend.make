# Empty dependencies file for test_kobj.
# This may be replaced when dependencies are built.
