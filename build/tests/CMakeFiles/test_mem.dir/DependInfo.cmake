
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mem/test_buddy.cc" "tests/CMakeFiles/test_mem.dir/mem/test_buddy.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/test_buddy.cc.o.d"
  "/root/repo/tests/mem/test_lru.cc" "tests/CMakeFiles/test_mem.dir/mem/test_lru.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/test_lru.cc.o.d"
  "/root/repo/tests/mem/test_migration.cc" "tests/CMakeFiles/test_mem.dir/mem/test_migration.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/test_migration.cc.o.d"
  "/root/repo/tests/mem/test_tier_manager.cc" "tests/CMakeFiles/test_mem.dir/mem/test_tier_manager.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/test_tier_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/kloc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/kloc_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/kloc_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/kloc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/kloc_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/kloc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kobj/CMakeFiles/kloc_kobj.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/kloc_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/kloc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kloc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/kloc_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
