file(REMOVE_RECURSE
  "CMakeFiles/test_mem.dir/mem/test_buddy.cc.o"
  "CMakeFiles/test_mem.dir/mem/test_buddy.cc.o.d"
  "CMakeFiles/test_mem.dir/mem/test_lru.cc.o"
  "CMakeFiles/test_mem.dir/mem/test_lru.cc.o.d"
  "CMakeFiles/test_mem.dir/mem/test_migration.cc.o"
  "CMakeFiles/test_mem.dir/mem/test_migration.cc.o.d"
  "CMakeFiles/test_mem.dir/mem/test_tier_manager.cc.o"
  "CMakeFiles/test_mem.dir/mem/test_tier_manager.cc.o.d"
  "test_mem"
  "test_mem.pdb"
  "test_mem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
