file(REMOVE_RECURSE
  "CMakeFiles/klocsim.dir/klocsim.cc.o"
  "CMakeFiles/klocsim.dir/klocsim.cc.o.d"
  "klocsim"
  "klocsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/klocsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
