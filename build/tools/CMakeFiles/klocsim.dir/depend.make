# Empty dependencies file for klocsim.
# This may be replaced when dependencies are built.
