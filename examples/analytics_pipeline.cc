/**
 * @file
 * analytics_pipeline: a Spark-like terasort on the Optane
 * Memory-Mode platform, showing the AutoNUMA story of Fig. 5a.
 *
 * A streaming interferer loads socket 0 while the job starts there;
 * the scheduler then moves the job to socket 1. Stock AutoNUMA
 * migrates only application pages — the job's page cache and other
 * kernel objects stay behind on the loaded socket unless KLOCs
 * moves them.
 *
 *   $ ./analytics_pipeline [scale]
 */

#include <cstdio>
#include <cstdlib>

#include "platform/optane.hh"
#include "workload/runner.hh"
#include "workload/workload.hh"

using namespace kloc;

namespace {

double
runJob(AutoNumaPolicy::Mode mode, unsigned scale, const char *label)
{
    OptanePlatform::Config config;
    config.scale = scale;
    OptanePlatform platform(config);
    System &sys = platform.sys();
    platform.setInterference(true);
    platform.applyPolicy(mode);
    sys.fs().startDaemons();

    WorkloadConfig wl_config;
    wl_config.scale = scale;

    // Phase 1 (generate) runs on the interfered socket 0.
    platform.moveTaskToSocket(0);
    wl_config.cpus = platform.taskCpus();
    auto workload = makeWorkload("spark", wl_config);
    workload->setup(sys);
    sys.fs().syncAll();

    // The scheduler escapes the interference before the sort.
    platform.moveTaskToSocket(1);
    workload->setCpus(platform.taskCpus());
    sys.machine().charge(kQuiesceWindow);
    const WorkloadResult result = workload->run(sys);

    std::printf("%-12s %10.0f chunks/s   %8llu pages migrated\n", label,
                result.throughput(),
                static_cast<unsigned long long>(
                    sys.migrator().stats().migratedPages));
    workload->teardown(sys);
    return result.throughput();
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned scale =
        argc > 1 ? static_cast<unsigned>(std::strtoul(argv[1], nullptr,
                                                      10))
                 : 128;
    std::printf("analytics_pipeline: terasort on Optane Memory Mode "
                "(scale 1:%u)\n\n", scale);

    const double base =
        runJob(AutoNumaPolicy::Mode::Static, scale, "static");
    const double autonuma =
        runJob(AutoNumaPolicy::Mode::AutoNuma, scale, "autonuma");
    const double klocs =
        runJob(AutoNumaPolicy::Mode::Kloc, scale, "klocs");

    std::printf("\nspeedup over static: autonuma %.2fx, klocs %.2fx\n",
                autonuma / base, klocs / base);
    return 0;
}
