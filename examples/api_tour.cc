/**
 * @file
 * api_tour: the Table 2 KLOC API, hand-driven.
 *
 * Walks exactly what Fig. 3(c)'s pseudocode sketches for a dentry
 * allocation — map a knode to a fresh inode, add kernel objects,
 * iterate the split trees, consult the kmap's LRU view, and migrate
 * a whole KLOC — without the filesystem in between. This is the
 * "OS developer" view of the abstraction.
 */

#include <cstdio>

#include "core/kloc_manager.hh"
#include "fs/objects.hh"
#include "mem/placement.hh"
#include "sim/machine.hh"

using namespace kloc;

int
main()
{
    // A bare machine: one fast and one slow tier, no filesystem.
    Machine machine(4, 1);
    TierManager tiers(machine);
    LruEngine lru(machine, tiers);
    MemAccessor mem(machine, lru);
    MigrationEngine migrator(machine, tiers, lru);
    KernelHeap heap(mem, tiers);
    KlocManager kloc(heap, migrator);

    TierSpec spec;
    spec.name = "fast";
    spec.capacity = 16 * kMiB;
    spec.readLatency = Tick{80};
    spec.writeLatency = Tick{80};
    spec.readBandwidth = 30ULL * 1000 * kMiB;
    spec.writeBandwidth = 30ULL * 1000 * kMiB;
    const TierId fast = tiers.addTier(spec);
    spec.name = "slow";
    spec.capacity = 64 * kMiB;
    spec.readBandwidth /= 8;
    spec.writeBandwidth /= 8;
    const TierId slow = tiers.addTier(spec);

    StaticPlacement placement({fast, slow}, {fast, slow});
    heap.setPolicy(&placement);

    // sys_enable_kloc(): turn the abstraction on.
    kloc.setEnabled(true);
    kloc.setTierOrder({fast, slow});
    heap.setKlocInterface(true);

    // map_knode(): a new file's inode gets its KLOC.
    const uint64_t ino = heap.allocInodeId();
    Knode *knode = kloc.mapKnode(ino);
    std::printf("mapped knode for inode %llu (backing tier: %s)\n",
                (unsigned long long)ino,
                tiers.tier(knode->backing.frame->tier).spec().name
                    .c_str());

    // knode_add_obj(): Fig. 3(c)'s dentry allocation, then a page
    // cache page and a journal record.
    Dentry dentry;
    dentry.inodeId = ino;
    heap.allocBacking(dentry, /*knode_active=*/true, knode->id);
    kloc.addObject(knode, &dentry);

    PageCachePage page;
    page.inodeId = ino;
    heap.allocBacking(page, true, knode->id);
    kloc.addObject(knode, &page);

    JournalRecord record;
    record.inodeId = ino;
    heap.allocBacking(record, true, knode->id);
    kloc.addObject(knode, &record);

    // itr_knode_slab() / itr_knode_cache(): the split trees.
    std::printf("\nrbtree-slab members:\n");
    kloc.forEachSlabObj(knode, [](KernelObject *obj) {
        std::printf("  %-16s %4llu B on %s\n", kobjKindName(obj->kind),
                    (unsigned long long)obj->size(),
                    obj->frame()->tier == 0 ? "fast" : "slow");
    });
    std::printf("rbtree-cache members:\n");
    kloc.forEachCacheObj(knode, [](KernelObject *obj) {
        std::printf("  %-16s %4llu B on %s\n", kobjKindName(obj->kind),
                    (unsigned long long)obj->size(),
                    obj->frame()->tier == 0 ? "fast" : "slow");
    });

    // find_cpu() + the per-CPU fast path.
    machine.setCurrentCpu(2);
    kloc.markActive(knode);
    std::printf("\nfind_cpu(knode) = %d\n", kloc.findCpu(knode));
    std::printf("findKnode(%llu) fast-path hit: %s\n",
                (unsigned long long)ino,
                kloc.findKnode(ino) == knode &&
                        kloc.stats().perCpuHits > 0
                    ? "yes"
                    : "no");

    // get_LRU_knodes(): the file closes, the KLOC turns cold.
    kloc.markInactive(knode);
    auto coldest = kloc.lruKnodes(1);
    std::printf("coldest knode in the kmap: inode %llu (inuse=%d)\n",
                (unsigned long long)coldest.at(0)->id,
                coldest.at(0)->inuse ? 1 : 0);

    // Whole-KLOC migration: everything moves together.
    const uint64_t moved = kloc.migrateKnodeObjects(knode, slow);
    std::printf("\nmigrated the whole KLOC to slow memory: %llu pages "
                "(page on %s, dentry slab on %s)\n",
                (unsigned long long)moved,
                page.frame()->tier == slow ? "slow" : "fast",
                dentry.frame()->tier == slow ? "slow" : "fast");

    // sys_kloc_memsize(): cap fast-tier kernel residency.
    kloc.setMemLimit(fast, kPageSize);
    std::printf("after sys_kloc_memsize(fast, 4KB): overMemLimit=%d\n",
                kloc.overMemLimit(fast) ? 1 : 0);

    std::printf("\nmetadata: %llu bytes for %llu tracked objects\n",
                (unsigned long long)kloc.metadataBytes(),
                (unsigned long long)knode->objectCount());

    // Teardown mirrors inode deletion: objects die, then the knode.
    for (KernelObject *obj : {static_cast<KernelObject *>(&dentry),
                              static_cast<KernelObject *>(&page),
                              static_cast<KernelObject *>(&record)}) {
        kloc.removeObject(obj);
        heap.freeBacking(*obj);
    }
    kloc.unmapKnode(knode);
    std::printf("unmapped; live knodes: %llu\n",
                (unsigned long long)kloc.knodeCount());
    return 0;
}
