/**
 * @file
 * kv_server: a Redis-like networked key-value store on the two-tier
 * platform, comparing tiering strategies side by side.
 *
 * Demonstrates the networking half of the KLOC story: every request
 * crosses the simulated TCP stack (rx ring, skbuffs, sockets), and
 * the strategy decides where those kernel objects live.
 *
 *   $ ./kv_server [ops] [scale]
 */

#include <cstdio>
#include <cstdlib>

#include "platform/two_tier.hh"
#include "workload/runner.hh"
#include "workload/workload.hh"

using namespace kloc;

int
main(int argc, char **argv)
{
    const uint64_t ops =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 40000;
    const unsigned scale =
        argc > 2 ? static_cast<unsigned>(std::strtoul(argv[2], nullptr,
                                                      10))
                 : 64;

    std::printf("kv_server: Redis-like store, %llu ops, scale 1:%u\n\n",
                static_cast<unsigned long long>(ops), scale);
    std::printf("%-18s %12s %10s %12s %12s\n", "strategy", "ops/s",
                "speedup", "early-demux", "skb pages");

    double baseline = 0;
    for (const StrategyKind kind :
         {StrategyKind::AllSlow, StrategyKind::Naive, StrategyKind::Nimble,
          StrategyKind::NimblePlusPlus, StrategyKind::Kloc}) {
        TwoTierPlatform::Config config;
        config.scale = scale;
        TwoTierPlatform platform(config);
        System &sys = platform.sys();
        platform.applyStrategy(kind);
        sys.fs().startDaemons();

        WorkloadConfig wl_config;
        wl_config.scale = scale;
        wl_config.operations = ops;
        auto workload = makeWorkload("redis", wl_config);
        const WorkloadResult result = runMeasured(sys, *workload);

        if (baseline == 0)
            baseline = result.throughput();
        std::printf("%-18s %12.0f %9.2fx %12llu %12llu\n",
                    strategyName(kind), result.throughput(),
                    result.throughput() / baseline,
                    static_cast<unsigned long long>(
                        sys.net().stats().earlyDemuxPackets),
                    static_cast<unsigned long long>(
                        sys.tiers().cumulativeAllocPages(
                            ObjClass::SockBuf)));
        workload->teardown(sys);
    }
    std::printf("\nKLOCs pins hot socket buffers (rx ring, skb pages) in "
                "fast memory and\ndemotes checkpoint page-cache "
                "pollution as dump files close.\n");
    return 0;
}
