/**
 * @file
 * Quickstart: build the two-tier platform, enable KLOCs, run a small
 * filesystem workload, and inspect what the abstraction did.
 *
 *   $ ./quickstart [strategy]
 *
 * where strategy is one of: all_fast, all_slow, naive, nimble,
 * nimble++, klocs_nomigration, klocs (default).
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "platform/two_tier.hh"
#include "workload/runner.hh"
#include "workload/workload.hh"

using namespace kloc;

namespace {

StrategyKind
parseStrategy(const std::string &name)
{
    for (const StrategyKind kind :
         {StrategyKind::AllFast, StrategyKind::AllSlow,
          StrategyKind::Naive, StrategyKind::Nimble,
          StrategyKind::NimblePlusPlus, StrategyKind::KlocNoMigration,
          StrategyKind::Kloc}) {
        if (name == strategyName(kind))
            return kind;
    }
    fatal("unknown strategy '%s'", name.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const StrategyKind kind =
        argc > 1 ? parseStrategy(argv[1]) : StrategyKind::Kloc;
    const std::string workload_name = argc > 2 ? argv[2] : "rocksdb";

    // A scaled-down two-tier machine: the paper's 8 GB fast tier at
    // 1:64 scale, slow tier at a quarter of fast bandwidth.
    TwoTierPlatform::Config config;
    config.scale = 64;
    TwoTierPlatform platform(config);
    System &sys = platform.sys();

    std::printf("two-tier platform: fast %llu MiB / slow %llu MiB\n",
                static_cast<unsigned long long>(
                    sys.tiers().tier(platform.fastTier()).spec().capacity /
                    kMiB),
                static_cast<unsigned long long>(
                    sys.tiers().tier(platform.slowTier()).spec().capacity /
                    kMiB));

    platform.applyStrategy(kind);
    sys.fs().startDaemons();
    std::printf("strategy: %s\n", strategyName(kind));

    // Run a small RocksDB-like workload.
    WorkloadConfig wl_config;
    wl_config.scale = 64;
    wl_config.operations = 100000;
    auto workload = makeWorkload(workload_name, wl_config);
    workload->setup(sys);
    sys.fs().syncAll();
    sys.machine().charge(kQuiesceWindow);
    const Tick k0 = sys.machine().kernelRefTicks();
    const Tick u0 = sys.machine().userRefTicks();
    const uint64_t d0 = sys.fs().device().requests();
    const WorkloadResult result = workload->run(sys);
    std::printf("run-phase: kernel-ref %.1f ms, user-ref %.1f ms, "
                "device reqs %llu\n",
                (double)(sys.machine().kernelRefTicks() - k0) /
                    kMillisecond,
                (double)(sys.machine().userRefTicks() - u0) /
                    kMillisecond,
                (unsigned long long)(sys.fs().device().requests() - d0));

    std::printf("\n%s: %llu ops in %.1f ms virtual -> %.0f ops/s\n",
                workload->name(),
                static_cast<unsigned long long>(result.operations),
                static_cast<double>(result.elapsed) / kMillisecond,
                result.throughput());

    const Tier &fast = sys.tiers().tier(platform.fastTier());
    const Tier &slow = sys.tiers().tier(platform.slowTier());
    std::printf("\nfast tier: %5.1f%% used   slow tier: %5.1f%% used\n",
                fast.utilization() * 100.0, slow.utilization() * 100.0);
    for (unsigned c = 0; c < kNumObjClasses; ++c) {
        const auto cls = static_cast<ObjClass>(c);
        std::printf("  %-12s fast %8llu pages   slow %8llu pages\n",
                    objClassName(cls),
                    static_cast<unsigned long long>(
                        fast.residentPages(cls)),
                    static_cast<unsigned long long>(
                        slow.residentPages(cls)));
    }

    const FsStats &fss = sys.fs().stats();
    std::printf("\nfs: hits %llu misses %llu readahead %llu reclaimed %llu "
                "writeback %llu bypass %llu\n",
                (unsigned long long)fss.readPageHits,
                (unsigned long long)fss.readPageMisses,
                (unsigned long long)fss.readaheadPages,
                (unsigned long long)fss.reclaimedPages,
                (unsigned long long)fss.writebackPages,
                (unsigned long long)fss.cacheBypasses);
    std::printf("device: %llu reqs %llu MiB\n",
                (unsigned long long)sys.fs().device().requests(),
                (unsigned long long)(sys.fs().device().bytesTransferred() /
                                     kMiB));
    std::printf("refs: kernel %llu (%.1f ms) user %llu (%.1f ms)\n",
                (unsigned long long)sys.machine().kernelRefs(),
                (double)sys.machine().kernelRefTicks() / kMillisecond,
                (unsigned long long)sys.machine().userRefs(),
                (double)sys.machine().userRefTicks() / kMillisecond);

    const MigrationStats &mig = sys.migrator().stats();
    std::printf("\nmigrations: %llu pages (%llu demoted, %llu promoted)\n",
                static_cast<unsigned long long>(mig.migratedPages),
                static_cast<unsigned long long>(mig.demotedPages),
                static_cast<unsigned long long>(mig.promotedPages));

    const KlocStats &ks = sys.kloc().stats();
    std::printf("kloc: %llu knodes created, %llu objects tracked\n",
                static_cast<unsigned long long>(ks.knodesCreated),
                static_cast<unsigned long long>(ks.objectsTracked));
    std::printf("kloc metadata: %.1f MiB peak\n",
                static_cast<double>(sys.kloc().peakMetadataBytes()) /
                static_cast<double>(kMiB));

    workload->teardown(sys);
    return 0;
}
