/**
 * @file
 * tier_explorer: interactive sweep over fast-memory capacity and
 * bandwidth ratio for one workload and strategy — a CLI version of
 * the Fig. 6 sensitivity study.
 *
 *   $ ./tier_explorer [workload] [strategy] [ops]
 *
 * e.g.  ./tier_explorer rocksdb klocs 40000
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "platform/two_tier.hh"
#include "workload/runner.hh"
#include "workload/workload.hh"

using namespace kloc;

namespace {

StrategyKind
parseStrategy(const std::string &name)
{
    for (const StrategyKind kind :
         {StrategyKind::AllFast, StrategyKind::AllSlow,
          StrategyKind::Naive, StrategyKind::Nimble,
          StrategyKind::NimblePlusPlus, StrategyKind::KlocNoMigration,
          StrategyKind::Kloc}) {
        if (name == strategyName(kind))
            return kind;
    }
    fatal("unknown strategy '%s'", name.c_str());
}

double
run(const std::string &workload_name, StrategyKind kind, Bytes capacity,
    unsigned ratio, uint64_t ops)
{
    TwoTierPlatform::Config config;
    config.scale = 64;
    config.fastCapacity = capacity;
    config.bandwidthRatio = ratio;
    TwoTierPlatform platform(config);
    System &sys = platform.sys();
    platform.applyStrategy(kind);
    sys.fs().startDaemons();

    WorkloadConfig wl_config;
    wl_config.scale = 64;
    wl_config.operations = ops;
    auto workload = makeWorkload(workload_name, wl_config);
    const WorkloadResult result = runMeasured(sys, *workload);
    workload->teardown(sys);
    return result.throughput();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "rocksdb";
    const StrategyKind kind =
        parseStrategy(argc > 2 ? argv[2] : "klocs");
    const uint64_t ops =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 40000;

    std::printf("tier_explorer: %s under %s, %llu ops "
                "(speedup vs all_slow at each point)\n\n",
                workload.c_str(), strategyName(kind),
                static_cast<unsigned long long>(ops));

    std::printf("%-12s", "fast \\ bw");
    for (const unsigned ratio : {8u, 4u, 2u})
        std::printf("      1:%u", ratio);
    std::printf("\n");
    for (const Bytes capacity : {4 * kGiB, 8 * kGiB, 16 * kGiB,
                                 32 * kGiB}) {
        std::printf("%3llu GB      ",
                    static_cast<unsigned long long>(capacity / kGiB));
        for (const unsigned ratio : {8u, 4u, 2u}) {
            const double slow =
                run(workload, StrategyKind::AllSlow, capacity, ratio,
                    ops);
            const double fast = run(workload, kind, capacity, ratio, ops);
            std::printf("   %5.2fx", slow > 0 ? fast / slow : 1.0);
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    return 0;
}
