#!/usr/bin/env bash
# Benchmark pipeline: Release build, run every bench binary, collect
# the per-binary BENCH_<name>.json artifacts (schema kloc-bench-v1,
# bench/report.hh) into BENCH_results.json, and optionally gate the
# deterministic metrics against the checked-in baseline.
#
#   --quick            quarter-size smoke runs (KLOC_BENCH_QUICK=1,
#                      short google-benchmark iterations)
#   --compare          fail if any gate:true metric regresses more
#                      than the tolerance vs bench/BENCH_baseline.json
#   --update-baseline  rewrite bench/BENCH_baseline.json from this run
#   --only NAME        run just bench_<NAME> (repeatable)
#
# Environment:
#   BUILD_DIR             build tree (default: build)
#   KLOC_BENCH_OUTDIR     artifact directory
#                         (default: BUILD_DIR/bench-results)
#   KLOC_BENCH_TOLERANCE  relative regression tolerance (default 0.10)
#
# The baseline records its run mode; compare requires the same mode.
# CI gates with `bench.sh --quick --compare`, so the checked-in
# baseline is a --quick baseline: refresh it with
# `scripts/bench.sh --quick --update-baseline`.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
JOBS=${JOBS:-$(nproc)}
OUTDIR=${KLOC_BENCH_OUTDIR:-$BUILD_DIR/bench-results}
BASELINE=bench/BENCH_baseline.json
TOLERANCE=${KLOC_BENCH_TOLERANCE:-0.10}

QUICK=0
COMPARE=0
UPDATE=0
ONLY=()
while [ $# -gt 0 ]; do
    case "$1" in
      --quick) QUICK=1 ;;
      --compare) COMPARE=1 ;;
      --update-baseline) UPDATE=1 ;;
      --only) shift; ONLY+=("$1") ;;
      *)
        echo "usage: bench.sh [--quick] [--compare] [--update-baseline]" \
             "[--only NAME]..." >&2
        exit 2
        ;;
    esac
    shift
done

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$JOBS"

BENCHES=(micro_structures fig2_characterization fig4_twotier
         fig5a_optane fig5b_breakdown fig5c_objtypes fig6_sensitivity
         fig7_policies fig8_degradation fig9_sharding table6_memusage
         ablation_percpu ablation_prefetch
         ablation_thp)
if [ ${#ONLY[@]} -gt 0 ]; then
    BENCHES=("${ONLY[@]}")
fi

mkdir -p "$OUTDIR"
rm -f "$OUTDIR"/BENCH_*.json
export KLOC_BENCH_OUTDIR="$OUTDIR"
# Sharded benches (fig6/fig7/fig9) spread epoch bodies over worker
# threads. The worker count only moves wall-clock — gated metrics and
# traces are identical at any value — so default it to the machine.
export KLOC_SHARDS=${KLOC_SHARDS:-$JOBS}
if [ "$QUICK" = 1 ]; then
    export KLOC_BENCH_QUICK=1
fi

for bench in "${BENCHES[@]}"; do
    bin="$BUILD_DIR/bench/bench_$bench"
    if [ ! -x "$bin" ]; then
        echo "bench.sh: missing binary $bin" >&2
        exit 1
    fi
    args=()
    if [ "$bench" = micro_structures ] && [ "$QUICK" = 1 ]; then
        args+=(--benchmark_min_time=0.02)
    fi
    echo "== bench_$bench"
    "$bin" "${args[@]}" > "$OUTDIR/bench_$bench.out"
done

AGG_ARGS=(--outdir "$OUTDIR" --output "$OUTDIR/BENCH_results.json")
if [ "$QUICK" = 1 ]; then
    AGG_ARGS+=(--quick)
fi
python3 scripts/bench_json.py aggregate "${AGG_ARGS[@]}"

if [ "$UPDATE" = 1 ]; then
    cp "$OUTDIR/BENCH_results.json" "$BASELINE"
    echo "bench.sh: baseline updated: $BASELINE"
fi

if [ "$COMPARE" = 1 ]; then
    if [ ! -f "$BASELINE" ]; then
        echo "bench.sh: no baseline at $BASELINE (run with" \
             "--update-baseline first)" >&2
        exit 1
    fi
    python3 scripts/bench_json.py compare \
        --results "$OUTDIR/BENCH_results.json" \
        --baseline "$BASELINE" --tolerance "$TOLERANCE"
fi

echo "bench.sh: artifacts in $OUTDIR"
