#!/usr/bin/env python3
"""Aggregate and regression-gate kloc-bench-v1 artifacts.

Every bench binary writes a BENCH_<name>.json artifact (schema
"kloc-bench-v1", see bench/report.hh). This tool glues them into the
run-level BENCH_results.json and compares deterministic metrics
against the checked-in baseline:

  bench_json.py aggregate --outdir DIR [--quick] --output FILE
  bench_json.py compare --results FILE --baseline FILE [--tolerance F]

Only metrics with "gate": true participate in the compare. Those are
derived from virtual (simulated) time, so they are bit-identical
across machines for the same code and run mode; wall-clock metrics
are carried along for human before/after reading but never gate.

The baseline records the run mode ("quick": true/false). Comparing a
quick run against a full baseline (or vice versa) is an error, not a
regression: the workload sizes differ, so the numbers are
incomparable.
"""

import argparse
import json
import sys
from pathlib import Path

SCHEMA = "kloc-bench-v1"
RESULTS_SCHEMA = "kloc-bench-results-v1"


def fail(message):
    print(f"bench_json: {message}", file=sys.stderr)
    sys.exit(1)


def load_json(path):
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"cannot read {path}: {err}")


def aggregate(options):
    outdir = Path(options.outdir)
    artifacts = sorted(
        p for p in outdir.glob("BENCH_*.json")
        if p.name != "BENCH_results.json"
    )
    if not artifacts:
        fail(f"no BENCH_*.json artifacts in {outdir}")
    benches = []
    for path in artifacts:
        data = load_json(path)
        if data.get("schema") != SCHEMA:
            fail(f"{path}: unexpected schema {data.get('schema')!r}")
        benches.append(data)
    results = {
        "schema": RESULTS_SCHEMA,
        "quick": bool(options.quick),
        "benches": benches,
    }
    with open(options.output, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=1)
        handle.write("\n")
    gated = sum(
        1 for bench in benches for metric in bench["metrics"]
        if metric.get("gate")
    )
    total = sum(len(bench["metrics"]) for bench in benches)
    print(
        f"bench_json: aggregated {len(benches)} benches, "
        f"{total} metrics ({gated} gated) -> {options.output}"
    )


def gated_metrics(results):
    table = {}
    for bench in results.get("benches", []):
        for metric in bench.get("metrics", []):
            if metric.get("gate"):
                table[(bench["bench"], metric["name"])] = metric
    return table


def compare(options):
    results = load_json(options.results)
    baseline = load_json(options.baseline)
    for name, data in (("results", results), ("baseline", baseline)):
        if data.get("schema") != RESULTS_SCHEMA:
            fail(f"{name}: unexpected schema {data.get('schema')!r}")
    if bool(results.get("quick")) != bool(baseline.get("quick")):
        fail(
            "run mode mismatch: results quick="
            f"{bool(results.get('quick'))} vs baseline quick="
            f"{bool(baseline.get('quick'))}; regenerate the baseline "
            "with the same mode (scripts/bench.sh --update-baseline)"
        )

    tolerance = options.tolerance
    current = gated_metrics(results)
    expected = gated_metrics(baseline)
    regressions = []
    missing = []
    for key, base in expected.items():
        metric = current.get(key)
        if metric is None:
            missing.append(key)
            continue
        base_value = float(base["value"])
        new_value = float(metric["value"])
        if base_value == 0.0:
            delta = 0.0 if new_value == 0.0 else float("inf")
        elif base.get("better") == "higher":
            delta = (base_value - new_value) / abs(base_value)
        else:
            delta = (new_value - base_value) / abs(base_value)
        if delta > tolerance:
            regressions.append((key, base_value, new_value, delta))

    added = sorted(set(current) - set(expected))
    if added:
        print(
            f"bench_json: {len(added)} new gated metrics not in the "
            "baseline (run scripts/bench.sh --update-baseline to "
            "record them):"
        )
        for bench, name in added:
            print(f"  + {bench}:{name}")

    ok = True
    if missing:
        ok = False
        print("bench_json: baseline metrics missing from this run:")
        for bench, name in sorted(missing):
            print(f"  - {bench}:{name}")
    if regressions:
        ok = False
        print(
            "bench_json: regressions beyond "
            f"{tolerance:.0%} tolerance:"
        )
        for (bench, name), base_value, new_value, delta in sorted(
            regressions, key=lambda row: -row[3]
        ):
            print(
                f"  ! {bench}:{name}: {base_value:g} -> {new_value:g} "
                f"({delta:+.1%})"
            )
    if not ok:
        sys.exit(1)
    print(
        f"bench_json: {len(expected)} gated metrics within "
        f"{tolerance:.0%} of baseline"
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    commands = parser.add_subparsers(dest="command", required=True)

    agg = commands.add_parser(
        "aggregate", help="merge BENCH_*.json into BENCH_results.json"
    )
    agg.add_argument("--outdir", required=True)
    agg.add_argument("--output", required=True)
    agg.add_argument("--quick", action="store_true")
    agg.set_defaults(func=aggregate)

    cmp_cmd = commands.add_parser(
        "compare", help="gate deterministic metrics against a baseline"
    )
    cmp_cmd.add_argument("--results", required=True)
    cmp_cmd.add_argument("--baseline", required=True)
    cmp_cmd.add_argument("--tolerance", type=float, default=0.10)
    cmp_cmd.set_defaults(func=compare)

    options = parser.parse_args()
    options.func(options)


if __name__ == "__main__":
    main()
