#!/usr/bin/env bash
# Repo check: configure, build, run the full test suite, then verify
# that event tracing is deterministic end-to-end (two identical
# klocsim runs must dump byte-identical traces, with the invariant
# checker clean on both).
#
# Independent simulation runs execute concurrently: the a/b trace
# pairs run as background shell jobs, and the fault-fuzz sweep runs
# its seeds on the in-process RunPool with KLOC_JOBS workers. All
# comparisons stay byte-exact — parallelism never touches sim time.
#
# Optional stages (any combination, default is build+test+determinism):
#   --lint      run klint and, when available, clang-tidy over src/
#   --lint-fast build only the klint target and run it against the
#               on-disk index cache, skipping everything else — the
#               seconds-fast pre-commit / CI lint path. Extra klint
#               flags (e.g. --github) pass through via KLINT_FLAGS.
#   --sanitize  rebuild with -DKLOC_SANITIZE=ON (ASan+UBSan) in
#               BUILD_DIR-asan and run the full test suite there
#   --tsan      rebuild with -DKLOC_TSAN=ON in BUILD_DIR-tsan and run
#               the RunPool/parallel-identity/fuzz-sweep/shard tests
#               there
#   --all       everything above (except --lint-fast, which --lint
#               subsumes)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
JOBS=${JOBS:-$(nproc)}
export KLOC_JOBS=${KLOC_JOBS:-$(nproc)}
# Sharded-engine worker threads (sim/epoch.hh). Any value must
# produce byte-identical traces; the tests exercise 1/2/4 explicitly.
export KLOC_SHARDS=${KLOC_SHARDS:-$(nproc)}

DO_LINT=0
DO_LINT_FAST=0
DO_SANITIZE=0
DO_TSAN=0
for arg in "$@"; do
    case "$arg" in
      --lint) DO_LINT=1 ;;
      --lint-fast) DO_LINT_FAST=1 ;;
      --sanitize) DO_SANITIZE=1 ;;
      --tsan) DO_TSAN=1 ;;
      --all) DO_LINT=1; DO_SANITIZE=1; DO_TSAN=1 ;;
      *) echo "usage: check.sh [--lint] [--lint-fast] [--sanitize]" \
              "[--tsan] [--all]" >&2
         exit 2 ;;
    esac
done

if [ "$DO_LINT_FAST" = 1 ]; then
    cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
    cmake --build "$BUILD_DIR" -j "$JOBS" --target klint
    # shellcheck disable=SC2086  # KLINT_FLAGS is a flag list
    "$BUILD_DIR"/tools/klint --root=. \
        --cache="${KLINT_CACHE:-$BUILD_DIR/klint-cache.txt}" \
        ${KLINT_FLAGS:-} || {
        echo "FAIL: klint reported findings" >&2
        exit 1
    }
    echo "check.sh: lint-fast OK"
    exit 0
fi

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

# Golden-style determinism check on the CLI path: same command, two
# fresh processes, identical serialized traces, zero violations. The
# two runs are independent processes, so they run concurrently.
tracedir=$(mktemp -d)
trap 'rm -rf "$tracedir"' EXIT
run_traced() {
    "$BUILD_DIR"/tools/klocsim run --workload rocksdb --ops 2000 \
        --scale 16 --trace "$1" --check > "$1.out"
}
run_traced "$tracedir/a.trace" &
run_traced "$tracedir/b.trace" &
wait
cmp "$tracedir/a.trace" "$tracedir/b.trace" || {
    echo "FAIL: klocsim traces differ between identical runs" >&2
    exit 1
}

# Same check with fault injection armed: injected faults, retries,
# and recovery must land on the same virtual ticks in both runs.
cat > "$tracedir/faults.txt" <<'EOF'
seed 11
device_write prob 0.02
device_read prob 0.01
device_timeout prob 0.005
migration_no_space prob 0.1
journal_commit_crash prob 0.1
EOF
run_faulted() {
    "$BUILD_DIR"/tools/klocsim run --workload rocksdb --ops 2000 \
        --scale 16 --fault-spec "$tracedir/faults.txt" \
        --trace "$1" --check > "$1.out"
}
run_faulted "$tracedir/fa.trace" &
run_faulted "$tracedir/fb.trace" &
wait
cmp "$tracedir/fa.trace" "$tracedir/fb.trace" || {
    echo "FAIL: klocsim traces differ between identical faulted runs" >&2
    exit 1
}

# The randomized fault fuzz must be invariant-clean on every seed;
# the sweep fans the seeds out over KLOC_JOBS RunPool workers.
"$BUILD_DIR"/tests/test_fault --gtest_filter='FaultFuzzSweep*' \
    > /dev/null || {
    echo "FAIL: fault fuzz reported invariant violations" >&2
    exit 1
}

if [ "$DO_LINT" = 1 ]; then
    # klint: the repo's own static analysis (see docs/ANALYSIS.md).
    "$BUILD_DIR"/tools/klint --root=. || {
        echo "FAIL: klint reported findings" >&2
        exit 1
    }
    # clang-tidy is best-effort: run it when installed (CI installs
    # it; a bare container may not have it).
    if command -v clang-tidy >/dev/null 2>&1; then
        cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
            > /dev/null
        mapfile -t tidy_files < <(git ls-files 'src/*.cc')
        clang-tidy -p "$BUILD_DIR" --quiet "${tidy_files[@]}" || {
            echo "FAIL: clang-tidy reported findings" >&2
            exit 1
        }
    else
        echo "check.sh: clang-tidy not installed, skipping"
    fi
    echo "check.sh: lint stage OK"
fi

if [ "$DO_SANITIZE" = 1 ]; then
    ASAN_DIR="${BUILD_DIR}-asan"
    cmake -B "$ASAN_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DKLOC_SANITIZE=ON
    cmake --build "$ASAN_DIR" -j "$JOBS"
    ctest --test-dir "$ASAN_DIR" --output-on-failure -j "$JOBS"
    echo "check.sh: sanitizer stage OK"
fi

if [ "$DO_TSAN" = 1 ]; then
    # ThreadSanitizer smoke over the concurrency surface: the pool
    # itself, the parallel-vs-serial identity tests, and the pooled
    # fuzz sweep. The rest of the suite is single-threaded and runs
    # under ASan/UBSan above.
    TSAN_DIR="${BUILD_DIR}-tsan"
    cmake -B "$TSAN_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DKLOC_TSAN=ON
    cmake --build "$TSAN_DIR" -j "$JOBS"
    ctest --test-dir "$TSAN_DIR" --output-on-failure -j "$JOBS" \
        -R 'RunPool|ParallelIdentity|FaultFuzz|Shard'
    echo "check.sh: tsan stage OK"
fi

echo "check.sh: build, tests, trace and fault determinism all OK"
