#!/usr/bin/env bash
# Repo check: configure, build, run the full test suite, then verify
# that event tracing is deterministic end-to-end (two identical
# klocsim runs must dump byte-identical traces, with the invariant
# checker clean on both).
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
JOBS=${JOBS:-$(nproc)}

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

# Golden-style determinism check on the CLI path: same command, two
# fresh processes, identical serialized traces, zero violations.
tracedir=$(mktemp -d)
trap 'rm -rf "$tracedir"' EXIT
run_traced() {
    "$BUILD_DIR"/tools/klocsim run --workload rocksdb --ops 2000 \
        --scale 16 --trace "$1" --check > "$1.out"
}
run_traced "$tracedir/a.trace"
run_traced "$tracedir/b.trace"
cmp "$tracedir/a.trace" "$tracedir/b.trace" || {
    echo "FAIL: klocsim traces differ between identical runs" >&2
    exit 1
}

# Same check with fault injection armed: injected faults, retries,
# and recovery must land on the same virtual ticks in both runs.
cat > "$tracedir/faults.txt" <<'EOF'
seed 11
device_write prob 0.02
device_read prob 0.01
device_timeout prob 0.005
migration_no_space prob 0.1
journal_commit_crash prob 0.1
EOF
run_faulted() {
    "$BUILD_DIR"/tools/klocsim run --workload rocksdb --ops 2000 \
        --scale 16 --fault-spec "$tracedir/faults.txt" \
        --trace "$1" --check > "$1.out"
}
run_faulted "$tracedir/fa.trace"
run_faulted "$tracedir/fb.trace"
cmp "$tracedir/fa.trace" "$tracedir/fb.trace" || {
    echo "FAIL: klocsim traces differ between identical faulted runs" >&2
    exit 1
}

# The randomized fault fuzz must be invariant-clean on every seed.
"$BUILD_DIR"/tests/test_fault --gtest_filter='Seeds/*' > /dev/null || {
    echo "FAIL: fault fuzz reported invariant violations" >&2
    exit 1
}
echo "check.sh: build, tests, trace and fault determinism all OK"
