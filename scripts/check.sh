#!/usr/bin/env bash
# Repo check: configure, build, run the full test suite, then verify
# that event tracing is deterministic end-to-end (two identical
# klocsim runs must dump byte-identical traces, with the invariant
# checker clean on both).
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
JOBS=${JOBS:-$(nproc)}

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

# Golden-style determinism check on the CLI path: same command, two
# fresh processes, identical serialized traces, zero violations.
tracedir=$(mktemp -d)
trap 'rm -rf "$tracedir"' EXIT
run_traced() {
    "$BUILD_DIR"/tools/klocsim run --workload rocksdb --ops 2000 \
        --scale 16 --trace "$1" --check > "$1.out"
}
run_traced "$tracedir/a.trace"
run_traced "$tracedir/b.trace"
cmp "$tracedir/a.trace" "$tracedir/b.trace" || {
    echo "FAIL: klocsim traces differ between identical runs" >&2
    exit 1
}
echo "check.sh: build, tests, and trace determinism all OK"
