#!/usr/bin/env bash
# Chaos soak: drive every registry policy through the fault-injected
# soak harness (hwpoison access/scan/copy sites, scheduled poison
# storms, a tier offline/online cycle, journal crashes, device errors)
# and require every cell to finish invariant-clean with non-vacuous
# containment counters — and byte-identical traces whether the grid
# runs on one RunPool worker or many.
#
# Stages (default is the pooled soak grid + poison fuzz sweep):
#   --sanitize   build with -DKLOC_SANITIZE=ON (ASan+UBSan) in
#                BUILD_DIR-asan and soak there instead
#   --bench      also run bench_fig8_degradation (quick mode) and
#                print the degradation table
#   --repeat N   run the soak grid N times (default 1); every
#                repetition must produce the same verdict
#
# Environment:
#   BUILD_DIR   build tree (default: build; --sanitize uses
#               BUILD_DIR-asan)
#   KLOC_JOBS   RunPool worker count for the pooled grid
#               (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
JOBS=${JOBS:-$(nproc)}
export KLOC_JOBS=${KLOC_JOBS:-$(nproc)}

DO_SANITIZE=0
DO_BENCH=0
REPEAT=1
while [ $# -gt 0 ]; do
    case "$1" in
      --sanitize) DO_SANITIZE=1 ;;
      --bench) DO_BENCH=1 ;;
      --repeat) shift; REPEAT="$1" ;;
      *) echo "usage: soak.sh [--sanitize] [--bench] [--repeat N]" >&2
         exit 2 ;;
    esac
    shift
done

if [ "$DO_SANITIZE" = 1 ]; then
    SOAK_DIR="${BUILD_DIR}-asan"
    cmake -B "$SOAK_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DKLOC_SANITIZE=ON
else
    SOAK_DIR="$BUILD_DIR"
    cmake -B "$SOAK_DIR" -S . -DCMAKE_BUILD_TYPE=Release
fi
TARGETS=(test_fault)
if [ "$DO_BENCH" = 1 ]; then
    TARGETS+=(bench_fig8_degradation)
fi
cmake --build "$SOAK_DIR" -j "$JOBS" --target "${TARGETS[@]}"

# The soak grid (every conformance policy x 8 seeds, pooled and then
# serial for the byte-identity comparison) plus the poison-storm fuzz
# sweep. gtest runs the filters in one process invocation per round.
for round in $(seq 1 "$REPEAT"); do
    if [ "$REPEAT" -gt 1 ]; then
        echo "== soak round $round/$REPEAT"
    fi
    "$SOAK_DIR"/tests/test_fault \
        --gtest_filter='ChaosSoak*:FaultFuzzPoisonSweep*' || {
        echo "FAIL: chaos soak reported invariant violations" >&2
        exit 1
    }
done

if [ "$DO_BENCH" = 1 ]; then
    # Degradation shape check: throughput under escalating poison load
    # must decline gracefully, never collapse. The binary prints the
    # table and records degradation.<policy>.graceful in its report.
    KLOC_BENCH_QUICK=1 \
        KLOC_BENCH_OUTDIR="$SOAK_DIR/bench-results" \
        "$SOAK_DIR"/bench/bench_fig8_degradation
fi

echo "soak.sh: chaos soak clean ($REPEAT round(s), KLOC_JOBS=$KLOC_JOBS)"
