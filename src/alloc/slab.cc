#include "alloc/slab.hh"

#include <algorithm>

#include "base/logging.hh"

namespace kloc {

KmemCache::KmemCache(MemAccessor &mem, TierManager &tiers, std::string name,
                     Bytes obj_size, ObjClass cls, unsigned order)
    : _mem(mem),
      _tiers(tiers),
      _name(std::move(name)),
      _objSize(obj_size),
      _cls(cls),
      _order(order),
      _magazine(mem.machine().cpuCount(), 0)
{
    KLOC_ASSERT(obj_size > 0, "zero-size cache '%s'", _name.c_str());
    const Bytes slab_bytes = (1ULL << order) * kPageSize;
    KLOC_ASSERT(obj_size <= slab_bytes, "object larger than slab in '%s'",
                _name.c_str());
    _objsPerSlab = slab_bytes / obj_size;
}

KmemCache::~KmemCache()
{
    // Free every backing frame still held, live objects included;
    // subsystems are expected to have drained first, but teardown
    // must not leak simulated frames. Collect first, free after:
    // TierManager::free charges time, and charged time can dispatch
    // events that land back in this cache's lists mid-walk.
    std::vector<Frame *> frames;
    for (auto &[key, list] : _partial) {
        for (Slab *slab : list) {
            if (slab->frame)
                frames.push_back(slab->frame);
            slab->frame = nullptr;
        }
    }
    for (Slab *slab : _emptyPool) {
        if (slab->frame)
            frames.push_back(slab->frame);
        slab->frame = nullptr;
    }
    // Full slabs are not on any list; sweep the pool for the rest.
    for (Slab &slab : _slabPool) {
        if (slab.frame)
            frames.push_back(slab.frame);
        slab.frame = nullptr;
    }
    for (Frame *frame : frames)
        _tiers.free(frame);
}

std::vector<KmemCache::Slab *> &
KmemCache::partialList(uint64_t group_key)
{
    return _partial[group_key];
}

KmemCache::Slab *
KmemCache::newSlab(const TierPreference &pref, uint64_t group_key)
{
    Frame *frame = _tiers.alloc(_order, _cls, _klocMode, pref);
    if (!frame)
        return nullptr;
    frame->owner = nullptr;

    Slab *slab;
    if (!_freeSlabRecords.empty()) {
        slab = _freeSlabRecords.back();
        _freeSlabRecords.pop_back();
    } else {
        slab = &_slabPool.emplace_back();
    }
    slab->frame = frame;
    slab->groupKey = group_key;
    slab->inUse = 0;
    slab->onPartial = false;
    _livePages += frame->pages();
    // Buddy-path allocation cost for the new slab page(s).
    _mem.machine().cpuWork(kSlowPathCost);
    return slab;
}

void
KmemCache::releaseSlab(Slab *slab)
{
    KLOC_ASSERT(slab->inUse == 0, "releasing a populated slab");
    _livePages -= slab->frame->pages();
    _tiers.free(slab->frame);
    slab->frame = nullptr;
    _freeSlabRecords.push_back(slab);
}

SlabRef
KmemCache::alloc(const TierPreference &pref, uint64_t group_key)
{
    // Magazine fast path applies only to the shared (ungrouped) pool.
    const unsigned cpu = _mem.machine().currentCpu();
    bool fast_path = false;
    if (group_key == 0 && _magazine[cpu] > 0) {
        --_magazine[cpu];
        fast_path = true;
    }
    _mem.machine().cpuWork(fast_path ? kFastPathCost : kSlowPathCost);

    auto &partial = partialList(group_key);
    Slab *slab = nullptr;
    if (!partial.empty()) {
        slab = partial.back();
    } else if (!_emptyPool.empty() &&
               (group_key == 0 || _klocMode)) {
        // Recycle a cached empty slab (re-keyed to this group).
        slab = _emptyPool.back();
        _emptyPool.pop_back();
        slab->groupKey = group_key;
        partial.push_back(slab);
        slab->onPartial = true;
    } else {
        slab = newSlab(pref, group_key);
        if (!slab)
            return SlabRef{};
        partial.push_back(slab);
        slab->onPartial = true;
    }

    ++slab->inUse;
    ++_liveObjects;
    ++_totalAllocs;
    if (slab->inUse == _objsPerSlab) {
        // Slab is now full; drop from the partial list.
        auto &list = partialList(slab->groupKey);
        list.erase(std::find(list.begin(), list.end(), slab));
        slab->onPartial = false;
        if (list.empty() && slab->groupKey != 0)
            _partial.erase(slab->groupKey);
    }

    // Touch the slab page: freelist pop + object header init.
    _mem.touch(slab->frame, _objSize, AccessType::Write);

    SlabRef ref;
    ref.cache = this;
    ref.frame = slab->frame;
    ref.slab = slab;
    return ref;
}

void
KmemCache::free(SlabRef &ref)
{
    KLOC_ASSERT(ref.valid() && ref.cache == this,
                "freeing foreign slab object into '%s'", _name.c_str());
    auto *slab = static_cast<Slab *>(ref.slab);
    KLOC_ASSERT(slab->inUse > 0, "slab underflow in '%s'", _name.c_str());

    const unsigned cpu = _mem.machine().currentCpu();
    bool fast_path = false;
    if (slab->groupKey == 0 && _magazine[cpu] < kMagazineCap) {
        ++_magazine[cpu];
        fast_path = true;
    }
    _mem.machine().cpuWork(fast_path ? kFastPathCost : kSlowPathCost);

    const bool was_full = slab->inUse == _objsPerSlab;
    --slab->inUse;
    --_liveObjects;

    if (was_full && slab->inUse > 0) {
        partialList(slab->groupKey).push_back(slab);
        slab->onPartial = true;
    } else if (slab->inUse == 0) {
        if (slab->onPartial) {
            auto &list = partialList(slab->groupKey);
            list.erase(std::find(list.begin(), list.end(), slab));
            slab->onPartial = false;
            if (list.empty() && slab->groupKey != 0)
                _partial.erase(slab->groupKey);
        }
        if (_emptyPool.size() < kEmptyRetention) {
            _emptyPool.push_back(slab);
        } else {
            releaseSlab(slab);
        }
    }

    ref = SlabRef{};
}

} // namespace kloc
