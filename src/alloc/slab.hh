/**
 * @file
 * Slab allocator in the style of Linux's kmem_cache, plus the
 * paper's KLOC allocation interface.
 *
 * Legacy mode matches stock kernel behaviour: objects of one size
 * class pack into shared, physically-addressed slab pages that can
 * never be relocated (§3.3). KLOC mode models the paper's new
 * interface (§4.4): object pages are VMA-backed and therefore
 * relocatable, and allocations carry a *group key* (the owning
 * knode) so that one KLOC's objects co-locate on pages that can be
 * migrated en masse with the KLOC.
 *
 * Per-CPU magazines model the kernel's per-CPU object caches: they
 * only affect the CPU cost of the fast path, while slab/page
 * accounting stays exact.
 */

#ifndef KLOC_ALLOC_SLAB_HH
#define KLOC_ALLOC_SLAB_HH

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "mem/accessor.hh"
#include "mem/tier_manager.hh"

namespace kloc {

class KmemCache;

/** Handle to one slab-allocated object. */
struct SlabRef
{
    KmemCache *cache = nullptr;
    /** Backing slab page(s); identity-stable across migration. */
    Frame *frame = nullptr;
    /** Slab bookkeeping record (opaque to callers). */
    void *slab = nullptr;

    bool valid() const { return cache != nullptr; }
};

/** One object-size class, like struct kmem_cache. */
class KmemCache
{
  public:
    /** CPU cost of a magazine-hit allocation/free. */
    static constexpr Tick kFastPathCost{90};
    /** CPU cost of the slow path (slab list manipulation). */
    static constexpr Tick kSlowPathCost{350};
    /** Empty slabs retained per cache before frames are returned. */
    static constexpr unsigned kEmptyRetention = 2;
    /** Magazine capacity per CPU. */
    static constexpr unsigned kMagazineCap = 64;

    /**
     * @param name      Diagnostic name ("inode_cache", ...).
     * @param obj_size  Bytes per object.
     * @param cls       Coarse accounting class for backing frames.
     * @param order     Buddy order of each slab (0 = one page).
     */
    KmemCache(MemAccessor &mem, TierManager &tiers, std::string name,
              Bytes obj_size, ObjClass cls, unsigned order = 0);

    ~KmemCache();

    KmemCache(const KmemCache &) = delete;
    KmemCache &operator=(const KmemCache &) = delete;

    /**
     * Switch to the KLOC allocation interface: relocatable backing
     * pages, grouped by knode key. Existing slabs are unaffected.
     */
    void setKlocMode(bool enabled) { _klocMode = enabled; }

    bool klocMode() const { return _klocMode; }

    /**
     * Allocate one object.
     * @param pref      Tier preference order for new slab pages.
     * @param group_key Grouping key (knode id) in KLOC mode; 0 for
     *                  the shared pool.
     * @return handle, or an invalid SlabRef when memory is exhausted.
     */
    SlabRef alloc(const TierPreference &pref, uint64_t group_key = 0);

    /** Release one object. */
    void free(SlabRef &ref);

    const std::string &name() const { return _name; }
    Bytes objSize() const { return _objSize; }
    ObjClass objClass() const { return _cls; }
    uint64_t objsPerSlab() const { return _objsPerSlab; }

    /** Live objects allocated from this cache. */
    uint64_t liveObjects() const { return _liveObjects; }

    /** Cumulative allocations served. */
    uint64_t totalAllocs() const { return _totalAllocs; }

    /** Live slab pages (for footprint accounting). */
    uint64_t livePages() const { return _livePages; }

  private:
    struct Slab
    {
        Frame *frame = nullptr;
        uint64_t groupKey = 0;
        uint32_t inUse = 0;
        bool onPartial = false;
    };

    Slab *newSlab(const TierPreference &pref, uint64_t group_key);
    void releaseSlab(Slab *slab);
    std::vector<Slab *> &partialList(uint64_t group_key);

    MemAccessor &_mem;
    TierManager &_tiers;
    std::string _name;
    Bytes _objSize;
    ObjClass _cls;
    unsigned _order;
    uint64_t _objsPerSlab;
    bool _klocMode = false;

    /** Partial (has free slots) slabs, keyed by group. */
    std::map<uint64_t, std::vector<Slab *>> _partial;
    /** Cached empty slabs awaiting reuse or release. */
    std::vector<Slab *> _emptyPool;

    std::deque<Slab> _slabPool;
    std::vector<Slab *> _freeSlabRecords;

    /** Per-CPU magazine depths (cost model only). */
    std::vector<unsigned> _magazine;

    uint64_t _liveObjects = 0;
    uint64_t _totalAllocs = 0;
    uint64_t _livePages = 0;
};

} // namespace kloc

#endif // KLOC_ALLOC_SLAB_HH
