/**
 * @file
 * The virtual clock that all simulated work is charged against.
 *
 * The simulator is single-threaded and deterministic: subsystems
 * advance the clock by the modelled cost of each operation (memory
 * accesses, device transfers, CPU work), and throughput is ops per
 * unit of virtual time. Asynchronous kernel work (migration daemon,
 * LRU scans, writeback) runs from the EventQueue as the clock passes
 * its deadline.
 */

#ifndef KLOC_BASE_CLOCK_HH
#define KLOC_BASE_CLOCK_HH

#include "base/logging.hh"
#include "base/units.hh"

namespace kloc {

/** Monotonic virtual clock in nanosecond Ticks. */
class VirtualClock
{
  public:
    /** Current virtual time. */
    Tick now() const { return _now; }

    /** Advance by @p delta (must be non-negative). */
    void
    advance(Tick delta)
    {
        KLOC_ASSERT(delta >= 0, "clock moved backwards by %lld",
                    static_cast<long long>(delta));
        _now += delta;
    }

    /** Jump directly to @p when (must not be in the past). */
    void
    advanceTo(Tick when)
    {
        KLOC_ASSERT(when >= _now, "advanceTo into the past");
        _now = when;
    }

    /** Reset to zero (between experiment runs). */
    void reset() { _now = Tick{}; }

  private:
    Tick _now{};
};

} // namespace kloc

#endif // KLOC_BASE_CLOCK_HH
