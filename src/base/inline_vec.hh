/**
 * @file
 * Fixed-capacity inline vector for hot-path value lists.
 *
 * The allocation fast path consults the placement policy on every
 * single allocation; returning a std::vector<TierId> there means one
 * heap allocation (plus a free) per simulated alloc. An InlineVec
 * stores its elements in the object itself, so building, copying and
 * returning one is allocation-free. Capacity is a hard compile-time
 * bound — exceeding it is a programming error, not a resize.
 *
 * Only the operations the hot paths need are provided; this is not a
 * general-purpose container.
 */

#ifndef KLOC_BASE_INLINE_VEC_HH
#define KLOC_BASE_INLINE_VEC_HH

#include <cstddef>
#include <initializer_list>

#include "base/logging.hh"
#include "base/units.hh"

namespace kloc {

/** Vector of up to @p N trivially-copyable @p T, stored inline. */
template <typename T, size_t N>
class InlineVec
{
  public:
    constexpr InlineVec() = default;

    constexpr InlineVec(std::initializer_list<T> init)
    {
        KLOC_ASSERT(init.size() <= N, "InlineVec overflow: %zu > %zu",
                    init.size(), N);
        for (const T &v : init)
            _items[_size++] = v;
    }

    static constexpr size_t capacity() { return N; }

    constexpr size_t size() const { return _size; }
    constexpr bool empty() const { return _size == 0; }

    constexpr void
    push_back(T v)
    {
        KLOC_ASSERT(_size < N, "InlineVec overflow: capacity %zu", N);
        _items[_size++] = v;
    }

    constexpr void clear() { _size = 0; }

    constexpr T &operator[](size_t i) { return _items[i]; }
    constexpr const T &operator[](size_t i) const { return _items[i]; }

    constexpr T &front() { return _items[0]; }
    constexpr const T &front() const { return _items[0]; }

    constexpr T &back() { return _items[_size - 1]; }
    constexpr const T &back() const { return _items[_size - 1]; }

    constexpr T *begin() { return _items; }
    constexpr T *end() { return _items + _size; }
    constexpr const T *begin() const { return _items; }
    constexpr const T *end() const { return _items + _size; }

    constexpr bool
    operator==(const InlineVec &other) const
    {
        if (_size != other._size)
            return false;
        for (size_t i = 0; i < _size; ++i) {
            if (!(_items[i] == other._items[i]))
                return false;
        }
        return true;
    }

    constexpr bool operator!=(const InlineVec &o) const { return !(*this == o); }

  private:
    T _items[N] = {};
    size_t _size = 0;
};

/**
 * Tier preference order consulted on every allocation. Machines top
 * out at a handful of tiers (two per socket on the Optane platform),
 * so 8 slots cover every configuration with room to spare.
 */
using TierPreference = InlineVec<TierId, 8>;

} // namespace kloc

#endif // KLOC_BASE_INLINE_VEC_HH
