/**
 * @file
 * Intrusive doubly-linked list in the style of Linux's list_head.
 *
 * Used for LRU active/inactive lists, per-CPU knode fast-path lists,
 * and slab partial/full lists. Nodes unlink themselves in O(1) and a
 * node always knows whether it is linked, which the LRU engine relies
 * on when objects are freed while queued for migration.
 */

#ifndef KLOC_BASE_INTRUSIVE_LIST_HH
#define KLOC_BASE_INTRUSIVE_LIST_HH

#include <cstddef>

#include "base/logging.hh"

namespace kloc {

/** Embedded list hook; place one per list membership in the object. */
struct ListHook
{
    ListHook *prev = nullptr;
    ListHook *next = nullptr;

    /** True when this hook is currently on some list. */
    bool linked() const { return next != nullptr; }

    /** Remove from whatever list holds it; no-op if unlinked. */
    void
    unlink()
    {
        if (!linked())
            return;
        prev->next = next;
        next->prev = prev;
        prev = next = nullptr;
    }
};

/**
 * Intrusive list of T, where @p HookMember points at the ListHook
 * inside T. The list does not own its elements.
 */
template <typename T, ListHook T::*HookMember>
class IntrusiveList
{
  public:
    IntrusiveList()
    {
        _head.prev = &_head;
        _head.next = &_head;
    }

    IntrusiveList(const IntrusiveList &) = delete;
    IntrusiveList &operator=(const IntrusiveList &) = delete;

    bool empty() const { return _head.next == &_head; }

    size_t size() const { return _size; }

    /** Insert at the front (most-recently-used end by convention). */
    void
    pushFront(T *obj)
    {
        ListHook *hook = &(obj->*HookMember);
        KLOC_ASSERT(!hook->linked(), "pushFront of already-linked node");
        hook->next = _head.next;
        hook->prev = &_head;
        _head.next->prev = hook;
        _head.next = hook;
        ++_size;
    }

    /** Insert at the back (least-recently-used end by convention). */
    void
    pushBack(T *obj)
    {
        ListHook *hook = &(obj->*HookMember);
        KLOC_ASSERT(!hook->linked(), "pushBack of already-linked node");
        hook->prev = _head.prev;
        hook->next = &_head;
        _head.prev->next = hook;
        _head.prev = hook;
        ++_size;
    }

    /** Remove an element known to be on this list. */
    void
    remove(T *obj)
    {
        ListHook *hook = &(obj->*HookMember);
        KLOC_ASSERT(hook->linked(), "remove of unlinked node");
        hook->unlink();
        --_size;
    }

    /** Front element or nullptr when empty. */
    T *
    front() const
    {
        return empty() ? nullptr : fromHook(_head.next);
    }

    /** Back element or nullptr when empty. */
    T *
    back() const
    {
        return empty() ? nullptr : fromHook(_head.prev);
    }

    /** Pop and return the front element; nullptr when empty. */
    T *
    popFront()
    {
        T *obj = front();
        if (obj)
            remove(obj);
        return obj;
    }

    /** Pop and return the back element; nullptr when empty. */
    T *
    popBack()
    {
        T *obj = back();
        if (obj)
            remove(obj);
        return obj;
    }

    /**
     * Move @p obj to the front; it must already be on this list.
     * Relinks in place — the hook never observes an unlinked state,
     * and a node already at the front is left untouched.
     */
    void
    moveToFront(T *obj)
    {
        ListHook *hook = &(obj->*HookMember);
        KLOC_ASSERT(hook->linked(), "moveToFront of unlinked node");
        if (_head.next == hook)
            return;
        hook->prev->next = hook->next;
        hook->next->prev = hook->prev;
        hook->next = _head.next;
        hook->prev = &_head;
        _head.next->prev = hook;
        _head.next = hook;
    }

    /** Move @p obj to the back; it must already be on this list. */
    void
    moveToBack(T *obj)
    {
        ListHook *hook = &(obj->*HookMember);
        KLOC_ASSERT(hook->linked(), "moveToBack of unlinked node");
        if (_head.prev == hook)
            return;
        hook->prev->next = hook->next;
        hook->next->prev = hook->prev;
        hook->prev = _head.prev;
        hook->next = &_head;
        _head.prev->next = hook;
        _head.prev = hook;
    }

    /**
     * Splice every element of @p other onto this list's back in
     * order, leaving @p other empty. O(1) regardless of length.
     */
    void
    spliceBack(IntrusiveList &other)
    {
        if (other.empty())
            return;
        ListHook *first = other._head.next;
        ListHook *last = other._head.prev;
        first->prev = _head.prev;
        _head.prev->next = first;
        last->next = &_head;
        _head.prev = last;
        _size += other._size;
        other._head.prev = &other._head;
        other._head.next = &other._head;
        other._size = 0;
    }

    /** Element before @p obj, or nullptr when @p obj is the front. */
    T *
    prev(T *obj) const
    {
        ListHook *hook = &(obj->*HookMember);
        KLOC_ASSERT(hook->linked(), "prev of unlinked node");
        return hook->prev == &_head ? nullptr : fromHook(hook->prev);
    }

    /** Minimal forward iterator; stable across removal of *other* nodes. */
    class iterator
    {
      public:
        iterator(ListHook *pos, const ListHook *head)
            : _pos(pos), _headSentinel(head)
        {}

        T *operator*() const { return fromHook(_pos); }

        iterator &
        operator++()
        {
            _pos = _pos->next;
            return *this;
        }

        bool operator!=(const iterator &o) const { return _pos != o._pos; }
        bool operator==(const iterator &o) const { return _pos == o._pos; }

      private:
        ListHook *_pos;
        const ListHook *_headSentinel;
    };

    iterator begin() { return iterator(_head.next, &_head); }
    iterator end() { return iterator(&_head, &_head); }

  private:
    static T *
    fromHook(ListHook *hook)
    {
        // Recover the containing object from the embedded hook.
        const auto offset = reinterpret_cast<size_t>(
            &(reinterpret_cast<T *>(0)->*HookMember));
        return reinterpret_cast<T *>(
            reinterpret_cast<char *>(hook) - offset);
    }

    ListHook _head;
    size_t _size = 0;
};

} // namespace kloc

#endif // KLOC_BASE_INTRUSIVE_LIST_HH
