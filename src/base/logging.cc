#include "base/logging.hh"

namespace kloc {

Logger &
Logger::instance()
{
    static Logger logger;
    return logger;
}

void
Logger::log(LogLevel level, const char *fmt, va_list args)
{
    if (static_cast<int>(level) < static_cast<int>(this->level()))
        return;
    const char *prefix = "";
    switch (level) {
      case LogLevel::Debug: prefix = "debug: "; break;
      case LogLevel::Info:  prefix = "info: ";  break;
      case LogLevel::Warn:  prefix = "warn: ";  break;
      case LogLevel::Error: prefix = "error: "; break;
    }
    // One buffer, one write: POSIX stdio calls are atomic per call,
    // so concurrent RunPool workers never interleave mid-message.
    char message[512];
    const int used = std::snprintf(message, sizeof(message), "%s", prefix);
    if (used >= 0 && static_cast<size_t>(used) < sizeof(message)) {
        std::vsnprintf(message + used, sizeof(message) - used, fmt, args);
    }
    std::fprintf(stderr, "%s\n", message);
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    Logger::instance().log(LogLevel::Info, fmt, args);
    va_end(args);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    Logger::instance().log(LogLevel::Warn, fmt, args);
    va_end(args);
}

void
debugLog(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    Logger::instance().log(LogLevel::Debug, fmt, args);
    va_end(args);
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    Logger::instance().log(LogLevel::Error, fmt, args);
    va_end(args);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    Logger::instance().log(LogLevel::Error, fmt, args);
    va_end(args);
    std::abort();
}

void
panicAssert(const char *cond, const char *file, int line, const char *fmt,
            ...)
{
    std::fprintf(stderr, "panic: assertion '%s' failed at %s:%d: ", cond,
                 file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
    std::abort();
}

} // namespace kloc
