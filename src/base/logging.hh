/**
 * @file
 * Logging and error-reporting helpers in the gem5 tradition.
 *
 * panic() is for internal invariant violations (simulator bugs) and
 * aborts; fatal() is for unrecoverable user/configuration errors and
 * exits cleanly; warn()/inform() report conditions without stopping.
 */

#ifndef KLOC_BASE_LOGGING_HH
#define KLOC_BASE_LOGGING_HH

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace kloc {

/** Severity of a log message. */
enum class LogLevel { Debug, Info, Warn, Error };

/**
 * Global log sink. Messages below the threshold are suppressed.
 * Defaults to Warn so simulations stay quiet unless asked.
 *
 * This is the one sanctioned mutable global (klint
 * no-mutable-global allow-list): runs on RunPool workers log
 * through it concurrently, so the level is atomic and each message
 * is formatted to a private buffer and written with one stdio call —
 * messages from concurrent runs never interleave mid-line.
 */
class Logger
{
  public:
    /** Access the process-wide logger. */
    static Logger &instance();

    /** Set the minimum level that will be printed. */
    void setLevel(LogLevel level)
    {
        _level.store(level, std::memory_order_relaxed);
    }

    /** Current minimum level. */
    LogLevel level() const
    {
        return _level.load(std::memory_order_relaxed);
    }

    /** Emit one formatted message if @p level passes the threshold. */
    void log(LogLevel level, const char *fmt, va_list args);

  private:
    Logger() = default;

    std::atomic<LogLevel> _level{LogLevel::Warn};
};

/** Print an informational message (LogLevel::Info). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a warning (LogLevel::Warn). */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a debug trace message (LogLevel::Debug). */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user/configuration error and exit(1).
 * Use for conditions that are the caller's fault, not a library bug.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report a broken internal invariant and abort().
 * Use for conditions that should be impossible regardless of input.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Helper behind KLOC_ASSERT; aborts with full context. */
[[noreturn]] void panicAssert(const char *cond, const char *file, int line,
                              const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

/** panic() with file/line context when @p cond is false. */
#define KLOC_ASSERT(cond, ...)                                               \
    do {                                                                     \
        if (__builtin_expect(!(cond), 0)) {                                  \
            ::kloc::panicAssert(#cond, __FILE__, __LINE__, __VA_ARGS__);     \
        }                                                                    \
    } while (0)

} // namespace kloc

#endif // KLOC_BASE_LOGGING_HH
