/**
 * @file
 * Coarse occupancy classes of simulated physical frames.
 *
 * These are the groups the paper reports footprints for (Fig. 2a) and
 * incrementally enables KLOC support for (Fig. 5c). The enum lives in
 * base/ because both the memory subsystem (frame metadata) and the
 * trace invariant checker key accounting off it.
 */

#ifndef KLOC_BASE_OBJCLASS_HH
#define KLOC_BASE_OBJCLASS_HH

#include <cstdint>

namespace kloc {

/** Coarse occupancy class of a frame. */
enum class ObjClass : uint8_t {
    App = 0,       ///< application (userspace) pages
    PageCache,     ///< buffer-cache pages
    Journal,       ///< filesystem journal buffers
    FsSlab,        ///< inodes, dentries, extents, radix nodes, ...
    SockBuf,       ///< socket buffers: skbuff heads + data, rx bufs
    BlockIo,       ///< bio / blk-mq structures
    KlocMeta,      ///< KLOC's own metadata (knodes, kmap, lists)
    NumClasses
};

inline constexpr unsigned kNumObjClasses =
    static_cast<unsigned>(ObjClass::NumClasses);

/** Human-readable class name for reports. */
constexpr const char *
objClassName(ObjClass cls)
{
    switch (cls) {
      case ObjClass::App:       return "app";
      case ObjClass::PageCache: return "page_cache";
      case ObjClass::Journal:   return "journal";
      case ObjClass::FsSlab:    return "fs_slab";
      case ObjClass::SockBuf:   return "sock_buf";
      case ObjClass::BlockIo:   return "block_io";
      case ObjClass::KlocMeta:  return "kloc_meta";
      case ObjClass::NumClasses: break;
    }
    return "unknown";
}

/** True for every class except App. */
constexpr bool
isKernelClass(ObjClass cls)
{
    return cls != ObjClass::App;
}

} // namespace kloc

#endif // KLOC_BASE_OBJCLASS_HH
