/**
 * @file
 * Deterministic iteration over unordered containers.
 *
 * Hash-map iteration order is an implementation detail: it varies
 * with load factor, insertion history and standard-library version.
 * Any loop over an unordered container that emits trace events,
 * touches simulated memory, or otherwise influences simulation order
 * silently ties run-to-run reproducibility to that detail.
 *
 * sortedSnapshot() is the sanctioned alternative: it copies the keys
 * out and sorts them, giving a stable iteration order at O(n log n)
 * cost. klint's `determinism` rule flags direct iteration (range-for
 * or .begin()) over unordered_map/unordered_set members outside
 * src/base/ — wrap the container in sortedSnapshot() or, for loops
 * that are provably order-independent reductions, add a
 * `// klint:allow(determinism): <why>` justification.
 */

#ifndef KLOC_BASE_ORDERED_HH
#define KLOC_BASE_ORDERED_HH

#include <algorithm>
#include <vector>

namespace kloc {

/**
 * Keys of @p container, sorted ascending. Works for both
 * unordered_map (returns sorted keys) and unordered_set (returns
 * sorted elements). The keys must have a deterministic ordering —
 * do not use with pointer keys.
 */
template <class Container>
std::vector<typename Container::key_type>
sortedSnapshot(const Container &container)
{
    std::vector<typename Container::key_type> keys;
    keys.reserve(container.size());
    for (const auto &entry : container) {
        if constexpr (requires { typename Container::mapped_type; })
            keys.push_back(entry.first);
        else
            keys.push_back(entry);
    }
    std::sort(keys.begin(), keys.end());
    return keys;
}

} // namespace kloc

#endif // KLOC_BASE_ORDERED_HH
