#include "base/radix_tree.hh"

#include <cstring>

#include "base/logging.hh"

namespace kloc {

/**
 * Interior node: 64 slots which hold either child Node* (when
 * shift > 0) or user items (when shift == 0), plus per-tag bitmaps.
 */
struct RadixTree::Node
{
    void *slots[kMapSize] = {};
    uint64_t tags[kTagCount] = {};
    Node *parent = nullptr;
    unsigned offset = 0;  // slot index within parent
    unsigned shift = 0;   // bits below this level
    unsigned count = 0;   // occupied slots

    bool
    tagSet(unsigned slot, unsigned tag) const
    {
        return tags[tag] & (1ULL << slot);
    }

    bool anyTag(unsigned tag) const { return tags[tag] != 0; }
};

RadixTree::~RadixTree()
{
    clear();
}

RadixTree::Node *
RadixTree::allocNode(Node *parent, unsigned offset, unsigned shift)
{
    auto *node = new Node();
    node->parent = parent;
    node->offset = offset;
    node->shift = shift;
    ++_nodes;
    if (_observer)
        _observer(true);
    return node;
}

void
RadixTree::freeNode(Node *node)
{
    --_nodes;
    if (_observer)
        _observer(false);
    delete node;
}

void
RadixTree::extendHeight(uint64_t index)
{
    // Grow the tree until the root covers @p index.
    auto covered = [&](unsigned height) {
        if (height >= 11)
            return true;  // 11 * 6 = 66 bits > 64
        return (index >> (height * kMapShift)) == 0;
    };
    if (_height == 0) {
        unsigned height = 1;
        while (!covered(height))
            ++height;
        _root = allocNode(nullptr, 0, (height - 1) * kMapShift);
        _height = height;
        return;
    }
    while (!covered(_height)) {
        Node *new_root = allocNode(nullptr, 0, _height * kMapShift);
        new_root->slots[0] = _root;
        new_root->count = 1;
        for (unsigned tag = 0; tag < kTagCount; ++tag) {
            if (_root->anyTag(tag))
                new_root->tags[tag] |= 1ULL;
        }
        _root->parent = new_root;
        _root->offset = 0;
        _root = new_root;
        ++_height;
    }
}

bool
RadixTree::insert(uint64_t index, void *item)
{
    KLOC_ASSERT(item != nullptr, "radix tree cannot store nullptr");
    extendHeight(index);

    Node *node = _root;
    while (node->shift > 0) {
        ++_visited;
        const unsigned slot =
            (index >> node->shift) & (kMapSize - 1);
        auto *child = static_cast<Node *>(node->slots[slot]);
        if (!child) {
            child = allocNode(node, slot, node->shift - kMapShift);
            node->slots[slot] = child;
            ++node->count;
        }
        node = child;
    }
    const unsigned slot = index & (kMapSize - 1);
    if (node->slots[slot])
        return false;
    node->slots[slot] = item;
    ++node->count;
    ++_count;
    return true;
}

RadixTree::Node *
RadixTree::descend(uint64_t index) const
{
    if (_height == 0)
        return nullptr;
    // Out of the root's range?
    if (_height < 11 && (index >> (_height * kMapShift)) != 0)
        return nullptr;
    Node *node = _root;
    while (node && node->shift > 0) {
        ++_visited;
        const unsigned slot = (index >> node->shift) & (kMapSize - 1);
        node = static_cast<Node *>(node->slots[slot]);
    }
    return node;
}

void *
RadixTree::lookup(uint64_t index) const
{
    Node *leaf = descend(index);
    if (!leaf)
        return nullptr;
    return leaf->slots[index & (kMapSize - 1)];
}

void
RadixTree::shrinkAfterErase(Node *leaf)
{
    // Free nodes that became empty, walking toward the root.
    Node *node = leaf;
    while (node && node->count == 0) {
        Node *parent = node->parent;
        if (parent) {
            parent->slots[node->offset] = nullptr;
            --parent->count;
            for (unsigned tag = 0; tag < kTagCount; ++tag)
                parent->tags[tag] &= ~(1ULL << node->offset);
        } else {
            _root = nullptr;
            _height = 0;
        }
        freeNode(node);
        node = parent;
    }
    // Collapse a chain of single-child roots pointing at slot 0.
    while (_root && _root->shift > 0 && _root->count == 1 &&
           _root->slots[0]) {
        auto *child = static_cast<Node *>(_root->slots[0]);
        child->parent = nullptr;
        child->offset = 0;
        freeNode(_root);
        _root = child;
        --_height;
    }
}

void *
RadixTree::erase(uint64_t index)
{
    Node *leaf = descend(index);
    if (!leaf)
        return nullptr;
    const unsigned slot = index & (kMapSize - 1);
    void *item = leaf->slots[slot];
    if (!item)
        return nullptr;
    leaf->slots[slot] = nullptr;
    --leaf->count;
    --_count;
    for (unsigned tag = 0; tag < kTagCount; ++tag) {
        if (leaf->tagSet(slot, tag)) {
            leaf->tags[tag] &= ~(1ULL << slot);
            clearTagUp(leaf, slot, static_cast<RadixTag>(tag));
        }
    }
    shrinkAfterErase(leaf);
    return item;
}

void
RadixTree::propagateTagUp(Node *node, unsigned offset, RadixTag tag)
{
    const unsigned t = static_cast<unsigned>(tag);
    while (node) {
        node->tags[t] |= 1ULL << offset;
        offset = node->offset;
        node = node->parent;
    }
}

void
RadixTree::clearTagUp(Node *node, unsigned offset, RadixTag tag)
{
    // Clear the parent's summary bit while no sibling carries the tag.
    const unsigned t = static_cast<unsigned>(tag);
    (void)offset;
    Node *walk = node->parent;
    unsigned child_offset = node->offset;
    Node *child = node;
    while (walk && !child->anyTag(t)) {
        walk->tags[t] &= ~(1ULL << child_offset);
        child = walk;
        child_offset = walk->offset;
        walk = walk->parent;
    }
}

void
RadixTree::setTag(uint64_t index, RadixTag tag)
{
    Node *leaf = descend(index);
    if (!leaf)
        return;
    const unsigned slot = index & (kMapSize - 1);
    if (!leaf->slots[slot])
        return;
    propagateTagUp(leaf, slot, tag);
}

void
RadixTree::clearTag(uint64_t index, RadixTag tag)
{
    Node *leaf = descend(index);
    if (!leaf)
        return;
    const unsigned slot = index & (kMapSize - 1);
    const unsigned t = static_cast<unsigned>(tag);
    if (!leaf->tagSet(slot, t))
        return;
    leaf->tags[t] &= ~(1ULL << slot);
    clearTagUp(leaf, slot, tag);
}

bool
RadixTree::getTag(uint64_t index, RadixTag tag) const
{
    Node *leaf = descend(index);
    if (!leaf)
        return false;
    const unsigned slot = index & (kMapSize - 1);
    return leaf->tagSet(slot, static_cast<unsigned>(tag));
}

void
RadixTree::gangWalk(const Node *node, uint64_t base, uint64_t start,
                    unsigned max_items, int tag_or_neg,
                    std::vector<std::pair<uint64_t, void *>> &out) const
{
    if (!node || out.size() >= max_items)
        return;
    for (unsigned slot = 0; slot < kMapSize; ++slot) {
        if (out.size() >= max_items)
            return;
        if (!node->slots[slot])
            continue;
        if (tag_or_neg >= 0 &&
            !node->tagSet(slot, static_cast<unsigned>(tag_or_neg))) {
            continue;
        }
        const uint64_t child_base =
            base | (static_cast<uint64_t>(slot) << node->shift);
        // Skip subtrees entirely below the start index.
        const uint64_t child_max =
            child_base + ((node->shift ? (1ULL << node->shift) : 1) - 1);
        if (child_max < start)
            continue;
        if (node->shift == 0) {
            if (child_base >= start)
                out.emplace_back(child_base, node->slots[slot]);
        } else {
            gangWalk(static_cast<const Node *>(node->slots[slot]),
                     child_base, start, max_items, tag_or_neg, out);
        }
    }
}

std::vector<std::pair<uint64_t, void *>>
RadixTree::gangLookup(uint64_t start, unsigned max_items) const
{
    std::vector<std::pair<uint64_t, void *>> out;
    gangLookup(start, max_items, out);
    return out;
}

void
RadixTree::gangLookup(uint64_t start, unsigned max_items,
                      std::vector<std::pair<uint64_t, void *>> &out) const
{
    out.clear();
    gangWalk(_root, 0, start, max_items, -1, out);
}

std::vector<std::pair<uint64_t, void *>>
RadixTree::gangLookupTag(uint64_t start, unsigned max_items,
                         RadixTag tag) const
{
    std::vector<std::pair<uint64_t, void *>> out;
    gangLookupTag(start, max_items, tag, out);
    return out;
}

void
RadixTree::gangLookupTag(uint64_t start, unsigned max_items, RadixTag tag,
                         std::vector<std::pair<uint64_t, void *>> &out) const
{
    out.clear();
    gangWalk(_root, 0, start, max_items, static_cast<int>(tag), out);
}

void
RadixTree::destroySubtree(Node *node)
{
    if (!node)
        return;
    if (node->shift > 0) {
        for (auto *slot : node->slots) {
            if (slot)
                destroySubtree(static_cast<Node *>(slot));
        }
    }
    freeNode(node);
}

void
RadixTree::clear()
{
    destroySubtree(_root);
    _root = nullptr;
    _height = 0;
    _count = 0;
}

} // namespace kloc
