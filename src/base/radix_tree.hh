/**
 * @file
 * Radix tree mapping 64-bit indices to pointers, modelled on the
 * Linux page-cache radix tree (lib/radix-tree.c).
 *
 * Each per-inode page cache is one of these trees, keyed by page
 * offset within the file. Like Linux, nodes have 64-way fanout and
 * carry per-slot tag bitmaps (dirty / towrite) so writeback and the
 * journal can find dirty pages without scanning the whole file.
 *
 * Interior nodes are themselves slab-like kernel allocations in the
 * paper's accounting; callers can register an allocation observer to
 * charge node allocations to the right kernel-object class.
 */

#ifndef KLOC_BASE_RADIX_TREE_HH
#define KLOC_BASE_RADIX_TREE_HH

#include <cstdint>
#include <functional>
#include <vector>

namespace kloc {

/** Tags a slot can carry, mirroring PAGECACHE_TAG_*. */
enum class RadixTag : unsigned { Dirty = 0, Towrite = 1 };

/**
 * Radix tree from uint64_t index to T* (non-owning).
 * Fanout is 64 slots per node; height grows on demand.
 */
class RadixTree
{
  public:
    static constexpr unsigned kMapShift = 6;
    static constexpr unsigned kMapSize = 1u << kMapShift;  // 64
    static constexpr unsigned kTagCount = 2;

    /** Observer invoked when interior nodes are created/destroyed. */
    using NodeObserver = std::function<void(bool created)>;

    RadixTree() = default;
    ~RadixTree();

    RadixTree(const RadixTree &) = delete;
    RadixTree &operator=(const RadixTree &) = delete;

    /** Register a callback for interior-node allocation accounting. */
    void setNodeObserver(NodeObserver obs) { _observer = std::move(obs); }

    /**
     * Insert @p item at @p index.
     * @return true on success, false if the slot is occupied.
     */
    bool insert(uint64_t index, void *item);

    /** Item at @p index, or nullptr. */
    void *lookup(uint64_t index) const;

    /**
     * Remove and return the item at @p index (nullptr if absent).
     * Empty interior nodes are freed and the tree shrinks.
     */
    void *erase(uint64_t index);

    /** Number of items stored. */
    uint64_t size() const { return _count; }

    bool empty() const { return _count == 0; }

    /** Number of live interior nodes (for metadata accounting). */
    uint64_t nodeCount() const { return _nodes; }

    /**
     * Interior nodes visited across all descents so far; callers
     * charge memory-reference costs from deltas of this counter.
     */
    uint64_t nodesVisited() const { return _visited; }

    /** Set @p tag on the item at @p index; no-op if absent. */
    void setTag(uint64_t index, RadixTag tag);

    /** Clear @p tag on the item at @p index; no-op if absent. */
    void clearTag(uint64_t index, RadixTag tag);

    /** True when the item at @p index carries @p tag. */
    bool getTag(uint64_t index, RadixTag tag) const;

    /**
     * Collect up to @p max_items items with index >= @p start, in
     * index order. Returns {index, item} pairs.
     */
    std::vector<std::pair<uint64_t, void *>>
    gangLookup(uint64_t start, unsigned max_items) const;

    /**
     * gangLookup into a caller-provided buffer. @p out is cleared
     * first; once it has grown to a steady-state capacity repeated
     * calls are allocation-free, which is what the writeback path
     * wants on every daemon tick.
     */
    void gangLookup(uint64_t start, unsigned max_items,
                    std::vector<std::pair<uint64_t, void *>> &out) const;

    /** gangLookup restricted to slots carrying @p tag. */
    std::vector<std::pair<uint64_t, void *>>
    gangLookupTag(uint64_t start, unsigned max_items, RadixTag tag) const;

    /** Tagged gang lookup into a caller-provided buffer (see above). */
    void gangLookupTag(uint64_t start, unsigned max_items, RadixTag tag,
                       std::vector<std::pair<uint64_t, void *>> &out) const;

    /** Remove all entries (does not free the items). */
    void clear();

  private:
    struct Node;

    Node *allocNode(Node *parent, unsigned offset, unsigned shift);
    void freeNode(Node *node);
    void extendHeight(uint64_t index);
    Node *descend(uint64_t index) const;
    void shrinkAfterErase(Node *leaf);
    void propagateTagUp(Node *node, unsigned offset, RadixTag tag);
    void clearTagUp(Node *node, unsigned offset, RadixTag tag);
    void gangWalk(const Node *node, uint64_t base, uint64_t start,
                  unsigned max_items, int tag_or_neg,
                  std::vector<std::pair<uint64_t, void *>> &out) const;
    void destroySubtree(Node *node);

    Node *_root = nullptr;
    unsigned _height = 0;   // levels; 0 means empty tree
    uint64_t _count = 0;
    uint64_t _nodes = 0;
    mutable uint64_t _visited = 0;
    NodeObserver _observer;
};

} // namespace kloc

#endif // KLOC_BASE_RADIX_TREE_HH
