#include "base/rbtree.hh"

namespace kloc {

namespace {

bool
isRed(const RbNode *node)
{
    return node != nullptr && node->red;
}

void
rotateLeft(RbRoot &root, RbNode *x)
{
    RbNode *y = x->right;
    x->right = y->left;
    if (y->left)
        y->left->parent = x;
    y->parent = x->parent;
    if (!x->parent)
        root.node = y;
    else if (x == x->parent->left)
        x->parent->left = y;
    else
        x->parent->right = y;
    y->left = x;
    x->parent = y;
}

void
rotateRight(RbRoot &root, RbNode *x)
{
    RbNode *y = x->left;
    x->left = y->right;
    if (y->right)
        y->right->parent = x;
    y->parent = x->parent;
    if (!x->parent)
        root.node = y;
    else if (x == x->parent->right)
        x->parent->right = y;
    else
        x->parent->left = y;
    y->right = x;
    x->parent = y;
}

void
insertFixup(RbRoot &root, RbNode *z)
{
    while (isRed(z->parent)) {
        RbNode *parent = z->parent;
        RbNode *grand = parent->parent;
        if (parent == grand->left) {
            RbNode *uncle = grand->right;
            if (isRed(uncle)) {
                parent->red = false;
                uncle->red = false;
                grand->red = true;
                z = grand;
            } else {
                if (z == parent->right) {
                    z = parent;
                    rotateLeft(root, z);
                    parent = z->parent;
                    grand = parent->parent;
                }
                parent->red = false;
                grand->red = true;
                rotateRight(root, grand);
            }
        } else {
            RbNode *uncle = grand->left;
            if (isRed(uncle)) {
                parent->red = false;
                uncle->red = false;
                grand->red = true;
                z = grand;
            } else {
                if (z == parent->left) {
                    z = parent;
                    rotateRight(root, z);
                    parent = z->parent;
                    grand = parent->parent;
                }
                parent->red = false;
                grand->red = true;
                rotateLeft(root, grand);
            }
        }
    }
    root.node->red = false;
}

/**
 * Rebalance after removing a black node whose (possibly null) child
 * @p x now occupies its position under @p parent.
 */
void
eraseFixup(RbRoot &root, RbNode *x, RbNode *parent)
{
    while (x != root.node && !isRed(x)) {
        if (x == parent->left) {
            RbNode *sib = parent->right;
            if (isRed(sib)) {
                sib->red = false;
                parent->red = true;
                rotateLeft(root, parent);
                sib = parent->right;
            }
            if (!isRed(sib->left) && !isRed(sib->right)) {
                sib->red = true;
                x = parent;
                parent = x->parent;
            } else {
                if (!isRed(sib->right)) {
                    if (sib->left)
                        sib->left->red = false;
                    sib->red = true;
                    rotateRight(root, sib);
                    sib = parent->right;
                }
                sib->red = parent->red;
                parent->red = false;
                if (sib->right)
                    sib->right->red = false;
                rotateLeft(root, parent);
                x = root.node;
                parent = nullptr;
            }
        } else {
            RbNode *sib = parent->left;
            if (isRed(sib)) {
                sib->red = false;
                parent->red = true;
                rotateRight(root, parent);
                sib = parent->left;
            }
            if (!isRed(sib->right) && !isRed(sib->left)) {
                sib->red = true;
                x = parent;
                parent = x->parent;
            } else {
                if (!isRed(sib->left)) {
                    if (sib->right)
                        sib->right->red = false;
                    sib->red = true;
                    rotateLeft(root, sib);
                    sib = parent->left;
                }
                sib->red = parent->red;
                parent->red = false;
                if (sib->left)
                    sib->left->red = false;
                rotateRight(root, parent);
                x = root.node;
                parent = nullptr;
            }
        }
    }
    if (x)
        x->red = false;
}

} // namespace

void
rbLinkAndBalance(RbRoot &root, RbNode *fresh, RbNode *parent, RbNode **link)
{
    KLOC_ASSERT(!fresh->linked(), "inserting an already-linked RbNode");
    fresh->parent = parent;
    fresh->left = fresh->right = nullptr;
    fresh->red = true;
    fresh->inTree = true;
    *link = fresh;
    insertFixup(root, fresh);
}

void
rbErase(RbRoot &root, RbNode *victim)
{
    KLOC_ASSERT(victim->linked(), "erasing an unlinked RbNode");

    RbNode *replacement;   // subtree that takes the removed slot
    RbNode *fixupParent;   // parent of that subtree after splice
    bool removedBlack;

    if (!victim->left || !victim->right) {
        // At most one child: splice the victim out directly.
        replacement = victim->left ? victim->left : victim->right;
        fixupParent = victim->parent;
        removedBlack = !victim->red;
        if (replacement)
            replacement->parent = victim->parent;
        if (!victim->parent)
            root.node = replacement;
        else if (victim == victim->parent->left)
            victim->parent->left = replacement;
        else
            victim->parent->right = replacement;
    } else {
        // Two children: the in-order successor takes the victim's
        // place, and the fixup happens where the successor used to be.
        RbNode *succ = victim->right;
        while (succ->left)
            succ = succ->left;
        removedBlack = !succ->red;
        replacement = succ->right;

        if (succ->parent == victim) {
            fixupParent = succ;
        } else {
            fixupParent = succ->parent;
            succ->parent->left = replacement;
            if (replacement)
                replacement->parent = succ->parent;
            succ->right = victim->right;
            victim->right->parent = succ;
        }

        succ->parent = victim->parent;
        succ->left = victim->left;
        victim->left->parent = succ;
        succ->red = victim->red;
        if (!victim->parent)
            root.node = succ;
        else if (victim == victim->parent->left)
            victim->parent->left = succ;
        else
            victim->parent->right = succ;
    }

    victim->parent = victim->left = victim->right = nullptr;
    victim->red = false;
    victim->inTree = false;

    if (removedBlack)
        eraseFixup(root, replacement, fixupParent);
}

RbNode *
rbFirst(const RbRoot &root)
{
    RbNode *node = root.node;
    if (!node)
        return nullptr;
    while (node->left)
        node = node->left;
    return node;
}

RbNode *
rbLast(const RbRoot &root)
{
    RbNode *node = root.node;
    if (!node)
        return nullptr;
    while (node->right)
        node = node->right;
    return node;
}

RbNode *
rbNext(const RbNode *node)
{
    if (node->right) {
        const RbNode *walk = node->right;
        while (walk->left)
            walk = walk->left;
        return const_cast<RbNode *>(walk);
    }
    const RbNode *parent = node->parent;
    while (parent && node == parent->right) {
        node = parent;
        parent = parent->parent;
    }
    return const_cast<RbNode *>(parent);
}

RbNode *
rbPrev(const RbNode *node)
{
    if (node->left) {
        const RbNode *walk = node->left;
        while (walk->right)
            walk = walk->right;
        return const_cast<RbNode *>(walk);
    }
    const RbNode *parent = node->parent;
    while (parent && node == parent->left) {
        node = parent;
        parent = parent->parent;
    }
    return const_cast<RbNode *>(parent);
}

namespace {

int
validateSubtree(const RbNode *node)
{
    if (!node)
        return 1;
    if (node->red) {
        KLOC_ASSERT(!isRed(node->left) && !isRed(node->right),
                    "red node with red child");
    }
    if (node->left) {
        KLOC_ASSERT(node->left->parent == node, "broken parent link");
    }
    if (node->right) {
        KLOC_ASSERT(node->right->parent == node, "broken parent link");
    }
    const int lh = validateSubtree(node->left);
    const int rh = validateSubtree(node->right);
    KLOC_ASSERT(lh == rh, "black-height mismatch");
    return lh + (node->red ? 0 : 1);
}

} // namespace

int
rbValidate(const RbRoot &root)
{
    if (root.node) {
        KLOC_ASSERT(!root.node->red, "red root");
        KLOC_ASSERT(root.node->parent == nullptr, "root has a parent");
    }
    return validateSubtree(root.node);
}

} // namespace kloc
