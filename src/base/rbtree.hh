/**
 * @file
 * Intrusive red-black tree modelled on Linux's lib/rbtree.c.
 *
 * The kernel tracks page-cache pages, extents, the KLOC kmap and both
 * per-knode object trees with rbtrees, so this is a first-class
 * substrate here. The balancing algorithms operate on untyped RbNode
 * hooks (rbtree.cc); RbTree<> adds a typed, comparator-driven wrapper.
 *
 * The tree counts node visits during descents (nodesVisited()) so the
 * simulator can charge memory-reference costs for traversals — the
 * paper's motivation for splitting rbtree-cache from rbtree-slab and
 * for the per-CPU fast-path lists (§4.3).
 */

#ifndef KLOC_BASE_RBTREE_HH
#define KLOC_BASE_RBTREE_HH

#include <cstddef>
#include <cstdint>

#include "base/logging.hh"

namespace kloc {

/** Embedded red-black tree hook, one per tree membership. */
struct RbNode
{
    RbNode *parent = nullptr;
    RbNode *left = nullptr;
    RbNode *right = nullptr;
    bool red = false;
    bool inTree = false;

    /** True when this node is currently inserted in some tree. */
    bool linked() const { return inTree; }
};

/** Untyped rbtree root; algorithms live in rbtree.cc. */
struct RbRoot
{
    RbNode *node = nullptr;

    bool empty() const { return node == nullptr; }
};

/**
 * Link @p fresh under @p parent at @p link, then rebalance.
 * Mirrors rb_link_node + rb_insert_color.
 */
void rbLinkAndBalance(RbRoot &root, RbNode *fresh, RbNode *parent,
                      RbNode **link);

/** Remove @p victim from @p root and rebalance (rb_erase). */
void rbErase(RbRoot &root, RbNode *victim);

/** Leftmost (minimum) node, or nullptr. */
RbNode *rbFirst(const RbRoot &root);

/** Rightmost (maximum) node, or nullptr. */
RbNode *rbLast(const RbRoot &root);

/** In-order successor, or nullptr. */
RbNode *rbNext(const RbNode *node);

/** In-order predecessor, or nullptr. */
RbNode *rbPrev(const RbNode *node);

/**
 * Validate red-black invariants below @p root; panics on violation.
 * Returns the black height. Test-support only — O(n).
 */
int rbValidate(const RbRoot &root);

/**
 * Typed intrusive red-black tree.
 *
 * @tparam T          Element type containing an RbNode.
 * @tparam HookMember Pointer to the RbNode member inside T.
 * @tparam KeyFn      Callable mapping const T& to an ordered key.
 */
template <typename T, RbNode T::*HookMember, typename KeyFn>
class RbTree
{
  public:
    explicit RbTree(KeyFn key_fn = KeyFn()) : _keyFn(key_fn) {}

    RbTree(const RbTree &) = delete;
    RbTree &operator=(const RbTree &) = delete;

    bool empty() const { return _root.empty(); }
    size_t size() const { return _size; }

    /** Memory references (node visits) across all descents so far. */
    uint64_t nodesVisited() const { return _nodesVisited; }

    /**
     * Insert @p obj. Duplicate keys are rejected.
     * @return true when inserted, false when the key already exists.
     */
    bool
    insert(T *obj)
    {
        RbNode **link = &_root.node;
        RbNode *parent = nullptr;
        const auto key = _keyFn(*obj);
        while (*link) {
            parent = *link;
            ++_nodesVisited;
            const auto pkey = _keyFn(*fromNode(parent));
            if (key < pkey) {
                link = &parent->left;
            } else if (pkey < key) {
                link = &parent->right;
            } else {
                return false;
            }
        }
        rbLinkAndBalance(_root, &(obj->*HookMember), parent, link);
        ++_size;
        return true;
    }

    /** Find the element with @p key, or nullptr. */
    template <typename K>
    T *
    find(const K &key) const
    {
        RbNode *node = _root.node;
        while (node) {
            ++_nodesVisited;
            T *obj = fromNode(node);
            const auto okey = _keyFn(*obj);
            if (key < okey)
                node = node->left;
            else if (okey < key)
                node = node->right;
            else
                return obj;
        }
        return nullptr;
    }

    /** Smallest element with key >= @p key, or nullptr. */
    template <typename K>
    T *
    lowerBound(const K &key) const
    {
        RbNode *node = _root.node;
        T *best = nullptr;
        while (node) {
            ++_nodesVisited;
            T *obj = fromNode(node);
            if (!(_keyFn(*obj) < key)) {
                best = obj;
                node = node->left;
            } else {
                node = node->right;
            }
        }
        return best;
    }

    /** Remove @p obj, which must be in this tree. */
    void
    erase(T *obj)
    {
        KLOC_ASSERT((obj->*HookMember).linked(), "erase of unlinked node");
        rbErase(_root, &(obj->*HookMember));
        --_size;
    }

    /** Minimum element, or nullptr. */
    T *
    first() const
    {
        RbNode *node = rbFirst(_root);
        return node ? fromNode(node) : nullptr;
    }

    /** In-order successor of @p obj, or nullptr. */
    T *
    next(T *obj) const
    {
        RbNode *node = rbNext(&(obj->*HookMember));
        return node ? fromNode(node) : nullptr;
    }

    /** Validate invariants (tests only). */
    void validate() const { rbValidate(_root); }

    /** Untyped root, exposed for white-box tests. */
    const RbRoot &root() const { return _root; }

  private:
    static T *
    fromNode(RbNode *node)
    {
        const auto offset = reinterpret_cast<size_t>(
            &(reinterpret_cast<T *>(0)->*HookMember));
        return reinterpret_cast<T *>(
            reinterpret_cast<char *>(node) - offset);
    }

    RbRoot _root;
    size_t _size = 0;
    KeyFn _keyFn;
    mutable uint64_t _nodesVisited = 0;
};

} // namespace kloc

#endif // KLOC_BASE_RBTREE_HH
