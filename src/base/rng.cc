#include "base/rng.hh"

#include <cmath>

#include "base/logging.hh"

namespace kloc {

namespace {

uint64_t
splitmix64(uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &word : _state)
        word = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(_state[1] * 5, 7) * 9;
    const uint64_t t = _state[1] << 17;
    _state[2] ^= _state[0];
    _state[3] ^= _state[1];
    _state[1] ^= _state[2];
    _state[0] ^= _state[3];
    _state[2] ^= t;
    _state[3] = rotl(_state[3], 45);
    return result;
}

uint64_t
Rng::nextBounded(uint64_t bound)
{
    KLOC_ASSERT(bound != 0, "nextBounded with zero bound");
    // Lemire-style multiply-shift; the tiny modulo bias is irrelevant
    // for workload sampling.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(next()) * bound) >> 64);
}

double
Rng::nextDouble()
{
    return (next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta, uint64_t seed)
    : _rng(seed), _items(n), _theta(theta)
{
    KLOC_ASSERT(n > 0, "Zipfian over empty domain");
    _zetaN = zeta(n);
    _alpha = 1.0 / (1.0 - theta);
    const double zeta2 = zeta(2);
    _eta = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2 / _zetaN);
}

double
ZipfianGenerator::zeta(uint64_t n) const
{
    double sum = 0;
    for (uint64_t i = 1; i <= n; ++i)
        sum += 1.0 / std::pow(static_cast<double>(i), _theta);
    return sum;
}

uint64_t
ZipfianGenerator::next()
{
    const double u = _rng.nextDouble();
    const double uz = u * _zetaN;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, _theta))
        return 1;
    const auto idx = static_cast<uint64_t>(
        static_cast<double>(_items) *
        std::pow(_eta * u - _eta + 1.0, _alpha));
    return idx >= _items ? _items - 1 : idx;
}

} // namespace kloc
