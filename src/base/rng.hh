/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * All randomness in the simulation flows through Rng instances seeded
 * explicitly, so every experiment is bit-for-bit reproducible. The
 * generator is xoshiro256**, which is fast and has no observable bias
 * for our use (workload key/offset selection, Zipfian sampling).
 */

#ifndef KLOC_BASE_RNG_HH
#define KLOC_BASE_RNG_HH

#include <cstdint>

namespace kloc {

/** xoshiro256** deterministic PRNG. */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of @p seed. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    uint64_t nextBounded(uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability @p p of returning true. */
    bool nextBool(double p);

  private:
    uint64_t _state[4];
};

/**
 * Zipfian distribution sampler over [0, n) with skew theta,
 * using the Gray/YCSB rejection-free method. Hot items are the
 * low indices. Used by key-value workload drivers.
 */
class ZipfianGenerator
{
  public:
    /**
     * @param n     Number of items.
     * @param theta Skew in (0, 1); YCSB default is 0.99.
     * @param seed  Seed for the internal Rng.
     */
    ZipfianGenerator(uint64_t n, double theta, uint64_t seed);

    /** Sample one item index in [0, n). */
    uint64_t next();

    /** Number of items. */
    uint64_t itemCount() const { return _items; }

  private:
    double zeta(uint64_t n) const;

    Rng _rng;
    uint64_t _items;
    double _theta;
    double _zetaN;
    double _alpha;
    double _eta;
};

} // namespace kloc

#endif // KLOC_BASE_RNG_HH
