#include "base/run_pool.hh"

#include <cstdlib>
#include <string>

namespace kloc {

RunPool::RunPool(unsigned workers)
{
    if (workers == 0)
        workers = 1;
    _threads.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        _threads.emplace_back([this] { workerLoop(); });
}

RunPool::~RunPool()
{
    {
        std::unique_lock<std::mutex> lock(_mutex);
        _allDone.wait(lock, [this] { return _inFlight == 0; });
        _stopping = true;
    }
    _workReady.notify_all();
    for (std::thread &thread : _threads)
        thread.join();
}

unsigned
RunPool::defaultWorkers()
{
    if (const char *env = std::getenv("KLOC_JOBS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed > 0)
            return static_cast<unsigned>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

size_t
RunPool::submit(std::function<void()> fn)
{
    size_t index;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        index = _nextIndex++;
        _queue.push_back(Job{index, std::move(fn)});
        ++_inFlight;
    }
    _workReady.notify_one();
    return index;
}

void
RunPool::wait()
{
    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(_mutex);
        _allDone.wait(lock, [this] { return _inFlight == 0; });
        error = _firstError;
        _firstError = nullptr;
    }
    if (error)
        std::rethrow_exception(error);
}

void
RunPool::workerLoop()
{
    while (true) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _workReady.wait(lock,
                            [this] { return _stopping || !_queue.empty(); });
            if (_queue.empty())
                return;  // stopping with nothing left to do
            job = std::move(_queue.front());
            _queue.pop_front();
        }
        runJob(std::move(job));
    }
}

void
RunPool::runJob(Job &&job)
{
    std::exception_ptr error;
    try {
        job.fn();
    } catch (...) {
        error = std::current_exception();
    }
    {
        std::lock_guard<std::mutex> lock(_mutex);
        if (error &&
            (!_firstError || job.index < _firstErrorIndex)) {
            _firstError = error;
            _firstErrorIndex = job.index;
        }
        if (--_inFlight == 0) {
            // Last run out wakes wait()/the destructor.
            _allDone.notify_all();
        }
    }
}

} // namespace kloc
