/**
 * @file
 * Parallel run executor: a fixed-size worker thread pool for
 * independent simulation runs.
 *
 * The simulator is single-threaded *per Machine*, but a sweep —
 * bench configurations, fuzz seeds, fault-spec seeds, golden-trace
 * replays — is a set of shared-nothing runs: each one builds its own
 * platform, trace sink, and RNG state from an explicit config. The
 * RunPool fans such runs out across cores without touching the
 * determinism guarantees:
 *
 *   - Runs carry no shared mutable state. Each closure owns
 *     everything it touches; the klint `no-mutable-global` rule
 *     polices the src/ tree so nothing leaks in through a global.
 *   - Results are collected per-run and merged in **submission
 *     order** (see runIndexed), so serial and parallel executions
 *     produce byte-identical output regardless of completion order
 *     or worker count.
 *   - A run that throws does not poison the pool: the remaining
 *     queued runs still execute, and wait() rethrows the first
 *     exception in submission order after the queue drains.
 *
 * Worker count comes from KLOC_JOBS (default: the hardware
 * concurrency); see docs/PERF.md for the determinism contract.
 */

#ifndef KLOC_BASE_RUN_POOL_HH
#define KLOC_BASE_RUN_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace kloc {

/** Fixed-size worker pool executing independent run closures. */
class RunPool
{
  public:
    /**
     * Spin up @p workers threads (clamped to >= 1). One worker makes
     * the pool a FIFO executor: runs execute one at a time in
     * submission order, which is the serial reference behaviour the
     * byte-identity tests compare against.
     */
    explicit RunPool(unsigned workers);

    RunPool(const RunPool &) = delete;
    RunPool &operator=(const RunPool &) = delete;

    /** Drains outstanding runs, then joins the workers. */
    ~RunPool();

    /**
     * Worker count from the environment: KLOC_JOBS if set to a
     * positive integer, otherwise std::thread::hardware_concurrency
     * (at least 1).
     */
    static unsigned defaultWorkers();

    unsigned workers() const { return static_cast<unsigned>(_threads.size()); }

    /**
     * Queue one run. Returns the run's submission index (monotonic
     * from 0 since construction). Thread-safe, but the deterministic
     * merge contract assumes one submitting thread.
     */
    size_t submit(std::function<void()> fn);

    /**
     * Block until every submitted run has finished. If any run threw,
     * rethrows the exception of the *lowest submission index* (the
     * same one a serial loop would have hit first) after the queue
     * has fully drained; subsequent exceptions are dropped. The pool
     * remains usable after wait() returns or throws.
     */
    void wait();

  private:
    struct Job
    {
        size_t index;
        std::function<void()> fn;
    };

    void workerLoop();
    void runJob(Job &&job);

    std::mutex _mutex;
    std::condition_variable _workReady;   ///< workers: queue or stop
    std::condition_variable _allDone;     ///< wait(): inFlight drained
    std::deque<Job> _queue;
    std::vector<std::thread> _threads;
    size_t _nextIndex = 0;   ///< submission index of the next submit()
    size_t _inFlight = 0;    ///< queued + currently executing
    bool _stopping = false;
    /** First-by-submission-index exception since the last wait(). */
    std::exception_ptr _firstError;
    size_t _firstErrorIndex = 0;
};

/**
 * Run @p fn(0..n-1) on @p pool and return the results in index
 * (= submission) order. This is the deterministic-merge primitive
 * every sweep uses: completion order never leaks into the result
 * vector, so any worker count produces the same output as a serial
 * loop. Rethrows the first-by-index exception; results of runs after
 * a throwing one are still produced (their slots are filled before
 * the rethrow happens in wait()).
 */
template <typename T, typename Fn>
std::vector<T>
runIndexed(RunPool &pool, size_t n, Fn fn)
{
    std::vector<T> out(n);
    for (size_t i = 0; i < n; ++i)
        pool.submit([&out, &fn, i] { out[i] = fn(i); });
    pool.wait();
    return out;
}

/** runIndexed for closures with no result. */
template <typename Fn>
void
runIndexedVoid(RunPool &pool, size_t n, Fn fn)
{
    for (size_t i = 0; i < n; ++i)
        pool.submit([&fn, i] { fn(i); });
    pool.wait();
}

} // namespace kloc

#endif // KLOC_BASE_RUN_POOL_HH
