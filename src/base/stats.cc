#include "base/stats.hh"

#include <sstream>

namespace kloc {

uint64_t
Histogram::percentileUpperBound(double fraction) const
{
    const uint64_t total = _dist.count();
    if (total == 0)
        return 0;
    const auto target = static_cast<uint64_t>(fraction * total);
    uint64_t seen = 0;
    for (unsigned bucket = 0; bucket < kBuckets; ++bucket) {
        seen += _buckets[bucket];
        if (seen >= target) {
            if (bucket == 0)
                return 0;
            // Bucket 64 spans up to UINT64_MAX; 1<<64 would overflow.
            return bucket >= 64 ? ~0ULL : (1ULL << bucket) - 1;
        }
    }
    return ~0ULL;
}

void
Histogram::reset()
{
    for (auto &bucket : _buckets)
        bucket = 0;
    _dist.reset();
}

double
StatSet::get(const std::string &name) const
{
    auto it = _values.find(name);
    return it == _values.end() ? 0.0 : it->second;
}

bool
StatSet::has(const std::string &name) const
{
    return _values.find(name) != _values.end();
}

std::string
StatSet::toString() const
{
    std::ostringstream out;
    for (const auto &[name, value] : _values)
        out << name << " " << value << "\n";
    return out.str();
}

} // namespace kloc
