/**
 * @file
 * Lightweight statistics facilities for the simulator.
 *
 * Subsystems own their counters directly (plain uint64_t members) and
 * export them through StatSet snapshots when experiments dump results.
 * Distribution accumulates min/max/mean; Histogram buckets samples in
 * powers of two, which is how lifetime distributions (Fig. 2d) are
 * reported on a log axis.
 */

#ifndef KLOC_BASE_STATS_HH
#define KLOC_BASE_STATS_HH

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace kloc {

/** Running min/max/mean/count accumulator. */
class Distribution
{
  public:
    /** Record one sample. */
    void
    sample(double value)
    {
        ++_count;
        _sum += value;
        if (value < _min)
            _min = value;
        if (value > _max)
            _max = value;
    }

    uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    double mean() const { return _count ? _sum / _count : 0.0; }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }

    /** Forget all samples. */
    void
    reset()
    {
        _count = 0;
        _sum = 0;
        _min = std::numeric_limits<double>::infinity();
        _max = -std::numeric_limits<double>::infinity();
    }

  private:
    uint64_t _count = 0;
    double _sum = 0;
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();
};

/** Power-of-two bucketed histogram for non-negative samples. */
class Histogram
{
  public:
    // Bucket index is the sample's bit width (0..64), so values with
    // the top bit set (width 64) need their own bucket — 65 in all.
    static constexpr unsigned kBuckets = 65;

    /** Record one sample. */
    void
    sample(uint64_t value)
    {
        const unsigned bucket =
            value == 0 ? 0 : 64 - static_cast<unsigned>(
                                      __builtin_clzll(value));
        ++_buckets[bucket];
        _dist.sample(static_cast<double>(value));
    }

    /** Count of samples whose value's bit-width equals @p bucket. */
    uint64_t bucketCount(unsigned bucket) const { return _buckets[bucket]; }

    const Distribution &dist() const { return _dist; }

    /** Value below which @p fraction of samples fall (bucket upper bound). */
    uint64_t percentileUpperBound(double fraction) const;

    void reset();

  private:
    uint64_t _buckets[kBuckets] = {};
    Distribution _dist;
};

/** Named scalar snapshot used when dumping experiment results. */
class StatSet
{
  public:
    /** Record @p value under @p name (overwrites prior value). */
    void set(const std::string &name, double value) { _values[name] = value; }

    /** Value for @p name, or 0 when absent. */
    double get(const std::string &name) const;

    /** True when @p name has been recorded. */
    bool has(const std::string &name) const;

    const std::map<std::string, double> &values() const { return _values; }

    /** Render as "name value" lines for experiment logs. */
    std::string toString() const;

  private:
    std::map<std::string, double> _values;
};

} // namespace kloc

#endif // KLOC_BASE_STATS_HH
