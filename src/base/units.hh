/**
 * @file
 * Strong-typed scalar units used throughout the simulator.
 *
 * Each unit is a tagged wrapper over its integer representation:
 * construction from a raw integer is explicit, so a bare uint64_t (or
 * a value of another unit) can never silently flow into a parameter
 * typed Tick/Bytes/Pfn/TierId/FrameCount — unit confusion is a
 * compile error. Conversion *out* to the representation is implicit,
 * so indexing, comparisons, trace-arg packing, and printf-casts keep
 * working unchanged.
 *
 * Each unit defines only the arithmetic it legally supports (e.g.
 * Tick+Tick, Bytes*count, Pfn+offset). Any other operation decays to
 * the raw representation via the implicit conversion and must be
 * explicitly re-tagged before it can re-enter a typed API, which is
 * exactly the review point we want the compiler to force.
 *
 * klint (tools/klint) rule `units` rejects raw 64-bit parameters in
 * the public headers of mem/, fs/ and alloc/ where one of these
 * units applies; see docs/ANALYSIS.md.
 */

#ifndef KLOC_BASE_UNITS_HH
#define KLOC_BASE_UNITS_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>

namespace kloc {

/**
 * Tagged integer wrapper. @p Tag makes each instantiation a distinct
 * type; @p RepT is the underlying representation.
 */
template <class Tag, class RepT>
class StrongUnit
{
  public:
    using Rep = RepT;

    constexpr StrongUnit() = default;
    explicit constexpr StrongUnit(Rep v) : _v(v) {}

    /** Implicit read-out keeps raw-integer contexts working. */
    constexpr operator Rep() const { return _v; }

    /** Explicit spelling of the read-out for emphasis at call sites. */
    constexpr Rep value() const { return _v; }

  private:
    Rep _v{};
};

template <class T>
concept UnitScalar = std::is_integral_v<T> && !std::is_same_v<T, bool>;

// ---------------------------------------------------------------------------
// Tick: virtual time in nanoseconds. Supports the affine-time algebra
// (sum/difference of durations, scaling by a dimensionless count).

struct TickTag {};
using Tick = StrongUnit<TickTag, int64_t>;

constexpr Tick operator+(Tick a, Tick b) { return Tick{a.value() + b.value()}; }
constexpr Tick operator-(Tick a, Tick b) { return Tick{a.value() - b.value()}; }
constexpr Tick operator-(Tick a) { return Tick{-a.value()}; }
template <UnitScalar T>
constexpr Tick operator*(Tick a, T n) { return Tick{a.value() * static_cast<int64_t>(n)}; }
template <UnitScalar T>
constexpr Tick operator*(T n, Tick a) { return Tick{static_cast<int64_t>(n) * a.value()}; }
template <UnitScalar T>
constexpr Tick operator/(Tick a, T n) { return Tick{a.value() / static_cast<int64_t>(n)}; }
constexpr Tick &operator+=(Tick &a, Tick b) { return a = a + b; }
constexpr Tick &operator-=(Tick &a, Tick b) { return a = a - b; }
template <UnitScalar T>
constexpr Tick &operator*=(Tick &a, T n) { return a = a * n; }
template <UnitScalar T>
constexpr Tick &operator/=(Tick &a, T n) { return a = a / n; }

// ---------------------------------------------------------------------------
// Bytes: capacity or transfer size. Same algebra as Tick, unsigned.

struct BytesTag {};
using Bytes = StrongUnit<BytesTag, uint64_t>;

constexpr Bytes operator+(Bytes a, Bytes b) { return Bytes{a.value() + b.value()}; }
constexpr Bytes operator-(Bytes a, Bytes b) { return Bytes{a.value() - b.value()}; }
template <UnitScalar T>
constexpr Bytes operator*(Bytes a, T n) { return Bytes{a.value() * static_cast<uint64_t>(n)}; }
template <UnitScalar T>
constexpr Bytes operator*(T n, Bytes a) { return Bytes{static_cast<uint64_t>(n) * a.value()}; }
template <UnitScalar T>
constexpr Bytes operator/(Bytes a, T n) { return Bytes{a.value() / static_cast<uint64_t>(n)}; }
constexpr Bytes &operator+=(Bytes &a, Bytes b) { return a = a + b; }
constexpr Bytes &operator-=(Bytes &a, Bytes b) { return a = a - b; }
template <UnitScalar T>
constexpr Bytes &operator*=(Bytes &a, T n) { return a = a * n; }
template <UnitScalar T>
constexpr Bytes &operator/=(Bytes &a, T n) { return a = a / n; }

// ---------------------------------------------------------------------------
// Pfn: simulated physical frame number. An ordinal, not a quantity:
// only offset arithmetic is legal; Pfn+Pfn has no meaning and decays
// to raw uint64_t (which cannot implicitly become a Pfn again).

struct PfnTag {};
using Pfn = StrongUnit<PfnTag, uint64_t>;

template <UnitScalar T>
constexpr Pfn operator+(Pfn a, T n) { return Pfn{a.value() + static_cast<uint64_t>(n)}; }
template <UnitScalar T>
constexpr Pfn operator-(Pfn a, T n) { return Pfn{a.value() - static_cast<uint64_t>(n)}; }
constexpr Pfn &operator++(Pfn &a) { return a = a + 1; }
template <UnitScalar T>
constexpr Pfn &operator+=(Pfn &a, T n) { return a = a + n; }

// ---------------------------------------------------------------------------
// TierId: identifier of a memory tier (index into the MemoryModel's
// spec table). Pure identity — no arithmetic beyond the increment
// needed to iterate the tier table.

struct TierIdTag {};
using TierId = StrongUnit<TierIdTag, int>;

constexpr TierId &operator++(TierId &a) { return a = TierId{a.value() + 1}; }

/** Sentinel for "no tier". */
inline constexpr TierId kInvalidTier{-1};

// ---------------------------------------------------------------------------
// FrameCount: a number of 4 KiB pages/frames. Counting algebra plus
// the one legal mixed product: pages × page-size = bytes.

struct FrameCountTag {};
using FrameCount = StrongUnit<FrameCountTag, uint64_t>;

constexpr FrameCount operator+(FrameCount a, FrameCount b) { return FrameCount{a.value() + b.value()}; }
constexpr FrameCount operator-(FrameCount a, FrameCount b) { return FrameCount{a.value() - b.value()}; }
template <UnitScalar T>
constexpr FrameCount operator*(FrameCount a, T n) { return FrameCount{a.value() * static_cast<uint64_t>(n)}; }
constexpr FrameCount &operator+=(FrameCount &a, FrameCount b) { return a = a + b; }
constexpr FrameCount &operator-=(FrameCount &a, FrameCount b) { return a = a - b; }
constexpr FrameCount &operator++(FrameCount &a) { return a = a + FrameCount{1}; }

constexpr Bytes operator*(FrameCount pages, Bytes page_size)
{
    return Bytes{pages.value() * page_size.value()};
}

constexpr Bytes operator*(Bytes page_size, FrameCount pages)
{
    return Bytes{page_size.value() * pages.value()};
}

// ---------------------------------------------------------------------------
// Constants and helpers.

/** Sentinel for "no frame". */
inline constexpr Pfn kInvalidPfn{~0ULL};

/** Simulated page size. Everything in the kernel is 4 KB-page based. */
inline constexpr Bytes kPageSize{4096};
inline constexpr unsigned kPageShift = 12;

// Time helpers (ns-denominated Ticks).
inline constexpr Tick kNanosecond{1};
inline constexpr Tick kMicrosecond = 1000 * kNanosecond;
inline constexpr Tick kMillisecond = 1000 * kMicrosecond;
inline constexpr Tick kSecond = 1000 * kMillisecond;

// Size helpers.
inline constexpr Bytes kKiB{1024};
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

/** Round @p bytes up to whole pages. */
constexpr FrameCount
pagesFor(Bytes bytes)
{
    return FrameCount{(bytes.value() + kPageSize.value() - 1) >> kPageShift};
}

/** Whole pages in @p bytes (which must be page-aligned capacity). */
constexpr FrameCount
framesIn(Bytes bytes)
{
    return FrameCount{bytes.value() / kPageSize.value()};
}

/**
 * Time to move @p bytes at @p bytes_per_sec of bandwidth, in Ticks.
 * Uses 128-bit intermediates so multi-GiB transfers cannot overflow.
 */
constexpr Tick
transferTime(Bytes bytes, Bytes bytes_per_sec)
{
    if (bytes_per_sec.value() == 0)
        return Tick{0};
    return Tick{static_cast<int64_t>(
        (static_cast<__int128>(bytes.value()) * kSecond.value()) /
        bytes_per_sec.value())};
}

} // namespace kloc

// Hash support so strong units can key unordered containers (keyed
// lookups stay deterministic; iteration over them is what klint's
// determinism rule polices).
template <class Tag, class Rep>
struct std::hash<kloc::StrongUnit<Tag, Rep>>
{
    size_t
    operator()(const kloc::StrongUnit<Tag, Rep> &u) const noexcept
    {
        return std::hash<Rep>{}(u.value());
    }
};

#endif // KLOC_BASE_UNITS_HH
