/**
 * @file
 * Strongly-named scalar units used throughout the simulator.
 *
 * The virtual clock counts nanoseconds in a signed 64-bit Tick;
 * capacities and sizes count bytes in unsigned 64-bit. Helper
 * constants keep magnitudes readable at call sites.
 */

#ifndef KLOC_BASE_UNITS_HH
#define KLOC_BASE_UNITS_HH

#include <cstdint>

namespace kloc {

/** Virtual time in nanoseconds. */
using Tick = int64_t;

/** Capacity or transfer size in bytes. */
using Bytes = uint64_t;

/** Simulated physical frame number. */
using Pfn = uint64_t;

/** Sentinel for "no frame". */
inline constexpr Pfn kInvalidPfn = ~0ULL;

/** Simulated page size. Everything in the kernel is 4 KB-page based. */
inline constexpr Bytes kPageSize = 4096;
inline constexpr unsigned kPageShift = 12;

// Time helpers (ns-denominated Ticks).
inline constexpr Tick kNanosecond = 1;
inline constexpr Tick kMicrosecond = 1000 * kNanosecond;
inline constexpr Tick kMillisecond = 1000 * kMicrosecond;
inline constexpr Tick kSecond = 1000 * kMillisecond;

// Size helpers.
inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

/** Round @p bytes up to whole pages. */
constexpr uint64_t
pagesFor(Bytes bytes)
{
    return (bytes + kPageSize - 1) >> kPageShift;
}

/**
 * Time to move @p bytes at @p bytes_per_sec of bandwidth, in Ticks.
 * Uses 128-bit intermediates so multi-GiB transfers cannot overflow.
 */
constexpr Tick
transferTime(Bytes bytes, Bytes bytes_per_sec)
{
    if (bytes_per_sec == 0)
        return 0;
    return static_cast<Tick>(
        (static_cast<__int128>(bytes) * kSecond) / bytes_per_sec);
}

} // namespace kloc

#endif // KLOC_BASE_UNITS_HH
