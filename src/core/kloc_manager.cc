#include "core/kloc_manager.hh"

#include <algorithm>
#include <unordered_set>

#include "base/logging.hh"

namespace kloc {

namespace {

/** CPU cost per rbtree node visited during a descent (cached). */
constexpr Tick kTreeStepCost{10};
/** CPU cost per per-CPU list entry scanned. */
constexpr Tick kListStepCost{5};
/** Daemon bookkeeping cost per object visited. */
constexpr Tick kObjVisitCost{30};
/** Knodes processed per daemon queue drain. */
constexpr size_t kQueueBatch = 128;

} // namespace

KlocManager::KlocManager(KernelHeap &heap, MigrationEngine &migrator)
    : _heap(heap), _migrator(migrator), _machine(heap.mem().machine())
{
    _knodeCache = std::make_unique<KmemCache>(
        _heap.mem(), _heap.tiers(), "knode_cache", kKnodeSize,
        ObjClass::KlocMeta);
    _perCpu.resize(_machine.cpuCount());
    _migrator.setPoisonNotifyHook(
        [](void *ctx, Frame *frame, TierId origin, bool data_lost) {
            static_cast<KlocManager *>(ctx)->onFramePoisoned(frame, origin,
                                                             data_lost);
        },
        this);
}

KlocManager::~KlocManager()
{
    _migrator.setPoisonNotifyHook(nullptr, nullptr);
    // Tear down any knodes subsystems did not unmap.
    while (Knode *knode = _kmap.first()) {
        _kmap.erase(knode);
        if (knode->backing.valid())
            _knodeCache->free(knode->backing);
        delete knode;
    }
}

namespace {

void
dropFromList(std::vector<Knode *> &list, const Knode *knode)
{
    // Remove every occurrence: unmapKnode relies on this leaving no
    // dangling entry behind even if a reentrant event handler ever
    // managed to duplicate one.
    list.erase(std::remove(list.begin(), list.end(), knode),
               list.end());
}

} // namespace

void
KlocManager::setTierOrder(const TierPreference &order)
{
    KLOC_ASSERT(!order.empty(), "empty tier order");
    _tierOrder = order;
    _memLimits.assign(_heap.tiers().tierCount(), Bytes{});
}

void
KlocManager::touchKnodeMeta(Knode *knode, AccessType type)
{
    if (knode->backing.valid())
        _heap.mem().touch(knode->backing.frame, kKnodeSize, type);
}

Knode *
KlocManager::mapKnode(uint64_t inode_id)
{
    if (!_enabled)
        return nullptr;
    KLOC_ASSERT(!_tierOrder.empty(), "KLOC enabled without tier order");

    // A new kernel object is born here, not per-event churn: one
    // knode per mapped inode, freed at unmap.
    // klint:allow(hot-path-alloc): object birth, not per-event churn.
    auto *knode = new Knode(inode_id);
    // Knodes are slab-allocated for speed and always placed in fast
    // memory; they are few and small (§4.2.2).
    knode->backing = _knodeCache->alloc(_tierOrder);
    knode->lastActiveTick = _machine.now();

    const uint64_t visits_before = _kmap.nodesVisited();
    const bool inserted = _kmap.insert(knode);
    KLOC_ASSERT(inserted, "duplicate knode for inode %llu",
                static_cast<unsigned long long>(inode_id));
    _machine.cpuWork(static_cast<int64_t>(_kmap.nodesVisited() -
                                       visits_before) * kTreeStepCost);
    touchKnodeMeta(knode, AccessType::Write);

    cacheOnCpu(knode);
    ++_stats.knodesCreated;
    _machine.tracer().emit(TraceEventType::KnodeMap, inode_id);
    noteMetadata();
    return knode;
}

void
KlocManager::unmapKnode(Knode *knode)
{
    KLOC_ASSERT(knode->rbCache.empty() && knode->rbSlab.empty(),
                "unmapping knode %llu with %llu live objects",
                static_cast<unsigned long long>(knode->id),
                static_cast<unsigned long long>(knode->objectCount()));
    _machine.tracer().emit(TraceEventType::KnodeUnmap, knode->id);
    for (auto &list : _perCpu)
        dropFromList(list, knode);
    _kmap.erase(knode);
    _knodeTreeVisitsRetired += knode->rbCache.nodesVisited() +
                               knode->rbSlab.nodesVisited();
    if (knode->backing.valid())
        _knodeCache->free(knode->backing);
    ++_stats.knodesDeleted;
    delete knode;
}

Knode *
KlocManager::findKnode(uint64_t inode_id)
{
    if (!_enabled)
        return nullptr;
    // Fast path: the current CPU's recently-used knode list (§4.3).
    if (_usePerCpuLists) {
        auto &list = _perCpu[_machine.currentCpu()];
        for (size_t i = 0; i < list.size(); ++i) {
            if (list[i]->id == inode_id) {
                Knode *knode = list[i];
                // MRU rotation first: cpuWork() drains due events,
                // and a handler that re-enters findKnode() would
                // otherwise mutate the list under our index and turn
                // the rotation into a duplicating wrong-element
                // erase (then unmap leaves a dangling entry).
                list.erase(list.begin() + static_cast<ptrdiff_t>(i));
                list.insert(list.begin(), knode);
                ++_stats.perCpuHits;
                _machine.cpuWork(static_cast<int64_t>(i + 1) *
                                 kListStepCost);
                return knode;
            }
        }
        _machine.cpuWork(static_cast<int64_t>(list.size()) * kListStepCost);
    }

    // Slow path: the global kmap rbtree.
    const uint64_t visits_before = _kmap.nodesVisited();
    Knode *knode = _kmap.find(inode_id);
    _machine.cpuWork(static_cast<int64_t>(_kmap.nodesVisited() -
                                       visits_before) * kTreeStepCost);
    ++_stats.perCpuMisses;
    if (knode && _usePerCpuLists)
        cacheOnCpu(knode);
    return knode;
}

uint64_t
KlocManager::treeNodesVisited() const
{
    uint64_t total = _kmap.nodesVisited() + _knodeTreeVisitsRetired;
    for (Knode *knode = _kmap.first(); knode != nullptr;
         knode = _kmap.next(knode)) {
        total += knode->rbCache.nodesVisited() +
                 knode->rbSlab.nodesVisited();
    }
    return total;
}

void
KlocManager::cacheOnCpu(Knode *knode)
{
    if (!_usePerCpuLists)
        return;
    auto &list = _perCpu[_machine.currentCpu()];
    dropFromList(list, knode);
    list.insert(list.begin(), knode);
    if (list.size() > kPerCpuCap)
        list.pop_back();
    noteMetadata();
}

void
KlocManager::addObject(Knode *knode, KernelObject *obj)
{
    KLOC_ASSERT(obj->knode == nullptr, "object already tracked");
    KLOC_ASSERT(obj->backed(), "tracking an unbacked object");
    obj->objId = knode->nextObjId++;
    obj->knode = knode;

    Knode::ObjTree &tree = (_splitTrees && !obj->page) ? knode->rbSlab
                                                       : knode->rbCache;
    const uint64_t visits_before = tree.nodesVisited();
    const bool inserted = tree.insert(obj);
    KLOC_ASSERT(inserted, "duplicate object id in knode tree");
    // Tree nodes are hot kernel metadata: the descent is CPU work on
    // cached lines, not cold memory traffic.
    _machine.cpuWork(static_cast<int64_t>(tree.nodesVisited() -
                                       visits_before) * kTreeStepCost);
    if (obj->frame()) {
        obj->frame()->owner = knode;
        _machine.tracer().emit(TraceEventType::ObjTrack, knode->id,
                               static_cast<uint64_t>(obj->kind),
                               obj->frame()->tier, obj->frame()->pfn);
    }

    ++_trackedObjects;
    ++_stats.objectsTracked;
    noteMetadata();
}

void
KlocManager::removeObject(KernelObject *obj)
{
    auto *knode = static_cast<Knode *>(obj->knode);
    KLOC_ASSERT(knode != nullptr, "removing untracked object");
    // Mirror addObject's tree selection (do not flip setSplitTrees
    // while objects are tracked).
    Knode::ObjTree &tree = (_splitTrees && !obj->page) ? knode->rbSlab
                                                       : knode->rbCache;
    tree.erase(obj);
    obj->knode = nullptr;
    if (obj->frame()) {
        _machine.tracer().emit(TraceEventType::ObjUntrack, knode->id,
                               static_cast<uint64_t>(obj->kind),
                               obj->frame()->tier, obj->frame()->pfn);
        obj->frame()->owner = nullptr;
    }
    _machine.cpuWork(3 * kTreeStepCost);
    KLOC_ASSERT(_trackedObjects > 0, "tracked object underflow");
    --_trackedObjects;
}

void
KlocManager::forEachSlabObj(Knode *knode,
                            const std::function<void(KernelObject *)> &fn)
{
    for (KernelObject *obj = knode->rbSlab.first(); obj != nullptr;
         obj = knode->rbSlab.next(obj)) {
        fn(obj);
    }
}

void
KlocManager::forEachCacheObj(Knode *knode,
                             const std::function<void(KernelObject *)> &fn)
{
    for (KernelObject *obj = knode->rbCache.first(); obj != nullptr;
         obj = knode->rbCache.next(obj)) {
        fn(obj);
    }
}

std::vector<Knode *>
KlocManager::lruKnodes(size_t max)
{
    std::vector<Knode *> all;
    all.reserve(_kmap.size());
    for (Knode *knode = _kmap.first(); knode != nullptr;
         knode = _kmap.next(knode)) {
        all.push_back(knode);
    }
    _machine.backgroundTraffic(static_cast<int64_t>(all.size()) *
                               kTreeStepCost);
    std::sort(all.begin(), all.end(), [](const Knode *a, const Knode *b) {
        if (a->inuse != b->inuse)
            return !a->inuse;  // inactive first
        if (a->age != b->age)
            return a->age > b->age;  // older (colder) first
        return a->lastActiveTick < b->lastActiveTick;
    });
    if (all.size() > max)
        all.resize(max);
    return all;
}

void
KlocManager::setMemLimit(TierId tier, Bytes bytes)
{
    KLOC_ASSERT(tier >= 0 &&
                static_cast<size_t>(tier) < _memLimits.size(),
                "bad tier for memsize");
    _memLimits[static_cast<size_t>(tier)] = bytes;
}

bool
KlocManager::overMemLimit(TierId tier) const
{
    if (tier < 0 || static_cast<size_t>(tier) >= _memLimits.size())
        return false;
    const Bytes cap = _memLimits[static_cast<size_t>(tier)];
    if (cap == 0)
        return false;
    const Tier &t = _heap.tiers().tier(tier);
    Bytes kernel_bytes{};
    for (unsigned c = 0; c < kNumObjClasses; ++c) {
        const auto cls = static_cast<ObjClass>(c);
        if (isKernelClass(cls))
            kernel_bytes += t.residentPages(cls) * kPageSize;
    }
    return kernel_bytes >= cap;
}

void
KlocManager::markActive(Knode *knode)
{
    const bool was_inactive = !knode->inuse;
    if (was_inactive)
        _machine.tracer().emit(TraceEventType::KnodeActivate, knode->id);
    knode->inuse = true;
    knode->age = 0;
    knode->lastCpu = static_cast<int>(_machine.currentCpu());
    knode->lastActiveTick = _machine.now();
    knode->pendingDemote = false;
    // Setting the active flag is "a fast operation" (§5): the knode
    // line is hot in cache on the syscall path.
    _machine.cpuWork(kListStepCost);
    cacheOnCpu(knode);
    // Re-activation does not bulk-promote: demoted objects return
    // through maybePromoteOnTouch() as they are actually re-used,
    // which keeps reverse migrations the small, cache-page-dominated
    // fraction the paper reports (4-12%, §4.4).
    (void)was_inactive;
}

void
KlocManager::maybePromoteOnTouch(Frame *frame, Knode *knode)
{
    if (!_enabled || !knode || !knode->inuse)
        return;
    // Promotion requires earned LRU standing (two touches activate a
    // frame), so single-pass streaming reads never promote.
    if (frame->tier == fastTier() || !frame->onActiveList)
        return;
    if (!classManaged(frame->objClass))
        return;
    // Promotions stop short of the demotion trigger so the two
    // passes cannot form a promote/demote conveyor, and respect the
    // sys_kloc_memsize cap like the allocation path does.
    const Tier &fast = _heap.tiers().tier(fastTier());
    if (fast.utilization() >= kPromoteCeiling)
        return;
    if (overMemLimit(fastTier()))
        return;
    const uint64_t pages = frame->pages();
    if (_migrator.migrateOne(frame, fastTier()))
        _stats.promotedPages += pages;
}

void
KlocManager::markInactive(Knode *knode)
{
    if (knode->inuse)
        _machine.tracer().emit(TraceEventType::KnodeInactivate, knode->id);
    knode->inuse = false;
    knode->pendingPromote = false;
    _machine.cpuWork(kListStepCost);
    if (!knode->pendingDemote) {
        // The whole KLOC is cold: queue immediate demotion without
        // waiting for LRU scans (§4.5).
        knode->pendingDemote = true;
        _demoteQueue.push_back(knode->id);
        noteMetadata();
    }
}

uint64_t
KlocManager::migrateKnodeObjects(Knode *knode, TierId dst)
{
    std::unordered_set<Frame *> seen;
    std::vector<FrameRef> batch;
    uint64_t visited = 0;
    auto collect = [&](KernelObject *obj) {
        ++visited;
        Frame *frame = obj->frame();
        if (frame && frame->tier != dst && classManaged(frame->objClass) &&
            seen.insert(frame).second) {
            batch.emplace_back(frame);
        }
    };
    forEachCacheObj(knode, collect);
    forEachSlabObj(knode, collect);
    _machine.backgroundTraffic(static_cast<int64_t>(visited) * kObjVisitCost);
    if (batch.empty())
        return 0;
    return _migrator.migrate(batch, dst);
}

void
KlocManager::onFramePoisoned(Frame *frame, TierId origin_tier,
                             bool data_lost)
{
    auto *knode = static_cast<Knode *>(frame->owner);
    if (knode == nullptr)
        return;  // frame backs no tracked object; nothing to contain
    if (data_lost) {
        knode->damaged = true;
        _machine.tracer().emit(TraceEventType::KlocDamaged, knode->id,
                               frame->tier, frame->pfn);
    }
    // Soft-offline the KLOC's sibling objects away from the tier
    // that took the error, madvise(MADV_SOFT_OFFLINE)-style. The
    // containment hook fires mid-access or mid-scan, so the bulk
    // migration is deferred to the event queue; the knode is
    // re-looked-up by inode id in case it died meanwhile.
    const uint64_t inode = knode->id;
    std::weak_ptr<int> alive = _alive;
    _machine.events().schedule(
        _machine.now(), [this, alive, inode, origin_tier] {
            if (alive.expired())
                return;
            Knode *target = findKnode(inode);
            if (target == nullptr || _tierOrder.empty())
                return;
            const TierPreference order =
                _heap.tiers().preferHealthy(_tierOrder);
            TierId dst = kInvalidTier;
            for (const TierId t : order) {
                if (t != origin_tier && _heap.tiers().tier(t).online()) {
                    dst = t;
                    break;
                }
            }
            if (dst == kInvalidTier)
                return;  // nowhere to shelter the siblings
            const uint64_t moved = migrateKnodeObjects(target, dst);
            _machine.tracer().emit(TraceEventType::SoftOffline, inode,
                                   moved);
        });
}

uint64_t
KlocManager::runDemotePass()
{
    ++_stats.demotePasses;
    // Migration aggressiveness follows memory pressure (§4.1): with
    // plenty of free fast memory there is nothing to make room for,
    // so inactive KLOCs may stay where they are. Their entries are
    // drained (pendingDemote cleared); if pressure appears later the
    // watermark pass demotes the coldest knodes.
    if (!_tierOrder.empty() &&
        _heap.tiers().tier(fastTier()).utilization() < kLowWatermark) {
        while (!_demoteQueue.empty()) {
            Knode *knode = _kmap.find(_demoteQueue.front());
            _demoteQueue.pop_front();
            if (knode)
                knode->pendingDemote = false;
        }
        return 0;
    }
    uint64_t moved = 0;
    size_t budget = kQueueBatch;
    while (budget-- > 0 && !_demoteQueue.empty()) {
        const uint64_t id = _demoteQueue.front();
        _demoteQueue.pop_front();
        Knode *knode = _kmap.find(id);
        if (!knode || !knode->pendingDemote)
            continue;
        if (knode->inuse) {
            knode->pendingDemote = false;
            continue;  // re-activated while queued
        }
        if (_machine.now() - knode->lastActiveTick < kDemoteGrace) {
            // Closed only moments ago: files like LSM tables are
            // frequently reopened immediately; wait out the grace
            // window before paying a whole-KLOC migration.
            _demoteQueue.push_back(id);
            continue;
        }
        knode->pendingDemote = false;
        moved += migrateKnodeObjects(knode, slowTier());
    }
    _stats.demotedPages += moved;
    return moved;
}

uint64_t
KlocManager::runPromotePass()
{
    ++_stats.promotePasses;
    uint64_t moved = 0;
    size_t budget = kQueueBatch;
    while (budget-- > 0 && !_promoteQueue.empty()) {
        const uint64_t id = _promoteQueue.front();
        _promoteQueue.pop_front();
        Knode *knode = _kmap.find(id);
        if (!knode || !knode->pendingPromote)
            continue;
        knode->pendingPromote = false;
        if (!knode->inuse)
            continue;  // went cold again while queued

        // Respect the fast tier's KLOC capacity cap, if configured.
        const Tier &fast = _heap.tiers().tier(fastTier());
        const Bytes cap = _memLimits[static_cast<size_t>(fastTier())];
        if (cap > 0) {
            Bytes kloc_bytes{};
            for (unsigned c = 0; c < kNumObjClasses; ++c) {
                const auto cls = static_cast<ObjClass>(c);
                if (isKernelClass(cls))
                    kloc_bytes += fast.residentPages(cls) * kPageSize;
            }
            if (kloc_bytes >= cap)
                continue;
        }
        if (fast.utilization() >= kPromoteCeiling)
            continue;  // stop short of the demotion trigger
        moved += migrateKnodeObjects(knode, fastTier());
    }
    _stats.promotedPages += moved;
    return moved;
}

uint64_t
KlocManager::runWatermarkPass()
{
    const Tier &fast = _heap.tiers().tier(fastTier());
    if (fast.utilization() < kHighWatermark)
        return 0;
    // Hysteresis: once over the high watermark, demote down to the
    // low watermark so the pass doesn't re-trigger every tick.
    uint64_t moved = 0;
    for (Knode *knode : lruKnodes(kQueueBatch)) {
        if (fast.utilization() < kLowWatermark)
            break;
        // Inactive KLOCs demote unconditionally; open files must be
        // genuinely idle ("accessed long ago", §3.2) — a burst of
        // syscall-free time like an fsync must not evict a hot file.
        const bool idle = _machine.now() - knode->lastActiveTick >
                          kActiveIdleThreshold;
        if (!knode->inuse || idle) {
            moved += migrateKnodeObjects(knode, slowTier());
        } else {
            // Scanned but spared: the knode ages (§4.3).
            ++knode->age;
        }
    }
    _stats.demotedPages += moved;
    return moved;
}

void
KlocManager::daemonTick(Tick period)
{
    if (!_daemonRunning)
        return;
    runDemotePass();
    runPromotePass();
    runWatermarkPass();
    _machine.events().schedule(
        _machine.now() + period,
        [this, period, weak = std::weak_ptr<int>(_alive)] {
            if (!weak.expired())
                daemonTick(period);
        });
}

void
KlocManager::startDaemon(Tick period)
{
    KLOC_ASSERT(period > 0, "daemon period must be positive");
    if (_daemonRunning)
        return;
    _daemonRunning = true;
    _machine.events().schedule(
        _machine.now() + period,
        [this, period, weak = std::weak_ptr<int>(_alive)] {
            if (!weak.expired())
                daemonTick(period);
        });
}

Bytes
KlocManager::metadataBytes() const
{
    uint64_t per_cpu_entries = 0;
    for (const auto &list : _perCpu)
        per_cpu_entries += list.size();
    return _kmap.size() * kKnodeSize +            // knode structures
           Bytes{_trackedObjects * 8} +           // rbtree pointers
           Bytes{per_cpu_entries * 16} +          // per-CPU list nodes
           Bytes{(_demoteQueue.size() + _promoteQueue.size()) * 8};
}

void
KlocManager::noteMetadata()
{
    const Bytes current = metadataBytes();
    if (current > _peakMetadata)
        _peakMetadata = current;
}

} // namespace kloc
