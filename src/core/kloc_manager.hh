/**
 * @file
 * KlocManager: the public KLOC API (Table 2) and its machinery —
 * the global kmap, per-CPU knode fast paths (§4.3), and the
 * asynchronous migration daemon (§4.4, §5).
 *
 * Subsystems (VFS, networking, block layer) call mapKnode() when an
 * inode is created, markActive()/markInactive() from their system
 * call paths, and addObject()/removeObject() from every kernel
 * object allocation site. Policies drive tiering through
 * runDemotePass()/runPromotePass() or let the built-in daemon do it.
 */

#ifndef KLOC_CORE_KLOC_MANAGER_HH
#define KLOC_CORE_KLOC_MANAGER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "base/intrusive_list.hh"
#include "core/knode.hh"
#include "kobj/kernel_heap.hh"
#include "mem/migration.hh"

namespace kloc {

/** Statistics exposed for the evaluation figures and ablations. */
struct KlocStats
{
    uint64_t knodesCreated = 0;
    uint64_t knodesDeleted = 0;
    uint64_t objectsTracked = 0;     ///< cumulative addObject calls
    uint64_t perCpuHits = 0;         ///< fast-path lookups (§4.3)
    uint64_t perCpuMisses = 0;       ///< fell through to the kmap
    uint64_t demotePasses = 0;
    uint64_t promotePasses = 0;
    uint64_t demotedPages = 0;
    uint64_t promotedPages = 0;
};

/** The KLOC kernel subsystem. */
class KlocManager
{
  public:
    /** Size of the knode structure charged per open inode (§7.1). */
    static constexpr Bytes kKnodeSize{64};
    /** Per-CPU fast-path list capacity. */
    static constexpr unsigned kPerCpuCap = 64;
    /** Fast-tier utilization above which the daemon demotes. */
    static constexpr double kHighWatermark = 0.92;
    /** Demotion target once the high watermark is crossed. */
    static constexpr double kLowWatermark = 0.85;
    /** Touch-driven promotion stops at this utilization. */
    static constexpr double kPromoteCeiling = 0.90;
    /** Closed knodes younger than this are not demoted yet. */
    static constexpr Tick kDemoteGrace = 20 * kMillisecond;
    /** Open knodes idle longer than this count as cold (§3.2). */
    static constexpr Tick kActiveIdleThreshold = 500 * kMillisecond;

    KlocManager(KernelHeap &heap, MigrationEngine &migrator);
    ~KlocManager();

    /**
     * sys_enable_kloc(): turn the abstraction on or off. While off,
     * mapKnode() returns nullptr and subsystems behave stock.
     */
    void setEnabled(bool enabled) { _enabled = enabled; }
    bool enabled() const { return _enabled; }

    /**
     * Tier order from fastest to slowest; index 0 is the target of
     * promotions, the last entry the target of demotions.
     */
    void setTierOrder(const TierPreference &order);

    TierId fastTier() const { return _tierOrder.front(); }
    TierId slowTier() const { return _tierOrder.back(); }

    // -- Table 2 API --------------------------------------------------------

    /**
     * map_knode(): create the knode for inode @p inode_id and insert
     * it into the kmap. Returns nullptr while KLOC is disabled.
     */
    Knode *mapKnode(uint64_t inode_id);

    /** Inode deleted: destroy its knode (object trees must be empty). */
    void unmapKnode(Knode *knode);

    /** kmap/fast-path lookup of the knode for @p inode_id. */
    Knode *findKnode(uint64_t inode_id);

    /** knode_add_obj(): start tracking @p obj under @p knode. */
    void addObject(Knode *knode, KernelObject *obj);

    /** Stop tracking @p obj (object about to be freed). */
    void removeObject(KernelObject *obj);

    /** itr_knode_slab(): visit slab-tree members in id order. */
    void forEachSlabObj(Knode *knode,
                        const std::function<void(KernelObject *)> &fn);

    /** itr_knode_cache(): visit cache-tree members in id order. */
    void forEachCacheObj(Knode *knode,
                         const std::function<void(KernelObject *)> &fn);

    /**
     * get_LRU_knodes(): up to @p max knodes, coldest first
     * (inactive before active, then by descending age).
     */
    std::vector<Knode *> lruKnodes(size_t max);

    /** find_cpu(): CPU that last accessed @p knode (-1 if none). */
    int findCpu(const Knode *knode) const { return knode->lastCpu; }

    /**
     * sys_kloc_memsize(): cap the pages KLOC-managed kernel objects
     * may occupy on @p tier (0 = no cap).
     */
    void setMemLimit(TierId tier, Bytes bytes);

    /**
     * True when @p tier's kernel-object residency meets or exceeds
     * its sys_kloc_memsize cap. Placement policies divert new
     * kernel allocations while this holds.
     */
    bool overMemLimit(TierId tier) const;

    /**
     * Select which object classes KLOC manages (Fig. 5c ablation):
     * frames of unmanaged classes are never migrated by KLOC.
     * @p mask has one bit per ObjClass value.
     */
    void setManagedClasses(uint32_t mask) { _managedClasses = mask; }

    /** True when KLOC tiering covers @p cls. */
    bool
    classManaged(ObjClass cls) const
    {
        return (_managedClasses >> static_cast<unsigned>(cls)) & 1u;
    }

    // -- ablation toggles (§4.3 experiments) --------------------------------

    /** Disable the per-CPU fast-path lists (kmap-only lookups). */
    void setUsePerCpuLists(bool enabled) { _usePerCpuLists = enabled; }

    bool usePerCpuLists() const { return _usePerCpuLists; }

    /**
     * Route every object into a single per-knode tree instead of the
     * split rbtree-cache / rbtree-slab pair (§4.2.3 ablation).
     */
    void setSplitTrees(bool enabled) { _splitTrees = enabled; }

    bool splitTrees() const { return _splitTrees; }

    /** Total rbtree node visits across kmap and all knode trees. */
    uint64_t treeNodesVisited() const;

    // -- hotness transitions ------------------------------------------------

    /**
     * A system call touched the file/socket: mark hot, refresh the
     * per-CPU fast path, and queue promotion if objects sit in slow
     * memory.
     */
    void markActive(Knode *knode);

    /**
     * The file/socket was closed (refcount zero): the whole KLOC is
     * cold; queue its objects for immediate demotion (§4.5).
     */
    void markInactive(Knode *knode);

    /**
     * Access-driven promotion: subsystem hot paths call this after
     * touching a tracked object whose KLOC is active. A re-touched
     * (referenced) frame sitting in slow memory is pulled into fast
     * memory when there is headroom — the targeted slow-to-fast
     * migration path that is "mainly used for cache pages" (§4.4).
     */
    void maybePromoteOnTouch(Frame *frame, Knode *knode);

    // -- migration daemon ---------------------------------------------------

    /**
     * Start the asynchronous daemon with the given wakeup period.
     * It drains the demote/promote queues and enforces watermarks.
     */
    void startDaemon(Tick period);

    void stopDaemon() { _daemonRunning = false; }

    /** One demote pass (also callable directly by policies/tests). */
    uint64_t runDemotePass();

    /** One promote pass. */
    uint64_t runPromotePass();

    /**
     * Watermark pass: when the fast tier is above the high
     * watermark, demote the coldest knodes' objects.
     */
    uint64_t runWatermarkPass();

    /** Migrate every object of @p knode to @p dst; returns pages moved. */
    uint64_t migrateKnodeObjects(Knode *knode, TierId dst);

    // -- accounting ---------------------------------------------------------

    const KlocStats &stats() const { return _stats; }

    void resetStats() { _stats = KlocStats{}; }

    /** Live knodes in the kmap. */
    uint64_t knodeCount() const { return _kmap.size(); }

    /**
     * Current KLOC metadata footprint in bytes (Table 6): knode
     * structures, 8-byte rbtree pointers per tracked object, per-CPU
     * list entries, and migration queue entries.
     */
    Bytes metadataBytes() const;

    /** Peak metadata footprint observed. */
    Bytes peakMetadataBytes() const { return _peakMetadata; }

    KernelHeap &heap() { return _heap; }

  private:
    using KnodeTree = RbTree<Knode, &Knode::kmapHook, KnodeIdKey>;

    void touchKnodeMeta(Knode *knode, AccessType type);
    void cacheOnCpu(Knode *knode);
    void noteMetadata();
    void daemonTick(Tick period);

    /**
     * Poison-notify callback from the MigrationEngine: when a
     * tracked frame takes an uncorrectable error, mark the owning
     * KLOC damaged on data loss and schedule a soft-offline that
     * migrates its sibling objects away from the erroring tier.
     */
    void onFramePoisoned(Frame *frame, TierId origin_tier,
                         bool data_lost);

    KernelHeap &_heap;
    MigrationEngine &_migrator;
    Machine &_machine;

    bool _enabled = false;
    TierPreference _tierOrder;

    /** Global kmap of all knodes (Fig. 1). */
    KnodeTree _kmap;

    /**
     * Per-CPU fast-path lists of recently used knodes (MRU-front).
     * A knode may appear on several CPUs' lists at once (§4.3) —
     * Linux's per-CPU coherence APIs keep them consistent, so here
     * they are plain non-owning vectors.
     */
    std::vector<std::vector<Knode *>> _perCpu;

    /** Slab cache backing knode structures (always fast memory). */
    std::unique_ptr<KmemCache> _knodeCache;

    /** Demote/promote work queues (by inode id; ids survive frees). */
    std::deque<uint64_t> _demoteQueue;
    std::deque<uint64_t> _promoteQueue;

    /** Per-tier KLOC page caps (0 = uncapped). */
    std::vector<Bytes> _memLimits;

    /** Liveness token for scheduled daemon lambdas. */
    std::shared_ptr<int> _alive = std::make_shared<int>(0);

    bool _daemonRunning = false;
    uint32_t _managedClasses = ~0u;
    bool _usePerCpuLists = true;
    bool _splitTrees = true;
    uint64_t _knodeTreeVisitsRetired = 0;  ///< from deleted knodes
    KlocStats _stats;
    uint64_t _trackedObjects = 0;   ///< live tracked objects
    Bytes _peakMetadata{};
};

} // namespace kloc

#endif // KLOC_CORE_KLOC_MANAGER_HH
