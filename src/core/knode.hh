/**
 * @file
 * Knode: the per-inode "table of contents" of the KLOC abstraction.
 *
 * Every file or socket inode owns one knode. The knode tracks every
 * kernel object created on behalf of that inode in two red-black
 * trees — rbtree-cache for page-backed objects and rbtree-slab for
 * slab-backed ones (§4.2.3) — so that when the OS decides the inode
 * is cold, all associated objects can be found and migrated en masse
 * without scanning page tables.
 */

#ifndef KLOC_CORE_KNODE_HH
#define KLOC_CORE_KNODE_HH

#include <cstdint>

#include "alloc/slab.hh"
#include "base/intrusive_list.hh"
#include "base/rbtree.hh"
#include "kobj/kobject.hh"

namespace kloc {

/** Key extractor for knode object trees. */
struct ObjIdKey
{
    uint64_t operator()(const KernelObject &obj) const { return obj.objId; }
};

/** Per-inode kernel-object context. */
struct Knode
{
    using ObjTree = RbTree<KernelObject, &KernelObject::knodeHook, ObjIdKey>;

    explicit Knode(uint64_t inode_id) : id(inode_id) {}

    Knode(const Knode &) = delete;
    Knode &operator=(const Knode &) = delete;

    /** Inode number this knode is bound to. */
    uint64_t id;

    /** Active flag: the file/socket is open and in use (§4.1). */
    bool inuse = true;

    /**
     * LRU age: reset to zero on access, incremented by scans that do
     * not evict (§4.3). Larger = colder.
     */
    uint32_t age = 0;

    /** CPU that last touched this knode (find_cpu API). */
    int lastCpu = -1;

    /** Slab backing of the knode structure itself (64 B, fast mem). */
    SlabRef backing;

    /** Membership in the global kmap. */
    RbNode kmapHook;

    /** Page-backed member objects (page cache, journal pages, ...). */
    ObjTree rbCache;

    /** Slab-backed member objects (inode, dentry, extents, ...). */
    ObjTree rbSlab;

    /** Monotonic id source for member objects. */
    uint64_t nextObjId = 1;

    Tick lastActiveTick{};

    /** Queued for the migration daemon's demote pass. */
    bool pendingDemote = false;
    /** Queued for the migration daemon's promote pass. */
    bool pendingPromote = false;
    /**
     * An uncorrectable memory error destroyed one of this KLOC's
     * objects (SIGBUS surfaced to the owner). Sticky: subsystems may
     * fail reads against a damaged inode until it is recreated.
     */
    bool damaged = false;

    uint64_t objectCount() const { return rbCache.size() + rbSlab.size(); }
};

/** Key extractor for the kmap. */
struct KnodeIdKey
{
    uint64_t operator()(const Knode &knode) const { return knode.id; }
};

} // namespace kloc

#endif // KLOC_CORE_KNODE_HH
