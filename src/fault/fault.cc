#include "fault/fault.hh"

#include <cstdlib>
#include <sstream>

namespace kloc {

namespace {

const char *const kSiteNames[kNumFaultSites] = {
    "device_read",
    "device_write",
    "device_timeout",
    "migration_no_space",
    "journal_commit_crash",
    "frame_poison_access",
    "frame_poison_scan",
    "frame_poison_copy",
};

/** Odd multiplier decorrelating per-site PRNG streams from one seed. */
constexpr uint64_t kSiteSeedStride = 0x9E3779B97F4A7C15ULL;

bool
parseU64(const std::string &tok, uint64_t &out)
{
    if (tok.empty())
        return false;
    char *end = nullptr;
    out = std::strtoull(tok.c_str(), &end, 10);
    return end && *end == '\0';
}

bool
parseDouble(const std::string &tok, double &out)
{
    if (tok.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(tok.c_str(), &end);
    return end && *end == '\0';
}

} // namespace

const char *
faultSiteName(FaultSite site)
{
    const auto index = static_cast<unsigned>(site);
    return index < kNumFaultSites ? kSiteNames[index] : "unknown";
}

bool
parseFaultSite(const std::string &name, FaultSite &out)
{
    for (unsigned i = 0; i < kNumFaultSites; ++i) {
        if (name == kSiteNames[i]) {
            out = static_cast<FaultSite>(i);
            return true;
        }
    }
    return false;
}

bool
FaultSpec::armed() const
{
    if (!tierEvents.empty() || !poisonStorms.empty())
        return true;
    for (const FaultRule &rule : rules) {
        if (rule.armed())
            return true;
    }
    return false;
}

bool
FaultSpec::parse(const std::string &text, FaultSpec &out, std::string *err)
{
    auto fail = [&](unsigned lineno, const std::string &why) {
        if (err) {
            *err = "fault spec line " + std::to_string(lineno) + ": " +
                   why;
        }
        return false;
    };

    out = FaultSpec{};
    std::istringstream in(text);
    std::string line;
    unsigned lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        std::istringstream fields(line);
        std::vector<std::string> tok;
        std::string word;
        while (fields >> word) {
            if (word[0] == '#')
                break;
            tok.push_back(word);
        }
        if (tok.empty())
            continue;

        if (tok[0] == "seed") {
            if (tok.size() != 2 || !parseU64(tok[1], out.seed))
                return fail(lineno, "expected 'seed <n>'");
            continue;
        }

        if (tok[0] == "tier_offline" || tok[0] == "tier_online") {
            // tier_offline at <tick> tier <id>
            uint64_t tick = 0, tier = 0;
            if (tok.size() != 5 || tok[1] != "at" || tok[3] != "tier" ||
                !parseU64(tok[2], tick) || !parseU64(tok[4], tier)) {
                return fail(lineno, "expected '" + tok[0] +
                                    " at <tick> tier <id>', got '" +
                                    line + "'");
            }
            TierFaultEvent event;
            event.at = static_cast<Tick>(tick);
            event.tier = static_cast<TierId>(tier);
            event.offline = tok[0] == "tier_offline";
            out.tierEvents.push_back(event);
            continue;
        }

        if (tok[0] == "poison_storm") {
            // poison_storm at <tick> tier <id> frames <n>
            //              [repeat <k> every <ticks>]
            PoisonStormEvent event;
            uint64_t tick = 0, tier = 0;
            if (tok.size() < 7 || tok[1] != "at" || tok[3] != "tier" ||
                tok[5] != "frames" || !parseU64(tok[2], tick) ||
                !parseU64(tok[4], tier)) {
                return fail(lineno,
                            "expected 'poison_storm at <tick> tier <id>"
                            " frames <n>', got '" + line + "'");
            }
            if (!parseU64(tok[6], event.frames) || event.frames == 0) {
                return fail(lineno, "frames needs a positive count, "
                                    "got '" + tok[6] + "'");
            }
            event.at = static_cast<Tick>(tick);
            event.tier = static_cast<TierId>(tier);
            if (tok.size() == 11 && tok[7] == "repeat" &&
                tok[9] == "every") {
                uint64_t every = 0;
                if (!parseU64(tok[8], event.repeat) ||
                    event.repeat == 0) {
                    return fail(lineno, "repeat needs a positive count,"
                                        " got '" + tok[8] + "'");
                }
                if (!parseU64(tok[10], every) || every == 0) {
                    return fail(lineno, "every needs a positive tick "
                                        "count, got '" + tok[10] + "'");
                }
                event.every = static_cast<Tick>(every);
            } else if (tok.size() != 7) {
                return fail(lineno,
                            "trailing tokens after 'frames <n>' "
                            "(expected 'repeat <k> every <ticks>'), "
                            "got '" + tok[7] + "...'");
            }
            out.poisonStorms.push_back(event);
            continue;
        }

        FaultSite site;
        if (!parseFaultSite(tok[0], site))
            return fail(lineno, "unknown fault site '" + tok[0] + "'");
        if (tok.size() < 3) {
            return fail(lineno, "expected '<site> <mode> <value>', "
                                "got '" + line + "'");
        }

        FaultRule rule;
        if (tok[1] == "prob") {
            rule.mode = FaultRule::Mode::Probability;
            if (!parseDouble(tok[2], rule.probability) ||
                rule.probability < 0.0 || rule.probability > 1.0) {
                return fail(lineno, "prob needs a value in [0,1], "
                                    "got '" + tok[2] + "'");
            }
        } else if (tok[1] == "period") {
            rule.mode = FaultRule::Mode::Period;
            if (!parseU64(tok[2], rule.period) || rule.period == 0) {
                return fail(lineno, "period needs a positive count, "
                                    "got '" + tok[2] + "'");
            }
        } else if (tok[1] == "oneshot") {
            rule.mode = FaultRule::Mode::OneShot;
            if (!parseU64(tok[2], rule.oneshot) || rule.oneshot == 0) {
                return fail(lineno, "oneshot needs a positive consult "
                                    "#, got '" + tok[2] + "'");
            }
        } else {
            return fail(lineno, "unknown mode '" + tok[1] + "'");
        }

        if (tok.size() == 5 && tok[3] == "max") {
            if (!parseU64(tok[4], rule.maxFires) || rule.maxFires == 0) {
                return fail(lineno, "max needs a positive count, "
                                    "got '" + tok[4] + "'");
            }
        } else if (tok.size() != 3) {
            return fail(lineno, "trailing tokens (expected 'max <n>'), "
                                "got '" + tok[3] + "'");
        }
        out.rules[static_cast<unsigned>(site)] = rule;
    }
    return true;
}

void
FaultInjector::configure(const FaultSpec &spec)
{
    _spec = spec;
    _armed = spec.armed();
    _totalFires = 0;
    for (SiteStats &stats : _stats)
        stats = SiteStats{};
    _rngs.clear();
    for (unsigned i = 0; i < kNumFaultSites; ++i)
        _rngs.emplace_back(spec.seed + kSiteSeedStride * (i + 1));
}

bool
FaultInjector::consult(FaultSite site)
{
    const auto index = static_cast<unsigned>(site);
    SiteStats &stats = _stats[index];
    ++stats.consults;
    const FaultRule &rule = _spec.rules[index];

    bool fire = false;
    switch (rule.mode) {
      case FaultRule::Mode::Never:
        break;
      case FaultRule::Mode::Probability:
        // Always draw, so the per-site random sequence advances one
        // step per consult regardless of the outcome or the cap.
        fire = _rngs[index].nextBool(rule.probability);
        break;
      case FaultRule::Mode::Period:
        fire = stats.consults % rule.period == 0;
        break;
      case FaultRule::Mode::OneShot:
        fire = stats.consults == rule.oneshot;
        break;
    }
    if (fire && stats.fires >= rule.maxFires)
        fire = false;
    if (fire) {
        ++stats.fires;
        ++_totalFires;
        _tracer.emit(TraceEventType::FaultInject, index, stats.fires);
    }
    return fire;
}

} // namespace kloc
