/**
 * @file
 * Deterministic fault injection for the simulator.
 *
 * A FaultInjector is consulted by subsystems at well-defined fault
 * points (device I/O completion, migration target allocation, journal
 * commit). Whether a consult fires is decided purely by the configured
 * FaultSpec and a per-site seeded PRNG, never by host state, so two
 * runs with the same seed and spec inject byte-identically — faults,
 * retries, and recovery all land on the same virtual ticks and the
 * serialized trace stays a golden-testable artifact.
 *
 * Rules come in three modes per site:
 *   - prob P      every consult fires with probability P
 *   - period N    every N-th consult fires
 *   - oneshot N   exactly the N-th consult fires
 * plus an optional `max M` cap on total fires. Tier offline/online
 * events are scheduled at absolute virtual ticks rather than consults
 * (they model an operator or a hot-unplug, not a per-request error).
 */

#ifndef KLOC_FAULT_FAULT_HH
#define KLOC_FAULT_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/rng.hh"
#include "base/units.hh"
#include "trace/trace.hh"

namespace kloc {

/** Every point in the stack that consults the injector. */
enum class FaultSite : uint8_t {
    DeviceRead = 0,     ///< block device read completes with error
    DeviceWrite,        ///< block device write completes with error
    DeviceTimeout,      ///< device stalls, request times out
    MigrationNoSpace,   ///< target tier reports transient OOM
    JournalCommitCrash, ///< crash during a journal commit
    FramePoisonAccess,  ///< uncorrectable memory error on a CPU access
    FramePoisonScan,    ///< uncorrectable error surfaced by the LRU scan
    FramePoisonCopy,    ///< uncorrectable error during a migration copy
    NumSites
};

inline constexpr unsigned kNumFaultSites =
    static_cast<unsigned>(FaultSite::NumSites);

/** Stable spec-file/trace name of @p site (e.g. "device_read"). */
const char *faultSiteName(FaultSite site);

/** @return false when @p name matches no site. */
bool parseFaultSite(const std::string &name, FaultSite &out);

/** When/how often one fault site fires. */
struct FaultRule
{
    enum class Mode : uint8_t { Never, Probability, Period, OneShot };

    Mode mode = Mode::Never;
    double probability = 0.0;  ///< Probability mode: chance per consult
    uint64_t period = 0;       ///< Period mode: every N-th consult
    uint64_t oneshot = 0;      ///< OneShot mode: exactly this consult
    uint64_t maxFires = UINT64_MAX;

    bool armed() const { return mode != Mode::Never; }
};

/** A scheduled tier offline/online transition at a virtual tick. */
struct TierFaultEvent
{
    Tick at{};
    TierId tier = kInvalidTier;
    bool offline = true;
};

/**
 * A scheduled burst of frame poisonings on one tier: at tick @c at
 * (and then every @c every ticks, @c repeat times total) the first
 * @c frames live frames of the tier take an uncorrectable error.
 */
struct PoisonStormEvent
{
    Tick at{};
    TierId tier = kInvalidTier;
    uint64_t frames = 1;   ///< frames poisoned per burst
    uint64_t repeat = 1;   ///< number of bursts
    Tick every{};          ///< spacing between bursts (repeat > 1)
};

/** Parsed fault specification (one rule per site + tier schedule). */
struct FaultSpec
{
    FaultRule rules[kNumFaultSites];
    std::vector<TierFaultEvent> tierEvents;
    std::vector<PoisonStormEvent> poisonStorms;
    uint64_t seed = 1;

    /** True when any rule or tier event is configured. */
    bool armed() const;

    /**
     * Parse the text spec format (see docs/FAULTS.md):
     *
     *   # comment
     *   seed 42
     *   device_write prob 0.01 max 5
     *   device_read period 50
     *   journal_commit_crash oneshot 3
     *   tier_offline at 5000000 tier 1
     *   tier_online at 9000000 tier 1
     *   poison_storm at 2000000 tier 0 frames 8 repeat 4 every 1000000
     *
     * @return false on malformed input; @p err (if non-null) gets a
     *         one-line description naming the offending line and
     *         token.
     */
    static bool parse(const std::string &text, FaultSpec &out,
                      std::string *err = nullptr);
};

/**
 * The machine-wide injector. Owned by Machine next to the Tracer;
 * unconfigured it answers every consult with "no fault" at the cost
 * of one predicted branch.
 */
class FaultInjector
{
  public:
    struct SiteStats
    {
        uint64_t consults = 0;
        uint64_t fires = 0;
    };

    explicit FaultInjector(Tracer &tracer) : _tracer(tracer) {}

    /** Install @p spec and reseed; resets all consult/fire counters. */
    void configure(const FaultSpec &spec);

    /** Drop all rules and counters (back to never-fires). */
    void clear() { configure(FaultSpec{}); }

    bool armed() const { return _armed; }

    const FaultSpec &spec() const { return _spec; }

    /**
     * Consult the injector at @p site. Deterministic in the consult
     * sequence; emits a fault_inject trace event when it fires.
     */
    bool
    shouldFire(FaultSite site)
    {
        if (__builtin_expect(!_armed, 1))
            return false;
        return consult(site);
    }

    const SiteStats &
    siteStats(FaultSite site) const
    {
        return _stats[static_cast<unsigned>(site)];
    }

    uint64_t totalFires() const { return _totalFires; }

  private:
    bool consult(FaultSite site);

    Tracer &_tracer;
    FaultSpec _spec;
    bool _armed = false;
    std::vector<Rng> _rngs;  ///< one per site, independently seeded
    SiteStats _stats[kNumFaultSites];
    uint64_t _totalFires = 0;
};

} // namespace kloc

#endif // KLOC_FAULT_FAULT_HH
