#include "fs/block_layer.hh"

#include "base/logging.hh"

namespace kloc {

BlockLayer::BlockLayer(KernelHeap &heap, KlocManager *kloc,
                       BlockDevice &device)
    : _heap(heap), _kloc(kloc), _device(device)
{
    _ctxs.resize(heap.mem().machine().cpuCount());
}

BlockLayer::~BlockLayer()
{
    for (auto &ctx : _ctxs) {
        if (ctx)
            _heap.freeBacking(*ctx);
    }
}

BlkMqCtx *
BlockLayer::ctxForCpu(unsigned cpu)
{
    auto &slot = _ctxs[cpu];
    if (!slot) {
        slot = std::make_unique<BlkMqCtx>();
        slot->cpu = cpu;
        // blk-mq contexts are global per-CPU structures: allocated
        // once, never knode-tracked, hot for the process lifetime.
        const bool ok = _heap.allocBacking(*slot, true, 0);
        KLOC_ASSERT(ok, "no memory for blk_mq ctx");
    }
    return slot.get();
}

IoStatus
BlockLayer::submit(Knode *knode, bool active, uint64_t sector, Bytes length,
                   bool write, bool foreground)
{
    Machine &machine = _heap.mem().machine();

    // Allocate the bio and run the dispatch path. The bio is the
    // modelled object itself (kernel bios are born per request too),
    // not bookkeeping churn. klint:allow(hot-path-alloc): the bio
    // is the modelled object, born per request by design.
    auto bio = std::make_unique<Bio>();
    bio->sector = sector;
    bio->length = length;
    bio->write = write;
    const uint64_t group = knode ? knode->id : 0;
    if (!_heap.allocBacking(*bio, active, group)) {
        // Memory exhaustion on the I/O path: fall back to charging
        // the device cost without the bio bookkeeping. Single
        // attempt; there is no bio to park while backing off.
        return foreground
            ? _device.submitForeground(sector, length, write)
            : _device.submitBackground(sector, length, write);
    }
    if (_kloc && knode)
        _kloc->addObject(knode, bio.get());

    _heap.touchObject(*bio, AccessType::Write);
    const uint64_t bio_id = ++_bioSeq;
    Frame *backing = bio->frame();
    const uint64_t frame_key = traceFrameKey(backing->tier, backing->pfn);
    // The device charge below can dispatch async daemon work that
    // migrates frames; a frame with an in-flight bio must stay put
    // (the DMA targets its physical address), so pin it for the
    // duration of the submission — including every retry backoff,
    // which also advances the clock.
    ++backing->pinCount;
    machine.tracer().emit(TraceEventType::FramePin, backing->tier,
                          backing->pfn);
    machine.tracer().emit(TraceEventType::BioSubmit, bio_id, frame_key,
                          sector, write ? 1 : 0);
    BlkMqCtx *ctx = ctxForCpu(machine.currentCpu());
    _heap.touchObject(*ctx, AccessType::Write);
    ++ctx->dispatched;
    machine.cpuWork(kDispatchCost);

    IoStatus status = IoStatus::Ok;
    for (unsigned attempt = 0; ; ++attempt) {
        status = foreground
            ? _device.submitForeground(sector, length, write)
            : _device.submitBackground(sector, length, write);
        if (status == IoStatus::Ok || attempt >= kMaxRetries)
            break;
        // Transient failure: park the bio for an exponentially
        // growing delay, then resubmit. Foreground callers eat the
        // whole delay; background requeues overlap like any other
        // async work.
        const Tick backoff = kRetryBackoffBase * (int64_t{1} << attempt);
        ++_bioRetries;
        machine.tracer().emit(TraceEventType::BioRetry, bio_id,
                              attempt + 1, static_cast<uint64_t>(backoff));
        if (foreground)
            machine.charge(backoff);
        else
            machine.backgroundTraffic(backoff);
    }
    if (status != IoStatus::Ok) {
        ++_bioErrors;
        machine.tracer().emit(TraceEventType::BioError, bio_id,
                              kMaxRetries + 1);
    }

    // Completion (success or retry exhaustion): the pin is released
    // and the bio freed on every path.
    machine.tracer().emit(TraceEventType::BioComplete, bio_id);
    machine.tracer().emit(TraceEventType::FrameUnpin, backing->tier,
                          backing->pfn);
    --backing->pinCount;
    if (_kloc && bio->knode)
        _kloc->removeObject(bio.get());
    _heap.freeBacking(*bio);
    ++_bios;
    return status;
}

} // namespace kloc
