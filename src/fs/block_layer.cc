#include "fs/block_layer.hh"

#include "base/logging.hh"

namespace kloc {

BlockLayer::BlockLayer(KernelHeap &heap, KlocManager *kloc,
                       BlockDevice &device)
    : _heap(heap), _kloc(kloc), _device(device)
{
    _ctxs.resize(heap.mem().machine().cpuCount());
}

BlockLayer::~BlockLayer()
{
    for (auto &ctx : _ctxs) {
        if (ctx)
            _heap.freeBacking(*ctx);
    }
}

BlkMqCtx *
BlockLayer::ctxForCpu(unsigned cpu)
{
    auto &slot = _ctxs[cpu];
    if (!slot) {
        slot = std::make_unique<BlkMqCtx>();
        slot->cpu = cpu;
        // blk-mq contexts are global per-CPU structures: allocated
        // once, never knode-tracked, hot for the process lifetime.
        const bool ok = _heap.allocBacking(*slot, true, 0);
        KLOC_ASSERT(ok, "no memory for blk_mq ctx");
    }
    return slot.get();
}

void
BlockLayer::submit(Knode *knode, bool active, uint64_t sector, Bytes length,
                   bool write, bool foreground)
{
    Machine &machine = _heap.mem().machine();

    // Allocate the bio and run the dispatch path.
    auto bio = std::make_unique<Bio>();
    bio->sector = sector;
    bio->length = length;
    bio->write = write;
    const uint64_t group = knode ? knode->id : 0;
    if (!_heap.allocBacking(*bio, active, group)) {
        // Memory exhaustion on the I/O path: fall back to charging
        // the device cost without the bio bookkeeping.
        if (foreground)
            _device.submitForeground(sector, length);
        else
            _device.submitBackground(sector, length);
        return;
    }
    if (_kloc && knode)
        _kloc->addObject(knode, bio.get());

    _heap.touchObject(*bio, AccessType::Write);
    const uint64_t bio_id = ++_bioSeq;
    Frame *backing = bio->frame();
    // The device charge below can dispatch async daemon work that
    // migrates frames; a frame with an in-flight bio must stay put
    // (the DMA targets its physical address), so pin it for the
    // duration of the submission.
    ++backing->pinCount;
    machine.tracer().emit(TraceEventType::BioSubmit, bio_id,
                          traceFrameKey(backing->tier, backing->pfn),
                          sector, write ? 1 : 0);
    BlkMqCtx *ctx = ctxForCpu(machine.currentCpu());
    _heap.touchObject(*ctx, AccessType::Write);
    ++ctx->dispatched;
    machine.cpuWork(kDispatchCost);

    if (foreground)
        _device.submitForeground(sector, length);
    else
        _device.submitBackground(sector, length);

    // Completion: bio is freed.
    machine.tracer().emit(TraceEventType::BioComplete, bio_id);
    --backing->pinCount;
    if (_kloc && bio->knode)
        _kloc->removeObject(bio.get());
    _heap.freeBacking(*bio);
    ++_bios;
}

} // namespace kloc
