/**
 * @file
 * Block layer: bio submission through per-CPU multi-queue contexts
 * to the device model.
 *
 * Every submission allocates a short-lived bio object (slab) — these
 * are a visible slice of Fig. 2a's BlockIo footprint and of the
 * lifetime distribution in Fig. 2d — and dispatches through the
 * submitting CPU's blk_mq context.
 */

#ifndef KLOC_FS_BLOCK_LAYER_HH
#define KLOC_FS_BLOCK_LAYER_HH

#include <memory>
#include <vector>

#include "core/kloc_manager.hh"
#include "fs/device.hh"
#include "fs/objects.hh"
#include "kobj/kernel_heap.hh"

namespace kloc {

/** bio + blk-mq dispatch path. */
class BlockLayer
{
  public:
    /** CPU cost of the submit_bio -> blk_mq dispatch path. */
    static constexpr Tick kDispatchCost{600};

    /** Retries after the first failed attempt before giving up. */
    static constexpr unsigned kMaxRetries = 4;

    /** First retry delay; doubles per attempt (bounded by kMaxRetries). */
    static constexpr Tick kRetryBackoffBase = 100 * kMicrosecond;

    BlockLayer(KernelHeap &heap, KlocManager *kloc, BlockDevice &device);
    ~BlockLayer();

    /**
     * Submit one I/O. Transient device errors and timeouts are
     * retried with exponential backoff; the returned status is the
     * final outcome after retries are exhausted.
     *
     * @param knode      Owning KLOC for object tracking (may be null).
     * @param active     Hotness hint for placement.
     * @param foreground Caller blocks on completion (reads/fsync).
     */
    IoStatus submit(Knode *knode, bool active, uint64_t sector,
                    Bytes length, bool write, bool foreground);

    BlockDevice &device() { return _device; }

    uint64_t biosSubmitted() const { return _bios; }
    uint64_t bioRetries() const { return _bioRetries; }
    uint64_t bioErrors() const { return _bioErrors; }

  private:
    BlkMqCtx *ctxForCpu(unsigned cpu);

    KernelHeap &_heap;
    KlocManager *_kloc;
    BlockDevice &_device;
    /** Lazily created per-CPU blk-mq contexts (global, not tracked). */
    std::vector<std::unique_ptr<BlkMqCtx>> _ctxs;
    uint64_t _bios = 0;
    uint64_t _bioSeq = 0;  ///< stable per-layer bio ids for tracing
    uint64_t _bioRetries = 0;
    uint64_t _bioErrors = 0;  ///< bios failed after retry exhaustion
};

} // namespace kloc

#endif // KLOC_FS_BLOCK_LAYER_HH
