/**
 * @file
 * NVMe-like block device timing model.
 *
 * Matches Table 4's storage row: 512 GB NVMe with 1.2 GB/s
 * sequential and 412 MB/s random bandwidth. Sequentiality is judged
 * per submission against the last accessed sector. Device work can
 * be charged as foreground (a read the caller blocks on) or
 * background (writeback and journal commits).
 *
 * The device consults the machine's FaultInjector per submission:
 * a request can complete with a transient media error (charged the
 * access latency spent discovering it) or time out (charged the
 * full timeout window). Callers — the block layer — decide whether
 * and how to retry.
 */

#ifndef KLOC_FS_DEVICE_HH
#define KLOC_FS_DEVICE_HH

#include <cstdint>

#include "sim/machine.hh"

namespace kloc {

/** How one device submission completed. */
enum class IoStatus : uint8_t {
    Ok = 0,
    Error,     ///< transient media error (retryable)
    Timeout,   ///< request timed out (retryable)
};

/** Block device timing model. */
class BlockDevice
{
  public:
    struct Config
    {
        Bytes seqBandwidth = 1200 * kMiB;  ///< sequential B/s
        Bytes randBandwidth = 412 * kMiB;  ///< random B/s
        Tick accessLatency = 80 * kMicrosecond;
        Bytes capacity = 512 * kGiB;
        /** Wall time burned before a stalled request is declared
         *  timed out (NVMe-ish multi-ms watchdog). */
        Tick timeoutLatency = 4 * kMillisecond;
    };

    BlockDevice(Machine &machine, const Config &config)
        : _machine(machine), _config(config)
    {}

    /**
     * Cost of transferring @p bytes starting at @p sector. Updates
     * the sequentiality cursor.
     */
    Tick
    transferCost(uint64_t sector, Bytes bytes)
    {
        const bool sequential = sector == _nextSector;
        _nextSector = sector + bytes / kSectorSize;
        const Bytes bw = sequential ? _config.seqBandwidth
                                    : _config.randBandwidth;
        ++_requests;
        _bytesTransferred += bytes;
        return _config.accessLatency + transferTime(bytes, bw);
    }

    /** Charge a transfer the caller blocks on (cold read, fsync). */
    IoStatus
    submitForeground(uint64_t sector, Bytes bytes, bool write = false)
    {
        const IoStatus status = completionStatus(write);
        _machine.charge(faultAdjustedCost(status, sector, bytes));
        return status;
    }

    /** Charge an asynchronous transfer (writeback, journal flush). */
    IoStatus
    submitBackground(uint64_t sector, Bytes bytes, bool write = false)
    {
        const IoStatus status = completionStatus(write);
        _machine.backgroundTraffic(
            faultAdjustedCost(status, sector, bytes));
        return status;
    }

    uint64_t requests() const { return _requests; }
    Bytes bytesTransferred() const { return _bytesTransferred; }
    uint64_t ioErrors() const { return _ioErrors; }
    uint64_t timeouts() const { return _timeouts; }

    static constexpr Bytes kSectorSize{512};

  private:
    /** Consult the injector for this submission's completion mode. */
    IoStatus
    completionStatus(bool write)
    {
        FaultInjector &faults = _machine.faults();
        if (faults.shouldFire(FaultSite::DeviceTimeout)) {
            ++_timeouts;
            return IoStatus::Timeout;
        }
        const FaultSite site =
            write ? FaultSite::DeviceWrite : FaultSite::DeviceRead;
        if (faults.shouldFire(site)) {
            ++_ioErrors;
            return IoStatus::Error;
        }
        return IoStatus::Ok;
    }

    /**
     * Time a submission occupies the caller. Errors surface after the
     * access latency (the controller reports them fast); timeouts eat
     * the whole watchdog window. Neither moves data, so the
     * sequentiality cursor and byte counters only advance on Ok.
     */
    Tick
    faultAdjustedCost(IoStatus status, uint64_t sector, Bytes bytes)
    {
        switch (status) {
          case IoStatus::Ok:
            return transferCost(sector, bytes);
          case IoStatus::Error:
            ++_requests;
            return _config.accessLatency;
          case IoStatus::Timeout:
            ++_requests;
            return _config.timeoutLatency;
        }
        return Tick{};
    }

    Machine &_machine;
    Config _config;
    uint64_t _nextSector = 0;
    uint64_t _requests = 0;
    Bytes _bytesTransferred{};
    uint64_t _ioErrors = 0;
    uint64_t _timeouts = 0;
};

} // namespace kloc

#endif // KLOC_FS_DEVICE_HH
