/**
 * @file
 * NVMe-like block device timing model.
 *
 * Matches Table 4's storage row: 512 GB NVMe with 1.2 GB/s
 * sequential and 412 MB/s random bandwidth. Sequentiality is judged
 * per submission against the last accessed sector. Device work can
 * be charged as foreground (a read the caller blocks on) or
 * background (writeback and journal commits).
 */

#ifndef KLOC_FS_DEVICE_HH
#define KLOC_FS_DEVICE_HH

#include <cstdint>

#include "sim/machine.hh"

namespace kloc {

/** Block device timing model. */
class BlockDevice
{
  public:
    struct Config
    {
        Bytes seqBandwidth = 1200 * kMiB;  ///< sequential B/s
        Bytes randBandwidth = 412 * kMiB;  ///< random B/s
        Tick accessLatency = 80 * kMicrosecond;
        Bytes capacity = 512 * kGiB;
    };

    BlockDevice(Machine &machine, const Config &config)
        : _machine(machine), _config(config)
    {}

    /**
     * Cost of transferring @p bytes starting at @p sector. Updates
     * the sequentiality cursor.
     */
    Tick
    transferCost(uint64_t sector, Bytes bytes)
    {
        const bool sequential = sector == _nextSector;
        _nextSector = sector + bytes / kSectorSize;
        const Bytes bw = sequential ? _config.seqBandwidth
                                    : _config.randBandwidth;
        ++_requests;
        _bytesTransferred += bytes;
        return _config.accessLatency + transferTime(bytes, bw);
    }

    /** Charge a transfer the caller blocks on (cold read, fsync). */
    void
    submitForeground(uint64_t sector, Bytes bytes)
    {
        _machine.charge(transferCost(sector, bytes));
    }

    /** Charge an asynchronous transfer (writeback, journal flush). */
    void
    submitBackground(uint64_t sector, Bytes bytes)
    {
        _machine.backgroundTraffic(transferCost(sector, bytes));
    }

    uint64_t requests() const { return _requests; }
    Bytes bytesTransferred() const { return _bytesTransferred; }

    static constexpr Bytes kSectorSize = 512;

  private:
    Machine &_machine;
    Config _config;
    uint64_t _nextSector = 0;
    uint64_t _requests = 0;
    Bytes _bytesTransferred = 0;
};

} // namespace kloc

#endif // KLOC_FS_DEVICE_HH
