#include "fs/journal.hh"

#include <algorithm>

namespace kloc {

Journal::Journal(KernelHeap &heap, KlocManager *kloc, BlockLayer &block)
    : _heap(heap), _kloc(kloc), _block(block)
{
}

Journal::~Journal()
{
    // Drop any uncommitted transaction state. This is an abort, not a
    // commit, but it still releases journal objects — open a detach
    // window so the invariant checker sees a sanctioned release.
    // Move the queues into locals before releasing anything: freeing
    // charges time, charged time dispatches events, and the commit
    // timer firing mid-teardown must find the queues already empty
    // instead of half-released.
    Tracer &tracer = _heap.mem().machine().tracer();
    tracer.emit(TraceEventType::JournalDetachStart, 0);
    std::vector<std::unique_ptr<JournalRecord>> records =
        std::move(_records);
    _records.clear();
    std::vector<std::unique_ptr<JournalPage>> pages = std::move(_pages);
    _pages.clear();
    for (auto &rec : records) {
        if (_kloc && rec->knode)
            _kloc->removeObject(rec.get());
        _heap.freeBacking(*rec);
    }
    for (auto &page : pages) {
        if (_kloc && page->knode)
            _kloc->removeObject(page.get());
        _heap.freeBacking(*page);
    }
    tracer.emit(TraceEventType::JournalDetachEnd, 0);
}

void
Journal::logMetadata(Knode *knode, bool active, uint64_t inode_id,
                     Bytes meta_bytes)
{
    Machine &machine = _heap.mem().machine();
    machine.cpuWork(kLogCost);

    auto rec = std::make_unique<JournalRecord>();
    rec->inodeId = inode_id;
    rec->txId = _txId;
    const uint64_t group = knode ? knode->id : 0;
    if (!_heap.allocBacking(*rec, active, group))
        return;  // exhausted: drop the record, keep running
    if (_kloc && knode)
        _kloc->addObject(knode, rec.get());
    _heap.touchObject(*rec, AccessType::Write);
    _records.push_back(std::move(rec));

    // Every page worth of logged metadata pins a journal buffer page.
    _pendingMetaBytes += meta_bytes;
    while (_pendingMetaBytes >= kPageSize) {
        _pendingMetaBytes -= kPageSize;
        auto page = std::make_unique<JournalPage>();
        page->txId = _txId;
        page->inodeId = inode_id;
        if (!_heap.allocBacking(*page, active, group))
            break;
        if (_kloc && knode)
            _kloc->addObject(knode, page.get());
        _heap.touchObject(*page, AccessType::Write);
        _pages.push_back(std::move(page));
    }
}

void
Journal::releaseTransaction()
{
    // Same shape as the destructor: take the queues first, release
    // after. removeObject/freeBacking charge time, and a dispatched
    // event re-entering the journal must see the transaction as
    // already gone.
    std::vector<std::unique_ptr<JournalRecord>> records =
        std::move(_records);
    _records.clear();
    std::vector<std::unique_ptr<JournalPage>> pages = std::move(_pages);
    _pages.clear();
    for (auto &rec : records) {
        if (_kloc && rec->knode)
            _kloc->removeObject(rec.get());
        _heap.freeBacking(*rec);
    }
    for (auto &page : pages) {
        if (_kloc && page->knode)
            _kloc->removeObject(page.get());
        _heap.freeBacking(*page);
    }
}

void
Journal::commit(bool foreground)
{
    // Charging time below dispatches async events, which can include
    // our own commit timer: guard against re-entering mid-iteration.
    if (_committing)
        return;
    if (_crashed) {
        // Write-ahead contract: the crashed transaction must replay
        // before anything newer commits.
        _committing = true;
        recover(foreground);
        _committing = false;
        return;
    }
    if (_records.empty() && _pages.empty())
        return;
    _committing = true;
    Machine &machine = _heap.mem().machine();
    Tracer &tracer = machine.tracer();
    FaultInjector &faults = machine.faults();
    const uint64_t tx_start = _journalSector;
    tracer.emit(TraceEventType::JournalCommitStart, _txId, _records.size(),
                _pages.size(), foreground ? 1 : 0);

    // A crash freezes the transaction where it stands: records and
    // pages stay queued, the cursor rewinds to the transaction start,
    // and the next commit() replays the whole thing.
    auto crash = [&](uint64_t pages_written) {
        tracer.emit(TraceEventType::JournalCrash, _txId, pages_written);
        _crashed = true;
        _crashedTx = _txId;
        ++_crashes;
        _journalSector = tx_start;
        _committing = false;
    };

    // Crash point 1: after the transaction is sealed, before any
    // journal write reaches the device.
    if (faults.shouldFire(FaultSite::JournalCommitCrash)) {
        crash(0);
        return;
    }

    // Write the transaction's buffer pages to the journal area.
    // Journal writes are sequential by construction, so they batch
    // into large bios (jbd2 submits whole descriptor blocks).
    constexpr size_t batch_pages = 128;
    uint64_t pages_written = 0;
    for (size_t i = 0; i < _pages.size(); i += batch_pages) {
        const size_t run = std::min(batch_pages, _pages.size() - i);
        for (size_t j = i; j < i + run; ++j)
            // klint:allow(reentrancy-hazard): _committing is latched for the whole batch loop, so charged time cannot re-enter commit and free _pages
            _heap.touchObject(*_pages[j], AccessType::Read);
        const IoStatus status =
            _block.submit(nullptr, false, _journalSector, run * kPageSize,
                          /*write=*/true, foreground);
        if (status != IoStatus::Ok) {
            // The journal area write never made it even after the
            // block layer's retries: abort this commit, rewind the
            // cursor, and keep the transaction queued for the next
            // attempt.
            tracer.emit(TraceEventType::JournalCommitAbort, _txId);
            ++_commitAborts;
            _journalSector = tx_start;
            _committing = false;
            return;
        }
        _journalSector += run * kPageSize / BlockDevice::kSectorSize;
        pages_written += run;
        // Crash point 2: between journal batch writes.
        if (faults.shouldFire(FaultSite::JournalCommitCrash)) {
            crash(pages_written);
            return;
        }
    }

    // Crash point 3: pages durable, but the commit record (the free
    // of the in-memory transaction) never happens.
    if (faults.shouldFire(FaultSite::JournalCommitCrash)) {
        crash(pages_written);
        return;
    }

    // Transaction done: free every record and page.
    releaseTransaction();
    tracer.emit(TraceEventType::JournalCommitEnd, _txId);
    ++_txId;
    ++_committedTxs;
    _committing = false;
}

bool
Journal::recover(bool foreground)
{
    Tracer &tracer = _heap.mem().machine().tracer();
    tracer.emit(TraceEventType::JournalReplayStart, _crashedTx,
                _records.size(), _pages.size());

    // Rewrite the whole transaction from its start sector (the crash
    // rewound the cursor there). Replay consults no crash points —
    // the injected crash already happened; recovery is the part we
    // are proving correct.
    const uint64_t replay_start = _journalSector;
    constexpr size_t batch_pages = 128;
    bool ok = true;
    for (size_t i = 0; i < _pages.size(); i += batch_pages) {
        const size_t run = std::min(batch_pages, _pages.size() - i);
        for (size_t j = i; j < i + run; ++j)
            // klint:allow(reentrancy-hazard): _committing is latched for the whole batch loop, so charged time cannot re-enter commit and free _pages
            _heap.touchObject(*_pages[j], AccessType::Read);
        const IoStatus status =
            _block.submit(nullptr, false, _journalSector, run * kPageSize,
                          /*write=*/true, foreground);
        if (status != IoStatus::Ok) {
            ok = false;
            break;
        }
        _journalSector += run * kPageSize / BlockDevice::kSectorSize;
    }
    if (!ok) {
        // Device still failing: stay crashed, retry at the next
        // commit. Nothing was freed, so no update is lost.
        _journalSector = replay_start;
        tracer.emit(TraceEventType::JournalReplayEnd, _crashedTx, 0);
        return false;
    }

    // Replayed durably: release the transaction inside the replay
    // window and resume normal numbering after the recovered tx.
    releaseTransaction();
    tracer.emit(TraceEventType::JournalReplayEnd, _crashedTx, 1);
    ++_committedTxs;
    ++_recoveredTxs;
    _txId = _crashedTx + 1;
    _crashed = false;
    _pendingMetaBytes = Bytes{};
    return true;
}

void
Journal::detachInode(uint64_t inode_id)
{
    Tracer &tracer = _heap.mem().machine().tracer();
    tracer.emit(TraceEventType::JournalDetachStart, inode_id);
    // removeObject charges time, and charged time can fire the commit
    // timer. Latch _committing so a timer tick cannot run
    // releaseTransaction under these walks (save/restore: detach may
    // itself run inside a commit).
    const bool was_committing = _committing;
    _committing = true;
    for (auto &rec : _records) {
        if (rec->inodeId == inode_id && _kloc && rec->knode)
            // klint:allow(iterator-invalidation): the _committing latch above keeps the commit timer out of releaseTransaction mid-walk
            _kloc->removeObject(rec.get());
    }
    for (auto &page : _pages) {
        if (page->inodeId == inode_id && _kloc && page->knode)
            // klint:allow(iterator-invalidation): the _committing latch above keeps the commit timer out of releaseTransaction mid-walk
            _kloc->removeObject(page.get());
    }
    _committing = was_committing;
    tracer.emit(TraceEventType::JournalDetachEnd, inode_id);
}

void
Journal::timerTick(Tick period)
{
    if (!_timerRunning)
        return;
    commit(/*foreground=*/false);
    Machine &machine = _heap.mem().machine();
    machine.events().schedule(
        machine.now() + period,
        [this, period, weak = std::weak_ptr<int>(_alive)] {
            if (!weak.expired())
                timerTick(period);
        });
}

void
Journal::startCommitTimer(Tick period)
{
    if (_timerRunning)
        return;
    _timerRunning = true;
    Machine &machine = _heap.mem().machine();
    machine.events().schedule(
        machine.now() + period,
        [this, period, weak = std::weak_ptr<int>(_alive)] {
            if (!weak.expired())
                timerTick(period);
        });
}

} // namespace kloc
