/**
 * @file
 * Write-ahead journal in the style of jbd2.
 *
 * Metadata updates add journal records (slab journal_heads) to the
 * running transaction; every kPageSize of logged metadata also pins a
 * journal data page. Commit writes the transaction's pages to the
 * on-disk journal area sequentially and frees all records — making
 * journal objects some of the shortest-lived kernel objects the
 * paper measures.
 *
 * Commit can fail two ways. A write error that survives the block
 * layer's retries aborts the commit: the journal cursor rewinds to
 * the transaction's start and the records stay queued for the next
 * commit attempt. A crash (injected at the JournalCommitCrash fault
 * site, before/between/after the page writes) freezes the
 * transaction; the next commit() call replays it from the start of
 * its journal area before any new transaction may commit — the
 * write-ahead contract.
 */

#ifndef KLOC_FS_JOURNAL_HH
#define KLOC_FS_JOURNAL_HH

#include <memory>
#include <vector>

#include "core/kloc_manager.hh"
#include "fs/block_layer.hh"
#include "fs/objects.hh"
#include "kobj/kernel_heap.hh"

namespace kloc {

/** jbd2-like journal over the block layer. */
class Journal
{
  public:
    /** CPU cost of adding one record to the running transaction. */
    static constexpr Tick kLogCost{250};
    /** Journal area start sector (writes are sequential within it). */
    static constexpr uint64_t kJournalStartSector = 1ULL << 30;

    Journal(KernelHeap &heap, KlocManager *kloc, BlockLayer &block);
    ~Journal();

    /**
     * Log @p meta_bytes of metadata for @p knode's inode into the
     * running transaction.
     */
    void logMetadata(Knode *knode, bool active, uint64_t inode_id,
                     Bytes meta_bytes);

    /**
     * Commit the running transaction: write its pages to the journal
     * area and free every record.
     * @param foreground true when a caller blocks on it (fsync).
     */
    void commit(bool foreground);

    /**
     * Untrack any in-flight records/pages belonging to @p inode_id
     * from their knode (called before the knode is destroyed on
     * unlink). The objects stay allocated until commit.
     */
    void detachInode(uint64_t inode_id);

    /** Schedule periodic background commits every @p period. */
    void startCommitTimer(Tick period);

    void stopCommitTimer() { _timerRunning = false; }

    uint64_t committedTxs() const { return _committedTxs; }
    uint64_t liveRecords() const { return _records.size(); }

    /** True between a crash and its successful replay. */
    bool crashed() const { return _crashed; }
    uint64_t crashes() const { return _crashes; }
    uint64_t recoveredTxs() const { return _recoveredTxs; }
    uint64_t commitAborts() const { return _commitAborts; }

  private:
    void timerTick(Tick period);

    /** Replay the crashed transaction. @return true on success. */
    bool recover(bool foreground);

    /** Free every queued record and page (transaction complete). */
    void releaseTransaction();

    KernelHeap &_heap;
    KlocManager *_kloc;
    BlockLayer &_block;

    uint64_t _txId = 1;
    std::vector<std::unique_ptr<JournalRecord>> _records;
    std::vector<std::unique_ptr<JournalPage>> _pages;
    Bytes _pendingMetaBytes{};
    uint64_t _journalSector = kJournalStartSector;
    uint64_t _committedTxs = 0;
    bool _timerRunning = false;
    bool _committing = false;
    bool _crashed = false;
    uint64_t _crashedTx = 0;
    uint64_t _crashes = 0;
    uint64_t _recoveredTxs = 0;
    uint64_t _commitAborts = 0;
    /** Liveness token for the commit-timer lambdas. */
    std::shared_ptr<int> _alive = std::make_shared<int>(0);
};

} // namespace kloc

#endif // KLOC_FS_JOURNAL_HH
