/**
 * @file
 * Concrete filesystem kernel objects (Table 1).
 *
 * Each derives KernelObject so it can be slab/page backed, charged
 * through the MemAccessor, and tracked in a knode's rbtree. Host-side
 * fields carry only what the simulated code paths need.
 */

#ifndef KLOC_FS_OBJECTS_HH
#define KLOC_FS_OBJECTS_HH

#include <memory>
#include <string>
#include <vector>

#include "base/intrusive_list.hh"
#include "kobj/kobject.hh"

namespace kloc {

class PageCache;

/** Per-file inode (also used for sockets: "everything is a file"). */
struct Inode : KernelObject
{
    explicit Inode(uint64_t ino)
        : KernelObject(KobjKind::Inode), inodeId(ino)
    {}

    uint64_t inodeId;
    Bytes fileSize{};
    uint32_t refCount = 0;   ///< open file descriptors
    uint32_t linkCount = 1;  ///< directory entries
    bool isSocket = false;
    /** Owning knode (typed alias of KernelObject::knode). */
    void *klocKnode = nullptr;
};

/** Directory entry for name resolution. */
struct Dentry : KernelObject
{
    Dentry() : KernelObject(KobjKind::Dentry) {}

    uint64_t inodeId = 0;
    std::string name;
    ListHook dcacheHook;  ///< dentry-cache LRU
};

/** One contiguous-extent descriptor (ext4 extent status). */
struct Extent : KernelObject
{
    Extent() : KernelObject(KobjKind::Extent) {}

    uint64_t firstBlock = 0;
    uint32_t blockCount = 0;
};

/** A buffer-cache page belonging to one inode at one file offset. */
struct PageCachePage : KernelObject
{
    PageCachePage() : KernelObject(KobjKind::PageCachePage) {}

    uint64_t inodeId = 0;
    uint64_t pageIndex = 0;     ///< file offset / page size
    bool dirty = false;
    bool uptodate = false;      ///< contents read from disk
    PageCache *owner = nullptr;
    ListHook globalLruHook;     ///< VFS-wide reclaim list

    /** Real contents; materialised only in data-backed mode. */
    std::unique_ptr<char[]> data;
};

/** Radix-tree interior node backing (page-cache metadata). */
struct RadixNodeObj : KernelObject
{
    RadixNodeObj() : KernelObject(KobjKind::RadixNode) {}
};

/** Journal descriptor (journal_head). */
struct JournalRecord : KernelObject
{
    JournalRecord() : KernelObject(KobjKind::JournalRecord) {}

    uint64_t inodeId = 0;
    uint64_t txId = 0;
};

/** Journal data buffer page. */
struct JournalPage : KernelObject
{
    JournalPage() : KernelObject(KobjKind::JournalPage) {}

    uint64_t txId = 0;
    uint64_t inodeId = 0;
};

/** Block I/O request (struct bio). */
struct Bio : KernelObject
{
    Bio() : KernelObject(KobjKind::Bio) {}

    uint64_t sector = 0;
    Bytes length{};
    bool write = false;
};

/** Block multi-queue per-CPU context. */
struct BlkMqCtx : KernelObject
{
    BlkMqCtx() : KernelObject(KobjKind::BlkMqCtx) {}

    unsigned cpu = 0;
    uint64_t dispatched = 0;
};

/** Directory read buffer. */
struct DirBuffer : KernelObject
{
    DirBuffer() : KernelObject(KobjKind::DirBuffer) {}
};

} // namespace kloc

#endif // KLOC_FS_OBJECTS_HH
