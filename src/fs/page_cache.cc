#include "fs/page_cache.hh"

#include "base/logging.hh"

namespace kloc {

PageCache::PageCache(KernelHeap &heap, KlocManager *kloc, uint64_t inode_id,
                     bool data_backed)
    : _heap(heap), _kloc(kloc), _inodeId(inode_id), _dataBacked(data_backed)
{
    _tree.setNodeObserver(
        [this](bool created) { onRadixNodeChange(created); });
}

PageCache::~PageCache()
{
    // Free any pages still cached (inode teardown).
    std::vector<PageCachePage *> pages;
    forEachPage([&](PageCachePage *page) { pages.push_back(page); });
    for (PageCachePage *page : pages)
        removeAndFree(page);
    // The tree is empty now; its observer has already released every
    // interior-node object.
    KLOC_ASSERT(_radixNodes.empty(), "radix node objects leaked");
}

void
PageCache::onRadixNodeChange(bool created)
{
    if (created) {
        auto node = std::make_unique<RadixNodeObj>();
        const uint64_t group = _knode ? _knode->id : 0;
        const bool active = _knode ? _knode->inuse : true;
        if (_heap.allocBacking(*node, active, group)) {
            if (_kloc && _knode)
                _kloc->addObject(_knode, node.get());
            _heap.touchObject(*node, AccessType::Write);
        }
        _radixNodes.push_back(std::move(node));
    } else {
        KLOC_ASSERT(!_radixNodes.empty(), "radix node underflow");
        auto node = std::move(_radixNodes.back());
        _radixNodes.pop_back();
        if (node->backed()) {
            if (_kloc && node->knode)
                _kloc->removeObject(node.get());
            _heap.freeBacking(*node);
        }
    }
}

void
PageCache::chargeDescent(uint64_t before)
{
    // Each visited interior node costs one small access on whatever
    // tier holds radix-node objects for this inode.
    const uint64_t visited = _tree.nodesVisited() - before;
    if (visited == 0 || _radixNodes.empty())
        return;
    KernelObject *repr = _radixNodes.back().get();
    if (!repr->backed())
        return;
    for (uint64_t i = 0; i < visited; ++i)
        _heap.mem().touch(repr->frame(), Bytes{8}, AccessType::Read);
}

PageCachePage *
PageCache::find(uint64_t index)
{
    const uint64_t before = _tree.nodesVisited();
    auto *page = static_cast<PageCachePage *>(_tree.lookup(index));
    chargeDescent(before);
    return page;
}

PageCachePage *
PageCache::insertNew(uint64_t index, bool active)
{
    auto page = std::make_unique<PageCachePage>();
    page->inodeId = _inodeId;
    page->pageIndex = index;
    page->owner = this;
    const uint64_t group = _knode ? _knode->id : 0;
    if (!_heap.allocBacking(*page, active, group))
        return nullptr;
    if (_dataBacked)
        page->data = std::make_unique<char[]>(kPageSize);

    const uint64_t before = _tree.nodesVisited();
    if (!_tree.insert(index, page.get())) {
        // Raced with an existing page at this index.
        _heap.freeBacking(*page);
        return nullptr;
    }
    chargeDescent(before);
    if (_kloc && _knode)
        _kloc->addObject(_knode, page.get());
    _heap.touchObject(*page, AccessType::Write);
    return page.release();
}

void
PageCache::removeAndFree(PageCachePage *page)
{
    KLOC_ASSERT(page->owner == this, "page belongs to another cache");
    if (page->dirty)
        clearDirty(page);
    void *erased = _tree.erase(page->pageIndex);
    KLOC_ASSERT(erased == page, "page cache tree out of sync");
    if (_kloc && page->knode)
        _kloc->removeObject(page);
    KLOC_ASSERT(!page->globalLruHook.linked(),
                "freeing page still on the global reclaim list");
    _heap.freeBacking(*page);
    delete page;
}

void
PageCache::markDirty(PageCachePage *page)
{
    if (!page->dirty) {
        page->dirty = true;
        ++_dirtyCount;
        _tree.setTag(page->pageIndex, RadixTag::Dirty);
    }
}

void
PageCache::clearDirty(PageCachePage *page)
{
    if (page->dirty) {
        page->dirty = false;
        KLOC_ASSERT(_dirtyCount > 0, "dirty count underflow");
        --_dirtyCount;
        _tree.clearTag(page->pageIndex, RadixTag::Dirty);
    }
}

std::vector<PageCachePage *>
PageCache::dirtyPages(uint64_t start_index, FrameCount max)
{
    std::vector<PageCachePage *> result;
    collectDirty(start_index, max, result);
    return result;
}

void
PageCache::collectDirty(uint64_t start_index, FrameCount max,
                        std::vector<PageCachePage *> &out)
{
    out.clear();
    _tree.gangLookupTag(start_index, static_cast<unsigned>(max.value()),
                        RadixTag::Dirty, _gangScratch);
    out.reserve(_gangScratch.size());
    for (auto &[index, item] : _gangScratch)
        out.push_back(static_cast<PageCachePage *>(item));
}

void
PageCache::forEachPage(const std::function<void(PageCachePage *)> &fn)
{
    // Unlike the tag walks above, this one runs an arbitrary visitor
    // mid-batch, and a visitor that re-enters this cache (writeback,
    // reclaim) would refill the shared member scratch under us. Take
    // the buffer for the duration of the walk: a re-entrant walk then
    // grows its own, and the swap-back keeps the capacity amortised.
    std::vector<std::pair<uint64_t, void *>> scratch;
    scratch.swap(_gangScratch);
    uint64_t start = 0;
    while (true) {
        _tree.gangLookup(start, 256, scratch);
        if (scratch.empty())
            break;
        for (auto &[index, item] : scratch)
            fn(static_cast<PageCachePage *>(item));
        start = scratch.back().first + 1;
    }
    scratch.swap(_gangScratch);
}

} // namespace kloc
