/**
 * @file
 * Per-inode page cache on a radix tree, like Linux's address_space.
 *
 * Pages are PageCachePage kernel objects; interior radix nodes are
 * themselves slab kernel objects (RadixNodeObj) so their placement
 * and footprint count — radix nodes are among the structures the
 * paper calls out as frequently allocated and deleted (§3.1).
 */

#ifndef KLOC_FS_PAGE_CACHE_HH
#define KLOC_FS_PAGE_CACHE_HH

#include <functional>
#include <memory>
#include <vector>

#include "base/radix_tree.hh"
#include "core/kloc_manager.hh"
#include "fs/objects.hh"
#include "kobj/kernel_heap.hh"

namespace kloc {

/** Per-inode page cache. */
class PageCache
{
  public:
    PageCache(KernelHeap &heap, KlocManager *kloc, uint64_t inode_id,
              bool data_backed);
    ~PageCache();

    PageCache(const PageCache &) = delete;
    PageCache &operator=(const PageCache &) = delete;

    /** Bind the inode's knode (objects created later attach to it). */
    void setKnode(Knode *knode) { _knode = knode; }

    Knode *knode() const { return _knode; }

    /**
     * Look up the page at @p index, charging the radix descent
     * against the tree's interior-node placement.
     */
    PageCachePage *find(uint64_t index);

    /**
     * Allocate and insert a new page at @p index.
     * @return the page, or nullptr on memory exhaustion or conflict.
     */
    PageCachePage *insertNew(uint64_t index, bool active);

    /** Remove @p page from the tree and free it. */
    void removeAndFree(PageCachePage *page);

    /** Mark @p page dirty (sets the radix Dirty tag). */
    void markDirty(PageCachePage *page);

    /** Clear @p page's dirty state (after writeback). */
    void clearDirty(PageCachePage *page);

    /** Up to @p max dirty pages with index >= @p start, in order. */
    std::vector<PageCachePage *> dirtyPages(uint64_t start_index,
                                            FrameCount max);

    /**
     * Allocation-free form of dirtyPages(): fill @p out (cleared
     * first) with up to @p max dirty pages with index >= @p start,
     * in index order. The writeback daemon calls this every tick
     * with a reused buffer, so the steady state allocates nothing.
     * The walk is not charged simulated cost — writeback already
     * pays per-page when it touches frames and submits bios — so
     * batching here cannot move sim-time metrics.
     */
    void collectDirty(uint64_t start_index, FrameCount max,
                      std::vector<PageCachePage *> &out);

    /** Visit every cached page. */
    void forEachPage(const std::function<void(PageCachePage *)> &fn);

    uint64_t pageCount() const { return _tree.size(); }

    uint64_t dirtyCount() const { return _dirtyCount; }

    bool dataBacked() const { return _dataBacked; }

  private:
    void chargeDescent(uint64_t before);
    void onRadixNodeChange(bool created);

    KernelHeap &_heap;
    KlocManager *_kloc;
    uint64_t _inodeId;
    bool _dataBacked;
    Knode *_knode = nullptr;

    RadixTree _tree;
    /** Kernel objects backing interior radix nodes (LIFO pool). */
    std::vector<std::unique_ptr<RadixNodeObj>> _radixNodes;
    uint64_t _dirtyCount = 0;
    /** Reused gang-lookup buffer (collectDirty / forEachPage). */
    std::vector<std::pair<uint64_t, void *>> _gangScratch;
};

} // namespace kloc

#endif // KLOC_FS_PAGE_CACHE_HH
