#include "fs/vfs.hh"

#include "base/ordered.hh"

#include <algorithm>
#include <cstring>

#include "base/logging.hh"

namespace kloc {

FileSystem::FileSystem(KernelHeap &heap, KlocManager *kloc,
                       const Config &config)
    : _heap(heap), _kloc(kloc), _config(config)
{
    _device = std::make_unique<BlockDevice>(heap.mem().machine(),
                                            config.device);
    _blockLayer = std::make_unique<BlockLayer>(heap, kloc, *_device);
    _journal = std::make_unique<Journal>(heap, kloc, *_blockLayer);
}

FileSystem::~FileSystem()
{
    stopDaemons();
    // Tear down every inode: pages off the global LRU, objects
    // untracked and freed, knodes unmapped.
    for (const auto &name : sortedSnapshot(_names)) {
        // Force-close any lingering fds.
        auto it = _names.find(name);
        if (it == _names.end())
            continue;
        InodeInfo *info = infoForId(it->second);
        if (info)
            info->inode->refCount = 0;
        unlink(name);
    }
}

FileSystem::InodeInfo *
FileSystem::infoForFd(int fd)
{
    if (fd < 0 || static_cast<size_t>(fd) >= _fdTable.size())
        return nullptr;
    const uint64_t id = _fdTable[static_cast<size_t>(fd)];
    return id == 0 ? nullptr : infoForId(id);
}

FileSystem::InodeInfo *
FileSystem::infoForId(uint64_t inode_id)
{
    auto it = _inodes.find(inode_id);
    return it == _inodes.end() ? nullptr : &it->second;
}

const FileSystem::InodeInfo *
FileSystem::infoForId(uint64_t inode_id) const
{
    auto it = _inodes.find(inode_id);
    return it == _inodes.end() ? nullptr : &it->second;
}

void
FileSystem::markActive(InodeInfo &info)
{
    if (_kloc && info.knode)
        _kloc->markActive(info.knode);
}

uint64_t
FileSystem::sectorFor(uint64_t inode_id, uint64_t page_index) const
{
    // Unique, per-file-sequential device layout: each inode owns a
    // 16 GiB band of the device address space.
    constexpr uint64_t pages_per_file = 1ULL << 22;
    return (inode_id * pages_per_file + page_index) *
           (kPageSize / BlockDevice::kSectorSize);
}

Dentry *
FileSystem::lookupDentry(const std::string &name)
{
    auto it = _dentryIndex.find(name);
    if (it == _dentryIndex.end())
        return nullptr;
    Dentry *dentry = it->second;
    // dcache hit: hash walk + dentry touch.
    if (dentry->backed())
        _heap.touchObject(*dentry, AccessType::Read);
    _dentryLru.moveToFront(dentry);
    return dentry;
}

Dentry *
FileSystem::insertDentry(const std::string &name, uint64_t inode_id,
                         Knode *knode, bool active)
{
    auto dentry = std::make_unique<Dentry>();
    dentry->inodeId = inode_id;
    dentry->name = name;
    const uint64_t group = knode ? knode->id : 0;
    if (!_heap.allocBacking(*dentry, active, group))
        return nullptr;
    if (_kloc && knode)
        _kloc->addObject(knode, dentry.get());
    _heap.touchObject(*dentry, AccessType::Write);

    Dentry *raw = dentry.release();
    _dentryIndex.emplace(name, raw);
    _dentryLru.pushFront(raw);
    evictDentries();
    return raw;
}

void
FileSystem::evictDentries()
{
    while (_dentryLru.size() > _config.dentryCacheCap) {
        Dentry *victim = _dentryLru.back();
        // Never evict the dentry of a live inode we still index.
        InodeInfo *info = infoForId(victim->inodeId);
        if (info && info->dentry == victim) {
            // Rotate it away and stop; the cache is effectively at
            // capacity with live entries.
            _dentryLru.moveToFront(victim);
            return;
        }
        _dentryLru.remove(victim);
        _dentryIndex.erase(victim->name);
        if (_kloc && victim->knode)
            _kloc->removeObject(victim);
        _heap.freeBacking(*victim);
        delete victim;
    }
}

int
FileSystem::create(const std::string &name)
{
    Machine &machine = _heap.mem().machine();
    machine.cpuWork(kSyscallCost);
    ++_stats.creates;
    if (_names.count(name))
        return -1;

    const uint64_t id = _heap.allocInodeId();
    InodeInfo info;
    info.knode = _kloc ? _kloc->mapKnode(id) : nullptr;

    info.inode = std::make_unique<Inode>(id);
    const uint64_t group = info.knode ? info.knode->id : 0;
    if (!_heap.allocBacking(*info.inode, true, group)) {
        reclaimPages(FrameCount{64});
        if (!_heap.allocBacking(*info.inode, true, group))
            fatal("out of simulated memory allocating inode");
    }
    if (_kloc && info.knode)
        _kloc->addObject(info.knode, info.inode.get());
    _heap.touchObject(*info.inode, AccessType::Write);

    info.cache = std::make_unique<PageCache>(_heap, _kloc, id,
                                             _config.dataBacked);
    info.cache->setKnode(info.knode);
    info.dentry = insertDentry(name, id, info.knode, true);
    info.inode->refCount = 1;

    _journal->logMetadata(info.knode, true, id, Bytes{256});
    _names.emplace(name, id);
    auto [it, inserted] = _inodes.emplace(id, std::move(info));
    KLOC_ASSERT(inserted, "inode id collision");
    markActive(it->second);

    int fd;
    if (!_freeFds.empty()) {
        fd = _freeFds.back();
        _freeFds.pop_back();
        _fdTable[static_cast<size_t>(fd)] = id;
    } else {
        fd = static_cast<int>(_fdTable.size());
        _fdTable.push_back(id);
    }
    return fd;
}

int
FileSystem::open(const std::string &name)
{
    Machine &machine = _heap.mem().machine();
    machine.cpuWork(kSyscallCost);
    ++_stats.opens;
    auto it = _names.find(name);
    if (it == _names.end())
        return -1;
    InodeInfo *info = infoForId(it->second);
    KLOC_ASSERT(info != nullptr, "name table out of sync");

    Dentry *dentry = lookupDentry(name);
    if (!dentry) {
        // dcache miss: re-read the directory entry.
        DirBuffer dir_buf;
        const uint64_t group = info->knode ? info->knode->id : 0;
        if (_heap.allocBacking(dir_buf, true, group)) {
            if (_kloc && info->knode)
                _kloc->addObject(info->knode, &dir_buf);
            _heap.touchObject(dir_buf, AccessType::Read);
            if (_kloc && dir_buf.knode)
                _kloc->removeObject(&dir_buf);
            _heap.freeBacking(dir_buf);
        }
        info->dentry = insertDentry(name, it->second, info->knode,
                                    true);
    }

    _heap.touchObject(*info->inode, AccessType::Read);
    ++info->inode->refCount;
    markActive(*info);

    int fd;
    if (!_freeFds.empty()) {
        fd = _freeFds.back();
        _freeFds.pop_back();
        _fdTable[static_cast<size_t>(fd)] = it->second;
    } else {
        fd = static_cast<int>(_fdTable.size());
        _fdTable.push_back(it->second);
    }
    return fd;
}

void
FileSystem::close(int fd)
{
    Machine &machine = _heap.mem().machine();
    machine.cpuWork(kSyscallCost);
    ++_stats.closes;
    InodeInfo *info = infoForFd(fd);
    if (!info)
        return;
    _fdTable[static_cast<size_t>(fd)] = 0;
    _freeFds.push_back(fd);

    KLOC_ASSERT(info->inode->refCount > 0, "close underflow");
    --info->inode->refCount;
    if (info->inode->refCount == 0 && _kloc && info->knode) {
        // Last descriptor gone: the whole KLOC is now cold (§3.2).
        _kloc->markInactive(info->knode);
    }
}

void
FileSystem::touchGlobalLru(PageCachePage *page)
{
    if (page->globalLruHook.linked())
        _globalLru.moveToFront(page);
    else
        _globalLru.pushFront(page);
}

void
FileSystem::dropFromGlobalLru(PageCachePage *page)
{
    if (page->globalLruHook.linked())
        _globalLru.remove(page);
}

void
FileSystem::ensureExtents(InodeInfo &info, uint64_t last_page)
{
    const uint64_t needed = last_page / kPagesPerExtent + 1;
    const uint64_t group = info.knode ? info.knode->id : 0;
    while (info.extents.size() < needed) {
        auto extent = std::make_unique<Extent>();
        extent->firstBlock = info.extents.size() * kPagesPerExtent;
        extent->blockCount = kPagesPerExtent;
        if (!_heap.allocBacking(*extent, true, group))
            break;
        if (_kloc && info.knode)
            _kloc->addObject(info.knode, extent.get());
        _heap.touchObject(*extent, AccessType::Write);
        _journal->logMetadata(info.knode, true, info.inode->inodeId, Bytes{64});
        info.extents.push_back(std::move(extent));
    }
}

void
FileSystem::chargeExtentLookup(InodeInfo &info, uint64_t page_index)
{
    const uint64_t idx = page_index / kPagesPerExtent;
    if (idx < info.extents.size() && info.extents[idx]->backed())
        _heap.touchObject(*info.extents[idx], AccessType::Read);
}

PageCachePage *
FileSystem::getOrAllocPage(InodeInfo &info, uint64_t index, bool)
{
    PageCachePage *page = info.cache->find(index);
    if (page)
        return page;
    const bool active = info.knode ? info.knode->inuse : true;
    page = info.cache->insertNew(index, active);
    if (!page) {
        // Memory pressure: reclaim cold cache pages and retry once.
        reclaimPages(FrameCount{64});
        page = info.cache->insertNew(index, active);
    }
    if (page)
        touchGlobalLru(page);
    return page;
}

Bytes
FileSystem::write(int fd, Bytes offset, Bytes length, const char *buf)
{
    Machine &machine = _heap.mem().machine();
    machine.cpuWork(kSyscallCost);
    InodeInfo *info = infoForFd(fd);
    if (!info || length == 0)
        return Bytes{};
    ++_stats.writes;
    markActive(*info);
    _heap.touchObject(*info->inode, AccessType::Write);

    const uint64_t first_page = offset >> kPageShift;
    const uint64_t last_page = (offset + length - 1) >> kPageShift;
    ensureExtents(*info, last_page);

    Bytes written{};
    for (uint64_t index = first_page; index <= last_page; ++index) {
        const Bytes page_start{index << kPageShift};
        const Bytes start = std::max(offset, page_start);
        const Bytes end =
            std::min(offset + length, page_start + kPageSize);
        const Bytes chunk = end - start;

        PageCachePage *page = getOrAllocPage(*info, index, true);
        if (!page) {
            // Even reclaim failed: write through to the device.
            ++_stats.cacheBypasses;
            _blockLayer->submit(info->knode,
                                info->knode && info->knode->inuse,
                                sectorFor(info->inode->inodeId, index),
                                kPageSize, true, false);
            written += chunk;
            continue;
        }
        _heap.mem().touch(page->frame(), chunk, AccessType::Write);
        if (_kloc && info->knode)
            _kloc->maybePromoteOnTouch(page->frame(), info->knode);
        if (_config.dataBacked && buf && page->data) {
            std::memcpy(page->data.get() + (start - page_start),
                        buf + written, chunk);
        }
        page->uptodate = true;
        info->cache->markDirty(page);
        touchGlobalLru(page);
        written += chunk;
    }

    if (info->cache->dirtyCount() > 0 && !info->onDirtyList) {
        _dirtyInodes.insert(info->inode->inodeId);
        info->onDirtyList = true;
    }
    _journal->logMetadata(info->knode, true, info->inode->inodeId,
                          kMetaPerPage * (last_page - first_page + 1));
    info->inode->fileSize = std::max(info->inode->fileSize,
                                     offset + length);
    return written;
}

Bytes
FileSystem::read(int fd, Bytes offset, Bytes length, char *buf)
{
    Machine &machine = _heap.mem().machine();
    machine.cpuWork(kSyscallCost);
    InodeInfo *info = infoForFd(fd);
    if (!info || length == 0)
        return Bytes{};
    if (offset >= info->inode->fileSize)
        return Bytes{};
    length = std::min(length, info->inode->fileSize - offset);
    ++_stats.reads;
    markActive(*info);
    _heap.touchObject(*info->inode, AccessType::Read);

    const uint64_t first_page = offset >> kPageShift;
    const uint64_t last_page = (offset + length - 1) >> kPageShift;

    Bytes read_bytes{};
    for (uint64_t index = first_page; index <= last_page; ++index) {
        const Bytes page_start{index << kPageShift};
        const Bytes start = std::max(offset, page_start);
        const Bytes end =
            std::min(offset + length, page_start + kPageSize);
        const Bytes chunk = end - start;

        PageCachePage *page = info->cache->find(index);
        if (page && page->uptodate) {
            ++_stats.readPageHits;
        } else {
            ++_stats.readPageMisses;
            if (!page) {
                const bool active =
                    info->knode ? info->knode->inuse : true;
                page = info->cache->insertNew(index, active);
                if (!page) {
                    reclaimPages(FrameCount{64});
                    page = info->cache->insertNew(index, active);
                }
            }
            // Cold read from the device through the extent map.
            chargeExtentLookup(*info, index);
            const IoStatus status =
                _blockLayer->submit(info->knode,
                                    info->knode && info->knode->inuse,
                                    sectorFor(info->inode->inodeId,
                                              index),
                                    kPageSize, false, true);
            if (status != IoStatus::Ok)
                ++_stats.readErrors;
            if (!page) {
                ++_stats.cacheBypasses;
                read_bytes += chunk;
                continue;
            }
            // A failed read leaves the page !uptodate: the next read
            // of this index misses again and retries the device.
            page->uptodate = status == IoStatus::Ok;
        }
        _heap.mem().touch(page->frame(), chunk, AccessType::Read);
        if (_kloc && info->knode)
            _kloc->maybePromoteOnTouch(page->frame(), info->knode);
        if (_config.dataBacked && buf && page->data) {
            std::memcpy(buf + read_bytes,
                        page->data.get() + (start - page_start), chunk);
        }
        touchGlobalLru(page);
        read_bytes += chunk;
    }

    // Sequential-stream detection feeds the readahead engine.
    if (_config.readaheadEnabled && first_page == info->lastReadIndex + 1)
        issueReadahead(*info, last_page + 1);
    info->lastReadIndex = last_page;
    return read_bytes;
}

void
FileSystem::issueReadahead(InodeInfo &info, uint64_t next_index)
{
    const uint64_t file_pages =
        (info.inode->fileSize + kPageSize - 1) >> kPageShift;
    const bool active = info.knode ? info.knode->inuse : true;
    for (unsigned i = 0; i < _config.readaheadPages; ++i) {
        const uint64_t index = next_index + i;
        if (index >= file_pages)
            break;
        if (info.cache->find(index))
            continue;
        PageCachePage *page = info.cache->insertNew(index, active);
        if (!page)
            break;  // no memory: stop prefetching
        touchGlobalLru(page);
        const IoStatus status =
            _blockLayer->submit(info.knode, active,
                                sectorFor(info.inode->inodeId, index),
                                kPageSize, false, /*foreground=*/false);
        // A failed prefetch leaves the page !uptodate; a later real
        // read of it misses and retries as a foreground read.
        page->uptodate = status == IoStatus::Ok;
        ++_stats.readaheadPages;
    }
}

uint64_t
FileSystem::writebackInode(InodeInfo &info, FrameCount max_pages,
                           bool foreground)
{
    // Coalesce contiguous dirty pages into large bios, like the
    // writeback code building multi-page requests — the device sees
    // sequential bandwidth, not per-page latency. The walk batches
    // through the radix tree's tagged gang lookup into a per-depth
    // scratch buffer: one tree walk per batch instead of per-page
    // descents, and no allocation once the buffers have grown.
    if (_writebackDepth == _writebackScratch.size()) {
        // klint:allow(hot-path-alloc): amortised, one buffer per depth, reused forever.
        _writebackScratch.push_back(
            std::make_unique<std::vector<PageCachePage *>>());
    }
    std::vector<PageCachePage *> &dirty =
        *_writebackScratch[_writebackDepth];
    ++_writebackDepth;
    info.cache->collectDirty(0, max_pages, dirty);
    uint64_t written = 0;
    size_t i = 0;
    while (i < dirty.size()) {
        size_t run = 1;
        while (i + run < dirty.size() &&
               dirty[i + run]->pageIndex ==
                   dirty[i]->pageIndex + run &&
               run < 128) {
            ++run;
        }
        // Clear dirty before submitting (like PG_dirty) so a
        // re-entrant writeback triggered by the device charge does
        // not pick the same run up again.
        for (size_t j = i; j < i + run; ++j) {
            // klint:allow(reentrancy-hazard): a re-entrant writeback runs one depth deeper and owns a distinct _writebackScratch buffer, so this depth's indexes stay valid
            _heap.mem().touch(dirty[j]->frame(), kPageSize,
                              AccessType::Read);
            info.cache->clearDirty(dirty[j]);
        }
        const IoStatus status =
            _blockLayer->submit(info.knode,
                                info.knode && info.knode->inuse,
                                sectorFor(info.inode->inodeId,
                                          dirty[i]->pageIndex),
                                run * kPageSize, true, foreground);
        if (status == IoStatus::Ok) {
            _stats.writebackPages += run;
            written += run;
        } else {
            // The run never reached the device even after the block
            // layer's retries: the pages are still dirty data. Redirty
            // them so nothing is lost and a later pass tries again.
            ++_stats.writebackErrors;
            for (size_t j = i; j < i + run; ++j)
                info.cache->markDirty(dirty[j]);
        }
        i += run;
    }
    if (info.cache->dirtyCount() == 0 && info.onDirtyList) {
        _dirtyInodes.erase(info.inode->inodeId);
        info.onDirtyList = false;
    }
    --_writebackDepth;
    return written;
}

void
FileSystem::fsync(int fd)
{
    Machine &machine = _heap.mem().machine();
    machine.cpuWork(kSyscallCost);
    InodeInfo *info = infoForFd(fd);
    if (!info)
        return;
    markActive(*info);
    // Bounded by progress: a device that keeps failing leaves the
    // pages dirty, and looping on them forever would hang the sim.
    while (info->cache->dirtyCount() > 0) {
        if (writebackInode(*info, _config.writebackBatch, true) == 0)
            break;
    }
    _journal->commit(/*foreground=*/true);
}

bool
FileSystem::truncate(int fd, Bytes length)
{
    Machine &machine = _heap.mem().machine();
    machine.cpuWork(kSyscallCost);
    InodeInfo *info = infoForFd(fd);
    if (!info)
        return false;
    markActive(*info);
    _heap.touchObject(*info->inode, AccessType::Write);

    if (length < info->inode->fileSize) {
        // Shrink: pages and extents past the new end are freed
        // (truncation deallocates, like unlink for the tail, §3.2).
        const uint64_t keep_pages = pagesFor(length);
        std::vector<PageCachePage *> doomed;
        info->cache->forEachPage([&](PageCachePage *page) {
            if (page->pageIndex >= keep_pages)
                doomed.push_back(page);
        });
        for (PageCachePage *page : doomed) {
            dropFromGlobalLru(page);
            info->cache->removeAndFree(page);
        }
        const uint64_t keep_extents =
            keep_pages == 0 ? 0
                            : (keep_pages - 1) / kPagesPerExtent + 1;
        while (info->extents.size() > keep_extents) {
            auto &extent = info->extents.back();
            if (extent->backed()) {
                if (_kloc && extent->knode)
                    _kloc->removeObject(extent.get());
                _heap.freeBacking(*extent);
            }
            info->extents.pop_back();
        }
        if (info->cache->dirtyCount() == 0 && info->onDirtyList) {
            _dirtyInodes.erase(info->inode->inodeId);
            info->onDirtyList = false;
        }
    }
    _journal->logMetadata(info->knode, true, info->inode->inodeId, Bytes{128});
    info->inode->fileSize = length;
    return true;
}

bool
FileSystem::unlink(const std::string &name)
{
    Machine &machine = _heap.mem().machine();
    machine.cpuWork(kSyscallCost);
    ++_stats.unlinks;
    auto it = _names.find(name);
    if (it == _names.end())
        return false;
    const uint64_t id = it->second;
    InodeInfo *info = infoForId(id);
    KLOC_ASSERT(info != nullptr, "name table out of sync");
    if (info->inode->refCount > 0)
        return false;  // still open

    _journal->logMetadata(info->knode, false, id, Bytes{256});
    _names.erase(it);
    destroyInode(id);
    return true;
}

void
FileSystem::destroyInode(uint64_t inode_id)
{
    InodeInfo *info = infoForId(inode_id);
    KLOC_ASSERT(info != nullptr, "destroying unknown inode");

    // Deleted files' objects are deallocated, never migrated (§3.2).
    if (info->dentry) {
        Dentry *dentry = info->dentry;
        _dentryLru.remove(dentry);
        _dentryIndex.erase(dentry->name);
        if (_kloc && dentry->knode)
            _kloc->removeObject(dentry);
        _heap.freeBacking(*dentry);
        delete dentry;
        info->dentry = nullptr;
    }

    for (auto &extent : info->extents) {
        if (!extent->backed())
            continue;
        if (_kloc && extent->knode)
            _kloc->removeObject(extent.get());
        _heap.freeBacking(*extent);
    }
    info->extents.clear();

    // Pages leave the global LRU before the cache frees them.
    info->cache->forEachPage(
        [this](PageCachePage *page) { dropFromGlobalLru(page); });
    if (info->onDirtyList)
        _dirtyInodes.erase(inode_id);
    info->cache.reset();

    // In-flight journal records for this inode lose their knode.
    _journal->detachInode(inode_id);

    if (_kloc && info->inode->knode)
        _kloc->removeObject(info->inode.get());
    _heap.freeBacking(*info->inode);

    if (_kloc && info->knode)
        _kloc->unmapKnode(info->knode);

    _inodes.erase(inode_id);
}

void
FileSystem::writebackTick()
{
    if (!_daemonsRunning)
        return;
    // Snapshot (writebackInode mutates _dirtyInodes), sorted so
    // writeback order never depends on hash-table layout.
    const std::vector<uint64_t> ids = sortedSnapshot(_dirtyInodes);
    for (const uint64_t id : ids) {
        InodeInfo *info = infoForId(id);
        if (info)
            writebackInode(*info, _config.writebackBatch, false);
    }
    Machine &machine = _heap.mem().machine();
    machine.events().schedule(
        machine.now() + _config.writebackPeriod,
        [this, weak = std::weak_ptr<int>(_alive)] {
            if (!weak.expired())
                writebackTick();
        });
}

void
FileSystem::startDaemons()
{
    if (_daemonsRunning)
        return;
    _daemonsRunning = true;
    Machine &machine = _heap.mem().machine();
    machine.events().schedule(
        machine.now() + _config.writebackPeriod,
        [this, weak = std::weak_ptr<int>(_alive)] {
            if (!weak.expired())
                writebackTick();
        });
    _journal->startCommitTimer(_config.journalCommitPeriod);
}

void
FileSystem::stopDaemons()
{
    _daemonsRunning = false;
    _journal->stopCommitTimer();
}

void
FileSystem::syncAll()
{
    const std::vector<uint64_t> ids = sortedSnapshot(_dirtyInodes);
    for (const uint64_t id : ids) {
        InodeInfo *info = infoForId(id);
        if (!info)
            continue;
        // Progress-bounded for the same reason as fsync().
        while (info->cache->dirtyCount() > 0) {
            if (writebackInode(*info, _config.writebackBatch, true) == 0)
                break;
        }
    }
    _journal->commit(true);
}

PageCachePage *
FileSystem::pageForFrame(const Frame *frame)
{
    // Every cached page sits on the global LRU; a linear walk is
    // fine here because callers only arrive on the rare hwpoison
    // containment path, never per-access.
    for (PageCachePage *page : _globalLru) {
        if (page->frame() == frame)
            return page;
    }
    return nullptr;
}

bool
FileSystem::canRereadFrame(Frame *frame)
{
    if (frame->objClass != ObjClass::PageCache || frame->dirty)
        return false;
    PageCachePage *page = pageForFrame(frame);
    return page != nullptr && page->uptodate && !page->dirty;
}

bool
FileSystem::rereadFrame(Frame *frame)
{
    PageCachePage *page = pageForFrame(frame);
    if (page == nullptr || page->dirty)
        return false;
    InodeInfo *info = infoForId(page->inodeId);
    if (info == nullptr)
        return false;
    ++_stats.poisonRereads;
    const IoStatus status = _blockLayer->submit(
        info->knode, info->knode != nullptr && info->knode->inuse,
        sectorFor(page->inodeId, page->pageIndex), kPageSize,
        false, true);
    if (status != IoStatus::Ok) {
        // The page survives as a mapping but its contents are gone.
        page->uptodate = false;
        ++_stats.readErrors;
        return false;
    }
    page->uptodate = true;
    return true;
}

FrameCount
FileSystem::reclaimPages(FrameCount target)
{
    Machine &machine = _heap.mem().machine();
    uint64_t freed = 0;
    uint64_t examined = 0;
    const uint64_t max_examine = target * 4 + 32;
    while (freed < target && examined < max_examine &&
           !_globalLru.empty()) {
        PageCachePage *page = _globalLru.back();
        ++examined;
        machine.cpuWork(Tick{200});
        if (page->dirty) {
            // Write it back, then it becomes reclaimable; rotate so
            // we make progress meanwhile.
            PageCache *cache = page->owner;
            _heap.mem().touch(page->frame(), kPageSize,
                              AccessType::Read);
            const IoStatus status =
                _blockLayer->submit(cache->knode(), false,
                                    sectorFor(page->inodeId,
                                              page->pageIndex),
                                    kPageSize, true, false);
            if (status == IoStatus::Ok) {
                cache->clearDirty(page);
                ++_stats.writebackPages;
            } else {
                // Still dirty: not reclaimable. Rotate it away so the
                // scan moves on instead of spinning on this page.
                ++_stats.writebackErrors;
            }
            _globalLru.moveToFront(page);
            continue;
        }
        dropFromGlobalLru(page);
        PageCache *cache = page->owner;
        freed += 1;
        cache->removeAndFree(page);
        ++_stats.reclaimedPages;
    }
    return FrameCount{freed};
}

FrameCount
FileSystem::reclaimTierPages(TierId tier, FrameCount target)
{
    Machine &machine = _heap.mem().machine();
    uint64_t freed = 0;
    uint64_t examined = 0;
    const uint64_t max_examine = target * 8 + 64;
    PageCachePage *page = _globalLru.back();
    while (page && freed < target && examined < max_examine) {
        PageCachePage *next = _globalLru.prev(page);
        ++examined;
        machine.cpuWork(Tick{200});
        if (!page->dirty && page->frame() &&
            page->frame()->tier == tier) {
            dropFromGlobalLru(page);
            page->owner->removeAndFree(page);
            ++freed;
            ++_stats.reclaimedPages;
        }
        page = next;
    }
    return FrameCount{freed};
}

bool
FileSystem::exists(const std::string &name) const
{
    return _names.count(name) != 0;
}

std::vector<std::string>
FileSystem::readdir()
{
    Machine &machine = _heap.mem().machine();
    machine.cpuWork(kSyscallCost);
    std::vector<std::string> names;
    names.reserve(_names.size());
    size_t in_buffer = 0;
    std::unique_ptr<DirBuffer> dir_buf;
    for (const std::string &name : sortedSnapshot(_names)) {
        if (in_buffer == 0) {
            // Fill a fresh dirent buffer (getdents chunking).
            if (dir_buf) {
                if (_kloc && dir_buf->knode)
                    _kloc->removeObject(dir_buf.get());
                _heap.freeBacking(*dir_buf);
            }
            dir_buf = std::make_unique<DirBuffer>();
            if (_heap.allocBacking(*dir_buf, true, 0))
                _heap.touchObject(*dir_buf, AccessType::Write);
        }
        // Copy one dirent into the buffer.
        if (dir_buf->backed())
            _heap.touchObject(*dir_buf, AccessType::Write);
        names.push_back(name);
        in_buffer = (in_buffer + 1) % 64;
    }
    if (dir_buf && dir_buf->backed()) {
        if (_kloc && dir_buf->knode)
            _kloc->removeObject(dir_buf.get());
        _heap.freeBacking(*dir_buf);
    }
    return names;
}

Bytes
FileSystem::fileSize(const std::string &name) const
{
    auto it = _names.find(name);
    if (it == _names.end())
        return Bytes{};
    const InodeInfo *info = infoForId(it->second);
    return info ? info->inode->fileSize : Bytes{};
}

Knode *
FileSystem::knodeOf(const std::string &name) const
{
    auto it = _names.find(name);
    if (it == _names.end())
        return nullptr;
    const InodeInfo *info = infoForId(it->second);
    return info ? info->knode : nullptr;
}

} // namespace kloc
