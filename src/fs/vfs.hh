/**
 * @file
 * The virtual filesystem: syscall surface (create/open/close/read/
 * write/fsync/unlink), dentry cache, per-inode page caches, extent
 * maps, journalling, readahead, writeback, and page reclaim.
 *
 * This is the substrate most of the paper's kernel objects come
 * from. Every syscall marks the inode's KLOC active; close marks it
 * inactive; unlink deallocates (never migrates) its objects — the
 * three §3.2 lifecycle rules.
 */

#ifndef KLOC_FS_VFS_HH
#define KLOC_FS_VFS_HH

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/kloc_manager.hh"
#include "fs/block_layer.hh"
#include "fs/device.hh"
#include "fs/journal.hh"
#include "fs/page_cache.hh"
#include "kobj/kernel_heap.hh"

namespace kloc {

/** Counters the experiments read off the filesystem. */
struct FsStats
{
    uint64_t creates = 0;
    uint64_t opens = 0;
    uint64_t closes = 0;
    uint64_t unlinks = 0;
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t readPageHits = 0;
    uint64_t readPageMisses = 0;
    uint64_t readaheadPages = 0;
    uint64_t reclaimedPages = 0;
    uint64_t writebackPages = 0;
    uint64_t cacheBypasses = 0;   ///< allocation failed even after reclaim
    uint64_t readErrors = 0;      ///< reads whose device I/O never succeeded
    uint64_t writebackErrors = 0; ///< writeback runs abandoned after retries
    uint64_t poisonRereads = 0;   ///< hwpoison recovery reads issued
};

/** The simulated filesystem. */
class FileSystem
{
  public:
    struct Config
    {
        bool dataBacked = false;
        Tick journalCommitPeriod = 50 * kMillisecond;
        Tick writebackPeriod = 10 * kMillisecond;
        FrameCount writebackBatch{1024};
        unsigned readaheadPages = 8;
        bool readaheadEnabled = true;
        unsigned dentryCacheCap = 4096;
        BlockDevice::Config device;
    };

    /** CPU cost of entering/leaving a filesystem system call. */
    static constexpr Tick kSyscallCost{200};
    /** File pages covered by one extent descriptor (2 MiB). */
    static constexpr uint64_t kPagesPerExtent = 512;
    /** Metadata bytes journalled per dirtied page. */
    static constexpr Bytes kMetaPerPage{128};

    FileSystem(KernelHeap &heap, KlocManager *kloc, const Config &config);
    ~FileSystem();

    FileSystem(const FileSystem &) = delete;
    FileSystem &operator=(const FileSystem &) = delete;

    // -- syscall surface ----------------------------------------------------

    /** Create and open a new file; returns fd or -1 if it exists. */
    int create(const std::string &name);

    /** Open an existing file; returns fd or -1 when absent. */
    int open(const std::string &name);

    /** Close @p fd; the inode's KLOC goes inactive at refcount 0. */
    void close(int fd);

    /**
     * Read @p length bytes at @p offset. Misses hit the device.
     * @param buf destination in data-backed mode (else ignored).
     * @return bytes read (clamped to file size).
     */
    Bytes read(int fd, Bytes offset, Bytes length, char *buf = nullptr);

    /**
     * Write @p length bytes at @p offset through the page cache,
     * journalling metadata and growing the extent map.
     */
    Bytes write(int fd, Bytes offset, Bytes length,
                const char *buf = nullptr);

    /** Flush the file's dirty pages and commit the journal. */
    void fsync(int fd);

    /**
     * ftruncate(): set the file length to @p length. Shrinking frees
     * (deallocates) cache pages and extent descriptors beyond the
     * new end; growing just extends the size (sparse).
     */
    bool truncate(int fd, Bytes length);

    /** Delete a closed file; frees (never migrates) its objects. */
    bool unlink(const std::string &name);

    bool exists(const std::string &name) const;

    /**
     * readdir(): enumerate every file name, allocating short-lived
     * directory buffers (one DirBuffer kernel object per 64 entries)
     * like getdents filling dirent pages.
     */
    std::vector<std::string> readdir();

    /** Flush all dirty state (umount-style). */
    void syncAll();

    // -- daemons ------------------------------------------------------------

    /** Start periodic writeback and journal commit. */
    void startDaemons();

    void stopDaemons();

    // -- hwpoison recovery --------------------------------------------------

    /**
     * Poison-recovery probe: can @p frame's bytes be rebuilt from
     * backing storage? True only for clean, up-to-date page-cache
     * pages owned by this filesystem. The MigrationEngine consults
     * this (via System's reread hook) before choosing the re-read
     * containment leg.
     */
    bool canRereadFrame(Frame *frame);

    /**
     * Re-read the page backing @p frame from the device through the
     * normal block-layer retry path (foreground). @return true when
     * the device read ultimately succeeded.
     */
    bool rereadFrame(Frame *frame);

    // -- memory pressure ----------------------------------------------------

    /**
     * Free up to @p target clean page-cache pages from the cold end
     * of the global list (dirty ones are written back first).
     * @return pages actually freed.
     */
    FrameCount reclaimPages(FrameCount target);

    /**
     * kswapd-style per-tier reclaim: free up to @p target clean
     * page-cache pages resident on @p tier, coldest first. Dirty
     * pages are skipped (the writeback daemon handles them).
     * @return pages freed.
     */
    FrameCount reclaimTierPages(TierId tier, FrameCount target);

    // -- introspection ------------------------------------------------------

    const FsStats &stats() const { return _stats; }

    Bytes fileSize(const std::string &name) const;

    /** Total pages currently in all page caches. */
    uint64_t cachedPages() const { return _globalLru.size(); }

    uint64_t liveInodes() const { return _inodes.size(); }

    Journal &journal() { return *_journal; }
    BlockLayer &blockLayer() { return *_blockLayer; }
    BlockDevice &device() { return *_device; }
    KernelHeap &heap() { return _heap; }

    /** Knode of @p name's inode (nullptr when KLOC off / absent). */
    Knode *knodeOf(const std::string &name) const;

  private:
    struct InodeInfo
    {
        std::unique_ptr<Inode> inode;
        std::unique_ptr<PageCache> cache;
        std::vector<std::unique_ptr<Extent>> extents;
        Dentry *dentry = nullptr;   ///< owned by the dentry cache
        Knode *knode = nullptr;
        uint64_t lastReadIndex = ~0ULL;
        bool onDirtyList = false;
    };

    InodeInfo *infoForFd(int fd);
    PageCachePage *pageForFrame(const Frame *frame);
    InodeInfo *infoForId(uint64_t inode_id);
    const InodeInfo *infoForId(uint64_t inode_id) const;
    void markActive(InodeInfo &info);
    uint64_t sectorFor(uint64_t inode_id, uint64_t page_index) const;
    PageCachePage *getOrAllocPage(InodeInfo &info, uint64_t index,
                                  bool for_write);
    void touchGlobalLru(PageCachePage *page);
    void dropFromGlobalLru(PageCachePage *page);
    void ensureExtents(InodeInfo &info, uint64_t last_page);
    void chargeExtentLookup(InodeInfo &info, uint64_t page_index);
    void issueReadahead(InodeInfo &info, uint64_t next_index);
    /** @return pages successfully written back (failed runs stay
     *  dirty, so callers can detect lack of progress). */
    uint64_t writebackInode(InodeInfo &info, FrameCount max_pages,
                            bool foreground);
    void writebackTick();
    Dentry *lookupDentry(const std::string &name);
    Dentry *insertDentry(const std::string &name, uint64_t inode_id,
                         Knode *knode, bool active);
    void evictDentries();
    void destroyInode(uint64_t inode_id);

    KernelHeap &_heap;
    KlocManager *_kloc;
    Config _config;

    std::unique_ptr<BlockDevice> _device;
    std::unique_ptr<BlockLayer> _blockLayer;
    std::unique_ptr<Journal> _journal;

    std::unordered_map<std::string, uint64_t> _names;
    std::unordered_map<uint64_t, InodeInfo> _inodes;

    /** Dentry LRU cache. */
    IntrusiveList<Dentry, &Dentry::dcacheHook> _dentryLru;
    std::unordered_map<std::string, Dentry *> _dentryIndex;

    /** fd table. */
    std::vector<uint64_t> _fdTable;   // fd -> inode id (0 = free)
    std::vector<int> _freeFds;

    /** Global page LRU for reclaim. */
    IntrusiveList<PageCachePage, &PageCachePage::globalLruHook> _globalLru;

    /** Inodes with dirty pages. */
    std::unordered_set<uint64_t> _dirtyInodes;

    /**
     * Depth-indexed scratch buffers for writebackInode's dirty-page
     * gang walk. Writeback can re-enter (a device charge can dispatch
     * the writeback daemon's tick), so each nesting level owns a
     * stable buffer; the unique_ptr indirection keeps outer levels'
     * references valid when a deeper level grows the pool. Steady
     * state allocates nothing.
     */
    std::vector<std::unique_ptr<std::vector<PageCachePage *>>>
        _writebackScratch;
    unsigned _writebackDepth = 0;

    bool _daemonsRunning = false;
    /** Liveness token for the writeback-tick lambdas. */
    std::shared_ptr<int> _alive = std::make_shared<int>(0);
    FsStats _stats;
};

} // namespace kloc

#endif // KLOC_FS_VFS_HH
