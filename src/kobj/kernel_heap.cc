#include "kobj/kernel_heap.hh"

#include "base/logging.hh"

namespace kloc {

KernelHeap::KernelHeap(MemAccessor &mem, TierManager &tiers)
    : _mem(mem), _tiers(tiers)
{
    for (unsigned i = 0; i < kNumKobjKinds; ++i) {
        const auto kind = static_cast<KobjKind>(i);
        if (!kobjIsSlab(kind))
            continue;
        _caches[i] = std::make_unique<KmemCache>(
            _mem, _tiers, std::string(kobjKindName(kind)) + "_cache",
            kobjSize(kind), kobjClass(kind));
    }
}

void
KernelHeap::setKlocInterface(bool enabled)
{
    _klocInterface = enabled;
    for (auto &cache : _caches) {
        if (cache)
            cache->setKlocMode(enabled);
    }
}

KmemCache &
KernelHeap::cache(KobjKind kind)
{
    auto &ptr = _caches[static_cast<unsigned>(kind)];
    KLOC_ASSERT(ptr != nullptr, "kind %s is not slab-backed",
                kobjKindName(kind));
    return *ptr;
}

void
KernelHeap::maybeKswapd(const TierPreference &pref, bool hot)
{
    if (!_reclaim || !hot || pref.size() < 2)
        return;
    if (_reclaimBackoff > 0) {
        --_reclaimBackoff;
        return;
    }
    Tier &preferred = _tiers.tier(pref.front());
    if (preferred.freePages() >= kKswapdLowWater)
        return;
    if (_reclaim(pref.front(), kKswapdBatch) == 0) {
        // Nothing evictable: back off so full tiers don't pay a
        // fruitless LRU walk on every allocation.
        _reclaimBackoff = 64;
    }
}

bool
KernelHeap::allocBacking(KernelObject &obj, bool knode_active,
                         uint64_t group_key)
{
    KLOC_ASSERT(_policy != nullptr, "KernelHeap used without a policy");
    KLOC_ASSERT(!obj.backed(), "double allocation of %s",
                kobjKindName(obj.kind));

    const auto pref =
        _policy->kernelPreference(kobjClass(obj.kind), knode_active);
    maybeKswapd(pref, knode_active);
    obj.allocTick = _mem.machine().now();

    if (kobjIsSlab(obj.kind)) {
        obj.slab = cache(obj.kind).alloc(
            pref, _klocInterface ? group_key : 0);
        return obj.slab.valid();
    }

    // Page-backed kinds. Page-cache and journal pages are always
    // relocatable (they are virtually mapped); packet data buffers
    // and rx rings are physically referenced and become relocatable
    // only through the KLOC interface.
    const bool relocatable =
        obj.kind == KobjKind::PageCachePage ||
        obj.kind == KobjKind::JournalPage || _klocInterface;
    obj.page = _tiers.alloc(0, kobjClass(obj.kind), relocatable, pref);
    if (!obj.page)
        return false;
    obj.page->owner = nullptr;
    // Page allocator path cost.
    _mem.machine().cpuWork(KmemCache::kSlowPathCost);
    return true;
}

void
KernelHeap::freeBacking(KernelObject &obj)
{
    if (obj.backed()) {
        _objLifetimes[static_cast<unsigned>(obj.kind)].sample(
            static_cast<uint64_t>(_mem.machine().now() - obj.allocTick));
    }
    if (obj.slab.valid()) {
        obj.slab.cache->free(obj.slab);
    } else if (obj.page) {
        _tiers.free(obj.page);
        obj.page = nullptr;
        _mem.machine().cpuWork(KmemCache::kSlowPathCost);
    }
}

Frame *
KernelHeap::allocAppPage()
{
    return allocAppPages(0);
}

Frame *
KernelHeap::allocAppPages(unsigned order)
{
    KLOC_ASSERT(_policy != nullptr, "KernelHeap used without a policy");
    const auto pref = _policy->appPreference();
    maybeKswapd(pref, true);
    Frame *frame = _tiers.alloc(order, ObjClass::App, true, pref);
    if (frame) {
        _liveAppPages += frame->pages();
        _cumAppPages += frame->pages();
    }
    return frame;
}

void
KernelHeap::freeAppPage(Frame *frame)
{
    KLOC_ASSERT(frame->objClass == ObjClass::App, "not an app page");
    KLOC_ASSERT(_liveAppPages >= frame->pages(),
                "app page accounting underflow");
    _liveAppPages -= frame->pages();
    _tiers.free(frame);
}

} // namespace kloc
