/**
 * @file
 * KernelHeap: the allocation facade every kernel subsystem uses.
 *
 * In a stock kernel each of the 400+ allocation sites calls
 * kmem_cache_alloc / alloc_page directly; the paper redirects them to
 * the KLOC allocation interface (§4.4). Here all sites already funnel
 * through this facade, and setKlocInterface() flips them between
 * stock behaviour (slab objects non-relocatable, unsorted) and the
 * KLOC interface (relocatable, grouped by knode).
 *
 * Placement consults the active PlacementPolicy, which is how the
 * Table 5 strategies differ at allocation time.
 */

#ifndef KLOC_KOBJ_KERNEL_HEAP_HH
#define KLOC_KOBJ_KERNEL_HEAP_HH

#include <array>
#include <functional>
#include <memory>

#include "alloc/slab.hh"
#include "base/stats.hh"
#include "kobj/kobject.hh"
#include "mem/accessor.hh"
#include "mem/placement.hh"
#include "mem/tier_manager.hh"

namespace kloc {

/** Allocation facade for kernel objects and application pages. */
class KernelHeap
{
  public:
    KernelHeap(MemAccessor &mem, TierManager &tiers);

    /** Set the active placement oracle (must outlive the heap). */
    void setPolicy(PlacementPolicy *policy) { _policy = policy; }

    PlacementPolicy *policy() const { return _policy; }

    /**
     * Redirect slab sites to the KLOC allocation interface:
     * relocatable backing pages, grouped by knode.
     */
    void setKlocInterface(bool enabled);

    /**
     * Reclaim callback: free up to @p pages on @p tier (second arg),
     * returning pages actually freed. When set, allocations for
     * *active* knodes that cannot get their preferred tier first try
     * evicting cold clean page-cache pages from it — the kswapd-
     * style deallocation path KLOCs-nomigration depends on (§7.1).
     */
    using ReclaimHook = std::function<uint64_t(TierId, uint64_t)>;

    void setReclaimHook(ReclaimHook hook) { _reclaim = std::move(hook); }

    bool klocInterface() const { return _klocInterface; }

    /**
     * Allocate backing for @p obj.
     * @param knode_active Hotness hint passed to the policy.
     * @param group_key    Owning knode id (0 = shared pool).
     * @return false when simulated memory is exhausted.
     */
    bool allocBacking(KernelObject &obj, bool knode_active,
                      uint64_t group_key);

    /** Release @p obj's backing. */
    void freeBacking(KernelObject &obj);

    /** Charge one access to @p obj (size = the object's size). */
    void
    touchObject(KernelObject &obj, AccessType type)
    {
        // Objects can legitimately lose the race for backing under
        // memory exhaustion (e.g. a tier offlined while the rest is
        // full); callers keep using them and the access is simply
        // uncharged rather than a null dereference.
        Frame *frame = obj.frame();
        if (frame == nullptr)
            return;
        _mem.touch(frame, obj.size(), type);
    }

    /** Allocate one application page. */
    Frame *allocAppPage();

    /**
     * Allocate a 2^order-page application allocation — order 9 is a
     * transparent huge page (§5's multi-page-size support). Falls
     * back to nullptr when no tier has a contiguous block.
     */
    Frame *allocAppPages(unsigned order);

    /** Free an application page/huge-page allocation. */
    void freeAppPage(Frame *frame);

    /** The slab cache backing @p kind (slab kinds only). */
    KmemCache &cache(KobjKind kind);

    MemAccessor &mem() { return _mem; }
    TierManager &tiers() { return _tiers; }

    uint64_t liveAppPages() const { return _liveAppPages; }
    uint64_t cumulativeAppPages() const { return _cumAppPages; }

    /**
     * Kernel-object lifetime distribution per kind, in Ticks,
     * sampled at freeBacking() (Fig. 2d).
     */
    const Histogram &
    objLifetimeHist(KobjKind kind) const
    {
        return _objLifetimes[static_cast<unsigned>(kind)];
    }

    /**
     * Allocate an inode number from the machine-wide namespace
     * (files and sockets share it: "everything is a file").
     */
    uint64_t allocInodeId() { return _nextInodeId++; }

  private:
    /** kswapd low-watermark: free pages below this trigger reclaim. */
    static constexpr uint64_t kKswapdLowWater = 256;
    static constexpr uint64_t kKswapdBatch = 512;

    void maybeKswapd(const TierPreference &pref, bool hot);

    MemAccessor &_mem;
    TierManager &_tiers;
    PlacementPolicy *_policy = nullptr;
    bool _klocInterface = false;
    ReclaimHook _reclaim;
    unsigned _reclaimBackoff = 0;

    std::array<std::unique_ptr<KmemCache>, kNumKobjKinds> _caches;
    std::array<Histogram, kNumKobjKinds> _objLifetimes;

    uint64_t _liveAppPages = 0;
    uint64_t _cumAppPages = 0;
    uint64_t _nextInodeId = 1;
};

} // namespace kloc

#endif // KLOC_KOBJ_KERNEL_HEAP_HH
