#include "kobj/kinds.hh"

#include "base/logging.hh"

namespace kloc {

Bytes
kobjSize(KobjKind kind)
{
    // Sizes mirror the corresponding Linux structures (ext4, jbd2,
    // block, net) rounded to their slab size classes.
    switch (kind) {
      case KobjKind::Inode:         return Bytes{1024};  // ext4_inode_info
      case KobjKind::Dentry:        return Bytes{192};
      case KobjKind::JournalRecord: return Bytes{120};   // journal_head
      case KobjKind::Extent:        return Bytes{64};    // extent_status
      case KobjKind::Bio:           return Bytes{200};
      case KobjKind::BlkMqCtx:      return Bytes{384};
      case KobjKind::RadixNode:     return Bytes{576};   // radix_tree_node
      case KobjKind::Sock:          return Bytes{1088};  // tcp_sock class
      case KobjKind::SkbuffHead:    return Bytes{232};   // sk_buff
      case KobjKind::DirBuffer:     return Bytes{1024};
      case KobjKind::PageCachePage: return kPageSize;
      case KobjKind::JournalPage:   return kPageSize;
      case KobjKind::SkbuffData:    return kPageSize;
      case KobjKind::RxBuf:         return kPageSize;
      case KobjKind::NumKinds:      break;
    }
    panic("bad kobj kind %u", static_cast<unsigned>(kind));
}

ObjClass
kobjClass(KobjKind kind)
{
    switch (kind) {
      case KobjKind::Inode:
      case KobjKind::Dentry:
      case KobjKind::Extent:
      case KobjKind::RadixNode:
      case KobjKind::DirBuffer:
        return ObjClass::FsSlab;
      case KobjKind::JournalRecord:
      case KobjKind::JournalPage:
        return ObjClass::Journal;
      case KobjKind::Bio:
      case KobjKind::BlkMqCtx:
        return ObjClass::BlockIo;
      case KobjKind::Sock:
      case KobjKind::SkbuffHead:
      case KobjKind::SkbuffData:
      case KobjKind::RxBuf:
        return ObjClass::SockBuf;
      case KobjKind::PageCachePage:
        return ObjClass::PageCache;
      case KobjKind::NumKinds:
        break;
    }
    panic("bad kobj kind %u", static_cast<unsigned>(kind));
}

bool
kobjIsSlab(KobjKind kind)
{
    switch (kind) {
      case KobjKind::PageCachePage:
      case KobjKind::JournalPage:
      case KobjKind::SkbuffData:
      case KobjKind::RxBuf:
        return false;
      default:
        return true;
    }
}

const char *
kobjKindName(KobjKind kind)
{
    switch (kind) {
      case KobjKind::Inode:         return "inode";
      case KobjKind::Dentry:        return "dentry";
      case KobjKind::JournalRecord: return "journal_record";
      case KobjKind::Extent:        return "extent";
      case KobjKind::Bio:           return "bio";
      case KobjKind::BlkMqCtx:      return "blk_mq_ctx";
      case KobjKind::RadixNode:     return "radix_node";
      case KobjKind::Sock:          return "sock";
      case KobjKind::SkbuffHead:    return "skbuff";
      case KobjKind::DirBuffer:     return "dir_buffer";
      case KobjKind::PageCachePage: return "page_cache_page";
      case KobjKind::JournalPage:   return "journal_page";
      case KobjKind::SkbuffData:    return "skbuff_data";
      case KobjKind::RxBuf:         return "rx_buf";
      case KobjKind::NumKinds:      break;
    }
    return "unknown";
}

} // namespace kloc
