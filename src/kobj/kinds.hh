/**
 * @file
 * The kernel-object taxonomy of Table 1: every filesystem and
 * networking object the paper tracks, with realistic per-object
 * sizes, the allocator each uses in a stock kernel, and the coarse
 * accounting class used in the evaluation figures.
 */

#ifndef KLOC_KOBJ_KINDS_HH
#define KLOC_KOBJ_KINDS_HH

#include <cstdint>

#include "base/units.hh"
#include "mem/frame.hh"

namespace kloc {

/** Concrete kernel object kinds (Table 1, plus radix-tree nodes). */
enum class KobjKind : uint8_t {
    // Slab-allocated (kmalloc / kmem_cache_alloc in a stock kernel).
    Inode = 0,      ///< per-file inode (FS and network)
    Dentry,         ///< name resolution entry
    JournalRecord,  ///< journal descriptor / journal_head
    Extent,         ///< contiguous-block grouping structure
    Bio,            ///< block I/O request structure
    BlkMqCtx,       ///< block layer multi-queue context
    RadixNode,      ///< page-cache radix tree interior node
    Sock,           ///< socket object
    SkbuffHead,     ///< packet buffer header
    DirBuffer,      ///< directory read buffer

    // Page-backed (page_alloc / vmalloc in a stock kernel).
    PageCachePage,  ///< buffer-cache page
    JournalPage,    ///< journal data buffer page
    SkbuffData,     ///< packet payload buffer
    RxBuf,          ///< network receive driver buffer

    NumKinds
};

inline constexpr unsigned kNumKobjKinds =
    static_cast<unsigned>(KobjKind::NumKinds);

/** Bytes per object of @p kind. */
Bytes kobjSize(KobjKind kind);

/** Coarse accounting class for @p kind. */
ObjClass kobjClass(KobjKind kind);

/** True when a stock kernel would slab-allocate @p kind. */
bool kobjIsSlab(KobjKind kind);

/** Diagnostic name. */
const char *kobjKindName(KobjKind kind);

} // namespace kloc

#endif // KLOC_KOBJ_KINDS_HH
