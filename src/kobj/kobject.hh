/**
 * @file
 * KernelObject: common base for every simulated kernel object.
 *
 * An object records its kind, its backing (one slab slot or one
 * whole page frame), and its membership hook for the owning knode's
 * red-black tree — the "table of contents" structure at the heart of
 * the KLOC abstraction (Fig. 1).
 */

#ifndef KLOC_KOBJ_KOBJECT_HH
#define KLOC_KOBJ_KOBJECT_HH

#include <cstdint>

#include "alloc/slab.hh"
#include "base/rbtree.hh"
#include "kobj/kinds.hh"

namespace kloc {

/** Base of all simulated kernel objects. */
struct KernelObject
{
    explicit KernelObject(KobjKind k) : kind(k) {}

    KernelObject(const KernelObject &) = delete;
    KernelObject &operator=(const KernelObject &) = delete;
    virtual ~KernelObject() = default;

    KobjKind kind;

    /** Backing when slab-allocated. */
    SlabRef slab;
    /** Backing when page-backed (whole frames). */
    Frame *page = nullptr;

    /** Membership in the owning knode's rbtree-slab / rbtree-cache. */
    RbNode knodeHook;
    /** Key within that tree (monotonic per-knode object id). */
    uint64_t objId = 0;
    /** Owning Knode, when KLOC tracking is enabled (else nullptr). */
    void *knode = nullptr;

    /** When the backing was allocated (object-lifetime accounting). */
    Tick allocTick{};

    /** Frame currently backing this object. */
    Frame *
    frame() const
    {
        return page ? page : slab.frame;
    }

    /** Simulated size of this object in bytes. */
    Bytes
    size() const
    {
        return kobjSize(kind);
    }

    bool backed() const { return page != nullptr || slab.valid(); }
};

} // namespace kloc

#endif // KLOC_KOBJ_KOBJECT_HH
