/**
 * @file
 * MemAccessor: the single funnel for simulated memory touches.
 *
 * Charges the timing cost of an access against the frame's current
 * tier and keeps the LRU engine's referenced bits up to date, so
 * placement (which tier) and policy (what the LRU sees) both flow
 * from the same call.
 */

#ifndef KLOC_MEM_ACCESSOR_HH
#define KLOC_MEM_ACCESSOR_HH

#include "mem/lru.hh"
#include "sim/machine.hh"

namespace kloc {

/** Charges memory touches and maintains reference bits. */
class MemAccessor
{
  public:
    MemAccessor(Machine &machine, LruEngine &lru)
        : _machine(machine), _lru(lru)
    {}

    /**
     * Touch @p bytes of @p frame. Charges tier cost, attributes the
     * reference to kernel/user per the frame's class, and informs
     * the LRU engine.
     */
    void
    touch(Frame *frame, Bytes bytes, AccessType type)
    {
        const RefDomain domain = isKernelClass(frame->objClass)
            ? RefDomain::Kernel
            : RefDomain::User;
        _machine.access(frame->tier, bytes, type, domain);
        if (type == AccessType::Write) {
            frame->dirty = true;
            frame->lastWriteTick = _machine.now();
        }
        _lru.onAccessed(frame);
    }

    /**
     * Replay the side effects of a touch whose timing cost was
     * already charged elsewhere — the sharded-workload path, where a
     * shard body prices the access against its local clock mid-epoch
     * and the reference bits are applied here, serially, at the
     * barrier. Keeps dirty/lastWriteTick/LRU semantics identical to
     * touch() without double-charging.
     */
    void
    markTouched(Frame *frame, AccessType type)
    {
        if (type == AccessType::Write) {
            frame->dirty = true;
            frame->lastWriteTick = _machine.now();
        }
        _lru.onAccessed(frame);
    }

    Machine &machine() { return _machine; }
    LruEngine &lru() { return _lru; }

  private:
    Machine &_machine;
    LruEngine &_lru;
};

} // namespace kloc

#endif // KLOC_MEM_ACCESSOR_HH
