#include "mem/buddy_allocator.hh"

#include "base/logging.hh"

namespace kloc {

BuddyAllocator::BuddyAllocator(FrameCount frames)
    : _totalFrames(frames), _freeOrder(frames, kNotFreeHead)
{
    KLOC_ASSERT(frames > 0, "buddy allocator over empty frame space");
    // Seed the free lists with maximal aligned blocks.
    Pfn pfn{};
    while (pfn < frames) {
        unsigned order = kMaxOrder;
        // Largest order that is aligned at pfn and fits below frames.
        while (order > 0 &&
               ((pfn & ((1ULL << order) - 1)) != 0 ||
                pfn + (1ULL << order) > frames)) {
            --order;
        }
        if (pfn + (1ULL << order) > frames)
            break;  // trailing frames that fit no block stay unusable
        insertFree(pfn, order);
        pfn += 1ULL << order;
    }
}

void
BuddyAllocator::insertFree(Pfn pfn, unsigned order)
{
    _freeLists[order].insert(pfn);
    _freeOrder[pfn] = static_cast<uint8_t>(order);
}

void
BuddyAllocator::removeFree(Pfn pfn, unsigned order)
{
    const auto erased = _freeLists[order].erase(pfn);
    KLOC_ASSERT(erased == 1, "free block %llu missing from order %u list",
                static_cast<unsigned long long>(pfn), order);
    _freeOrder[pfn] = kNotFreeHead;
}

Pfn
BuddyAllocator::alloc(unsigned order)
{
    KLOC_ASSERT(order <= kMaxOrder, "order %u too large", order);
    // Find the smallest order with a free block.
    unsigned avail = order;
    while (avail <= kMaxOrder && _freeLists[avail].empty())
        ++avail;
    if (avail > kMaxOrder)
        return kInvalidPfn;

    const Pfn pfn = *_freeLists[avail].begin();
    removeFree(pfn, avail);
    // Split the block down to the requested order, returning the
    // low half and freeing the high halves.
    while (avail > order) {
        --avail;
        insertFree(pfn + (1ULL << avail), avail);
        if (_trace) {
            _trace->emit(TraceEventType::BuddySplit, _traceTier,
                         pfn + (1ULL << avail), avail);
        }
    }
    _usedFrames += FrameCount{1ULL << order};
    return pfn;
}

void
BuddyAllocator::free(Pfn pfn, unsigned order)
{
    KLOC_ASSERT(order <= kMaxOrder, "order %u too large", order);
    KLOC_ASSERT(pfn + (1ULL << order) <= _totalFrames,
                "free beyond frame space");
    KLOC_ASSERT((pfn & ((1ULL << order) - 1)) == 0,
                "misaligned free of pfn %llu order %u",
                static_cast<unsigned long long>(pfn), order);
    KLOC_ASSERT(_freeOrder[pfn] == kNotFreeHead, "double free of pfn %llu",
                static_cast<unsigned long long>(pfn));
    _usedFrames -= FrameCount{1ULL << order};

    // Coalesce with the buddy while possible.
    while (order < kMaxOrder) {
        const Pfn buddy{pfn ^ (1ULL << order)};
        if (buddy >= _totalFrames || _freeOrder[buddy] != order)
            break;
        removeFree(buddy, order);
        pfn = pfn < buddy ? pfn : buddy;
        ++order;
        if (_trace)
            _trace->emit(TraceEventType::BuddyCoalesce, _traceTier, pfn,
                         order);
    }
    insertFree(pfn, order);
}

void
BuddyAllocator::quarantine(Pfn pfn, unsigned order)
{
    KLOC_ASSERT(order <= kMaxOrder, "order %u too large", order);
    KLOC_ASSERT(pfn + (1ULL << order) <= _totalFrames,
                "quarantine beyond frame space");
    KLOC_ASSERT((pfn & ((1ULL << order) - 1)) == 0,
                "misaligned quarantine of pfn %llu order %u",
                static_cast<unsigned long long>(pfn), order);
    KLOC_ASSERT(_freeOrder[pfn] == kNotFreeHead,
                "quarantine of free pfn %llu",
                static_cast<unsigned long long>(pfn));
    // The block moves from used to quarantined accounting but stays
    // out of the free lists, so alloc() can never return it and the
    // coalescing walk in free() (which only merges blocks found on a
    // free list) can never absorb it into a larger free block.
    _usedFrames -= FrameCount{1ULL << order};
    _quarantinedFrames += FrameCount{1ULL << order};
}

int
BuddyAllocator::maxAvailableOrder() const
{
    for (int order = kMaxOrder; order >= 0; --order) {
        if (!_freeLists[order].empty())
            return order;
    }
    return -1;
}

void
BuddyAllocator::validate() const
{
    uint64_t free_frames = 0;
    for (unsigned order = 0; order <= kMaxOrder; ++order) {
        for (const Pfn pfn : _freeLists[order]) {
            KLOC_ASSERT(_freeOrder[pfn] == order,
                        "freeOrder mismatch at pfn %llu",
                        static_cast<unsigned long long>(pfn));
            KLOC_ASSERT((pfn & ((1ULL << order) - 1)) == 0,
                        "misaligned free block");
            free_frames += 1ULL << order;
        }
    }
    KLOC_ASSERT(free_frames == freeFrames(),
                "free frame accounting mismatch: %llu vs %llu",
                static_cast<unsigned long long>(free_frames),
                static_cast<unsigned long long>(freeFrames()));
}

} // namespace kloc
