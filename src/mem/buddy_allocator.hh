/**
 * @file
 * Binary buddy allocator over one tier's physical frame space,
 * modelled on Linux's zoned buddy allocator (mm/page_alloc.c).
 *
 * Allocation returns the lowest-addressed suitable block so runs are
 * deterministic. Orders range 0..kMaxOrder (4 KB .. 4 MB), matching
 * MAX_ORDER-1 = 10 in the kernel.
 */

#ifndef KLOC_MEM_BUDDY_ALLOCATOR_HH
#define KLOC_MEM_BUDDY_ALLOCATOR_HH

#include <cstdint>
#include <set>
#include <vector>

#include "base/units.hh"
#include "trace/trace.hh"

namespace kloc {

/** Buddy allocator over pfns [0, frames). */
class BuddyAllocator
{
  public:
    static constexpr unsigned kMaxOrder = 10;

    /** @param frames Total frames managed; rounded down to even. */
    explicit BuddyAllocator(FrameCount frames);

    /**
     * Allocate a 2^order-page block.
     * @return base pfn, or kInvalidPfn when no block fits.
     */
    Pfn alloc(unsigned order);

    /** Free the block at @p pfn previously allocated with @p order. */
    void free(Pfn pfn, unsigned order);

    /**
     * Retire the allocated block at @p pfn: it leaves the used
     * accounting but never re-enters the free lists, so it can never
     * be handed out again (hwpoison containment). Irreversible for
     * the allocator's lifetime.
     */
    void quarantine(Pfn pfn, unsigned order);

    /** Frames currently allocated. */
    FrameCount usedFrames() const { return _usedFrames; }

    /** Frames currently free. */
    FrameCount
    freeFrames() const
    {
        return _totalFrames - _usedFrames - _quarantinedFrames;
    }

    /** Frames permanently retired by quarantine(). */
    FrameCount quarantinedFrames() const { return _quarantinedFrames; }

    FrameCount totalFrames() const { return _totalFrames; }

    /** Largest order that can currently be satisfied; -1 if none. */
    int maxAvailableOrder() const;

    /** Verify internal consistency; panics on corruption (tests). */
    void validate() const;

    /** Route split/coalesce events to @p tracer, tagged @p tier. */
    void
    setTrace(Tracer *tracer, int tier)
    {
        _trace = tracer;
        _traceTier = tier;
    }

  private:
    static constexpr uint8_t kNotFreeHead = 0xFF;

    void insertFree(Pfn pfn, unsigned order);
    void removeFree(Pfn pfn, unsigned order);

    Tracer *_trace = nullptr;
    int _traceTier = -1;
    FrameCount _totalFrames;
    FrameCount _usedFrames{};
    FrameCount _quarantinedFrames{};
    /** Per-order ordered sets of free block base pfns. */
    std::set<Pfn> _freeLists[kMaxOrder + 1];
    /** freeOrder[pfn] = order when a free block starts there. */
    std::vector<uint8_t> _freeOrder;
};

} // namespace kloc

#endif // KLOC_MEM_BUDDY_ALLOCATOR_HH
