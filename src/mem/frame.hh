/**
 * @file
 * Simulated physical page frame metadata.
 *
 * A Frame is the unit of placement and migration: it records which
 * tier currently backs it, its buddy order, the coarse object class
 * occupying it (for Fig. 2a/5b/5c accounting and the Fig. 5c class
 * filter), Linux-style LRU state, and the 8-bit migration counter the
 * paper uses to damp ping-ponging (§4.5).
 *
 * Frame objects have stable identity for their whole allocation
 * lifetime: migration re-homes the frame (new tier + pfn) in place,
 * so kernel objects can hold Frame* across moves.
 */

#ifndef KLOC_MEM_FRAME_HH
#define KLOC_MEM_FRAME_HH

#include <cstdint>

#include "base/intrusive_list.hh"
#include "base/objclass.hh"
#include "base/units.hh"

namespace kloc {

/** Metadata for one simulated physical frame allocation. */
struct Frame
{
    TierId tier = kInvalidTier;
    Pfn pfn = kInvalidPfn;
    uint8_t order = 0;             ///< buddy order (covers 2^order pages)
    ObjClass objClass = ObjClass::App;

    // Placement/migration state.
    bool relocatable = true;       ///< slab-legacy frames are not
    uint8_t migrateCount = 0;      ///< saturating 8-bit counter (§4.5)
    uint32_t pinCount = 0;         ///< pinned frames cannot move

    // Linux-style LRU state.
    bool onActiveList = false;
    bool referenced = false;       ///< accessed since last scan
    uint8_t scanMarks = 0;         ///< scan-confirmation counter

    // Dirty state (writeback interacts with migration).
    bool dirty = false;

    // Hwpoison: an uncorrectable error was injected on this frame and
    // containment could not relocate it (pinned, unmovable, or no
    // space). The physical block is quarantined when the frame frees.
    bool poisoned = false;

    Tick allocTick{};
    Tick lastAccessTick{};
    Tick lastWriteTick{};          ///< for transactional-copy aborts

    // Nomad-style non-exclusive shadow copy: the slow-tier location
    // this frame was transactionally promoted from. While set, those
    // buddy pages stay allocated so a clean demotion is a free remap.
    TierId shadowTier = kInvalidTier;
    Pfn shadowPfn = kInvalidPfn;
    Tick shadowSince{};            ///< promotion time (staleness check)

    ListHook lruHook;              ///< tier active/inactive list

    /** Owning kernel object (Knode-tracked), if any. */
    void *owner = nullptr;

    /**
     * Bumped every time the frame is freed; FrameRef uses it to
     * detect stale references to recycled Frame slots.
     */
    uint64_t generation = 0;

    /** Pages covered by this allocation. */
    FrameCount pages() const { return FrameCount{1ULL << order}; }

    /** Bytes covered by this allocation. */
    Bytes bytes() const { return pages() * kPageSize; }

    bool pinned() const { return pinCount > 0; }

    /** True while a slow-tier shadow copy backs this frame. */
    bool hasShadow() const { return shadowTier != kInvalidTier; }

    /** Shadow still matches memory: no write since the promotion. */
    bool shadowClean() const { return lastWriteTick <= shadowSince; }
};

/**
 * Generation-checked reference to a Frame. Migration candidates are
 * collected first and moved later; in between, charged time can run
 * asynchronous kernel work that frees frames. A FrameRef detects
 * that the slot was freed (or freed and recycled) in the interim.
 */
struct FrameRef
{
    Frame *frame = nullptr;
    uint64_t generation = 0;

    FrameRef() = default;
    explicit FrameRef(Frame *f) : frame(f), generation(f->generation) {}

    /** True while the referenced allocation is still alive. */
    bool
    valid() const
    {
        return frame != nullptr && frame->tier != kInvalidTier &&
               frame->generation == generation;
    }

    Frame *operator->() const { return frame; }
    Frame *get() const { return frame; }
};

} // namespace kloc

#endif // KLOC_MEM_FRAME_HH
