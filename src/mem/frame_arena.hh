/**
 * @file
 * Chunked arena backing every Frame in the machine.
 *
 * Frames must have stable addresses for their whole lifetime: kernel
 * objects hold Frame pointers and migration re-homes frames in place,
 * so the backing store may never relocate them. A flat vector is out;
 * a deque qualifies but libstdc++ sizes its blocks at 512 bytes —
 * about five Frames per node — so pool walks chase a block pointer
 * every few frames and the per-node overhead is paid thousands of
 * times. The arena instead hands frames out of large fixed chunks:
 * addresses never move, creation-order iteration is sequential within
 * each chunk, and the steady-state create() is an index increment.
 */

#ifndef KLOC_MEM_FRAME_ARENA_HH
#define KLOC_MEM_FRAME_ARENA_HH

#include <cstddef>
#include <memory>
#include <vector>

#include "mem/frame.hh"

namespace kloc {

/** Stable-address, creation-ordered pool of Frames. */
class FrameArena
{
  public:
    static constexpr size_t kChunkShift = 12;
    static constexpr size_t kChunkFrames = size_t{1} << kChunkShift;

    /** Frames ever created (recycled slots included). */
    size_t size() const { return _count; }

    /** Default-construct the next frame; never moves existing ones. */
    Frame *
    create()
    {
        const size_t chunk = _count >> kChunkShift;
        const size_t slot = _count & (kChunkFrames - 1);
        if (chunk == _chunks.size())
            _chunks.push_back(std::make_unique<Frame[]>(kChunkFrames));
        ++_count;
        return &_chunks[chunk][slot];
    }

    /** Frame @p index in creation order (0 .. size()-1). */
    Frame &
    at(size_t index)
    {
        return _chunks[index >> kChunkShift][index & (kChunkFrames - 1)];
    }

    /**
     * Visit every frame ever created, in creation order — the
     * deterministic iteration the tier-drain work list depends on.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (size_t chunk = 0; chunk * kChunkFrames < _count; ++chunk) {
            Frame *base = _chunks[chunk].get();
            const size_t limit =
                _count - chunk * kChunkFrames < kChunkFrames
                    ? _count - chunk * kChunkFrames
                    : kChunkFrames;
            for (size_t slot = 0; slot < limit; ++slot)
                // klint:allow(reentrancy-hazard): a visitor that allocates appends chunks; unique_ptr'd chunk blocks never move and `chunk` indexes an append-only vector
                fn(base[slot]);
        }
    }

  private:
    std::vector<std::unique_ptr<Frame[]>> _chunks;
    size_t _count = 0;
};

} // namespace kloc

#endif // KLOC_MEM_FRAME_ARENA_HH
