#include "mem/lru.hh"

namespace kloc {

LruEngine::LruEngine(Machine &machine, TierManager &tiers)
    : _machine(machine), _tiers(tiers)
{
    // Captureless trampolines: the observer fan-out stays a plain
    // indirect call on the per-alloc/per-free fast path.
    _tiers.addAllocObserver(
        [](void *ctx, Frame *frame) {
            static_cast<LruEngine *>(ctx)->onAllocated(frame);
        },
        this);
    _tiers.addFreeObserver(
        [](void *ctx, Frame *frame) {
            static_cast<LruEngine *>(ctx)->onFreed(frame);
        },
        this);
}

void
LruEngine::onAllocated(Frame *frame)
{
    // Like Linux, fresh pages start on the inactive list and must
    // prove themselves via references.
    frame->onActiveList = false;
    frame->referenced = false;
    _tiers.tier(frame->tier).inactiveList().pushFront(frame);
}

void
LruEngine::onFreed(Frame *frame)
{
    if (frame->lruHook.linked()) {
        Tier &t = _tiers.tier(frame->tier);
        if (frame->onActiveList)
            t.activeList().remove(frame);
        else
            t.inactiveList().remove(frame);
    }
}

bool
LruEngine::maybePoison(Frame *frame, FaultSite site, PoisonOrigin origin)
{
    // Only consult while a containment hook is registered, so stacks
    // without a MigrationEngine draw no per-site fault RNG and their
    // traces are unchanged by the poison machinery existing.
    if (_poisonHook.fn == nullptr || frame->poisoned)
        return false;
    if (!_machine.faults().shouldFire(site))
        return false;
    _poisonHook.fn(_poisonHook.ctx, frame, origin);
    return true;
}

void
LruEngine::onAccessed(Frame *frame)
{
    frame->lastAccessTick = _machine.now();
    if (maybePoison(frame, FaultSite::FramePoisonAccess,
                    PoisonOrigin::Access)) {
        // Containment ran; the frame may have been re-homed. Its new
        // location starts cold rather than inheriting this touch.
        return;
    }
    if (!frame->lruHook.linked())
        return;
    Tier &t = _tiers.tier(frame->tier);
    if (frame->onActiveList) {
        frame->referenced = true;
        return;
    }
    if (frame->referenced) {
        // Second touch while inactive: promote (mark_page_accessed).
        t.inactiveList().remove(frame);
        t.activeList().pushFront(frame);
        frame->onActiveList = true;
        frame->referenced = false;
        _machine.tracer().emit(TraceEventType::LruActivate, frame->tier,
                               frame->pfn);
    } else {
        frame->referenced = true;
    }
}

void
LruEngine::onMigrated(Frame *frame, TierId old_tier)
{
    // The frame changed tier; move its list membership along,
    // preserving active/inactive standing.
    if (!frame->lruHook.linked())
        return;
    Tier &from = _tiers.tier(old_tier);
    if (frame->onActiveList)
        from.activeList().remove(frame);
    else
        from.inactiveList().remove(frame);
    Tier &to = _tiers.tier(frame->tier);
    if (frame->onActiveList)
        to.activeList().pushFront(frame);
    else
        to.inactiveList().pushFront(frame);
}

void
LruEngine::deactivate(Frame *frame)
{
    frame->referenced = false;
    if (!frame->lruHook.linked()) {
        frame->onActiveList = false;
        return;
    }
    Tier &t = _tiers.tier(frame->tier);
    if (frame->onActiveList) {
        t.activeList().remove(frame);
        t.inactiveList().pushFront(frame);
        frame->onActiveList = false;
        _machine.tracer().emit(TraceEventType::LruDeactivate, frame->tier,
                               frame->pfn);
    }
}

void
LruEngine::requeue(Frame *frame)
{
    if (!frame->lruHook.linked())
        return;
    Tier &t = _tiers.tier(frame->tier);
    if (frame->onActiveList)
        t.activeList().moveToFront(frame);
    else
        t.inactiveList().moveToFront(frame);
}

void
LruEngine::scanTier(TierId tier, FrameCount max_scan, ScanResult &out)
{
    out.clear();
    Tier &t = _tiers.tier(tier);
    // Scans emit LruDeactivate in bulk; stage the run and deliver it
    // in one pass instead of paying listener fan-out per frame.
    TraceBatch batch(_machine.tracer());

    // Pass 1: age the active list from the cold end. Referenced
    // frames get another round; unreferenced ones deactivate.
    // The poison hook can evacuate frames off this tier mid-scan, so
    // both passes re-check list emptiness rather than trusting the
    // length snapshot.
    uint64_t budget = max_scan;
    uint64_t active_len = t.activeList().size();
    while (budget > 0 && active_len > 0 && !t.activeList().empty()) {
        Frame *frame = t.activeList().back();
        --active_len;
        --budget;
        ++out.scanned;
        out.pagesVisited += 1ULL << frame->order;
        if (maybePoison(frame, FaultSite::FramePoisonScan,
                        PoisonOrigin::Scan)) {
            continue;
        }
        if (frame->referenced) {
            frame->referenced = false;
            t.activeList().moveToFront(frame);
        } else {
            t.activeList().remove(frame);
            t.inactiveList().pushFront(frame);
            frame->onActiveList = false;
            _machine.tracer().emit(TraceEventType::LruDeactivate,
                                   frame->tier, frame->pfn);
        }
    }

    // Pass 2: find cold frames at the tail of the inactive list.
    uint64_t inactive_len = t.inactiveList().size();
    while (budget > 0 && inactive_len > 0 && !t.inactiveList().empty()) {
        Frame *frame = t.inactiveList().back();
        --inactive_len;
        --budget;
        ++out.scanned;
        out.pagesVisited += 1ULL << frame->order;
        if (maybePoison(frame, FaultSite::FramePoisonScan,
                        PoisonOrigin::Scan)) {
            continue;
        }
        if (frame->referenced) {
            // Referenced while inactive: second chance.
            frame->referenced = false;
            t.inactiveList().moveToFront(frame);
        } else {
            // Cold. Rotate so the next scan sees different frames,
            // and report as a demotion candidate. Frames poisoned in
            // place are unmovable; never offer them.
            t.inactiveList().moveToFront(frame);
            if (!frame->poisoned)
                out.demoteCandidates.emplace_back(frame);
        }
    }

    _totalScanned += out.scanned;
    _totalPagesVisited += out.pagesVisited;
    _machine.tracer().emit(TraceEventType::LruScan, tier, out.scanned,
                           t.activeList().size(), t.inactiveList().size());
    // kswapd-style scans run on a dedicated thread; their cost leaks
    // into foreground time as background work. An order-k frame has
    // 2^k page-table entries to visit, so cost follows pages, not
    // frames — and truncated scans still pay for what they looked at.
    _machine.backgroundTraffic(
        kScanCostPerPage * static_cast<int64_t>(out.pagesVisited));
}

void
LruEngine::collectHot(TierId tier, FrameCount max,
                      std::vector<FrameRef> &out)
{
    out.clear();
    Tier &t = _tiers.tier(tier);
    uint64_t scanned = 0;
    uint64_t pages = 0;
    for (Frame *frame : t.activeList()) {
        if (out.size() >= max)
            break;
        ++scanned;
        pages += 1ULL << frame->order;
        // Two-scan confirmation, like NUMA-balancing's fault
        // sampling: a frame is only promotion-eligible once a prior
        // scan has already seen it hot. This is the detection
        // latency that makes scan-driven promotion miss short-lived
        // kernel objects (§3.3).
        if (frame->scanMarks == 0) {
            frame->scanMarks = 1;
            continue;
        }
        if (!frame->poisoned)
            out.emplace_back(frame);
    }
    _totalScanned += scanned;
    _totalPagesVisited += pages;
    _machine.backgroundTraffic(
        kScanCostPerPage * static_cast<int64_t>(pages));
}

void
LruEngine::collectReferenced(TierId tier, FrameCount max,
                             std::vector<FrameRef> &out)
{
    out.clear();
    Tier &t = _tiers.tier(tier);
    uint64_t scanned = 0;
    uint64_t pages = 0;
    for (Frame *frame : t.activeList()) {
        if (out.size() >= max)
            break;
        ++scanned;
        pages += 1ULL << frame->order;
        if (!frame->poisoned)
            out.emplace_back(frame);
    }
    for (Frame *frame : t.inactiveList()) {
        if (out.size() >= max)
            break;
        ++scanned;
        pages += 1ULL << frame->order;
        if (frame->referenced && !frame->poisoned)
            out.emplace_back(frame);
    }
    _totalScanned += scanned;
    _totalPagesVisited += pages;
    _machine.backgroundTraffic(
        kScanCostPerPage * static_cast<int64_t>(pages));
}

uint64_t
LruEngine::activeCount(TierId tier)
{
    return _tiers.tier(tier).activeList().size();
}

uint64_t
LruEngine::inactiveCount(TierId tier)
{
    return _tiers.tier(tier).inactiveList().size();
}

} // namespace kloc
