/**
 * @file
 * Linux-style two-list LRU engine over each tier's frames.
 *
 * New frames enter the inactive list; a frame referenced twice is
 * promoted to the active list; periodic scans age the lists and yield
 * demotion candidates (cold, unreferenced, inactive frames) and
 * promotion candidates (active frames on slow tiers).
 *
 * Scan cost follows the paper's measurement of 2 seconds per million
 * pages (§3.3) — the reason scan-driven policies cannot track
 * kernel objects whose lifetimes are tens of milliseconds.
 */

#ifndef KLOC_MEM_LRU_HH
#define KLOC_MEM_LRU_HH

#include <cstdint>
#include <vector>

#include "mem/tier_manager.hh"
#include "sim/machine.hh"

namespace kloc {

/**
 * Result of one LRU scan pass over a tier. Policies that scan every
 * period keep one ScanResult alive and pass it back in — clear()
 * empties the candidate list but keeps its capacity, so steady-state
 * scanning allocates nothing.
 */
struct ScanResult
{
    /** Cold frames eligible for demotion/reclaim, coldest first. */
    std::vector<FrameRef> demoteCandidates;
    /** Frames scanned (for cost accounting and stats). */
    uint64_t scanned = 0;
    /** Pages visited: an order-k frame counts 2^k (cost accounting). */
    uint64_t pagesVisited = 0;

    void
    clear()
    {
        demoteCandidates.clear();
        scanned = 0;
        pagesVisited = 0;
    }
};

/** Two-list LRU bookkeeping and scanning. */
class LruEngine
{
  public:
    /** Cost of visiting one frame during a scan (2 s / 1 M pages). */
    static constexpr Tick kScanCostPerPage{2000};

    LruEngine(Machine &machine, TierManager &tiers);

    /**
     * Containment callback for frame_poison_access/_scan faults. The
     * access and scan paths consult the injector only while a hook is
     * registered (the MigrationEngine registers itself), so an
     * LRU-only stack draws no fault RNG. The hook may evacuate the
     * frame — re-homing it, moving its list membership, or leaving it
     * poisoned in place — so callers treat the frame as re-homed
     * after the call.
     */
    void
    setPoisonHook(void (*fn)(void *, Frame *, PoisonOrigin), void *ctx)
    {
        _poisonHook.fn = fn;
        _poisonHook.ctx = ctx;
    }

    /**
     * Frame lifecycle notifications. Alloc/free arrive automatically
     * via TierManager observers; access and migration notifications
     * are the caller's responsibility.
     */
    void onAccessed(Frame *frame);

    /**
     * Move @p frame's LRU membership from @p old_tier to its current
     * tier; call right after TierManager::migrate succeeds.
     */
    void onMigrated(Frame *frame, TierId old_tier);

    /**
     * Strip @p frame's LRU standing (inactive, unreferenced) — used
     * when a page is demoted so it must earn its way back to fast
     * memory through genuine reuse, not a single streaming touch.
     */
    void deactivate(Frame *frame);

    /**
     * Rotate @p frame to the hot end of whichever list it is on —
     * used when a migration is abandoned so the same cold frame is
     * not immediately re-picked by the next scan.
     */
    void requeue(Frame *frame);

    /**
     * Age @p tier's lists, visiting at most @p max_scan frames, and
     * append cold demotion candidates to @p out (cleared first,
     * capacity preserved). Charges scan cost per page visited —
     * an order-k frame costs 2^k pages, and truncated scans are
     * charged for every frame actually looked at.
     */
    void scanTier(TierId tier, FrameCount max_scan, ScanResult &out);

    /** Convenience wrapper allocating a fresh result. */
    ScanResult
    scanTier(TierId tier, FrameCount max_scan)
    {
        ScanResult result;
        scanTier(tier, max_scan, result);
        return result;
    }

    /**
     * Collect up to @p max hot frames resident on @p tier (promotion
     * candidates for policies that upgrade to fast memory) into
     * @p out (cleared first, capacity preserved). Walks the active
     * list from the hot end; charges scan cost per page visited.
     */
    void collectHot(TierId tier, FrameCount max,
                    std::vector<FrameRef> &out);

    /** Convenience wrapper allocating a fresh vector. */
    std::vector<FrameRef>
    collectHot(TierId tier, FrameCount max)
    {
        std::vector<FrameRef> hot;
        collectHot(tier, max, hot);
        return hot;
    }

    /**
     * Collect up to @p max frames on @p tier that were referenced
     * since the last call (active standing or referenced bit) —
     * the sampling NUMA-balancing hinting faults provide — into
     * @p out (cleared first, capacity preserved). Walks both lists
     * from the hot end; charges scan cost per page visited.
     */
    void collectReferenced(TierId tier, FrameCount max,
                           std::vector<FrameRef> &out);

    /** Convenience wrapper allocating a fresh vector. */
    std::vector<FrameRef>
    collectReferenced(TierId tier, FrameCount max)
    {
        std::vector<FrameRef> hot;
        collectReferenced(tier, max, hot);
        return hot;
    }

    /** Total frames scanned to date. */
    uint64_t totalScanned() const { return _totalScanned; }

    /** Total pages visited to date (order-k frames count 2^k). */
    uint64_t totalPagesVisited() const { return _totalPagesVisited; }

    /** Frames currently on @p tier's active list. */
    uint64_t activeCount(TierId tier);

    /** Frames currently on @p tier's inactive list. */
    uint64_t inactiveCount(TierId tier);

  private:
    struct PoisonHook
    {
        void (*fn)(void *ctx, Frame *frame, PoisonOrigin origin) =
            nullptr;
        void *ctx = nullptr;
    };

    void onAllocated(Frame *frame);
    void onFreed(Frame *frame);

    /** Consult the injector at @p site for @p frame; true = poisoned
     *  (the hook ran and the caller must not keep scanning it). */
    bool maybePoison(Frame *frame, FaultSite site, PoisonOrigin origin);

    Machine &_machine;
    TierManager &_tiers;
    PoisonHook _poisonHook;
    uint64_t _totalScanned = 0;
    uint64_t _totalPagesVisited = 0;
};

} // namespace kloc

#endif // KLOC_MEM_LRU_HH
