#include "mem/migration.hh"

#include "base/logging.hh"

namespace kloc {

const char *
txnAbortReasonName(TxnAbortReason reason)
{
    switch (reason) {
      case TxnAbortReason::WriteRecent: return "write_recent";
      case TxnAbortReason::NoSpace:     return "no_space";
      case TxnAbortReason::Blocked:     return "blocked";
    }
    return "unknown";
}

MigrationEngine::MigrationEngine(Machine &machine, TierManager &tiers,
                                 LruEngine &lru)
    : _machine(machine), _tiers(tiers), _lru(lru)
{
    // Captureless trampolines, same shape as the LRU's frame
    // observers: the engine is the containment authority for poison
    // faults surfaced on the access/scan paths, and the drain
    // authority for tiers whose health fails.
    _lru.setPoisonHook(
        [](void *ctx, Frame *frame, PoisonOrigin origin) {
            static_cast<MigrationEngine *>(ctx)->poisonFrame(frame,
                                                             origin);
        },
        this);
    _tiers.addHealthObserver(
        [](void *ctx, TierId tier, TierHealth from, TierHealth to) {
            static_cast<MigrationEngine *>(ctx)->onTierHealth(tier, from,
                                                              to);
        },
        this);
}

void
MigrationEngine::setParallelism(unsigned width)
{
    KLOC_ASSERT(width >= 1, "migration parallelism below 1");
    _parallelism = width;
}

MigrateResult
MigrationEngine::moveFrame(Frame *frame, TierId dst, Tick &copy_cost,
                           Tick &fixed_cost)
{
    ++_stats.attempts;
    const TierId src = frame->tier;
    const Pfn src_pfn = frame->pfn;

    if (_machine.faults().shouldFire(FaultSite::FramePoisonCopy)) {
        // The copy's source read hit bad cells: the move fails and
        // the frame enters containment instead.
        ++_stats.failedPoisoned;
        poisonFrame(frame, PoisonOrigin::Copy);
        return MigrateResult::Poisoned;
    }

    MigrateResult result;
    if (_machine.faults().shouldFire(FaultSite::MigrationNoSpace)) {
        // Injected transient exhaustion: the destination allocator
        // reports no frames even though space may exist.
        result = MigrateResult::NoSpace;
    } else {
        result = _tiers.migrateEx(frame, dst);
    }
    switch (result) {
      case MigrateResult::Ok:
        break;
      case MigrateResult::NotRelocatable:
        ++_stats.failedNotRelocatable;
        return result;
      case MigrateResult::Pinned:
        ++_stats.failedPinned;
        return result;
      case MigrateResult::Damped:
        ++_stats.failedDamped;
        return result;
      case MigrateResult::SameTier:
        ++_stats.failedSameTier;
        return result;
      case MigrateResult::Offline:
        ++_stats.failedOffline;
        return result;
      case MigrateResult::NoSpace:
        // Counted once, at abandonment or retry, by moveWithRetry.
        return result;
      case MigrateResult::Poisoned:
        return result;  // unreachable: handled before migrateEx
    }
    ++_stats.movedFrames;

    _machine.tracer().emit(TraceEventType::MigStart, src, src_pfn, dst,
                           frame->pfn);
    _lru.onMigrated(frame, src);
    frame->scanMarks = 0;
    if (dst > src) {
        // Demotion resets LRU standing: the page must prove reuse
        // before any policy promotes it again.
        _lru.deactivate(frame);
    }
    _machine.tracer().emit(TraceEventType::MigComplete, dst, frame->pfn,
                           frame->pages(), dst > src ? 1 : 0);

    const Bytes bytes = frame->bytes();
    copy_cost += _machine.memModel().rawCost(src, bytes, AccessType::Read,
                                             _machine.currentSocket());
    copy_cost += _machine.memModel().rawCost(dst, bytes, AccessType::Write,
                                             _machine.currentSocket());
    fixed_cost += kPerPageOverhead * frame->pages().value();

    _stats.migratedPages += frame->pages();
    _stats.migratedPagesByClass[static_cast<unsigned>(frame->objClass)] +=
        frame->pages();
    if (dst > src)
        _stats.demotedPages += frame->pages();
    else
        _stats.promotedPages += frame->pages();
    return result;
}

bool
MigrationEngine::moveWithRetry(const FrameRef &ref, TierId dst,
                               Tick &copy_cost, Tick &fixed_cost,
                               bool &fail_fast)
{
    for (unsigned attempt = 0; ; ++attempt) {
        // Backoff charges time, and charged time can run async work
        // that frees the frame — re-validate every iteration.
        if (!ref.valid()) {
            ++_stats.failedStale;
            return false;
        }
        Frame *frame = ref.get();
        const TierId src = frame->tier;
        const Pfn src_pfn = frame->pfn;
        const MigrateResult result =
            moveFrame(frame, dst, copy_cost, fixed_cost);
        if (result == MigrateResult::Ok)
            return true;
        if (result != MigrateResult::NoSpace)
            return false;
        if (fail_fast || attempt >= kMaxNoSpaceRetries) {
            // Abandon: the frame stays where it is, degraded but
            // consistent. Rotate it hot so the next scan picks
            // different candidates instead of respinning on it, and
            // fail the rest of the batch fast — the destination has
            // proven itself exhausted.
            ++_stats.failedNoSpace;
            fail_fast = true;
            _machine.tracer().emit(
                TraceEventType::MigAbandon, src, src_pfn,
                static_cast<uint64_t>(dst),
                static_cast<uint64_t>(result));
            _lru.requeue(frame);
            return false;
        }
        ++_stats.noSpaceRetries;
        _machine.tracer().emit(TraceEventType::MigRetry, src, src_pfn,
                               static_cast<uint64_t>(dst), attempt + 1);
        _machine.backgroundTraffic(kRetryBackoffBase * (int64_t{1} << attempt));
    }
}

uint64_t
MigrationEngine::migrate(const std::vector<FrameRef> &batch, TierId dst)
{
    Tick copy_cost{};
    Tick fixed_cost{};
    uint64_t moved_pages = 0;
    bool fail_fast = false;
    // Each successful move emits a MigStart/MigComplete bracket plus
    // the LRU transitions in between; deliver the whole batch's run
    // in bulk instead of paying listener fan-out per event.
    TraceBatch trace_batch(_machine.tracer());
    for (const FrameRef &ref : batch) {
        if (!ref.valid()) {
            ++_stats.failedStale;
            continue;
        }
        if (ref.get()->tier == dst)
            continue;
        const uint64_t before = _stats.migratedPages;
        if (moveWithRetry(ref, dst, copy_cost, fixed_cost, fail_fast))
            moved_pages += _stats.migratedPages - before;
    }
    // Migration threads run on dedicated CPUs (§5): both the copy
    // traffic and the unmap/remap work spread across them.
    const Tick total =
        (copy_cost + fixed_cost) / static_cast<int64_t>(_parallelism);
    _machine.backgroundTraffic(total);
    return moved_pages;
}

bool
MigrationEngine::promoteOneTransactional(Frame *frame, TierId dst,
                                         Tick write_recency_window,
                                         Tick &copy_cost,
                                         Tick &fixed_cost,
                                         bool &fail_fast)
{
    ++_stats.attempts;
    const TierId src = frame->tier;
    const Pfn src_pfn = frame->pfn;
    _machine.tracer().emit(TraceEventType::MigTxnBegin, src, src_pfn,
                           static_cast<uint64_t>(dst));
    ++_stats.txnBegins;

    // Write-recency abort: the page would be dirtied mid-copy, so
    // the transaction throws its partial work away. Only half the
    // source read is charged — never the destination write.
    const Tick now = _machine.now();
    if (frame->lastWriteTick > Tick{} &&
        now - frame->lastWriteTick < write_recency_window) {
        copy_cost += _machine.memModel().rawCost(
                         src, frame->bytes(), AccessType::Read,
                         _machine.currentSocket()) / 2;
        _machine.tracer().emit(
            TraceEventType::MigTxnAbort, src, src_pfn,
            static_cast<uint64_t>(dst),
            static_cast<uint64_t>(TxnAbortReason::WriteRecent));
        ++_stats.txnAbortedWrite;
        _lru.requeue(frame);
        return false;
    }

    if (_machine.faults().shouldFire(FaultSite::FramePoisonCopy)) {
        // The transactional copy's source read hit bad cells: close
        // the window as a blocked abort, then run containment.
        _machine.tracer().emit(
            TraceEventType::MigTxnAbort, src, src_pfn,
            static_cast<uint64_t>(dst),
            static_cast<uint64_t>(TxnAbortReason::Blocked));
        ++_stats.txnAbortedBlocked;
        ++_stats.failedPoisoned;
        poisonFrame(frame, PoisonOrigin::Copy);
        return false;
    }

    MigrateResult result;
    const bool over_budget =
        _tiers.shadowPages() + frame->pages().value() > _shadowBudget;
    if (_machine.faults().shouldFire(FaultSite::MigrationNoSpace))
        result = MigrateResult::NoSpace;
    else if (over_budget)
        result = _tiers.migrateEx(frame, dst);
    else
        result = _tiers.promoteKeepSource(frame, dst);

    switch (result) {
      case MigrateResult::Ok:
        break;
      case MigrateResult::NoSpace:
        // Cheap abort, no retry/backoff: the whole point of the
        // transactional copy is that pressure aborts cost nothing.
        _machine.tracer().emit(
            TraceEventType::MigTxnAbort, src, src_pfn,
            static_cast<uint64_t>(dst),
            static_cast<uint64_t>(TxnAbortReason::NoSpace));
        ++_stats.txnAbortedNoSpace;
        ++_stats.failedNoSpace;
        _lru.requeue(frame);
        fail_fast = true;
        return false;
      default:
        _machine.tracer().emit(
            TraceEventType::MigTxnAbort, src, src_pfn,
            static_cast<uint64_t>(dst),
            static_cast<uint64_t>(TxnAbortReason::Blocked));
        ++_stats.txnAbortedBlocked;
        switch (result) {
          case MigrateResult::NotRelocatable:
            ++_stats.failedNotRelocatable;
            break;
          case MigrateResult::Pinned:
            ++_stats.failedPinned;
            break;
          case MigrateResult::Damped:
            ++_stats.failedDamped;
            break;
          case MigrateResult::Offline:
            ++_stats.failedOffline;
            break;
          case MigrateResult::SameTier:
            ++_stats.failedSameTier;
            break;
          default:
            break;
        }
        return false;
    }
    ++_stats.movedFrames;

    _machine.tracer().emit(TraceEventType::MigStart, src, src_pfn, dst,
                           frame->pfn);
    _lru.onMigrated(frame, src);
    frame->scanMarks = 0;
    _machine.tracer().emit(TraceEventType::MigComplete, dst, frame->pfn,
                           frame->pages(), 0);
    if (frame->hasShadow()) {
        _machine.tracer().emit(TraceEventType::ShadowMake,
                               frame->shadowTier, frame->shadowPfn,
                               static_cast<uint64_t>(dst), frame->pfn);
        ++_stats.shadowMakes;
    }

    const Bytes bytes = frame->bytes();
    copy_cost += _machine.memModel().rawCost(src, bytes, AccessType::Read,
                                             _machine.currentSocket());
    copy_cost += _machine.memModel().rawCost(dst, bytes, AccessType::Write,
                                             _machine.currentSocket());
    fixed_cost += kPerPageOverhead * frame->pages().value();

    _stats.migratedPages += frame->pages();
    _stats.migratedPagesByClass[static_cast<unsigned>(frame->objClass)] +=
        frame->pages();
    _stats.promotedPages += frame->pages();
    ++_stats.txnCommits;
    return true;
}

uint64_t
MigrationEngine::promoteTransactional(const std::vector<FrameRef> &batch,
                                      TierId dst,
                                      Tick write_recency_window)
{
    Tick copy_cost{};
    Tick fixed_cost{};
    uint64_t moved_pages = 0;
    bool fail_fast = false;
    TraceBatch trace_batch(_machine.tracer());
    for (const FrameRef &ref : batch) {
        if (fail_fast)
            break;  // destination proven exhausted; no txn events
        if (!ref.valid()) {
            ++_stats.failedStale;
            continue;
        }
        Frame *frame = ref.get();
        if (frame->tier == dst)
            continue;
        if (promoteOneTransactional(frame, dst, write_recency_window,
                                    copy_cost, fixed_cost, fail_fast)) {
            moved_pages += frame->pages();
        }
    }
    _machine.backgroundTraffic(
        (copy_cost + fixed_cost) / static_cast<int64_t>(_parallelism));
    return moved_pages;
}

uint64_t
MigrationEngine::demoteWithShadows(const std::vector<FrameRef> &batch,
                                   TierId dst)
{
    Tick copy_cost{};
    Tick fixed_cost{};
    uint64_t moved_pages = 0;
    bool fail_fast = false;
    TraceBatch trace_batch(_machine.tracer());
    for (const FrameRef &ref : batch) {
        if (!ref.valid()) {
            ++_stats.failedStale;
            continue;
        }
        Frame *frame = ref.get();
        if (frame->tier == dst)
            continue;
        // A shadow only helps when it sits on the destination, its
        // tier is online, and no write dirtied the fast copy since
        // the promotion. Anything else is released up front so the
        // frame takes the normal copy path below.
        if (frame->hasShadow()) {
            if (!_tiers.tier(frame->shadowTier).online())
                _tiers.dropShadow(frame, ShadowDropReason::Offline);
            else if (frame->shadowTier != dst)
                _tiers.dropShadow(frame, ShadowDropReason::FrameMoved);
            else if (!frame->shadowClean())
                _tiers.dropShadow(frame, ShadowDropReason::Stale);
        }
        if (frame->hasShadow()) {
            ++_stats.attempts;
            const TierId src = frame->tier;
            const Pfn src_pfn = frame->pfn;
            const Pfn shadow_pfn = frame->shadowPfn;
            const MigrateResult result = _tiers.migrateIntoShadow(frame);
            if (result == MigrateResult::Ok) {
                ++_stats.movedFrames;
                // Clean shadow: the demotion is a remap, no copy.
                _machine.tracer().emit(TraceEventType::ShadowReuse, dst,
                                       shadow_pfn, src, src_pfn);
                _machine.tracer().emit(TraceEventType::MigStart, src,
                                       src_pfn, dst, shadow_pfn);
                _lru.onMigrated(frame, src);
                frame->scanMarks = 0;
                if (dst > src)
                    _lru.deactivate(frame);
                _machine.tracer().emit(TraceEventType::MigComplete, dst,
                                       shadow_pfn, frame->pages(),
                                       dst > src ? 1 : 0);
                fixed_cost += kPerPageOverhead * frame->pages().value();
                _stats.migratedPages += frame->pages();
                _stats.migratedPagesByClass[
                    static_cast<unsigned>(frame->objClass)] +=
                    frame->pages();
                if (dst > src)
                    _stats.demotedPages += frame->pages();
                else
                    _stats.promotedPages += frame->pages();
                ++_stats.shadowFreeDemotions;
                moved_pages += frame->pages();
                continue;
            }
            switch (result) {
              case MigrateResult::NotRelocatable:
                ++_stats.failedNotRelocatable;
                break;
              case MigrateResult::Pinned:
                ++_stats.failedPinned;
                break;
              case MigrateResult::Damped:
                ++_stats.failedDamped;
                break;
              case MigrateResult::Offline:
                ++_stats.failedOffline;
                break;
              case MigrateResult::SameTier:
                ++_stats.failedSameTier;
                break;
              default:
                break;
            }
            continue;
        }
        const uint64_t before = _stats.migratedPages;
        if (moveWithRetry(ref, dst, copy_cost, fixed_cost, fail_fast))
            moved_pages += _stats.migratedPages - before;
    }
    _machine.backgroundTraffic(
        (copy_cost + fixed_cost) / static_cast<int64_t>(_parallelism));
    return moved_pages;
}

bool
MigrationEngine::migrateOne(Frame *frame, TierId dst)
{
    Tick copy_cost{};
    Tick fixed_cost{};
    bool fail_fast = false;
    const bool ok = moveWithRetry(FrameRef(frame), dst, copy_cost,
                                  fixed_cost, fail_fast);
    _machine.backgroundTraffic(
        (copy_cost + fixed_cost) / static_cast<int64_t>(_parallelism));
    return ok;
}

uint64_t
MigrationEngine::offlineTier(TierId id)
{
    _tiers.setTierOnline(id, false);

    // Shadow copies parked on the tier would pin its buddy pages
    // forever; they are only an optimisation, so release them.
    _tiers.dropShadowsOn(id, ShadowDropReason::Offline);

    // Drain: every live frame resident on the tier is offered to the
    // remaining online tiers, fastest first. Destinations that prove
    // exhausted are skipped for the rest of the drain.
    std::vector<FrameRef> frames = _tiers.collectFramesOn(id);
    std::vector<bool> exhausted(_tiers.tierCount(), false);
    uint64_t moved_pages = 0;
    uint64_t stranded = 0;
    TraceBatch trace_batch(_machine.tracer());
    for (const FrameRef &ref : frames) {
        if (!ref.valid() || ref.get()->tier != id)
            continue;  // freed or relocated by async work meanwhile
        bool ok = false;
        for (size_t t = 0; t < _tiers.tierCount() && !ok; ++t) {
            const TierId dst = static_cast<TierId>(t);
            if (dst == id || exhausted[t] || !_tiers.tier(dst).online())
                continue;
            Tick copy_cost{};
            Tick fixed_cost{};
            bool fail_fast = false;
            const uint64_t before = _stats.migratedPages;
            ok = moveWithRetry(ref, dst, copy_cost, fixed_cost,
                               fail_fast);
            _machine.backgroundTraffic(
                (copy_cost + fixed_cost) /
                static_cast<int64_t>(_parallelism));
            if (ok) {
                moved_pages += _stats.migratedPages - before;
                break;
            }
            if (fail_fast)
                exhausted[t] = true;
            // A frame-local obstacle (freed, pinned, non-relocatable)
            // blocks every destination equally; stop offering it.
            if (!ref.valid() || !ref.get()->relocatable ||
                ref.get()->pinned()) {
                break;
            }
        }
        if (!ok && ref.valid() && ref.get()->tier == id)
            ++stranded;
    }
    _machine.tracer().emit(TraceEventType::TierDrain,
                           static_cast<uint64_t>(id), moved_pages,
                           stranded);
    return stranded;
}

void
MigrationEngine::onlineTier(TierId id)
{
    _tiers.setTierOnline(id, true);
}

void
MigrationEngine::scheduleTierEvents()
{
    for (const TierFaultEvent &event : _machine.faults().spec().tierEvents) {
        _machine.events().schedule(event.at, [this, event] {
            if (event.offline)
                offlineTier(event.tier);
            else
                onlineTier(event.tier);
        });
    }
    for (const PoisonStormEvent &storm :
         _machine.faults().spec().poisonStorms) {
        for (uint64_t burst = 0; burst < storm.repeat; ++burst) {
            const Tick at =
                storm.at + storm.every * static_cast<int64_t>(burst);
            _machine.events().schedule(at, [this, storm] {
                firePoisonStorm(storm.tier, storm.frames);
            });
        }
    }
}

void
MigrationEngine::emitDataLoss(Frame *frame, DataLossReason reason)
{
    ++_poisonStats.dataLoss;
    _machine.tracer().emit(TraceEventType::DataLoss, frame->tier,
                           frame->pfn, static_cast<uint64_t>(reason),
                           static_cast<uint64_t>(frame->objClass));
}

bool
MigrationEngine::poisonFrame(Frame *frame, PoisonOrigin origin)
{
    if (frame == nullptr || frame->tier == kInvalidTier || frame->poisoned)
        return false;

    frame->poisoned = true;
    const TierId src = frame->tier;
    ++_poisonStats.poisonedFrames;
    if (origin == PoisonOrigin::Storm)
        ++_poisonStats.stormFrames;
    _machine.tracer().emit(TraceEventType::FramePoison, src, frame->pfn,
                           static_cast<uint64_t>(origin),
                           static_cast<uint64_t>(frame->objClass));
    _tiers.recordTierError(src);

    // Recovery ladder, cheapest source first. Each leg fully resolves
    // the frame: either its bytes land on a healthy tier or a
    // DataLoss records the SIGBUS. The poisoned block quarantines
    // immediately on evacuation, or at free time when stuck in place.
    Tick copy_cost{};
    Tick fixed_cost{};
    bool recovered = false;
    if (!frame->relocatable || frame->pinned()) {
        // Unmovable: the error stays resident until the frame is
        // released; its block quarantines on free.
        emitDataLoss(frame, DataLossReason::Unmovable);
    } else if (frame->hasShadow() && frame->shadowClean() &&
               frame->shadowTier != src &&
               _tiers.tier(frame->shadowTier).online()) {
        recovered = recoverViaShadow(frame, fixed_cost);
    } else if (_rereadProbe != nullptr && _rereadProbe(_rereadCtx, frame)) {
        recovered = recoverViaReread(frame, copy_cost, fixed_cost);
    } else {
        // No clean shadow and no backing copy: the bytes are gone.
        emitDataLoss(frame, DataLossReason::NoSource);
    }

    const Tick total =
        (copy_cost + fixed_cost) / static_cast<int64_t>(_parallelism);
    if (total > Tick{})
        _machine.backgroundTraffic(total);
    notifyPoisonOwner(frame, src, !recovered);
    return recovered;
}

bool
MigrationEngine::recoverViaShadow(Frame *frame, Tick &fixed_cost)
{
    const TierId src = frame->tier;
    const Pfn src_pfn = frame->pfn;
    const unsigned order = frame->order;
    const TierId dst = frame->shadowTier;
    const Pfn shadow_pfn = frame->shadowPfn;
    const MigrateResult result = _tiers.evacuateIntoShadow(frame);
    // The caller pre-checked every failure leg (relocatable, unpinned,
    // distinct online shadow tier), so adoption cannot fail.
    KLOC_ASSERT(result == MigrateResult::Ok, "shadow recovery failed: %s",
                migrateResultName(result));
    _machine.tracer().emit(TraceEventType::ShadowReuse, dst, shadow_pfn,
                           src, src_pfn);
    _machine.tracer().emit(TraceEventType::MigStart, src, src_pfn, dst,
                           shadow_pfn);
    _lru.onMigrated(frame, src);
    frame->scanMarks = 0;
    if (dst > src)
        _lru.deactivate(frame);
    _machine.tracer().emit(TraceEventType::MigComplete, dst, shadow_pfn,
                           frame->pages(), dst > src ? 1 : 0);
    _tiers.noteQuarantined(src, src_pfn, order);
    _machine.tracer().emit(TraceEventType::MemRecover,
                           traceFrameKey(dst, shadow_pfn),
                           traceFrameKey(src, src_pfn),
                           static_cast<uint64_t>(RecoverySource::Shadow));
    fixed_cost += kPerPageOverhead * frame->pages().value();
    ++_poisonStats.recoveredShadow;
    return true;
}

bool
MigrationEngine::recoverViaReread(Frame *frame, Tick &copy_cost,
                                  Tick &fixed_cost)
{
    const TierId src = frame->tier;
    const Pfn src_pfn = frame->pfn;
    const unsigned order = frame->order;

    // Land the replacement frame on the fastest online tier with
    // room; recovery placement is not a policy decision.
    MigrateResult result = MigrateResult::NoSpace;
    for (size_t t = 0; t < _tiers.tierCount(); ++t) {
        const TierId dst_id = static_cast<TierId>(t);
        if (dst_id == src || !_tiers.tier(dst_id).online())
            continue;
        result = _tiers.evacuate(frame, dst_id);
        if (result == MigrateResult::Ok)
            break;
    }
    if (result != MigrateResult::Ok) {
        // Nowhere to rebuild the page: poisoned in place, block
        // quarantines on free.
        emitDataLoss(frame, DataLossReason::NoSpace);
        return false;
    }
    const TierId dst = frame->tier;
    const Pfn dst_pfn = frame->pfn;
    _machine.tracer().emit(TraceEventType::MigStart, src, src_pfn, dst,
                           dst_pfn);
    _lru.onMigrated(frame, src);
    frame->scanMarks = 0;
    if (dst > src)
        _lru.deactivate(frame);
    _machine.tracer().emit(TraceEventType::MigComplete, dst, dst_pfn,
                           frame->pages(), dst > src ? 1 : 0);
    _tiers.noteQuarantined(src, src_pfn, order);

    // The destination write is copy traffic; the device read inside
    // the hook charges itself through the block layer. Pin the frame
    // across the read — the I/O charge can dispatch daemon work that
    // would otherwise migrate or free it mid-recovery.
    copy_cost += _machine.memModel().rawCost(dst, frame->bytes(),
                                             AccessType::Write,
                                             _machine.currentSocket());
    fixed_cost += kPerPageOverhead * frame->pages().value();
    ++frame->pinCount;
    _machine.tracer().emit(TraceEventType::FramePin, dst, dst_pfn);
    const bool read_ok = _rereadFn != nullptr && _rereadFn(_rereadCtx, frame);
    _machine.tracer().emit(TraceEventType::FrameUnpin, dst, dst_pfn);
    --frame->pinCount;

    if (!read_ok) {
        // The frame moved but its bytes did not: the device gave up.
        emitDataLoss(frame, DataLossReason::RereadFailed);
        return false;
    }
    _machine.tracer().emit(TraceEventType::MemRecover,
                           traceFrameKey(dst, dst_pfn),
                           traceFrameKey(src, src_pfn),
                           static_cast<uint64_t>(RecoverySource::Reread));
    ++_poisonStats.recoveredReread;
    return true;
}

void
MigrationEngine::notifyPoisonOwner(Frame *frame, TierId origin_tier,
                                   bool data_lost)
{
    if (_poisonNotifyFn != nullptr)
        _poisonNotifyFn(_poisonNotifyCtx, frame, origin_tier, data_lost);
}

void
MigrationEngine::firePoisonStorm(TierId tier, uint64_t frames)
{
    if (tier < 0 || static_cast<size_t>(tier) >= _tiers.tierCount()) {
        // Specs are written against arbitrary topologies; a storm
        // aimed at a tier this machine lacks is a no-op, recorded.
        _machine.tracer().emit(TraceEventType::PoisonStorm,
                               static_cast<uint64_t>(tier), frames, 0);
        return;
    }
    const std::vector<FrameRef> victims = _tiers.collectFramesOn(tier);
    uint64_t fired = 0;
    for (const FrameRef &ref : victims) {
        if (fired >= frames)
            break;
        // Containment charges time, and charged time can run async
        // work that frees or moves later victims — re-validate.
        if (!ref.valid() || ref.get()->tier != tier ||
            ref.get()->poisoned) {
            continue;
        }
        poisonFrame(ref.get(), PoisonOrigin::Storm);
        ++fired;
    }
    _machine.tracer().emit(TraceEventType::PoisonStorm,
                           static_cast<uint64_t>(tier), frames, fired);
}

void
MigrationEngine::onTierHealth(TierId tier, TierHealth from, TierHealth to)
{
    const size_t idx = static_cast<size_t>(tier);
    if (_healthOfflined.size() <= idx)
        _healthOfflined.resize(idx + 1, 0);
    // Transitions arrive synchronously from recordTierError() or the
    // health tick — possibly mid-scan or mid-batch — so the heavy
    // drain/readmission runs from the event queue, re-checking health
    // at fire time.
    if (to == TierHealth::Failed) {
        _machine.events().schedule(_machine.now(), [this, tier, idx] {
            if (_tiers.health(tier) != TierHealth::Failed ||
                !_tiers.tier(tier).online()) {
                return;
            }
            // Never drain the last online tier: a failed-but-present
            // tier still serves; an empty machine panics on the next
            // kernel allocation. The tier is readmitted (or drained)
            // once another tier comes back.
            bool other_online = false;
            for (size_t t = 0; t < _tiers.tierCount(); ++t) {
                if (t != idx &&
                    _tiers.tier(static_cast<TierId>(t)).online()) {
                    other_online = true;
                    break;
                }
            }
            if (!other_online)
                return;
            _healthOfflined[idx] = 1;
            offlineTier(tier);
        });
    } else if (from == TierHealth::Failed) {
        _machine.events().schedule(_machine.now(), [this, tier, idx] {
            // Readmit only tiers this engine drained for health;
            // operator-offlined tiers stay down until their own
            // online event.
            if (_tiers.health(tier) != TierHealth::Failed &&
                _healthOfflined[idx] != 0 && !_tiers.tier(tier).online()) {
                _healthOfflined[idx] = 0;
                onlineTier(tier);
            }
        });
    }
}

} // namespace kloc
