#include "mem/migration.hh"

#include "base/logging.hh"

namespace kloc {

void
MigrationEngine::setParallelism(unsigned width)
{
    KLOC_ASSERT(width >= 1, "migration parallelism below 1");
    _parallelism = width;
}

bool
MigrationEngine::moveFrame(Frame *frame, TierId dst, Tick &copy_cost,
                           Tick &fixed_cost)
{
    ++_stats.attempts;
    if (!frame->relocatable) {
        ++_stats.failedNotRelocatable;
        return false;
    }
    const TierId src = frame->tier;
    const Pfn src_pfn = frame->pfn;
    if (!_tiers.migrate(frame, dst)) {
        // TierManager::migrate fails on pin, damping, same-tier, or
        // destination exhaustion; only exhaustion is common here.
        ++_stats.failedNoSpace;
        return false;
    }
    _machine.tracer().emit(TraceEventType::MigStart, src, src_pfn, dst,
                           frame->pfn);
    _lru.onMigrated(frame, src);
    frame->scanMarks = 0;
    if (dst > src) {
        // Demotion resets LRU standing: the page must prove reuse
        // before any policy promotes it again.
        _lru.deactivate(frame);
    }
    _machine.tracer().emit(TraceEventType::MigComplete, dst, frame->pfn,
                           frame->pages(), dst > src ? 1 : 0);

    const Bytes bytes = frame->bytes();
    copy_cost += _machine.memModel().rawCost(src, bytes, AccessType::Read,
                                             _machine.currentSocket());
    copy_cost += _machine.memModel().rawCost(dst, bytes, AccessType::Write,
                                             _machine.currentSocket());
    fixed_cost += kPerPageOverhead * static_cast<Tick>(frame->pages());

    _stats.migratedPages += frame->pages();
    _stats.migratedPagesByClass[static_cast<unsigned>(frame->objClass)] +=
        frame->pages();
    if (dst > src)
        _stats.demotedPages += frame->pages();
    else
        _stats.promotedPages += frame->pages();
    return true;
}

uint64_t
MigrationEngine::migrate(const std::vector<FrameRef> &batch, TierId dst)
{
    Tick copy_cost = 0;
    Tick fixed_cost = 0;
    uint64_t moved_pages = 0;
    for (const FrameRef &ref : batch) {
        if (!ref.valid()) {
            ++_stats.failedStale;
            continue;
        }
        Frame *frame = ref.get();
        if (frame->tier == dst)
            continue;
        const uint64_t before = _stats.migratedPages;
        if (moveFrame(frame, dst, copy_cost, fixed_cost))
            moved_pages += _stats.migratedPages - before;
    }
    // Migration threads run on dedicated CPUs (§5): both the copy
    // traffic and the unmap/remap work spread across them.
    const Tick total =
        (copy_cost + fixed_cost) / static_cast<Tick>(_parallelism);
    _machine.backgroundTraffic(total);
    return moved_pages;
}

bool
MigrationEngine::migrateOne(Frame *frame, TierId dst)
{
    Tick copy_cost = 0;
    Tick fixed_cost = 0;
    const bool ok = moveFrame(frame, dst, copy_cost, fixed_cost);
    _machine.backgroundTraffic(
        (copy_cost + fixed_cost) / static_cast<Tick>(_parallelism));
    return ok;
}

} // namespace kloc
