/**
 * @file
 * Page migration engine.
 *
 * Charges the cost of moving frames between tiers: per-page copy
 * traffic (read from source, write to destination at raw media
 * speed) plus the fixed kernel overhead of unmap/TLB-shootdown/remap.
 * Nimble's parallelised page copy (§6, Table 5) is modelled as a
 * divisor on copy traffic; the fixed per-page kernel work does not
 * parallelise.
 *
 * Direction accounting (fast->slow vs. slow->fast) keys Fig. 5b.
 */

#ifndef KLOC_MEM_MIGRATION_HH
#define KLOC_MEM_MIGRATION_HH

#include <cstdint>
#include <vector>

#include "mem/lru.hh"
#include "mem/tier_manager.hh"
#include "sim/machine.hh"

namespace kloc {

/** Counters describing all migrations performed so far. */
struct MigrationStats
{
    uint64_t attempts = 0;
    uint64_t migratedPages = 0;
    uint64_t demotedPages = 0;    ///< toward slower tiers (higher id)
    uint64_t promotedPages = 0;   ///< toward faster tiers (lower id)
    uint64_t failedNotRelocatable = 0;
    uint64_t failedNoSpace = 0;
    uint64_t failedStale = 0;     ///< freed before the move happened
    uint64_t migratedPagesByClass[kNumObjClasses] = {};
};

/** Moves batches of frames between tiers and charges their cost. */
class MigrationEngine
{
  public:
    /** Fixed kernel work per migrated page (unmap, TLB, remap). */
    static constexpr Tick kPerPageOverhead = 1500;

    MigrationEngine(Machine &machine, TierManager &tiers, LruEngine &lru)
        : _machine(machine), _tiers(tiers), _lru(lru)
    {}

    /**
     * Parallel page-copy width (Nimble's optimisation). 1 means the
     * stock kernel's serial copy.
     */
    void setParallelism(unsigned width);

    unsigned parallelism() const { return _parallelism; }

    /**
     * Migrate every still-valid frame in @p batch to @p dst.
     * Cost is charged once, after the whole batch has moved, so no
     * asynchronous work can free batch members mid-flight.
     * @return pages successfully moved.
     */
    uint64_t migrate(const std::vector<FrameRef> &batch, TierId dst);

    /** Convenience for a single frame. */
    bool migrateOne(Frame *frame, TierId dst);

    const MigrationStats &stats() const { return _stats; }

    void resetStats() { _stats = MigrationStats{}; }

  private:
    /** Move one frame, accumulating cost; no charging. */
    bool moveFrame(Frame *frame, TierId dst, Tick &copy_cost,
                   Tick &fixed_cost);

    Machine &_machine;
    TierManager &_tiers;
    LruEngine &_lru;
    unsigned _parallelism = 1;
    MigrationStats _stats;
};

} // namespace kloc

#endif // KLOC_MEM_MIGRATION_HH
