/**
 * @file
 * Page migration engine.
 *
 * Charges the cost of moving frames between tiers: per-page copy
 * traffic (read from source, write to destination at raw media
 * speed) plus the fixed kernel overhead of unmap/TLB-shootdown/remap.
 * Nimble's parallelised page copy (§6, Table 5) is modelled as a
 * divisor on copy traffic; the fixed per-page kernel work does not
 * parallelise.
 *
 * Transient destination exhaustion (the target tier momentarily out
 * of frames, including injected faults) is retried with bounded
 * exponential backoff; a frame whose move is abandoned stays where
 * it is and is rotated to the hot end of its LRU list so the next
 * scan picks different candidates. Every failure is accounted per
 * reason in MigrationStats.
 *
 * The engine also drives tier offlining: offlineTier() flips the
 * tier's online flag and drains its resident frames to the remaining
 * online tiers, leaving pinned/non-relocatable frames stranded until
 * they are released.
 *
 * Direction accounting (fast->slow vs. slow->fast) keys Fig. 5b.
 */

#ifndef KLOC_MEM_MIGRATION_HH
#define KLOC_MEM_MIGRATION_HH

#include <cstdint>
#include <vector>

#include "fault/fault.hh"
#include "mem/lru.hh"
#include "mem/tier_manager.hh"
#include "sim/machine.hh"

namespace kloc {

/** Counters describing all migrations performed so far. */
struct MigrationStats
{
    uint64_t attempts = 0;
    uint64_t migratedPages = 0;
    uint64_t demotedPages = 0;    ///< toward slower tiers (higher id)
    uint64_t promotedPages = 0;   ///< toward faster tiers (lower id)
    uint64_t failedNotRelocatable = 0;
    uint64_t failedNoSpace = 0;   ///< abandons after retries exhausted
    uint64_t failedStale = 0;     ///< freed before the move happened
    uint64_t failedPinned = 0;    ///< in-flight I/O held the frame
    uint64_t failedDamped = 0;    ///< ping-pong damping retained it
    uint64_t failedOffline = 0;   ///< destination tier was offline
    uint64_t noSpaceRetries = 0;  ///< backoff retries (not failures)
    uint64_t migratedPagesByClass[kNumObjClasses] = {};
};

/** Moves batches of frames between tiers and charges their cost. */
class MigrationEngine
{
  public:
    /** Fixed kernel work per migrated page (unmap, TLB, remap). */
    static constexpr Tick kPerPageOverhead{1500};

    /** Retries after a NoSpace failure before abandoning the move. */
    static constexpr unsigned kMaxNoSpaceRetries = 3;

    /** First retry delay; doubles per attempt. */
    static constexpr Tick kRetryBackoffBase = 50 * kMicrosecond;

    MigrationEngine(Machine &machine, TierManager &tiers, LruEngine &lru)
        : _machine(machine), _tiers(tiers), _lru(lru)
    {}

    /**
     * Parallel page-copy width (Nimble's optimisation). 1 means the
     * stock kernel's serial copy.
     */
    void setParallelism(unsigned width);

    unsigned parallelism() const { return _parallelism; }

    /**
     * Migrate every still-valid frame in @p batch to @p dst.
     * Cost is charged once, after the whole batch has moved, so no
     * asynchronous work can free batch members mid-flight — except
     * during retry backoff, which charges time and re-validates the
     * frame afterwards.
     * @return pages successfully moved.
     */
    uint64_t migrate(const std::vector<FrameRef> &batch, TierId dst);

    /** Convenience for a single frame. */
    bool migrateOne(Frame *frame, TierId dst);

    /**
     * Take @p id offline: no new allocations land there, and its
     * resident relocatable frames are drained to the remaining
     * online tiers (ascending id order). Pinned or non-relocatable
     * frames stay stranded on the offline tier until released.
     * @return frames left stranded.
     */
    uint64_t offlineTier(TierId id);

    /** Bring @p id back online. */
    void onlineTier(TierId id);

    /**
     * Schedule the fault spec's tier offline/online events on the
     * machine's event queue. Call once after configuring faults.
     */
    void scheduleTierEvents();

    const MigrationStats &stats() const { return _stats; }

    void resetStats() { _stats = MigrationStats{}; }

  private:
    /** Move one frame, accumulating cost; no charging, no retry. */
    MigrateResult moveFrame(Frame *frame, TierId dst, Tick &copy_cost,
                            Tick &fixed_cost);

    /**
     * moveFrame plus NoSpace retry/backoff/abandon handling.
     * @p fail_fast suppresses retries (the caller already proved the
     * destination exhausted within this batch).
     * @return true when the frame moved.
     */
    bool moveWithRetry(const FrameRef &ref, TierId dst, Tick &copy_cost,
                       Tick &fixed_cost, bool &fail_fast);

    Machine &_machine;
    TierManager &_tiers;
    LruEngine &_lru;
    unsigned _parallelism = 1;
    MigrationStats _stats;
};

} // namespace kloc

#endif // KLOC_MEM_MIGRATION_HH
