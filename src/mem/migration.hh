/**
 * @file
 * Page migration engine.
 *
 * Charges the cost of moving frames between tiers: per-page copy
 * traffic (read from source, write to destination at raw media
 * speed) plus the fixed kernel overhead of unmap/TLB-shootdown/remap.
 * Nimble's parallelised page copy (§6, Table 5) is modelled as a
 * divisor on copy traffic; the fixed per-page kernel work does not
 * parallelise.
 *
 * Transient destination exhaustion (the target tier momentarily out
 * of frames, including injected faults) is retried with bounded
 * exponential backoff; a frame whose move is abandoned stays where
 * it is and is rotated to the hot end of its LRU list so the next
 * scan picks different candidates. Every failure is accounted per
 * reason in MigrationStats.
 *
 * The engine also drives tier offlining: offlineTier() flips the
 * tier's online flag and drains its resident frames to the remaining
 * online tiers, leaving pinned/non-relocatable frames stranded until
 * they are released.
 *
 * Direction accounting (fast->slow vs. slow->fast) keys Fig. 5b.
 */

#ifndef KLOC_MEM_MIGRATION_HH
#define KLOC_MEM_MIGRATION_HH

#include <cstdint>
#include <vector>

#include "fault/fault.hh"
#include "mem/lru.hh"
#include "mem/tier_manager.hh"
#include "sim/machine.hh"

namespace kloc {

/** Counters describing all migrations performed so far. */
struct MigrationStats
{
    uint64_t attempts = 0;
    uint64_t migratedPages = 0;
    uint64_t demotedPages = 0;    ///< toward slower tiers (higher id)
    uint64_t promotedPages = 0;   ///< toward faster tiers (lower id)
    uint64_t failedNotRelocatable = 0;
    uint64_t failedNoSpace = 0;   ///< abandons after retries exhausted
    uint64_t failedStale = 0;     ///< freed before the move happened
    uint64_t failedPinned = 0;    ///< in-flight I/O held the frame
    uint64_t failedDamped = 0;    ///< ping-pong damping retained it
    uint64_t failedOffline = 0;   ///< destination tier was offline
    uint64_t noSpaceRetries = 0;  ///< backoff retries (not failures)
    uint64_t txnBegins = 0;       ///< transactional copies opened
    uint64_t txnCommits = 0;      ///< transactional copies committed
    uint64_t txnAbortedWrite = 0; ///< aborted on recent write traffic
    uint64_t txnAbortedNoSpace = 0; ///< aborted on destination pressure
    uint64_t txnAbortedBlocked = 0; ///< aborted on a frame obstacle
    uint64_t shadowMakes = 0;     ///< promotions that kept a shadow
    uint64_t shadowFreeDemotions = 0; ///< demotions served by a shadow
    uint64_t migratedPagesByClass[kNumObjClasses] = {};
};

/** Why a transactional copy aborted (MigTxnAbort arg). */
enum class TxnAbortReason : uint8_t
{
    WriteRecent = 0, ///< write traffic dirtied the page mid-copy
    NoSpace,         ///< destination allocator exhausted
    Blocked,         ///< pinned / non-relocatable / damped / offline
};

const char *txnAbortReasonName(TxnAbortReason reason);

/** Moves batches of frames between tiers and charges their cost. */
class MigrationEngine
{
  public:
    /** Fixed kernel work per migrated page (unmap, TLB, remap). */
    static constexpr Tick kPerPageOverhead{1500};

    /** Retries after a NoSpace failure before abandoning the move. */
    static constexpr unsigned kMaxNoSpaceRetries = 3;

    /** First retry delay; doubles per attempt. */
    static constexpr Tick kRetryBackoffBase = 50 * kMicrosecond;

    MigrationEngine(Machine &machine, TierManager &tiers, LruEngine &lru)
        : _machine(machine), _tiers(tiers), _lru(lru)
    {}

    /**
     * Parallel page-copy width (Nimble's optimisation). 1 means the
     * stock kernel's serial copy.
     */
    void setParallelism(unsigned width);

    unsigned parallelism() const { return _parallelism; }

    /**
     * Migrate every still-valid frame in @p batch to @p dst.
     * Cost is charged once, after the whole batch has moved, so no
     * asynchronous work can free batch members mid-flight — except
     * during retry backoff, which charges time and re-validates the
     * frame afterwards.
     * @return pages successfully moved.
     */
    uint64_t migrate(const std::vector<FrameRef> &batch, TierId dst);

    /** Convenience for a single frame. */
    bool migrateOne(Frame *frame, TierId dst);

    /**
     * Nomad-style transactional promotion of @p batch to @p dst.
     *
     * Each frame's copy opens a MigTxnBegin window. The copy aborts
     * cheaply — charging only the partial source read, never the
     * destination write — when the page saw write traffic within
     * @p write_recency_window (it would be dirtied mid-copy), when
     * the destination proves exhausted, or when a frame-local
     * obstacle blocks the move. A committed copy keeps the source
     * pages allocated as a non-exclusive shadow while the shadow
     * budget allows, so a later clean demotion is a free remap.
     * @return pages successfully promoted.
     */
    uint64_t promoteTransactional(const std::vector<FrameRef> &batch,
                                  TierId dst, Tick write_recency_window);

    /**
     * Shadow-aware demotion of @p batch to @p dst: a frame whose
     * clean shadow already lives on @p dst re-homes into it for just
     * the fixed remap overhead (no copy traffic); stale or unusable
     * shadows are dropped and the frame takes the normal copy path.
     * @return pages successfully demoted.
     */
    uint64_t demoteWithShadows(const std::vector<FrameRef> &batch,
                               TierId dst);

    /**
     * Cap on pages held by shadow copies; promotions beyond it fall
     * back to plain exclusive moves. Unlimited by default.
     */
    void setShadowBudget(FrameCount pages) { _shadowBudget = pages.value(); }

    uint64_t shadowBudget() const { return _shadowBudget; }

    /**
     * Take @p id offline: no new allocations land there, and its
     * resident relocatable frames are drained to the remaining
     * online tiers (ascending id order). Pinned or non-relocatable
     * frames stay stranded on the offline tier until released.
     * @return frames left stranded.
     */
    uint64_t offlineTier(TierId id);

    /** Bring @p id back online. */
    void onlineTier(TierId id);

    /**
     * Schedule the fault spec's tier offline/online events on the
     * machine's event queue. Call once after configuring faults.
     */
    void scheduleTierEvents();

    const MigrationStats &stats() const { return _stats; }

    void resetStats() { _stats = MigrationStats{}; }

  private:
    /** Move one frame, accumulating cost; no charging, no retry. */
    MigrateResult moveFrame(Frame *frame, TierId dst, Tick &copy_cost,
                            Tick &fixed_cost);

    /**
     * moveFrame plus NoSpace retry/backoff/abandon handling.
     * @p fail_fast suppresses retries (the caller already proved the
     * destination exhausted within this batch).
     * @return true when the frame moved.
     */
    bool moveWithRetry(const FrameRef &ref, TierId dst, Tick &copy_cost,
                       Tick &fixed_cost, bool &fail_fast);

    /** Transactional copy of one frame; see promoteTransactional. */
    bool promoteOneTransactional(Frame *frame, TierId dst,
                                 Tick write_recency_window,
                                 Tick &copy_cost, Tick &fixed_cost,
                                 bool &fail_fast);

    Machine &_machine;
    TierManager &_tiers;
    LruEngine &_lru;
    unsigned _parallelism = 1;
    uint64_t _shadowBudget = ~0ULL;
    MigrationStats _stats;
};

} // namespace kloc

#endif // KLOC_MEM_MIGRATION_HH
