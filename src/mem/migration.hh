/**
 * @file
 * Page migration engine.
 *
 * Charges the cost of moving frames between tiers: per-page copy
 * traffic (read from source, write to destination at raw media
 * speed) plus the fixed kernel overhead of unmap/TLB-shootdown/remap.
 * Nimble's parallelised page copy (§6, Table 5) is modelled as a
 * divisor on copy traffic; the fixed per-page kernel work does not
 * parallelise.
 *
 * Transient destination exhaustion (the target tier momentarily out
 * of frames, including injected faults) is retried with bounded
 * exponential backoff; a frame whose move is abandoned stays where
 * it is and is rotated to the hot end of its LRU list so the next
 * scan picks different candidates. Every failure is accounted per
 * reason in MigrationStats.
 *
 * The engine also drives tier offlining: offlineTier() flips the
 * tier's online flag and drains its resident frames to the remaining
 * online tiers, leaving pinned/non-relocatable frames stranded until
 * they are released.
 *
 * Direction accounting (fast->slow vs. slow->fast) keys Fig. 5b.
 */

#ifndef KLOC_MEM_MIGRATION_HH
#define KLOC_MEM_MIGRATION_HH

#include <cstdint>
#include <vector>

#include "fault/fault.hh"
#include "mem/lru.hh"
#include "mem/tier_manager.hh"
#include "sim/machine.hh"

namespace kloc {

/** Counters describing all migrations performed so far. */
struct MigrationStats
{
    uint64_t attempts = 0;
    uint64_t movedFrames = 0;     ///< attempts that moved a frame
    uint64_t migratedPages = 0;
    uint64_t demotedPages = 0;    ///< toward slower tiers (higher id)
    uint64_t promotedPages = 0;   ///< toward faster tiers (lower id)
    uint64_t failedNotRelocatable = 0;
    uint64_t failedNoSpace = 0;   ///< abandons after retries exhausted
    uint64_t failedStale = 0;     ///< freed before the move happened
    uint64_t failedPinned = 0;    ///< in-flight I/O held the frame
    uint64_t failedDamped = 0;    ///< ping-pong damping retained it
    uint64_t failedOffline = 0;   ///< destination tier was offline
    uint64_t failedSameTier = 0;  ///< already resident on destination
    uint64_t failedPoisoned = 0;  ///< poison fault fired mid-copy
    uint64_t noSpaceRetries = 0;  ///< backoff retries (not failures)
    uint64_t txnBegins = 0;       ///< transactional copies opened
    uint64_t txnCommits = 0;      ///< transactional copies committed
    uint64_t txnAbortedWrite = 0; ///< aborted on recent write traffic
    uint64_t txnAbortedNoSpace = 0; ///< aborted on destination pressure
    uint64_t txnAbortedBlocked = 0; ///< aborted on a frame obstacle
    uint64_t shadowMakes = 0;     ///< promotions that kept a shadow
    uint64_t shadowFreeDemotions = 0; ///< demotions served by a shadow
    uint64_t migratedPagesByClass[kNumObjClasses] = {};

    /**
     * Every attempt resolves into exactly one outcome counter. The
     * conformance suite asserts this identity; failedStale sits
     * outside it (stale frames are rejected before an attempt opens)
     * and txnAbortedNoSpace double-counts into failedNoSpace by
     * design (a transactional NoSpace abort is also an abandonment).
     */
    uint64_t
    resolvedAttempts() const
    {
        return movedFrames + failedNotRelocatable + failedPinned +
               failedDamped + failedSameTier + failedOffline +
               failedPoisoned + failedNoSpace + noSpaceRetries +
               txnAbortedWrite;
    }
};

/** Counters describing the hwpoison containment machinery. */
struct PoisonStats
{
    uint64_t poisonedFrames = 0;   ///< FramePoison events emitted
    uint64_t stormFrames = 0;      ///< poisoned by poison_storm bursts
    uint64_t recoveredShadow = 0;  ///< recovered from a clean shadow
    uint64_t recoveredReread = 0;  ///< recovered by device re-read
    uint64_t dataLoss = 0;         ///< DataLoss events emitted
};

/** Why a transactional copy aborted (MigTxnAbort arg). */
enum class TxnAbortReason : uint8_t
{
    WriteRecent = 0, ///< write traffic dirtied the page mid-copy
    NoSpace,         ///< destination allocator exhausted
    Blocked,         ///< pinned / non-relocatable / damped / offline
};

const char *txnAbortReasonName(TxnAbortReason reason);

/** Moves batches of frames between tiers and charges their cost. */
class MigrationEngine
{
  public:
    /** Fixed kernel work per migrated page (unmap, TLB, remap). */
    static constexpr Tick kPerPageOverhead{1500};

    /** Retries after a NoSpace failure before abandoning the move. */
    static constexpr unsigned kMaxNoSpaceRetries = 3;

    /** First retry delay; doubles per attempt. */
    static constexpr Tick kRetryBackoffBase = 50 * kMicrosecond;

    MigrationEngine(Machine &machine, TierManager &tiers, LruEngine &lru);

    /**
     * Parallel page-copy width (Nimble's optimisation). 1 means the
     * stock kernel's serial copy.
     */
    void setParallelism(unsigned width);

    unsigned parallelism() const { return _parallelism; }

    /**
     * Migrate every still-valid frame in @p batch to @p dst.
     * Cost is charged once, after the whole batch has moved, so no
     * asynchronous work can free batch members mid-flight — except
     * during retry backoff, which charges time and re-validates the
     * frame afterwards.
     * @return pages successfully moved.
     */
    uint64_t migrate(const std::vector<FrameRef> &batch, TierId dst);

    /** Convenience for a single frame. */
    bool migrateOne(Frame *frame, TierId dst);

    /**
     * Nomad-style transactional promotion of @p batch to @p dst.
     *
     * Each frame's copy opens a MigTxnBegin window. The copy aborts
     * cheaply — charging only the partial source read, never the
     * destination write — when the page saw write traffic within
     * @p write_recency_window (it would be dirtied mid-copy), when
     * the destination proves exhausted, or when a frame-local
     * obstacle blocks the move. A committed copy keeps the source
     * pages allocated as a non-exclusive shadow while the shadow
     * budget allows, so a later clean demotion is a free remap.
     * @return pages successfully promoted.
     */
    uint64_t promoteTransactional(const std::vector<FrameRef> &batch,
                                  TierId dst, Tick write_recency_window);

    /**
     * Shadow-aware demotion of @p batch to @p dst: a frame whose
     * clean shadow already lives on @p dst re-homes into it for just
     * the fixed remap overhead (no copy traffic); stale or unusable
     * shadows are dropped and the frame takes the normal copy path.
     * @return pages successfully demoted.
     */
    uint64_t demoteWithShadows(const std::vector<FrameRef> &batch,
                               TierId dst);

    /**
     * Cap on pages held by shadow copies; promotions beyond it fall
     * back to plain exclusive moves. Unlimited by default.
     */
    void setShadowBudget(FrameCount pages) { _shadowBudget = pages.value(); }

    uint64_t shadowBudget() const { return _shadowBudget; }

    /**
     * Take @p id offline: no new allocations land there, and its
     * resident relocatable frames are drained to the remaining
     * online tiers (ascending id order). Pinned or non-relocatable
     * frames stay stranded on the offline tier until released.
     * @return frames left stranded.
     */
    uint64_t offlineTier(TierId id);

    /** Bring @p id back online. */
    void onlineTier(TierId id);

    /**
     * Schedule the fault spec's tier offline/online events and
     * poison-storm bursts on the machine's event queue. Call once
     * after configuring faults.
     */
    void scheduleTierEvents();

    /**
     * Contain an uncorrectable error on @p frame (hwpoison).
     *
     * The frame's tier records the error against its health EWMA and
     * recovery is attempted in order: a clean Nomad shadow is
     * re-adopted for free; a re-readable page-cache page is evacuated
     * to a fresh frame and re-read through the block layer; otherwise
     * a SIGBUS-like DataLoss is emitted and the owner is notified.
     * Either way the poisoned block ends quarantined — immediately
     * when the frame evacuates, or on free when it is stuck in place
     * (pinned, non-relocatable, or nowhere to go).
     *
     * Idempotent: an already-poisoned frame is left alone.
     * @return true when the frame's bytes were recovered.
     */
    bool poisonFrame(Frame *frame, PoisonOrigin origin);

    /**
     * Register the page-cache re-read recovery path. @p probe
     * answers whether @p frame's bytes can be re-read from backing
     * storage (clean page-cache page); @p reread performs the read
     * through the block layer, charging device time, and reports
     * success. The FileSystem registers itself at construction.
     */
    void
    setRereadHook(bool (*probe)(void *, Frame *),
                  bool (*reread)(void *, Frame *), void *ctx)
    {
        _rereadProbe = probe;
        _rereadFn = reread;
        _rereadCtx = ctx;
    }

    /**
     * Register the owner-notification hook, called once per poisoned
     * frame after containment resolves: @p origin_tier is where the
     * error struck (the frame may have evacuated elsewhere since) and
     * @p data_lost says whether the bytes survived. The KlocManager
     * uses it to mark the owning KLOC damaged and soft-offline its
     * sibling objects away from the erroring tier.
     */
    void
    setPoisonNotifyHook(void (*fn)(void *, Frame *, TierId origin_tier,
                                   bool data_lost),
                        void *ctx)
    {
        _poisonNotifyFn = fn;
        _poisonNotifyCtx = ctx;
    }

    const MigrationStats &stats() const { return _stats; }

    const PoisonStats &poisonStats() const { return _poisonStats; }

    void resetStats() { _stats = MigrationStats{}; }

  private:
    /** Move one frame, accumulating cost; no charging, no retry. */
    MigrateResult moveFrame(Frame *frame, TierId dst, Tick &copy_cost,
                            Tick &fixed_cost);

    /**
     * moveFrame plus NoSpace retry/backoff/abandon handling.
     * @p fail_fast suppresses retries (the caller already proved the
     * destination exhausted within this batch).
     * @return true when the frame moved.
     */
    bool moveWithRetry(const FrameRef &ref, TierId dst, Tick &copy_cost,
                       Tick &fixed_cost, bool &fail_fast);

    /** Transactional copy of one frame; see promoteTransactional. */
    bool promoteOneTransactional(Frame *frame, TierId dst,
                                 Tick write_recency_window,
                                 Tick &copy_cost, Tick &fixed_cost,
                                 bool &fail_fast);

    /** Shadow-recovery leg of poisonFrame; true = bytes recovered. */
    bool recoverViaShadow(Frame *frame, Tick &fixed_cost);

    /**
     * Evacuate-then-reread leg of poisonFrame; true = bytes
     * recovered. Emits its own DataLoss when evacuation finds no
     * space or the device read fails.
     */
    bool recoverViaReread(Frame *frame, Tick &copy_cost,
                          Tick &fixed_cost);

    /** Emit DataLoss for @p frame and bump the counter. */
    void emitDataLoss(Frame *frame, DataLossReason reason);

    /** One poison_storm burst on @p tier. */
    void firePoisonStorm(TierId tier, uint64_t frames);

    /** Health observer: failed tiers drain, readmitted ones return. */
    void onTierHealth(TierId tier, TierHealth from, TierHealth to);

    void notifyPoisonOwner(Frame *frame, TierId origin_tier,
                           bool data_lost);

    Machine &_machine;
    TierManager &_tiers;
    LruEngine &_lru;
    unsigned _parallelism = 1;
    uint64_t _shadowBudget = ~0ULL;
    MigrationStats _stats;
    PoisonStats _poisonStats;
    bool (*_rereadProbe)(void *, Frame *) = nullptr;
    bool (*_rereadFn)(void *, Frame *) = nullptr;
    void *_rereadCtx = nullptr;
    void (*_poisonNotifyFn)(void *, Frame *, TierId, bool) = nullptr;
    void *_poisonNotifyCtx = nullptr;
    /** Tiers this engine offlined for health (vs. operator events),
     *  so readmission never onlines an operator-offlined tier. */
    std::vector<uint8_t> _healthOfflined;
};

} // namespace kloc

#endif // KLOC_MEM_MIGRATION_HH
