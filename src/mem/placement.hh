/**
 * @file
 * PlacementPolicy: the oracle subsystems consult at allocation time.
 *
 * Every tiering strategy in Table 5 reduces to (i) where allocations
 * of each class start out, and (ii) what gets migrated when. This
 * interface covers (i); migration behaviour lives in the policy
 * objects themselves (src/policy).
 */

#ifndef KLOC_MEM_PLACEMENT_HH
#define KLOC_MEM_PLACEMENT_HH

#include <vector>

#include "mem/frame.hh"
#include "sim/memory_model.hh"

namespace kloc {

/** Allocation-time tier preference oracle. */
class PlacementPolicy
{
  public:
    virtual ~PlacementPolicy() = default;

    /**
     * Tier preference for a kernel-object allocation of class @p cls.
     * @param knode_active Whether the owning KLOC is active (only
     *        meaningful for KLOC-family policies; others ignore it).
     */
    virtual std::vector<TierId>
    kernelPreference(ObjClass cls, bool knode_active) = 0;

    /** Tier preference for an application page allocation. */
    virtual std::vector<TierId> appPreference() = 0;
};

/** Fixed-order placement (used for AllFast / AllSlow / tests). */
class StaticPlacement : public PlacementPolicy
{
  public:
    StaticPlacement(std::vector<TierId> kernel_pref,
                    std::vector<TierId> app_pref)
        : _kernelPref(std::move(kernel_pref)), _appPref(std::move(app_pref))
    {}

    std::vector<TierId>
    kernelPreference(ObjClass, bool) override
    {
        return _kernelPref;
    }

    std::vector<TierId> appPreference() override { return _appPref; }

  private:
    std::vector<TierId> _kernelPref;
    std::vector<TierId> _appPref;
};

} // namespace kloc

#endif // KLOC_MEM_PLACEMENT_HH
