/**
 * @file
 * PlacementPolicy: the oracle subsystems consult at allocation time.
 *
 * Every tiering strategy in Table 5 reduces to (i) where allocations
 * of each class start out, and (ii) what gets migrated when. This
 * interface covers (i); migration behaviour lives in the policy
 * objects themselves (src/policy).
 */

#ifndef KLOC_MEM_PLACEMENT_HH
#define KLOC_MEM_PLACEMENT_HH

#include "base/inline_vec.hh"
#include "mem/frame.hh"
#include "sim/memory_model.hh"

namespace kloc {

/**
 * Allocation-time tier preference oracle. Preferences are returned
 * as inline-storage TierPreference values: the policy is consulted
 * on every allocation, so this path must stay allocation-free.
 */
class PlacementPolicy
{
  public:
    virtual ~PlacementPolicy() = default;

    /**
     * Tier preference for a kernel-object allocation of class @p cls.
     * @param knode_active Whether the owning KLOC is active (only
     *        meaningful for KLOC-family policies; others ignore it).
     */
    virtual TierPreference
    kernelPreference(ObjClass cls, bool knode_active) = 0;

    /** Tier preference for an application page allocation. */
    virtual TierPreference appPreference() = 0;
};

/** Fixed-order placement (used for AllFast / AllSlow / tests). */
class StaticPlacement : public PlacementPolicy
{
  public:
    StaticPlacement(TierPreference kernel_pref, TierPreference app_pref)
        : _kernelPref(kernel_pref), _appPref(app_pref)
    {}

    TierPreference
    kernelPreference(ObjClass, bool) override
    {
        return _kernelPref;
    }

    TierPreference appPreference() override { return _appPref; }

  private:
    TierPreference _kernelPref;
    TierPreference _appPref;
};

} // namespace kloc

#endif // KLOC_MEM_PLACEMENT_HH
