/**
 * @file
 * One memory tier: a buddy-managed frame space plus Linux-style LRU
 * lists and per-class residency accounting.
 */

#ifndef KLOC_MEM_TIER_HH
#define KLOC_MEM_TIER_HH

#include <cstdint>

#include "base/intrusive_list.hh"
#include "mem/buddy_allocator.hh"
#include "mem/frame.hh"
#include "sim/memory_model.hh"

namespace kloc {

/** LRU list pair for a tier. */
using FrameList = IntrusiveList<Frame, &Frame::lruHook>;

/** A memory tier's dynamic state. */
class Tier
{
  public:
    Tier(TierId id, const TierSpec &spec)
        : _id(id), _spec(spec), _buddy(framesIn(spec.capacity))
    {}

    TierId id() const { return _id; }
    const TierSpec &spec() const { return _spec; }

    /** Offline tiers take no new allocations or migration arrivals;
     *  resident frames stay addressable until drained. */
    bool online() const { return _online; }
    void setOnline(bool online) { _online = online; }

    BuddyAllocator &buddy() { return _buddy; }
    const BuddyAllocator &buddy() const { return _buddy; }

    /** Linux-style active/inactive LRU lists for this tier. */
    FrameList &activeList() { return _active; }
    FrameList &inactiveList() { return _inactive; }

    FrameCount totalPages() const { return _buddy.totalFrames(); }
    FrameCount usedPages() const { return _buddy.usedFrames(); }
    FrameCount freePages() const { return _buddy.freeFrames(); }

    /** Fraction of the tier currently allocated, in [0,1]. */
    double
    utilization() const
    {
        return totalPages() == 0
            ? 0.0
            : static_cast<double>(usedPages()) /
              static_cast<double>(totalPages());
    }

    /** Pages currently resident for @p cls. */
    FrameCount
    residentPages(ObjClass cls) const
    {
        return _residentPages[static_cast<unsigned>(cls)];
    }

    /** Cumulative pages ever allocated here for @p cls. */
    FrameCount
    cumulativeAllocPages(ObjClass cls) const
    {
        return _cumAllocPages[static_cast<unsigned>(cls)];
    }

    /** Residency bookkeeping, used by TierManager only. */
    void
    noteAlloc(ObjClass cls, FrameCount pages)
    {
        _residentPages[static_cast<unsigned>(cls)] += pages;
        _cumAllocPages[static_cast<unsigned>(cls)] += pages;
    }

    void
    noteFree(ObjClass cls, FrameCount pages)
    {
        KLOC_ASSERT(_residentPages[static_cast<unsigned>(cls)] >= pages,
                    "resident page underflow for class %s",
                    objClassName(cls));
        _residentPages[static_cast<unsigned>(cls)] -= pages;
    }

    /** noteAlloc without the cumulative count (migration arrivals). */
    void
    noteArrive(ObjClass cls, FrameCount pages)
    {
        _residentPages[static_cast<unsigned>(cls)] += pages;
    }

  private:
    TierId _id;
    TierSpec _spec;
    bool _online = true;
    BuddyAllocator _buddy;
    FrameList _active;
    FrameList _inactive;
    FrameCount _residentPages[kNumObjClasses] = {};
    FrameCount _cumAllocPages[kNumObjClasses] = {};
};

} // namespace kloc

#endif // KLOC_MEM_TIER_HH
