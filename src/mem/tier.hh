/**
 * @file
 * One memory tier: a buddy-managed frame space plus Linux-style LRU
 * lists and per-class residency accounting.
 */

#ifndef KLOC_MEM_TIER_HH
#define KLOC_MEM_TIER_HH

#include <cstdint>
#include <vector>

#include "base/intrusive_list.hh"
#include "mem/buddy_allocator.hh"
#include "mem/frame.hh"
#include "sim/memory_model.hh"

namespace kloc {

/** LRU list pair for a tier. */
using FrameList = IntrusiveList<Frame, &Frame::lruHook>;

/** A memory tier's dynamic state. */
class Tier
{
  public:
    Tier(TierId id, const TierSpec &spec)
        : _id(id), _spec(spec), _buddy(framesIn(spec.capacity))
    {}

    TierId id() const { return _id; }
    const TierSpec &spec() const { return _spec; }

    /** Offline tiers take no new allocations or migration arrivals;
     *  resident frames stay addressable until drained. */
    bool online() const { return _online; }
    void setOnline(bool online) { _online = online; }

    BuddyAllocator &buddy() { return _buddy; }
    const BuddyAllocator &buddy() const { return _buddy; }

    /** Linux-style active/inactive LRU lists for this tier. */
    FrameList &activeList() { return _active; }
    FrameList &inactiveList() { return _inactive; }

    FrameCount totalPages() const { return _buddy.totalFrames(); }

    /**
     * Pages handed out to frames. Blocks parked in the per-CPU
     * caches are held by the buddy but are immediately allocatable,
     * so they count as free, not used.
     */
    FrameCount
    usedPages() const
    {
        return _buddy.usedFrames() - FrameCount{_pcpCached};
    }

    FrameCount
    freePages() const
    {
        return _buddy.freeFrames() + FrameCount{_pcpCached};
    }

    // -- per-CPU frame cache (Linux pcp lists) ---------------------------
    /** Blocks moved between a CPU cache and the buddy per refill/flush. */
    static constexpr size_t kPcpBatch = 8;
    /** Cache depth that triggers a flush back to the buddy. */
    static constexpr size_t kPcpCap = 2 * kPcpBatch;

    /**
     * Size (or drop) the per-CPU caches of order-0 blocks. Called by
     * TierManager at tier creation and from its
     * setUsePerCpuFrameLists toggle; disabling drains first.
     */
    void
    configurePcp(unsigned cpus, bool enabled)
    {
        drainPcp();
        _pcp.clear();
        if (enabled)
            _pcp.resize(cpus);
    }

    bool pcpEnabled() const { return !_pcp.empty(); }

    /** Order-0 blocks currently parked in CPU caches. */
    uint64_t pcpCached() const { return _pcpCached; }

    /**
     * Allocate one order-0 block via @p cpu's cache: LIFO pop for
     * locality, batch refill from the buddy on miss.
     */
    Pfn
    pcpAlloc(unsigned cpu)
    {
        if (_pcp.empty())
            return _buddy.alloc(0);
        std::vector<Pfn> &cache = _pcp[cpu];
        if (cache.empty()) {
            for (size_t i = 0; i < kPcpBatch; ++i) {
                const Pfn pfn = _buddy.alloc(0);
                if (pfn == kInvalidPfn)
                    break;
                cache.push_back(pfn);
                ++_pcpCached;
            }
            if (cache.empty())
                return kInvalidPfn;
        }
        const Pfn pfn = cache.back();
        cache.pop_back();
        --_pcpCached;
        return pfn;
    }

    /**
     * Return one order-0 block to @p cpu's cache; past the cap the
     * coldest batch flushes back to the buddy (where it can
     * coalesce).
     */
    void
    pcpFree(unsigned cpu, Pfn pfn)
    {
        if (_pcp.empty()) {
            _buddy.free(pfn, 0);
            return;
        }
        std::vector<Pfn> &cache = _pcp[cpu];
        cache.push_back(pfn);
        ++_pcpCached;
        if (cache.size() > kPcpCap) {
            for (size_t i = 0; i < kPcpBatch; ++i)
                _buddy.free(cache[i], 0);
            cache.erase(cache.begin(), cache.begin() + kPcpBatch);
            _pcpCached -= kPcpBatch;
        }
    }

    /** Flush every CPU cache to the buddy (offline, toggle-off). */
    void
    drainPcp()
    {
        for (std::vector<Pfn> &cache : _pcp) {
            for (const Pfn pfn : cache)
                _buddy.free(pfn, 0);
            _pcpCached -= cache.size();
            cache.clear();
        }
    }

    /** Fraction of the tier currently allocated, in [0,1]. */
    double
    utilization() const
    {
        return totalPages() == 0
            ? 0.0
            : static_cast<double>(usedPages()) /
              static_cast<double>(totalPages());
    }

    /** Pages currently resident for @p cls. */
    FrameCount
    residentPages(ObjClass cls) const
    {
        return _residentPages[static_cast<unsigned>(cls)];
    }

    /** Cumulative pages ever allocated here for @p cls. */
    FrameCount
    cumulativeAllocPages(ObjClass cls) const
    {
        return _cumAllocPages[static_cast<unsigned>(cls)];
    }

    /** Residency bookkeeping, used by TierManager only. */
    void
    noteAlloc(ObjClass cls, FrameCount pages)
    {
        _residentPages[static_cast<unsigned>(cls)] += pages;
        _cumAllocPages[static_cast<unsigned>(cls)] += pages;
    }

    void
    noteFree(ObjClass cls, FrameCount pages)
    {
        KLOC_ASSERT(_residentPages[static_cast<unsigned>(cls)] >= pages,
                    "resident page underflow for class %s",
                    objClassName(cls));
        _residentPages[static_cast<unsigned>(cls)] -= pages;
    }

    /** noteAlloc without the cumulative count (migration arrivals). */
    void
    noteArrive(ObjClass cls, FrameCount pages)
    {
        _residentPages[static_cast<unsigned>(cls)] += pages;
    }

  private:
    TierId _id;
    TierSpec _spec;
    bool _online = true;
    BuddyAllocator _buddy;
    FrameList _active;
    FrameList _inactive;
    /** Per-CPU caches of order-0 pfn blocks; empty = disabled. */
    std::vector<std::vector<Pfn>> _pcp;
    uint64_t _pcpCached = 0;
    FrameCount _residentPages[kNumObjClasses] = {};
    FrameCount _cumAllocPages[kNumObjClasses] = {};
};

} // namespace kloc

#endif // KLOC_MEM_TIER_HH
