#include "mem/tier_manager.hh"

#include "base/logging.hh"

namespace kloc {

const char *
objClassName(ObjClass cls)
{
    switch (cls) {
      case ObjClass::App:       return "app";
      case ObjClass::PageCache: return "page_cache";
      case ObjClass::Journal:   return "journal";
      case ObjClass::FsSlab:    return "fs_slab";
      case ObjClass::SockBuf:   return "sock_buf";
      case ObjClass::BlockIo:   return "block_io";
      case ObjClass::KlocMeta:  return "kloc_meta";
      case ObjClass::NumClasses: break;
    }
    return "unknown";
}

TierId
TierManager::addTier(const TierSpec &spec)
{
    const TierId id = _machine.memModel().addTier(spec);
    KLOC_ASSERT(static_cast<size_t>(id) == _tiers.size(),
                "tier id out of sync with memory model");
    _tiers.push_back(std::make_unique<Tier>(id, spec));
    _tiers.back()->buddy().setTrace(&_machine.tracer(), id);
    return id;
}

Tier &
TierManager::tier(TierId id)
{
    KLOC_ASSERT(id >= 0 && static_cast<size_t>(id) < _tiers.size(),
                "bad tier id %d", id);
    return *_tiers[static_cast<size_t>(id)];
}

const Tier &
TierManager::tier(TierId id) const
{
    KLOC_ASSERT(id >= 0 && static_cast<size_t>(id) < _tiers.size(),
                "bad tier id %d", id);
    return *_tiers[static_cast<size_t>(id)];
}

Frame *
TierManager::alloc(unsigned order, ObjClass cls, bool relocatable,
                   const std::vector<TierId> &preference)
{
    for (const TierId tid : preference) {
        Tier &t = tier(tid);
        const Pfn pfn = t.buddy().alloc(order);
        if (pfn == kInvalidPfn)
            continue;

        Frame *frame;
        if (!_freeFrameObjs.empty()) {
            frame = _freeFrameObjs.back();
            _freeFrameObjs.pop_back();
            const uint64_t gen = frame->generation;
            *frame = Frame{};
            frame->generation = gen;
        } else {
            frame = &_framePool.emplace_back();
        }
        frame->tier = tid;
        frame->pfn = pfn;
        frame->order = static_cast<uint8_t>(order);
        frame->objClass = cls;
        frame->relocatable = relocatable;
        frame->allocTick = _machine.now();
        frame->lastAccessTick = _machine.now();

        t.noteAlloc(cls, frame->pages());
        _cumAllocPagesByClass[static_cast<unsigned>(cls)] += frame->pages();
        ++_liveFrames;

        for (const auto &obs : _allocObservers)
            obs(frame);
        _machine.tracer().emit(TraceEventType::FrameAlloc, tid, pfn, order,
                               static_cast<uint64_t>(cls));
        return frame;
    }
    return nullptr;
}

void
TierManager::free(Frame *frame)
{
    KLOC_ASSERT(frame != nullptr, "free of null frame");
    KLOC_ASSERT(frame->tier != kInvalidTier, "double free of frame");

    for (const auto &obs : _freeObservers)
        obs(frame);
    KLOC_ASSERT(!frame->lruHook.linked(),
                "freeing frame still on an LRU list");
    _machine.tracer().emit(TraceEventType::FrameFree, frame->tier,
                           frame->pfn, frame->order,
                           static_cast<uint64_t>(frame->objClass));

    const Tick lifetime = _machine.now() - frame->allocTick;
    _lifetimes[static_cast<unsigned>(frame->objClass)]
        .sample(static_cast<uint64_t>(lifetime));

    Tier &t = tier(frame->tier);
    t.noteFree(frame->objClass, frame->pages());
    t.buddy().free(frame->pfn, frame->order);

    frame->tier = kInvalidTier;
    frame->pfn = kInvalidPfn;
    frame->owner = nullptr;
    ++frame->generation;
    --_liveFrames;
    _freeFrameObjs.push_back(frame);
}

bool
TierManager::migrate(Frame *frame, TierId dst)
{
    KLOC_ASSERT(frame->tier != kInvalidTier, "migrating freed frame");
    if (!frame->relocatable || frame->pinned() || frame->tier == dst)
        return false;
    // Ping-pong damping (§4.5): a page migrated many times is
    // retained where it is rather than demoted again. Promotions
    // (toward lower tier ids) stay allowed so the page can settle
    // in fast memory, which is where the paper retains such pages.
    if (frame->migrateCount >= kRetainThreshold && dst > frame->tier)
        return false;
    if (frame->migrateCount == 0xFF)
        return false;  // absolute cap on the 8-bit counter

    Tier &to = tier(dst);
    const Pfn new_pfn = to.buddy().alloc(frame->order);
    if (new_pfn == kInvalidPfn)
        return false;

    Tier &from = tier(frame->tier);
    from.noteFree(frame->objClass, frame->pages());
    from.buddy().free(frame->pfn, frame->order);

    frame->tier = dst;
    frame->pfn = new_pfn;
    ++frame->migrateCount;
    to.noteArrive(frame->objClass, frame->pages());
    return true;
}

void
TierManager::addAllocObserver(FrameObserver obs)
{
    _allocObservers.push_back(std::move(obs));
}

void
TierManager::addFreeObserver(FrameObserver obs)
{
    _freeObservers.push_back(std::move(obs));
}

void
TierManager::resetCumulativeStats()
{
    for (auto &count : _cumAllocPagesByClass)
        count = 0;
    for (auto &hist : _lifetimes)
        hist.reset();
}

} // namespace kloc
