#include "mem/tier_manager.hh"

#include "base/logging.hh"

namespace kloc {

const char *
migrateResultName(MigrateResult result)
{
    switch (result) {
      case MigrateResult::Ok:             return "ok";
      case MigrateResult::NotRelocatable: return "not_relocatable";
      case MigrateResult::Pinned:         return "pinned";
      case MigrateResult::Damped:         return "damped";
      case MigrateResult::SameTier:       return "same_tier";
      case MigrateResult::Offline:        return "offline";
      case MigrateResult::NoSpace:        return "no_space";
      case MigrateResult::Poisoned:       return "poisoned";
    }
    return "unknown";
}

const char *
poisonOriginName(PoisonOrigin origin)
{
    switch (origin) {
      case PoisonOrigin::Access: return "access";
      case PoisonOrigin::Scan:   return "scan";
      case PoisonOrigin::Copy:   return "copy";
      case PoisonOrigin::Storm:  return "storm";
    }
    return "unknown";
}

const char *
recoverySourceName(RecoverySource source)
{
    switch (source) {
      case RecoverySource::Shadow: return "shadow";
      case RecoverySource::Reread: return "reread";
    }
    return "unknown";
}

const char *
dataLossReasonName(DataLossReason reason)
{
    switch (reason) {
      case DataLossReason::Unmovable:    return "unmovable";
      case DataLossReason::NoSource:     return "no_source";
      case DataLossReason::RereadFailed: return "reread_failed";
      case DataLossReason::NoSpace:      return "no_space";
    }
    return "unknown";
}

const char *
tierHealthName(TierHealth health)
{
    switch (health) {
      case TierHealth::Healthy:  return "healthy";
      case TierHealth::Degraded: return "degraded";
      case TierHealth::Failed:   return "failed";
    }
    return "unknown";
}

const char *
shadowDropReasonName(ShadowDropReason reason)
{
    switch (reason) {
      case ShadowDropReason::Stale:      return "stale";
      case ShadowDropReason::FrameFreed: return "frame_freed";
      case ShadowDropReason::FrameMoved: return "frame_moved";
      case ShadowDropReason::Pressure:   return "pressure";
      case ShadowDropReason::Offline:    return "offline";
      case ShadowDropReason::PolicyStop: return "policy_stop";
    }
    return "unknown";
}

TierId
TierManager::addTier(const TierSpec &spec)
{
    const TierId id = _machine.memModel().addTier(spec);
    KLOC_ASSERT(static_cast<size_t>(id) == _tiers.size(),
                "tier id out of sync with memory model");
    _tiers.push_back(std::make_unique<Tier>(id, spec));
    _tiers.back()->buddy().setTrace(&_machine.tracer(), id);
    _tiers.back()->configurePcp(_machine.cpuCount(), _usePcpLists);
    _health.push_back(HealthState{});
    return id;
}

void
TierManager::setUsePerCpuFrameLists(bool enabled)
{
    if (_usePcpLists == enabled)
        return;
    _usePcpLists = enabled;
    for (auto &t : _tiers)
        t->configurePcp(_machine.cpuCount(), enabled);
}

Pfn
TierManager::allocBlock(Tier &t, unsigned order)
{
    if (order == 0)
        return t.pcpAlloc(_machine.currentCpu());
    return t.buddy().alloc(order);
}

void
TierManager::freeBlock(Tier &t, Pfn pfn, unsigned order)
{
    if (order == 0)
        t.pcpFree(_machine.currentCpu(), pfn);
    else
        t.buddy().free(pfn, order);
}

Tier &
TierManager::tier(TierId id)
{
    KLOC_ASSERT(id >= 0 && static_cast<size_t>(id) < _tiers.size(),
                "bad tier id %d", id);
    return *_tiers[static_cast<size_t>(id)];
}

const Tier &
TierManager::tier(TierId id) const
{
    KLOC_ASSERT(id >= 0 && static_cast<size_t>(id) < _tiers.size(),
                "bad tier id %d", id);
    return *_tiers[static_cast<size_t>(id)];
}

Frame *
TierManager::alloc(unsigned order, ObjClass cls, bool relocatable,
                   const TierPreference &preference)
{
    for (const TierId tid : preference) {
        Tier &t = tier(tid);
        if (!t.online())
            continue;
        const Pfn pfn = allocBlock(t, order);
        if (pfn == kInvalidPfn)
            continue;

        Frame *frame;
        if (!_freeFrameObjs.empty()) {
            frame = _freeFrameObjs.back();
            _freeFrameObjs.pop_back();
            const uint64_t gen = frame->generation;
            *frame = Frame{};
            frame->generation = gen;
        } else {
            frame = _frameArena.create();
        }
        frame->tier = tid;
        frame->pfn = pfn;
        frame->order = static_cast<uint8_t>(order);
        frame->objClass = cls;
        frame->relocatable = relocatable;
        frame->allocTick = _machine.now();
        frame->lastAccessTick = _machine.now();

        t.noteAlloc(cls, frame->pages());
        _cumAllocPagesByClass[static_cast<unsigned>(cls)] += frame->pages();
        ++_liveFrames;

        for (const FrameObserver &obs : _allocObservers)
            obs.fn(obs.ctx, frame);
        _machine.tracer().emit(TraceEventType::FrameAlloc, tid, pfn, order,
                               static_cast<uint64_t>(cls));
        return frame;
    }
    return nullptr;
}

void
TierManager::free(Frame *frame)
{
    KLOC_ASSERT(frame != nullptr, "free of null frame");
    KLOC_ASSERT(frame->tier != kInvalidTier, "double free of frame");

    if (frame->hasShadow())
        dropShadow(frame, ShadowDropReason::FrameFreed);
    for (const FrameObserver &obs : _freeObservers)
        obs.fn(obs.ctx, frame);
    KLOC_ASSERT(!frame->lruHook.linked(),
                "freeing frame still on an LRU list");
    _machine.tracer().emit(TraceEventType::FrameFree, frame->tier,
                           frame->pfn, frame->order,
                           static_cast<uint64_t>(frame->objClass));

    const Tick lifetime = _machine.now() - frame->allocTick;
    _lifetimes[static_cast<unsigned>(frame->objClass)]
        .sample(static_cast<uint64_t>(lifetime));

    Tier &t = tier(frame->tier);
    t.noteFree(frame->objClass, frame->pages());
    if (frame->poisoned) {
        // A poisoned block never returns to the allocator: it is
        // retired into quarantine the moment its frame dies.
        quarantineBlock(t, frame->pfn, frame->order);
    } else {
        freeBlock(t, frame->pfn, frame->order);
    }

    frame->tier = kInvalidTier;
    frame->pfn = kInvalidPfn;
    frame->owner = nullptr;
    ++frame->generation;
    --_liveFrames;
    _freeFrameObjs.push_back(frame);
}

bool
TierManager::migrate(Frame *frame, TierId dst)
{
    return migrateEx(frame, dst) == MigrateResult::Ok;
}

MigrateResult
TierManager::migrateEx(Frame *frame, TierId dst)
{
    KLOC_ASSERT(frame->tier != kInvalidTier, "migrating freed frame");
    if (!frame->relocatable)
        return MigrateResult::NotRelocatable;
    if (frame->pinned())
        return MigrateResult::Pinned;
    if (frame->tier == dst)
        return MigrateResult::SameTier;
    // Ping-pong damping (§4.5): a page migrated many times is
    // retained where it is rather than demoted again. Promotions
    // (toward lower tier ids) stay allowed so the page can settle
    // in fast memory, which is where the paper retains such pages.
    if (frame->migrateCount >= kRetainThreshold && dst > frame->tier)
        return MigrateResult::Damped;
    if (frame->migrateCount == 0xFF)
        return MigrateResult::Damped;  // absolute cap on the counter

    Tier &to = tier(dst);
    if (!to.online())
        return MigrateResult::Offline;
    const Pfn new_pfn = allocBlock(to, frame->order);
    if (new_pfn == kInvalidPfn)
        return MigrateResult::NoSpace;

    // Past the commit point: a plain move strands any shadow copy.
    if (frame->hasShadow())
        dropShadow(frame, ShadowDropReason::FrameMoved);

    Tier &from = tier(frame->tier);
    from.noteFree(frame->objClass, frame->pages());
    freeBlock(from, frame->pfn, frame->order);

    frame->tier = dst;
    frame->pfn = new_pfn;
    ++frame->migrateCount;
    to.noteArrive(frame->objClass, frame->pages());
    return MigrateResult::Ok;
}

MigrateResult
TierManager::promoteKeepSource(Frame *frame, TierId dst)
{
    KLOC_ASSERT(frame->tier != kInvalidTier, "promoting freed frame");
    KLOC_ASSERT(!frame->hasShadow(),
                "promoteKeepSource over an existing shadow");
    if (!frame->relocatable)
        return MigrateResult::NotRelocatable;
    if (frame->pinned())
        return MigrateResult::Pinned;
    if (frame->tier == dst)
        return MigrateResult::SameTier;
    if (frame->migrateCount >= kRetainThreshold && dst > frame->tier)
        return MigrateResult::Damped;
    if (frame->migrateCount == 0xFF)
        return MigrateResult::Damped;

    Tier &to = tier(dst);
    if (!to.online())
        return MigrateResult::Offline;
    const Pfn new_pfn = allocBlock(to, frame->order);
    if (new_pfn == kInvalidPfn)
        return MigrateResult::NoSpace;

    // The source buddy pages stay allocated as the shadow; only the
    // class residency moves with the frame.
    Tier &from = tier(frame->tier);
    from.noteFree(frame->objClass, frame->pages());
    frame->shadowTier = frame->tier;
    frame->shadowPfn = frame->pfn;
    frame->shadowSince = _machine.now();
    _shadowPages += frame->pages();

    frame->tier = dst;
    frame->pfn = new_pfn;
    ++frame->migrateCount;
    to.noteArrive(frame->objClass, frame->pages());
    return MigrateResult::Ok;
}

MigrateResult
TierManager::migrateIntoShadow(Frame *frame)
{
    KLOC_ASSERT(frame->tier != kInvalidTier, "demoting freed frame");
    KLOC_ASSERT(frame->hasShadow(), "no shadow to demote into");
    const TierId dst = frame->shadowTier;
    if (!frame->relocatable)
        return MigrateResult::NotRelocatable;
    if (frame->pinned())
        return MigrateResult::Pinned;
    if (frame->tier == dst)
        return MigrateResult::SameTier;
    if (frame->migrateCount >= kRetainThreshold && dst > frame->tier)
        return MigrateResult::Damped;
    if (frame->migrateCount == 0xFF)
        return MigrateResult::Damped;
    Tier &to = tier(dst);
    if (!to.online())
        return MigrateResult::Offline;

    Tier &from = tier(frame->tier);
    from.noteFree(frame->objClass, frame->pages());
    freeBlock(from, frame->pfn, frame->order);

    // The shadow's buddy pages are already allocated; adopt them.
    frame->tier = dst;
    frame->pfn = frame->shadowPfn;
    _shadowPages -= frame->pages();
    frame->shadowTier = kInvalidTier;
    frame->shadowPfn = kInvalidPfn;
    frame->shadowSince = Tick{};
    ++frame->migrateCount;
    to.noteArrive(frame->objClass, frame->pages());
    return MigrateResult::Ok;
}

MigrateResult
TierManager::evacuate(Frame *frame, TierId dst)
{
    KLOC_ASSERT(frame->tier != kInvalidTier, "evacuating freed frame");
    KLOC_ASSERT(frame->poisoned, "evacuating healthy frame");
    if (!frame->relocatable)
        return MigrateResult::NotRelocatable;
    if (frame->pinned())
        return MigrateResult::Pinned;
    if (frame->tier == dst)
        return MigrateResult::SameTier;
    Tier &to = tier(dst);
    if (!to.online())
        return MigrateResult::Offline;
    const Pfn new_pfn = allocBlock(to, frame->order);
    if (new_pfn == kInvalidPfn)
        return MigrateResult::NoSpace;

    // A stale shadow cannot serve recovery; a clean one would have
    // been adopted by evacuateIntoShadow() instead. Either way the
    // frame leaves it behind.
    if (frame->hasShadow())
        dropShadow(frame, ShadowDropReason::FrameMoved);

    Tier &from = tier(frame->tier);
    from.noteFree(frame->objClass, frame->pages());
    from.buddy().quarantine(frame->pfn, frame->order);

    frame->tier = dst;
    frame->pfn = new_pfn;
    frame->poisoned = false;
    ++frame->migrateCount;
    to.noteArrive(frame->objClass, frame->pages());
    return MigrateResult::Ok;
}

MigrateResult
TierManager::evacuateIntoShadow(Frame *frame)
{
    KLOC_ASSERT(frame->tier != kInvalidTier, "evacuating freed frame");
    KLOC_ASSERT(frame->poisoned, "evacuating healthy frame");
    KLOC_ASSERT(frame->hasShadow(), "no shadow to recover from");
    const TierId dst = frame->shadowTier;
    if (!frame->relocatable)
        return MigrateResult::NotRelocatable;
    if (frame->pinned())
        return MigrateResult::Pinned;
    if (frame->tier == dst)
        return MigrateResult::SameTier;
    Tier &to = tier(dst);
    if (!to.online())
        return MigrateResult::Offline;

    Tier &from = tier(frame->tier);
    from.noteFree(frame->objClass, frame->pages());
    from.buddy().quarantine(frame->pfn, frame->order);

    // The clean shadow's buddy pages carry the pre-error bytes;
    // adopt them as the frame's new home.
    frame->tier = dst;
    frame->pfn = frame->shadowPfn;
    frame->poisoned = false;
    _shadowPages -= frame->pages();
    frame->shadowTier = kInvalidTier;
    frame->shadowPfn = kInvalidPfn;
    frame->shadowSince = Tick{};
    ++frame->migrateCount;
    to.noteArrive(frame->objClass, frame->pages());
    return MigrateResult::Ok;
}

void
TierManager::dropShadow(Frame *frame, ShadowDropReason reason)
{
    if (!frame->hasShadow())
        return;
    _machine.tracer().emit(TraceEventType::ShadowDrop, frame->shadowTier,
                           frame->shadowPfn,
                           static_cast<uint64_t>(reason));
    freeBlock(tier(frame->shadowTier), frame->shadowPfn, frame->order);
    _shadowPages -= frame->pages();
    ++_shadowDrops;
    frame->shadowTier = kInvalidTier;
    frame->shadowPfn = kInvalidPfn;
    frame->shadowSince = Tick{};
}

void
TierManager::dropAllShadows(ShadowDropReason reason)
{
    _frameArena.forEach([&](Frame &frame) {
        if (frame.tier != kInvalidTier && frame.hasShadow())
            dropShadow(&frame, reason);
    });
}

void
TierManager::dropShadowsOn(TierId id, ShadowDropReason reason)
{
    _frameArena.forEach([&](Frame &frame) {
        if (frame.tier != kInvalidTier && frame.shadowTier == id)
            dropShadow(&frame, reason);
    });
}

void
TierManager::setTierOnline(TierId id, bool online)
{
    Tier &t = tier(id);
    if (t.online() == online)
        return;
    t.setOnline(online);
    // An offline tier's cached blocks go back to the buddy so the
    // drain below sees the tier's true free space.
    if (!online)
        t.drainPcp();
    _machine.tracer().emit(online ? TraceEventType::TierOnline
                                  : TraceEventType::TierOffline,
                           static_cast<uint64_t>(id));
}

std::vector<FrameRef>
TierManager::collectFramesOn(TierId id)
{
    std::vector<FrameRef> frames;
    // Arena order is creation order and deterministic; freed slots
    // are recognised by their invalid tier.
    _frameArena.forEach([&](Frame &frame) {
        if (frame.tier == id)
            frames.emplace_back(&frame);
    });
    return frames;
}

void
TierManager::quarantineBlock(Tier &t, Pfn pfn, unsigned order)
{
    t.buddy().quarantine(pfn, order);
    _machine.tracer().emit(TraceEventType::FrameQuarantine, t.id(), pfn,
                           order);
}

void
TierManager::noteQuarantined(TierId tier, Pfn pfn, unsigned order)
{
    _machine.tracer().emit(TraceEventType::FrameQuarantine,
                           static_cast<uint64_t>(tier), pfn, order);
}

TierHealth
TierManager::health(TierId id) const
{
    KLOC_ASSERT(id >= 0 && static_cast<size_t>(id) < _health.size(),
                "bad tier id %d", id);
    return _health[static_cast<size_t>(id)].health;
}

uint64_t
TierManager::healthScore(TierId id) const
{
    KLOC_ASSERT(id >= 0 && static_cast<size_t>(id) < _health.size(),
                "bad tier id %d", id);
    return _health[static_cast<size_t>(id)].score;
}

void
TierManager::transitionHealth(TierId id, TierHealth to)
{
    HealthState &state = _health[static_cast<size_t>(id)];
    const TierHealth from = state.health;
    if (from == to)
        return;
    state.health = to;
    _machine.tracer().emit(TraceEventType::TierHealth,
                           static_cast<uint64_t>(id),
                           static_cast<uint64_t>(from),
                           static_cast<uint64_t>(to), state.score);
    for (const HealthObserver &obs : _healthObservers)
        obs.fn(obs.ctx, id, from, to);
}

void
TierManager::applyUpwardTransitions(TierId id)
{
    HealthState &state = _health[static_cast<size_t>(id)];
    if (state.health == TierHealth::Healthy &&
        state.score >= kDegradeScore) {
        transitionHealth(id, TierHealth::Degraded);
    }
    if (state.health == TierHealth::Degraded &&
        state.score >= kFailScore) {
        transitionHealth(id, TierHealth::Failed);
    }
}

void
TierManager::recordTierError(TierId id)
{
    KLOC_ASSERT(id >= 0 && static_cast<size_t>(id) < _health.size(),
                "bad tier id %d", id);
    HealthState &state = _health[static_cast<size_t>(id)];
    state.score += kErrorScore;
    applyUpwardTransitions(id);
    if (!_healthTickArmed) {
        // Armed lazily on the first error ever recorded, so an
        // error-free run schedules nothing and its trace is
        // byte-identical to a build without the health machinery.
        _healthTickArmed = true;
        _machine.events().schedule(_machine.now() + kHealthTickPeriod,
                                   [this] { healthTick(); });
    }
}

void
TierManager::healthTick()
{
    bool busy = false;
    for (size_t i = 0; i < _health.size(); ++i) {
        HealthState &state = _health[i];
        // 25% multiplicative decay per tick; small residues snap to
        // zero so scores actually reach rest.
        state.score -= state.score / 4;
        if (state.score < kErrorScore / 16)
            state.score = 0;
        const TierId id = static_cast<TierId>(i);
        if (state.health == TierHealth::Failed &&
            state.score <= kReadmitScore) {
            transitionHealth(id, TierHealth::Degraded);
        }
        if (state.health == TierHealth::Degraded &&
            state.score <= kRecoverScore) {
            transitionHealth(id, TierHealth::Healthy);
        }
        if (state.score > 0 || state.health != TierHealth::Healthy)
            busy = true;
    }
    if (busy) {
        _machine.events().schedule(_machine.now() + kHealthTickPeriod,
                                   [this] { healthTick(); });
    } else {
        _healthTickArmed = false;
    }
}

TierPreference
TierManager::preferHealthy(const TierPreference &preference) const
{
    // Stable three-way partition by health band. Most calls see all
    // tiers healthy; return the input untouched then.
    bool all_healthy = true;
    for (const TierId id : preference) {
        if (health(id) != TierHealth::Healthy) {
            all_healthy = false;
            break;
        }
    }
    if (all_healthy)
        return preference;

    TierPreference out;
    for (const TierId id : preference) {
        if (health(id) == TierHealth::Healthy)
            out.push_back(id);
    }
    for (const TierId id : preference) {
        if (health(id) == TierHealth::Degraded)
            out.push_back(id);
    }
    for (const TierId id : preference) {
        if (health(id) == TierHealth::Failed)
            out.push_back(id);
    }
    return out;
}

uint64_t
TierManager::quarantinedPages() const
{
    uint64_t pages = 0;
    for (const auto &t : _tiers)
        pages += static_cast<uint64_t>(t->buddy().quarantinedFrames());
    return pages;
}

void
TierManager::addHealthObserver(void (*fn)(void *, TierId, TierHealth,
                                          TierHealth),
                               void *ctx)
{
    _healthObservers.push_back(HealthObserver{fn, ctx});
}

void
TierManager::addAllocObserver(void (*fn)(void *, Frame *), void *ctx)
{
    _allocObservers.push_back(FrameObserver{fn, ctx});
}

void
TierManager::addFreeObserver(void (*fn)(void *, Frame *), void *ctx)
{
    _freeObservers.push_back(FrameObserver{fn, ctx});
}

void
TierManager::resetCumulativeStats()
{
    for (auto &count : _cumAllocPagesByClass)
        count = 0;
    for (auto &hist : _lifetimes)
        hist.reset();
}

} // namespace kloc
