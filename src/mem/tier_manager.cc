#include "mem/tier_manager.hh"

#include "base/logging.hh"

namespace kloc {

const char *
migrateResultName(MigrateResult result)
{
    switch (result) {
      case MigrateResult::Ok:             return "ok";
      case MigrateResult::NotRelocatable: return "not_relocatable";
      case MigrateResult::Pinned:         return "pinned";
      case MigrateResult::Damped:         return "damped";
      case MigrateResult::SameTier:       return "same_tier";
      case MigrateResult::Offline:        return "offline";
      case MigrateResult::NoSpace:        return "no_space";
    }
    return "unknown";
}

const char *
shadowDropReasonName(ShadowDropReason reason)
{
    switch (reason) {
      case ShadowDropReason::Stale:      return "stale";
      case ShadowDropReason::FrameFreed: return "frame_freed";
      case ShadowDropReason::FrameMoved: return "frame_moved";
      case ShadowDropReason::Pressure:   return "pressure";
      case ShadowDropReason::Offline:    return "offline";
      case ShadowDropReason::PolicyStop: return "policy_stop";
    }
    return "unknown";
}

TierId
TierManager::addTier(const TierSpec &spec)
{
    const TierId id = _machine.memModel().addTier(spec);
    KLOC_ASSERT(static_cast<size_t>(id) == _tiers.size(),
                "tier id out of sync with memory model");
    _tiers.push_back(std::make_unique<Tier>(id, spec));
    _tiers.back()->buddy().setTrace(&_machine.tracer(), id);
    return id;
}

Tier &
TierManager::tier(TierId id)
{
    KLOC_ASSERT(id >= 0 && static_cast<size_t>(id) < _tiers.size(),
                "bad tier id %d", id);
    return *_tiers[static_cast<size_t>(id)];
}

const Tier &
TierManager::tier(TierId id) const
{
    KLOC_ASSERT(id >= 0 && static_cast<size_t>(id) < _tiers.size(),
                "bad tier id %d", id);
    return *_tiers[static_cast<size_t>(id)];
}

Frame *
TierManager::alloc(unsigned order, ObjClass cls, bool relocatable,
                   const TierPreference &preference)
{
    for (const TierId tid : preference) {
        Tier &t = tier(tid);
        if (!t.online())
            continue;
        const Pfn pfn = t.buddy().alloc(order);
        if (pfn == kInvalidPfn)
            continue;

        Frame *frame;
        if (!_freeFrameObjs.empty()) {
            frame = _freeFrameObjs.back();
            _freeFrameObjs.pop_back();
            const uint64_t gen = frame->generation;
            *frame = Frame{};
            frame->generation = gen;
        } else {
            frame = _frameArena.create();
        }
        frame->tier = tid;
        frame->pfn = pfn;
        frame->order = static_cast<uint8_t>(order);
        frame->objClass = cls;
        frame->relocatable = relocatable;
        frame->allocTick = _machine.now();
        frame->lastAccessTick = _machine.now();

        t.noteAlloc(cls, frame->pages());
        _cumAllocPagesByClass[static_cast<unsigned>(cls)] += frame->pages();
        ++_liveFrames;

        for (const FrameObserver &obs : _allocObservers)
            obs.fn(obs.ctx, frame);
        _machine.tracer().emit(TraceEventType::FrameAlloc, tid, pfn, order,
                               static_cast<uint64_t>(cls));
        return frame;
    }
    return nullptr;
}

void
TierManager::free(Frame *frame)
{
    KLOC_ASSERT(frame != nullptr, "free of null frame");
    KLOC_ASSERT(frame->tier != kInvalidTier, "double free of frame");

    if (frame->hasShadow())
        dropShadow(frame, ShadowDropReason::FrameFreed);
    for (const FrameObserver &obs : _freeObservers)
        obs.fn(obs.ctx, frame);
    KLOC_ASSERT(!frame->lruHook.linked(),
                "freeing frame still on an LRU list");
    _machine.tracer().emit(TraceEventType::FrameFree, frame->tier,
                           frame->pfn, frame->order,
                           static_cast<uint64_t>(frame->objClass));

    const Tick lifetime = _machine.now() - frame->allocTick;
    _lifetimes[static_cast<unsigned>(frame->objClass)]
        .sample(static_cast<uint64_t>(lifetime));

    Tier &t = tier(frame->tier);
    t.noteFree(frame->objClass, frame->pages());
    t.buddy().free(frame->pfn, frame->order);

    frame->tier = kInvalidTier;
    frame->pfn = kInvalidPfn;
    frame->owner = nullptr;
    ++frame->generation;
    --_liveFrames;
    _freeFrameObjs.push_back(frame);
}

bool
TierManager::migrate(Frame *frame, TierId dst)
{
    return migrateEx(frame, dst) == MigrateResult::Ok;
}

MigrateResult
TierManager::migrateEx(Frame *frame, TierId dst)
{
    KLOC_ASSERT(frame->tier != kInvalidTier, "migrating freed frame");
    if (!frame->relocatable)
        return MigrateResult::NotRelocatable;
    if (frame->pinned())
        return MigrateResult::Pinned;
    if (frame->tier == dst)
        return MigrateResult::SameTier;
    // Ping-pong damping (§4.5): a page migrated many times is
    // retained where it is rather than demoted again. Promotions
    // (toward lower tier ids) stay allowed so the page can settle
    // in fast memory, which is where the paper retains such pages.
    if (frame->migrateCount >= kRetainThreshold && dst > frame->tier)
        return MigrateResult::Damped;
    if (frame->migrateCount == 0xFF)
        return MigrateResult::Damped;  // absolute cap on the counter

    Tier &to = tier(dst);
    if (!to.online())
        return MigrateResult::Offline;
    const Pfn new_pfn = to.buddy().alloc(frame->order);
    if (new_pfn == kInvalidPfn)
        return MigrateResult::NoSpace;

    // Past the commit point: a plain move strands any shadow copy.
    if (frame->hasShadow())
        dropShadow(frame, ShadowDropReason::FrameMoved);

    Tier &from = tier(frame->tier);
    from.noteFree(frame->objClass, frame->pages());
    from.buddy().free(frame->pfn, frame->order);

    frame->tier = dst;
    frame->pfn = new_pfn;
    ++frame->migrateCount;
    to.noteArrive(frame->objClass, frame->pages());
    return MigrateResult::Ok;
}

MigrateResult
TierManager::promoteKeepSource(Frame *frame, TierId dst)
{
    KLOC_ASSERT(frame->tier != kInvalidTier, "promoting freed frame");
    KLOC_ASSERT(!frame->hasShadow(),
                "promoteKeepSource over an existing shadow");
    if (!frame->relocatable)
        return MigrateResult::NotRelocatable;
    if (frame->pinned())
        return MigrateResult::Pinned;
    if (frame->tier == dst)
        return MigrateResult::SameTier;
    if (frame->migrateCount >= kRetainThreshold && dst > frame->tier)
        return MigrateResult::Damped;
    if (frame->migrateCount == 0xFF)
        return MigrateResult::Damped;

    Tier &to = tier(dst);
    if (!to.online())
        return MigrateResult::Offline;
    const Pfn new_pfn = to.buddy().alloc(frame->order);
    if (new_pfn == kInvalidPfn)
        return MigrateResult::NoSpace;

    // The source buddy pages stay allocated as the shadow; only the
    // class residency moves with the frame.
    Tier &from = tier(frame->tier);
    from.noteFree(frame->objClass, frame->pages());
    frame->shadowTier = frame->tier;
    frame->shadowPfn = frame->pfn;
    frame->shadowSince = _machine.now();
    _shadowPages += frame->pages();

    frame->tier = dst;
    frame->pfn = new_pfn;
    ++frame->migrateCount;
    to.noteArrive(frame->objClass, frame->pages());
    return MigrateResult::Ok;
}

MigrateResult
TierManager::migrateIntoShadow(Frame *frame)
{
    KLOC_ASSERT(frame->tier != kInvalidTier, "demoting freed frame");
    KLOC_ASSERT(frame->hasShadow(), "no shadow to demote into");
    const TierId dst = frame->shadowTier;
    if (!frame->relocatable)
        return MigrateResult::NotRelocatable;
    if (frame->pinned())
        return MigrateResult::Pinned;
    if (frame->tier == dst)
        return MigrateResult::SameTier;
    if (frame->migrateCount >= kRetainThreshold && dst > frame->tier)
        return MigrateResult::Damped;
    if (frame->migrateCount == 0xFF)
        return MigrateResult::Damped;
    Tier &to = tier(dst);
    if (!to.online())
        return MigrateResult::Offline;

    Tier &from = tier(frame->tier);
    from.noteFree(frame->objClass, frame->pages());
    from.buddy().free(frame->pfn, frame->order);

    // The shadow's buddy pages are already allocated; adopt them.
    frame->tier = dst;
    frame->pfn = frame->shadowPfn;
    _shadowPages -= frame->pages();
    frame->shadowTier = kInvalidTier;
    frame->shadowPfn = kInvalidPfn;
    frame->shadowSince = Tick{};
    ++frame->migrateCount;
    to.noteArrive(frame->objClass, frame->pages());
    return MigrateResult::Ok;
}

void
TierManager::dropShadow(Frame *frame, ShadowDropReason reason)
{
    if (!frame->hasShadow())
        return;
    _machine.tracer().emit(TraceEventType::ShadowDrop, frame->shadowTier,
                           frame->shadowPfn,
                           static_cast<uint64_t>(reason));
    tier(frame->shadowTier).buddy().free(frame->shadowPfn, frame->order);
    _shadowPages -= frame->pages();
    ++_shadowDrops;
    frame->shadowTier = kInvalidTier;
    frame->shadowPfn = kInvalidPfn;
    frame->shadowSince = Tick{};
}

void
TierManager::dropAllShadows(ShadowDropReason reason)
{
    _frameArena.forEach([&](Frame &frame) {
        if (frame.tier != kInvalidTier && frame.hasShadow())
            dropShadow(&frame, reason);
    });
}

void
TierManager::dropShadowsOn(TierId id, ShadowDropReason reason)
{
    _frameArena.forEach([&](Frame &frame) {
        if (frame.tier != kInvalidTier && frame.shadowTier == id)
            dropShadow(&frame, reason);
    });
}

void
TierManager::setTierOnline(TierId id, bool online)
{
    Tier &t = tier(id);
    if (t.online() == online)
        return;
    t.setOnline(online);
    _machine.tracer().emit(online ? TraceEventType::TierOnline
                                  : TraceEventType::TierOffline,
                           static_cast<uint64_t>(id));
}

std::vector<FrameRef>
TierManager::collectFramesOn(TierId id)
{
    std::vector<FrameRef> frames;
    // Arena order is creation order and deterministic; freed slots
    // are recognised by their invalid tier.
    _frameArena.forEach([&](Frame &frame) {
        if (frame.tier == id)
            frames.emplace_back(&frame);
    });
    return frames;
}

void
TierManager::addAllocObserver(void (*fn)(void *, Frame *), void *ctx)
{
    _allocObservers.push_back(FrameObserver{fn, ctx});
}

void
TierManager::addFreeObserver(void (*fn)(void *, Frame *), void *ctx)
{
    _freeObservers.push_back(FrameObserver{fn, ctx});
}

void
TierManager::resetCumulativeStats()
{
    for (auto &count : _cumAllocPagesByClass)
        count = 0;
    for (auto &hist : _lifetimes)
        hist.reset();
}

} // namespace kloc
