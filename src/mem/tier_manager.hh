/**
 * @file
 * TierManager: the machine's physical memory — every tier, every
 * live Frame, and the accounting behind Figs. 2a/2b/2d and 5b.
 *
 * Placement policy is expressed by the caller through the tier
 * preference order passed to alloc(); the manager walks it until a
 * tier has room. Migration re-homes a Frame in place so that kernel
 * objects holding Frame* never see a pointer change.
 */

#ifndef KLOC_MEM_TIER_MANAGER_HH
#define KLOC_MEM_TIER_MANAGER_HH

#include <memory>
#include <vector>

#include "base/inline_vec.hh"
#include "base/stats.hh"
#include "mem/frame_arena.hh"
#include "mem/tier.hh"
#include "sim/machine.hh"

namespace kloc {

/** Why (or that) a single-frame migration attempt resolved. */
enum class MigrateResult : uint8_t
{
    Ok = 0,
    NotRelocatable,  ///< the frame may never move
    Pinned,          ///< in-flight I/O holds the frame in place
    Damped,          ///< ping-pong damping retains the page (§4.5)
    SameTier,        ///< already resident on the destination
    Offline,         ///< destination tier is offline
    NoSpace,         ///< destination allocator is exhausted
};

const char *migrateResultName(MigrateResult result);

/** Why a Nomad shadow copy was released (ShadowDrop arg). */
enum class ShadowDropReason : uint8_t
{
    Stale = 0,   ///< the fast copy was written since promotion
    FrameFreed,  ///< the owning frame was freed
    FrameMoved,  ///< the frame migrated somewhere else
    Pressure,    ///< shadow budget exceeded
    Offline,     ///< the shadow's tier went offline
    PolicyStop,  ///< the owning policy was stopped/replaced
};

const char *shadowDropReasonName(ShadowDropReason reason);

/** Owner of all tiers and frames. */
class TierManager
{
  public:
    /**
     * Flat observer slot: a plain function pointer plus context, so
     * the per-alloc/per-free fan-out is a direct indirect call with
     * no type-erasure dispatch. Captureless lambdas convert.
     */
    struct FrameObserver
    {
        void (*fn)(void *ctx, Frame *frame);
        void *ctx;
    };

    /** Observer slots available per direction (alloc / free). */
    static constexpr size_t kMaxObservers = 4;

    /** Migration count beyond which a page is retained (no demote). */
    static constexpr uint8_t kRetainThreshold = 8;

    explicit TierManager(Machine &machine) : _machine(machine) {}

    /** Create a tier (also registered with the machine's MemoryModel). */
    TierId addTier(const TierSpec &spec);

    Tier &tier(TierId id);
    const Tier &tier(TierId id) const;
    size_t tierCount() const { return _tiers.size(); }

    /**
     * Allocate a 2^order-page frame for @p cls, trying tiers in
     * @p preference order.
     * @return the frame, or nullptr when every tier is full.
     */
    Frame *alloc(unsigned order, ObjClass cls, bool relocatable,
                 const TierPreference &preference);

    /** Release @p frame and record its lifetime. */
    void free(Frame *frame);

    /**
     * Re-home @p frame onto @p dst. Space bookkeeping only — the
     * MigrationEngine charges copy costs. Fails (returns false) when
     * the frame is non-relocatable, pinned, or @p dst is full.
     */
    bool migrate(Frame *frame, TierId dst);

    /** migrate() with the failure reason surfaced. */
    MigrateResult migrateEx(Frame *frame, TierId dst);

    /**
     * Re-home @p frame onto @p dst while keeping the source buddy
     * pages allocated as a non-exclusive shadow copy (Nomad). The
     * old (tier, pfn) is recorded on the frame; no FrameAlloc can
     * land there until the shadow is reused or dropped. Space
     * bookkeeping only — the caller emits trace events and charges
     * copy costs. Same failure modes as migrateEx().
     */
    MigrateResult promoteKeepSource(Frame *frame, TierId dst);

    /**
     * Demote @p frame back into its shadow location: the resident
     * copy is freed and the frame re-homes onto the shadow's pages
     * without a new allocation (the shadow pages are already ours).
     * The caller must have checked the shadow is clean and its tier
     * online. Space bookkeeping only. Fails like migrateEx().
     */
    MigrateResult migrateIntoShadow(Frame *frame);

    /**
     * Release @p frame's shadow copy: frees the shadow buddy pages,
     * emits ShadowDrop, and clears the frame's shadow fields. No-op
     * without a shadow.
     */
    void dropShadow(Frame *frame, ShadowDropReason reason);

    /** Drop every live shadow (policy teardown hygiene). */
    void dropAllShadows(ShadowDropReason reason);

    /** Drop every shadow resident on @p id (tier offlining). */
    void dropShadowsOn(TierId id, ShadowDropReason reason);

    /**
     * Take @p id offline or bring it back. Offlining only flips the
     * flag and emits the trace event — draining resident frames is
     * the MigrationEngine's job (it owns cost charging).
     */
    void setTierOnline(TierId id, bool online);

    /** Live frames currently resident on @p id, in stable (frame
     *  pool) order — the drain work-list for offlining. */
    std::vector<FrameRef> collectFramesOn(TierId id);

    /** Observer invoked after a successful alloc(). */
    void addAllocObserver(void (*fn)(void *, Frame *), void *ctx);

    /** Observer invoked just before a frame is freed. */
    void addFreeObserver(void (*fn)(void *, Frame *), void *ctx);

    /** Live frames across all tiers. */
    uint64_t liveFrames() const { return _liveFrames; }

    /** Pages currently held by non-exclusive shadow copies. */
    uint64_t shadowPages() const { return _shadowPages; }

    /** Cumulative shadow copies released, by any reason. */
    uint64_t shadowDrops() const { return _shadowDrops; }

    /** Cumulative page allocations per class (Fig. 2a/2b footprints). */
    uint64_t
    cumulativeAllocPages(ObjClass cls) const
    {
        return _cumAllocPagesByClass[static_cast<unsigned>(cls)];
    }

    /** Lifetime distribution per class in Ticks (Fig. 2d). */
    const Histogram &
    lifetimeHist(ObjClass cls) const
    {
        return _lifetimes[static_cast<unsigned>(cls)];
    }

    /** Reset cumulative counters (between experiment phases). */
    void resetCumulativeStats();

  private:
    Machine &_machine;
    std::vector<std::unique_ptr<Tier>> _tiers;

    // Frame pool with stable addresses; freed frames recycle LIFO.
    FrameArena _frameArena;
    std::vector<Frame *> _freeFrameObjs;
    uint64_t _liveFrames = 0;
    uint64_t _shadowPages = 0;
    uint64_t _shadowDrops = 0;

    uint64_t _cumAllocPagesByClass[kNumObjClasses] = {};
    Histogram _lifetimes[kNumObjClasses];

    InlineVec<FrameObserver, kMaxObservers> _allocObservers;
    InlineVec<FrameObserver, kMaxObservers> _freeObservers;
};

} // namespace kloc

#endif // KLOC_MEM_TIER_MANAGER_HH
