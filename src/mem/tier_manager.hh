/**
 * @file
 * TierManager: the machine's physical memory — every tier, every
 * live Frame, and the accounting behind Figs. 2a/2b/2d and 5b.
 *
 * Placement policy is expressed by the caller through the tier
 * preference order passed to alloc(); the manager walks it until a
 * tier has room. Migration re-homes a Frame in place so that kernel
 * objects holding Frame* never see a pointer change.
 */

#ifndef KLOC_MEM_TIER_MANAGER_HH
#define KLOC_MEM_TIER_MANAGER_HH

#include <memory>
#include <vector>

#include "base/inline_vec.hh"
#include "base/stats.hh"
#include "mem/frame_arena.hh"
#include "mem/tier.hh"
#include "sim/machine.hh"

namespace kloc {

/** Why (or that) a single-frame migration attempt resolved. */
enum class MigrateResult : uint8_t
{
    Ok = 0,
    NotRelocatable,  ///< the frame may never move
    Pinned,          ///< in-flight I/O holds the frame in place
    Damped,          ///< ping-pong damping retains the page (§4.5)
    SameTier,        ///< already resident on the destination
    Offline,         ///< destination tier is offline
    NoSpace,         ///< destination allocator is exhausted
    Poisoned,        ///< an uncorrectable error fired mid-copy
};

const char *migrateResultName(MigrateResult result);

/** Where a frame poisoning surfaced (FramePoison arg). */
enum class PoisonOrigin : uint8_t
{
    Access = 0,  ///< CPU access (MCE-style synchronous fault)
    Scan,        ///< LRU scan touched the bad cells
    Copy,        ///< migration copy read the bad cells
    Storm,       ///< scheduled poison_storm burst
};

const char *poisonOriginName(PoisonOrigin origin);

/** How a poisoned frame's bytes were recovered (MemRecover arg). */
enum class RecoverySource : uint8_t
{
    Shadow = 0,  ///< clean Nomad shadow copy re-adopted (free)
    Reread,      ///< clean page-cache page re-read from the device
};

const char *recoverySourceName(RecoverySource source);

/** Why poisoned bytes could not be recovered (DataLoss arg). */
enum class DataLossReason : uint8_t
{
    Unmovable = 0,  ///< pinned or non-relocatable: poisoned in place
    NoSource,       ///< no shadow and no re-readable backing
    RereadFailed,   ///< device re-read exhausted its retries
    NoSpace,        ///< no online tier could host the evacuation
};

const char *dataLossReasonName(DataLossReason reason);

/** Why a Nomad shadow copy was released (ShadowDrop arg). */
enum class ShadowDropReason : uint8_t
{
    Stale = 0,   ///< the fast copy was written since promotion
    FrameFreed,  ///< the owning frame was freed
    FrameMoved,  ///< the frame migrated somewhere else
    Pressure,    ///< shadow budget exceeded
    Offline,     ///< the shadow's tier went offline
    PolicyStop,  ///< the owning policy was stopped/replaced
};

const char *shadowDropReasonName(ShadowDropReason reason);

/**
 * Per-tier health: an error-rate EWMA with hysteresis. Transitions
 * are always adjacent (healthy ↔ degraded ↔ failed); the thresholds
 * live in TierManager and are mirrored by the InvariantChecker's
 * tier_health rule.
 */
enum class TierHealth : uint8_t
{
    Healthy = 0,
    Degraded,  ///< error rate high: policies deprioritize the tier
    Failed,    ///< error rate critical: the tier auto-drains offline
};

const char *tierHealthName(TierHealth health);

/** Owner of all tiers and frames. */
class TierManager
{
  public:
    /**
     * Flat observer slot: a plain function pointer plus context, so
     * the per-alloc/per-free fan-out is a direct indirect call with
     * no type-erasure dispatch. Captureless lambdas convert.
     */
    struct FrameObserver
    {
        void (*fn)(void *ctx, Frame *frame);
        void *ctx;
    };

    /** Flat observer slot for health transitions. */
    struct HealthObserver
    {
        void (*fn)(void *ctx, TierId tier, TierHealth from,
                   TierHealth to);
        void *ctx;
    };

    /** Observer slots available per direction (alloc / free). */
    static constexpr size_t kMaxObservers = 4;

    /** Migration count beyond which a page is retained (no demote). */
    static constexpr uint8_t kRetainThreshold = 8;

    // Health EWMA tuning. Every recorded error adds kErrorScore to
    // the tier's score; every health tick decays the score by 25%.
    // The up/down threshold pairs (degrade at 4000 / recover at 1000,
    // fail at 16000 / readmit at 6000) overlap nowhere, which is the
    // hysteresis: a tier sitting at a threshold cannot oscillate.
    // The InvariantChecker's tier_health rule mirrors these literals.
    static constexpr uint64_t kErrorScore = 1000;
    static constexpr uint64_t kDegradeScore = 4000;
    static constexpr uint64_t kRecoverScore = 1000;
    static constexpr uint64_t kFailScore = 16000;
    static constexpr uint64_t kReadmitScore = 6000;
    static constexpr Tick kHealthTickPeriod = 10 * kMillisecond;

    explicit TierManager(Machine &machine) : _machine(machine) {}

    /** Create a tier (also registered with the machine's MemoryModel). */
    TierId addTier(const TierSpec &spec);

    /**
     * Per-CPU frame lists (Linux pcp): order-0 allocations and frees
     * go through a cache keyed by the current CPU, refilled and
     * flushed in Tier::kPcpBatch blocks. On by default — this is the
     * allocator configuration the benches baseline against; the
     * toggle exists for the ablation bench and for tests that want
     * raw buddy placement. Disabling drains every cache.
     */
    void setUsePerCpuFrameLists(bool enabled);

    bool usePerCpuFrameLists() const { return _usePcpLists; }

    Tier &tier(TierId id);
    const Tier &tier(TierId id) const;
    size_t tierCount() const { return _tiers.size(); }

    /**
     * Allocate a 2^order-page frame for @p cls, trying tiers in
     * @p preference order.
     * @return the frame, or nullptr when every tier is full.
     */
    Frame *alloc(unsigned order, ObjClass cls, bool relocatable,
                 const TierPreference &preference);

    /** Release @p frame and record its lifetime. */
    void free(Frame *frame);

    /**
     * Re-home @p frame onto @p dst. Space bookkeeping only — the
     * MigrationEngine charges copy costs. Fails (returns false) when
     * the frame is non-relocatable, pinned, or @p dst is full.
     */
    bool migrate(Frame *frame, TierId dst);

    /** migrate() with the failure reason surfaced. */
    MigrateResult migrateEx(Frame *frame, TierId dst);

    /**
     * Re-home @p frame onto @p dst while keeping the source buddy
     * pages allocated as a non-exclusive shadow copy (Nomad). The
     * old (tier, pfn) is recorded on the frame; no FrameAlloc can
     * land there until the shadow is reused or dropped. Space
     * bookkeeping only — the caller emits trace events and charges
     * copy costs. Same failure modes as migrateEx().
     */
    MigrateResult promoteKeepSource(Frame *frame, TierId dst);

    /**
     * Demote @p frame back into its shadow location: the resident
     * copy is freed and the frame re-homes onto the shadow's pages
     * without a new allocation (the shadow pages are already ours).
     * The caller must have checked the shadow is clean and its tier
     * online. Space bookkeeping only. Fails like migrateEx().
     */
    MigrateResult migrateIntoShadow(Frame *frame);

    /**
     * Re-home @p frame off its poisoned block onto @p dst. Like
     * migrateEx() but skips ping-pong damping (containment is not a
     * policy decision) and quarantines the source block instead of
     * freeing it. Any shadow is dropped. The caller emits the
     * MigStart/MigComplete bracket and then FrameQuarantine for the
     * abandoned block — after the bracket, so the checker sees the
     * frame leave the block before the block is retired.
     */
    MigrateResult evacuate(Frame *frame, TierId dst);

    /**
     * Re-home @p frame off its poisoned block into its clean shadow
     * copy. Like migrateIntoShadow() but skips damping and
     * quarantines the abandoned block. Event duties as evacuate().
     */
    MigrateResult evacuateIntoShadow(Frame *frame);

    /** Emit FrameQuarantine for a block retired via evacuate(). */
    void noteQuarantined(TierId tier, Pfn pfn, unsigned order);

    /**
     * Release @p frame's shadow copy: frees the shadow buddy pages,
     * emits ShadowDrop, and clears the frame's shadow fields. No-op
     * without a shadow.
     */
    void dropShadow(Frame *frame, ShadowDropReason reason);

    /** Drop every live shadow (policy teardown hygiene). */
    void dropAllShadows(ShadowDropReason reason);

    /** Drop every shadow resident on @p id (tier offlining). */
    void dropShadowsOn(TierId id, ShadowDropReason reason);

    /**
     * Take @p id offline or bring it back. Offlining only flips the
     * flag and emits the trace event — draining resident frames is
     * the MigrationEngine's job (it owns cost charging).
     */
    void setTierOnline(TierId id, bool online);

    /** Live frames currently resident on @p id, in stable (frame
     *  pool) order — the drain work-list for offlining. */
    std::vector<FrameRef> collectFramesOn(TierId id);

    /** Observer invoked after a successful alloc(). */
    void addAllocObserver(void (*fn)(void *, Frame *), void *ctx);

    /** Observer invoked just before a frame is freed. */
    void addFreeObserver(void (*fn)(void *, Frame *), void *ctx);

    /** Observer invoked on every health transition (after the trace
     *  event). Called synchronously — defer heavy work via events. */
    void addHealthObserver(void (*fn)(void *, TierId, TierHealth,
                                      TierHealth),
                           void *ctx);

    TierHealth health(TierId id) const;

    /** Current (decayed-at-last-tick) error score of @p id. */
    uint64_t healthScore(TierId id) const;

    /**
     * Record one uncorrectable memory error on @p id: bumps the
     * error EWMA, applies any upward health transitions, and arms
     * the periodic decay tick. Error-free runs never schedule the
     * tick, so their traces are untouched.
     */
    void recordTierError(TierId id);

    /**
     * Reorder @p preference by health: healthy tiers first, degraded
     * next, failed last, preserving relative order within each band.
     */
    TierPreference preferHealthy(const TierPreference &preference) const;

    /** Pages quarantined across all tiers. */
    uint64_t quarantinedPages() const;

    /** Live frames across all tiers. */
    uint64_t liveFrames() const { return _liveFrames; }

    /** Pages currently held by non-exclusive shadow copies. */
    uint64_t shadowPages() const { return _shadowPages; }

    /** Cumulative shadow copies released, by any reason. */
    uint64_t shadowDrops() const { return _shadowDrops; }

    /** Cumulative page allocations per class (Fig. 2a/2b footprints). */
    uint64_t
    cumulativeAllocPages(ObjClass cls) const
    {
        return _cumAllocPagesByClass[static_cast<unsigned>(cls)];
    }

    /** Lifetime distribution per class in Ticks (Fig. 2d). */
    const Histogram &
    lifetimeHist(ObjClass cls) const
    {
        return _lifetimes[static_cast<unsigned>(cls)];
    }

    /** Reset cumulative counters (between experiment phases). */
    void resetCumulativeStats();

  private:
    /** Per-tier health machinery state. */
    struct HealthState
    {
        TierHealth health = TierHealth::Healthy;
        uint64_t score = 0;
        Tick lastDecay{};
    };

    void quarantineBlock(Tier &t, Pfn pfn, unsigned order);
    void transitionHealth(TierId id, TierHealth to);
    void applyUpwardTransitions(TierId id);
    void healthTick();

    /** Block alloc/free routed through the current CPU's pcp cache
     *  for order 0; higher orders go straight to the buddy. */
    Pfn allocBlock(Tier &t, unsigned order);
    void freeBlock(Tier &t, Pfn pfn, unsigned order);

    Machine &_machine;
    std::vector<std::unique_ptr<Tier>> _tiers;
    std::vector<HealthState> _health;
    bool _healthTickArmed = false;
    bool _usePcpLists = true;

    // Frame pool with stable addresses; freed frames recycle LIFO.
    FrameArena _frameArena;
    std::vector<Frame *> _freeFrameObjs;
    uint64_t _liveFrames = 0;
    uint64_t _shadowPages = 0;
    uint64_t _shadowDrops = 0;

    uint64_t _cumAllocPagesByClass[kNumObjClasses] = {};
    Histogram _lifetimes[kNumObjClasses];

    InlineVec<FrameObserver, kMaxObservers> _allocObservers;
    InlineVec<FrameObserver, kMaxObservers> _freeObservers;
    InlineVec<HealthObserver, kMaxObservers> _healthObservers;
};

} // namespace kloc

#endif // KLOC_MEM_TIER_MANAGER_HH
