#include "net/net_stack.hh"

#include "base/ordered.hh"

#include "base/logging.hh"

namespace kloc {

NetworkStack::NetworkStack(KernelHeap &heap, KlocManager *kloc,
                           const Config &config)
    : _heap(heap), _kloc(kloc), _config(config)
{
}

void
NetworkStack::ensureRxRing()
{
    if (!_rxRing.empty())
        return;
    // Fill the driver receive ring. Ring buffers are global driver
    // state: allocated once, reused for every incoming packet, and
    // only relocatable through the KLOC interface. Filled lazily so
    // the placement policy is installed by the time they allocate.
    for (unsigned i = 0; i < _config.rxRingSize; ++i) {
        auto buf = std::make_unique<RxBufPage>();
        if (_heap.allocBacking(*buf, true, 0))
            _rxRing.push_back(std::move(buf));
    }
    KLOC_ASSERT(!_rxRing.empty(), "no memory for the rx ring");
}

NetworkStack::~NetworkStack()
{
    // Close in sorted descriptor order so teardown traffic is
    // independent of hash-table layout.
    for (const int sd : sortedSnapshot(_sockets))
        closeSocket(sd);
    for (auto &buf : _rxRing)
        _heap.freeBacking(*buf);
}

NetworkStack::Socket *
NetworkStack::socketFor(int sd)
{
    auto it = _sockets.find(sd);
    return it == _sockets.end() ? nullptr : &it->second;
}

const NetworkStack::Socket *
NetworkStack::socketFor(int sd) const
{
    auto it = _sockets.find(sd);
    return it == _sockets.end() ? nullptr : &it->second;
}

int
NetworkStack::socket()
{
    Machine &machine = _heap.mem().machine();
    machine.cpuWork(Tick{500});  // socket() syscall path
    ++_stats.socketsCreated;

    Socket sock;
    sock.inodeId = _heap.allocInodeId();
    sock.knode = _kloc ? _kloc->mapKnode(sock.inodeId) : nullptr;
    const uint64_t group = sock.knode ? sock.knode->id : 0;

    sock.inode = std::make_unique<Inode>(sock.inodeId);
    sock.inode->isSocket = true;
    sock.inode->refCount = 1;
    if (_heap.allocBacking(*sock.inode, true, group)) {
        if (_kloc && sock.knode)
            _kloc->addObject(sock.knode, sock.inode.get());
        _heap.touchObject(*sock.inode, AccessType::Write);
    }

    sock.sock = std::make_unique<SockObj>();
    if (_heap.allocBacking(*sock.sock, true, group)) {
        if (_kloc && sock.knode)
            _kloc->addObject(sock.knode, sock.sock.get());
        _heap.touchObject(*sock.sock, AccessType::Write);
    }

    if (_kloc && sock.knode)
        _kloc->markActive(sock.knode);

    const int sd = _nextSd++;
    _sockets.emplace(sd, std::move(sock));
    return sd;
}

void
NetworkStack::closeSocket(int sd)
{
    Socket *sock = socketFor(sd);
    if (!sock)
        return;
    Machine &machine = _heap.mem().machine();
    machine.cpuWork(Tick{500});
    ++_stats.socketsClosed;

    while (!sock->rxQueue.empty()) {
        freeSkb(sock->rxQueue.front());
        sock->rxQueue.pop_front();
    }
    if (sock->sock->backed()) {
        if (_kloc && sock->sock->knode)
            _kloc->removeObject(sock->sock.get());
        _heap.freeBacking(*sock->sock);
    }
    if (sock->inode->backed()) {
        if (_kloc && sock->inode->knode)
            _kloc->removeObject(sock->inode.get());
        _heap.freeBacking(*sock->inode);
    }
    if (_kloc && sock->knode)
        _kloc->unmapKnode(sock->knode);
    _sockets.erase(sd);
}

bool
NetworkStack::allocSkb(SkBuff &skb, Knode *knode, bool active)
{
    const uint64_t group = knode ? knode->id : 0;
    skb.head = std::make_unique<SkbHead>();
    if (!_heap.allocBacking(*skb.head, active, group))
        return false;
    skb.data = std::make_unique<SkbuffDataPage>();
    if (!_heap.allocBacking(*skb.data, active, group)) {
        _heap.freeBacking(*skb.head);
        return false;
    }
    if (_kloc && knode) {
        _kloc->addObject(knode, skb.head.get());
        _kloc->addObject(knode, skb.data.get());
    }
    return true;
}

void
NetworkStack::freeSkb(SkBuff &skb)
{
    if (skb.head && skb.head->backed()) {
        if (_kloc && skb.head->knode)
            _kloc->removeObject(skb.head.get());
        _heap.freeBacking(*skb.head);
    }
    if (skb.data && skb.data->backed()) {
        if (_kloc && skb.data->knode)
            _kloc->removeObject(skb.data.get());
        _heap.freeBacking(*skb.data);
    }
    skb.head.reset();
    skb.data.reset();
}

Bytes
NetworkStack::send(int sd, Bytes length)
{
    Socket *sock = socketFor(sd);
    if (!sock || length == 0)
        return Bytes{};
    Machine &machine = _heap.mem().machine();
    machine.cpuWork(Tick{300});  // send() syscall entry
    if (_kloc && sock->knode)
        _kloc->markActive(sock->knode);

    const uint64_t packets = (length + kPacketBytes - 1) / kPacketBytes;
    Bytes sent{};
    for (uint64_t i = 0; i < packets; ++i) {
        const Bytes chunk =
            std::min<Bytes>(kPacketBytes, length - sent);
        SkBuff skb;
        const bool active = sock->knode ? sock->knode->inuse : true;
        if (!allocSkb(skb, sock->knode, active)) {
            // No memory for tx buffers: stall-equivalent penalty.
            machine.cpuWork(_config.wireCost);
            sent += chunk;
            continue;
        }
        // Copy from userspace into the packet buffer.
        _heap.touchObject(*skb.data, AccessType::Write);
        _heap.touchObject(*skb.head, AccessType::Write);
        // TCP -> IP -> driver.
        machine.cpuWork(3 * _config.perLayerCost + _config.wireCost);
        _heap.touchObject(*skb.head, AccessType::Read);
        // TX completion frees the buffers.
        freeSkb(skb);
        ++_stats.packetsSent;
        sent += chunk;
    }
    return sent;
}

void
NetworkStack::deliver(int sd, Bytes length)
{
    Socket *sock = socketFor(sd);
    if (!sock || length == 0)
        return;
    ensureRxRing();
    Machine &machine = _heap.mem().machine();

    const uint64_t packets = (length + kPacketBytes - 1) / kPacketBytes;
    Bytes remaining = length;
    for (uint64_t i = 0; i < packets; ++i) {
        const Bytes chunk = std::min<Bytes>(kPacketBytes, remaining);
        remaining -= chunk;

        // Driver: DMA lands in the next rx-ring buffer.
        RxBufPage *ring_buf = _rxRing[_rxCursor].get();
        _rxCursor = (_rxCursor + 1) % _rxRing.size();
        _heap.touchObject(*ring_buf, AccessType::Write);
        machine.cpuWork(_config.perLayerCost);
        if (_config.klocEarlyDemux && _kloc && sock->knode &&
            ring_buf->backed()) {
            // With the socket known in the driver (§4.2.3), rx-ring
            // pages count as the receiving KLOC's objects: hot ring
            // pages get pulled into fast memory.
            _kloc->maybePromoteOnTouch(ring_buf->frame(), sock->knode);
        }

        // The driver allocates the skb. Without early demux the
        // owning socket is unknown here, so the skb cannot join its
        // knode yet (§4.2.3).
        SkBuff skb;
        Knode *alloc_knode = nullptr;
        bool active = true;
        if (_config.klocEarlyDemux && _kloc) {
            // KLOC extension: extract the socket in the driver.
            machine.cpuWork(_config.earlyDemuxCost);
            alloc_knode = sock->knode;
            active = sock->knode ? sock->knode->inuse : true;
            ++_stats.earlyDemuxPackets;
        }
        if (!allocSkb(skb, alloc_knode, active)) {
            ++_stats.rxDrops;
            continue;
        }
        if (skb.head)
            skb.head->socketHint =
                _config.klocEarlyDemux ? sock->inodeId : 0;
        skb.payload = chunk;
        // Payload copy out of the ring buffer.
        _heap.touchObject(*ring_buf, AccessType::Read);
        _heap.touchObject(*skb.data, AccessType::Write);

        // IP layer.
        machine.cpuWork(_config.perLayerCost);
        _heap.touchObject(*skb.head, AccessType::Read);

        // TCP layer: demux to the socket.
        machine.cpuWork(_config.perLayerCost);
        if (_config.klocEarlyDemux && _kloc) {
            // The 8-byte hint elides the socket lookup.
            machine.cpuWork(_config.demuxCost / 4);
        } else {
            machine.cpuWork(_config.demuxCost);
            ++_stats.lateDemuxPackets;
            // Late knode association happens only now.
            if (_kloc && sock->knode) {
                _kloc->addObject(sock->knode, skb.head.get());
                _kloc->addObject(sock->knode, skb.data.get());
            }
        }
        _heap.touchObject(*sock->sock, AccessType::Write);

        sock->rxQueuedBytes += chunk;
        sock->rxQueue.push_back(std::move(skb));
        ++_stats.packetsDelivered;
    }
}

Bytes
NetworkStack::recv(int sd, Bytes max_length)
{
    Socket *sock = socketFor(sd);
    if (!sock)
        return Bytes{};
    Machine &machine = _heap.mem().machine();
    machine.cpuWork(Tick{300});  // recv() syscall entry
    if (_kloc && sock->knode)
        _kloc->markActive(sock->knode);

    Bytes received{};
    while (!sock->rxQueue.empty() && received < max_length) {
        SkBuff &skb = sock->rxQueue.front();
        if (received + skb.payload > max_length)
            break;
        // Copy to userspace.
        _heap.touchObject(*skb.data, AccessType::Read);
        _heap.touchObject(*skb.head, AccessType::Read);
        received += skb.payload;
        sock->rxQueuedBytes -= skb.payload;
        freeSkb(skb);
        sock->rxQueue.pop_front();
        ++_stats.packetsReceived;
    }
    return received;
}

Bytes
NetworkStack::pendingBytes(int sd) const
{
    const Socket *sock = socketFor(sd);
    return sock ? sock->rxQueuedBytes : Bytes{};
}

bool
NetworkStack::poll(int sd)
{
    Socket *sock = socketFor(sd);
    if (!sock)
        return false;
    Machine &machine = _heap.mem().machine();
    machine.cpuWork(Tick{150});  // poll/epoll syscall path
    if (sock->sock->backed())
        _heap.touchObject(*sock->sock, AccessType::Read);
    if (_kloc && sock->knode)
        _kloc->markActive(sock->knode);
    return sock->rxQueuedBytes > 0;
}

Knode *
NetworkStack::knodeOf(int sd) const
{
    const Socket *sock = socketFor(sd);
    return sock ? sock->knode : nullptr;
}

} // namespace kloc
