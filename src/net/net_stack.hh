/**
 * @file
 * Simplified networking stack: sockets, skbuffs, a driver rx ring,
 * and layered ingress/egress processing.
 *
 * The structural point the paper makes about networking (§4.2.3) is
 * reproduced: on the ingress path the driver allocates a generic
 * packet buffer *before* the owning socket is known — the socket is
 * resolved only at the TCP layer (late demux), which delays knode
 * association. The KLOC extension adds an 8-byte socket field
 * extracted in the driver (early demux), associating buffers with
 * their KLOC immediately and eliding redundant work higher up.
 *
 * Packets are modelled as GRO-aggregated 4 KB super-packets: one
 * SkbuffHead (slab) plus one SkbuffData page each.
 */

#ifndef KLOC_NET_NET_STACK_HH
#define KLOC_NET_NET_STACK_HH

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/kloc_manager.hh"
#include "fs/objects.hh"
#include "kobj/kernel_heap.hh"

namespace kloc {

/** Packet payload buffer (page-backed). */
struct SkbuffDataPage : KernelObject
{
    SkbuffDataPage() : KernelObject(KobjKind::SkbuffData) {}
};

/** Receive-ring driver buffer (page-backed, reused). */
struct RxBufPage : KernelObject
{
    RxBufPage() : KernelObject(KobjKind::RxBuf) {}
};

/** Packet-header object (struct sk_buff). */
struct SkbHead : KernelObject
{
    SkbHead() : KernelObject(KobjKind::SkbuffHead) {}

    /** The 8-byte early-demux socket field (KLOC extension). */
    uint64_t socketHint = 0;
};

/** Socket kernel object (struct sock). */
struct SockObj : KernelObject
{
    SockObj() : KernelObject(KobjKind::Sock) {}
};

/** Networking statistics for the experiments. */
struct NetStats
{
    uint64_t socketsCreated = 0;
    uint64_t socketsClosed = 0;
    uint64_t packetsSent = 0;
    uint64_t packetsReceived = 0;
    uint64_t packetsDelivered = 0;  ///< handed to a socket's rx queue
    uint64_t earlyDemuxPackets = 0;
    uint64_t lateDemuxPackets = 0;
    uint64_t rxDrops = 0;           ///< no memory for skbs
};

/** The network stack. */
class NetworkStack
{
  public:
    struct Config
    {
        unsigned rxRingSize = 256;
        /** Extract the socket in the driver (the KLOC extension). */
        bool klocEarlyDemux = false;
        /** CPU per layer traversed (driver, IP, TCP). */
        Tick perLayerCost{350};
        /** CPU of the TCP-layer socket lookup (late demux). */
        Tick demuxCost{500};
        /** Extra driver CPU for the early-demux extraction. */
        Tick earlyDemuxCost{80};
        /** Fixed wire+NIC cost per packet. */
        Tick wireCost{1200};
    };

    /** Simulated super-packet payload (GRO-aggregated). */
    static constexpr Bytes kPacketBytes = kPageSize;

    NetworkStack(KernelHeap &heap, KlocManager *kloc,
                 const Config &config);
    ~NetworkStack();

    NetworkStack(const NetworkStack &) = delete;
    NetworkStack &operator=(const NetworkStack &) = delete;

    /** Flip the early-demux driver extension (per-strategy). */
    void setEarlyDemux(bool enabled) { _config.klocEarlyDemux = enabled; }

    bool earlyDemux() const { return _config.klocEarlyDemux; }

    /** Create a socket; returns the socket descriptor. */
    int socket();

    /** Close @p sd, freeing its objects and knode. */
    void closeSocket(int sd);

    /** Egress: send @p length bytes on @p sd. */
    Bytes send(int sd, Bytes length);

    /**
     * Simulate NIC ingress of @p length bytes destined for @p sd:
     * rx-ring fill, skb allocation, layered processing, demux, and
     * enqueue on the socket's receive queue.
     */
    void deliver(int sd, Bytes length);

    /** App-side receive: drain up to @p max_length queued bytes. */
    Bytes recv(int sd, Bytes max_length);

    /** Bytes waiting on @p sd's receive queue. */
    Bytes pendingBytes(int sd) const;

    /**
     * poll(): check @p sd for readability. Marks the socket's KLOC
     * active (applications polling a socket keep it hot, §4.2.3).
     * @return true when data is queued.
     */
    bool poll(int sd);

    const NetStats &stats() const { return _stats; }

    /** Knode backing @p sd's socket (nullptr when KLOC is off). */
    Knode *knodeOf(int sd) const;

    uint64_t liveSockets() const { return _sockets.size(); }

  private:
    struct SkBuff
    {
        std::unique_ptr<SkbHead> head;
        std::unique_ptr<SkbuffDataPage> data;
        Bytes payload{};
    };

    struct Socket
    {
        uint64_t inodeId = 0;
        std::unique_ptr<Inode> inode;
        std::unique_ptr<SockObj> sock;
        Knode *knode = nullptr;
        std::deque<SkBuff> rxQueue;
        Bytes rxQueuedBytes{};
    };

    Socket *socketFor(int sd);
    const Socket *socketFor(int sd) const;
    bool allocSkb(SkBuff &skb, Knode *knode, bool active);
    void freeSkb(SkBuff &skb);
    void ensureRxRing();

    KernelHeap &_heap;
    KlocManager *_kloc;
    Config _config;

    std::unordered_map<int, Socket> _sockets;
    int _nextSd = 3;  // 0/1/2 are taken, as tradition demands

    /** Driver receive ring: preallocated, reused page buffers. */
    std::vector<std::unique_ptr<RxBufPage>> _rxRing;
    size_t _rxCursor = 0;

    NetStats _stats;
};

} // namespace kloc

#endif // KLOC_NET_NET_STACK_HH
