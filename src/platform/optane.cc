#include "platform/optane.hh"

#include <cmath>

#include "base/logging.hh"

namespace kloc {

OptanePlatform::OptanePlatform(const Config &config) : _config(config)
{
    System::Config sys_cfg = config.system;
    if (sys_cfg.sockets < 2)
        sys_cfg.sockets = 2;
    _system = std::make_unique<System>(sys_cfg);

    // Effective DRAM-cache-fronted PMEM timing.
    const double h = config.dramCacheHitFraction;
    const auto blend = [h](double dram, double pmem) {
        return h * dram + (1.0 - h) * pmem;
    };
    const Tick read_lat = static_cast<Tick>(std::llround(
        blend(static_cast<double>(config.dramLatency),
              3.0 * static_cast<double>(config.dramLatency))));
    const Tick write_lat = static_cast<Tick>(std::llround(
        blend(static_cast<double>(config.dramLatency),
              5.0 * static_cast<double>(config.dramLatency))));
    // Bandwidth blends harmonically (time per byte adds).
    const double dram_bw = static_cast<double>(config.dramBandwidth);
    const double pmem_bw = dram_bw / 4.0;
    const auto eff_bw = static_cast<Bytes>(
        1.0 / (h / dram_bw + (1.0 - h) / pmem_bw));

    for (unsigned socket = 0; socket < sys_cfg.sockets; ++socket) {
        TierSpec spec;
        spec.name = "optane-s" + std::to_string(socket);
        spec.capacity = config.socketCapacity / config.scale;
        spec.readLatency = read_lat;
        spec.writeLatency = write_lat;
        spec.readBandwidth = eff_bw;
        spec.writeBandwidth = eff_bw;
        spec.socket = static_cast<int>(socket);
        _socketTiers.push_back(_system->tiers().addTier(spec));
    }

    _system->buildSubsystems();
    TierPreference socket_pref;
    for (const TierId tier : _socketTiers)
        socket_pref.push_back(tier);
    _teardownPlacement = std::make_unique<StaticPlacement>(
        socket_pref, socket_pref);
    _system->heap().setPolicy(_teardownPlacement.get());
}

OptanePlatform::~OptanePlatform()
{
    if (_policy)
        _policy->stop();
    _system->heap().setPolicy(_teardownPlacement.get());
}

void
OptanePlatform::moveTaskToSocket(int socket)
{
    KLOC_ASSERT(socket >= 0 &&
                socket < static_cast<int>(
                    _system->machine().socketCount()),
                "bad socket %d", socket);
    _taskSocket = socket;
    const auto cpus = taskCpus();
    _system->machine().setCurrentCpu(cpus.front());
}

std::vector<unsigned>
OptanePlatform::taskCpus() const
{
    std::vector<unsigned> cpus;
    Machine &machine = _system->machine();
    for (unsigned cpu = 0; cpu < machine.cpuCount(); ++cpu) {
        if (machine.socketOf(cpu) == _taskSocket)
            cpus.push_back(cpu);
    }
    KLOC_ASSERT(!cpus.empty(), "socket %d has no cpus", _taskSocket);
    return cpus;
}

void
OptanePlatform::setInterference(bool enabled)
{
    if (enabled) {
        _system->machine().memModel().setInterference(
            _config.interferedSocket, _config.interferenceFactor);
    } else {
        _system->machine().memModel().clearInterference();
    }
}

AutoNumaPolicy &
OptanePlatform::applyPolicy(AutoNumaPolicy::Mode mode,
                            AutoNumaPolicy::Config config)
{
    if (_policy)
        _policy->stop();
    _policy = std::make_unique<AutoNumaPolicy>(
        mode, _system->heap(), _system->lru(), _system->migrator(),
        &_system->kloc(), _socketTiers, config);
    _policy->install();
    _system->net().setEarlyDemux(mode == AutoNumaPolicy::Mode::Kloc);
    _policy->start();
    return *_policy;
}

AutoNumaPolicy &
OptanePlatform::applyPolicy(AutoNumaPolicy::Mode mode)
{
    return applyPolicy(mode, AutoNumaPolicy::Config{});
}

} // namespace kloc
