/**
 * @file
 * The Optane Memory-Mode platform of Table 4: two sockets, each a
 * 16 GB hardware-managed DRAM L4 cache in front of 128 GB of
 * persistent memory. Software moves data *between* sockets
 * (AutoNUMA-style); hardware tiers *within* a socket.
 *
 * The DRAM cache is folded into each socket tier's effective timing
 * via a configurable hit fraction: eff = h*dram + (1-h)*pmem, with
 * pmem at 3x read / 5x write latency and a quarter of the bandwidth
 * (§2). A streaming interferer multiplies access costs on one socket
 * (Fig. 5a's experimental setup).
 */

#ifndef KLOC_PLATFORM_OPTANE_HH
#define KLOC_PLATFORM_OPTANE_HH

#include <memory>
#include <vector>

#include "platform/system.hh"
#include "policy/autonuma.hh"

namespace kloc {

/** Optane Memory-Mode platform builder. */
class OptanePlatform
{
  public:
    struct Config
    {
        unsigned scale = 64;
        /** Paper-scale per-socket capacity (128 GB PMEM). */
        Bytes socketCapacity = 128 * kGiB;
        /** DRAM L4 cache hit fraction folded into timing. */
        double dramCacheHitFraction = 0.70;
        Tick dramLatency{80};
        Bytes dramBandwidth = 30ULL * 1000 * kMiB;
        /** Interference factor on the loaded socket. */
        double interferenceFactor = 1.8;
        int interferedSocket = 0;
        System::Config system;
    };

    explicit OptanePlatform(const Config &config);

    OptanePlatform() : OptanePlatform(Config{}) {}

    ~OptanePlatform();

    System &sys() { return *_system; }

    /** Tier hosting each socket's memory. */
    const std::vector<TierId> &socketTiers() const { return _socketTiers; }

    /**
     * Pin the simulated task to @p socket: subsequent workload CPU
     * rotation stays within that socket's cores.
     */
    void moveTaskToSocket(int socket);

    int taskSocket() const { return _taskSocket; }

    /** CPUs belonging to the task's socket. */
    std::vector<unsigned> taskCpus() const;

    /** Turn the streaming interferer on/off. */
    void setInterference(bool enabled);

    /** Install and start an AutoNUMA-family policy. */
    AutoNumaPolicy &applyPolicy(AutoNumaPolicy::Mode mode,
                                AutoNumaPolicy::Config config);

    AutoNumaPolicy &applyPolicy(AutoNumaPolicy::Mode mode);

    AutoNumaPolicy *policy() { return _policy.get(); }

    const Config &config() const { return _config; }

  private:
    Config _config;
    /** Outlives _system; see TwoTierPlatform::_teardownPlacement. */
    std::unique_ptr<StaticPlacement> _teardownPlacement;
    std::unique_ptr<System> _system;
    std::vector<TierId> _socketTiers;
    std::unique_ptr<AutoNumaPolicy> _policy;
    int _taskSocket = 0;
};

} // namespace kloc

#endif // KLOC_PLATFORM_OPTANE_HH
