#include "platform/system.hh"

namespace kloc {

StatSet
System::snapshot() const
{
    StatSet stats;
    stats.set("time_ms", static_cast<double>(_machine.now()) /
                         static_cast<double>(kMillisecond));
    stats.set("kernel_refs", static_cast<double>(_machine.kernelRefs()));
    stats.set("user_refs", static_cast<double>(_machine.userRefs()));
    stats.set("kernel_ref_ms",
              static_cast<double>(_machine.kernelRefTicks()) /
              static_cast<double>(kMillisecond));
    stats.set("user_ref_ms",
              static_cast<double>(_machine.userRefTicks()) /
              static_cast<double>(kMillisecond));

    for (size_t t = 0; t < _tiers.tierCount(); ++t) {
        const Tier &tier = _tiers.tier(static_cast<TierId>(t));
        const std::string prefix = "tier." + tier.spec().name + ".";
        stats.set(prefix + "used_pages",
                  static_cast<double>(tier.usedPages()));
        stats.set(prefix + "utilization", tier.utilization());
        for (unsigned c = 0; c < kNumObjClasses; ++c) {
            const auto cls = static_cast<ObjClass>(c);
            stats.set(prefix + "resident." + objClassName(cls),
                      static_cast<double>(tier.residentPages(cls)));
        }
    }

    const MigrationStats &mig = _migrator.stats();
    stats.set("migration.pages", static_cast<double>(mig.migratedPages));
    stats.set("migration.demoted",
              static_cast<double>(mig.demotedPages));
    stats.set("migration.promoted",
              static_cast<double>(mig.promotedPages));
    stats.set("migration.failed_not_relocatable",
              static_cast<double>(mig.failedNotRelocatable));
    stats.set("migration.failed_no_space",
              static_cast<double>(mig.failedNoSpace));
    stats.set("migration.failed_pinned",
              static_cast<double>(mig.failedPinned));
    stats.set("migration.failed_damped",
              static_cast<double>(mig.failedDamped));
    stats.set("migration.failed_offline",
              static_cast<double>(mig.failedOffline));
    stats.set("migration.failed_stale",
              static_cast<double>(mig.failedStale));
    stats.set("migration.no_space_retries",
              static_cast<double>(mig.noSpaceRetries));

    const FaultInjector &faults = _machine.faults();
    if (faults.armed()) {
        stats.set("faults.total_fires",
                  static_cast<double>(faults.totalFires()));
    }

    const KlocStats &ks = _kloc.stats();
    stats.set("kloc.enabled", _kloc.enabled() ? 1 : 0);
    stats.set("kloc.knodes_created",
              static_cast<double>(ks.knodesCreated));
    stats.set("kloc.knodes_live", static_cast<double>(_kloc.knodeCount()));
    stats.set("kloc.objects_tracked",
              static_cast<double>(ks.objectsTracked));
    stats.set("kloc.percpu_hits", static_cast<double>(ks.perCpuHits));
    stats.set("kloc.percpu_misses",
              static_cast<double>(ks.perCpuMisses));
    stats.set("kloc.metadata_peak_bytes",
              static_cast<double>(_kloc.peakMetadataBytes()));

    if (_fs) {
        const FsStats &fss = _fs->stats();
        stats.set("fs.reads", static_cast<double>(fss.reads));
        stats.set("fs.writes", static_cast<double>(fss.writes));
        stats.set("fs.read_hits", static_cast<double>(fss.readPageHits));
        stats.set("fs.read_misses",
                  static_cast<double>(fss.readPageMisses));
        stats.set("fs.readahead_pages",
                  static_cast<double>(fss.readaheadPages));
        stats.set("fs.reclaimed_pages",
                  static_cast<double>(fss.reclaimedPages));
        stats.set("fs.writeback_pages",
                  static_cast<double>(fss.writebackPages));
        stats.set("fs.cached_pages",
                  static_cast<double>(_fs->cachedPages()));
        stats.set("fs.live_inodes",
                  static_cast<double>(_fs->liveInodes()));
        stats.set("fs.device_requests",
                  static_cast<double>(_fs->device().requests()));
        stats.set("fs.journal_commits",
                  static_cast<double>(_fs->journal().committedTxs()));
        stats.set("fs.device_io_errors",
                  static_cast<double>(_fs->device().ioErrors()));
        stats.set("fs.device_timeouts",
                  static_cast<double>(_fs->device().timeouts()));
        stats.set("fs.bio_retries",
                  static_cast<double>(_fs->blockLayer().bioRetries()));
        stats.set("fs.bio_errors",
                  static_cast<double>(_fs->blockLayer().bioErrors()));
        stats.set("fs.read_errors",
                  static_cast<double>(fss.readErrors));
        stats.set("fs.writeback_errors",
                  static_cast<double>(fss.writebackErrors));
        stats.set("fs.journal_crashes",
                  static_cast<double>(_fs->journal().crashes()));
        stats.set("fs.journal_recovered",
                  static_cast<double>(_fs->journal().recoveredTxs()));
        stats.set("fs.journal_commit_aborts",
                  static_cast<double>(_fs->journal().commitAborts()));
    }
    if (_net) {
        const NetStats &ns = _net->stats();
        stats.set("net.packets_delivered",
                  static_cast<double>(ns.packetsDelivered));
        stats.set("net.packets_sent",
                  static_cast<double>(ns.packetsSent));
        stats.set("net.early_demux",
                  static_cast<double>(ns.earlyDemuxPackets));
        stats.set("net.rx_drops", static_cast<double>(ns.rxDrops));
        stats.set("net.live_sockets",
                  static_cast<double>(_net->liveSockets()));
    }
    return stats;
}

} // namespace kloc
