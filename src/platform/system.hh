/**
 * @file
 * System: the fully composed simulated machine — memory tiers,
 * allocators, KLOC, filesystem, and network stack — in dependency
 * order. Platforms (two-tier, Optane) build one of these with their
 * tier layout, then strategies and workloads run against it.
 */

#ifndef KLOC_PLATFORM_SYSTEM_HH
#define KLOC_PLATFORM_SYSTEM_HH

#include <memory>

#include "core/kloc_manager.hh"
#include "fs/vfs.hh"
#include "kobj/kernel_heap.hh"
#include "mem/accessor.hh"
#include "mem/lru.hh"
#include "mem/migration.hh"
#include "mem/tier_manager.hh"
#include "net/net_stack.hh"
#include "sim/machine.hh"

namespace kloc {

/** The composed simulated kernel + machine. */
class System
{
  public:
    struct Config
    {
        unsigned cpus = 16;
        unsigned sockets = 1;
        double llcHitFraction = 0.35;
        FileSystem::Config fs;
        NetworkStack::Config net;
    };

    explicit System(const Config &config)
        : _machine(config.cpus, config.sockets),
          _tiers(_machine),
          _lru(_machine, _tiers),
          _mem(_machine, _lru),
          _migrator(_machine, _tiers, _lru),
          _heap(_mem, _tiers),
          _kloc(_heap, _migrator),
          _config(config)
    {
        _machine.memModel().setLlcHitFraction(config.llcHitFraction);
    }

    /** Create the FS and network stacks (after tiers are added). */
    void
    buildSubsystems()
    {
        _fs = std::make_unique<FileSystem>(_heap, &_kloc, _config.fs);
        _net = std::make_unique<NetworkStack>(_heap, &_kloc, _config.net);
        // hwpoison containment recovers clean page-cache pages by
        // re-reading them from the device through the block layer.
        _migrator.setRereadHook(
            [](void *ctx, Frame *frame) {
                return static_cast<FileSystem *>(ctx)->canRereadFrame(
                    frame);
            },
            [](void *ctx, Frame *frame) {
                return static_cast<FileSystem *>(ctx)->rereadFrame(frame);
            },
            _fs.get());
    }

    Machine &machine() { return _machine; }
    TierManager &tiers() { return _tiers; }
    LruEngine &lru() { return _lru; }
    MemAccessor &mem() { return _mem; }
    MigrationEngine &migrator() { return _migrator; }
    KernelHeap &heap() { return _heap; }
    KlocManager &kloc() { return _kloc; }
    FileSystem &fs() { return *_fs; }
    NetworkStack &net() { return *_net; }

    const Config &config() const { return _config; }

    /**
     * Snapshot every interesting counter into a StatSet — the
     * single reporting surface examples, the CLI, and experiment
     * logs share.
     */
    StatSet snapshot() const;

  private:
    Machine _machine;
    TierManager _tiers;
    LruEngine _lru;
    MemAccessor _mem;
    MigrationEngine _migrator;
    KernelHeap _heap;
    KlocManager _kloc;
    Config _config;
    std::unique_ptr<FileSystem> _fs;
    std::unique_ptr<NetworkStack> _net;
};

} // namespace kloc

#endif // KLOC_PLATFORM_SYSTEM_HH
