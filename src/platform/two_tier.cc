#include "platform/two_tier.hh"

#include "base/logging.hh"

namespace kloc {

TwoTierPlatform::TwoTierPlatform(const Config &config) : _config(config)
{
    KLOC_ASSERT(config.scale >= 1, "scale must be >= 1");
    KLOC_ASSERT(config.bandwidthRatio >= 1, "bad bandwidth ratio");

    _system = std::make_unique<System>(config.system);

    TierSpec fast;
    fast.name = "fast-dram";
    fast.capacity = config.fastCapacity / config.scale;
    fast.readLatency = config.dramLatency;
    fast.writeLatency = config.dramLatency;
    fast.readBandwidth = config.fastBandwidth;
    fast.writeBandwidth = config.fastBandwidth;
    fast.socket = 0;
    _fast = _system->tiers().addTier(fast);

    TierSpec slow;
    slow.name = "slow-dram";
    slow.capacity = config.slowCapacity / config.scale;
    slow.readLatency = config.dramLatency;
    slow.writeLatency = config.dramLatency;
    slow.readBandwidth = config.fastBandwidth / config.bandwidthRatio;
    slow.writeBandwidth = config.fastBandwidth / config.bandwidthRatio;
    slow.socket = 0;  // same socket: throttled DRAM, not NUMA
    _slow = _system->tiers().addTier(slow);

    _system->buildSubsystems();
    _teardownPlacement = std::make_unique<StaticPlacement>(
        TierPreference{_fast, _slow},
        TierPreference{_fast, _slow});
    _system->heap().setPolicy(_teardownPlacement.get());
}

TwoTierPlatform::~TwoTierPlatform()
{
    if (_policy)
        _policy->stop();
    // The policy dies before the System; teardown allocations
    // (unlink journalling) fall back to the static placement.
    _system->heap().setPolicy(_teardownPlacement.get());
}

Policy &
TwoTierPlatform::applyPolicy(std::unique_ptr<Policy> policy)
{
    KLOC_ASSERT(policy != nullptr, "applyPolicy(nullptr)");
    if (_policy)
        _policy->stop();
    _policy = std::move(policy);
    _policy->install();
    const bool kloc_on = _policy->usesKloc();
    if (!kloc_on) {
        // A prior KLOC policy may have left the runtime enabled;
        // install() of a KLOC-blind policy (e.g. Jenga) can't know.
        _system->kloc().setEnabled(false);
        _system->heap().setKlocInterface(false);
    }
    // The KLOC policies also use the early-demux driver extension.
    _system->net().setEarlyDemux(kloc_on);
    _policy->start();
    return *_policy;
}

Policy &
TwoTierPlatform::applyPolicyByName(const std::string &name)
{
    PolicyContext ctx{_system->heap(), _system->lru(),
                      _system->migrator(), &_system->kloc(),
                      _fast, _slow};
    std::unique_ptr<Policy> policy = makePolicy(name, ctx);
    KLOC_ASSERT(policy != nullptr, "unknown policy '%s'", name.c_str());
    return applyPolicy(std::move(policy));
}

TieringStrategy &
TwoTierPlatform::applyStrategy(StrategyKind kind,
                               TieringStrategy::Config config)
{
    auto strategy = std::make_unique<TieringStrategy>(
        kind, _system->heap(), _system->lru(), _system->migrator(),
        &_system->kloc(), _fast, _slow, config);
    TieringStrategy &ref = *strategy;
    applyPolicy(std::move(strategy));
    return ref;
}

TieringStrategy &
TwoTierPlatform::applyStrategy(StrategyKind kind)
{
    return applyStrategy(kind, TieringStrategy::Config{});
}

} // namespace kloc
