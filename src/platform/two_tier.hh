/**
 * @file
 * The software-managed two-tier memory platform of Table 4: a fast
 * high-bandwidth DRAM tier and a bandwidth-throttled slow DRAM tier,
 * both OS-managed. Capacities and the bandwidth ratio are the Fig. 6
 * sweep knobs.
 *
 * The paper's 8 GB / 30 GB/s fast tier and 40 GB datasets are
 * simulated at a configurable linear scale (default 1:64); all
 * ratios are preserved.
 */

#ifndef KLOC_PLATFORM_TWO_TIER_HH
#define KLOC_PLATFORM_TWO_TIER_HH

#include <memory>
#include <string>

#include "platform/system.hh"
#include "policy/registry.hh"
#include "policy/strategy.hh"

namespace kloc {

/** Two-tier platform builder and policy host. */
class TwoTierPlatform
{
  public:
    struct Config
    {
        /** Linear scale factor vs. the paper's hardware (1:N). */
        unsigned scale = 64;
        /** Paper-scale fast capacity (scaled down by `scale`). */
        Bytes fastCapacity = 8 * kGiB;
        /** Paper-scale slow capacity. */
        Bytes slowCapacity = 72 * kGiB;
        /** Fast-tier bandwidth (Table 4: 30 GB/s). */
        Bytes fastBandwidth = 30ULL * 1000 * kMiB;
        /** Fast:slow bandwidth ratio (Fig. 6 sweeps 8/4/2). */
        unsigned bandwidthRatio = 8;
        Tick dramLatency{80};
        System::Config system;
    };

    explicit TwoTierPlatform(const Config &config);

    /** Convenience: default configuration. */
    TwoTierPlatform() : TwoTierPlatform(Config{}) {}

    ~TwoTierPlatform();

    System &sys() { return *_system; }

    TierId fastTier() const { return _fast; }
    TierId slowTier() const { return _slow; }

    /**
     * Install and start @p policy, replacing (stopping) any previous
     * one. Centralises the policy lifecycle: non-KLOC policies get
     * the KLOC runtime and the early-demux driver extension switched
     * off so a previously applied KLOC policy leaves no residue.
     */
    Policy &applyPolicy(std::unique_ptr<Policy> policy);

    /**
     * Build @p name through the policy registry and apply it.
     * Asserts on unknown names (see policyNames()).
     */
    Policy &applyPolicyByName(const std::string &name);

    /**
     * Install and start @p kind with the given strategy config.
     * Replaces any previously applied policy.
     */
    TieringStrategy &applyStrategy(StrategyKind kind,
                                   TieringStrategy::Config config);

    TieringStrategy &applyStrategy(StrategyKind kind);

    /** The applied policy, or nullptr before the first apply. */
    Policy *policy() { return _policy.get(); }

    /**
     * The applied policy as a TieringStrategy, or nullptr when none
     * is applied or the policy is not a plain strategy.
     */
    TieringStrategy *strategy()
    {
        return dynamic_cast<TieringStrategy *>(_policy.get());
    }

    const Config &config() const { return _config; }

  private:
    Config _config;
    /**
     * Placement used during teardown; declared before _system so it
     * outlives the FS/KLOC destructors that still allocate (journal
     * records for unlink metadata).
     */
    std::unique_ptr<StaticPlacement> _teardownPlacement;
    std::unique_ptr<System> _system;
    TierId _fast = kInvalidTier;
    TierId _slow = kInvalidTier;
    std::unique_ptr<Policy> _policy;
};

} // namespace kloc

#endif // KLOC_PLATFORM_TWO_TIER_HH
