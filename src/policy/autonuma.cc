#include "policy/autonuma.hh"

#include "base/logging.hh"

namespace kloc {

AutoNumaPolicy::AutoNumaPolicy(Mode mode, KernelHeap &heap, LruEngine &lru,
                               MigrationEngine &migrator, KlocManager *kloc,
                               std::vector<TierId> socket_tiers,
                               Config config)
    : _mode(mode),
      _heap(heap),
      _lru(lru),
      _migrator(migrator),
      _kloc(kloc),
      _socketTiers(std::move(socket_tiers)),
      _config(config)
{
    KLOC_ASSERT(_socketTiers.size() >= 2, "AutoNUMA needs >= 2 sockets");
    KLOC_ASSERT(_mode != Mode::Kloc || _kloc != nullptr,
                "KLOC mode requires a KlocManager");
}

const char *
AutoNumaPolicy::name() const
{
    switch (_mode) {
      case Mode::Static:    return "numa_static";
      case Mode::AutoNuma:  return "numa_autonuma";
      case Mode::NimbleApp: return "numa_nimble";
      case Mode::Kloc:      return "numa_kloc";
    }
    return "numa_unknown";
}

TierId
AutoNumaPolicy::localTier() const
{
    const int socket = _heap.mem().machine().currentSocket();
    KLOC_ASSERT(static_cast<size_t>(socket) < _socketTiers.size(),
                "socket %d has no tier", socket);
    return _socketTiers[static_cast<size_t>(socket)];
}

TierPreference
AutoNumaPolicy::localFirst() const
{
    TierPreference pref;
    pref.push_back(localTier());
    for (const TierId tier : _socketTiers) {
        if (tier != pref.front())
            pref.push_back(tier);
    }
    return pref;
}

TierPreference
AutoNumaPolicy::kernelPreference(ObjClass, bool)
{
    // Kernel objects allocate on the socket running the allocating
    // CPU — what every stock kernel does (§3.3). Health degradation
    // reorders that: a degraded local tier falls behind healthy
    // remote ones.
    return _heap.tiers().preferHealthy(localFirst());
}

TierPreference
AutoNumaPolicy::appPreference()
{
    return _heap.tiers().preferHealthy(localFirst());
}

void
AutoNumaPolicy::install()
{
    _heap.setPolicy(this);
    const bool kloc_on = _mode == Mode::Kloc;
    if (_kloc) {
        _kloc->setEnabled(kloc_on);
        if (kloc_on) {
            // Tier order is task-relative; re-pointed every tick.
            _kloc->setTierOrder(localFirst());
            _heap.setKlocInterface(true);
        } else {
            _heap.setKlocInterface(false);
        }
    }
    _migrator.setParallelism(
        _mode == Mode::NimbleApp || _mode == Mode::Kloc
            ? _config.nimbleParallelism
            : 1);
}

void
AutoNumaPolicy::balanceTick()
{
    if (!_running)
        return;
    ++_ticks;
    Machine &machine = _heap.mem().machine();
    const TierId local = localTier();

    // NUMA-balancing pass: pages the task touched on remote sockets
    // migrate toward it, like hinting-fault-driven migration. Stock
    // AutoNUMA only moves app pages.
    for (const TierId tier : _socketTiers) {
        if (tier == local)
            continue;
        _lru.collectReferenced(tier, _config.migrateBatch, _hotScratch);
        _movers.clear();
        for (const FrameRef &ref : _hotScratch) {
            if (ref.valid() && ref->objClass == ObjClass::App)
                _movers.push_back(ref);
        }
        _migrator.migrate(_movers, local);
    }

    if (_mode == Mode::Kloc && _kloc) {
        // KLOC extension (§4.5): for active KLOCs, check member
        // objects' placement and pull remote ones local.
        _kloc->setTierOrder(localFirst());
        for (Knode *knode : _kloc->lruKnodes(~0ULL)) {
            if (knode->inuse)
                _kloc->migrateKnodeObjects(knode, local);
        }
    }

    machine.events().schedule(
        machine.now() + _config.scanPeriod,
        [this, weak = std::weak_ptr<int>(_alive)] {
            if (!weak.expired())
                balanceTick();
        });
}

void
AutoNumaPolicy::start()
{
    if (_running || _mode == Mode::Static)
        return;
    _running = true;
    Machine &machine = _heap.mem().machine();
    machine.events().schedule(
        machine.now() + _config.scanPeriod,
        [this, weak = std::weak_ptr<int>(_alive)] {
            if (!weak.expired())
                balanceTick();
        });
}

void
AutoNumaPolicy::stop()
{
    _running = false;
}

} // namespace kloc
