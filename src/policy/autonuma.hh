/**
 * @file
 * AutoNUMA-style policies for the Optane Memory-Mode platform
 * (§4.5, §6.2, Fig. 5a).
 *
 * The platform is two sockets, each a DRAM-cache-fronted persistent
 * memory tier. A streaming interferer degrades one socket; the
 * scheduler moves the task to the other socket, and the policy
 * decides which pages follow:
 *
 *  - Static:   nothing migrates (the all-remote worst case).
 *  - AutoNuma: hot application pages migrate to the task's socket;
 *    kernel objects are ignored (stock Linux behaviour).
 *  - NimbleApp: AutoNuma with parallelised page copy.
 *  - Kloc:     AutoNuma plus kernel-object migration through knodes.
 */

#ifndef KLOC_POLICY_AUTONUMA_HH
#define KLOC_POLICY_AUTONUMA_HH

#include <memory>
#include <vector>

#include "core/kloc_manager.hh"
#include "mem/lru.hh"
#include "mem/migration.hh"
#include "policy/policy.hh"

namespace kloc {

/** NUMA balancing policy variants compared in Fig. 5a. */
class AutoNumaPolicy : public Policy
{
  public:
    enum class Mode { Static, AutoNuma, NimbleApp, Kloc };

    struct Config
    {
        Tick scanPeriod = 50 * kMillisecond;
        FrameCount migrateBatch{8192};
        unsigned nimbleParallelism = 8;
    };

    /**
     * @param socket_tiers tier id hosting each socket's memory,
     *                     indexed by socket number.
     */
    AutoNumaPolicy(Mode mode, KernelHeap &heap, LruEngine &lru,
                   MigrationEngine &migrator, KlocManager *kloc,
                   std::vector<TierId> socket_tiers, Config config);

    /** Convenience overload using the default Config. */
    AutoNumaPolicy(Mode mode, KernelHeap &heap, LruEngine &lru,
                   MigrationEngine &migrator, KlocManager *kloc,
                   std::vector<TierId> socket_tiers)
        : AutoNumaPolicy(mode, heap, lru, migrator, kloc,
                         std::move(socket_tiers), Config{})
    {}

    Mode mode() const { return _mode; }

    const char *name() const override;

    /** Install as the heap's policy; configure KLOC and parallelism. */
    void install() override;

    void start() override;
    void stop() override;

    bool usesKloc() const override { return _mode == Mode::Kloc; }

    /** Tier local to the task's current socket. */
    TierId localTier() const;

    // -- PlacementPolicy ----------------------------------------------------
    TierPreference kernelPreference(ObjClass cls,
                                    bool knode_active) override;
    TierPreference appPreference() override;

    uint64_t balanceTicks() const { return _ticks; }

  private:
    void balanceTick();
    TierPreference localFirst() const;

    /** Liveness token for scheduled tick lambdas (see strategy.hh). */
    std::shared_ptr<int> _alive = std::make_shared<int>(0);

    Mode _mode;
    KernelHeap &_heap;
    LruEngine &_lru;
    MigrationEngine &_migrator;
    KlocManager *_kloc;
    std::vector<TierId> _socketTiers;
    Config _config;
    bool _running = false;
    uint64_t _ticks = 0;

    /** Per-tick scratch buffers, reused so balancing doesn't allocate. */
    std::vector<FrameRef> _hotScratch;
    std::vector<FrameRef> _movers;
};

} // namespace kloc

#endif // KLOC_POLICY_AUTONUMA_HH
