#include "policy/jenga.hh"

#include <algorithm>

#include "base/logging.hh"

namespace kloc {

JengaStrategy::JengaStrategy(KernelHeap &heap, LruEngine &lru,
                             MigrationEngine &migrator, TierId fast,
                             TierId slow, Config config)
    : _heap(heap),
      _lru(lru),
      _migrator(migrator),
      _fast(fast),
      _slow(slow),
      _config(config),
      _promoteBatch(config.promoteBatchStart)
{
    KLOC_ASSERT(_config.promoteBatchMin.value() > 0,
                "promotion floor must be positive");
    KLOC_ASSERT(_config.promoteBatchMin.value() <=
                    _config.promoteBatchMax.value(),
                "promotion floor above cap");
    KLOC_ASSERT(_config.hysteresis >= 1, "hysteresis below 1");
}

void
JengaStrategy::install()
{
    _heap.setPolicy(this);
    _heap.setKlocInterface(false);
    _migrator.setParallelism(_config.migrationParallelism);
}

TierPreference
JengaStrategy::kernelPreference(ObjClass, bool)
{
    // Application tiering only; kernel objects go slow like other
    // prior-art two-tier policies (§3.2). Health degradation can
    // reorder either preference.
    return _heap.tiers().preferHealthy(TierPreference{_slow, _fast});
}

TierPreference
JengaStrategy::appPreference()
{
    return _heap.tiers().preferHealthy(TierPreference{_fast, _slow});
}

void
JengaStrategy::evaluateReuseWindow()
{
    if (_window.empty())
        return;
    uint64_t reused = 0;
    for (const auto &[ref, promoted_at] : _window) {
        if (ref.valid() && ref->tier == _fast &&
            ref->lastAccessTick > promoted_at) {
            ++reused;
        }
    }
    const uint64_t sampled = _window.size();
    _window.clear();
    const double ratio =
        static_cast<double>(reused) / static_cast<double>(sampled);
    _reuseHist.sample(static_cast<uint64_t>(ratio * 100.0));

    if (ratio <= _config.reuseLow) {
        ++_lowStreak;
        _highStreak = 0;
    } else if (ratio >= _config.reuseHigh) {
        ++_highStreak;
        _lowStreak = 0;
    } else {
        _lowStreak = 0;
        _highStreak = 0;
    }

    Tracer &tracer = _heap.mem().machine().tracer();
    if (_lowStreak >= _config.hysteresis &&
        _promoteBatch.value() > _config.promoteBatchMin.value()) {
        _promoteBatch = FrameCount{std::max(
            _config.promoteBatchMin.value(), _promoteBatch.value() / 2)};
        _lowStreak = 0;
        ++_adaptations;
        tracer.emit(TraceEventType::PolicyRateAdapt,
                    _promoteBatch.value(), reused, sampled);
    } else if (_highStreak >= _config.hysteresis &&
               _promoteBatch.value() < _config.promoteBatchMax.value()) {
        _promoteBatch = FrameCount{std::min(
            _config.promoteBatchMax.value(), _promoteBatch.value() * 2)};
        _highStreak = 0;
        ++_adaptations;
        tracer.emit(TraceEventType::PolicyRateAdapt,
                    _promoteBatch.value(), reused, sampled);
    }
}

void
JengaStrategy::scanTick()
{
    if (!_running)
        return;
    ++_scanTicks;
    Machine &machine = _heap.mem().machine();
    TierManager &tiers = _heap.tiers();

    // Grade last tick's promotions before making new ones.
    evaluateReuseWindow();

    // Demotion is never throttled: pressure response stays sharp.
    if (tiers.tier(_fast).utilization() > _config.demoteWatermark) {
        _lru.scanTier(_fast, _config.scanBatch, _scanScratch);
        _victims.clear();
        for (const FrameRef &ref : _scanScratch.demoteCandidates) {
            if (ref.valid() && ref->objClass == ObjClass::App)
                _victims.push_back(ref);
        }
        _migrator.migrate(_victims, _slow);
    }

    // Promotion runs at the adapted rate.
    if (tiers.tier(_fast).utilization() < _config.promoteWatermark) {
        _lru.collectHot(_slow, _promoteBatch, _hotScratch);
        _victims.clear();
        for (const FrameRef &ref : _hotScratch) {
            if (ref.valid() && ref->objClass == ObjClass::App)
                _victims.push_back(ref);
        }
        _migrator.migrate(_victims, _fast);
        // Sample what actually landed in fast memory for next
        // tick's reuse check.
        const Tick now = machine.now();
        for (const FrameRef &ref : _victims) {
            if (_window.size() >= _config.reuseSampleCap)
                break;
            if (ref.valid() && ref->tier == _fast)
                _window.emplace_back(ref, now);
        }
    }

    // Fully throttled promotion also stretches the scan period —
    // scanning costs background traffic the workload is not earning.
    const Tick period =
        _promoteBatch.value() == _config.promoteBatchMin.value()
            ? 2 * _config.scanPeriod
            : _config.scanPeriod;
    machine.events().schedule(
        machine.now() + period,
        [this, weak = std::weak_ptr<int>(_alive)] {
            if (!weak.expired())
                scanTick();
        });
}

void
JengaStrategy::start()
{
    if (_running)
        return;
    _running = true;
    Machine &machine = _heap.mem().machine();
    machine.events().schedule(
        machine.now() + _config.scanPeriod,
        [this, weak = std::weak_ptr<int>(_alive)] {
            if (!weak.expired())
                scanTick();
        });
}

void
JengaStrategy::stop()
{
    _running = false;
    _window.clear();
}

} // namespace kloc
