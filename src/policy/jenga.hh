/**
 * @file
 * JengaStrategy: reuse-driven adaptive promotion rate (after Jenga,
 * PAPERS.md).
 *
 * Each scan tick samples the pages it promoted; on the next tick it
 * measures how many of them were re-referenced while resident in
 * fast memory. A low reuse ratio means promotion is churning pages
 * an antagonistic working set will never touch again, so after a
 * hysteresis streak the promotion batch halves (down to a floor, at
 * which point the scan period also stretches); a sustained high
 * ratio doubles it back (up to a cap). Every adaptation emits a
 * PolicyRateAdapt trace event, and the observed reuse percentages
 * accumulate in a histogram for diagnostics.
 *
 * Demotion is never throttled: responsiveness to fast-tier pressure
 * is the point of the policy.
 */

#ifndef KLOC_POLICY_JENGA_HH
#define KLOC_POLICY_JENGA_HH

#include <memory>
#include <utility>
#include <vector>

#include "base/stats.hh"
#include "core/kloc_manager.hh"
#include "mem/lru.hh"
#include "mem/migration.hh"
#include "policy/policy.hh"

namespace kloc {

/** Adaptive-rate app-page tiering with promotion hysteresis. */
class JengaStrategy : public Policy
{
  public:
    struct Config
    {
        Tick scanPeriod = 100 * kMillisecond;
        FrameCount scanBatch{32768};
        /** Initial promotion batch; adapts within [min, max]. */
        FrameCount promoteBatchStart{4096};
        FrameCount promoteBatchMin{64};
        FrameCount promoteBatchMax{8192};
        double demoteWatermark = 0.85;
        double promoteWatermark = 0.90;
        unsigned migrationParallelism = 8;
        /** Reuse ratio at or above which the rate grows. */
        double reuseHigh = 0.5;
        /** Reuse ratio at or below which the rate shrinks. */
        double reuseLow = 0.2;
        /** Consecutive windows on one side before adapting. */
        unsigned hysteresis = 2;
        /** Promoted pages sampled per window for the reuse check. */
        size_t reuseSampleCap = 512;
    };

    JengaStrategy(KernelHeap &heap, LruEngine &lru,
                  MigrationEngine &migrator, TierId fast, TierId slow,
                  Config config);

    JengaStrategy(KernelHeap &heap, LruEngine &lru,
                  MigrationEngine &migrator, TierId fast, TierId slow)
        : JengaStrategy(heap, lru, migrator, fast, slow, Config{})
    {}

    const char *name() const override { return "jenga"; }

    void install() override;
    void start() override;
    void stop() override;

    // -- PlacementPolicy ----------------------------------------------------
    TierPreference kernelPreference(ObjClass cls,
                                    bool knode_active) override;
    TierPreference appPreference() override;

    uint64_t scanTicks() const { return _scanTicks; }

    /** Current adapted promotion batch (pages per tick). */
    FrameCount promoteBatch() const { return _promoteBatch; }

    /** Rate changes applied so far (halvings + doublings). */
    uint64_t adaptations() const { return _adaptations; }

    /** Observed per-window reuse percentages (0..100). */
    const Histogram &reuseHistogram() const { return _reuseHist; }

    const Config &config() const { return _config; }

  private:
    void scanTick();
    void evaluateReuseWindow();

    /** Liveness token for scheduled tick lambdas (see strategy.hh). */
    std::shared_ptr<int> _alive = std::make_shared<int>(0);

    KernelHeap &_heap;
    LruEngine &_lru;
    MigrationEngine &_migrator;
    TierId _fast;
    TierId _slow;
    Config _config;
    bool _running = false;
    uint64_t _scanTicks = 0;

    FrameCount _promoteBatch{0};
    unsigned _lowStreak = 0;
    unsigned _highStreak = 0;
    uint64_t _adaptations = 0;
    Histogram _reuseHist;

    /** Promotions sampled last tick: (page, promotion time). */
    std::vector<std::pair<FrameRef, Tick>> _window;

    /** Per-tick scratch buffers, reused so scans don't allocate. */
    ScanResult _scanScratch;
    std::vector<FrameRef> _hotScratch;
    std::vector<FrameRef> _victims;
};

} // namespace kloc

#endif // KLOC_POLICY_JENGA_HH
