#include "policy/nomad.hh"

#include "base/logging.hh"

namespace kloc {

NomadStrategy::NomadStrategy(KernelHeap &heap, LruEngine &lru,
                             MigrationEngine &migrator, KlocManager *kloc,
                             TierId fast, TierId slow, Config config)
    : _heap(heap),
      _lru(lru),
      _migrator(migrator),
      _kloc(kloc),
      _fast(fast),
      _slow(slow),
      _config(config)
{
    KLOC_ASSERT(!_config.composeKloc || kloc != nullptr,
                "kloc_nomad requires a KlocManager");
}

void
NomadStrategy::install()
{
    _heap.setPolicy(this);
    if (_kloc) {
        _kloc->setEnabled(_config.composeKloc);
        if (_config.composeKloc) {
            _kloc->setTierOrder({_fast, _slow});
            _heap.setKlocInterface(true);
        } else {
            _heap.setKlocInterface(false);
        }
    }
    _migrator.setParallelism(_config.migrationParallelism);
    const double budget =
        _config.shadowBudgetFraction *
        static_cast<double>(_heap.tiers().tier(_slow).totalPages().value());
    _migrator.setShadowBudget(FrameCount{static_cast<uint64_t>(budget)});
}

TierPreference
NomadStrategy::kernelPreference(ObjClass cls, bool knode_active)
{
    // Health degradation reorders, never replaces, the placement.
    return _heap.tiers().preferHealthy(kernelPlacement(cls, knode_active));
}

TierPreference
NomadStrategy::kernelPlacement(ObjClass cls, bool knode_active)
{
    if (_config.composeKloc) {
        // KLOC placement (§4.2.2), identical to StrategyKind::Kloc.
        if (cls == ObjClass::KlocMeta)
            return {_fast, _slow};
        if (_kloc && !_kloc->classManaged(cls))
            return {_fast, _slow};
        if (_kloc && _kloc->overMemLimit(_fast))
            return {_slow, _fast};
        return knode_active ? TierPreference{_fast, _slow}
                            : TierPreference{_slow, _fast};
    }
    // Plain Nomad is application tiering; kernel objects go slow
    // like other prior-art two-tier policies (§3.2).
    return {_slow, _fast};
}

TierPreference
NomadStrategy::appPreference()
{
    return _heap.tiers().preferHealthy(TierPreference{_fast, _slow});
}

void
NomadStrategy::scanTick()
{
    if (!_running)
        return;
    ++_scanTicks;
    Machine &machine = _heap.mem().machine();
    TierManager &tiers = _heap.tiers();

    // Demotions drain through shadows when possible: a clean page
    // whose shadow still sits on the slow tier is a free remap.
    if (tiers.tier(_fast).utilization() > _config.demoteWatermark) {
        _lru.scanTier(_fast, _config.scanBatch, _scanScratch);
        _victims.clear();
        for (const FrameRef &ref : _scanScratch.demoteCandidates) {
            if (ref.valid() && ref->objClass == ObjClass::App)
                _victims.push_back(ref);
        }
        _migrator.demoteWithShadows(_victims, _slow);
    }

    // Promotions are transactional copies.
    if (tiers.tier(_fast).utilization() < _config.promoteWatermark) {
        _lru.collectHot(_slow, _config.promoteBatch, _hotScratch);
        _victims.clear();
        for (const FrameRef &ref : _hotScratch) {
            if (ref.valid() && ref->objClass == ObjClass::App)
                _victims.push_back(ref);
        }
        _migrator.promoteTransactional(_victims, _fast,
                                       _config.writeRecencyWindow);
    }

    machine.events().schedule(
        machine.now() + _config.scanPeriod,
        [this, weak = std::weak_ptr<int>(_alive)] {
            if (!weak.expired())
                scanTick();
        });
}

void
NomadStrategy::start()
{
    if (_running)
        return;
    _running = true;
    Machine &machine = _heap.mem().machine();
    machine.events().schedule(
        machine.now() + _config.scanPeriod,
        [this, weak = std::weak_ptr<int>(_alive)] {
            if (!weak.expired())
                scanTick();
        });
    if (_config.composeKloc && _kloc)
        _kloc->startDaemon(_config.klocDaemonPeriod);
}

void
NomadStrategy::stop()
{
    _running = false;
    if (_kloc)
        _kloc->stopDaemon();
    // Shadows are policy-private state: release them so the slow
    // tier's capacity is whole for whatever policy follows.
    _heap.tiers().dropAllShadows(ShadowDropReason::PolicyStop);
    _migrator.setShadowBudget(FrameCount{~0ULL});
}

} // namespace kloc
