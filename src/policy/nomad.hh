/**
 * @file
 * NomadStrategy: non-exclusive tiering via transactional page
 * migration (after Nomad, PAPERS.md).
 *
 * Promotion is a transactional copy: a page that saw write traffic
 * within the write-recency window aborts cheaply (the copy would be
 * dirtied mid-flight), and destination pressure aborts without the
 * retry/backoff a normal move pays. A committed promotion keeps the
 * slow-tier source pages allocated as a shadow copy, so demoting a
 * still-clean page later is a free remap — no copy traffic. The
 * shadow footprint is bounded by a budget expressed as a fraction of
 * the slow tier; promotions beyond it fall back to exclusive moves.
 *
 * The composed "kloc_nomad" variant layers KLOC's object-context
 * placement and daemon on top: kernel objects follow knode hotness
 * while app pages get Nomad's transactional tiering.
 */

#ifndef KLOC_POLICY_NOMAD_HH
#define KLOC_POLICY_NOMAD_HH

#include <memory>

#include "core/kloc_manager.hh"
#include "mem/lru.hh"
#include "mem/migration.hh"
#include "policy/policy.hh"

namespace kloc {

/** Transactional, non-exclusive app-page tiering. */
class NomadStrategy : public Policy
{
  public:
    struct Config
    {
        Tick scanPeriod = 100 * kMillisecond;
        FrameCount scanBatch{32768};
        FrameCount promoteBatch{4096};
        double demoteWatermark = 0.85;
        double promoteWatermark = 0.90;
        unsigned migrationParallelism = 8;
        /** Writes younger than this abort the transactional copy. */
        Tick writeRecencyWindow = 100 * kMillisecond;
        /** Shadow budget as a fraction of slow-tier pages. */
        double shadowBudgetFraction = 0.25;
        /** Compose with KLOC kernel-object placement + daemon. */
        bool composeKloc = false;
        Tick klocDaemonPeriod = 2 * kMillisecond;
    };

    /** @param kloc required non-null when config.composeKloc. */
    NomadStrategy(KernelHeap &heap, LruEngine &lru,
                  MigrationEngine &migrator, KlocManager *kloc,
                  TierId fast, TierId slow, Config config);

    NomadStrategy(KernelHeap &heap, LruEngine &lru,
                  MigrationEngine &migrator, KlocManager *kloc,
                  TierId fast, TierId slow)
        : NomadStrategy(heap, lru, migrator, kloc, fast, slow, Config{})
    {}

    const char *
    name() const override
    {
        return _config.composeKloc ? "kloc_nomad" : "nomad";
    }

    void install() override;
    void start() override;
    void stop() override;
    bool usesKloc() const override { return _config.composeKloc; }

    // -- PlacementPolicy ----------------------------------------------------
    TierPreference kernelPreference(ObjClass cls,
                                    bool knode_active) override;
    TierPreference appPreference() override;

    uint64_t scanTicks() const { return _scanTicks; }

    const Config &config() const { return _config; }

  private:
    void scanTick();

    /** Health-blind placement order; kernelPreference reorders it
     *  with TierManager::preferHealthy. */
    TierPreference kernelPlacement(ObjClass cls, bool knode_active);

    /** Liveness token for scheduled tick lambdas (see strategy.hh). */
    std::shared_ptr<int> _alive = std::make_shared<int>(0);

    KernelHeap &_heap;
    LruEngine &_lru;
    MigrationEngine &_migrator;
    KlocManager *_kloc;
    TierId _fast;
    TierId _slow;
    Config _config;
    bool _running = false;
    uint64_t _scanTicks = 0;

    /** Per-tick scratch buffers, reused so scans don't allocate. */
    ScanResult _scanScratch;
    std::vector<FrameRef> _hotScratch;
    std::vector<FrameRef> _victims;
};

} // namespace kloc

#endif // KLOC_POLICY_NOMAD_HH
