/**
 * @file
 * Policy: the common contract every tiering policy implements.
 *
 * A Policy is a PlacementPolicy (where allocations of each class
 * start) plus a lifecycle (install / start / stop) driving what
 * migrates when. Platforms own exactly one installed Policy at a
 * time; the registry (policy/registry.hh) constructs policies by
 * name so tests and benches pick up new ones automatically.
 *
 * Lifecycle contract:
 *  - install(): make this the heap's placement policy and configure
 *    machinery (KLOC interface, migration parallelism, budgets).
 *    Must be idempotent and must not schedule events.
 *  - start(): begin periodic work (scan ticks, daemons). Idempotent.
 *  - stop(): cease scheduling further work and release any policy
 *    private state (e.g. Nomad's shadow copies). Ticks already in
 *    the event queue must become no-ops (liveness tokens).
 */

#ifndef KLOC_POLICY_POLICY_HH
#define KLOC_POLICY_POLICY_HH

#include "mem/placement.hh"

namespace kloc {

/** One installable tiering policy (placement + migration driver). */
class Policy : public PlacementPolicy
{
  public:
    /** Stable name used by the registry, benches, and reports. */
    virtual const char *name() const = 0;

    /** Become the heap's policy and configure machinery. */
    virtual void install() = 0;

    /** Begin periodic scan/migration work. */
    virtual void start() = 0;

    /** Stop periodic work and release policy-private state. */
    virtual void stop() = 0;

    /** Whether the platform should enable KLOC-side plumbing
     *  (early demux etc.) while this policy is installed. */
    virtual bool usesKloc() const { return false; }
};

} // namespace kloc

#endif // KLOC_POLICY_POLICY_HH
