#include "policy/registry.hh"

#include "policy/jenga.hh"
#include "policy/nomad.hh"
#include "policy/strategy.hh"

namespace kloc {

namespace {

struct KindEntry
{
    const char *name;
    StrategyKind kind;
};

constexpr KindEntry kKindEntries[] = {
    {"all_fast",          StrategyKind::AllFast},
    {"all_slow",          StrategyKind::AllSlow},
    {"naive",             StrategyKind::Naive},
    {"autonuma",          StrategyKind::AutoNuma},
    {"nimble",            StrategyKind::Nimble},
    {"nimble++",          StrategyKind::NimblePlusPlus},
    {"klocs_nomigration", StrategyKind::KlocNoMigration},
    {"klocs",             StrategyKind::Kloc},
};

} // namespace

TierManager &
PolicyContext::tiers() const
{
    return heap.tiers();
}

std::unique_ptr<Policy>
makePolicy(const std::string &name, const PolicyContext &ctx)
{
    for (const KindEntry &entry : kKindEntries) {
        if (name == entry.name) {
            const bool needs_kloc =
                entry.kind == StrategyKind::KlocNoMigration ||
                entry.kind == StrategyKind::Kloc;
            if (needs_kloc && ctx.kloc == nullptr)
                return nullptr;
            return std::make_unique<TieringStrategy>(
                entry.kind, ctx.heap, ctx.lru, ctx.migrator, ctx.kloc,
                ctx.fast, ctx.slow);
        }
    }
    if (name == "nomad" || name == "kloc_nomad") {
        NomadStrategy::Config config;
        config.composeKloc = name == "kloc_nomad";
        if (config.composeKloc && ctx.kloc == nullptr)
            return nullptr;
        return std::make_unique<NomadStrategy>(ctx.heap, ctx.lru,
                                               ctx.migrator, ctx.kloc,
                                               ctx.fast, ctx.slow, config);
    }
    if (name == "jenga") {
        return std::make_unique<JengaStrategy>(ctx.heap, ctx.lru,
                                               ctx.migrator, ctx.fast,
                                               ctx.slow);
    }
    return nullptr;
}

const std::vector<std::string> &
policyNames()
{
    static const std::vector<std::string> names = {
        "all_fast", "all_slow",  "naive",    "autonuma",
        "nimble",   "nimble++",  "klocs_nomigration", "klocs",
        "nomad",    "kloc_nomad", "jenga",
    };
    return names;
}

const std::vector<std::string> &
conformancePolicyNames()
{
    static const std::vector<std::string> names = {
        "naive", "autonuma", "klocs", "nomad", "jenga", "kloc_nomad",
    };
    return names;
}

} // namespace kloc
