/**
 * @file
 * Policy registry: construct two-tier policies by stable name.
 *
 * Tests, benches, and the fault fuzz build policies through this one
 * factory, so a newly registered policy is automatically swept by
 * the conformance suite and the policy benches. Registering a policy
 * means: add its name to policyNames() (and conformancePolicyNames()
 * if it should pass the shared fixture — it should), and teach
 * makePolicy() to build it. See docs/POLICIES.md.
 *
 * The registry is platform-free: it takes the subsystem references a
 * policy needs directly, so a raw test stack (no TwoTierPlatform)
 * can build policies too.
 */

#ifndef KLOC_POLICY_REGISTRY_HH
#define KLOC_POLICY_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "policy/policy.hh"

namespace kloc {

class KernelHeap;
class LruEngine;
class MigrationEngine;
class KlocManager;

class TierManager;

/** Everything a two-tier policy constructor may need. */
struct PolicyContext
{
    KernelHeap &heap;
    LruEngine &lru;
    MigrationEngine &migrator;
    KlocManager *kloc;  ///< may be null; KLOC policies then fail
    TierId fast;
    TierId slow;

    /**
     * The tier manager behind @p heap. Policies consult its health
     * state (TierManager::preferHealthy) so degraded tiers fall
     * behind healthy ones in every TierPreference; see
     * docs/POLICIES.md for the health callback contract.
     */
    TierManager &tiers() const;
};

/**
 * Build the policy registered under @p name.
 * @return nullptr for an unknown name, or for a KLOC-composed policy
 *         when @p ctx.kloc is null.
 */
std::unique_ptr<Policy> makePolicy(const std::string &name,
                                   const PolicyContext &ctx);

/** Every registered two-tier policy name. */
const std::vector<std::string> &policyNames();

/**
 * The dynamic policies every conformance test runs against (the
 * six-way comparison: Naive/AutoNUMA/KLOC/Nomad/Jenga/KLOC+Nomad).
 */
const std::vector<std::string> &conformancePolicyNames();

} // namespace kloc

#endif // KLOC_POLICY_REGISTRY_HH
