#include "policy/strategy.hh"

#include "base/logging.hh"

namespace kloc {

const char *
strategyName(StrategyKind kind)
{
    switch (kind) {
      case StrategyKind::AllFast:         return "all_fast";
      case StrategyKind::AllSlow:         return "all_slow";
      case StrategyKind::Naive:           return "naive";
      case StrategyKind::AutoNuma:        return "autonuma";
      case StrategyKind::Nimble:          return "nimble";
      case StrategyKind::NimblePlusPlus:  return "nimble++";
      case StrategyKind::KlocNoMigration: return "klocs_nomigration";
      case StrategyKind::Kloc:            return "klocs";
    }
    return "unknown";
}

TieringStrategy::TieringStrategy(StrategyKind kind, KernelHeap &heap,
                                 LruEngine &lru, MigrationEngine &migrator,
                                 KlocManager *kloc, TierId fast, TierId slow,
                                 Config config)
    : _kind(kind),
      _heap(heap),
      _lru(lru),
      _migrator(migrator),
      _kloc(kloc),
      _fast(fast),
      _slow(slow),
      _config(config)
{
    const bool needs_kloc = kind == StrategyKind::KlocNoMigration ||
                            kind == StrategyKind::Kloc;
    KLOC_ASSERT(!needs_kloc || kloc != nullptr,
                "strategy %s requires a KlocManager", strategyName(kind));
}

void
TieringStrategy::install()
{
    _heap.setPolicy(this);
    const bool kloc_on = _kind == StrategyKind::KlocNoMigration ||
                         _kind == StrategyKind::Kloc;
    if (_kloc) {
        _kloc->setEnabled(kloc_on);
        if (kloc_on) {
            _kloc->setTierOrder({_fast, _slow});
            _heap.setKlocInterface(true);
        } else {
            _heap.setKlocInterface(false);
        }
    }
    _migrator.setParallelism(
        _kind == StrategyKind::Nimble ||
        _kind == StrategyKind::NimblePlusPlus ||
        _kind == StrategyKind::KlocNoMigration ||
        _kind == StrategyKind::Kloc
            ? _config.migrationParallelism
            : 1);
}

bool
TieringStrategy::usesAppMigration() const
{
    // Nimble's app-page tiering is also reused by both KLOC modes
    // (Table 5: "Original Nimble policies ... for application pages").
    // AutoNuma migrates app pages too, just with a serial page copy.
    return _kind == StrategyKind::AutoNuma ||
           _kind == StrategyKind::Nimble ||
           _kind == StrategyKind::NimblePlusPlus ||
           _kind == StrategyKind::KlocNoMigration ||
           _kind == StrategyKind::Kloc;
}

bool
TieringStrategy::usesKernelScanMigration() const
{
    // Only Nimble++ migrates kernel pages through LRU scans; the
    // KLOC strategies migrate them through knodes instead.
    return _kind == StrategyKind::NimblePlusPlus;
}

TierPreference
TieringStrategy::kernelPreference(ObjClass cls, bool knode_active)
{
    // Health degradation reorders, never replaces, the placement
    // order: degraded tiers fall behind healthy ones and failed
    // tiers become the last resort.
    return _heap.tiers().preferHealthy(kernelPlacement(cls, knode_active));
}

TierPreference
TieringStrategy::kernelPlacement(ObjClass cls, bool knode_active)
{
    switch (_kind) {
      case StrategyKind::AllFast:
        return {_fast};
      case StrategyKind::AllSlow:
        return {_slow};
      case StrategyKind::Naive:
      case StrategyKind::AutoNuma:
      case StrategyKind::NimblePlusPlus:
        // Greedy: fast until full. Stock NUMA balancing ignores
        // kernel objects, so AutoNuma places them like Naive.
        return {_fast, _slow};
      case StrategyKind::Nimble:
        // Prior art places kernel objects in slow memory on two-tier
        // systems (§3.2), except KLOC's own metadata does not exist.
        return {_slow, _fast};
      case StrategyKind::KlocNoMigration:
      case StrategyKind::Kloc:
        // KLOC metadata and unmanaged classes are pinned fast; the
        // managed classes follow knode hotness (§4.2.2). A
        // sys_kloc_memsize cap diverts kernel objects once their
        // fast-tier residency reaches it.
        if (cls == ObjClass::KlocMeta)
            return {_fast, _slow};
        if (_kloc && !_kloc->classManaged(cls))
            return {_fast, _slow};
        if (_kloc && _kloc->overMemLimit(_fast))
            return {_slow, _fast};
        return knode_active ? TierPreference{_fast, _slow}
                            : TierPreference{_slow, _fast};
    }
    return {_fast, _slow};
}

TierPreference
TieringStrategy::appPreference()
{
    return _heap.tiers().preferHealthy(appPlacement());
}

TierPreference
TieringStrategy::appPlacement()
{
    switch (_kind) {
      case StrategyKind::AllFast:
        return {_fast};
      case StrategyKind::AllSlow:
        return {_slow};
      default:
        // Application pages are prioritised for fast memory by every
        // dynamic strategy.
        return {_fast, _slow};
    }
}

void
TieringStrategy::scanTick()
{
    if (!_running)
        return;
    ++_scanTicks;
    Machine &machine = _heap.mem().machine();
    TierManager &tiers = _heap.tiers();

    const bool kernel_scope = usesKernelScanMigration();

    // Demote cold pages off the fast tier under pressure. The scan
    // and filter scratch buffers persist across ticks so the
    // steady-state scan loop allocates nothing.
    if (tiers.tier(_fast).utilization() > _config.demoteWatermark) {
        _lru.scanTier(_fast, _config.scanBatch, _scanScratch);
        _victims.clear();
        for (const FrameRef &ref : _scanScratch.demoteCandidates) {
            if (!ref.valid())
                continue;
            const ObjClass cls = ref->objClass;
            if (cls == ObjClass::App ||
                (kernel_scope && isKernelClass(cls) &&
                 cls != ObjClass::KlocMeta)) {
                _victims.push_back(ref);
            }
        }
        _migrator.migrate(_victims, _slow);
    }

    // Promote hot pages from the slow tier when there is headroom.
    if (tiers.tier(_fast).utilization() < _config.promoteWatermark) {
        _lru.collectHot(_slow, _config.promoteBatch, _hotScratch);
        _victims.clear();
        for (const FrameRef &ref : _hotScratch) {
            if (!ref.valid())
                continue;
            const ObjClass cls = ref->objClass;
            if (cls == ObjClass::App ||
                (kernel_scope && isKernelClass(cls) &&
                 cls != ObjClass::KlocMeta)) {
                _victims.push_back(ref);
            }
        }
        _migrator.migrate(_victims, _fast);
    }

    machine.events().schedule(
        machine.now() + _config.scanPeriod,
        [this, weak = std::weak_ptr<int>(_alive)] {
            if (!weak.expired())
                scanTick();
        });
}

void
TieringStrategy::start()
{
    if (_running)
        return;
    Machine &machine = _heap.mem().machine();
    if (usesAppMigration()) {
        _running = true;
        machine.events().schedule(
            machine.now() + _config.scanPeriod,
            [this, weak = std::weak_ptr<int>(_alive)] {
                if (!weak.expired())
                    scanTick();
            });
    }
    if (_kind == StrategyKind::Kloc && _kloc)
        _kloc->startDaemon(_config.klocDaemonPeriod);
}

void
TieringStrategy::stop()
{
    _running = false;
    if (_kloc)
        _kloc->stopDaemon();
}

} // namespace kloc
