/**
 * @file
 * The Table 5 tiering strategies for the two-tier platform.
 *
 * Each strategy answers (i) where allocations of each class start
 * (PlacementPolicy) and (ii) what migrates when (its periodic tick).
 *
 *  - AllFast / AllSlow: static bounds.
 *  - Naive: greedy first-come-first-served into fast memory; no
 *    migration at all.
 *  - Nimble: application-page tiering with parallelised page copy;
 *    kernel objects live in slow memory (what prior art does for
 *    two-tier systems, §3.2).
 *  - Nimble++: Nimble's scan-driven mechanisms extended to kernel
 *    pages, without the KLOC abstraction — slab pages stay
 *    non-relocatable and scan latency exceeds kernel object
 *    lifetimes, so hot kernel objects rarely return to fast memory.
 *  - KlocNoMigration: KLOC direct allocation (active knodes' objects
 *    to fast memory) but no kernel-object migration.
 *  - Kloc: the full system — direct allocation, immediate demotion
 *    of inactive KLOCs, promotion on re-activation, watermark
 *    pressure handling, plus Nimble's app-page tiering.
 */

#ifndef KLOC_POLICY_STRATEGY_HH
#define KLOC_POLICY_STRATEGY_HH

#include <memory>
#include <string>

#include "core/kloc_manager.hh"
#include "mem/lru.hh"
#include "mem/migration.hh"
#include "policy/policy.hh"

namespace kloc {

/** The strategies of Table 5 (two-tier platform), plus AutoNuma:
 *  stock NUMA-balancing semantics mapped onto two tiers (app pages
 *  fast-first with serial scan-driven migration, kernel objects
 *  greedy like Naive). */
enum class StrategyKind {
    AllFast,
    AllSlow,
    Naive,
    AutoNuma,
    Nimble,
    NimblePlusPlus,
    KlocNoMigration,
    Kloc,
};

const char *strategyName(StrategyKind kind);

/** One configured tiering strategy. */
class TieringStrategy : public Policy
{
  public:
    struct Config
    {
        Tick scanPeriod = 100 * kMillisecond;
        FrameCount scanBatch{32768};
        FrameCount promoteBatch{4096};
        /** Fast-tier utilization that triggers demotion. */
        double demoteWatermark = 0.85;
        /** Fast-tier utilization below which promotion is allowed. */
        double promoteWatermark = 0.90;
        /** Nimble's parallel page-copy width. */
        unsigned migrationParallelism = 8;
        /** KLOC daemon wakeup period. */
        Tick klocDaemonPeriod = 2 * kMillisecond;
    };

    /**
     * @param kloc May be null for strategies that don't use KLOC
     *             (required non-null for the KLOC strategies).
     */
    TieringStrategy(StrategyKind kind, KernelHeap &heap, LruEngine &lru,
                    MigrationEngine &migrator, KlocManager *kloc,
                    TierId fast, TierId slow, Config config);

    /** Convenience overload using the default Config. */
    TieringStrategy(StrategyKind kind, KernelHeap &heap, LruEngine &lru,
                    MigrationEngine &migrator, KlocManager *kloc,
                    TierId fast, TierId slow)
        : TieringStrategy(kind, heap, lru, migrator, kloc, fast, slow,
                          Config{})
    {}

    StrategyKind kind() const { return _kind; }
    const char *name() const override { return strategyName(_kind); }

    /**
     * Apply the strategy: installs itself as the heap's placement
     * policy, flips the KLOC interface / manager state, and sets
     * migration parallelism.
     */
    void install() override;

    /** Begin periodic scan/migration work. */
    void start() override;

    /** Stop periodic work. */
    void stop() override;

    bool
    usesKloc() const override
    {
        return _kind == StrategyKind::KlocNoMigration ||
               _kind == StrategyKind::Kloc;
    }

    // -- PlacementPolicy ----------------------------------------------------
    TierPreference kernelPreference(ObjClass cls,
                                    bool knode_active) override;
    TierPreference appPreference() override;

    /** Scan ticks executed (diagnostics). */
    uint64_t scanTicks() const { return _scanTicks; }

  private:
    bool usesAppMigration() const;
    bool usesKernelScanMigration() const;
    void scanTick();

    /** Health-blind placement order; the public preference methods
     *  reorder it with TierManager::preferHealthy. */
    TierPreference kernelPlacement(ObjClass cls, bool knode_active);
    TierPreference appPlacement();

    /**
     * Liveness token for scheduled tick lambdas: events capture a
     * weak_ptr so a tick scheduled before this strategy was replaced
     * cannot touch the freed object.
     */
    std::shared_ptr<int> _alive = std::make_shared<int>(0);

    StrategyKind _kind;
    KernelHeap &_heap;
    LruEngine &_lru;
    MigrationEngine &_migrator;
    KlocManager *_kloc;
    TierId _fast;
    TierId _slow;
    Config _config;
    bool _running = false;
    uint64_t _scanTicks = 0;

    /** Per-tick scratch buffers, reused so scans don't allocate. */
    ScanResult _scanScratch;
    std::vector<FrameRef> _hotScratch;
    std::vector<FrameRef> _victims;
};

} // namespace kloc

#endif // KLOC_POLICY_STRATEGY_HH
