#include "sim/epoch.hh"

#include <algorithm>
#include <cstdlib>
#include <ctime>

namespace {

/** Monotonic host nanoseconds for the overhead counters. */
uint64_t
wallNowNs()
{
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<uint64_t>(ts.tv_sec) * 1000000000ULL +
           static_cast<uint64_t>(ts.tv_nsec);
}

} // namespace

namespace kloc {

ShardedEngine::ShardedEngine(Machine &machine, Config config)
    : _machine(machine), _config(config),
      _pool(config.workers ? config.workers : defaultWorkers())
{
    KLOC_ASSERT(_config.shards >= 1, "engine needs at least one shard");
    KLOC_ASSERT(_config.epochLength > 0, "epoch length must be positive");
    _shards.reserve(_config.shards);
    for (unsigned i = 0; i < _config.shards; ++i) {
        // Spread shards round-robin over the simulated CPUs so
        // socket-aware access costs differ per shard on multi-socket
        // topologies.
        const unsigned cpu = i % machine.cpuCount();
        _shards.push_back(std::make_unique<ShardContext>(
            i, machine.core(), cpu));
    }
}

unsigned
ShardedEngine::defaultWorkers()
{
    // klint:allow(no-mutable-global): reading the environment once.
    if (const char *env = std::getenv("KLOC_SHARDS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed > 0)
            return static_cast<unsigned>(parsed);
    }
    return 1;
}

void
ShardedEngine::addBarrierHook(BarrierHook hook)
{
    _hooks.push_back(std::move(hook));
}

void
ShardedEngine::run(uint64_t epochs, const ShardBody &body)
{
    for (uint64_t e = 0; e < epochs; ++e) {
        const uint64_t epoch = _epochsRun;
        const Tick barrier_tick = _machine.now() + _config.epochLength;
        const bool tracing = _machine.tracer().enabled();
        for (auto &shard : _shards)
            shard->setTraceEnabledAtBarrier(tracing);

        // Fan the epoch out. Each closure touches only its own
        // shard (and const MachineCore reads), so any worker count
        // computes identical per-shard state.
        runIndexedVoid(_pool, _shards.size(), [&](size_t i) {
            ShardContext &shard = *_shards[i];
            body(shard, epoch);
            shard.parkAtBarrier(barrier_tick);
        });

        barrier(epoch, barrier_tick);
    }
}

void
ShardedEngine::barrier(uint64_t epoch, Tick barrier_tick)
{
    const uint64_t barrier_start_ns = wallNowNs();
    // The epoch ends where the last shard stopped: a shard whose
    // final charge overshot the barrier stretches the epoch for
    // everyone, keeping all clocks aligned and monotonic.
    Tick epoch_end = barrier_tick;
    for (const auto &shard : _shards)
        epoch_end = std::max(epoch_end, shard->now());

    // 1. Merge staged trace events. Each shard's staging buffer is
    // tick-ordered, so a stable sort of the shard-order concatenation
    // yields (tick, shard, local seq) order — the worker-count-
    // invariant global order. absorb() restamps the global seq.
    const uint64_t merge_start_ns = wallNowNs();
    std::vector<TraceEvent> merged;
    std::vector<uint64_t> staged_counts(_shards.size(), 0);
    for (size_t i = 0; i < _shards.size(); ++i) {
        std::vector<TraceEvent> staged = _shards[i]->takeStagedAtBarrier();
        staged_counts[i] = staged.size();
        merged.insert(merged.end(), staged.begin(), staged.end());
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const TraceEvent &x, const TraceEvent &y) {
                         return x.tick < y.tick;
                     });
    Tracer &tracer = _machine.tracer();
    tracer.absorb(merged.data(), merged.size());
    _eventsMerged += merged.size();
    _mergeWallNs += wallNowNs() - merge_start_ns;

    // 2. Advance the global clock to the epoch end, running global
    // async work that became due. Its events are stamped at or after
    // every absorbed tick, keeping the trace tick-monotonic.
    _machine.advanceTo(epoch_end);

    // 3. Per-shard epoch summaries, in shard order.
    std::vector<uint64_t> epoch_ops(_shards.size(), 0);
    for (size_t i = 0; i < _shards.size(); ++i) {
        epoch_ops[i] = _shards[i]->takeOpsAtBarrier();
        tracer.emit(TraceEventType::ShardWork, _shards[i]->id(), epoch,
                    epoch_ops[i], staged_counts[i]);
    }

    // 4. Drain mailboxes: shard order, posting order within a shard,
    // applied serially against the global platform.
    uint64_t drained = 0;
    for (auto &shard : _shards) {
        std::vector<ShardMessage> mailbox = shard->takeMailboxAtBarrier();
        for (size_t seq = 0; seq < mailbox.size(); ++seq) {
            tracer.emit(TraceEventType::ShardMsg, shard->id(), epoch,
                        seq, mailbox[seq].kind);
            if (mailbox[seq].apply)
                mailbox[seq].apply();
        }
        drained += mailbox.size();
    }
    _messagesDrained += drained;
    // Applies may have scheduled global work already due.
    _machine.events().runDue(_machine.now());

    // 5. Fold shard-local stats into the shared core.
    for (auto &shard : _shards)
        _machine.core().foldRefsAtBarrier(shard->takeRefsAtBarrier());

    // 6. Re-align shard clocks for the next epoch.
    for (auto &shard : _shards)
        shard->syncClockAtBarrier(epoch_end);

    // 7. Serial barrier hooks (policy adaptation etc.).
    for (const auto &hook : _hooks)
        hook(epoch);

    // 8. Close the epoch.
    tracer.emit(TraceEventType::EpochBarrier, epoch, _shards.size(),
                merged.size(), drained);
    ++_epochsRun;
    _barrierWallNs += wallNowNs() - barrier_start_ns;
}

} // namespace kloc
