/**
 * @file
 * ShardedEngine: deterministic epoch-barrier execution of N shards.
 *
 * One run is decomposed into a fixed number of logical shards that
 * advance virtual time independently for one epoch, then synchronize
 * at a barrier where the coordinator — always serial — applies every
 * cross-shard effect in a deterministic order:
 *
 *   1. merge shard-staged trace events by (tick, shard, local seq)
 *      and absorb them into the global tracer,
 *   2. advance the global Machine clock to the epoch end (running
 *      due global async work),
 *   3. emit one ShardWork summary per shard (shard order),
 *   4. drain shard mailboxes in shard order, emitting a ShardMsg per
 *      message and applying it against the global platform,
 *   5. fold shard-local RefStats into the shared MachineCore,
 *   6. re-align every shard clock with the epoch end,
 *   7. run barrier hooks (policy adaptation), and
 *   8. emit the closing EpochBarrier event.
 *
 * KLOC_SHARDS sets the *worker-thread count* only; the logical shard
 * decomposition is fixed by the scenario. Per-shard execution is
 * single-threaded and the merge order is worker-count-invariant, so
 * serialized traces are byte-identical at any KLOC_SHARDS value —
 * the same contract RunPool gives whole-run sweeps, applied inside
 * one run. See docs/SHARDING.md for the invariant list.
 */

#ifndef KLOC_SIM_EPOCH_HH
#define KLOC_SIM_EPOCH_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "base/run_pool.hh"
#include "base/units.hh"
#include "sim/machine.hh"
#include "sim/shard.hh"

namespace kloc {

/** Epoch-barrier coordinator over a Machine and its shards. */
class ShardedEngine
{
  public:
    struct Config
    {
        /** Logical shards; fixed by the scenario, not the host. */
        unsigned shards = 4;
        /** Virtual time between barriers. */
        Tick epochLength{100000};
        /** Worker threads; 0 means defaultWorkers(). */
        unsigned workers = 0;
    };

    /** Per-shard epoch body: runs concurrently, shard-local only. */
    using ShardBody = std::function<void(ShardContext &, uint64_t epoch)>;

    /** Serial barrier hook (policy adaptation, stats sampling). */
    using BarrierHook = std::function<void(uint64_t epoch)>;

    ShardedEngine(Machine &machine, Config config);

    /**
     * Worker-thread count from the environment: KLOC_SHARDS if set
     * to a positive integer, otherwise 1 (serial execution; the
     * deterministic reference every other count must match).
     */
    static unsigned defaultWorkers();

    unsigned shardCount() const { return static_cast<unsigned>(_shards.size()); }
    unsigned workers() const { return _pool.workers(); }
    Tick epochLength() const { return _config.epochLength; }

    ShardContext &shard(unsigned i) { return *_shards.at(i); }
    const ShardContext &shard(unsigned i) const { return *_shards.at(i); }

    /** Register a serial hook run at every barrier (step 7). */
    void addBarrierHook(BarrierHook hook);

    /**
     * Execute @p epochs epochs of @p body over all shards.
     * Bodies run concurrently across the worker pool; the barrier
     * after each epoch is serial. Callable repeatedly; the epoch
     * counter keeps rising across calls.
     */
    void run(uint64_t epochs, const ShardBody &body);

    /** Barriers executed since construction. */
    uint64_t epochsRun() const { return _epochsRun; }

    /** Cross-shard messages drained since construction. */
    uint64_t messagesDrained() const { return _messagesDrained; }

    /** Shard-staged trace events merged since construction. */
    uint64_t eventsMerged() const { return _eventsMerged; }

    /**
     * Host wall-clock nanoseconds spent inside barriers since
     * construction. Diagnostic only: wall time is nondeterministic,
     * so this must never feed simulated state or gated metrics —
     * report it as a non-gating `shard.*` bench metric.
     */
    uint64_t barrierWallNs() const { return _barrierWallNs; }

    /** Wall nanoseconds of barrierWallNs() spent merging traces. */
    uint64_t mergeWallNs() const { return _mergeWallNs; }

  private:
    void barrier(uint64_t epoch, Tick barrier_tick);

    Machine &_machine;
    Config _config;
    RunPool _pool;
    std::vector<std::unique_ptr<ShardContext>> _shards;
    std::vector<BarrierHook> _hooks;
    uint64_t _epochsRun = 0;
    uint64_t _messagesDrained = 0;
    uint64_t _eventsMerged = 0;
    uint64_t _barrierWallNs = 0;
    uint64_t _mergeWallNs = 0;
};

} // namespace kloc

#endif // KLOC_SIM_EPOCH_HH
