/**
 * @file
 * Deterministic deadline-ordered event queue for asynchronous kernel
 * work: the KLOC migration daemon, LRU scanner wakeups, journal
 * commits, and writeback all run as events.
 *
 * Ties are broken by insertion order so runs are bit-reproducible.
 */

#ifndef KLOC_SIM_EVENT_QUEUE_HH
#define KLOC_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <vector>

#include "base/units.hh"

namespace kloc {

/** Deadline-ordered queue of callbacks. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule @p fn to run once the clock reaches @p when. */
    void
    schedule(Tick when, Callback fn)
    {
        _events.push(Event{when, _sequence++, std::move(fn)});
    }

    /**
     * Deadline of the earliest pending event, or nullopt when the
     * queue is empty. (A Tick{-1} sentinel here was a strong-units
     * footgun: -1 compares less-than every real deadline, so the
     * "empty" case silently won every min().)
     */
    std::optional<Tick>
    nextDeadline() const
    {
        if (_events.empty())
            return std::nullopt;
        return _events.top().when;
    }

    bool empty() const { return _events.empty(); }
    size_t size() const { return _events.size(); }

    /**
     * Run every event with deadline <= @p now, in deadline order.
     * Events scheduled while draining run too if already due.
     * @return number of events executed.
     */
    size_t
    runDue(Tick now)
    {
        size_t ran = 0;
        while (!_events.empty() && _events.top().when <= now) {
            // Move the callback out before popping so an event that
            // schedules new events doesn't invalidate the top().
            Callback fn = std::move(_events.top().fn);
            _events.pop();
            fn();
            ++ran;
        }
        return ran;
    }

    /** Drop all pending events (between experiment runs). */
    void
    clear()
    {
        _events = {};
        _sequence = 0;
    }

  private:
    struct Event
    {
        Tick when;
        uint64_t seq;
        mutable Callback fn;

        bool
        operator>(const Event &o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> _events;
    uint64_t _sequence = 0;
};

} // namespace kloc

#endif // KLOC_SIM_EVENT_QUEUE_HH
