#include "sim/machine.hh"

namespace kloc {

Machine::Machine(unsigned num_cpus, unsigned num_sockets)
    : _core(num_cpus, num_sockets)
{
}

void
Machine::reset()
{
    _clock.reset();
    _events.clear();
    _currentCpu = 0;
    _core.resetStatsAtBarrier();
}

} // namespace kloc
