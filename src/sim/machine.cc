#include "sim/machine.hh"

namespace kloc {

Machine::Machine(unsigned num_cpus, unsigned num_sockets)
    : _numCpus(num_cpus), _numSockets(num_sockets)
{
    KLOC_ASSERT(num_cpus > 0, "machine needs at least one cpu");
    KLOC_ASSERT(num_sockets > 0 && num_sockets <= num_cpus,
                "bad socket count %u", num_sockets);
}

void
Machine::reset()
{
    _clock.reset();
    _events.clear();
    _currentCpu = 0;
    _kernelRefs = 0;
    _userRefs = 0;
    _kernelRefTicks = Tick{};
    _userRefTicks = Tick{};
}

} // namespace kloc
