/**
 * @file
 * Machine: the composition hub every subsystem charges work through.
 *
 * Owns the virtual clock, the event queue for asynchronous kernel
 * work, and the simulated CPU topology. The shard-shared half —
 * topology, memory timing model, and the reference-accounting
 * counters behind Fig. 2c — lives in MachineCore (machine_core.hh);
 * Machine delegates so serial code keeps its one-object view while
 * the sharded engine (sim/shard.hh) shares the core between
 * ShardContexts.
 */

#ifndef KLOC_SIM_MACHINE_HH
#define KLOC_SIM_MACHINE_HH

#include <cstdint>

#include "base/logging.hh"
#include "base/units.hh"
#include "fault/fault.hh"
#include "base/clock.hh"
#include "sim/event_queue.hh"
#include "sim/machine_core.hh"
#include "sim/memory_model.hh"
#include "trace/trace.hh"

namespace kloc {

/** The simulated machine. */
class Machine
{
  public:
    /**
     * @param num_cpus     Simulated cores.
     * @param num_sockets  NUMA sockets; cores are split evenly.
     */
    explicit Machine(unsigned num_cpus = 16, unsigned num_sockets = 1);

    // -- topology ---------------------------------------------------------
    unsigned cpuCount() const { return _core.cpuCount(); }
    unsigned socketCount() const { return _core.socketCount(); }

    /** Socket hosting @p cpu. */
    int socketOf(unsigned cpu) const { return _core.socketOf(cpu); }

    /** CPU the current simulated thread of control runs on. */
    unsigned currentCpu() const { return _currentCpu; }

    /** Switch the thread of control to @p cpu (workload scheduling). */
    void
    setCurrentCpu(unsigned cpu)
    {
        KLOC_ASSERT(cpu < _core.cpuCount(), "cpu %u out of range", cpu);
        _currentCpu = cpu;
    }

    int currentSocket() const { return _core.socketOf(_currentCpu); }

    /** The shard-shared half (topology, timing, global stats). */
    MachineCore &core() { return _core; }
    const MachineCore &core() const { return _core; }

    // -- time -------------------------------------------------------------
    Tick now() const { return _clock.now(); }

    /** Advance the clock by @p cost and run any due async work. */
    void
    charge(Tick cost)
    {
        _clock.advance(cost);
        _events.runDue(_clock.now());
    }

    /**
     * Jump the clock forward to @p when (an epoch-barrier tick) and
     * run the async work that became due. Used by the sharded
     * engine's coordinator; serial code charges costs instead.
     */
    void
    advanceTo(Tick when)
    {
        _clock.advanceTo(when);
        _events.runDue(_clock.now());
    }

    /**
     * Charge pure CPU work (no memory attribution). The simulation
     * serialises all worker threads onto one clock; compute-bound
     * work overlaps across real cores, so it is divided by the CPU
     * parallelism factor, while memory-system charges stay serial —
     * bandwidth is the shared bottleneck the paper's platforms
     * expose.
     */
    void cpuWork(Tick cost) { charge(cost / _core.cpuParallelism()); }

    /** Set the effective overlap factor for CPU-bound work. */
    void setCpuParallelism(unsigned factor) { _core.setCpuParallelism(factor); }

    EventQueue &events() { return _events; }
    VirtualClock &clock() { return _clock; }

    /** Event tracer every subsystem emits through (off by default). */
    Tracer &tracer() { return _tracer; }
    const Tracer &tracer() const { return _tracer; }

    /** Fault injector consulted at device/migration/journal fault
     *  points (answers "no fault" until configured). */
    FaultInjector &faults() { return _faults; }
    const FaultInjector &faults() const { return _faults; }

    // -- memory -----------------------------------------------------------
    MemoryModel &memModel() { return _core.memModel(); }
    const MemoryModel &memModel() const { return _core.memModel(); }

    /**
     * Charge one memory access of @p bytes against @p tier from the
     * current CPU's socket, attributed to @p domain.
     * @return the cost charged.
     */
    Tick
    access(TierId tier, Bytes bytes, AccessType type, RefDomain domain)
    {
        const Tick cost = _core.memModel().accessCost(tier, bytes, type,
                                                      currentSocket());
        charge(cost);
        _core.accountRef(domain, cost);
        return cost;
    }

    /**
     * Account asynchronous memory traffic (migration copies, device
     * DMA) on the clock without reference attribution.
     */
    void
    backgroundTraffic(Tick cost)
    {
        // Background copies overlap with foreground execution; only a
        // fraction of their cost surfaces as foreground stall. The
        // paper's migration threads run on dedicated CPUs (§5).
        charge(cost / 4);
    }

    // -- Fig. 2c accounting -------------------------------------------------
    uint64_t kernelRefs() const { return _core.refs().kernelRefs; }
    uint64_t userRefs() const { return _core.refs().userRefs; }
    Tick kernelRefTicks() const { return _core.refs().kernelRefTicks; }
    Tick userRefTicks() const { return _core.refs().userRefTicks; }

    /** Reset clock, events, and counters between experiment runs. */
    void reset();

  private:
    MachineCore _core;
    VirtualClock _clock;
    EventQueue _events;
    Tracer _tracer{_clock};
    FaultInjector _faults{_tracer};
    unsigned _currentCpu = 0;
};

} // namespace kloc

#endif // KLOC_SIM_MACHINE_HH
