/**
 * @file
 * Machine: the composition hub every subsystem charges work through.
 *
 * Owns the virtual clock, the event queue for asynchronous kernel
 * work, the memory timing model, and the simulated CPU topology.
 * It also keeps the reference-accounting counters behind Fig. 2c
 * (memory references to kernel objects vs. application data).
 */

#ifndef KLOC_SIM_MACHINE_HH
#define KLOC_SIM_MACHINE_HH

#include <cstdint>

#include "base/logging.hh"
#include "base/units.hh"
#include "fault/fault.hh"
#include "base/clock.hh"
#include "sim/event_queue.hh"
#include "sim/memory_model.hh"
#include "trace/trace.hh"

namespace kloc {

/** Attribution of a memory reference for Fig. 2c accounting. */
enum class RefDomain { User, Kernel };

/** The simulated machine. */
class Machine
{
  public:
    /**
     * @param num_cpus     Simulated cores.
     * @param num_sockets  NUMA sockets; cores are split evenly.
     */
    explicit Machine(unsigned num_cpus = 16, unsigned num_sockets = 1);

    // -- topology ---------------------------------------------------------
    unsigned cpuCount() const { return _numCpus; }
    unsigned socketCount() const { return _numSockets; }

    /** Socket hosting @p cpu. */
    int
    socketOf(unsigned cpu) const
    {
        return static_cast<int>(cpu / ((_numCpus + _numSockets - 1) /
                                       _numSockets));
    }

    /** CPU the current simulated thread of control runs on. */
    unsigned currentCpu() const { return _currentCpu; }

    /** Switch the thread of control to @p cpu (workload scheduling). */
    void
    setCurrentCpu(unsigned cpu)
    {
        KLOC_ASSERT(cpu < _numCpus, "cpu %u out of range", cpu);
        _currentCpu = cpu;
    }

    int currentSocket() const { return socketOf(_currentCpu); }

    // -- time -------------------------------------------------------------
    Tick now() const { return _clock.now(); }

    /** Advance the clock by @p cost and run any due async work. */
    void
    charge(Tick cost)
    {
        _clock.advance(cost);
        _events.runDue(_clock.now());
    }

    /**
     * Charge pure CPU work (no memory attribution). The simulation
     * serialises all worker threads onto one clock; compute-bound
     * work overlaps across real cores, so it is divided by the CPU
     * parallelism factor, while memory-system charges stay serial —
     * bandwidth is the shared bottleneck the paper's platforms
     * expose.
     */
    void cpuWork(Tick cost) { charge(cost / _cpuParallelism); }

    /** Set the effective overlap factor for CPU-bound work. */
    void
    setCpuParallelism(unsigned factor)
    {
        KLOC_ASSERT(factor >= 1, "cpu parallelism below 1");
        _cpuParallelism = static_cast<int64_t>(factor);
    }

    EventQueue &events() { return _events; }
    VirtualClock &clock() { return _clock; }

    /** Event tracer every subsystem emits through (off by default). */
    Tracer &tracer() { return _tracer; }
    const Tracer &tracer() const { return _tracer; }

    /** Fault injector consulted at device/migration/journal fault
     *  points (answers "no fault" until configured). */
    FaultInjector &faults() { return _faults; }
    const FaultInjector &faults() const { return _faults; }

    // -- memory -----------------------------------------------------------
    MemoryModel &memModel() { return _memModel; }
    const MemoryModel &memModel() const { return _memModel; }

    /**
     * Charge one memory access of @p bytes against @p tier from the
     * current CPU's socket, attributed to @p domain.
     * @return the cost charged.
     */
    Tick
    access(TierId tier, Bytes bytes, AccessType type, RefDomain domain)
    {
        const Tick cost =
            _memModel.accessCost(tier, bytes, type, currentSocket());
        charge(cost);
        if (domain == RefDomain::Kernel) {
            ++_kernelRefs;
            _kernelRefTicks += cost;
        } else {
            ++_userRefs;
            _userRefTicks += cost;
        }
        return cost;
    }

    /**
     * Account asynchronous memory traffic (migration copies, device
     * DMA) on the clock without reference attribution.
     */
    void
    backgroundTraffic(Tick cost)
    {
        // Background copies overlap with foreground execution; only a
        // fraction of their cost surfaces as foreground stall. The
        // paper's migration threads run on dedicated CPUs (§5).
        charge(cost / 4);
    }

    // -- Fig. 2c accounting -------------------------------------------------
    uint64_t kernelRefs() const { return _kernelRefs; }
    uint64_t userRefs() const { return _userRefs; }
    Tick kernelRefTicks() const { return _kernelRefTicks; }
    Tick userRefTicks() const { return _userRefTicks; }

    /** Reset clock, events, and counters between experiment runs. */
    void reset();

  private:
    VirtualClock _clock;
    EventQueue _events;
    MemoryModel _memModel;
    Tracer _tracer{_clock};
    FaultInjector _faults{_tracer};
    unsigned _numCpus;
    unsigned _numSockets;
    unsigned _currentCpu = 0;
    int64_t _cpuParallelism = 8;

    uint64_t _kernelRefs = 0;
    uint64_t _userRefs = 0;
    Tick _kernelRefTicks{};
    Tick _userRefTicks{};
};

} // namespace kloc

#endif // KLOC_SIM_MACHINE_HH
