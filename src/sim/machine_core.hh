/**
 * @file
 * MachineCore: the shard-shared half of the simulated machine.
 *
 * The sharded simulation core (docs/SHARDING.md) splits the old
 * monolithic Machine into
 *
 *   - MachineCore — topology, memory timing, and the global
 *     reference-accounting stats. Shared by every shard; read-only
 *     during an epoch, mutated only from barrier-drain methods
 *     (methods named *AtBarrier), which the klint
 *     `shard-confinement` rule enforces.
 *   - ShardContext (sim/shard.hh) — a local clock, local event
 *     queue, and local trace staging buffer per shard.
 *
 * The serial Machine keeps its public API by owning a MachineCore
 * and delegating; single-threaded code never sees the split.
 */

#ifndef KLOC_SIM_MACHINE_CORE_HH
#define KLOC_SIM_MACHINE_CORE_HH

#include <cstdint>

#include "base/logging.hh"
#include "base/units.hh"
#include "sim/memory_model.hh"

namespace kloc {

/** Attribution of a memory reference for Fig. 2c accounting. */
enum class RefDomain { User, Kernel };

/** Fig. 2c reference counters (kernel vs. user memory traffic). */
struct RefStats
{
    uint64_t kernelRefs = 0;
    uint64_t userRefs = 0;
    Tick kernelRefTicks{};
    Tick userRefTicks{};

    void
    account(RefDomain domain, Tick cost)
    {
        if (domain == RefDomain::Kernel) {
            ++kernelRefs;
            kernelRefTicks += cost;
        } else {
            ++userRefs;
            userRefTicks += cost;
        }
    }

    void
    reset()
    {
        kernelRefs = 0;
        userRefs = 0;
        kernelRefTicks = Tick{};
        userRefTicks = Tick{};
    }
};

/** The shard-shared machine state: topology, timing, global stats. */
class MachineCore
{
  public:
    MachineCore(unsigned num_cpus, unsigned num_sockets)
        : _numCpus(num_cpus), _numSockets(num_sockets)
    {
        KLOC_ASSERT(num_cpus > 0, "machine needs at least one cpu");
        KLOC_ASSERT(num_sockets > 0 && num_sockets <= num_cpus,
                    "bad socket count %u", num_sockets);
    }

    // -- topology (immutable after construction) --------------------------
    unsigned cpuCount() const { return _numCpus; }
    unsigned socketCount() const { return _numSockets; }

    /** Socket hosting @p cpu. */
    int
    socketOf(unsigned cpu) const
    {
        return static_cast<int>(cpu / ((_numCpus + _numSockets - 1) /
                                       _numSockets));
    }

    // -- timing -----------------------------------------------------------
    MemoryModel &memModel() { return _memModel; }
    const MemoryModel &memModel() const { return _memModel; }

    int64_t cpuParallelism() const { return _cpuParallelism; }

    /** Set the effective overlap factor for CPU-bound work. */
    void
    setCpuParallelism(unsigned factor)
    {
        KLOC_ASSERT(factor >= 1, "cpu parallelism below 1");
        _cpuParallelism = static_cast<int64_t>(factor);
    }

    // -- global stats (mutate only at barriers / from serial code) --------
    const RefStats &refs() const { return _refs; }

    /** Serial-path accounting (the Machine facade's access()). */
    void accountRef(RefDomain domain, Tick cost) { _refs.account(domain, cost); }

    /**
     * Fold one shard's epoch-local reference counters into the
     * global stats. Barrier-drain method: only the EpochBarrier
     * coordinator may call this (klint `shard-confinement`).
     */
    void
    foldRefsAtBarrier(const RefStats &local)
    {
        _refs.kernelRefs += local.kernelRefs;
        _refs.userRefs += local.userRefs;
        _refs.kernelRefTicks += local.kernelRefTicks;
        _refs.userRefTicks += local.userRefTicks;
    }

    /** Reset the global counters (between experiment runs). */
    void resetStatsAtBarrier() { _refs.reset(); }

  private:
    unsigned _numCpus;
    unsigned _numSockets;
    int64_t _cpuParallelism = 8;
    MemoryModel _memModel;
    RefStats _refs;
};

} // namespace kloc

#endif // KLOC_SIM_MACHINE_CORE_HH
