#include "sim/memory_model.hh"

#include <cmath>

#include "base/logging.hh"

namespace kloc {

TierId
MemoryModel::addTier(const TierSpec &spec)
{
    KLOC_ASSERT(spec.capacity > 0, "tier '%s' has zero capacity",
                spec.name.c_str());
    KLOC_ASSERT(spec.readBandwidth > 0 && spec.writeBandwidth > 0,
                "tier '%s' has zero bandwidth", spec.name.c_str());
    _tiers.push_back(spec);
    const auto socket = static_cast<size_t>(spec.socket);
    if (_interference.size() <= socket)
        _interference.resize(socket + 1, 1.0);
    return static_cast<TierId>(_tiers.size() - 1);
}

const TierSpec &
MemoryModel::spec(TierId tier) const
{
    KLOC_ASSERT(tier >= 0 && static_cast<size_t>(tier) < _tiers.size(),
                "bad tier id %d", tier);
    return _tiers[static_cast<size_t>(tier)];
}

Tick
MemoryModel::rawCost(TierId tier, Bytes bytes, AccessType type,
                     int from_socket) const
{
    const TierSpec &ts = spec(tier);
    const Tick latency = type == AccessType::Read ? ts.readLatency
                                                  : ts.writeLatency;
    const Bytes bw = type == AccessType::Read ? ts.readBandwidth
                                              : ts.writeBandwidth;
    Tick cost = latency + transferTime(bytes, bw);
    if (from_socket != ts.socket)
        cost += _remotePenalty;
    const auto socket = static_cast<size_t>(ts.socket);
    if (socket < _interference.size() && _interference[socket] > 1.0) {
        cost = static_cast<Tick>(
            std::llround(static_cast<double>(cost) *
                         _interference[socket]));
    }
    return cost;
}

Tick
MemoryModel::accessCost(TierId tier, Bytes bytes, AccessType type,
                        int from_socket) const
{
    const Tick miss = rawCost(tier, bytes, type, from_socket);
    if (_llcHitFraction <= 0.0)
        return miss;
    const double expected =
        _llcHitFraction * static_cast<double>(_llcLatency) +
        (1.0 - _llcHitFraction) * static_cast<double>(miss);
    return static_cast<Tick>(std::llround(expected));
}

void
MemoryModel::setInterference(int socket, double factor)
{
    KLOC_ASSERT(factor >= 1.0, "interference factor below 1");
    const auto idx = static_cast<size_t>(socket);
    if (_interference.size() <= idx)
        _interference.resize(idx + 1, 1.0);
    _interference[idx] = factor;
}

void
MemoryModel::clearInterference()
{
    for (auto &factor : _interference)
        factor = 1.0;
}

} // namespace kloc
