/**
 * @file
 * Memory timing model: per-tier latency/bandwidth specs and the cost
 * function every simulated memory access is charged through.
 *
 * This is the substitution for the paper's physical platforms. The
 * two-tier platform is a fast DRAM tier plus a bandwidth-throttled
 * DRAM tier (Table 4); the Optane platform layers a per-socket DRAM
 * L4 cache in front of persistent-memory timing (§6.2). Cross-socket
 * accesses pay an interconnect penalty, and an optional per-socket
 * interference factor models the streaming co-runner used in the
 * AutoNUMA experiments.
 */

#ifndef KLOC_SIM_MEMORY_MODEL_HH
#define KLOC_SIM_MEMORY_MODEL_HH

#include <string>
#include <vector>

#include "base/units.hh"

namespace kloc {

/** Static description of one memory tier. */
struct TierSpec
{
    std::string name;          ///< e.g. "fast-dram", "slow-dram", "pmem"
    Bytes capacity{};        ///< bytes of simulated frames
    Tick readLatency{};      ///< ns per access
    Tick writeLatency{};     ///< ns per access
    Bytes readBandwidth{};   ///< bytes/sec
    Bytes writeBandwidth{};  ///< bytes/sec
    int socket = 0;            ///< NUMA socket hosting the tier
};

/** Kind of simulated memory access, for stats attribution. */
enum class AccessType { Read, Write };

/**
 * Timing oracle for the machine's memory system. Stateless apart
 * from configuration; contention appears as an interference factor.
 */
class MemoryModel
{
  public:
    /** Register a tier; returns its TierId. */
    TierId addTier(const TierSpec &spec);

    const TierSpec &spec(TierId tier) const;

    size_t tierCount() const { return _tiers.size(); }

    /**
     * Cost of an access of @p bytes to @p tier issued from
     * @p from_socket. Expected-value LLC filtering: a fraction of
     * accesses hit on-chip SRAM and cost llcLatency instead.
     */
    Tick accessCost(TierId tier, Bytes bytes, AccessType type,
                    int from_socket) const;

    /** Raw media cost with no LLC filtering (used for page copies). */
    Tick rawCost(TierId tier, Bytes bytes, AccessType type,
                 int from_socket) const;

    /** Set fraction [0,1) of accesses served by the LLC. */
    void setLlcHitFraction(double fraction) { _llcHitFraction = fraction; }

    double llcHitFraction() const { return _llcHitFraction; }

    /** Extra latency for crossing sockets (QPI/UPI hop). */
    void setRemotePenalty(Tick penalty) { _remotePenalty = penalty; }

    /**
     * Multiply effective cost of accesses to tiers on @p socket by
     * @p factor (>= 1), modelling a streaming interferer.
     */
    void setInterference(int socket, double factor);

    /** Remove all interference factors. */
    void clearInterference();

  private:
    std::vector<TierSpec> _tiers;
    std::vector<double> _interference;  // per socket, 1.0 = none
    double _llcHitFraction = 0.0;
    Tick _llcLatency{12};     // ~LLC hit latency in ns
    Tick _remotePenalty{60};  // ns per cross-socket access
};

} // namespace kloc

#endif // KLOC_SIM_MEMORY_MODEL_HH
