/**
 * @file
 * ShardContext: the per-shard half of the sharded simulation core.
 *
 * A sharded run (sim/epoch.hh, docs/SHARDING.md) executes N shards
 * that advance virtual time independently between deterministic
 * epoch barriers. Each shard owns
 *
 *   - a local VirtualClock and EventQueue (shard-local async work),
 *   - a trace staging buffer (events merged at the barrier in
 *     (tick, shard, local-seq) order, so the global trace is
 *     byte-identical for any worker count),
 *   - local RefStats folded into the shared MachineCore at barriers,
 *   - an outbound mailbox of cross-shard messages, drained serially
 *     at the barrier in shard order.
 *
 * During an epoch a shard body may touch only its ShardContext and
 * const MachineCore state; every mutation of shared state must go
 * through a mailbox message applied at the barrier. The klint
 * `shard-confinement` rule enforces the MachineCore half of this
 * contract: only *AtBarrier methods may mutate core-shared state.
 */

#ifndef KLOC_SIM_SHARD_HH
#define KLOC_SIM_SHARD_HH

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "base/clock.hh"
#include "base/logging.hh"
#include "base/units.hh"
#include "sim/event_queue.hh"
#include "sim/machine_core.hh"
#include "trace/trace.hh"

namespace kloc {

/**
 * One cross-shard effect, posted during an epoch and applied by the
 * barrier coordinator against the global platform. @c kind is an
 * opaque workload-defined tag carried into the ShardMsg trace event;
 * @c apply runs serially in (shard, posting) order.
 */
struct ShardMessage
{
    uint64_t kind = 0;
    std::function<void()> apply;
};

/** Per-shard execution context: local time, events, trace, stats. */
class ShardContext
{
  public:
    /**
     * @param id    Shard index (dense from 0).
     * @param core  The shared machine half; const during epochs.
     * @param cpu   Representative CPU for socket-aware access costs.
     */
    ShardContext(unsigned id, const MachineCore &core, unsigned cpu)
        : _id(id), _core(core), _cpu(cpu)
    {
        KLOC_ASSERT(cpu < core.cpuCount(), "shard cpu %u out of range",
                    cpu);
    }

    ShardContext(const ShardContext &) = delete;
    ShardContext &operator=(const ShardContext &) = delete;

    unsigned id() const { return _id; }
    const MachineCore &core() const { return _core; }

    /** CPU this shard's thread of control runs on. */
    unsigned cpu() const { return _cpu; }

    void
    setCpu(unsigned cpu)
    {
        KLOC_ASSERT(cpu < _core.cpuCount(), "shard cpu %u out of range",
                    cpu);
        _cpu = cpu;
    }

    int socket() const { return _core.socketOf(_cpu); }

    // -- shard-local time -------------------------------------------------
    Tick now() const { return _clock.now(); }

    /** Advance the local clock by @p cost and run due local events. */
    void
    charge(Tick cost)
    {
        _clock.advance(cost);
        _events.runDue(_clock.now());
    }

    /** Charge CPU-bound work divided by the core's overlap factor. */
    void cpuWork(Tick cost) { charge(cost / _core.cpuParallelism()); }

    /** Shard-local async work (runs when this shard's clock passes). */
    void schedule(Tick when, EventQueue::Callback fn)
    {
        _events.schedule(when, std::move(fn));
    }

    EventQueue &events() { return _events; }

    /**
     * Charge one memory access against @p tier from this shard's
     * socket, attributed to @p domain in the shard-local counters.
     * The shared MemoryModel is read-only here (accessCost is const),
     * so concurrent shards can price accesses without coordination.
     * @return the cost charged.
     */
    Tick
    access(TierId tier, Bytes bytes, AccessType type, RefDomain domain)
    {
        const Tick cost = _core.memModel().accessCost(tier, bytes, type,
                                                      socket());
        charge(cost);
        _refs.account(domain, cost);
        ++_ops;
        return cost;
    }

    /** Count one workload operation (throughput accounting). */
    void noteOp() { ++_ops; }

    uint64_t ops() const { return _ops; }

    /** Shard-local reference counters for the current epoch. */
    const RefStats &refs() const { return _refs; }

    // -- shard-local tracing ----------------------------------------------
    /** Mirror of Tracer::enabled(), set by the engine each epoch. */
    bool traceEnabled() const { return _traceEnabled; }

    /**
     * Stage one trace event at the shard-local tick. The local seq
     * orders same-tick events within this shard; the barrier merge
     * restamps the global seq (Tracer::absorb).
     */
    void
    emit(TraceEventType type, uint64_t a = 0, uint64_t b = 0,
         uint64_t c = 0, uint64_t d = 0)
    {
        if (__builtin_expect(!_traceEnabled, 1))
            return;
        TraceEvent event;
        event.seq = _localSeq++;
        event.tick = _clock.now();
        event.type = type;
        event.args[0] = a;
        event.args[1] = b;
        event.args[2] = c;
        event.args[3] = d;
        _staged.push_back(event);
    }

    size_t stagedCount() const { return _staged.size(); }

    // -- cross-shard mailbox ----------------------------------------------
    /** Post a cross-shard effect; applied at the next barrier. */
    void post(ShardMessage msg) { _mailbox.push_back(std::move(msg)); }

    size_t mailboxCount() const { return _mailbox.size(); }

    // -- barrier protocol (coordinator only; serial) ----------------------
    /**
     * Finish the epoch: run local events due by @p barrier and park
     * the clock there. A shard whose last charge overshot the
     * barrier stays at its later tick — the coordinator stretches
     * the epoch end to cover it.
     */
    void
    parkAtBarrier(Tick barrier)
    {
        if (_clock.now() < barrier)
            _clock.advanceTo(barrier);
        _events.runDue(_clock.now());
    }

    /** Move out the staged trace events (tick-ordered). */
    std::vector<TraceEvent>
    takeStagedAtBarrier()
    {
        std::vector<TraceEvent> out = std::move(_staged);
        _staged.clear();
        _localSeq = 0;
        return out;
    }

    /** Move out the epoch's outbound mailbox (posting order). */
    std::vector<ShardMessage>
    takeMailboxAtBarrier()
    {
        std::vector<ShardMessage> out = std::move(_mailbox);
        _mailbox.clear();
        return out;
    }

    /** Move out the epoch's local ref counters (and reset them). */
    RefStats
    takeRefsAtBarrier()
    {
        RefStats out = _refs;
        _refs.reset();
        return out;
    }

    /** Ops performed this epoch (and reset the counter). */
    uint64_t
    takeOpsAtBarrier()
    {
        const uint64_t out = _ops;
        _ops = 0;
        return out;
    }

    /** Re-align the local clock with the global epoch end. */
    void
    syncClockAtBarrier(Tick epoch_end)
    {
        KLOC_ASSERT(_clock.now() <= epoch_end,
                    "shard %u clock past epoch end", _id);
        _clock.advanceTo(epoch_end);
    }

    /** Propagate the tracer's enabled flag (engine, per epoch). */
    void setTraceEnabledAtBarrier(bool on) { _traceEnabled = on; }

  private:
    unsigned _id;
    const MachineCore &_core;
    unsigned _cpu;
    bool _traceEnabled = false;
    VirtualClock _clock;
    EventQueue _events;
    RefStats _refs;
    uint64_t _ops = 0;
    uint64_t _localSeq = 0;
    std::vector<TraceEvent> _staged;
    std::vector<ShardMessage> _mailbox;
};

} // namespace kloc

#endif // KLOC_SIM_SHARD_HH
