#include "trace/invariants.hh"

#include <cstdarg>
#include <cstdio>

#include "base/objclass.hh"
#include "fault/fault.hh"

namespace kloc {

namespace {

constexpr uint64_t kJournalClass =
    static_cast<uint64_t>(ObjClass::Journal);

} // namespace

InvariantChecker::InvariantChecker(Tracer &tracer, bool strict)
    : _tracer(tracer), _strict(strict)
{
    _listenerId = _tracer.addListener(
        [this](const TraceEvent &event) { consume(event); });
}

InvariantChecker::~InvariantChecker()
{
    _tracer.removeListener(_listenerId);
}

void
InvariantChecker::violation(const TraceEvent &event, const char *fmt, ...)
{
    char buf[256];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    char line[384];
    std::snprintf(line, sizeof(line), "[seq %llu @%lld %s] %s",
                  static_cast<unsigned long long>(event.seq),
                  static_cast<long long>(event.tick),
                  traceEventName(event.type), buf);
    _violations.emplace_back(line);
}

InvariantChecker::FrameState &
InvariantChecker::frameFor(uint64_t key, bool on_active_list)
{
    auto it = _frames.find(key);
    if (it != _frames.end())
        return it->second;
    // First sighting without an alloc event: the checker attached
    // mid-run. Adopt the frame with inferred state and stop trusting
    // absolute list counts.
    _sawAdoption = true;
    FrameState state;
    state.adopted = true;
    state.active = on_active_list;
    auto [pos, inserted] = _frames.emplace(key, state);
    (void)inserted;
    auto &tc = counts(traceKeyTier(key));
    if (on_active_list)
        ++tc.active;
    else
        ++tc.inactive;
    return pos->second;
}

InvariantChecker::TierCounts &
InvariantChecker::counts(int tier)
{
    if (tier < 0)
        tier = 0;
    if (static_cast<size_t>(tier) >= _tierCounts.size())
        _tierCounts.resize(static_cast<size_t>(tier) + 1);
    return _tierCounts[static_cast<size_t>(tier)];
}

void
InvariantChecker::consume(const TraceEvent &event)
{
    ++_eventsChecked;
    const uint64_t a = event.args[0];
    const uint64_t b = event.args[1];
    const uint64_t c = event.args[2];
    const uint64_t d = event.args[3];

    switch (event.type) {
      case TraceEventType::FrameAlloc: {
        const uint64_t key = traceFrameKey(static_cast<int>(a), Pfn{b});
        if (_frames.count(key)) {
            violation(event, "alloc over live frame tier=%llu pfn=%llu",
                      (unsigned long long)a, (unsigned long long)b);
            break;
        }
        if (a < _tierOffline.size() && _tierOffline[a]) {
            violation(event, "allocation on offline tier %llu pfn=%llu",
                      (unsigned long long)a, (unsigned long long)b);
        }
        if (_shadows.count(key)) {
            violation(event,
                      "allocation lands on live shadow copy tier=%llu "
                      "pfn=%llu",
                      (unsigned long long)a, (unsigned long long)b);
        }
        if (_quarantined.count(key)) {
            violation(event,
                      "allocation on quarantined block tier=%llu pfn=%llu",
                      (unsigned long long)a, (unsigned long long)b);
        }
        FrameState state;
        state.cls = d;
        _frames.emplace(key, state);
        // Fresh frames enter the inactive LRU list.
        ++counts(static_cast<int>(a)).inactive;
        break;
      }

      case TraceEventType::FrameFree: {
        const uint64_t key = traceFrameKey(static_cast<int>(a), Pfn{b});
        auto it = _frames.find(key);
        if (it == _frames.end()) {
            if (_strict) {
                violation(event, "free of unknown frame tier=%llu pfn=%llu",
                          (unsigned long long)a, (unsigned long long)b);
            }
            break;
        }
        FrameState &frame = it->second;
        if (frame.trackedRefs > 0) {
            violation(event,
                      "frame tier=%llu pfn=%llu freed with %llu tracked "
                      "knode objects still referencing it",
                      (unsigned long long)a, (unsigned long long)b,
                      (unsigned long long)frame.trackedRefs);
        }
        if (frame.inflightBios > 0) {
            violation(event,
                      "frame tier=%llu pfn=%llu freed with %llu bios in "
                      "flight",
                      (unsigned long long)a, (unsigned long long)b,
                      (unsigned long long)frame.inflightBios);
        }
        if (frame.migrating) {
            violation(event, "frame tier=%llu pfn=%llu freed mid-migration",
                      (unsigned long long)a, (unsigned long long)b);
        }
        if (frame.inTxn) {
            violation(event,
                      "frame tier=%llu pfn=%llu freed inside an open "
                      "transactional copy",
                      (unsigned long long)a, (unsigned long long)b);
        }
        if (frame.pins > 0) {
            violation(event,
                      "frame tier=%llu pfn=%llu freed with %llu "
                      "unreleased pins",
                      (unsigned long long)a, (unsigned long long)b,
                      (unsigned long long)frame.pins);
        }
        if (frame.cls == kJournalClass && _journalArmed &&
            _journalWindows == 0) {
            violation(event,
                      "journal frame tier=%llu pfn=%llu freed outside a "
                      "journal commit/detach window",
                      (unsigned long long)a, (unsigned long long)b);
        }
        auto &tc = counts(static_cast<int>(a));
        if (frame.active)
            --tc.active;
        else
            --tc.inactive;
        _frames.erase(it);
        break;
      }

      case TraceEventType::BuddySplit:
      case TraceEventType::BuddyCoalesce:
        // Pure allocator bookkeeping; the buddy self-validates.
        break;

      case TraceEventType::LruActivate: {
        FrameState &frame = frameFor(traceFrameKey(static_cast<int>(a), Pfn{b}),
                                     false);
        if (frame.active) {
            violation(event, "activate of already-active frame tier=%llu "
                      "pfn=%llu",
                      (unsigned long long)a, (unsigned long long)b);
            break;
        }
        frame.active = true;
        auto &tc = counts(static_cast<int>(a));
        ++tc.active;
        --tc.inactive;
        break;
      }

      case TraceEventType::LruDeactivate: {
        FrameState &frame = frameFor(traceFrameKey(static_cast<int>(a), Pfn{b}),
                                     true);
        if (!frame.active) {
            violation(event, "deactivate of inactive frame tier=%llu "
                      "pfn=%llu",
                      (unsigned long long)a, (unsigned long long)b);
            break;
        }
        frame.active = false;
        auto &tc = counts(static_cast<int>(a));
        --tc.active;
        ++tc.inactive;
        break;
      }

      case TraceEventType::LruScan: {
        if (_sawAdoption)
            break;  // absolute counts unknown after a mid-run attach
        const auto &tc = counts(static_cast<int>(a));
        if (tc.active != static_cast<int64_t>(c) ||
            tc.inactive != static_cast<int64_t>(d)) {
            violation(event,
                      "LRU count mismatch on tier %llu: model "
                      "%lld/%lld vs scanned %llu/%llu (active/inactive)",
                      (unsigned long long)a,
                      (long long)tc.active, (long long)tc.inactive,
                      (unsigned long long)c, (unsigned long long)d);
        }
        break;
      }

      case TraceEventType::MigStart: {
        const uint64_t src_key = traceFrameKey(static_cast<int>(a), Pfn{b});
        const uint64_t dst_key = traceFrameKey(static_cast<int>(c), Pfn{d});
        FrameState frame = frameFor(src_key, false);
        if (frame.inflightBios > 0) {
            violation(event,
                      "migration of frame tier=%llu pfn=%llu with %llu "
                      "bios in flight",
                      (unsigned long long)a, (unsigned long long)b,
                      (unsigned long long)frame.inflightBios);
        }
        if (frame.migrating) {
            violation(event, "nested migration of frame tier=%llu pfn=%llu",
                      (unsigned long long)a, (unsigned long long)b);
        }
        if (frame.pins > 0) {
            violation(event,
                      "migration of pinned frame tier=%llu pfn=%llu "
                      "(%llu pins)",
                      (unsigned long long)a, (unsigned long long)b,
                      (unsigned long long)frame.pins);
        }
        if (c < _tierOffline.size() && _tierOffline[c]) {
            violation(event,
                      "migration arrives on offline tier %llu pfn=%llu",
                      (unsigned long long)c, (unsigned long long)d);
        }
        if (frame.inTxn) {
            // The copy committed: the open window closes with the move.
            frame.inTxn = false;
            ++_txnCommits;
        }
        _frames.erase(src_key);
        if (_frames.count(dst_key)) {
            violation(event, "migration lands on live frame tier=%llu "
                      "pfn=%llu",
                      (unsigned long long)c, (unsigned long long)d);
            break;
        }
        if (_shadows.count(dst_key)) {
            violation(event,
                      "migration lands on live shadow copy tier=%llu "
                      "pfn=%llu",
                      (unsigned long long)c, (unsigned long long)d);
        }
        if (_quarantined.count(dst_key)) {
            violation(event,
                      "migration lands on quarantined block tier=%llu "
                      "pfn=%llu",
                      (unsigned long long)c, (unsigned long long)d);
        }
        // The only migration a poisoned frame may make is its
        // containment evacuation, which scrubs the poison.
        frame.poisoned = false;
        // List membership follows the frame to the destination tier.
        // counts() may grow the tier vector; materialize both entries
        // before taking references or the first one dangles.
        counts(static_cast<int>(a));
        counts(static_cast<int>(c));
        auto &from = counts(static_cast<int>(a));
        auto &to = counts(static_cast<int>(c));
        if (frame.active) {
            --from.active;
            ++to.active;
        } else {
            --from.inactive;
            ++to.inactive;
        }
        frame.migrating = true;
        _frames.emplace(dst_key, frame);
        break;
      }

      case TraceEventType::MigComplete: {
        const uint64_t key = traceFrameKey(static_cast<int>(a), Pfn{b});
        auto it = _frames.find(key);
        if (it == _frames.end()) {
            if (_strict) {
                violation(event, "migration complete for unknown frame "
                          "tier=%llu pfn=%llu",
                          (unsigned long long)a, (unsigned long long)b);
            }
            break;
        }
        if (!it->second.migrating) {
            violation(event, "migration complete without start for frame "
                      "tier=%llu pfn=%llu",
                      (unsigned long long)a, (unsigned long long)b);
            break;
        }
        it->second.migrating = false;
        break;
      }

      case TraceEventType::KnodeMap:
        if (_knodes.count(a)) {
            violation(event, "duplicate knode for inode %llu",
                      (unsigned long long)a);
            break;
        }
        _knodes.emplace(a, 0);
        break;

      case TraceEventType::KnodeUnmap: {
        auto it = _knodes.find(a);
        if (it == _knodes.end()) {
            if (_strict) {
                violation(event, "unmap of unknown knode inode=%llu",
                          (unsigned long long)a);
            }
            break;
        }
        if (it->second > 0) {
            violation(event, "knode inode=%llu unmapped with %llu live "
                      "tracked objects",
                      (unsigned long long)a,
                      (unsigned long long)it->second);
        }
        _knodes.erase(it);
        break;
      }

      case TraceEventType::KnodeActivate:
      case TraceEventType::KnodeInactivate:
        if (!_knodes.count(a)) {
            if (_strict) {
                violation(event, "hotness change on unknown knode "
                          "inode=%llu", (unsigned long long)a);
            } else {
                _sawAdoption = true;
                _knodes.emplace(a, 0);
            }
        }
        break;

      case TraceEventType::ObjTrack: {
        auto it = _knodes.find(a);
        if (it == _knodes.end()) {
            if (_strict) {
                violation(event, "object tracked under unknown knode "
                          "inode=%llu", (unsigned long long)a);
                break;
            }
            _sawAdoption = true;
            it = _knodes.emplace(a, 0).first;
        }
        ++it->second;
        FrameState &frame = frameFor(traceFrameKey(static_cast<int>(c), Pfn{d}),
                                     false);
        ++frame.trackedRefs;
        break;
      }

      case TraceEventType::ObjUntrack: {
        auto it = _knodes.find(a);
        if (it == _knodes.end()) {
            if (_strict) {
                violation(event, "object untracked under unknown knode "
                          "inode=%llu", (unsigned long long)a);
            }
        } else if (it->second > 0) {
            --it->second;
        } else if (_strict) {
            violation(event, "object count underflow on knode inode=%llu",
                      (unsigned long long)a);
        }
        const uint64_t key = traceFrameKey(static_cast<int>(c), Pfn{d});
        auto fit = _frames.find(key);
        if (fit == _frames.end()) {
            violation(event,
                      "knode inode=%llu untracked an object whose frame "
                      "tier=%llu pfn=%llu is already freed",
                      (unsigned long long)a, (unsigned long long)c,
                      (unsigned long long)d);
            break;
        }
        FrameState &frame = fit->second;
        if (frame.trackedRefs > 0) {
            --frame.trackedRefs;
        } else if (_strict && !frame.adopted) {
            violation(event, "tracked-ref underflow on frame tier=%llu "
                      "pfn=%llu",
                      (unsigned long long)c, (unsigned long long)d);
        }
        if (frame.cls == kJournalClass && _journalArmed &&
            _journalWindows == 0) {
            violation(event,
                      "journal object released outside a commit/detach "
                      "window (inode=%llu)",
                      (unsigned long long)a);
        }
        break;
      }

      case TraceEventType::JournalCommitStart:
      case TraceEventType::JournalDetachStart:
      case TraceEventType::JournalReplayStart:
        _journalArmed = true;
        ++_journalWindows;
        break;

      case TraceEventType::JournalCommitEnd:
      case TraceEventType::JournalDetachEnd:
      case TraceEventType::JournalCrash:
      case TraceEventType::JournalCommitAbort:
      case TraceEventType::JournalReplayEnd:
        if (_journalWindows == 0) {
            violation(event, "journal window close without open");
            break;
        }
        --_journalWindows;
        break;

      case TraceEventType::BioSubmit: {
        if (_bioFrames.count(a)) {
            violation(event, "duplicate bio id %llu",
                      (unsigned long long)a);
            break;
        }
        FrameState &frame =
            frameFor(b, false);
        ++frame.inflightBios;
        _bioFrames.emplace(a, b);
        break;
      }

      case TraceEventType::BioComplete: {
        auto it = _bioFrames.find(a);
        if (it == _bioFrames.end()) {
            if (_strict) {
                violation(event, "completion of unknown bio %llu",
                          (unsigned long long)a);
            }
            break;
        }
        auto fit = _frames.find(it->second);
        if (fit != _frames.end() && fit->second.inflightBios > 0)
            --fit->second.inflightBios;
        _bioFrames.erase(it);
        break;
      }

      case TraceEventType::FramePin: {
        FrameState &frame = frameFor(traceFrameKey(static_cast<int>(a), Pfn{b}),
                                     false);
        ++frame.pins;
        break;
      }

      case TraceEventType::FrameUnpin: {
        const uint64_t key = traceFrameKey(static_cast<int>(a), Pfn{b});
        auto it = _frames.find(key);
        if (it == _frames.end()) {
            violation(event, "unpin of unknown frame tier=%llu pfn=%llu",
                      (unsigned long long)a, (unsigned long long)b);
            break;
        }
        FrameState &frame = it->second;
        if (frame.pins > 0) {
            --frame.pins;
        } else if (_strict || !frame.adopted) {
            violation(event, "unpin without pin on frame tier=%llu "
                      "pfn=%llu",
                      (unsigned long long)a, (unsigned long long)b);
        }
        break;
      }

      case TraceEventType::TierOffline: {
        if (a >= _tierOffline.size())
            _tierOffline.resize(a + 1, false);
        if (_tierOffline[a]) {
            violation(event, "offline of already-offline tier %llu",
                      (unsigned long long)a);
        }
        _tierOffline[a] = true;
        break;
      }

      case TraceEventType::TierOnline: {
        if (a >= _tierOffline.size())
            _tierOffline.resize(a + 1, false);
        if (!_tierOffline[a] && _strict) {
            violation(event, "online of tier %llu that was not offline",
                      (unsigned long long)a);
        }
        _tierOffline[a] = false;
        break;
      }

      case TraceEventType::MigTxnBegin: {
        FrameState &frame = frameFor(traceFrameKey(static_cast<int>(a), Pfn{b}),
                                     false);
        if (frame.inTxn) {
            violation(event,
                      "nested transactional copy on frame tier=%llu "
                      "pfn=%llu",
                      (unsigned long long)a, (unsigned long long)b);
            break;
        }
        if (frame.migrating) {
            violation(event,
                      "transactional copy of mid-migration frame "
                      "tier=%llu pfn=%llu",
                      (unsigned long long)a, (unsigned long long)b);
        }
        frame.inTxn = true;
        ++_txnBegins;
        break;
      }

      case TraceEventType::MigTxnAbort: {
        const uint64_t key = traceFrameKey(static_cast<int>(a), Pfn{b});
        auto it = _frames.find(key);
        if (it == _frames.end()) {
            if (_strict) {
                violation(event,
                          "transactional abort on unknown frame tier=%llu "
                          "pfn=%llu",
                          (unsigned long long)a, (unsigned long long)b);
            }
            break;
        }
        if (!it->second.inTxn) {
            violation(event,
                      "transactional abort without open window on frame "
                      "tier=%llu pfn=%llu",
                      (unsigned long long)a, (unsigned long long)b);
            break;
        }
        it->second.inTxn = false;
        ++_txnAborts;
        break;
      }

      case TraceEventType::ShadowMake: {
        const uint64_t key = traceFrameKey(static_cast<int>(a), Pfn{b});
        if (_frames.count(key)) {
            violation(event,
                      "shadow created over live frame tier=%llu pfn=%llu",
                      (unsigned long long)a, (unsigned long long)b);
            break;
        }
        if (_shadows.count(key)) {
            violation(event,
                      "shadow created over live shadow tier=%llu pfn=%llu",
                      (unsigned long long)a, (unsigned long long)b);
            break;
        }
        if (_quarantined.count(key)) {
            violation(event,
                      "shadow created on quarantined block tier=%llu "
                      "pfn=%llu",
                      (unsigned long long)a, (unsigned long long)b);
            break;
        }
        _shadows.emplace(key, traceFrameKey(static_cast<int>(c), Pfn{d}));
        break;
      }

      case TraceEventType::ShadowReuse: {
        const uint64_t key = traceFrameKey(static_cast<int>(a), Pfn{b});
        auto it = _shadows.find(key);
        if (it == _shadows.end()) {
            if (_strict) {
                violation(event,
                          "reuse of unknown shadow tier=%llu pfn=%llu",
                          (unsigned long long)a, (unsigned long long)b);
            }
            break;
        }
        _shadows.erase(it);
        break;
      }

      case TraceEventType::ShadowDrop: {
        const uint64_t key = traceFrameKey(static_cast<int>(a), Pfn{b});
        auto it = _shadows.find(key);
        if (it == _shadows.end()) {
            if (_strict) {
                violation(event,
                          "drop of unknown shadow tier=%llu pfn=%llu",
                          (unsigned long long)a, (unsigned long long)b);
            }
            break;
        }
        _shadows.erase(it);
        break;
      }

      case TraceEventType::FramePoison: {
        FrameState &frame = frameFor(traceFrameKey(static_cast<int>(a), Pfn{b}),
                                     false);
        if (frame.poisoned) {
            violation(event,
                      "re-poison of already-poisoned frame tier=%llu "
                      "pfn=%llu",
                      (unsigned long long)a, (unsigned long long)b);
            break;
        }
        if (c > 3) {
            violation(event, "unknown poison origin %llu",
                      (unsigned long long)c);
        }
        frame.poisoned = true;
        break;
      }

      case TraceEventType::FrameQuarantine: {
        const uint64_t key = traceFrameKey(static_cast<int>(a), Pfn{b});
        if (_frames.count(key)) {
            violation(event,
                      "quarantine of live frame tier=%llu pfn=%llu",
                      (unsigned long long)a, (unsigned long long)b);
            break;
        }
        if (_shadows.count(key)) {
            violation(event,
                      "quarantine of live shadow copy tier=%llu pfn=%llu",
                      (unsigned long long)a, (unsigned long long)b);
            break;
        }
        if (!_quarantined.insert(key).second) {
            violation(event,
                      "double quarantine of block tier=%llu pfn=%llu",
                      (unsigned long long)a, (unsigned long long)b);
        }
        break;
      }

      case TraceEventType::MemRecover: {
        // args: new frame key, quarantined old key, recovery source.
        if (!_frames.count(a)) {
            violation(event, "recovery into unknown frame key=%llu",
                      (unsigned long long)a);
        }
        if (!_quarantined.count(b)) {
            violation(event,
                      "recovery from unquarantined location key=%llu",
                      (unsigned long long)b);
        }
        if (c > 1) {
            violation(event, "unknown recovery source %llu",
                      (unsigned long long)c);
        }
        break;
      }

      case TraceEventType::DataLoss: {
        if (!_frames.count(traceFrameKey(static_cast<int>(a), Pfn{b})) &&
            _strict) {
            violation(event, "data loss on unknown frame tier=%llu "
                      "pfn=%llu",
                      (unsigned long long)a, (unsigned long long)b);
        }
        if (c > 3) {
            violation(event, "unknown data-loss reason %llu",
                      (unsigned long long)c);
        }
        break;
      }

      case TraceEventType::TierHealth: {
        if (a >= _tierHealth.size())
            _tierHealth.resize(a + 1, 0);
        if (b != _tierHealth[a]) {
            violation(event,
                      "health transition on tier %llu from %llu but "
                      "model says %llu",
                      (unsigned long long)a, (unsigned long long)b,
                      (unsigned long long)_tierHealth[a]);
        }
        const int64_t step =
            static_cast<int64_t>(c) - static_cast<int64_t>(b);
        if (c > 2 || (step != 1 && step != -1)) {
            violation(event,
                      "non-adjacent health transition %llu -> %llu on "
                      "tier %llu",
                      (unsigned long long)b, (unsigned long long)c,
                      (unsigned long long)a);
            _tierHealth[a] = c <= 2 ? c : _tierHealth[a];
            break;
        }
        // Hysteresis thresholds mirror TierManager's constants
        // (kDegradeScore/kFailScore/kReadmitScore/kRecoverScore);
        // tier_manager.hh points back here to keep them in sync.
        if (b == 0 && c == 1 && d < 4000) {
            violation(event,
                      "tier %llu degraded below threshold (score %llu)",
                      (unsigned long long)a, (unsigned long long)d);
        } else if (b == 1 && c == 2 && d < 16000) {
            violation(event,
                      "tier %llu failed below threshold (score %llu)",
                      (unsigned long long)a, (unsigned long long)d);
        } else if (b == 2 && c == 1 && d > 6000) {
            violation(event,
                      "tier %llu readmitted above threshold (score %llu)",
                      (unsigned long long)a, (unsigned long long)d);
        } else if (b == 1 && c == 0 && d > 1000) {
            violation(event,
                      "tier %llu recovered above threshold (score %llu)",
                      (unsigned long long)a, (unsigned long long)d);
        }
        _tierHealth[a] = c;
        break;
      }

      case TraceEventType::KlocDamaged:
        if (!_knodes.count(a)) {
            if (_strict) {
                violation(event, "damage report on unknown knode "
                          "inode=%llu", (unsigned long long)a);
            } else {
                _sawAdoption = true;
                _knodes.emplace(a, 0);
            }
        }
        break;

      case TraceEventType::SoftOffline:
        if (!_knodes.count(a) && _strict) {
            violation(event, "soft-offline of unknown knode inode=%llu",
                      (unsigned long long)a);
        }
        break;

      case TraceEventType::PoisonStorm:
        if (c > b) {
            violation(event,
                      "poison storm on tier %llu poisoned %llu frames "
                      "but only %llu were requested",
                      (unsigned long long)a, (unsigned long long)c,
                      (unsigned long long)b);
        }
        break;

      case TraceEventType::FaultInject:
        // Exhaustive over FaultSite so the fault-site-coverage klint
        // rule can anchor every injection site to a checker rule:
        // the named cases below are the contract that each site's
        // firings flow through this model.
        if (a >= static_cast<uint64_t>(FaultSite::NumSites)) {
            violation(event, "fault injection at unknown site %llu",
                      (unsigned long long)a);
            break;
        }
        switch (static_cast<FaultSite>(a)) {
          case FaultSite::DeviceRead:
          case FaultSite::DeviceWrite:
          case FaultSite::DeviceTimeout:
            // Device faults surface as BioRetry/BioError brackets.
            break;
          case FaultSite::MigrationNoSpace:
            // Surfaces as MigRetry/MigAbandon or MigTxnAbort.
            break;
          case FaultSite::JournalCommitCrash:
            // Surfaces as JournalCrash closing its commit window.
            break;
          case FaultSite::FramePoisonAccess:
          case FaultSite::FramePoisonScan:
          case FaultSite::FramePoisonCopy:
            // Surfaces as FramePoison -> quarantine/recovery events.
            break;
          case FaultSite::NumSites:
            break;  // unreachable: range-checked above
        }
        break;

      case TraceEventType::BioRetry:
      case TraceEventType::BioError:
      case TraceEventType::MigRetry:
      case TraceEventType::MigAbandon:
      case TraceEventType::TierDrain:
      case TraceEventType::PolicyRateAdapt:
        // Informational; the surrounding brackets carry the state.
        break;

      case TraceEventType::ShardWork:
        // Coordinator-emitted per-shard epoch summary. All shard
        // events of one epoch arrive in the same barrier batch, so
        // they must agree on the epoch and arrive in shard order.
        if (_openEpoch >= 0 && static_cast<int64_t>(b) != _openEpoch) {
            violation(event,
                      "shard %llu work for epoch %llu inside open "
                      "epoch %lld",
                      (unsigned long long)a, (unsigned long long)b,
                      (long long)_openEpoch);
        }
        _openEpoch = static_cast<int64_t>(b);
        if (!_workShards.empty() && a <= _workShards.back()) {
            violation(event,
                      "shard work out of shard order (%llu after %llu)",
                      (unsigned long long)a,
                      (unsigned long long)_workShards.back());
        }
        _workShards.push_back(a);
        break;

      case TraceEventType::ShardMsg:
        // Cross-shard messages drain at the barrier in (shard, seq)
        // order with per-shard seq contiguous from zero.
        if (_openEpoch >= 0 && static_cast<int64_t>(b) != _openEpoch) {
            violation(event,
                      "shard %llu message for epoch %llu inside open "
                      "epoch %lld",
                      (unsigned long long)a, (unsigned long long)b,
                      (long long)_openEpoch);
        }
        _openEpoch = static_cast<int64_t>(b);
        if (_msgLastShard >= 0 &&
            static_cast<int64_t>(a) < _msgLastShard) {
            violation(event,
                      "shard message drain out of shard order (%llu "
                      "after %lld)",
                      (unsigned long long)a, (long long)_msgLastShard);
        }
        _msgLastShard = static_cast<int64_t>(a);
        if (c != _msgNextSeq[a]) {
            violation(event,
                      "shard %llu message seq %llu, expected %llu",
                      (unsigned long long)a, (unsigned long long)c,
                      (unsigned long long)_msgNextSeq[a]);
        }
        _msgNextSeq[a] = c + 1;
        ++_epochMsgs;
        break;

      case TraceEventType::EpochBarrier: {
        if (_openEpoch >= 0 && static_cast<int64_t>(a) != _openEpoch) {
            violation(event,
                      "barrier closes epoch %llu but shard events "
                      "were for epoch %lld",
                      (unsigned long long)a, (long long)_openEpoch);
        }
        // Epochs count up from 0 per engine run; a fresh engine on
        // the same machine restarts at 0.
        if (_lastBarrierEpoch >= 0 && a != 0 &&
            static_cast<int64_t>(a) != _lastBarrierEpoch + 1) {
            violation(event,
                      "barrier epoch %llu not successor of %lld",
                      (unsigned long long)a,
                      (long long)_lastBarrierEpoch);
        }
        if (_workShards.size() > b ||
            (_strict && !_workShards.empty() && _workShards.size() != b)) {
            violation(event,
                      "barrier reports %llu shards but %zu reported "
                      "work",
                      (unsigned long long)b, _workShards.size());
        }
        if (_epochMsgs > d || (_strict && _epochMsgs != d)) {
            violation(event,
                      "barrier reports %llu messages but %llu drained",
                      (unsigned long long)d,
                      (unsigned long long)_epochMsgs);
        }
        _lastBarrierEpoch = static_cast<int64_t>(a);
        _openEpoch = -1;
        _msgLastShard = -1;
        _msgNextSeq.clear();
        _workShards.clear();
        _epochMsgs = 0;
        break;
      }

      case TraceEventType::NumTypes:
        violation(event, "malformed event type");
        break;
    }
}

uint64_t
InvariantChecker::outstandingPins() const
{
    uint64_t pinned = 0;
    // klint:allow(determinism): order-independent reduction.
    for (const auto &[key, frame] : _frames) {
        (void)key;
        if (frame.pins > 0)
            ++pinned;
    }
    return pinned;
}

uint64_t
InvariantChecker::openTransactionalCopies() const
{
    uint64_t open = 0;
    // klint:allow(determinism): order-independent reduction.
    for (const auto &[key, frame] : _frames) {
        (void)key;
        if (frame.inTxn)
            ++open;
    }
    return open;
}

std::string
InvariantChecker::report() const
{
    if (_violations.empty())
        return "invariants: clean (" + std::to_string(_eventsChecked) +
               " events checked)\n";
    std::string out = "invariants: " + std::to_string(_violations.size()) +
                      " violation(s) over " +
                      std::to_string(_eventsChecked) + " events\n";
    for (const std::string &v : _violations) {
        out += "  ";
        out += v;
        out += '\n';
    }
    return out;
}

} // namespace kloc
