/**
 * @file
 * Online cross-subsystem invariant checking over the event stream.
 *
 * The InvariantChecker subscribes to a Tracer and replays every event
 * into a shadow model of frames, LRU lists, knodes, journal windows,
 * and in-flight bios. Ordering rules that no single subsystem can
 * check locally are enforced here:
 *
 *  - a frame with an in-flight bio must not start migrating
 *  - per-tier active/inactive list counts must match what LRU scans
 *    report (count consistency)
 *  - a knode must never reference a freed frame (tracked objects pin
 *    their frame's liveness), and must be empty when unmapped
 *  - journal-class frames are only released inside a journal commit,
 *    detach, or crash-replay window — commit precedes journal-frame
 *    reclaim, even across a crash and recovery
 *  - pin/unpin counts balance per frame: no unpin without a pin, no
 *    free or migration of a frame while pins are outstanding
 *  - an offlined tier receives no new allocations and no migration
 *    arrivals until it is onlined again
 *  - shadow copies (Nomad) are consistent: a shadow is never created
 *    over a live frame or a live shadow, no allocation or migration
 *    arrival lands on a live shadow location, and every reuse or drop
 *    names a shadow that exists
 *  - transactional copies bracket correctly: every MigTxnBegin is
 *    closed by exactly one MigStart (commit) or MigTxnAbort, with no
 *    nesting and no free of a frame inside an open window
 *  - hwpoison containment is sound: a frame is never poisoned twice,
 *    quarantine retires only dead locations and never the same block
 *    twice, nothing ever allocates, migrates into, or shadows onto a
 *    quarantined block, and every recovery names a live destination
 *    and a quarantined source
 *  - tier health moves one step at a time (healthy <-> degraded <->
 *    failed) from the state the model last saw, and every transition
 *    respects the hysteresis thresholds its score reports
 *  - sharded execution (docs/SHARDING.md) is well-bracketed: shard
 *    work/message events agree on the epoch their barrier closes,
 *    barrier epochs count up by one per engine run, messages drain
 *    in shard order with contiguous per-shard sequence numbers, and
 *    the barrier's shard/message totals match what was seen
 *
 * Violations are collected, not fatal, so tests can assert on the
 * full list and tools can report totals.
 */

#ifndef KLOC_TRACE_INVARIANTS_HH
#define KLOC_TRACE_INVARIANTS_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "trace/trace.hh"

namespace kloc {

/** Subscribes to a Tracer and enforces cross-subsystem ordering. */
class InvariantChecker
{
  public:
    /**
     * Attaches to @p tracer; detaches automatically on destruction.
     *
     * In strict mode every entity must be introduced by its lifecycle
     * event before use — right for tests that attach before any
     * activity. Non-strict (the default) adopts entities first seen
     * mid-run, for tools that attach to an already-built platform.
     */
    explicit InvariantChecker(Tracer &tracer, bool strict = false);

    InvariantChecker(const InvariantChecker &) = delete;
    InvariantChecker &operator=(const InvariantChecker &) = delete;

    ~InvariantChecker();

    /** Feed one event through the model (also used directly by tests). */
    void consume(const TraceEvent &event);

    const std::vector<std::string> &violations() const
    {
        return _violations;
    }

    bool clean() const { return _violations.empty(); }

    uint64_t eventsChecked() const { return _eventsChecked; }

    /** Frames currently holding at least one unreleased pin. */
    uint64_t outstandingPins() const;

    /** Live non-exclusive shadow copies in the model. */
    uint64_t shadowCount() const
    {
        return static_cast<uint64_t>(_shadows.size());
    }

    /** Transactional-copy windows opened / committed / aborted. */
    uint64_t txnBegins() const { return _txnBegins; }
    uint64_t txnCommits() const { return _txnCommits; }
    uint64_t txnAborts() const { return _txnAborts; }

    /** Frames currently inside an open transactional-copy window. */
    uint64_t openTransactionalCopies() const;

    /** Blocks retired into quarantine, never to be allocated again. */
    uint64_t quarantinedCount() const
    {
        return static_cast<uint64_t>(_quarantined.size());
    }

    /** All violations joined into a printable report. */
    std::string report() const;

  private:
    struct FrameState
    {
        uint64_t cls = ~0ULL;    ///< ObjClass value; ~0 when adopted
        bool active = false;     ///< on the active LRU list
        bool migrating = false;  ///< between MigStart and MigComplete
        bool adopted = false;    ///< first seen mid-run (no alloc event)
        bool inTxn = false;      ///< open transactional-copy window
        bool poisoned = false;   ///< hwpoison pending containment
        uint64_t trackedRefs = 0;///< knode objects referencing it
        uint64_t inflightBios = 0;
        uint64_t pins = 0;       ///< frame_pin minus frame_unpin
    };

    struct TierCounts
    {
        int64_t active = 0;
        int64_t inactive = 0;
    };

    void violation(const TraceEvent &event, const char *fmt, ...)
        __attribute__((format(printf, 3, 4)));

    /** Frame for @p key, adopting it if unseen (mid-run attach). */
    FrameState &frameFor(uint64_t key, bool on_active_list);

    TierCounts &counts(int tier);

    Tracer &_tracer;
    bool _strict = false;
    int _listenerId = 0;

    std::unordered_map<uint64_t, FrameState> _frames;  ///< by frame key
    std::unordered_map<uint64_t, uint64_t> _knodes;    ///< inode -> objs
    std::unordered_map<uint64_t, uint64_t> _bioFrames; ///< bio -> key
    std::unordered_map<uint64_t, uint64_t> _shadows;   ///< shadow -> fast key
    std::vector<TierCounts> _tierCounts;
    std::vector<bool> _tierOffline;    ///< per-tier offline flag
    std::unordered_set<uint64_t> _quarantined; ///< retired frame keys
    std::vector<uint64_t> _tierHealth; ///< per-tier health (0/1/2)
    // Sharded-execution protocol (docs/SHARDING.md): epoch open/close
    // agreement, barrier-drain shard ordering, contiguous message seq.
    int64_t _openEpoch = -1;        ///< epoch with shard events pending
    int64_t _lastBarrierEpoch = -1; ///< last closed epoch
    int64_t _msgLastShard = -1;     ///< drain-order watermark
    std::unordered_map<uint64_t, uint64_t> _msgNextSeq; ///< shard->seq
    std::vector<uint64_t> _workShards; ///< shards reporting this epoch
    uint64_t _epochMsgs = 0;           ///< messages drained this epoch
    int _journalWindows = 0;   ///< nesting depth of commit/detach windows
    bool _journalArmed = false;///< a journal subsystem has shown itself
    bool _sawAdoption = false; ///< attach was mid-run; relax counting
    uint64_t _txnBegins = 0;
    uint64_t _txnCommits = 0;
    uint64_t _txnAborts = 0;
    uint64_t _eventsChecked = 0;
    std::vector<std::string> _violations;
};

} // namespace kloc

#endif // KLOC_TRACE_INVARIANTS_HH
