#include "trace/trace.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "base/logging.hh"

namespace kloc {

namespace {

struct EventSpec
{
    const char *name;
    unsigned argCount;
    const char *argNames[4];
};

const EventSpec kEventSpecs[kNumTraceEventTypes] = {
    {"frame_alloc",          4, {"tier", "pfn", "order", "class"}},
    {"frame_free",           4, {"tier", "pfn", "order", "class"}},
    {"buddy_split",          3, {"tier", "pfn", "order", nullptr}},
    {"buddy_coalesce",       3, {"tier", "pfn", "order", nullptr}},
    {"lru_activate",         2, {"tier", "pfn", nullptr, nullptr}},
    {"lru_deactivate",       2, {"tier", "pfn", nullptr, nullptr}},
    {"lru_scan",             4, {"tier", "scanned", "active", "inactive"}},
    {"mig_start",            4, {"src_tier", "src_pfn", "dst_tier",
                                 "dst_pfn"}},
    {"mig_complete",         4, {"dst_tier", "dst_pfn", "pages", "demote"}},
    {"knode_map",            1, {"inode", nullptr, nullptr, nullptr}},
    {"knode_unmap",          1, {"inode", nullptr, nullptr, nullptr}},
    {"knode_activate",       1, {"inode", nullptr, nullptr, nullptr}},
    {"knode_inactivate",     1, {"inode", nullptr, nullptr, nullptr}},
    {"obj_track",            4, {"inode", "kind", "ftier", "fpfn"}},
    {"obj_untrack",          4, {"inode", "kind", "ftier", "fpfn"}},
    {"journal_commit_start", 4, {"tx", "records", "pages", "fg"}},
    {"journal_commit_end",   1, {"tx", nullptr, nullptr, nullptr}},
    {"journal_detach_start", 1, {"inode", nullptr, nullptr, nullptr}},
    {"journal_detach_end",   1, {"inode", nullptr, nullptr, nullptr}},
    {"bio_submit",           4, {"bio", "frame", "sector", "write"}},
    {"bio_complete",         1, {"bio", nullptr, nullptr, nullptr}},
    {"fault_inject",         2, {"site", "fire", nullptr, nullptr}},
    {"frame_pin",            2, {"tier", "pfn", nullptr, nullptr}},
    {"frame_unpin",          2, {"tier", "pfn", nullptr, nullptr}},
    {"bio_retry",            3, {"bio", "attempt", "backoff", nullptr}},
    {"bio_error",            2, {"bio", "attempts", nullptr, nullptr}},
    {"mig_retry",            4, {"src_tier", "src_pfn", "dst_tier",
                                 "attempt"}},
    {"mig_abandon",          4, {"tier", "pfn", "dst_tier", "reason"}},
    {"tier_offline",         1, {"tier", nullptr, nullptr, nullptr}},
    {"tier_online",          1, {"tier", nullptr, nullptr, nullptr}},
    {"tier_drain",           3, {"tier", "moved", "stranded", nullptr}},
    {"journal_crash",        2, {"tx", "written", nullptr, nullptr}},
    {"journal_commit_abort", 1, {"tx", nullptr, nullptr, nullptr}},
    {"journal_replay_start", 3, {"tx", "records", "pages", nullptr}},
    {"journal_replay_end",   2, {"tx", "ok", nullptr, nullptr}},
    {"mig_txn_begin",        3, {"src_tier", "src_pfn", "dst_tier",
                                 nullptr}},
    {"mig_txn_abort",        4, {"src_tier", "src_pfn", "dst_tier",
                                 "reason"}},
    {"shadow_make",          4, {"tier", "pfn", "ftier", "fpfn"}},
    {"shadow_reuse",         4, {"tier", "pfn", "ftier", "fpfn"}},
    {"shadow_drop",          3, {"tier", "pfn", "reason", nullptr}},
    {"policy_rate_adapt",    3, {"rate", "reused", "sampled", nullptr}},
    {"frame_poison",         4, {"tier", "pfn", "origin", "class"}},
    {"frame_quarantine",     3, {"tier", "pfn", "order", nullptr}},
    {"mem_recover",          3, {"frame", "old", "source", nullptr}},
    {"data_loss",            4, {"tier", "pfn", "reason", "class"}},
    {"tier_health",          4, {"tier", "from", "to", "score"}},
    {"kloc_damaged",         3, {"inode", "tier", "pfn", nullptr}},
    {"soft_offline",         2, {"inode", "moved", nullptr, nullptr}},
    {"poison_storm",         3, {"tier", "requested", "poisoned",
                                 nullptr}},
    {"shard_work",           4, {"shard", "epoch", "ops", "staged"}},
    {"shard_msg",            4, {"shard", "epoch", "seq", "kind"}},
    {"epoch_barrier",        4, {"epoch", "shards", "merged", "msgs"}},
};

const EventSpec &
spec(TraceEventType type)
{
    const auto index = static_cast<unsigned>(type);
    KLOC_ASSERT(index < kNumTraceEventTypes, "bad trace event type %u",
                index);
    return kEventSpecs[index];
}

} // namespace

const char *
traceEventName(TraceEventType type)
{
    return spec(type).name;
}

unsigned
traceEventArgCount(TraceEventType type)
{
    return spec(type).argCount;
}

const char *const *
traceEventArgNames(TraceEventType type)
{
    return spec(type).argNames;
}

std::string
traceEventToString(const TraceEvent &event)
{
    const EventSpec &s = spec(event.type);
    char buf[256];
    int len = std::snprintf(buf, sizeof(buf), "%" PRIu64 " @%" PRId64 " %s",
                            event.seq, static_cast<int64_t>(event.tick),
                            s.name);
    for (unsigned i = 0; i < s.argCount; ++i) {
        len += std::snprintf(buf + len, sizeof(buf) - len,
                             " %s=%" PRIu64, s.argNames[i], event.args[i]);
    }
    return std::string(buf, static_cast<size_t>(len));
}

bool
parseTraceEvent(const std::string &line, TraceEvent &out)
{
    std::istringstream in(line);
    std::string tickTok, name;
    if (!(in >> out.seq >> tickTok >> name))
        return false;
    if (tickTok.empty() || tickTok[0] != '@')
        return false;
    out.tick = Tick{std::strtoll(tickTok.c_str() + 1, nullptr, 10)};

    out.type = TraceEventType::NumTypes;
    for (unsigned t = 0; t < kNumTraceEventTypes; ++t) {
        if (name == kEventSpecs[t].name) {
            out.type = static_cast<TraceEventType>(t);
            break;
        }
    }
    if (out.type == TraceEventType::NumTypes)
        return false;

    const EventSpec &s = spec(out.type);
    out.args[0] = out.args[1] = out.args[2] = out.args[3] = 0;
    for (unsigned i = 0; i < s.argCount; ++i) {
        std::string field;
        if (!(in >> field))
            return false;
        const size_t eq = field.find('=');
        if (eq == std::string::npos ||
            field.compare(0, eq, s.argNames[i]) != 0) {
            return false;
        }
        out.args[i] = std::strtoull(field.c_str() + eq + 1, nullptr, 10);
    }
    return true;
}

std::vector<TraceEvent>
parseTrace(const std::string &text)
{
    std::vector<TraceEvent> events;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        TraceEvent event;
        if (!parseTraceEvent(line, event))
            break;
        events.push_back(event);
    }
    return events;
}

void
Tracer::setEnabled(bool on)
{
    _enabled = on;
    // Pre-size the ring so the steady-state insert never pays a
    // vector growth reallocation.
    if (on && _ring.capacity() < _capacity)
        _ring.reserve(_capacity);
}

void
Tracer::setCapacity(size_t capacity)
{
    KLOC_ASSERT(capacity > 0, "trace ring needs capacity");
    size_t pow2 = 1;
    while (pow2 < capacity)
        pow2 <<= 1;
    _capacity = pow2;
    _mask = pow2 - 1;
    _ring.clear();
    _ring.shrink_to_fit();
    if (_enabled)
        _ring.reserve(_capacity);
    _next = 0;
}

void
Tracer::record(TraceEventType type, uint64_t a, uint64_t b, uint64_t c,
               uint64_t d)
{
    TraceEvent event;
    event.seq = _emitted++;
    event.tick = _clock.now();
    event.type = type;
    event.args[0] = a;
    event.args[1] = b;
    event.args[2] = c;
    event.args[3] = d;

    if (_ring.size() < _capacity) {
        _ring.push_back(event);
    } else {
        // Ring is full: overwrite the oldest slot.
        _ring[_next] = event;
        _next = (_next + 1) & _mask;
        ++_dropped;
    }

    for (const auto &[id, listener] : _listeners)
        listener(event);
}

void
Tracer::flushBatch()
{
    if (_stagedCount == 0)
        return;
    emitBatch(_staged.data(), _stagedCount);
    _stagedCount = 0;
}

void
Tracer::absorb(TraceEvent *events, size_t count)
{
    if (!_enabled || count == 0)
        return;
    KLOC_ASSERT(_stagedCount == 0,
                "absorbing merged shard events inside an open batch "
                "window; flushBatch() first");
    // Shard-local seq values only ordered the merge; the global
    // trace numbers events by absorption order.
    for (size_t i = 0; i < count; ++i)
        events[i].seq = _emitted++;
    emitBatch(events, count);
}

void
Tracer::emitBatch(const TraceEvent *events, size_t count)
{
    // Append while there is room, then overwrite oldest slots in at
    // most two contiguous spans (the wrap splits the run once), so
    // the steady-state full-ring path is bulk copies, not a
    // per-event wrap check.
    const size_t room = _capacity - _ring.size();
    const size_t take = count < room ? count : room;
    _ring.insert(_ring.end(), events, events + take);
    for (size_t i = take; i < count;) {
        const size_t span = std::min(count - i, _capacity - _next);
        std::copy(events + i, events + i + span, _ring.begin() + _next);
        _next = (_next + span) & _mask;
        i += span;
    }
    _dropped += count - take;

    if (!_listeners.empty()) {
        for (size_t i = 0; i < count; ++i) {
            for (const auto &[id, listener] : _listeners)
                listener(events[i]);
        }
    }
}

std::vector<TraceEvent>
Tracer::events() const
{
    KLOC_ASSERT(_stagedCount == 0,
                "reading the trace inside an open batch window; "
                "flushBatch() first");
    std::vector<TraceEvent> out;
    out.reserve(_ring.size());
    // _next is the oldest slot once the ring has wrapped.
    for (size_t i = 0; i < _ring.size(); ++i)
        out.push_back(_ring[(_next + i) % _ring.size()]);
    return out;
}

void
Tracer::clear()
{
    _ring.clear();
    _next = 0;
    _emitted = 0;
    _dropped = 0;
    _stagedCount = 0;
}

int
Tracer::addListener(Listener listener)
{
    const int id = _nextListenerId++;
    _listeners.emplace_back(id, std::move(listener));
    return id;
}

void
Tracer::removeListener(int id)
{
    for (size_t i = 0; i < _listeners.size(); ++i) {
        if (_listeners[i].first == id) {
            _listeners.erase(_listeners.begin() +
                             static_cast<ptrdiff_t>(i));
            return;
        }
    }
}

std::string
Tracer::serialize() const
{
    std::string out = "# kloc-trace v1 events=" +
                      std::to_string(_ring.size()) +
                      " dropped=" + std::to_string(_dropped) + "\n";
    for (const TraceEvent &event : events()) {
        out += traceEventToString(event);
        out += '\n';
    }
    return out;
}

} // namespace kloc
