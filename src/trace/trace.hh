/**
 * @file
 * Deterministic event tracing for the simulator — an ftrace-style
 * ring buffer of typed, Tick-stamped records.
 *
 * Subsystems emit TraceEvents through the Machine's Tracer at the
 * points where placement-relevant state changes: frame alloc/free,
 * LRU transitions, migration start/complete, knode lifecycle, journal
 * commits, and bio submission. Events carry only stable integers
 * (tiers, pfns, inode ids) — never pointers or host time — so two
 * identical runs produce byte-identical serialized traces, which is
 * what makes golden-trace regression testing possible.
 *
 * Tracing is off by default; every emit site reduces to one predicted
 * branch while disabled. Listeners (the InvariantChecker) observe
 * every event even after the ring wraps.
 */

#ifndef KLOC_TRACE_TRACE_HH
#define KLOC_TRACE_TRACE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "base/units.hh"
#include "base/clock.hh"

namespace kloc {

/** Every traced state transition, grouped by emitting subsystem. */
enum class TraceEventType : uint8_t {
    // mem/tier_manager: frame lifecycle.
    FrameAlloc = 0,     ///< tier, pfn, order, class
    FrameFree,          ///< tier, pfn, order, class
    // mem/buddy_allocator: block bookkeeping.
    BuddySplit,         ///< tier, pfn, order (freed high half)
    BuddyCoalesce,      ///< tier, pfn, order (merged block)
    // mem/lru: list transitions and scans.
    LruActivate,        ///< tier, pfn
    LruDeactivate,      ///< tier, pfn
    LruScan,            ///< tier, scanned, active, inactive
    // mem/migration: successful moves (start/complete bracket).
    MigStart,           ///< src_tier, src_pfn, dst_tier, dst_pfn
    MigComplete,        ///< dst_tier, dst_pfn, pages, demote
    // core/kloc_manager: knode lifecycle and object tracking.
    KnodeMap,           ///< inode
    KnodeUnmap,         ///< inode
    KnodeActivate,      ///< inode
    KnodeInactivate,    ///< inode
    ObjTrack,           ///< inode, kind, frame_tier, frame_pfn
    ObjUntrack,         ///< inode, kind, frame_tier, frame_pfn
    // fs/journal: transaction windows.
    JournalCommitStart, ///< tx, records, pages, foreground
    JournalCommitEnd,   ///< tx
    JournalDetachStart, ///< inode
    JournalDetachEnd,   ///< inode
    // fs/block_layer: I/O brackets.
    BioSubmit,          ///< bio, frame_key, sector, write
    BioComplete,        ///< bio
    // fault/*: injection and the recovery machinery it exercises.
    FaultInject,        ///< site, fire#
    FramePin,           ///< tier, pfn
    FrameUnpin,         ///< tier, pfn
    BioRetry,           ///< bio, attempt, backoff
    BioError,           ///< bio, attempts
    MigRetry,           ///< src_tier, src_pfn, dst_tier, attempt
    MigAbandon,         ///< tier, pfn, dst_tier, reason
    TierOffline,        ///< tier
    TierOnline,         ///< tier
    TierDrain,          ///< tier, moved_pages, stranded
    JournalCrash,       ///< tx, pages_written
    JournalCommitAbort, ///< tx
    JournalReplayStart, ///< tx, records, pages
    JournalReplayEnd,   ///< tx, ok
    // mem/migration: Nomad-style transactional promotion windows.
    MigTxnBegin,        ///< src_tier, src_pfn, dst_tier
    MigTxnAbort,        ///< src_tier, src_pfn, dst_tier, reason
    // mem/tier_manager: non-exclusive shadow copy lifecycle.
    ShadowMake,         ///< tier, pfn, fast_tier, fast_pfn
    ShadowReuse,        ///< tier, pfn, fast_tier, fast_pfn
    ShadowDrop,         ///< tier, pfn, reason
    // policy/*: adaptive-rate decisions (Jenga).
    PolicyRateAdapt,    ///< rate, reused, sampled
    // mem/*: hwpoison containment — poisoned frames, quarantine,
    // recovery, and the per-tier health state machine.
    FramePoison,        ///< tier, pfn, origin, class
    FrameQuarantine,    ///< tier, pfn, order
    MemRecover,         ///< frame_key, old_key, source
    DataLoss,           ///< tier, pfn, reason, class
    TierHealth,         ///< tier, from, to, score
    KlocDamaged,        ///< inode, tier, pfn
    SoftOffline,        ///< inode, moved
    PoisonStorm,        ///< tier, requested, poisoned
    // sim/shard + sim/epoch: sharded-execution protocol
    // (docs/SHARDING.md). Emitted by the coordinator at barriers.
    ShardWork,          ///< shard, epoch, ops, staged
    ShardMsg,           ///< shard, epoch, seq, kind
    EpochBarrier,       ///< epoch, shards, merged, msgs
    NumTypes
};

inline constexpr unsigned kNumTraceEventTypes =
    static_cast<unsigned>(TraceEventType::NumTypes);

/** Stable serialization name of @p type (e.g. "frame_alloc"). */
const char *traceEventName(TraceEventType type);

/** Number of meaningful args for @p type (0..4). */
unsigned traceEventArgCount(TraceEventType type);

/** Serialization field names for @p type's args. */
const char *const *traceEventArgNames(TraceEventType type);

/** One traced state transition. */
struct TraceEvent
{
    uint64_t seq = 0;   ///< emission order (monotonic from 0)
    Tick tick{};        ///< virtual time of emission
    TraceEventType type = TraceEventType::NumTypes;
    uint64_t args[4] = {};

    bool
    operator==(const TraceEvent &other) const
    {
        return seq == other.seq && tick == other.tick &&
               type == other.type && args[0] == other.args[0] &&
               args[1] == other.args[1] && args[2] == other.args[2] &&
               args[3] == other.args[3];
    }

    bool operator!=(const TraceEvent &other) const { return !(*this == other); }
};

/**
 * Pack a frame identity into one arg. Pfns are frame-space indices
 * (far below 2^48) and tier ids small non-negative integers, so the
 * pair fits one u64 and remains run-to-run stable.
 */
constexpr uint64_t
traceFrameKey(int tier, Pfn pfn)
{
    return (static_cast<uint64_t>(static_cast<uint32_t>(tier)) << 48) | pfn;
}

constexpr int
traceKeyTier(uint64_t key)
{
    return static_cast<int>(key >> 48);
}

constexpr Pfn
traceKeyPfn(uint64_t key)
{
    return Pfn{key & ((1ULL << 48) - 1)};
}

/** Render one event as a stable single-line record. */
std::string traceEventToString(const TraceEvent &event);

/**
 * Parse a line produced by traceEventToString().
 * @return false on malformed input (out is unspecified then).
 */
bool parseTraceEvent(const std::string &line, TraceEvent &out);

/**
 * Parse a whole serialized trace; '#' comment lines and blank lines
 * are skipped. Stops and returns what it has on a malformed line.
 */
std::vector<TraceEvent> parseTrace(const std::string &text);

class TraceBatch;

/** Fixed-capacity ring buffer of trace events plus live listeners. */
class Tracer
{
  public:
    using Listener = std::function<void(const TraceEvent &)>;

    static constexpr size_t kDefaultCapacity = 1 << 16;

    /** Staging slots available to an open TraceBatch window. */
    static constexpr size_t kBatchCapacity = 128;

    explicit Tracer(const VirtualClock &clock) : _clock(clock) {}

    bool enabled() const { return _enabled; }

    void setEnabled(bool on);

    /**
     * Resize the ring (drops currently buffered events). The
     * capacity is rounded up to a power of two so the wrap-around
     * index on the per-event fast path is a mask, not a division.
     */
    void setCapacity(size_t capacity);

    size_t capacity() const { return _capacity; }

    /**
     * Record one event if tracing is enabled (hot-path entry).
     * Inside a TraceBatch window the event is staged — stamped with
     * its seq/tick immediately but delivered to the ring and the
     * listeners in bulk when the window flushes — so batched and
     * direct emission produce byte-identical serialized traces.
     */
    void
    emit(TraceEventType type, uint64_t a = 0, uint64_t b = 0,
         uint64_t c = 0, uint64_t d = 0)
    {
        if (__builtin_expect(_enabled, 0)) {
            if (_batchDepth)
                stage(type, a, b, c, d);
            else
                record(type, a, b, c, d);
        }
    }

    /**
     * Deliver every staged event to the ring and listeners now.
     * Useful mid-window before handing control somewhere that will
     * inspect the buffered trace; a no-op with nothing staged.
     */
    void flushBatch();

    /** Staged-but-undelivered events in the open batch window. */
    size_t stagedCount() const { return _stagedCount; }

    /**
     * Adopt @p count pre-built events into the trace, re-stamping
     * their seq fields with this tracer's emission counter but
     * keeping their ticks. The sharded engine (sim/epoch.hh) merges
     * shard-staged events into (tick, shard, local-seq) order and
     * absorbs the run at each barrier, so the global trace is
     * byte-identical for any worker count. Events must arrive in
     * nondecreasing tick order relative to previous absorptions.
     * No-op while tracing is disabled. @p events is restamped in
     * place.
     */
    void absorb(TraceEvent *events, size_t count);

    /** Events emitted since construction/clear (including dropped). */
    uint64_t emitted() const { return _emitted; }

    /** Events lost to ring wrap-around. */
    uint64_t dropped() const { return _dropped; }

    /** Buffered events, oldest first. */
    std::vector<TraceEvent> events() const;

    /** Drop buffered events and reset seq/drop counters. */
    void clear();

    /**
     * Subscribe to every recorded event (called after buffering).
     * @return id for removeListener.
     */
    int addListener(Listener listener);

    void removeListener(int id);

    /**
     * Render the buffered events as a diffable text artifact: a
     * header comment followed by one line per event.
     */
    std::string serialize() const;

  private:
    friend class TraceBatch;

    void record(TraceEventType type, uint64_t a, uint64_t b, uint64_t c,
                uint64_t d);

    /** Stamp seq/tick now, park the record until the window flushes. */
    void
    stage(TraceEventType type, uint64_t a, uint64_t b, uint64_t c,
          uint64_t d)
    {
        if (_stagedCount == kBatchCapacity)
            flushBatch();
        TraceEvent &event = _staged[_stagedCount++];
        event.seq = _emitted++;
        event.tick = _clock.now();
        event.type = type;
        event.args[0] = a;
        event.args[1] = b;
        event.args[2] = c;
        event.args[3] = d;
    }

    /** Bulk ring insert + listener fan-out for a pre-stamped run. */
    void emitBatch(const TraceEvent *events, size_t count);

    void beginBatch() { ++_batchDepth; }

    void
    endBatch()
    {
        if (--_batchDepth == 0)
            flushBatch();
    }

    const VirtualClock &_clock;
    bool _enabled = false;
    size_t _capacity = kDefaultCapacity;
    size_t _mask = kDefaultCapacity - 1;
    std::vector<TraceEvent> _ring;
    size_t _next = 0;          ///< ring slot for the next event
    uint64_t _emitted = 0;
    uint64_t _dropped = 0;
    unsigned _batchDepth = 0;  ///< nested TraceBatch windows open
    size_t _stagedCount = 0;
    std::array<TraceEvent, kBatchCapacity> _staged;
    int _nextListenerId = 1;
    std::vector<std::pair<int, Listener>> _listeners;
};

/**
 * RAII batch window for hot loops that emit many events back to back
 * (LRU scans, migration batches). While a window is open, every
 * Tracer::emit stages its event instead of immediately touching the
 * ring and running listener callbacks; the run is delivered in one
 * pass when the outermost window closes (or the staging area fills).
 * Seq and tick are stamped at emit time, so the resulting trace is
 * byte-identical to unbatched emission — windows only defer listener
 * delivery, never reorder it. Windows nest; only the outermost close
 * flushes.
 */
class TraceBatch
{
  public:
    explicit TraceBatch(Tracer &tracer) : _tracer(tracer)
    {
        _tracer.beginBatch();
    }

    TraceBatch(const TraceBatch &) = delete;
    TraceBatch &operator=(const TraceBatch &) = delete;

    ~TraceBatch() { _tracer.endBatch(); }

    /** Deliver staged events now (e.g. for a mid-loop trace read). */
    void flush() { _tracer.flushBatch(); }

  private:
    Tracer &_tracer;
};

} // namespace kloc

#endif // KLOC_TRACE_TRACE_HH
