#include "workload/cassandra.hh"

#include "base/logging.hh"

namespace kloc {

CassandraWorkload::CassandraWorkload(const WorkloadConfig &config)
    : Workload(config), _fdCache(kFdCacheCap)
{
    _numKeys = 200000 / config.scale;
    if (_numKeys < 2048)
        _numKeys = 2048;
    _zipf = std::make_unique<ZipfianGenerator>(_numKeys, 0.99,
                                               config.seed ^ 0xca55);
}

void
CassandraWorkload::setup(System &sys)
{
    // JVM heap: row cache + memtables (Table 3: 11 GB footprint,
    // most of it application memory).
    growArena(sys, scaled(_config.smallInput ? 6 * kGiB : 8 * kGiB) /
                   kPageSize);
    for (unsigned i = 0; i < kClients; ++i)
        _clients.push_back(sys.net().socket());

    _commitlogFd = sys.fs().create("cassandra_commitlog");
    KLOC_ASSERT(_commitlogFd >= 0, "commitlog exists");

    const Bytes dataset =
        scaled(_config.smallInput ? 10 * kGiB : 40 * kGiB) / 4;
    const uint64_t initial = dataset / kSstableBytes;
    for (uint64_t i = 0; i < initial; ++i)
        writeSstable(sys);
}

void
CassandraWorkload::writeSstable(System &sys)
{
    const std::string name =
        "cassandra_sst_" + std::to_string(_nextSstableId++);
    const int fd = sys.fs().create(name);
    if (fd < 0)
        return;
    for (Bytes off{}; off < kSstableBytes; off += kChunkBytes) {
        rotateCpu(sys);
        touchArena(sys, off / kPageSize, kChunkBytes, AccessType::Read);
        sys.fs().write(fd, off, kChunkBytes);
    }
    // Memtable flushes are background threads in Cassandra.
    sys.fs().close(fd);
    _sstables.push_back(name);
}

void
CassandraWorkload::doRead(System &sys, int sd, uint64_t key)
{
    sys.net().deliver(sd, kRequestBytes);
    sys.net().recv(sd, kRequestBytes);
    sys.machine().cpuWork(kJavaOverhead);

    if (_rng.nextBool(kCacheHitRate) || _sstables.empty()) {
        // Row cache hit: pure app-memory work.
        touchArena(sys, key, kRowBytes, AccessType::Read);
    } else {
        // Miss: probe the owning SSTable (partition index + row).
        const uint64_t pos =
            (key * _sstables.size() / _numKeys) % _sstables.size();
        const int fd = _fdCache.get(sys, _sstables[pos]);
        if (fd >= 0) {
            sys.fs().read(fd, Bytes{0}, kPageSize);
            const uint64_t blocks = kSstableBytes / kPageSize;
            sys.fs().read(fd, (1 + key % (blocks - 1)) * kPageSize,
                          kPageSize);
        }
        // Fill the row cache.
        touchArena(sys, key, kRowBytes, AccessType::Write);
    }
    sys.net().send(sd, kRowBytes);
}

void
CassandraWorkload::doWrite(System &sys, int sd, uint64_t key)
{
    sys.net().deliver(sd, kRequestBytes + kRowBytes);
    sys.net().recv(sd, kRequestBytes + kRowBytes);
    sys.machine().cpuWork(kJavaOverhead);

    // Memtable insert + commitlog append.
    touchArena(sys, key, kRowBytes, AccessType::Write);
    sys.fs().write(_commitlogFd, _commitlogCursor, kRowBytes);
    _commitlogCursor += kRowBytes;
    if (++_commitlogAppends % kCommitlogSyncEvery == 0)
        sys.fs().fsync(_commitlogFd);

    _memtableFill += kRowBytes;
    if (_memtableFill >= kSstableBytes) {
        _memtableFill = Bytes{};
        writeSstable(sys);
        // Size-tiered compaction keeps the table count bounded.
        if (_sstables.size() > 48) {
            const std::string victim = _sstables.front();
            _sstables.erase(_sstables.begin());
            _fdCache.drop(sys, victim);
            sys.fs().unlink(victim);
        }
    }
    sys.net().send(sd, kRequestBytes);
}

void
CassandraWorkload::setupShards(System &sys, unsigned shards)
{
    beginShards(sys, shards, _config.operations);
    _shardState.clear();
    _shardState.resize(shards);
    for (unsigned i = 0; i < shards; ++i) {
        _shardState[i].zipf = std::make_unique<ZipfianGenerator>(
            _numKeys, 0.99, shardSeed(i) ^ 0xca55);
    }
    for (size_t i = 0; i < _clients.size(); ++i)
        _shardState[i % shards].clients.push_back(_clients[i]);
}

void
CassandraWorkload::shardEpoch(ShardContext &shard, uint64_t)
{
    ShardSlice &slice = _slices[shard.id()];
    CassandraShard &my = _shardState[shard.id()];
    for (uint64_t n = epochQuota(slice); n > 0; --n) {
        const int sd = my.clients.empty()
            ? -1
            : my.clients[my.clientCursor++ % my.clients.size()];
        const uint64_t key = my.zipf->next();
        shard.cpuWork(kJavaOverhead);
        CassandraShard::Op op{CassandraShard::Op::ReadHit, sd, key, 0};
        if (slice.rng.nextBool(0.5)) {
            if (slice.rng.nextBool(kCacheHitRate) || _sstables.empty()) {
                // Row cache hit: pure app-memory work.
                shardTouchArena(shard, slice, key, kRowBytes,
                                AccessType::Read);
            } else {
                op.kind = CassandraShard::Op::ReadMiss;
                op.pos = (key * _sstables.size() / _numKeys) %
                         _sstables.size();
                // Fill the row cache.
                shardTouchArena(shard, slice, key, kRowBytes,
                                AccessType::Write);
            }
        } else {
            op.kind = CassandraShard::Op::Write;
            // Memtable insert; the commitlog append defers.
            shardTouchArena(shard, slice, key, kRowBytes,
                            AccessType::Write);
            my.putBytes += kRowBytes;
        }
        if (sd >= 0)
            my.ops.push_back(op);
        ++slice.done;
    }
    if (!slice.touches.empty() || !my.ops.empty())
        postShardApply(shard);
}

void
CassandraWorkload::applyShardOpsAtBarrier(System &sys,
                                          unsigned slice_index)
{
    Workload::applyShardOpsAtBarrier(sys, slice_index);
    CassandraShard &my = _shardState[slice_index];
    for (const CassandraShard::Op &op : my.ops) {
        switch (op.kind) {
          case CassandraShard::Op::Write:
            sys.net().deliver(op.sd, kRequestBytes + kRowBytes);
            sys.net().recv(op.sd, kRequestBytes + kRowBytes);
            sys.fs().write(_commitlogFd, _commitlogCursor, kRowBytes);
            _commitlogCursor += kRowBytes;
            if (++_commitlogAppends % kCommitlogSyncEvery == 0)
                sys.fs().fsync(_commitlogFd);
            sys.net().send(op.sd, kRequestBytes);
            break;
          case CassandraShard::Op::ReadMiss:
            sys.net().deliver(op.sd, kRequestBytes);
            sys.net().recv(op.sd, kRequestBytes);
            if (op.pos < _sstables.size()) {
                const int fd = _fdCache.get(sys, _sstables[op.pos]);
                if (fd >= 0) {
                    sys.fs().read(fd, Bytes{0}, kPageSize);
                    const uint64_t blocks = kSstableBytes / kPageSize;
                    sys.fs().read(
                        fd, (1 + op.key % (blocks - 1)) * kPageSize,
                        kPageSize);
                }
            }
            sys.net().send(op.sd, kRowBytes);
            break;
          case CassandraShard::Op::ReadHit:
            sys.net().deliver(op.sd, kRequestBytes);
            sys.net().recv(op.sd, kRequestBytes);
            sys.net().send(op.sd, kRowBytes);
            break;
        }
    }
    my.ops.clear();
    _memtableFill += my.putBytes;
    my.putBytes = Bytes{};
}

void
CassandraWorkload::shardBarrier(System &sys, uint64_t)
{
    while (_memtableFill >= kSstableBytes) {
        _memtableFill -= kSstableBytes;
        writeSstable(sys);
        // Size-tiered compaction keeps the table count bounded.
        if (_sstables.size() > 48) {
            const std::string victim = _sstables.front();
            _sstables.erase(_sstables.begin());
            _fdCache.drop(sys, victim);
            sys.fs().unlink(victim);
        }
    }
}

WorkloadResult
CassandraWorkload::run(System &sys)
{
    WorkloadResult result;
    const Tick start = sys.machine().now();
    for (uint64_t op = 0; op < _config.operations; ++op) {
        rotateCpu(sys);
        const int sd = _clients[op % kClients];
        const uint64_t key = _zipf->next();
        if (_rng.nextBool(0.5))
            doRead(sys, sd, key);
        else
            doWrite(sys, sd, key);
        ++result.operations;
    }
    result.elapsed = sys.machine().now() - start;
    return result;
}

void
CassandraWorkload::teardown(System &sys)
{
    _fdCache.clear(sys);
    for (const int sd : _clients)
        sys.net().closeSocket(sd);
    _clients.clear();
    if (_commitlogFd >= 0) {
        sys.fs().close(_commitlogFd);
        _commitlogFd = -1;
    }
    sys.fs().unlink("cassandra_commitlog");
    // Detach before unlinking: fs calls can re-enter via daemons.
    std::vector<std::string> sstables;
    sstables.swap(_sstables);
    for (const auto &name : sstables)
        sys.fs().unlink(name);
    Workload::teardown(sys);
}

} // namespace kloc
