/**
 * @file
 * Cassandra-like driver (Table 3): YCSB 50/50 read-write through a
 * client-server network path, with a large application-level row
 * cache, an append-only commitlog, and memtable flushes to SSTables.
 *
 * The app cache absorbs most reads and the JVM adds per-op CPU, so
 * Cassandra is the workload least sensitive to kernel-object
 * placement — the reason Fig. 4 shows KLOCs ~= Nimble++ here.
 */

#ifndef KLOC_WORKLOAD_CASSANDRA_HH
#define KLOC_WORKLOAD_CASSANDRA_HH

#include <string>
#include <vector>

#include "workload/workload.hh"

namespace kloc {

/** Cassandra-like NoSQL store driver. */
class CassandraWorkload : public Workload
{
  public:
    static constexpr Bytes kRowBytes{1024};
    static constexpr Bytes kRequestBytes{64};
    static constexpr Bytes kSstableBytes = 4 * kMiB;
    static constexpr Bytes kChunkBytes = 64 * kKiB;
    static constexpr unsigned kClients = 16;
    static constexpr unsigned kFdCacheCap = 16;
    static constexpr unsigned kCommitlogSyncEvery = 256;
    /** App-cache hit probability (the 512 MB row cache). */
    static constexpr double kCacheHitRate = 0.65;
    /** JVM + serialization overhead per request. */
    static constexpr Tick kJavaOverhead{2000};

    explicit CassandraWorkload(const WorkloadConfig &config);

    const char *name() const override { return "cassandra"; }

    void setup(System &sys) override;
    WorkloadResult run(System &sys) override;
    void teardown(System &sys) override;

    // Sharded port: clients partition into shards; row-cache hits
    // and the YCSB mix roll on slice-local rng, row touches price
    // locally, and the kernel half of each request — sockets, SSTable
    // probes, commitlog appends (offsets assigned serially against
    // the shared cursor) — defers to the barrier replay. Flushes and
    // size-tiered compaction run in the barrier hook.
    bool shardable() const override { return true; }
    void setupShards(System &sys, unsigned shards) override;
    void shardEpoch(ShardContext &shard, uint64_t epoch) override;
    void shardBarrier(System &sys, uint64_t epoch) override;

  protected:
    void applyShardOpsAtBarrier(System &sys, unsigned slice_index) override;

  private:
    /** Per-shard client state beyond the common slice. */
    struct CassandraShard
    {
        /** One deferred request's kernel half. */
        struct Op
        {
            enum Kind : uint8_t { ReadHit, ReadMiss, Write };
            Kind kind;
            int sd;
            uint64_t key;
            /** SSTable index for ReadMiss (epoch-start list). */
            uint64_t pos;
        };
        std::vector<int> clients;
        uint64_t clientCursor = 0;
        std::unique_ptr<ZipfianGenerator> zipf;
        std::vector<Op> ops;
        /** Memtable bytes this slice inserted in the epoch. */
        Bytes putBytes{};
    };

    void writeSstable(System &sys);
    void doRead(System &sys, int sd, uint64_t key);
    void doWrite(System &sys, int sd, uint64_t key);

    FdCache _fdCache;
    std::vector<int> _clients;
    std::vector<std::string> _sstables;
    uint64_t _nextSstableId = 0;
    uint64_t _numKeys;
    int _commitlogFd = -1;
    Bytes _commitlogCursor{};
    uint64_t _commitlogAppends = 0;
    Bytes _memtableFill{};
    std::unique_ptr<ZipfianGenerator> _zipf;
    std::vector<CassandraShard> _shardState;
};

} // namespace kloc

#endif // KLOC_WORKLOAD_CASSANDRA_HH
