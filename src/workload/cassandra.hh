/**
 * @file
 * Cassandra-like driver (Table 3): YCSB 50/50 read-write through a
 * client-server network path, with a large application-level row
 * cache, an append-only commitlog, and memtable flushes to SSTables.
 *
 * The app cache absorbs most reads and the JVM adds per-op CPU, so
 * Cassandra is the workload least sensitive to kernel-object
 * placement — the reason Fig. 4 shows KLOCs ~= Nimble++ here.
 */

#ifndef KLOC_WORKLOAD_CASSANDRA_HH
#define KLOC_WORKLOAD_CASSANDRA_HH

#include <string>
#include <vector>

#include "workload/workload.hh"

namespace kloc {

/** Cassandra-like NoSQL store driver. */
class CassandraWorkload : public Workload
{
  public:
    static constexpr Bytes kRowBytes{1024};
    static constexpr Bytes kRequestBytes{64};
    static constexpr Bytes kSstableBytes = 4 * kMiB;
    static constexpr Bytes kChunkBytes = 64 * kKiB;
    static constexpr unsigned kClients = 16;
    static constexpr unsigned kFdCacheCap = 16;
    static constexpr unsigned kCommitlogSyncEvery = 256;
    /** App-cache hit probability (the 512 MB row cache). */
    static constexpr double kCacheHitRate = 0.65;
    /** JVM + serialization overhead per request. */
    static constexpr Tick kJavaOverhead{2000};

    explicit CassandraWorkload(const WorkloadConfig &config);

    const char *name() const override { return "cassandra"; }

    void setup(System &sys) override;
    WorkloadResult run(System &sys) override;
    void teardown(System &sys) override;

  private:
    void writeSstable(System &sys);
    void doRead(System &sys, int sd, uint64_t key);
    void doWrite(System &sys, int sd, uint64_t key);

    FdCache _fdCache;
    std::vector<int> _clients;
    std::vector<std::string> _sstables;
    uint64_t _nextSstableId = 0;
    uint64_t _numKeys;
    int _commitlogFd = -1;
    Bytes _commitlogCursor{};
    uint64_t _commitlogAppends = 0;
    Bytes _memtableFill{};
    std::unique_ptr<ZipfianGenerator> _zipf;
};

} // namespace kloc

#endif // KLOC_WORKLOAD_CASSANDRA_HH
