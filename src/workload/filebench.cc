#include "workload/filebench.hh"

#include "base/logging.hh"

namespace kloc {

void
FilebenchWorkload::setup(System &sys)
{
    // Small thread-private buffers only; filebench is about the
    // kernel, not app memory.
    growArena(sys, scaled(256 * kMiB) / kPageSize);

    _fileBytes = scaled(_config.smallInput ? 10 * kGiB : 32 * kGiB);
    _fd = sys.fs().create(_fileName);
    KLOC_ASSERT(_fd >= 0, "filebench file already exists");
    for (Bytes off{}; off < _fileBytes; off += kLoadChunk) {
        rotateCpu(sys);
        sys.fs().write(_fd, off, kLoadChunk);
        if ((off / kLoadChunk) % 64 == 63)
            sys.fs().fsync(_fd);
    }
    sys.fs().fsync(_fd);
}

WorkloadResult
FilebenchWorkload::run(System &sys)
{
    WorkloadResult result;
    const Tick start = sys.machine().now();
    const uint64_t pages = _fileBytes / kIoBytes;
    for (uint64_t op = 0; op < _config.operations; ++op) {
        rotateCpu(sys);
        uint64_t page;
        if (_rng.nextBool(0.5)) {
            page = _seqCursor++ % pages;
        } else {
            page = _rng.nextBounded(pages);
        }
        const Bytes offset = page * kIoBytes;
        // Table 3: 50% sequential / 50% random *reads* on the file.
        sys.fs().read(_fd, offset, kIoBytes);
        touchArena(sys, op, Bytes{256}, AccessType::Write);
        ++result.operations;
    }
    result.elapsed = sys.machine().now() - start;
    return result;
}

void
FilebenchWorkload::teardown(System &sys)
{
    if (_fd >= 0) {
        sys.fs().close(_fd);
        _fd = -1;
    }
    sys.fs().unlink(_fileName);
    Workload::teardown(sys);
}

} // namespace kloc
