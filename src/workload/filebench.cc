#include "workload/filebench.hh"

#include "base/logging.hh"

namespace kloc {

void
FilebenchWorkload::setup(System &sys)
{
    // Small thread-private buffers only; filebench is about the
    // kernel, not app memory.
    growArena(sys, scaled(256 * kMiB) / kPageSize);

    _fileBytes = scaled(_config.smallInput ? 10 * kGiB : 32 * kGiB);
    _fd = sys.fs().create(_fileName);
    KLOC_ASSERT(_fd >= 0, "filebench file already exists");
    for (Bytes off{}; off < _fileBytes; off += kLoadChunk) {
        rotateCpu(sys);
        sys.fs().write(_fd, off, kLoadChunk);
        if ((off / kLoadChunk) % 64 == 63)
            sys.fs().fsync(_fd);
    }
    sys.fs().fsync(_fd);
}

WorkloadResult
FilebenchWorkload::run(System &sys)
{
    WorkloadResult result;
    const Tick start = sys.machine().now();
    const uint64_t pages = _fileBytes / kIoBytes;
    for (uint64_t op = 0; op < _config.operations; ++op) {
        rotateCpu(sys);
        uint64_t page;
        if (_rng.nextBool(0.5)) {
            page = _seqCursor++ % pages;
        } else {
            page = _rng.nextBounded(pages);
        }
        const Bytes offset = page * kIoBytes;
        // Table 3: 50% sequential / 50% random *reads* on the file.
        sys.fs().read(_fd, offset, kIoBytes);
        touchArena(sys, op, Bytes{256}, AccessType::Write);
        ++result.operations;
    }
    result.elapsed = sys.machine().now() - start;
    return result;
}

void
FilebenchWorkload::setupShards(System &sys, unsigned shards)
{
    beginShards(sys, shards, _config.operations);
    _shardState.assign(shards, FilebenchShard{});
    // Stagger the sequential streams across the file so the shards
    // don't replay one another's pages.
    const uint64_t pages = _fileBytes / kIoBytes;
    for (unsigned i = 0; i < shards; ++i)
        _shardState[i].seqCursor = pages * i / shards;
}

void
FilebenchWorkload::shardEpoch(ShardContext &shard, uint64_t)
{
    ShardSlice &slice = _slices[shard.id()];
    FilebenchShard &my = _shardState[shard.id()];
    const auto shards = static_cast<uint64_t>(_slices.size());
    const uint64_t pages = _fileBytes / kIoBytes;
    for (uint64_t n = epochQuota(slice); n > 0; --n) {
        uint64_t page;
        if (slice.rng.nextBool(0.5)) {
            page = my.seqCursor++ % pages;
        } else {
            page = slice.rng.nextBounded(pages);
        }
        my.reads.push_back(page * kIoBytes);
        shardTouchArena(shard, slice, slice.done * shards + shard.id(),
                        Bytes{256}, AccessType::Write);
        ++slice.done;
    }
    if (!slice.touches.empty() || !my.reads.empty())
        postShardApply(shard);
}

void
FilebenchWorkload::applyShardOpsAtBarrier(System &sys,
                                          unsigned slice_index)
{
    Workload::applyShardOpsAtBarrier(sys, slice_index);
    FilebenchShard &my = _shardState[slice_index];
    for (const Bytes offset : my.reads)
        sys.fs().read(_fd, offset, kIoBytes);
    my.reads.clear();
}

void
FilebenchWorkload::teardown(System &sys)
{
    if (_fd >= 0) {
        sys.fs().close(_fd);
        _fd = -1;
    }
    sys.fs().unlink(_fileName);
    Workload::teardown(sys);
}

} // namespace kloc
