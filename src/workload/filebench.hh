/**
 * @file
 * Filebench-like driver (Table 3): 16 threads issuing 50%
 * sequential / 50% random 4 KB I/O against one 32 GB file, with a
 * 70/30 read/write mix and periodic fsync — the most
 * kernel-time-intensive workload in the paper (86% of execution in
 * the OS, §3.1).
 */

#ifndef KLOC_WORKLOAD_FILEBENCH_HH
#define KLOC_WORKLOAD_FILEBENCH_HH

#include <string>

#include "workload/workload.hh"

namespace kloc {

/** Filebench-like file microbenchmark driver. */
class FilebenchWorkload : public Workload
{
  public:
    static constexpr Bytes kIoBytes = 4 * kKiB;
    static constexpr Bytes kLoadChunk = 1 * kMiB;
    static constexpr unsigned kFsyncEvery = 4096;

    explicit FilebenchWorkload(const WorkloadConfig &config)
        : Workload(config)
    {}

    const char *name() const override { return "filebench"; }

    void setup(System &sys) override;
    WorkloadResult run(System &sys) override;
    void teardown(System &sys) override;

  private:
    const std::string _fileName = "filebench_bigfile";
    int _fd = -1;
    Bytes _fileBytes{};
    uint64_t _seqCursor = 0;
};

} // namespace kloc

#endif // KLOC_WORKLOAD_FILEBENCH_HH
