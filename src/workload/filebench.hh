/**
 * @file
 * Filebench-like driver (Table 3): 16 threads issuing 50%
 * sequential / 50% random 4 KB I/O against one 32 GB file, with a
 * 70/30 read/write mix and periodic fsync — the most
 * kernel-time-intensive workload in the paper (86% of execution in
 * the OS, §3.1).
 */

#ifndef KLOC_WORKLOAD_FILEBENCH_HH
#define KLOC_WORKLOAD_FILEBENCH_HH

#include <string>

#include "workload/workload.hh"

namespace kloc {

/** Filebench-like file microbenchmark driver. */
class FilebenchWorkload : public Workload
{
  public:
    static constexpr Bytes kIoBytes = 4 * kKiB;
    static constexpr Bytes kLoadChunk = 1 * kMiB;
    static constexpr unsigned kFsyncEvery = 4096;

    explicit FilebenchWorkload(const WorkloadConfig &config)
        : Workload(config)
    {}

    const char *name() const override { return "filebench"; }

    void setup(System &sys) override;
    WorkloadResult run(System &sys) override;
    void teardown(System &sys) override;

    // Sharded port: each of the 16 emulated threads' streams maps to
    // a shard with its own sequential cursor and random picker; the
    // private scratch touch prices locally and the big-file reads
    // defer to the barrier replay.
    bool shardable() const override { return true; }
    void setupShards(System &sys, unsigned shards) override;
    void shardEpoch(ShardContext &shard, uint64_t epoch) override;

  protected:
    void applyShardOpsAtBarrier(System &sys, unsigned slice_index) override;

  private:
    /** Per-shard I/O stream beyond the common slice. */
    struct FilebenchShard
    {
        uint64_t seqCursor = 0;
        /** Deferred big-file read offsets, op order. */
        std::vector<Bytes> reads;
    };

    const std::string _fileName = "filebench_bigfile";
    int _fd = -1;
    Bytes _fileBytes{};
    uint64_t _seqCursor = 0;
    std::vector<FilebenchShard> _shardState;
};

} // namespace kloc

#endif // KLOC_WORKLOAD_FILEBENCH_HH
