#include "workload/fleet.hh"

#include <algorithm>

#include "base/logging.hh"

namespace kloc {

namespace {

/** Splitmix-style per-tenant seed derivation. */
constexpr uint64_t
tenantSeed(uint64_t seed, unsigned shard)
{
    return seed + 0x9e3779b97f4a7c15ULL * (shard + 1);
}

} // namespace

FleetScenario::FleetScenario(System &sys, const FleetConfig &config)
    : _sys(sys), _config(config)
{
    KLOC_ASSERT(_config.shards >= 1, "fleet needs at least one tenant");
    KLOC_ASSERT(_config.hotPages <= _config.pagesPerShard,
                "hot window larger than arena");
}

void
FleetScenario::setup()
{
    _tenants = std::vector<Tenant>(_config.shards);
    for (unsigned s = 0; s < _config.shards; ++s) {
        Tenant &tenant = _tenants[s];
        tenant.rng = Rng(tenantSeed(_config.seed, s));
        tenant.pages.reserve(_config.pagesPerShard);
        for (uint64_t i = 0; i < _config.pagesPerShard; ++i) {
            Frame *frame = _sys.tiers().alloc(0, ObjClass::App, true,
                                              {_config.slowTier});
            KLOC_ASSERT(frame, "fleet arena allocation failed "
                        "(tenant %u page %llu)", s,
                        (unsigned long long)i);
            tenant.pages.emplace_back(frame);
        }
    }
}

uint64_t
FleetScenario::hotBase(uint64_t epoch) const
{
    // Slide half a window per epoch so promotions from the last
    // epoch stay half-useful while fresh slow-tier pages keep
    // entering the window.
    return (epoch * (_config.hotPages / 2)) % _config.pagesPerShard;
}

void
FleetScenario::tenantEpoch(ShardContext &shard, uint64_t epoch)
{
    Tenant &tenant = _tenants[shard.id()];
    const uint64_t arena = _config.pagesPerShard;
    const uint64_t base = hotBase(epoch);
    const auto inWindow = [&](uint64_t idx) {
        return (idx + arena - base) % arena < _config.hotPages;
    };

    // Per-CPU fast path: shard-local time only. Frame placement is
    // stable for the whole epoch (migrations run at barriers), so
    // reading frame->tier here races with nothing.
    for (uint64_t op = 0; op < _config.opsPerEpoch; ++op) {
        uint64_t idx;
        if (tenant.rng.nextBool(0.75)) {
            idx = (base + tenant.rng.nextBounded(_config.hotPages)) %
                  arena;
        } else {
            idx = tenant.rng.nextBounded(arena);
        }
        const FrameRef &ref = tenant.pages[idx];
        if (!ref.valid()) {
            shard.noteOp();
            continue;
        }
        const AccessType type = tenant.rng.nextBool(0.25)
            ? AccessType::Write : AccessType::Read;
        const RefDomain domain = tenant.rng.nextBool(0.125)
            ? RefDomain::Kernel : RefDomain::User;
        shard.access(ref->tier, kPageSize, type, domain);
        shard.cpuWork(Tick{200});

        // Periodic pinned kernel burst: the KLOC fast path holds the
        // object resident while streaming it. Pins balance before
        // the barrier, so migrations never see them.
        if ((op & 127u) == 0) {
            shard.emit(TraceEventType::FramePin, ref->tier, ref->pfn);
            for (int touch = 0; touch < 3; ++touch) {
                shard.access(ref->tier, Bytes{64}, AccessType::Read,
                             RefDomain::Kernel);
            }
            shard.emit(TraceEventType::FrameUnpin, ref->tier, ref->pfn);
        }
    }

    // Cross-shard slow path: placement changes go through the
    // mailbox and execute serially at the barrier, where tenants
    // contend for the shared fast tier through the real
    // MigrationEngine.
    uint64_t budget = _config.migrateBatch;
    for (uint64_t i = 0; i < _config.hotPages && budget; ++i) {
        const uint64_t idx = (base + i) % arena;
        const FrameRef &ref = tenant.pages[idx];
        if (!ref.valid() || ref->tier != _config.slowTier)
            continue;
        --budget;
        ShardMessage msg;
        msg.kind = kMsgPromote;
        msg.apply = [this, &tenant, idx] {
            const FrameRef ref = tenant.pages[idx];
            if (!ref.valid() || ref->tier != _config.slowTier)
                return;
            if (_sys.migrator().migrateOne(ref.get(), _config.fastTier)) {
                tenant.fastResident.push_back(idx);
                ++_promotedPages;
            }
        };
        shard.post(std::move(msg));
    }

    budget = _config.migrateBatch;
    for (const uint64_t idx : tenant.fastResident) {
        if (!budget)
            break;
        if (inWindow(idx))
            continue;
        const FrameRef &ref = tenant.pages[idx];
        if (!ref.valid() || ref->tier != _config.fastTier)
            continue;
        --budget;
        ShardMessage msg;
        msg.kind = kMsgDemote;
        msg.apply = [this, &tenant, idx] {
            const FrameRef ref = tenant.pages[idx];
            if (!ref.valid() || ref->tier != _config.fastTier)
                return;
            if (_sys.migrator().migrateOne(ref.get(), _config.slowTier)) {
                auto &fast = tenant.fastResident;
                fast.erase(std::find(fast.begin(), fast.end(), idx));
                ++_demotedPages;
            }
        };
        shard.post(std::move(msg));
    }
}

FleetResult
FleetScenario::run()
{
    KLOC_ASSERT(!_tenants.empty(), "fleet run() before setup()");
    ShardedEngine::Config ec;
    ec.shards = _config.shards;
    ec.epochLength = _config.epochLength;
    ec.workers = _config.workers;
    ShardedEngine engine(_sys.machine(), ec);

    const Tick start = _sys.machine().now();
    engine.run(_config.epochs,
               [this](ShardContext &shard, uint64_t epoch) {
                   tenantEpoch(shard, epoch);
               });

    FleetResult result;
    result.operations =
        _config.epochs * _config.opsPerEpoch * _config.shards;
    result.elapsed = _sys.machine().now() - start;
    result.epochs = engine.epochsRun();
    result.promotedPages = _promotedPages;
    result.demotedPages = _demotedPages;
    result.messages = engine.messagesDrained();
    result.eventsMerged = engine.eventsMerged();
    return result;
}

void
FleetScenario::teardown()
{
    for (Tenant &tenant : _tenants) {
        for (const FrameRef &ref : tenant.pages) {
            if (ref.valid())
                _sys.tiers().free(ref.get());
        }
        tenant.pages.clear();
        tenant.fastResident.clear();
    }
    _tenants.clear();
}

} // namespace kloc
