/**
 * @file
 * Fleet scenario: the giant multi-tenant workload the sharded
 * simulation core (sim/epoch.hh) is benchmarked and tested on.
 *
 * N tenants — one per shard — each own a private page arena
 * allocated from the slow tier. During an epoch every tenant streams
 * deterministic reads/writes over a sliding hot window of its own
 * arena, charging shard-local time only (the paper's per-CPU fast
 * path). Placement changes are the cross-shard slow path: a tenant
 * that finds hot pages on the slow tier posts promotion messages,
 * and demotion messages for fast-tier pages its window slid off; the
 * epoch barrier applies them serially through the real
 * MigrationEngine, where tenants contend for the shared fast tier
 * (NoSpace retries and abandons fall out of the real allocator).
 *
 * Everything is driven by per-tenant Rngs seeded from the scenario
 * seed, so a run is bit-reproducible — including its full trace —
 * at any KLOC_SHARDS worker count.
 */

#ifndef KLOC_WORKLOAD_FLEET_HH
#define KLOC_WORKLOAD_FLEET_HH

#include <cstdint>
#include <vector>

#include "base/rng.hh"
#include "platform/system.hh"
#include "sim/epoch.hh"

namespace kloc {

/** Scaling knobs for the fleet scenario. */
struct FleetConfig
{
    /** Tenants (= logical shards); fixed by the scenario. */
    unsigned shards = 4;
    uint64_t epochs = 32;
    /** Accesses per tenant per epoch. */
    uint64_t opsPerEpoch = 1500;
    /** Barrier interval; epochs stretch if a shard overshoots. */
    Tick epochLength{100 * kMicrosecond};
    /** Arena pages per tenant, allocated on the slow tier. */
    uint64_t pagesPerShard = 1024;
    /** Sliding hot-window size (pages). */
    uint64_t hotPages = 128;
    /** Max promotion + demotion messages posted per tenant/epoch. */
    uint64_t migrateBatch = 16;
    uint64_t seed = 42;
    /** Worker threads; 0 = KLOC_SHARDS (ShardedEngine default). */
    unsigned workers = 0;
    TierId fastTier{0};
    TierId slowTier{1};
};

/** Outcome of one fleet run. */
struct FleetResult
{
    uint64_t operations = 0;
    Tick elapsed{};
    uint64_t epochs = 0;
    uint64_t promotedPages = 0;
    uint64_t demotedPages = 0;
    uint64_t messages = 0;
    uint64_t eventsMerged = 0;

    double
    throughput() const
    {
        return elapsed <= 0
            ? 0.0
            : static_cast<double>(operations) /
              (static_cast<double>(elapsed) /
               static_cast<double>(kSecond));
    }
};

/** Multi-tenant sharded scenario over one composed System. */
class FleetScenario
{
  public:
    /** Mailbox message kinds (ShardMsg trace arg 3). */
    static constexpr uint64_t kMsgPromote = 1;
    static constexpr uint64_t kMsgDemote = 2;

    FleetScenario(System &sys, const FleetConfig &config);

    /** Allocate every tenant's arena (serial, not measured). */
    void setup();

    /** Run the configured epochs through a ShardedEngine. */
    FleetResult run();

    /** Free the arenas (serial, after measuring). */
    void teardown();

    const FleetConfig &config() const { return _config; }

  private:
    struct Tenant
    {
        std::vector<FrameRef> pages;
        Rng rng{0};
        /** Arena indices promoted to the fast tier and still there. */
        std::vector<uint64_t> fastResident;
    };

    /** Hot-window base index for @p epoch (slides half a window). */
    uint64_t hotBase(uint64_t epoch) const;

    /** One tenant's epoch: shard-local accesses + posted messages. */
    void tenantEpoch(ShardContext &shard, uint64_t epoch);

    System &_sys;
    FleetConfig _config;
    std::vector<Tenant> _tenants;
    uint64_t _operations = 0;
    uint64_t _promotedPages = 0;
    uint64_t _demotedPages = 0;
};

} // namespace kloc

#endif // KLOC_WORKLOAD_FLEET_HH
