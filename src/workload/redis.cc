#include "workload/redis.hh"

#include "base/logging.hh"

namespace kloc {

RedisWorkload::RedisWorkload(const WorkloadConfig &config)
    : Workload(config)
{
    _numKeys = 4000000 / config.scale;
    if (_numKeys < 4096)
        _numKeys = 4096;
    _zipf = std::make_unique<ZipfianGenerator>(_numKeys, 0.99,
                                               config.seed ^ 0xd15);
}

void
RedisWorkload::setup(System &sys)
{
    // Resident key-value heap (Table 3: 14 GB footprint).
    _datasetBytes = scaled(_config.smallInput ? 10 * kGiB : 14 * kGiB);
    growArena(sys, _datasetBytes / kPageSize);
    for (unsigned i = 0; i < kClients; ++i)
        _clients.push_back(sys.net().socket());
}

void
RedisWorkload::bgsave(System &sys)
{
    // Rewrite the dump file: write the whole (sampled) dataset
    // sequentially, fsync, swap.
    const std::string name =
        "redis_dump_" + std::to_string(_checkpoints % 2);
    if (sys.fs().exists(name))
        sys.fs().unlink(name);
    const int fd = sys.fs().create(name);
    if (fd < 0)
        return;
    // Checkpoint an eighth of the dataset per BGSAVE (incremental
    // rewrite keeps run times bounded; traffic shape is identical).
    const Bytes ckpt_bytes = _datasetBytes / 8;
    for (Bytes off{}; off < ckpt_bytes; off += kCkptChunk) {
        rotateCpu(sys);
        touchArena(sys, off / kPageSize, kCkptChunk, AccessType::Read);
        sys.fs().write(fd, off, kCkptChunk);
    }
    // BGSAVE runs in a forked child; the parent never blocks on it.
    sys.fs().close(fd);
    ++_checkpoints;
}

WorkloadResult
RedisWorkload::run(System &sys)
{
    WorkloadResult result;
    const Tick start = sys.machine().now();
    const uint64_t ckpt_every = _config.operations / 6 + 1;
    for (uint64_t op = 0; op < _config.operations; ++op) {
        rotateCpu(sys);
        const int sd = _clients[op % kClients];
        const uint64_t key = _zipf->next();
        const uint64_t page = key * (_datasetBytes / kPageSize) / _numKeys;
        if (_rng.nextBool(0.75)) {
            // SET: request carries the value in.
            sys.net().deliver(sd, kRequestBytes + kValueBytes);
            sys.net().recv(sd, kRequestBytes + kValueBytes);
            touchArena(sys, page, kValueBytes, AccessType::Write);
            sys.net().send(sd, kRequestBytes);
        } else {
            // GET: response carries the value out.
            sys.net().deliver(sd, kRequestBytes);
            sys.net().recv(sd, kRequestBytes);
            touchArena(sys, page, kValueBytes, AccessType::Read);
            sys.net().send(sd, kValueBytes);
        }
        if ((op + 1) % ckpt_every == 0)
            bgsave(sys);
        ++result.operations;
    }
    result.elapsed = sys.machine().now() - start;
    return result;
}

void
RedisWorkload::teardown(System &sys)
{
    for (const int sd : _clients)
        sys.net().closeSocket(sd);
    _clients.clear();
    for (unsigned i = 0; i < 2; ++i) {
        const std::string name = "redis_dump_" + std::to_string(i);
        if (sys.fs().exists(name))
            sys.fs().unlink(name);
    }
    Workload::teardown(sys);
}

} // namespace kloc
