#include "workload/redis.hh"

#include "base/logging.hh"

namespace kloc {

RedisWorkload::RedisWorkload(const WorkloadConfig &config)
    : Workload(config)
{
    _numKeys = 4000000 / config.scale;
    if (_numKeys < 4096)
        _numKeys = 4096;
    _zipf = std::make_unique<ZipfianGenerator>(_numKeys, 0.99,
                                               config.seed ^ 0xd15);
}

void
RedisWorkload::setup(System &sys)
{
    // Resident key-value heap (Table 3: 14 GB footprint).
    _datasetBytes = scaled(_config.smallInput ? 10 * kGiB : 14 * kGiB);
    growArena(sys, _datasetBytes / kPageSize);
    for (unsigned i = 0; i < kClients; ++i)
        _clients.push_back(sys.net().socket());
}

void
RedisWorkload::bgsave(System &sys)
{
    // Rewrite the dump file: write the whole (sampled) dataset
    // sequentially, fsync, swap.
    const std::string name =
        "redis_dump_" + std::to_string(_checkpoints % 2);
    if (sys.fs().exists(name))
        sys.fs().unlink(name);
    const int fd = sys.fs().create(name);
    if (fd < 0)
        return;
    // Checkpoint an eighth of the dataset per BGSAVE (incremental
    // rewrite keeps run times bounded; traffic shape is identical).
    const Bytes ckpt_bytes = _datasetBytes / 8;
    for (Bytes off{}; off < ckpt_bytes; off += kCkptChunk) {
        rotateCpu(sys);
        touchArena(sys, off / kPageSize, kCkptChunk, AccessType::Read);
        sys.fs().write(fd, off, kCkptChunk);
    }
    // BGSAVE runs in a forked child; the parent never blocks on it.
    sys.fs().close(fd);
    ++_checkpoints;
}

void
RedisWorkload::setupShards(System &sys, unsigned shards)
{
    beginShards(sys, shards, _config.operations);
    _shardState.clear();
    _shardState.resize(shards);
    _ckptCredited = 0;
    for (unsigned i = 0; i < shards; ++i) {
        _shardState[i].zipf = std::make_unique<ZipfianGenerator>(
            _numKeys, 0.99, shardSeed(i) ^ 0xd15);
    }
    for (size_t i = 0; i < _clients.size(); ++i)
        _shardState[i % shards].clients.push_back(_clients[i]);
}

void
RedisWorkload::shardEpoch(ShardContext &shard, uint64_t)
{
    ShardSlice &slice = _slices[shard.id()];
    RedisShard &my = _shardState[shard.id()];
    const uint64_t dataset_pages = _datasetBytes / kPageSize;
    for (uint64_t n = epochQuota(slice); n > 0; --n) {
        const int sd = my.clients.empty()
            ? -1
            : my.clients[my.clientCursor++ % my.clients.size()];
        const uint64_t key = my.zipf->next();
        const uint64_t page = key * dataset_pages / _numKeys;
        const bool set = slice.rng.nextBool(0.75);
        shardTouchArena(shard, slice, page, kValueBytes,
                        set ? AccessType::Write : AccessType::Read);
        if (sd >= 0)
            my.netOps.push_back({sd, set});
        ++slice.done;
    }
    if (!slice.touches.empty() || !my.netOps.empty())
        postShardApply(shard);
}

void
RedisWorkload::applyShardOpsAtBarrier(System &sys, unsigned slice_index)
{
    Workload::applyShardOpsAtBarrier(sys, slice_index);
    RedisShard &my = _shardState[slice_index];
    for (const RedisShard::NetOp &op : my.netOps) {
        if (op.set) {
            // SET: request carries the value in.
            sys.net().deliver(op.sd, kRequestBytes + kValueBytes);
            sys.net().recv(op.sd, kRequestBytes + kValueBytes);
            sys.net().send(op.sd, kRequestBytes);
        } else {
            // GET: response carries the value out.
            sys.net().deliver(op.sd, kRequestBytes);
            sys.net().recv(op.sd, kRequestBytes);
            sys.net().send(op.sd, kValueBytes);
        }
    }
    my.netOps.clear();
}

void
RedisWorkload::shardBarrier(System &sys, uint64_t)
{
    // Serial cadence: one BGSAVE per ops/6 completed operations,
    // counted over all slices.
    const uint64_t ckpt_every = _config.operations / 6 + 1;
    const uint64_t done = shardOpsDone();
    while (done - _ckptCredited >= ckpt_every) {
        _ckptCredited += ckpt_every;
        bgsave(sys);
    }
}

WorkloadResult
RedisWorkload::run(System &sys)
{
    WorkloadResult result;
    const Tick start = sys.machine().now();
    const uint64_t ckpt_every = _config.operations / 6 + 1;
    for (uint64_t op = 0; op < _config.operations; ++op) {
        rotateCpu(sys);
        const int sd = _clients[op % kClients];
        const uint64_t key = _zipf->next();
        const uint64_t page = key * (_datasetBytes / kPageSize) / _numKeys;
        if (_rng.nextBool(0.75)) {
            // SET: request carries the value in.
            sys.net().deliver(sd, kRequestBytes + kValueBytes);
            sys.net().recv(sd, kRequestBytes + kValueBytes);
            touchArena(sys, page, kValueBytes, AccessType::Write);
            sys.net().send(sd, kRequestBytes);
        } else {
            // GET: response carries the value out.
            sys.net().deliver(sd, kRequestBytes);
            sys.net().recv(sd, kRequestBytes);
            touchArena(sys, page, kValueBytes, AccessType::Read);
            sys.net().send(sd, kValueBytes);
        }
        if ((op + 1) % ckpt_every == 0)
            bgsave(sys);
        ++result.operations;
    }
    result.elapsed = sys.machine().now() - start;
    return result;
}

void
RedisWorkload::teardown(System &sys)
{
    for (const int sd : _clients)
        sys.net().closeSocket(sd);
    _clients.clear();
    for (unsigned i = 0; i < 2; ++i) {
        const std::string name = "redis_dump_" + std::to_string(i);
        if (sys.fs().exists(name))
            sys.fs().unlink(name);
    }
    Workload::teardown(sys);
}

} // namespace kloc
