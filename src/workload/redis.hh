/**
 * @file
 * Redis-like driver (Table 3): an in-memory key-value store serving
 * 16 client connections with a 75%/25% set/get mix over 4M keys,
 * periodically checkpointing (BGSAVE) its state to a dump file.
 *
 * The dataset lives in application pages; every request crosses the
 * network stack (ingress skbuffs, egress responses), making Redis
 * the paper's socket-buffer-sensitive workload (Fig. 5c).
 */

#ifndef KLOC_WORKLOAD_REDIS_HH
#define KLOC_WORKLOAD_REDIS_HH

#include <vector>

#include "workload/workload.hh"

namespace kloc {

/** Redis-like networked KV store driver. */
class RedisWorkload : public Workload
{
  public:
    static constexpr unsigned kClients = 16;
    static constexpr Bytes kValueBytes{1024};
    static constexpr Bytes kRequestBytes{64};
    static constexpr Bytes kCkptChunk = 1 * kMiB;

    explicit RedisWorkload(const WorkloadConfig &config);

    const char *name() const override { return "redis"; }

    void setup(System &sys) override;
    WorkloadResult run(System &sys) override;
    void teardown(System &sys) override;

    uint64_t checkpoints() const { return _checkpoints; }

    // Sharded port: the 16 client sockets partition round-robin into
    // shards; each slice rolls its own zipf keys and set/get mix,
    // prices the dataset touch locally, and defers the socket
    // deliver/recv/send to the barrier replay. BGSAVE keeps its
    // serial cadence against the total op count at the barrier.
    bool shardable() const override { return true; }
    void setupShards(System &sys, unsigned shards) override;
    void shardEpoch(ShardContext &shard, uint64_t epoch) override;
    void shardBarrier(System &sys, uint64_t epoch) override;

  protected:
    void applyShardOpsAtBarrier(System &sys, unsigned slice_index) override;

  private:
    /** Per-shard client state beyond the common slice. */
    struct RedisShard
    {
        /** One deferred request's network half. */
        struct NetOp
        {
            int sd;
            bool set;
        };
        std::vector<int> clients;
        uint64_t clientCursor = 0;
        std::unique_ptr<ZipfianGenerator> zipf;
        std::vector<NetOp> netOps;
    };

    void bgsave(System &sys);

    std::vector<int> _clients;
    uint64_t _numKeys;
    Bytes _datasetBytes{};
    uint64_t _checkpoints = 0;
    std::unique_ptr<ZipfianGenerator> _zipf;
    std::vector<RedisShard> _shardState;
    /** Total ops already credited toward the BGSAVE cadence. */
    uint64_t _ckptCredited = 0;
};

} // namespace kloc

#endif // KLOC_WORKLOAD_REDIS_HH
