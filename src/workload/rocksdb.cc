#include "workload/rocksdb.hh"

#include "base/logging.hh"

namespace kloc {

RocksDbWorkload::RocksDbWorkload(const WorkloadConfig &config)
    : Workload(config), _fdCache(kFdCacheCap)
{
    // dbbench: 1M keys at paper scale.
    _numKeys = 1000000 / config.scale;
    if (_numKeys < 1024)
        _numKeys = 1024;
    _zipf = std::make_unique<ZipfianGenerator>(_numKeys, 0.99,
                                               config.seed ^ 0x5eed);
}

void
RocksDbWorkload::writeSst(System &sys, const std::string &name)
{
    const int fd = sys.fs().create(name);
    KLOC_ASSERT(fd >= 0, "sst '%s' already exists", name.c_str());
    for (Bytes off{}; off < kSstBytes; off += kChunkBytes) {
        rotateCpu(sys);
        // The flush thread reads the immutable memtable and writes.
        touchArena(sys, off / kPageSize, kChunkBytes, AccessType::Read);
        sys.fs().write(fd, off, kChunkBytes);
    }
    // Flush/compaction threads run in the background; the dirty SST
    // pages reach the device through the writeback daemon rather
    // than a blocking fsync.
    sys.fs().close(fd);
    _liveSsts.push_back(name);
}

void
RocksDbWorkload::setup(System &sys)
{
    _sys = &sys;
    // Memtable (4 MB) plus a block-cache-like app heap.
    const Bytes dataset =
        scaled(_config.smallInput ? 10 * kGiB : 40 * kGiB);
    const Bytes app_heap = scaled(2 * kGiB);
    growArena(sys, (kSstBytes + app_heap) / kPageSize);

    const uint64_t initial_ssts = dataset / kSstBytes;
    for (uint64_t i = 0; i < initial_ssts; ++i)
        writeSst(sys, "sst_" + std::to_string(_nextSstId++));
}

void
RocksDbWorkload::flushMemtable(System &sys)
{
    _memtableFill = Bytes{};
    writeSst(sys, "sst_" + std::to_string(_nextSstId++));
    ++_flushes;
    if (_flushes % kCompactEvery == 0)
        compact(sys);
}

void
RocksDbWorkload::compact(System &sys)
{
    if (_liveSsts.size() < 40)
        return;
    // Leveled compaction churns the young levels: inputs come from
    // the oldest files of the newest band, while genuinely cold
    // bottom-level files persist untouched (they are the fast-memory
    // pollution Naive suffers from). Read all inputs, emit one
    // output, unlink the inputs (deallocation, not migration, §3.2).
    const size_t band_start = _liveSsts.size() - 32;
    std::vector<std::string> inputs(
        _liveSsts.begin() + static_cast<ptrdiff_t>(band_start),
        _liveSsts.begin() + static_cast<ptrdiff_t>(band_start +
                                                   kCompactWidth));
    for (const auto &input : inputs) {
        const int fd = _fdCache.get(sys, input);
        if (fd < 0)
            continue;
        for (Bytes off{}; off < kSstBytes; off += kChunkBytes) {
            rotateCpu(sys);
            sys.fs().read(fd, off, kChunkBytes);
        }
    }
    _liveSsts.erase(_liveSsts.begin() +
                        static_cast<ptrdiff_t>(band_start),
                    _liveSsts.begin() +
                        static_cast<ptrdiff_t>(band_start +
                                               kCompactWidth));
    writeSst(sys, "sst_" + std::to_string(_nextSstId++));
    for (const auto &input : inputs) {
        _fdCache.drop(sys, input);
        sys.fs().unlink(input);
    }
}

void
RocksDbWorkload::doPut(System &sys, uint64_t key)
{
    // Append into the memtable (app memory).
    touchArena(sys, key % (kSstBytes / kPageSize), kValueBytes,
               AccessType::Write);
    _memtableFill += kValueBytes;
    if (_memtableFill >= kSstBytes)
        flushMemtable(sys);
}

void
RocksDbWorkload::doGet(System &sys, uint64_t key)
{
    // Memtable probe.
    touchArena(sys, key % (kSstBytes / kPageSize), Bytes{200},
               AccessType::Read);
    if (_liveSsts.empty())
        return;
    // Key -> SST: hot (low) keys map to recent SSTs.
    const uint64_t pos =
        _liveSsts.size() - 1 -
        (key * _liveSsts.size() / _numKeys) % _liveSsts.size();
    const int fd = _fdCache.get(sys, _liveSsts[pos]);
    if (fd < 0)
        return;
    // Index block, then the data block holding the key.
    sys.fs().read(fd, Bytes{0}, kPageSize);
    const uint64_t blocks = kSstBytes / kPageSize;
    const uint64_t block = 1 + key % (blocks - 1);
    sys.fs().read(fd, block * kPageSize, kPageSize);
}

void
RocksDbWorkload::setupShards(System &sys, unsigned shards)
{
    beginShards(sys, shards, _config.operations);
    _shardState.clear();
    _shardState.resize(shards);
    for (unsigned i = 0; i < shards; ++i) {
        _shardState[i].zipf = std::make_unique<ZipfianGenerator>(
            _numKeys, 0.99, shardSeed(i) ^ 0x5eed);
    }
}

void
RocksDbWorkload::shardEpoch(ShardContext &shard, uint64_t)
{
    ShardSlice &slice = _slices[shard.id()];
    RocksShard &my = _shardState[shard.id()];
    const auto shards = static_cast<uint64_t>(_slices.size());
    constexpr uint64_t memtable_pages = kSstBytes / kPageSize;
    for (uint64_t n = epochQuota(slice); n > 0; --n) {
        const uint64_t zipf_key = my.zipf->next();
        const uint64_t seq_key =
            (slice.done * shards + shard.id()) % _numKeys;
        // dbbench mix: 50% writes, 50% reads, half sequential.
        if (slice.rng.nextBool(0.5)) {
            const uint64_t key =
                slice.rng.nextBool(0.5) ? seq_key : zipf_key;
            shardTouchArena(shard, slice, key % memtable_pages,
                            kValueBytes, AccessType::Write);
            my.putBytes += kValueBytes;
        } else {
            const uint64_t key =
                slice.rng.nextBool(0.5) ? seq_key : zipf_key;
            shardTouchArena(shard, slice, key % memtable_pages,
                            Bytes{200}, AccessType::Read);
            if (!_liveSsts.empty()) {
                const uint64_t pos =
                    _liveSsts.size() - 1 -
                    (key * _liveSsts.size() / _numKeys) %
                        _liveSsts.size();
                my.gets.push_back({pos, key});
            }
        }
        ++slice.done;
    }
    if (!slice.touches.empty() || !my.gets.empty() ||
        my.putBytes > Bytes{}) {
        postShardApply(shard);
    }
}

void
RocksDbWorkload::applyShardOpsAtBarrier(System &sys, unsigned slice_index)
{
    Workload::applyShardOpsAtBarrier(sys, slice_index);
    RocksShard &my = _shardState[slice_index];
    for (const RocksShard::Get &get : my.gets) {
        if (get.pos >= _liveSsts.size())
            continue;
        const int fd = _fdCache.get(sys, _liveSsts[get.pos]);
        if (fd < 0)
            continue;
        // Index block, then the data block holding the key.
        sys.fs().read(fd, Bytes{0}, kPageSize);
        const uint64_t blocks = kSstBytes / kPageSize;
        sys.fs().read(fd, (1 + get.key % (blocks - 1)) * kPageSize,
                      kPageSize);
    }
    my.gets.clear();
    _memtableFill += my.putBytes;
    my.putBytes = Bytes{};
}

void
RocksDbWorkload::shardBarrier(System &sys, uint64_t)
{
    // The pooled puts of all slices fill the shared memtable; each
    // full memtable flushes to a fresh SST exactly like the serial
    // path, including the compaction cadence.
    while (_memtableFill >= kSstBytes) {
        _memtableFill -= kSstBytes;
        writeSst(sys, "sst_" + std::to_string(_nextSstId++));
        if (++_flushes % kCompactEvery == 0)
            compact(sys);
    }
}

WorkloadResult
RocksDbWorkload::run(System &sys)
{
    WorkloadResult result;
    const Tick start = sys.machine().now();
    for (uint64_t op = 0; op < _config.operations; ++op) {
        rotateCpu(sys);
        const uint64_t key = _zipf->next();
        // dbbench mix: 50% writes, 50% reads, half sequential.
        if (_rng.nextBool(0.5))
            doPut(sys, _rng.nextBool(0.5) ? op % _numKeys : key);
        else
            doGet(sys, _rng.nextBool(0.5) ? op % _numKeys : key);
        ++result.operations;
    }
    result.elapsed = sys.machine().now() - start;
    return result;
}

void
RocksDbWorkload::teardown(System &sys)
{
    _fdCache.clear(sys);
    // Detach before unlinking: fs calls can re-enter via daemons.
    std::vector<std::string> ssts;
    ssts.swap(_liveSsts);
    for (const auto &name : ssts)
        sys.fs().unlink(name);
    Workload::teardown(sys);
}

} // namespace kloc
