/**
 * @file
 * RocksDB-like LSM driver (Table 3): dbbench with 1M keys and 16
 * client threads, 50% random/sequential writes and reads.
 *
 * Persistent key-values live in hundreds of 4 MB string-sorted
 * table (SST) files; puts fill an in-memory memtable that flushes to
 * a fresh SST when full; background compaction merges old SSTs and
 * unlinks the inputs. Reads consult the memtable, then index + data
 * blocks of the owning SST through an LRU table (fd) cache — the
 * open/close churn behind the paper's knode lifecycle.
 */

#ifndef KLOC_WORKLOAD_ROCKSDB_HH
#define KLOC_WORKLOAD_ROCKSDB_HH

#include <string>
#include <vector>

#include "workload/workload.hh"

namespace kloc {

/** RocksDB-like LSM key-value store driver. */
class RocksDbWorkload : public Workload
{
  public:
    static constexpr Bytes kSstBytes = 4 * kMiB;
    static constexpr Bytes kValueBytes{1024};
    static constexpr Bytes kChunkBytes = 64 * kKiB;
    static constexpr unsigned kFdCacheCap = 64;
    static constexpr unsigned kCompactEvery = 4;   ///< flushes
    static constexpr unsigned kCompactWidth = 4;   ///< input SSTs

    explicit RocksDbWorkload(const WorkloadConfig &config);

    const char *name() const override { return "rocksdb"; }

    void setup(System &sys) override;
    WorkloadResult run(System &sys) override;
    void teardown(System &sys) override;

    uint64_t liveSstCount() const { return _liveSsts.size(); }

    // Sharded port: clients partition into shards (own zipf cursor
    // and op mix); puts price the memtable touch locally and pool
    // their fill bytes, gets defer the SST probes; the barrier runs
    // flushes and compaction serially against the epoch-start SST
    // list, which shard bodies read const mid-epoch.
    bool shardable() const override { return true; }
    void setupShards(System &sys, unsigned shards) override;
    void shardEpoch(ShardContext &shard, uint64_t epoch) override;
    void shardBarrier(System &sys, uint64_t epoch) override;

  protected:
    void applyShardOpsAtBarrier(System &sys, unsigned slice_index) override;

  private:
    /** Per-shard client state beyond the common slice. */
    struct RocksShard
    {
        /** One deferred SST probe: index + data block reads. */
        struct Get
        {
            uint64_t pos;
            uint64_t key;
        };
        std::unique_ptr<ZipfianGenerator> zipf;
        /** Memtable bytes this slice appended in the epoch. */
        Bytes putBytes{};
        std::vector<Get> gets;
    };

    void writeSst(System &sys, const std::string &name);
    void flushMemtable(System &sys);
    void compact(System &sys);
    void doPut(System &sys, uint64_t key);
    void doGet(System &sys, uint64_t key);

    System *_sys = nullptr;
    FdCache _fdCache;
    std::vector<std::string> _liveSsts;
    uint64_t _nextSstId = 0;
    uint64_t _numKeys;
    Bytes _memtableFill{};
    uint64_t _flushes = 0;
    std::unique_ptr<ZipfianGenerator> _zipf;
    std::vector<RocksShard> _shardState;
};

} // namespace kloc

#endif // KLOC_WORKLOAD_ROCKSDB_HH
