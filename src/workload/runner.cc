#include "workload/runner.hh"

#include <algorithm>

#include "base/logging.hh"

namespace kloc {

WorkloadResult
ShardedWorkloadRunner::run(Workload &workload)
{
    KLOC_ASSERT(workload.shardable(),
                "workload '%s' has no ShardContext port; run it serially "
                "or port it (docs/SHARDING.md)", workload.name());
    Machine &machine = _sys.machine();

    // Load + quiesce are serial and batched, exactly like
    // runMeasured; the batch must close before the first epoch
    // because the barrier's trace merge (Tracer::absorb) requires an
    // empty staging window.
    {
        TraceBatch batch(machine.tracer());
        workload.setup(_sys);
        _sys.fs().syncAll();
        machine.charge(kQuiesceWindow);
    }

    workload.setupShards(_sys, _plan.shards);
    uint64_t ops_per_epoch = _plan.opsPerEpoch;
    if (ops_per_epoch == 0) {
        const uint64_t per_shard =
            workload.config().operations / std::max(1u, _plan.shards);
        ops_per_epoch = std::max<uint64_t>(1, per_shard / 32);
    }
    workload.setShardEpochOps(ops_per_epoch);

    ShardedEngine::Config config;
    config.shards = _plan.shards;
    config.epochLength = _plan.epochLength;
    config.workers = _plan.workers;
    ShardedEngine engine(machine, config);
    engine.addBarrierHook(
        [&workload, this](uint64_t epoch) {
            workload.shardBarrier(_sys, epoch);
        });

    const Tick start = machine.now();
    WorkloadResult result;
    // Completion is driver-defined (op quotas or phase structure);
    // guard against drivers that stop making progress.
    unsigned idle_epochs = 0;
    while (!workload.shardsDone()) {
        const uint64_t before = workload.shardOpsDone();
        engine.run(1, [&workload](ShardContext &shard, uint64_t epoch) {
            workload.shardEpoch(shard, epoch);
        });
        idle_epochs = workload.shardOpsDone() == before
            ? idle_epochs + 1
            : 0;
        KLOC_ASSERT(idle_epochs < 4,
                    "sharded run of '%s' stalled: no slice progressed "
                    "for %u epochs", workload.name(), idle_epochs);
    }
    result.operations = workload.shardOpsDone();
    result.elapsed = machine.now() - start;

    _stats.shards = engine.shardCount();
    _stats.workers = engine.workers();
    _stats.epochs = engine.epochsRun();
    _stats.messages = engine.messagesDrained();
    _stats.eventsMerged = engine.eventsMerged();
    _stats.barrierWallNs = engine.barrierWallNs();
    _stats.mergeWallNs = engine.mergeWallNs();
    return result;
}

} // namespace kloc
