/**
 * @file
 * Shared run protocol for experiments: setup, quiesce, measure.
 *
 * Between the load phase and the measured phase every configuration
 * gets the same treatment: dirty state is flushed and the virtual
 * clock advances through a settle window so daemons (writeback,
 * journal commit, LRU scans, the KLOC migration daemon) reach steady
 * state. Without this, configurations whose load phase happens to be
 * slower enter measurement with less background debt and win for the
 * wrong reason.
 */

#ifndef KLOC_WORKLOAD_RUNNER_HH
#define KLOC_WORKLOAD_RUNNER_HH

#include "sim/epoch.hh"
#include "trace/trace.hh"
#include "workload/workload.hh"

namespace kloc {

/** Settle window between load and measurement. */
inline constexpr Tick kQuiesceWindow = 200 * kMillisecond;

/**
 * Run @p workload on @p sys under the currently installed strategy:
 * setup, quiesce, measure. The caller tears down afterwards (or
 * reuses the loaded state for more measurements).
 *
 * The whole run sits inside a TraceBatch window: the workload op
 * loop is the biggest bulk emitter there is, and staging amortises
 * ring insertion across every event it produces. Seq and tick are
 * stamped at emit time, so the serialized trace is byte-identical
 * to an unbatched run.
 */
inline WorkloadResult
runMeasured(System &sys, Workload &workload)
{
    TraceBatch batch(sys.machine().tracer());
    workload.setup(sys);
    sys.fs().syncAll();
    sys.machine().charge(kQuiesceWindow);
    return workload.run(sys);
}

/**
 * Decomposition and epoch sizing of one sharded workload run. The
 * logical shard count is part of the scenario: changing it changes
 * the simulated results. The worker count never does — it only sets
 * how many threads advance shards between barriers (KLOC_SHARDS).
 */
struct ShardPlan
{
    /** Logical shards the per-run state is partitioned into. */
    unsigned shards = 4;
    /** Worker threads; 0 = ShardedEngine::defaultWorkers(). */
    unsigned workers = 0;
    /** Per-shard ops per epoch; 0 = auto (~32 epochs per run). */
    uint64_t opsPerEpoch = 0;
    /**
     * Virtual time between barriers beyond the shard work itself.
     * The default barriers as soon as every body parks, so an epoch
     * spans exactly the slowest shard's charged time.
     */
    Tick epochLength{1};
};

/** Engine counters of one sharded run, for `shard.*` bench metrics. */
struct ShardRunStats
{
    unsigned shards = 0;
    unsigned workers = 0;
    uint64_t epochs = 0;
    uint64_t messages = 0;
    uint64_t eventsMerged = 0;
    /** Host-wall barrier overhead; nondeterministic, never gated. */
    uint64_t barrierWallNs = 0;
    uint64_t mergeWallNs = 0;
};

/**
 * Shared driver for sharded workload runs: owns the setup/quiesce
 * protocol (same as runMeasured), the shard decomposition handoff
 * (Workload::setupShards), epoch sizing, and the epoch loop with the
 * driver's barrier hook — so each workload port is a shard body plus
 * a decomposition policy, not bespoke engine code.
 */
class ShardedWorkloadRunner
{
  public:
    ShardedWorkloadRunner(System &sys, ShardPlan plan)
        : _sys(sys), _plan(plan)
    {}

    /**
     * Run @p workload sharded: setup + quiesce (serial, batched),
     * then epochs until the driver reports completion. The caller
     * tears down afterwards. Asserts the driver is shardable().
     */
    WorkloadResult run(Workload &workload);

    const ShardRunStats &stats() const { return _stats; }

  private:
    System &_sys;
    ShardPlan _plan;
    ShardRunStats _stats;
};

} // namespace kloc

#endif // KLOC_WORKLOAD_RUNNER_HH
