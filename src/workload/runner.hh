/**
 * @file
 * Shared run protocol for experiments: setup, quiesce, measure.
 *
 * Between the load phase and the measured phase every configuration
 * gets the same treatment: dirty state is flushed and the virtual
 * clock advances through a settle window so daemons (writeback,
 * journal commit, LRU scans, the KLOC migration daemon) reach steady
 * state. Without this, configurations whose load phase happens to be
 * slower enter measurement with less background debt and win for the
 * wrong reason.
 */

#ifndef KLOC_WORKLOAD_RUNNER_HH
#define KLOC_WORKLOAD_RUNNER_HH

#include "trace/trace.hh"
#include "workload/workload.hh"

namespace kloc {

/** Settle window between load and measurement. */
inline constexpr Tick kQuiesceWindow = 200 * kMillisecond;

/**
 * Run @p workload on @p sys under the currently installed strategy:
 * setup, quiesce, measure. The caller tears down afterwards (or
 * reuses the loaded state for more measurements).
 *
 * The whole run sits inside a TraceBatch window: the workload op
 * loop is the biggest bulk emitter there is, and staging amortises
 * ring insertion across every event it produces. Seq and tick are
 * stamped at emit time, so the serialized trace is byte-identical
 * to an unbatched run.
 */
inline WorkloadResult
runMeasured(System &sys, Workload &workload)
{
    TraceBatch batch(sys.machine().tracer());
    workload.setup(sys);
    sys.fs().syncAll();
    sys.machine().charge(kQuiesceWindow);
    return workload.run(sys);
}

} // namespace kloc

#endif // KLOC_WORKLOAD_RUNNER_HH
