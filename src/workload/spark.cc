#include "workload/spark.hh"

#include "base/logging.hh"

namespace kloc {

void
SparkWorkload::setup(System &sys)
{
    // Executor shuffle/sort buffers.
    growArena(sys, scaled(4 * kGiB) / kPageSize);
    const Bytes dataset =
        scaled(_config.smallInput ? 10 * kGiB : 20 * kGiB);
    _partBytes = dataset / kPartitions;
}

uint64_t
SparkWorkload::generate(System &sys)
{
    uint64_t chunks = 0;
    for (unsigned part = 0; part < kPartitions; ++part) {
        const std::string name = "ts_in_" + std::to_string(_jobId) +
                                 "_" + std::to_string(part);
        const int fd = sys.fs().create(name);
        KLOC_ASSERT(fd >= 0, "terasort input exists");
        for (Bytes off{}; off < _partBytes; off += kChunkBytes) {
            rotateCpu(sys);
            // teragen: synthesize rows in app memory, then write.
            touchArena(sys, off / kPageSize + part, kChunkBytes,
                       AccessType::Write);
            sys.fs().write(fd, off, kChunkBytes);
            ++chunks;
        }
        sys.fs().fsync(fd);
        sys.fs().close(fd);
        _inputs.push_back(name);
    }
    return chunks;
}

uint64_t
SparkWorkload::sort(System &sys)
{
    uint64_t chunks = 0;
    // Map stage: read every partition, shuffle into sort buffers.
    for (unsigned part = 0; part < kPartitions; ++part) {
        const int fd = sys.fs().open(_inputs[part]);
        if (fd < 0)
            continue;
        for (Bytes off{}; off < _partBytes; off += kChunkBytes) {
            rotateCpu(sys);
            sys.fs().read(fd, off, kChunkBytes);
            // Shuffle write into a partition-strided buffer region.
            touchArena(sys,
                       (off / kPageSize) * kPartitions + part,
                       kChunkBytes, AccessType::Write);
            ++chunks;
        }
        sys.fs().close(fd);
    }
    // Reduce stage: merge the buffers and write sorted output, which
    // HDFS checkpoints (fsync) per part file.
    for (unsigned part = 0; part < kPartitions; ++part) {
        const std::string name = "ts_out_" + std::to_string(_jobId) +
                                 "_" + std::to_string(part);
        const int fd = sys.fs().create(name);
        if (fd < 0)
            continue;
        for (Bytes off{}; off < _partBytes; off += kChunkBytes) {
            rotateCpu(sys);
            touchArena(sys,
                       (off / kPageSize) * kPartitions + part,
                       kChunkBytes, AccessType::Read);
            sys.fs().write(fd, off, kChunkBytes);
            ++chunks;
        }
        sys.fs().fsync(fd);
        sys.fs().close(fd);
        _outputs.push_back(name);
    }
    return chunks;
}

WorkloadResult
SparkWorkload::run(System &sys)
{
    WorkloadResult result;
    const Tick start = sys.machine().now();
    // Each run() is one fresh terasort job; old files are retired
    // first so repeated jobs (warm-up + measurement) compose.
    for (const auto &name : _inputs)
        sys.fs().unlink(name);
    for (const auto &name : _outputs)
        sys.fs().unlink(name);
    _inputs.clear();
    _outputs.clear();
    ++_jobId;
    result.operations += generate(sys);
    result.operations += sort(sys);
    result.elapsed = sys.machine().now() - start;
    return result;
}

void
SparkWorkload::teardown(System &sys)
{
    for (const auto &name : _inputs)
        sys.fs().unlink(name);
    for (const auto &name : _outputs)
        sys.fs().unlink(name);
    _inputs.clear();
    _outputs.clear();
    Workload::teardown(sys);
}

} // namespace kloc
