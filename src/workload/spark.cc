#include "workload/spark.hh"

#include "base/logging.hh"

namespace kloc {

void
SparkWorkload::setup(System &sys)
{
    // Executor shuffle/sort buffers.
    growArena(sys, scaled(4 * kGiB) / kPageSize);
    const Bytes dataset =
        scaled(_config.smallInput ? 10 * kGiB : 20 * kGiB);
    _partBytes = dataset / kPartitions;
}

uint64_t
SparkWorkload::generate(System &sys)
{
    uint64_t chunks = 0;
    for (unsigned part = 0; part < kPartitions; ++part) {
        const std::string name = "ts_in_" + std::to_string(_jobId) +
                                 "_" + std::to_string(part);
        const int fd = sys.fs().create(name);
        KLOC_ASSERT(fd >= 0, "terasort input exists");
        for (Bytes off{}; off < _partBytes; off += kChunkBytes) {
            rotateCpu(sys);
            // teragen: synthesize rows in app memory, then write.
            touchArena(sys, off / kPageSize + part, kChunkBytes,
                       AccessType::Write);
            sys.fs().write(fd, off, kChunkBytes);
            ++chunks;
        }
        sys.fs().fsync(fd);
        sys.fs().close(fd);
        _inputs.push_back(name);
    }
    return chunks;
}

uint64_t
SparkWorkload::sort(System &sys)
{
    uint64_t chunks = 0;
    // Map stage: read every partition, shuffle into sort buffers.
    for (unsigned part = 0; part < kPartitions; ++part) {
        const int fd = sys.fs().open(_inputs[part]);
        if (fd < 0)
            continue;
        for (Bytes off{}; off < _partBytes; off += kChunkBytes) {
            rotateCpu(sys);
            sys.fs().read(fd, off, kChunkBytes);
            // Shuffle write into a partition-strided buffer region.
            touchArena(sys,
                       (off / kPageSize) * kPartitions + part,
                       kChunkBytes, AccessType::Write);
            ++chunks;
        }
        sys.fs().close(fd);
    }
    // Reduce stage: merge the buffers and write sorted output, which
    // HDFS checkpoints (fsync) per part file.
    for (unsigned part = 0; part < kPartitions; ++part) {
        const std::string name = "ts_out_" + std::to_string(_jobId) +
                                 "_" + std::to_string(part);
        const int fd = sys.fs().create(name);
        if (fd < 0)
            continue;
        for (Bytes off{}; off < _partBytes; off += kChunkBytes) {
            rotateCpu(sys);
            touchArena(sys,
                       (off / kPageSize) * kPartitions + part,
                       kChunkBytes, AccessType::Read);
            sys.fs().write(fd, off, kChunkBytes);
            ++chunks;
        }
        sys.fs().fsync(fd);
        sys.fs().close(fd);
        _outputs.push_back(name);
    }
    return chunks;
}

std::string
SparkWorkload::inName(unsigned part) const
{
    return "ts_in_" + std::to_string(_jobId) + "_" + std::to_string(part);
}

std::string
SparkWorkload::outName(unsigned part) const
{
    return "ts_out_" + std::to_string(_jobId) + "_" + std::to_string(part);
}

void
SparkWorkload::setupShards(System &sys, unsigned shards)
{
    // One fresh terasort job, like run(): retire the previous job's
    // files before the epochs start.
    for (const auto &name : _inputs)
        sys.fs().unlink(name);
    for (const auto &name : _outputs)
        sys.fs().unlink(name);
    _inputs.clear();
    _outputs.clear();
    ++_jobId;
    beginShards(sys, shards, 0);
    _shardState.clear();
    _shardState.resize(shards);
    _partFds.assign(kPartitions, -1);
    const uint64_t chunks_per_part =
        (_partBytes.value() + kChunkBytes.value() - 1) /
        kChunkBytes.value();
    for (unsigned part = 0; part < kPartitions; ++part)
        _shardState[part % shards].parts.push_back(part);
    // Quotas follow partition ownership, not an even op split: each
    // owned partition is worth chunks_per_part chunks in each of the
    // three phases.
    for (unsigned i = 0; i < shards; ++i)
        _slices[i].quota = _shardState[i].parts.size() * chunks_per_part * 3;
    _phase = Phase::Generate;
}

void
SparkWorkload::shardEpoch(ShardContext &shard, uint64_t)
{
    ShardSlice &slice = _slices[shard.id()];
    SparkShard &my = _shardState[shard.id()];
    using Op = SparkShard::Op;
    // _phase is const mid-epoch; it only advances in shardBarrier.
    for (uint64_t budget = epochQuota(slice);
         budget > 0 && my.partCursor < my.parts.size(); --budget) {
        const unsigned part = my.parts[my.partCursor];
        if (my.off == Bytes{}) {
            switch (_phase) {
              case Phase::Generate:
                my.ops.push_back({Op::GenCreate, part, Bytes{}});
                break;
              case Phase::Map:
                my.ops.push_back({Op::MapOpen, part, Bytes{}});
                break;
              default:
                my.ops.push_back({Op::RedCreate, part, Bytes{}});
                break;
            }
        }
        switch (_phase) {
          case Phase::Generate:
            // teragen: synthesize rows in app memory, then write.
            shardTouchArena(shard, slice, my.off / kPageSize + part,
                            kChunkBytes, AccessType::Write);
            my.ops.push_back({Op::GenWrite, part, my.off});
            break;
          case Phase::Map:
            // Shuffle write into a partition-strided buffer region.
            my.ops.push_back({Op::MapRead, part, my.off});
            shardTouchArena(shard, slice,
                            (my.off / kPageSize) * kPartitions + part,
                            kChunkBytes, AccessType::Write);
            break;
          default:
            shardTouchArena(shard, slice,
                            (my.off / kPageSize) * kPartitions + part,
                            kChunkBytes, AccessType::Read);
            my.ops.push_back({Op::RedWrite, part, my.off});
            break;
        }
        my.off += kChunkBytes;
        ++slice.done;
        if (my.off >= _partBytes) {
            switch (_phase) {
              case Phase::Generate:
                my.ops.push_back({Op::GenClose, part, Bytes{}});
                break;
              case Phase::Map:
                my.ops.push_back({Op::MapClose, part, Bytes{}});
                break;
              default:
                my.ops.push_back({Op::RedClose, part, Bytes{}});
                break;
            }
            my.off = Bytes{};
            ++my.partCursor;
        }
    }
    if (!slice.touches.empty() || !my.ops.empty())
        postShardApply(shard);
}

void
SparkWorkload::applyShardOpsAtBarrier(System &sys, unsigned slice_index)
{
    Workload::applyShardOpsAtBarrier(sys, slice_index);
    SparkShard &my = _shardState[slice_index];
    using Op = SparkShard::Op;
    for (const Op &op : my.ops) {
        int &fd = _partFds[op.part];
        switch (op.kind) {
          case Op::GenCreate:
            fd = sys.fs().create(inName(op.part));
            KLOC_ASSERT(fd >= 0, "terasort input exists");
            break;
          case Op::GenWrite:
            sys.fs().write(fd, op.off, kChunkBytes);
            break;
          case Op::GenClose:
            sys.fs().fsync(fd);
            sys.fs().close(fd);
            fd = -1;
            _inputs.push_back(inName(op.part));
            break;
          case Op::MapOpen:
            fd = sys.fs().open(inName(op.part));
            break;
          case Op::MapRead:
            if (fd >= 0)
                sys.fs().read(fd, op.off, kChunkBytes);
            break;
          case Op::MapClose:
            if (fd >= 0)
                sys.fs().close(fd);
            fd = -1;
            break;
          case Op::RedCreate:
            fd = sys.fs().create(outName(op.part));
            break;
          case Op::RedWrite:
            if (fd >= 0)
                sys.fs().write(fd, op.off, kChunkBytes);
            break;
          case Op::RedClose:
            if (fd >= 0) {
                // HDFS checkpoints (fsync) each sorted part file.
                sys.fs().fsync(fd);
                sys.fs().close(fd);
            }
            fd = -1;
            _outputs.push_back(outName(op.part));
            break;
        }
    }
    my.ops.clear();
}

void
SparkWorkload::shardBarrier(System &sys, uint64_t)
{
    (void)sys;
    if (_phase == Phase::Done)
        return;
    for (const SparkShard &my : _shardState) {
        if (my.partCursor < my.parts.size())
            return;
    }
    // Every shard drained its partitions: the phase flips here, and
    // only here, so bodies never observe it mid-epoch.
    switch (_phase) {
      case Phase::Generate: _phase = Phase::Map; break;
      case Phase::Map: _phase = Phase::Reduce; break;
      default: _phase = Phase::Done; break;
    }
    for (SparkShard &my : _shardState) {
        my.partCursor = 0;
        my.off = Bytes{};
    }
}

bool
SparkWorkload::shardsDone() const
{
    return _phase == Phase::Done;
}

WorkloadResult
SparkWorkload::run(System &sys)
{
    WorkloadResult result;
    const Tick start = sys.machine().now();
    // Each run() is one fresh terasort job; old files are retired
    // first so repeated jobs (warm-up + measurement) compose.
    for (const auto &name : _inputs)
        sys.fs().unlink(name);
    for (const auto &name : _outputs)
        sys.fs().unlink(name);
    _inputs.clear();
    _outputs.clear();
    ++_jobId;
    result.operations += generate(sys);
    result.operations += sort(sys);
    result.elapsed = sys.machine().now() - start;
    return result;
}

void
SparkWorkload::teardown(System &sys)
{
    for (const auto &name : _inputs)
        sys.fs().unlink(name);
    for (const auto &name : _outputs)
        sys.fs().unlink(name);
    _inputs.clear();
    _outputs.clear();
    Workload::teardown(sys);
}

} // namespace kloc
