/**
 * @file
 * Spark-like terasort driver (Table 3): generate a 20 GB dataset
 * across 16 HDFS-style part files, then sort it — reading every
 * part, shuffling through large in-memory buffers, and writing (and
 * checkpointing) sorted output parts.
 *
 * An "operation" is one 256 KB chunk processed, so throughput is
 * proportional to the job's data rate.
 */

#ifndef KLOC_WORKLOAD_SPARK_HH
#define KLOC_WORKLOAD_SPARK_HH

#include <string>
#include <vector>

#include "workload/workload.hh"

namespace kloc {

/** Spark/terasort-like analytics driver. */
class SparkWorkload : public Workload
{
  public:
    static constexpr unsigned kPartitions = 16;
    static constexpr Bytes kChunkBytes = 256 * kKiB;

    explicit SparkWorkload(const WorkloadConfig &config)
        : Workload(config)
    {}

    const char *name() const override { return "spark"; }

    void setup(System &sys) override;
    WorkloadResult run(System &sys) override;
    void teardown(System &sys) override;

    // Sharded port: partitions distribute round-robin over shards
    // (part % shards). The job keeps its serial phase structure —
    // generate, map, reduce — with the inter-phase shuffle barriers
    // expressed as epoch barriers: the phase flag flips only in the
    // barrier hook once every shard has drained its partitions.
    // Chunk buffer touches price locally; the HDFS-side syscalls
    // defer in op order, with part-file fds living in shared tables
    // that only barrier applies touch.
    bool shardable() const override { return true; }
    void setupShards(System &sys, unsigned shards) override;
    void shardEpoch(ShardContext &shard, uint64_t epoch) override;
    void shardBarrier(System &sys, uint64_t epoch) override;
    bool shardsDone() const override;

  protected:
    void applyShardOpsAtBarrier(System &sys, unsigned slice_index) override;

  private:
    enum class Phase : uint8_t { Generate, Map, Reduce, Done };

    /** Per-shard partition walker beyond the common slice. */
    struct SparkShard
    {
        /** One deferred HDFS syscall. */
        struct Op
        {
            enum Kind : uint8_t {
                GenCreate, GenWrite, GenClose,
                MapOpen, MapRead, MapClose,
                RedCreate, RedWrite, RedClose,
            };
            Kind kind;
            unsigned part;
            Bytes off;
        };
        std::vector<unsigned> parts;
        size_t partCursor = 0;
        Bytes off{};
        std::vector<Op> ops;
    };

    uint64_t generate(System &sys);
    uint64_t sort(System &sys);
    std::string inName(unsigned part) const;
    std::string outName(unsigned part) const;

    Bytes _partBytes{};
    uint64_t _jobId = 0;   ///< distinct file names per run() invocation
    std::vector<std::string> _inputs;
    std::vector<std::string> _outputs;
    Phase _phase = Phase::Done;
    std::vector<SparkShard> _shardState;
    /** Part-file fds for barrier applies (indexed by partition). */
    std::vector<int> _partFds;
};

} // namespace kloc

#endif // KLOC_WORKLOAD_SPARK_HH
