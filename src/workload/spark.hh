/**
 * @file
 * Spark-like terasort driver (Table 3): generate a 20 GB dataset
 * across 16 HDFS-style part files, then sort it — reading every
 * part, shuffling through large in-memory buffers, and writing (and
 * checkpointing) sorted output parts.
 *
 * An "operation" is one 256 KB chunk processed, so throughput is
 * proportional to the job's data rate.
 */

#ifndef KLOC_WORKLOAD_SPARK_HH
#define KLOC_WORKLOAD_SPARK_HH

#include <string>
#include <vector>

#include "workload/workload.hh"

namespace kloc {

/** Spark/terasort-like analytics driver. */
class SparkWorkload : public Workload
{
  public:
    static constexpr unsigned kPartitions = 16;
    static constexpr Bytes kChunkBytes = 256 * kKiB;

    explicit SparkWorkload(const WorkloadConfig &config)
        : Workload(config)
    {}

    const char *name() const override { return "spark"; }

    void setup(System &sys) override;
    WorkloadResult run(System &sys) override;
    void teardown(System &sys) override;

  private:
    uint64_t generate(System &sys);
    uint64_t sort(System &sys);

    Bytes _partBytes{};
    uint64_t _jobId = 0;   ///< distinct file names per run() invocation
    std::vector<std::string> _inputs;
    std::vector<std::string> _outputs;
};

} // namespace kloc

#endif // KLOC_WORKLOAD_SPARK_HH
