#include "workload/thrash.hh"

#include <algorithm>

#include "base/logging.hh"

namespace kloc {

ThrashWorkload::ThrashWorkload(const WorkloadConfig &config)
    : Workload(config), _fdCache(kLogFiles)
{
}

void
ThrashWorkload::setup(System &sys)
{
    growArena(sys, scaled(kPaperArena) / kPageSize);
    for (uint64_t i = 0; i < kLogFiles; ++i) {
        const std::string name = "thrash_log_" + std::to_string(i);
        const int fd = sys.fs().create(name);
        KLOC_ASSERT(fd >= 0, "log file exists");
        sys.fs().close(fd);
        _logs.push_back(name);
    }
}

uint64_t
ThrashWorkload::workingSetAt(uint64_t op) const
{
    const uint64_t arena = arenaSize();
    const auto ws_min =
        static_cast<uint64_t>(static_cast<double>(arena) * kWsMinFraction);
    const auto ws_max =
        static_cast<uint64_t>(static_cast<double>(arena) * kWsMaxFraction);
    // Triangle wave: 0 -> half -> 0 over each period.
    const uint64_t phase = op % kWavePeriod;
    constexpr uint64_t half = kWavePeriod / 2;
    const uint64_t level = phase < half ? phase : kWavePeriod - phase;
    const uint64_t ws = ws_min + (ws_max - ws_min) * level / half;
    return std::max<uint64_t>(ws, 1);
}

WorkloadResult
ThrashWorkload::run(System &sys)
{
    WorkloadResult result;
    const Tick start = sys.machine().now();
    const uint64_t arena = std::max<uint64_t>(arenaSize(), 1);
    uint64_t cursor = 0;
    for (uint64_t op = 0; op < _config.operations; ++op) {
        rotateCpu(sys);
        const uint64_t ws = workingSetAt(op);
        const uint64_t base = (op * kSlidePages) % arena;
        // Sweep the window cyclically, a chunk per op, so every
        // resident page is touched once per lap; pages the slide
        // abandons go cold until the window wraps back around.
        for (uint64_t j = 0; j < kChunkPages; ++j) {
            const uint64_t pos = (cursor + j) % ws;
            const bool write = pos * kWriteBandDiv < ws;
            touchArena(sys, (base + pos) % arena, 4 * kKiB,
                       write ? AccessType::Write : AccessType::Read);
        }
        cursor = (cursor + kChunkPages) % ws;
        if (op % kLogInterval == 0) {
            const int fd =
                _fdCache.get(sys, _logs[(op / kLogInterval) % kLogFiles]);
            if (fd >= 0)
                sys.fs().write(fd, Bytes{0}, kLogBytes);
        }
        ++result.operations;
    }
    result.elapsed = sys.machine().now() - start;
    return result;
}

void
ThrashWorkload::teardown(System &sys)
{
    _fdCache.clear(sys);
    for (const auto &name : _logs)
        sys.fs().unlink(name);
    _logs.clear();
    Workload::teardown(sys);
}

} // namespace kloc
