#include "workload/thrash.hh"

#include <algorithm>

#include "base/logging.hh"

namespace kloc {

ThrashWorkload::ThrashWorkload(const WorkloadConfig &config)
    : Workload(config), _fdCache(kLogFiles)
{
}

void
ThrashWorkload::setup(System &sys)
{
    growArena(sys, scaled(kPaperArena) / kPageSize);
    for (uint64_t i = 0; i < kLogFiles; ++i) {
        const std::string name = "thrash_log_" + std::to_string(i);
        const int fd = sys.fs().create(name);
        KLOC_ASSERT(fd >= 0, "log file exists");
        sys.fs().close(fd);
        _logs.push_back(name);
    }
}

uint64_t
ThrashWorkload::waveAt(uint64_t arena_pages, uint64_t op)
{
    const auto ws_min = static_cast<uint64_t>(
        static_cast<double>(arena_pages) * kWsMinFraction);
    const auto ws_max = static_cast<uint64_t>(
        static_cast<double>(arena_pages) * kWsMaxFraction);
    // Triangle wave: 0 -> half -> 0 over each period.
    const uint64_t phase = op % kWavePeriod;
    constexpr uint64_t half = kWavePeriod / 2;
    const uint64_t level = phase < half ? phase : kWavePeriod - phase;
    const uint64_t ws = ws_min + (ws_max - ws_min) * level / half;
    return std::max<uint64_t>(ws, 1);
}

uint64_t
ThrashWorkload::workingSetAt(uint64_t op) const
{
    return waveAt(arenaSize(), op);
}

WorkloadResult
ThrashWorkload::run(System &sys)
{
    WorkloadResult result;
    const Tick start = sys.machine().now();
    const uint64_t arena = std::max<uint64_t>(arenaSize(), 1);
    uint64_t cursor = 0;
    for (uint64_t op = 0; op < _config.operations; ++op) {
        rotateCpu(sys);
        const uint64_t ws = workingSetAt(op);
        const uint64_t base = (op * kSlidePages) % arena;
        // Sweep the window cyclically, a chunk per op, so every
        // resident page is touched once per lap; pages the slide
        // abandons go cold until the window wraps back around.
        for (uint64_t j = 0; j < kChunkPages; ++j) {
            const uint64_t pos = (cursor + j) % ws;
            const bool write = pos * kWriteBandDiv < ws;
            touchArena(sys, (base + pos) % arena, 4 * kKiB,
                       write ? AccessType::Write : AccessType::Read);
        }
        cursor = (cursor + kChunkPages) % ws;
        if (op % kLogInterval == 0) {
            const int fd =
                _fdCache.get(sys, _logs[(op / kLogInterval) % kLogFiles]);
            if (fd >= 0)
                sys.fs().write(fd, Bytes{0}, kLogBytes);
        }
        ++result.operations;
    }
    result.elapsed = sys.machine().now() - start;
    return result;
}

void
ThrashWorkload::setupShards(System &sys, unsigned shards)
{
    beginShards(sys, shards, _config.operations);
    _shardState.assign(shards, ThrashShard{});
    for (auto &my : _shardState)
        my.stripePages = std::max<uint64_t>(arenaSize() / shards, 1);
}

void
ThrashWorkload::shardEpoch(ShardContext &shard, uint64_t)
{
    ShardSlice &slice = _slices[shard.id()];
    ThrashShard &my = _shardState[shard.id()];
    const auto shards = static_cast<uint64_t>(_slices.size());
    // Each shard is a *full* thrasher over its own stripe: the whole
    // chunk per op, so per-op virtual cost (and thus the migration
    // daemons' cadence relative to the access stream) matches the
    // serial driver, and the shards' aligned wave crests still sum to
    // the arena-scale oscillation the bench is about.
    const uint64_t chunk = kChunkPages;
    for (uint64_t n = epochQuota(slice); n > 0; --n) {
        const uint64_t ws = waveAt(my.stripePages, my.op);
        const uint64_t base = (my.op * kSlidePages) % my.stripePages;
        for (uint64_t j = 0; j < chunk; ++j) {
            const uint64_t pos = (my.cursor + j) % ws;
            const bool write = pos * kWriteBandDiv < ws;
            const uint64_t stripe_idx = (base + pos) % my.stripePages;
            shardTouchArena(shard, slice, stripe_idx * shards + shard.id(),
                            4 * kKiB,
                            write ? AccessType::Write : AccessType::Read);
        }
        my.cursor = (my.cursor + chunk) % ws;
        if (my.op % kLogInterval == 0)
            my.appends.push_back((my.op / kLogInterval) % kLogFiles);
        ++my.op;
        ++slice.done;
    }
    if (!slice.touches.empty() || !my.appends.empty())
        postShardApply(shard);
}

void
ThrashWorkload::applyShardOpsAtBarrier(System &sys, unsigned slice_index)
{
    Workload::applyShardOpsAtBarrier(sys, slice_index);
    ThrashShard &my = _shardState[slice_index];
    for (const uint64_t log : my.appends) {
        const int fd = _fdCache.get(sys, _logs[log]);
        if (fd >= 0)
            sys.fs().write(fd, Bytes{0}, kLogBytes);
    }
    my.appends.clear();
}

void
ThrashWorkload::teardown(System &sys)
{
    _fdCache.clear(sys);
    for (const auto &name : _logs)
        sys.fs().unlink(name);
    _logs.clear();
    Workload::teardown(sys);
}

} // namespace kloc
