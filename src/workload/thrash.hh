/**
 * @file
 * Adversarial tiering workload (extension; §6 motivation): a working
 * set that oscillates deterministically around the fast-tier
 * capacity, the pattern migration policies are most prone to thrash
 * on.
 *
 * The arena is sized at 2x the paper-scale fast tier (16 GB vs. the
 * 8 GB fast tier of Table 4, both divided by the platform scale).
 * The live working set is a window that slides steadily through the
 * arena while its size follows a triangle wave between 0.75x and
 * 1.25x fast capacity: pages ahead of the window must be promoted to
 * be served fast, pages behind it go cold and must be demoted to
 * make room, and the wave crests guarantee the window never fits —
 * eager promotion keeps paying full migration cost for pages the
 * slide is about to abandon. Shadow-keeping (Nomad) demotes the
 * abandoned pages for free, and rate-adaptive scanning (Jenga)
 * throttles promotion when the reuse histogram collapses.
 *
 * The first fifth of the working set is a write band; the tail is
 * read-mostly, so transactional copies of tail pages commit while
 * write-band copies abort. A light file-append side-channel keeps
 * kernel-object (KLOC) pressure non-zero without dominating.
 */

#ifndef KLOC_WORKLOAD_THRASH_HH
#define KLOC_WORKLOAD_THRASH_HH

#include <string>
#include <vector>

#include "workload/workload.hh"

namespace kloc {

/** Fast-tier-capacity-straddling triangle-wave thrasher. */
class ThrashWorkload : public Workload
{
  public:
    /** Paper-scale arena: 2x the Table 4 fast tier. */
    static constexpr Bytes kPaperArena = 16 * kGiB;
    /** Working-set bounds as arena fractions (0.75x/1.25x fast). */
    static constexpr double kWsMinFraction = 0.375;
    static constexpr double kWsMaxFraction = 0.625;
    /** Operations per full triangle-wave period. */
    static constexpr uint64_t kWavePeriod = 4096;
    /**
     * Working-set pages swept per operation. Sized so one wave
     * period spans several 100 ms scan ticks of the default policies
     * (a single-page op finishes the whole run inside one scan
     * period and no policy ever reacts), while one working-set lap
     * stays well inside a scan period so resident pages look hot.
     */
    static constexpr uint64_t kChunkPages = 512;
    /**
     * Window slide per operation. Slow enough that abandoned pages
     * stay cold for several scan ticks (so LRU aging can actually
     * demote them) before the window wraps around the arena.
     */
    static constexpr uint64_t kSlidePages = 2;
    /** Leading fraction of the working set that takes writes. */
    static constexpr uint64_t kWriteBandDiv = 5;
    /** One log append every this many ops (kernel-object churn). */
    static constexpr uint64_t kLogInterval = 64;
    static constexpr uint64_t kLogFiles = 8;
    static constexpr Bytes kLogBytes = 16 * kKiB;

    explicit ThrashWorkload(const WorkloadConfig &config);

    const char *name() const override { return "thrash"; }

    void setup(System &sys) override;
    WorkloadResult run(System &sys) override;
    void teardown(System &sys) override;

    /** Working-set size (pages) at operation @p op; deterministic. */
    uint64_t workingSetAt(uint64_t op) const;

    // Sharded port: each shard thrashes an interleaved arena stripe
    // (indices i*shards + id) with the same triangle wave scaled to
    // the stripe, so the aggregate working set tracks the serial
    // shape; log appends are deferred to the barrier replay.
    bool shardable() const override { return true; }
    void setupShards(System &sys, unsigned shards) override;
    void shardEpoch(ShardContext &shard, uint64_t epoch) override;

  protected:
    void applyShardOpsAtBarrier(System &sys, unsigned slice_index) override;

  private:
    /** Triangle wave over @p arena_pages at operation @p op. */
    static uint64_t waveAt(uint64_t arena_pages, uint64_t op);

    /** Per-shard thrasher state beyond the common slice. */
    struct ThrashShard
    {
        /** Slice-local op index driving the wave phase. */
        uint64_t op = 0;
        /** Sweep cursor within the current working-set window. */
        uint64_t cursor = 0;
        /** Arena pages in this shard's stripe. */
        uint64_t stripePages = 0;
        /** Deferred log appends: log-file indices, op order. */
        std::vector<uint64_t> appends;
    };

    FdCache _fdCache;
    std::vector<std::string> _logs;
    std::vector<ThrashShard> _shardState;
};

} // namespace kloc

#endif // KLOC_WORKLOAD_THRASH_HH
