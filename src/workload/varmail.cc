#include "workload/varmail.hh"

#include "base/logging.hh"

namespace kloc {

std::string
VarmailWorkload::freshName()
{
    return "mail_" + std::to_string(_nextMailId++);
}

void
VarmailWorkload::setup(System &sys)
{
    growArena(sys, scaled(512 * kMiB) / kPageSize);
    // Seed the spool with an initial mail population.
    const uint64_t initial =
        scaled(_config.smallInput ? 2 * kGiB : 8 * kGiB) / kMailBytes;
    for (uint64_t i = 0; i < initial; ++i)
        deliverMail(sys);
}

void
VarmailWorkload::deliverMail(System &sys)
{
    const std::string name = freshName();
    const int fd = sys.fs().create(name);
    if (fd < 0)
        return;
    touchArena(sys, _nextMailId, kMailBytes, AccessType::Read);
    sys.fs().write(fd, Bytes{0}, kMailBytes);
    // varmail fsyncs each delivered message.
    sys.fs().fsync(fd);
    sys.fs().close(fd);
    _mailbox.push_back(name);
}

void
VarmailWorkload::readMail(System &sys)
{
    if (_mailbox.empty())
        return;
    const auto pick = _rng.nextBounded(_mailbox.size());
    const int fd = sys.fs().open(_mailbox[pick]);
    if (fd < 0)
        return;
    sys.fs().read(fd, Bytes{0}, kMailBytes);
    touchArena(sys, pick, kMailBytes, AccessType::Write);
    sys.fs().close(fd);
}

void
VarmailWorkload::deleteMail(System &sys)
{
    if (_mailbox.empty())
        return;
    const auto pick = _rng.nextBounded(_mailbox.size());
    if (sys.fs().unlink(_mailbox[pick])) {
        _mailbox[pick] = _mailbox.back();
        _mailbox.pop_back();
    }
}

void
VarmailWorkload::setupShards(System &sys, unsigned shards)
{
    beginShards(sys, shards, _config.operations);
    _shardState.clear();
    _shardState.resize(shards);
    // Partition the seeded spool round-robin; fresh deliveries get
    // shard-prefixed names, so the sub-spools stay disjoint.
    for (size_t i = 0; i < _mailbox.size(); ++i)
        _shardState[i % shards].spool.push_back(_mailbox[i]);
    _mailbox.clear();
}

void
VarmailWorkload::shardEpoch(ShardContext &shard, uint64_t)
{
    ShardSlice &slice = _slices[shard.id()];
    VarmailShard &my = _shardState[shard.id()];
    auto queueDeliver = [&] {
        const std::string name = "mail_s" + std::to_string(shard.id()) +
                                 "_" + std::to_string(my.nextMailId);
        shardTouchArena(shard, slice, my.nextMailId, kMailBytes,
                        AccessType::Read);
        ++my.nextMailId;
        my.spool.push_back(name);
        my.ops.push_back({VarmailShard::Op::Deliver, name});
    };
    auto queueDelete = [&] {
        if (my.spool.empty())
            return;
        const auto pick = slice.rng.nextBounded(my.spool.size());
        my.ops.push_back({VarmailShard::Op::Delete, my.spool[pick]});
        my.spool[pick] = my.spool.back();
        my.spool.pop_back();
    };
    for (uint64_t n = epochQuota(slice); n > 0; --n) {
        const double action = slice.rng.nextDouble();
        if (action < 0.3) {
            queueDeliver();
        } else if (action < 0.7) {
            if (!my.spool.empty()) {
                const auto pick = slice.rng.nextBounded(my.spool.size());
                shardTouchArena(shard, slice, pick, kMailBytes,
                                AccessType::Write);
                my.ops.push_back({VarmailShard::Op::Read, my.spool[pick]});
            }
        } else if (action < 0.98) {
            // Balance deletes against delivery so the spool neither
            // explodes nor empties.
            queueDelete();
            if (slice.rng.nextBool(0.25))
                queueDeliver();
        } else {
            my.ops.push_back({VarmailShard::Op::Scan, {}});
        }
        ++slice.done;
    }
    if (!slice.touches.empty() || !my.ops.empty())
        postShardApply(shard);
}

void
VarmailWorkload::applyShardOpsAtBarrier(System &sys, unsigned slice_index)
{
    Workload::applyShardOpsAtBarrier(sys, slice_index);
    VarmailShard &my = _shardState[slice_index];
    for (const VarmailShard::Op &op : my.ops) {
        switch (op.kind) {
          case VarmailShard::Op::Deliver: {
            const int fd = sys.fs().create(op.name);
            if (fd < 0)
                break;
            sys.fs().write(fd, Bytes{0}, kMailBytes);
            // varmail fsyncs each delivered message.
            sys.fs().fsync(fd);
            sys.fs().close(fd);
            break;
          }
          case VarmailShard::Op::Read: {
            const int fd = sys.fs().open(op.name);
            if (fd < 0)
                break;
            sys.fs().read(fd, Bytes{0}, kMailBytes);
            sys.fs().close(fd);
            break;
          }
          case VarmailShard::Op::Delete:
            sys.fs().unlink(op.name);
            break;
          case VarmailShard::Op::Scan:
            sys.fs().readdir();
            break;
        }
    }
    my.ops.clear();
}

WorkloadResult
VarmailWorkload::run(System &sys)
{
    WorkloadResult result;
    const Tick start = sys.machine().now();
    for (uint64_t op = 0; op < _config.operations; ++op) {
        rotateCpu(sys);
        const double action = _rng.nextDouble();
        if (action < 0.3) {
            deliverMail(sys);
        } else if (action < 0.7) {
            readMail(sys);
        } else if (action < 0.98) {
            // Balance deletes against delivery so the spool neither
            // explodes nor empties.
            deleteMail(sys);
            if (_rng.nextBool(0.25))
                deliverMail(sys);
        } else {
            sys.fs().readdir();
        }
        ++result.operations;
    }
    result.elapsed = sys.machine().now() - start;
    return result;
}

void
VarmailWorkload::teardown(System &sys)
{
    for (const auto &name : _mailbox)
        sys.fs().unlink(name);
    _mailbox.clear();
    for (auto &my : _shardState) {
        for (const auto &name : my.spool)
            sys.fs().unlink(name);
        my.spool.clear();
    }
    Workload::teardown(sys);
}

} // namespace kloc
