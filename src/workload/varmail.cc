#include "workload/varmail.hh"

#include "base/logging.hh"

namespace kloc {

std::string
VarmailWorkload::freshName()
{
    return "mail_" + std::to_string(_nextMailId++);
}

void
VarmailWorkload::setup(System &sys)
{
    growArena(sys, scaled(512 * kMiB) / kPageSize);
    // Seed the spool with an initial mail population.
    const uint64_t initial =
        scaled(_config.smallInput ? 2 * kGiB : 8 * kGiB) / kMailBytes;
    for (uint64_t i = 0; i < initial; ++i)
        deliverMail(sys);
}

void
VarmailWorkload::deliverMail(System &sys)
{
    const std::string name = freshName();
    const int fd = sys.fs().create(name);
    if (fd < 0)
        return;
    touchArena(sys, _nextMailId, kMailBytes, AccessType::Read);
    sys.fs().write(fd, Bytes{0}, kMailBytes);
    // varmail fsyncs each delivered message.
    sys.fs().fsync(fd);
    sys.fs().close(fd);
    _mailbox.push_back(name);
}

void
VarmailWorkload::readMail(System &sys)
{
    if (_mailbox.empty())
        return;
    const auto pick = _rng.nextBounded(_mailbox.size());
    const int fd = sys.fs().open(_mailbox[pick]);
    if (fd < 0)
        return;
    sys.fs().read(fd, Bytes{0}, kMailBytes);
    touchArena(sys, pick, kMailBytes, AccessType::Write);
    sys.fs().close(fd);
}

void
VarmailWorkload::deleteMail(System &sys)
{
    if (_mailbox.empty())
        return;
    const auto pick = _rng.nextBounded(_mailbox.size());
    if (sys.fs().unlink(_mailbox[pick])) {
        _mailbox[pick] = _mailbox.back();
        _mailbox.pop_back();
    }
}

WorkloadResult
VarmailWorkload::run(System &sys)
{
    WorkloadResult result;
    const Tick start = sys.machine().now();
    for (uint64_t op = 0; op < _config.operations; ++op) {
        rotateCpu(sys);
        const double action = _rng.nextDouble();
        if (action < 0.3) {
            deliverMail(sys);
        } else if (action < 0.7) {
            readMail(sys);
        } else if (action < 0.98) {
            // Balance deletes against delivery so the spool neither
            // explodes nor empties.
            deleteMail(sys);
            if (_rng.nextBool(0.25))
                deliverMail(sys);
        } else {
            sys.fs().readdir();
        }
        ++result.operations;
    }
    result.elapsed = sys.machine().now() - start;
    return result;
}

void
VarmailWorkload::teardown(System &sys)
{
    for (const auto &name : _mailbox)
        sys.fs().unlink(name);
    _mailbox.clear();
    Workload::teardown(sys);
}

} // namespace kloc
