/**
 * @file
 * Varmail-like driver (extension beyond the paper's Table 3, after
 * filebench's varmail personality): a mail-server file churn —
 * create/append/fsync, whole-file reads, deletes, and directory
 * scans over a large population of small files.
 *
 * This is the most metadata-intensive driver in the suite: inode,
 * dentry, journal, and directory-buffer churn dominates, making it a
 * stress test for KLOC's knode lifecycle (every op creates or
 * destroys whole KLOCs).
 */

#ifndef KLOC_WORKLOAD_VARMAIL_HH
#define KLOC_WORKLOAD_VARMAIL_HH

#include <string>
#include <vector>

#include "workload/workload.hh"

namespace kloc {

/** Varmail-like mail-server file churn driver. */
class VarmailWorkload : public Workload
{
  public:
    static constexpr Bytes kMailBytes = 8 * kKiB;
    /** Ops between directory scans. */
    static constexpr unsigned kScanEvery = 512;

    explicit VarmailWorkload(const WorkloadConfig &config)
        : Workload(config)
    {}

    const char *name() const override { return "varmail"; }

    void setup(System &sys) override;
    WorkloadResult run(System &sys) override;
    void teardown(System &sys) override;

    uint64_t livemails() const { return _mailbox.size(); }

  private:
    std::string freshName();
    void deliverMail(System &sys);
    void readMail(System &sys);
    void deleteMail(System &sys);

    uint64_t _nextMailId = 0;
    std::vector<std::string> _mailbox;
};

} // namespace kloc

#endif // KLOC_WORKLOAD_VARMAIL_HH
