/**
 * @file
 * Varmail-like driver (extension beyond the paper's Table 3, after
 * filebench's varmail personality): a mail-server file churn —
 * create/append/fsync, whole-file reads, deletes, and directory
 * scans over a large population of small files.
 *
 * This is the most metadata-intensive driver in the suite: inode,
 * dentry, journal, and directory-buffer churn dominates, making it a
 * stress test for KLOC's knode lifecycle (every op creates or
 * destroys whole KLOCs).
 */

#ifndef KLOC_WORKLOAD_VARMAIL_HH
#define KLOC_WORKLOAD_VARMAIL_HH

#include <string>
#include <vector>

#include "workload/workload.hh"

namespace kloc {

/** Varmail-like mail-server file churn driver. */
class VarmailWorkload : public Workload
{
  public:
    static constexpr Bytes kMailBytes = 8 * kKiB;
    /** Ops between directory scans. */
    static constexpr unsigned kScanEvery = 512;

    explicit VarmailWorkload(const WorkloadConfig &config)
        : Workload(config)
    {}

    const char *name() const override { return "varmail"; }

    void setup(System &sys) override;
    WorkloadResult run(System &sys) override;
    void teardown(System &sys) override;

    uint64_t livemails() const { return _mailbox.size(); }

    // Sharded port: the spool partitions into disjoint per-shard
    // sub-spools (fresh deliveries use shard-prefixed names, so no
    // two shards ever race on a file). Spool membership mutates
    // shard-locally at decision time; the create/read/unlink/readdir
    // syscalls defer to the barrier replay in op order.
    bool shardable() const override { return true; }
    void setupShards(System &sys, unsigned shards) override;
    void shardEpoch(ShardContext &shard, uint64_t epoch) override;

  protected:
    void applyShardOpsAtBarrier(System &sys, unsigned slice_index) override;

  private:
    /** Per-shard sub-spool beyond the common slice. */
    struct VarmailShard
    {
        /** One deferred mail syscall sequence. */
        struct Op
        {
            enum Kind : uint8_t { Deliver, Read, Delete, Scan };
            Kind kind;
            std::string name;
        };
        std::vector<std::string> spool;
        uint64_t nextMailId = 0;
        std::vector<Op> ops;
    };

    std::string freshName();
    void deliverMail(System &sys);
    void readMail(System &sys);
    void deleteMail(System &sys);

    uint64_t _nextMailId = 0;
    std::vector<std::string> _mailbox;
    std::vector<VarmailShard> _shardState;
};

} // namespace kloc

#endif // KLOC_WORKLOAD_VARMAIL_HH
