#include "workload/webserver.hh"

#include "base/logging.hh"

namespace kloc {

WebserverWorkload::WebserverWorkload(const WorkloadConfig &config)
    : Workload(config), _fdCache(64)
{
}

void
WebserverWorkload::setup(System &sys)
{
    // Worker-process buffers.
    growArena(sys, scaled(1 * kGiB) / kPageSize);
    // Static document corpus.
    const Bytes corpus =
        scaled(_config.smallInput ? 4 * kGiB : 16 * kGiB);
    const uint64_t docs = corpus / kDocBytes;
    for (uint64_t i = 0; i < docs; ++i) {
        const std::string name = "doc_" + std::to_string(i);
        const int fd = sys.fs().create(name);
        KLOC_ASSERT(fd >= 0, "corpus file exists");
        sys.fs().write(fd, Bytes{0}, kDocBytes);
        sys.fs().close(fd);
        _docs.push_back(name);
    }
    _zipf = std::make_unique<ZipfianGenerator>(_docs.size(), 0.9,
                                               _config.seed ^ 0x8080);
}

void
WebserverWorkload::serveRequest(System &sys, int sd, uint64_t doc)
{
    // Request in.
    sys.net().deliver(sd, kRequestBytes);
    if (!sys.net().poll(sd))
        return;
    sys.net().recv(sd, kRequestBytes);
    // Serve the file through the page cache (sendfile-style).
    const int fd = _fdCache.get(sys, _docs[doc]);
    if (fd >= 0)
        sys.fs().read(fd, Bytes{0}, kDocBytes);
    touchArena(sys, doc, 2 * kKiB, AccessType::Write);  // headers
    sys.net().send(sd, kDocBytes + Bytes{512});
}

void
WebserverWorkload::serveDeferred(System &sys, int sd, uint64_t doc)
{
    // The barrier half of serveRequest: the header touch was already
    // priced on the shard clock.
    sys.net().deliver(sd, kRequestBytes);
    if (!sys.net().poll(sd))
        return;
    sys.net().recv(sd, kRequestBytes);
    const int fd = _fdCache.get(sys, _docs[doc]);
    if (fd >= 0)
        sys.fs().read(fd, Bytes{0}, kDocBytes);
    sys.net().send(sd, kDocBytes + Bytes{512});
}

void
WebserverWorkload::setupShards(System &sys, unsigned shards)
{
    beginShards(sys, shards, _config.operations);
    _shardState.clear();
    _shardState.resize(shards);
    for (unsigned i = 0; i < shards; ++i) {
        _shardState[i].zipf = std::make_unique<ZipfianGenerator>(
            _docs.size(), 0.9, shardSeed(i) ^ 0x8080);
    }
}

void
WebserverWorkload::shardEpoch(ShardContext &shard, uint64_t)
{
    ShardSlice &slice = _slices[shard.id()];
    WebShard &my = _shardState[shard.id()];
    for (uint64_t n = epochQuota(slice); n > 0; --n) {
        const uint64_t doc = my.zipf->next();
        WebShard::Op op{doc, -1, false};
        if (my.poolSize > 0 && slice.rng.nextBool(kKeepAliveRate)) {
            op.reuseSlot =
                static_cast<int>(slice.rng.nextBounded(my.poolSize));
        } else if (my.poolSize < 32 && slice.rng.nextBool(0.3)) {
            op.keep = true;
            ++my.poolSize;
        }
        shardTouchArena(shard, slice, doc, 2 * kKiB, AccessType::Write);
        my.ops.push_back(op);
        ++slice.done;
    }
    if (!slice.touches.empty() || !my.ops.empty())
        postShardApply(shard);
}

void
WebserverWorkload::applyShardOpsAtBarrier(System &sys,
                                          unsigned slice_index)
{
    Workload::applyShardOpsAtBarrier(sys, slice_index);
    WebShard &my = _shardState[slice_index];
    for (const WebShard::Op &op : my.ops) {
        if (op.reuseSlot >= 0) {
            serveDeferred(sys, my.pool[static_cast<size_t>(op.reuseSlot)],
                          op.doc);
            continue;
        }
        // Fresh connection: a whole socket KLOC is born and,
        // usually, dies within one request.
        const int sd = sys.net().socket();
        serveDeferred(sys, sd, op.doc);
        if (op.keep) {
            my.pool.push_back(sd);
        } else {
            sys.net().closeSocket(sd);
        }
    }
    my.ops.clear();
    KLOC_ASSERT(my.pool.size() == my.poolSize,
                "webserver shard %u keep-alive pool diverged",
                slice_index);
}

WorkloadResult
WebserverWorkload::run(System &sys)
{
    WorkloadResult result;
    const Tick start = sys.machine().now();
    for (uint64_t op = 0; op < _config.operations; ++op) {
        rotateCpu(sys);
        const uint64_t doc = _zipf->next();
        if (!_keepAlive.empty() && _rng.nextBool(kKeepAliveRate)) {
            // Reuse a kept-alive connection.
            const auto pick = _rng.nextBounded(_keepAlive.size());
            serveRequest(sys, _keepAlive[pick], doc);
        } else {
            // Fresh connection: a whole socket KLOC is born and,
            // usually, dies within one request.
            const int sd = sys.net().socket();
            serveRequest(sys, sd, doc);
            if (_keepAlive.size() < 32 && _rng.nextBool(0.3)) {
                _keepAlive.push_back(sd);
            } else {
                sys.net().closeSocket(sd);
            }
        }
        ++result.operations;
    }
    result.elapsed = sys.machine().now() - start;
    return result;
}

void
WebserverWorkload::teardown(System &sys)
{
    for (const int sd : _keepAlive)
        sys.net().closeSocket(sd);
    _keepAlive.clear();
    for (auto &my : _shardState) {
        for (const int sd : my.pool)
            sys.net().closeSocket(sd);
        my.pool.clear();
        my.poolSize = 0;
    }
    _fdCache.clear(sys);
    for (const auto &name : _docs)
        sys.fs().unlink(name);
    _docs.clear();
    Workload::teardown(sys);
}

} // namespace kloc
