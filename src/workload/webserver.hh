/**
 * @file
 * Webserver-like driver (extension; motivated by the paper's Nginx
 * citation [8]): short-lived connections serving static files.
 *
 * Each request opens a fresh connection (socket create -> request ->
 * response -> close), resolves a file from a zipfian-popular corpus,
 * and streams it through the page cache. This is the harshest
 * socket-KLOC churn in the suite — every request creates and
 * destroys a whole socket KLOC — while the file side behaves like a
 * classic static-content cache.
 */

#ifndef KLOC_WORKLOAD_WEBSERVER_HH
#define KLOC_WORKLOAD_WEBSERVER_HH

#include <string>
#include <vector>

#include "workload/workload.hh"

namespace kloc {

/** Nginx-like static-content server driver. */
class WebserverWorkload : public Workload
{
  public:
    static constexpr Bytes kRequestBytes{512};
    static constexpr Bytes kDocBytes = 64 * kKiB;
    /** Fraction of connections kept alive across requests. */
    static constexpr double kKeepAliveRate = 0.25;

    explicit WebserverWorkload(const WorkloadConfig &config);

    const char *name() const override { return "webserver"; }

    void setup(System &sys) override;
    WorkloadResult run(System &sys) override;
    void teardown(System &sys) override;

    // Sharded port: each shard serves its own request stream with a
    // private keep-alive pool. The body rolls doc popularity and the
    // keep-alive decisions (tracking the pool size it will have at
    // apply time) and prices the header touch locally; socket
    // create/serve/close defers to the barrier replay.
    bool shardable() const override { return true; }
    void setupShards(System &sys, unsigned shards) override;
    void shardEpoch(ShardContext &shard, uint64_t epoch) override;

  protected:
    void applyShardOpsAtBarrier(System &sys, unsigned slice_index) override;

  private:
    /** Per-shard server state beyond the common slice. */
    struct WebShard
    {
        /** One deferred request. */
        struct Op
        {
            uint64_t doc;
            /** Pool slot to reuse; -1 = fresh connection. */
            int reuseSlot;
            /** Fresh connection joins the keep-alive pool. */
            bool keep;
        };
        std::unique_ptr<ZipfianGenerator> zipf;
        /** Kept-alive sds; grows/shrinks only at apply time. */
        std::vector<int> pool;
        /** Body-side mirror of pool.size() for this epoch. */
        uint64_t poolSize = 0;
        std::vector<Op> ops;
    };

    void serveRequest(System &sys, int sd, uint64_t doc);
    void serveDeferred(System &sys, int sd, uint64_t doc);

    FdCache _fdCache;
    std::vector<std::string> _docs;
    std::vector<int> _keepAlive;
    std::unique_ptr<ZipfianGenerator> _zipf;
    std::vector<WebShard> _shardState;
};

} // namespace kloc

#endif // KLOC_WORKLOAD_WEBSERVER_HH
