/**
 * @file
 * Webserver-like driver (extension; motivated by the paper's Nginx
 * citation [8]): short-lived connections serving static files.
 *
 * Each request opens a fresh connection (socket create -> request ->
 * response -> close), resolves a file from a zipfian-popular corpus,
 * and streams it through the page cache. This is the harshest
 * socket-KLOC churn in the suite — every request creates and
 * destroys a whole socket KLOC — while the file side behaves like a
 * classic static-content cache.
 */

#ifndef KLOC_WORKLOAD_WEBSERVER_HH
#define KLOC_WORKLOAD_WEBSERVER_HH

#include <string>
#include <vector>

#include "workload/workload.hh"

namespace kloc {

/** Nginx-like static-content server driver. */
class WebserverWorkload : public Workload
{
  public:
    static constexpr Bytes kRequestBytes{512};
    static constexpr Bytes kDocBytes = 64 * kKiB;
    /** Fraction of connections kept alive across requests. */
    static constexpr double kKeepAliveRate = 0.25;

    explicit WebserverWorkload(const WorkloadConfig &config);

    const char *name() const override { return "webserver"; }

    void setup(System &sys) override;
    WorkloadResult run(System &sys) override;
    void teardown(System &sys) override;

  private:
    void serveRequest(System &sys, int sd, uint64_t doc);

    FdCache _fdCache;
    std::vector<std::string> _docs;
    std::vector<int> _keepAlive;
    std::unique_ptr<ZipfianGenerator> _zipf;
};

} // namespace kloc

#endif // KLOC_WORKLOAD_WEBSERVER_HH
