#include "workload/workload.hh"

#include <algorithm>

#include "base/logging.hh"
#include "workload/cassandra.hh"
#include "workload/filebench.hh"
#include "workload/redis.hh"
#include "workload/rocksdb.hh"
#include "workload/spark.hh"
#include "workload/thrash.hh"
#include "workload/varmail.hh"
#include "workload/webserver.hh"

namespace kloc {

std::unique_ptr<Workload>
makeWorkload(const std::string &name, const WorkloadConfig &config)
{
    if (name == "rocksdb")
        return std::make_unique<RocksDbWorkload>(config);
    if (name == "redis")
        return std::make_unique<RedisWorkload>(config);
    if (name == "filebench")
        return std::make_unique<FilebenchWorkload>(config);
    if (name == "cassandra")
        return std::make_unique<CassandraWorkload>(config);
    if (name == "spark")
        return std::make_unique<SparkWorkload>(config);
    if (name == "varmail")
        return std::make_unique<VarmailWorkload>(config);  // extension
    if (name == "webserver")
        return std::make_unique<WebserverWorkload>(config);  // extension
    if (name == "thrash")
        return std::make_unique<ThrashWorkload>(config);  // extension
    fatal("unknown workload '%s'", name.c_str());
}

std::vector<std::string>
workloadNames()
{
    return {"rocksdb", "redis", "filebench", "cassandra", "spark"};
}

void
Workload::rotateCpu(System &sys)
{
    Machine &machine = sys.machine();
    if (_config.cpus.empty()) {
        machine.setCurrentCpu(
            static_cast<unsigned>(_cpuCursor % machine.cpuCount()));
    } else {
        machine.setCurrentCpu(
            _config.cpus[_cpuCursor % _config.cpus.size()]);
    }
    ++_cpuCursor;
}

Frame *
Workload::appAlloc(System &sys)
{
    Frame *frame = sys.heap().allocAppPage();
    if (!frame) {
        sys.fs().reclaimPages(FrameCount{64});
        frame = sys.heap().allocAppPage();
    }
    return frame;
}

void
Workload::growArena(System &sys, uint64_t count)
{
    // THP mode: back the arena with order-9 (2 MB) blocks where the
    // requested size allows, falling back to base pages.
    constexpr unsigned kHugeOrder = 9;
    uint64_t remaining = count;
    while (remaining > 0) {
        Frame *frame = nullptr;
        if (_config.hugePages && remaining >= (1ULL << kHugeOrder)) {
            frame = sys.heap().allocAppPages(kHugeOrder);
        }
        if (!frame)
            frame = appAlloc(sys);
        if (!frame) {
            warn("workload %s: app arena truncated at %llu pages",
                 name(), static_cast<unsigned long long>(_arena.size()));
            return;
        }
        // First-touch (fault + zero).
        sys.mem().touch(frame, frame->bytes(), AccessType::Write);
        remaining -= std::min(remaining, frame->pages().value());
        _arena.push_back(frame);
    }
}

void
Workload::touchArena(System &sys, uint64_t idx, Bytes bytes,
                     AccessType type)
{
    if (_arena.empty())
        return;
    Frame *frame = _arena[idx % _arena.size()];
    sys.mem().touch(frame, bytes, type);
}

void
Workload::releaseArena(System &sys)
{
    for (Frame *frame : _arena)
        sys.heap().freeAppPage(frame);
    _arena.clear();
}

void
Workload::teardown(System &sys)
{
    releaseArena(sys);
}

int
FdCache::get(System &sys, const std::string &name)
{
    for (size_t i = 0; i < _entries.size(); ++i) {
        if (_entries[i].first == name) {
            auto entry = _entries[i];
            _entries.erase(_entries.begin() +
                           static_cast<ptrdiff_t>(i));
            _entries.insert(_entries.begin(), entry);
            return entry.second;
        }
    }
    const int fd = sys.fs().open(name);
    if (fd < 0)
        return -1;
    _entries.insert(_entries.begin(), {name, fd});
    while (_entries.size() > _capacity) {
        sys.fs().close(_entries.back().second);
        _entries.pop_back();
    }
    return fd;
}

void
FdCache::drop(System &sys, const std::string &name)
{
    for (size_t i = 0; i < _entries.size(); ++i) {
        if (_entries[i].first == name) {
            sys.fs().close(_entries[i].second);
            _entries.erase(_entries.begin() +
                           static_cast<ptrdiff_t>(i));
            return;
        }
    }
}

void
FdCache::clear(System &sys)
{
    for (auto &[name, fd] : _entries)
        sys.fs().close(fd);
    _entries.clear();
}

} // namespace kloc
