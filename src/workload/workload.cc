#include "workload/workload.hh"

#include <algorithm>

#include "base/logging.hh"
#include "workload/cassandra.hh"
#include "workload/filebench.hh"
#include "workload/redis.hh"
#include "workload/rocksdb.hh"
#include "workload/spark.hh"
#include "workload/thrash.hh"
#include "workload/varmail.hh"
#include "workload/webserver.hh"

namespace kloc {

std::unique_ptr<Workload>
makeWorkload(const std::string &name, const WorkloadConfig &config)
{
    if (name == "rocksdb")
        return std::make_unique<RocksDbWorkload>(config);
    if (name == "redis")
        return std::make_unique<RedisWorkload>(config);
    if (name == "filebench")
        return std::make_unique<FilebenchWorkload>(config);
    if (name == "cassandra")
        return std::make_unique<CassandraWorkload>(config);
    if (name == "spark")
        return std::make_unique<SparkWorkload>(config);
    if (name == "varmail")
        return std::make_unique<VarmailWorkload>(config);  // extension
    if (name == "webserver")
        return std::make_unique<WebserverWorkload>(config);  // extension
    if (name == "thrash")
        return std::make_unique<ThrashWorkload>(config);  // extension
    fatal("unknown workload '%s'", name.c_str());
}

std::vector<std::string>
workloadNames()
{
    return {"rocksdb", "redis", "filebench", "cassandra", "spark"};
}

void
Workload::rotateCpu(System &sys)
{
    Machine &machine = sys.machine();
    if (_config.cpus.empty()) {
        machine.setCurrentCpu(
            static_cast<unsigned>(_cpuCursor % machine.cpuCount()));
    } else {
        machine.setCurrentCpu(
            _config.cpus[_cpuCursor % _config.cpus.size()]);
    }
    ++_cpuCursor;
}

Frame *
Workload::appAlloc(System &sys)
{
    Frame *frame = sys.heap().allocAppPage();
    if (!frame) {
        sys.fs().reclaimPages(FrameCount{64});
        frame = sys.heap().allocAppPage();
    }
    return frame;
}

void
Workload::growArena(System &sys, uint64_t count)
{
    // THP mode: back the arena with order-9 (2 MB) blocks where the
    // requested size allows, falling back to base pages.
    constexpr unsigned kHugeOrder = 9;
    uint64_t remaining = count;
    while (remaining > 0) {
        Frame *frame = nullptr;
        if (_config.hugePages && remaining >= (1ULL << kHugeOrder)) {
            frame = sys.heap().allocAppPages(kHugeOrder);
        }
        if (!frame)
            frame = appAlloc(sys);
        if (!frame) {
            warn("workload %s: app arena truncated at %llu pages",
                 name(), static_cast<unsigned long long>(_arena.size()));
            return;
        }
        // First-touch (fault + zero).
        sys.mem().touch(frame, frame->bytes(), AccessType::Write);
        remaining -= std::min(remaining, frame->pages().value());
        _arena.push_back(frame);
    }
}

void
Workload::touchArena(System &sys, uint64_t idx, Bytes bytes,
                     AccessType type)
{
    if (_arena.empty())
        return;
    Frame *frame = _arena[idx % _arena.size()];
    sys.mem().touch(frame, bytes, type);
}

void
Workload::releaseArena(System &sys)
{
    for (Frame *frame : _arena)
        sys.heap().freeAppPage(frame);
    _arena.clear();
}

void
Workload::teardown(System &sys)
{
    releaseArena(sys);
}

void
Workload::beginShards(System &sys, unsigned shards, uint64_t total_ops)
{
    KLOC_ASSERT(shards >= 1, "sharded run needs at least one shard");
    _shardSys = &sys;
    _slices.assign(shards, ShardSlice{});
    const uint64_t base = total_ops / shards;
    const uint64_t extra = total_ops % shards;
    for (unsigned i = 0; i < shards; ++i) {
        _slices[i].rng = Rng(shardSeed(i));
        _slices[i].quota = base + (i < extra ? 1 : 0);
    }
}

void
Workload::setupShards(System &sys, unsigned shards)
{
    beginShards(sys, shards, _config.operations);
}

void
Workload::shardEpoch(ShardContext &, uint64_t)
{
    fatal("workload '%s' has no ShardContext body", name());
}

void
Workload::shardBarrier(System &, uint64_t)
{
}

bool
Workload::shardsDone() const
{
    for (const ShardSlice &slice : _slices) {
        if (slice.done < slice.quota)
            return false;
    }
    return true;
}

uint64_t
Workload::shardOpsDone() const
{
    uint64_t done = 0;
    for (const ShardSlice &slice : _slices)
        done += slice.done;
    return done;
}

void
Workload::shardTouchArena(ShardContext &shard, ShardSlice &slice,
                          uint64_t idx, Bytes bytes, AccessType type)
{
    Frame *frame = arenaFrame(idx);
    if (!frame)
        return;
    const RefDomain domain = isKernelClass(frame->objClass)
        ? RefDomain::Kernel
        : RefDomain::User;
    shard.access(frame->tier, bytes, type, domain);
    slice.touches.push_back({idx, type});
}

void
Workload::postShardApply(ShardContext &shard, uint64_t kind)
{
    shard.post(ShardMessage{kind, [this, i = shard.id()] {
        applyShardOpsAtBarrier(*_shardSys, i);
    }});
}

void
Workload::applyShardOpsAtBarrier(System &sys, unsigned slice_index)
{
    ShardSlice &slice = _slices.at(slice_index);
    for (const ShardSlice::Touch &touch : slice.touches) {
        if (Frame *frame = arenaFrame(touch.idx))
            sys.mem().markTouched(frame, touch.type);
    }
    slice.touches.clear();
}

int
FdCache::get(System &sys, const std::string &name)
{
    for (size_t i = 0; i < _entries.size(); ++i) {
        if (_entries[i].first == name) {
            auto entry = _entries[i];
            _entries.erase(_entries.begin() +
                           static_cast<ptrdiff_t>(i));
            _entries.insert(_entries.begin(), entry);
            return entry.second;
        }
    }
    const int fd = sys.fs().open(name);
    if (fd < 0)
        return -1;
    _entries.insert(_entries.begin(), {name, fd});
    while (_entries.size() > _capacity) {
        sys.fs().close(_entries.back().second);
        _entries.pop_back();
    }
    return fd;
}

void
FdCache::drop(System &sys, const std::string &name)
{
    for (size_t i = 0; i < _entries.size(); ++i) {
        if (_entries[i].first != name)
            continue;
        // Finish the container update before the close: fs calls can
        // re-enter via daemons.
        const int fd = _entries[i].second;
        _entries.erase(_entries.begin() + static_cast<ptrdiff_t>(i));
        sys.fs().close(fd);
        return;
    }
}

void
FdCache::clear(System &sys)
{
    std::vector<std::pair<std::string, int>> entries;
    entries.swap(_entries);
    for (auto &[name, fd] : entries)
        sys.fs().close(fd);
}

} // namespace kloc
