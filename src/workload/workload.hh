/**
 * @file
 * Workload driver interface and common machinery.
 *
 * Each driver reproduces the kernel-object footprint, lifetime, and
 * reuse pattern of one Table 3 application: the syscall mix, file
 * sizes, socket traffic, and app-memory behaviour — not the
 * application's business logic. Paper-scale datasets are divided by
 * the platform scale factor.
 *
 * All drivers are deterministic given their seed and rotate across
 * the configured CPUs to emulate the 16 worker threads.
 */

#ifndef KLOC_WORKLOAD_WORKLOAD_HH
#define KLOC_WORKLOAD_WORKLOAD_HH

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "base/rng.hh"
#include "platform/system.hh"
#include "sim/shard.hh"

namespace kloc {

/** Outcome of one measured workload run. */
struct WorkloadResult
{
    uint64_t operations = 0;
    Tick elapsed{};

    /** Operations per virtual second. */
    double
    throughput() const
    {
        return elapsed <= 0
            ? 0.0
            : static_cast<double>(operations) /
              (static_cast<double>(elapsed) /
               static_cast<double>(kSecond));
    }
};

/** Scaling knobs shared by every driver. */
struct WorkloadConfig
{
    /** Linear scale divisor vs. paper-size datasets. */
    unsigned scale = 64;
    /** Measured operations (driver-specific meaning). */
    uint64_t operations = 60000;
    /** Use the 10 GB "Small" inputs instead of 40 GB "Large". */
    bool smallInput = false;
    /** Back the app arena with 2 MB transparent huge pages (§5). */
    bool hugePages = false;
    uint64_t seed = 42;
    /** CPUs to rotate over; empty = all CPUs of the machine. */
    std::vector<unsigned> cpus;
};

/**
 * Per-shard slice of a sharded workload run: the common half of the
 * per-run mutable state every driver moves out of its op loop when
 * porting to ShardContext bodies (docs/SHARDING.md). Shard bodies may
 * mutate only their own slice; everything a slice wants done to
 * shared state is logged here and replayed serially at the barrier.
 */
struct ShardSlice
{
    /** One arena touch priced mid-epoch, reference bits pending. */
    struct Touch
    {
        uint64_t idx;
        AccessType type;
    };

    Rng rng{0};
    /** Measured operations this slice owns for the whole run. */
    uint64_t quota = 0;
    /** Operations completed across all epochs so far. */
    uint64_t done = 0;
    /** Arena touches of the current epoch, replayed at the barrier. */
    std::vector<Touch> touches;

    uint64_t remaining() const { return quota - done; }
};

/** A runnable workload driver. */
class Workload
{
  public:
    explicit Workload(const WorkloadConfig &config)
        : _config(config), _rng(config.seed)
    {}

    virtual ~Workload() = default;

    virtual const char *name() const = 0;

    /** Build the dataset (load phase, not measured). */
    virtual void setup(System &sys) = 0;

    /** Measured phase. */
    virtual WorkloadResult run(System &sys) = 0;

    /** Release app memory and scratch files (after measuring). */
    virtual void teardown(System &sys);

    const WorkloadConfig &config() const { return _config; }

    /**
     * Re-pin the worker CPU rotation (e.g. after the scheduler moved
     * the task to another socket on the Optane platform).
     */
    void setCpus(std::vector<unsigned> cpus) { _config.cpus = std::move(cpus); }

    // -- sharded execution (ShardContext port; docs/SHARDING.md) ----------

    /** True when the driver implements the ShardContext body. */
    virtual bool shardable() const { return false; }

    /**
     * Partition the per-run mutable state into @p shards slices.
     * Runs serially after setup(); the default builds the common
     * slices with an even quota split of config().operations.
     * Drivers override to add their own per-shard state and call
     * beginShards() first.
     */
    virtual void setupShards(System &sys, unsigned shards);

    /**
     * One shard's epoch body. Runs concurrently with other shards:
     * it may mutate only its own slice and ShardContext, read shared
     * driver state built before the epoch, and must route every
     * shared-state effect through the slice logs posted to the epoch
     * mailbox (postShardApply).
     */
    virtual void shardEpoch(ShardContext &shard, uint64_t epoch);

    /**
     * Serial barrier step, after all mailbox applies: global phase
     * machinery (memtable flushes, compaction, checkpoints).
     */
    virtual void shardBarrier(System &sys, uint64_t epoch);

    /** All slices have completed their measured work. */
    virtual bool shardsDone() const;

    /** Operations completed so far across all slices. */
    uint64_t shardOpsDone() const;

    /** Per-shard ops per epoch; sized by the runner. */
    void setShardEpochOps(uint64_t ops) { _shardEpochOps = ops; }

  protected:
    /** Move the thread of control to the next worker CPU. */
    void rotateCpu(System &sys);

    /** Scale @p paper_bytes down by the configured factor. */
    Bytes
    scaled(Bytes paper_bytes) const
    {
        const Bytes b = paper_bytes / _config.scale;
        return b < kPageSize ? kPageSize : b;
    }

    /** Allocate one app page (reclaiming page cache on pressure). */
    Frame *appAlloc(System &sys);

    /** Allocate @p count app pages into the arena. */
    void growArena(System &sys, uint64_t count);

    /** Touch @p bytes of the @p idx-th arena page. */
    void touchArena(System &sys, uint64_t idx, Bytes bytes,
                    AccessType type);

    uint64_t arenaSize() const { return _arena.size(); }

    void releaseArena(System &sys);

    // -- sharded-port building blocks -------------------------------------

    /** Message kind for the per-slice deferred-effect replay. */
    static constexpr uint64_t kMsgShardOps = 0x51;

    /** Build the common slices: even quotas, decorrelated seeds. */
    void beginShards(System &sys, unsigned shards, uint64_t total_ops);

    /** Slice seed: decorrelated per shard, stable per config. */
    uint64_t
    shardSeed(unsigned shard) const
    {
        return _config.seed + 0x9e3779b97f4a7c15ULL * (shard + 1);
    }

    /** Ops this slice should run in the current epoch. */
    uint64_t
    epochQuota(const ShardSlice &slice) const
    {
        return std::min(slice.remaining(), _shardEpochOps);
    }

    /**
     * Arena frame for shard bodies. Frames have stable identity and
     * their tier mutates only at barriers, so reading @c frame->tier
     * mid-epoch is race-free; reference bits are deferred.
     */
    Frame *
    arenaFrame(uint64_t idx) const
    {
        return _arena.empty() ? nullptr : _arena[idx % _arena.size()];
    }

    /**
     * Price an arena touch against the shard-local clock (the shared
     * MemoryModel is const mid-epoch) and log the touch so the
     * barrier replay applies its reference-bit/dirty side effects.
     */
    void shardTouchArena(ShardContext &shard, ShardSlice &slice,
                         uint64_t idx, Bytes bytes, AccessType type);

    /**
     * Post this slice's deferred effects to the epoch mailbox. The
     * barrier drains mailboxes in (shard, posting) order and runs
     * applyShardOpsAtBarrier serially against the global platform.
     */
    void postShardApply(ShardContext &shard, uint64_t kind = kMsgShardOps);

    /**
     * Apply one slice's deferred effects at the barrier. The default
     * replays the arena-touch log; overrides run the driver's own
     * deferred kernel ops (fs/net) and call the base.
     */
    virtual void applyShardOpsAtBarrier(System &sys, unsigned slice_index);

    WorkloadConfig _config;
    Rng _rng;
    /** Common per-shard slices of the current sharded run. */
    std::vector<ShardSlice> _slices;
    /** Platform of the current sharded run (for mailbox applies). */
    System *_shardSys = nullptr;
    /** Per-shard ops per epoch (runner-sized). */
    uint64_t _shardEpochOps = 256;

  private:
    std::vector<Frame *> _arena;
    size_t _cpuCursor = 0;
};

/**
 * LRU cache of open file descriptors, like RocksDB's table cache:
 * files are opened on demand and closed when evicted, producing the
 * open/close (knode active/inactive) churn the paper exploits.
 */
class FdCache
{
  public:
    explicit FdCache(size_t capacity) : _capacity(capacity) {}

    /** fd for @p name, opening it if needed; -1 when absent. */
    int get(System &sys, const std::string &name);

    /** Close and forget @p name if cached (before unlink). */
    void drop(System &sys, const std::string &name);

    /** Close everything. */
    void clear(System &sys);

    size_t size() const { return _entries.size(); }

  private:
    size_t _capacity;
    /** MRU-first list of (name, fd). */
    std::vector<std::pair<std::string, int>> _entries;
};

/** Construct a driver by name ("rocksdb", "redis", ...). */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       const WorkloadConfig &config);

/** All registered workload names, in Table 3 order. */
std::vector<std::string> workloadNames();

} // namespace kloc

#endif // KLOC_WORKLOAD_WORKLOAD_HH
