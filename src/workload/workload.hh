/**
 * @file
 * Workload driver interface and common machinery.
 *
 * Each driver reproduces the kernel-object footprint, lifetime, and
 * reuse pattern of one Table 3 application: the syscall mix, file
 * sizes, socket traffic, and app-memory behaviour — not the
 * application's business logic. Paper-scale datasets are divided by
 * the platform scale factor.
 *
 * All drivers are deterministic given their seed and rotate across
 * the configured CPUs to emulate the 16 worker threads.
 */

#ifndef KLOC_WORKLOAD_WORKLOAD_HH
#define KLOC_WORKLOAD_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "base/rng.hh"
#include "platform/system.hh"

namespace kloc {

/** Outcome of one measured workload run. */
struct WorkloadResult
{
    uint64_t operations = 0;
    Tick elapsed{};

    /** Operations per virtual second. */
    double
    throughput() const
    {
        return elapsed <= 0
            ? 0.0
            : static_cast<double>(operations) /
              (static_cast<double>(elapsed) /
               static_cast<double>(kSecond));
    }
};

/** Scaling knobs shared by every driver. */
struct WorkloadConfig
{
    /** Linear scale divisor vs. paper-size datasets. */
    unsigned scale = 64;
    /** Measured operations (driver-specific meaning). */
    uint64_t operations = 60000;
    /** Use the 10 GB "Small" inputs instead of 40 GB "Large". */
    bool smallInput = false;
    /** Back the app arena with 2 MB transparent huge pages (§5). */
    bool hugePages = false;
    uint64_t seed = 42;
    /** CPUs to rotate over; empty = all CPUs of the machine. */
    std::vector<unsigned> cpus;
};

/** A runnable workload driver. */
class Workload
{
  public:
    explicit Workload(const WorkloadConfig &config)
        : _config(config), _rng(config.seed)
    {}

    virtual ~Workload() = default;

    virtual const char *name() const = 0;

    /** Build the dataset (load phase, not measured). */
    virtual void setup(System &sys) = 0;

    /** Measured phase. */
    virtual WorkloadResult run(System &sys) = 0;

    /** Release app memory and scratch files (after measuring). */
    virtual void teardown(System &sys);

    const WorkloadConfig &config() const { return _config; }

    /**
     * Re-pin the worker CPU rotation (e.g. after the scheduler moved
     * the task to another socket on the Optane platform).
     */
    void setCpus(std::vector<unsigned> cpus) { _config.cpus = std::move(cpus); }

  protected:
    /** Move the thread of control to the next worker CPU. */
    void rotateCpu(System &sys);

    /** Scale @p paper_bytes down by the configured factor. */
    Bytes
    scaled(Bytes paper_bytes) const
    {
        const Bytes b = paper_bytes / _config.scale;
        return b < kPageSize ? kPageSize : b;
    }

    /** Allocate one app page (reclaiming page cache on pressure). */
    Frame *appAlloc(System &sys);

    /** Allocate @p count app pages into the arena. */
    void growArena(System &sys, uint64_t count);

    /** Touch @p bytes of the @p idx-th arena page. */
    void touchArena(System &sys, uint64_t idx, Bytes bytes,
                    AccessType type);

    uint64_t arenaSize() const { return _arena.size(); }

    void releaseArena(System &sys);

    WorkloadConfig _config;
    Rng _rng;

  private:
    std::vector<Frame *> _arena;
    size_t _cpuCursor = 0;
};

/**
 * LRU cache of open file descriptors, like RocksDB's table cache:
 * files are opened on demand and closed when evicted, producing the
 * open/close (knode active/inactive) churn the paper exploits.
 */
class FdCache
{
  public:
    explicit FdCache(size_t capacity) : _capacity(capacity) {}

    /** fd for @p name, opening it if needed; -1 when absent. */
    int get(System &sys, const std::string &name);

    /** Close and forget @p name if cached (before unlink). */
    void drop(System &sys, const std::string &name);

    /** Close everything. */
    void clear(System &sys);

    size_t size() const { return _entries.size(); }

  private:
    size_t _capacity;
    /** MRU-first list of (name, fd). */
    std::vector<std::pair<std::string, int>> _entries;
};

/** Construct a driver by name ("rocksdb", "redis", ...). */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       const WorkloadConfig &config);

/** All registered workload names, in Table 3 order. */
std::vector<std::string> workloadNames();

} // namespace kloc

#endif // KLOC_WORKLOAD_WORKLOAD_HH
