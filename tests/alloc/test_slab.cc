/**
 * @file
 * Slab allocator tests: packing, slab lifecycle (partial/full/empty),
 * frame accounting, KLOC-mode group isolation, and relocatability.
 */

#include <gtest/gtest.h>

#include <vector>

#include "alloc/slab.hh"
#include "mem/accessor.hh"
#include "sim/machine.hh"

namespace kloc {
namespace {

class SlabTest : public ::testing::Test
{
  protected:
    SlabTest()
        : machine(4, 1), tiers(machine), lru(machine, tiers),
          mem(machine, lru)
    {
        TierSpec spec;
        spec.name = "fast";
        spec.capacity = 64 * kPageSize;
        spec.readLatency = Tick{80};
        spec.writeLatency = Tick{80};
        spec.readBandwidth = 10 * kGiB;
        spec.writeBandwidth = 10 * kGiB;
        fastId = tiers.addTier(spec);
        spec.name = "slow";
        spec.capacity = 64 * kPageSize;
        slowId = tiers.addTier(spec);
    }

    Machine machine;
    TierManager tiers;
    LruEngine lru;
    MemAccessor mem;
    TierId fastId = kInvalidTier;
    TierId slowId = kInvalidTier;
};

TEST_F(SlabTest, ObjectsPackIntoOneSlabPage)
{
    KmemCache cache(mem, tiers, "test256", Bytes{256}, ObjClass::FsSlab);
    EXPECT_EQ(cache.objsPerSlab(), kPageSize / 256);

    std::vector<SlabRef> refs;
    for (uint64_t i = 0; i < cache.objsPerSlab(); ++i) {
        SlabRef ref = cache.alloc({fastId});
        ASSERT_TRUE(ref.valid());
        refs.push_back(ref);
    }
    EXPECT_EQ(cache.livePages(), 1u);
    EXPECT_EQ(cache.liveObjects(), cache.objsPerSlab());
    // All objects share the single backing frame.
    for (const SlabRef &ref : refs)
        EXPECT_EQ(ref.frame, refs[0].frame);
    // One more overflows to a second slab.
    SlabRef extra = cache.alloc({fastId});
    EXPECT_EQ(cache.livePages(), 2u);
    EXPECT_NE(extra.frame, refs[0].frame);

    cache.free(extra);
    for (SlabRef &ref : refs)
        cache.free(ref);
    EXPECT_EQ(cache.liveObjects(), 0u);
}

TEST_F(SlabTest, FreeInvalidatesRef)
{
    KmemCache cache(mem, tiers, "t", Bytes{128}, ObjClass::FsSlab);
    SlabRef ref = cache.alloc({fastId});
    ASSERT_TRUE(ref.valid());
    cache.free(ref);
    EXPECT_FALSE(ref.valid());
}

TEST_F(SlabTest, EmptySlabsRetainedThenReleased)
{
    KmemCache cache(mem, tiers, "t", Bytes{2048}, ObjClass::FsSlab);
    const uint64_t baseline = tiers.liveFrames();
    std::vector<SlabRef> refs;
    for (int i = 0; i < 10; ++i)
        refs.push_back(cache.alloc({fastId}));
    EXPECT_EQ(cache.livePages(), 5u);
    for (SlabRef &ref : refs)
        cache.free(ref);
    // At most kEmptyRetention empty slabs stay cached.
    EXPECT_LE(tiers.liveFrames() - baseline, KmemCache::kEmptyRetention);
}

TEST_F(SlabTest, LegacySlabsAreNotRelocatable)
{
    KmemCache cache(mem, tiers, "t", Bytes{512}, ObjClass::FsSlab);
    SlabRef ref = cache.alloc({fastId});
    EXPECT_FALSE(ref.frame->relocatable);
    cache.free(ref);
}

TEST_F(SlabTest, KlocModeSlabsAreRelocatable)
{
    KmemCache cache(mem, tiers, "t", Bytes{512}, ObjClass::FsSlab);
    cache.setKlocMode(true);
    SlabRef ref = cache.alloc({fastId}, 1);
    EXPECT_TRUE(ref.frame->relocatable);
    cache.free(ref);
}

TEST_F(SlabTest, GroupsGetSeparateSlabs)
{
    KmemCache cache(mem, tiers, "t", Bytes{256}, ObjClass::FsSlab);
    cache.setKlocMode(true);
    SlabRef group1 = cache.alloc({fastId}, 1);
    SlabRef group2 = cache.alloc({fastId}, 2);
    SlabRef group1_again = cache.alloc({fastId}, 1);
    EXPECT_NE(group1.frame, group2.frame)
        << "different knodes shared a slab page";
    EXPECT_EQ(group1.frame, group1_again.frame)
        << "same knode did not co-locate";
    cache.free(group1);
    cache.free(group2);
    cache.free(group1_again);
}

TEST_F(SlabTest, TierPreferenceAppliesToNewSlabs)
{
    // Full-page objects force a fresh slab per allocation, so the
    // tier preference governs each one. (Partially-full slabs are
    // reused regardless of preference, like a real slab allocator.)
    KmemCache cache(mem, tiers, "t", kPageSize, ObjClass::SockBuf);
    SlabRef fast_ref = cache.alloc({fastId, slowId});
    EXPECT_EQ(fast_ref.frame->tier, fastId);
    SlabRef slow_ref = cache.alloc({slowId, fastId});
    EXPECT_EQ(slow_ref.frame->tier, slowId);
    cache.free(fast_ref);
    cache.free(slow_ref);
}

TEST_F(SlabTest, ExhaustionReturnsInvalidRef)
{
    // Tiny tier dedicated to this test.
    Machine m(1, 1);
    TierManager t(m);
    LruEngine l(m, t);
    MemAccessor acc(m, l);
    TierSpec spec;
    spec.name = "tiny";
    spec.capacity = 2 * kPageSize;
    spec.readLatency = Tick{80};
    spec.writeLatency = Tick{80};
    spec.readBandwidth = kGiB;
    spec.writeBandwidth = kGiB;
    const TierId tiny = t.addTier(spec);
    KmemCache cache(acc, t, "t", kPageSize, ObjClass::FsSlab);
    SlabRef a = cache.alloc({tiny});
    SlabRef b = cache.alloc({tiny});
    SlabRef c = cache.alloc({tiny});
    EXPECT_TRUE(a.valid());
    EXPECT_TRUE(b.valid());
    EXPECT_FALSE(c.valid());
    cache.free(a);
    cache.free(b);
}

TEST_F(SlabTest, AllocChargesTime)
{
    KmemCache cache(mem, tiers, "t", Bytes{256}, ObjClass::FsSlab);
    const Tick before = machine.now();
    SlabRef ref = cache.alloc({fastId});
    EXPECT_GT(machine.now(), before);
    cache.free(ref);
}

TEST_F(SlabTest, StatsTrackCumulativeAllocs)
{
    KmemCache cache(mem, tiers, "t", Bytes{256}, ObjClass::FsSlab);
    std::vector<SlabRef> refs;
    for (int i = 0; i < 5; ++i)
        refs.push_back(cache.alloc({fastId}));
    for (SlabRef &ref : refs)
        cache.free(ref);
    EXPECT_EQ(cache.totalAllocs(), 5u);
    EXPECT_EQ(cache.liveObjects(), 0u);
}

TEST_F(SlabTest, DestructorReleasesFrames)
{
    const uint64_t baseline = tiers.liveFrames();
    {
        KmemCache cache(mem, tiers, "t", Bytes{256}, ObjClass::FsSlab);
        for (int i = 0; i < 40; ++i)
            cache.alloc({fastId});  // intentionally leaked objects
        EXPECT_GT(tiers.liveFrames(), baseline);
    }
    EXPECT_EQ(tiers.liveFrames(), baseline)
        << "cache destructor leaked simulated frames";
}

} // namespace
} // namespace kloc
