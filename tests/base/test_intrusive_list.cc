/**
 * @file
 * Intrusive list tests: linkage discipline, LRU-style rotations,
 * reverse traversal, and size bookkeeping.
 */

#include <gtest/gtest.h>

#include <vector>

#include "base/intrusive_list.hh"

namespace kloc {
namespace {

struct Node
{
    explicit Node(int v) : value(v) {}

    int value;
    ListHook hook;
};

using List = IntrusiveList<Node, &Node::hook>;

TEST(IntrusiveList, EmptyList)
{
    List list;
    EXPECT_TRUE(list.empty());
    EXPECT_EQ(list.size(), 0u);
    EXPECT_EQ(list.front(), nullptr);
    EXPECT_EQ(list.back(), nullptr);
    EXPECT_EQ(list.popFront(), nullptr);
    EXPECT_EQ(list.popBack(), nullptr);
}

TEST(IntrusiveList, PushFrontBackOrdering)
{
    List list;
    Node a(1), b(2), c(3);
    list.pushFront(&a);   // [a]
    list.pushBack(&b);    // [a b]
    list.pushFront(&c);   // [c a b]
    EXPECT_EQ(list.size(), 3u);
    EXPECT_EQ(list.front(), &c);
    EXPECT_EQ(list.back(), &b);

    std::vector<int> seen;
    for (Node *node : list)
        seen.push_back(node->value);
    EXPECT_EQ(seen, (std::vector<int>{3, 1, 2}));
}

TEST(IntrusiveList, LinkedFlagTracksMembership)
{
    List list;
    Node a(1);
    EXPECT_FALSE(a.hook.linked());
    list.pushBack(&a);
    EXPECT_TRUE(a.hook.linked());
    list.remove(&a);
    EXPECT_FALSE(a.hook.linked());
}

TEST(IntrusiveList, MoveToFrontRotation)
{
    List list;
    Node a(1), b(2), c(3);
    list.pushBack(&a);
    list.pushBack(&b);
    list.pushBack(&c);
    list.moveToFront(&c);  // [c a b]
    EXPECT_EQ(list.front(), &c);
    EXPECT_EQ(list.back(), &b);
    EXPECT_EQ(list.size(), 3u);
    list.moveToFront(&c);  // no-op rotation
    EXPECT_EQ(list.front(), &c);
}

TEST(IntrusiveList, PopBothEnds)
{
    List list;
    Node a(1), b(2), c(3);
    list.pushBack(&a);
    list.pushBack(&b);
    list.pushBack(&c);
    EXPECT_EQ(list.popFront(), &a);
    EXPECT_EQ(list.popBack(), &c);
    EXPECT_EQ(list.popFront(), &b);
    EXPECT_TRUE(list.empty());
}

TEST(IntrusiveList, PrevWalksBackward)
{
    List list;
    Node a(1), b(2), c(3);
    list.pushBack(&a);
    list.pushBack(&b);
    list.pushBack(&c);
    // Walk from the cold (back) end to the front.
    std::vector<int> seen;
    for (Node *node = list.back(); node; node = list.prev(node))
        seen.push_back(node->value);
    EXPECT_EQ(seen, (std::vector<int>{3, 2, 1}));
}

TEST(IntrusiveList, RemoveMiddleKeepsNeighbors)
{
    List list;
    Node a(1), b(2), c(3);
    list.pushBack(&a);
    list.pushBack(&b);
    list.pushBack(&c);
    list.remove(&b);
    EXPECT_EQ(list.size(), 2u);
    EXPECT_EQ(list.prev(list.back()), &a);
    std::vector<int> seen;
    for (Node *node : list)
        seen.push_back(node->value);
    EXPECT_EQ(seen, (std::vector<int>{1, 3}));
}

TEST(IntrusiveList, NodeMovesBetweenLists)
{
    List list1, list2;
    Node a(1);
    list1.pushBack(&a);
    list1.remove(&a);
    list2.pushBack(&a);
    EXPECT_TRUE(list1.empty());
    EXPECT_EQ(list2.front(), &a);
}

TEST(IntrusiveList, StressChurn)
{
    List list;
    std::vector<Node> nodes;
    nodes.reserve(1000);
    for (int i = 0; i < 1000; ++i)
        nodes.emplace_back(i);
    for (auto &node : nodes)
        list.pushBack(&node);
    EXPECT_EQ(list.size(), 1000u);
    // Remove the evens, rotate the odds.
    for (auto &node : nodes) {
        if (node.value % 2 == 0)
            list.remove(&node);
        else
            list.moveToFront(&node);
    }
    EXPECT_EQ(list.size(), 500u);
    // The last-rotated odd value is at the front.
    EXPECT_EQ(list.front()->value, 999);
}

} // namespace
} // namespace kloc
