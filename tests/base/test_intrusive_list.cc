/**
 * @file
 * Intrusive list tests: linkage discipline, LRU-style rotations,
 * reverse traversal, and size bookkeeping.
 */

#include <gtest/gtest.h>

#include <vector>

#include "base/intrusive_list.hh"

namespace kloc {
namespace {

struct Node
{
    explicit Node(int v) : value(v) {}

    int value;
    ListHook hook;
};

using List = IntrusiveList<Node, &Node::hook>;

TEST(IntrusiveList, EmptyList)
{
    List list;
    EXPECT_TRUE(list.empty());
    EXPECT_EQ(list.size(), 0u);
    EXPECT_EQ(list.front(), nullptr);
    EXPECT_EQ(list.back(), nullptr);
    EXPECT_EQ(list.popFront(), nullptr);
    EXPECT_EQ(list.popBack(), nullptr);
}

TEST(IntrusiveList, PushFrontBackOrdering)
{
    List list;
    Node a(1), b(2), c(3);
    list.pushFront(&a);   // [a]
    list.pushBack(&b);    // [a b]
    list.pushFront(&c);   // [c a b]
    EXPECT_EQ(list.size(), 3u);
    EXPECT_EQ(list.front(), &c);
    EXPECT_EQ(list.back(), &b);

    std::vector<int> seen;
    for (Node *node : list)
        seen.push_back(node->value);
    EXPECT_EQ(seen, (std::vector<int>{3, 1, 2}));
}

TEST(IntrusiveList, LinkedFlagTracksMembership)
{
    List list;
    Node a(1);
    EXPECT_FALSE(a.hook.linked());
    list.pushBack(&a);
    EXPECT_TRUE(a.hook.linked());
    list.remove(&a);
    EXPECT_FALSE(a.hook.linked());
}

TEST(IntrusiveList, MoveToFrontRotation)
{
    List list;
    Node a(1), b(2), c(3);
    list.pushBack(&a);
    list.pushBack(&b);
    list.pushBack(&c);
    list.moveToFront(&c);  // [c a b]
    EXPECT_EQ(list.front(), &c);
    EXPECT_EQ(list.back(), &b);
    EXPECT_EQ(list.size(), 3u);
    list.moveToFront(&c);  // no-op rotation
    EXPECT_EQ(list.front(), &c);
}

TEST(IntrusiveList, MoveToBackRotation)
{
    List list;
    Node a(1), b(2), c(3);
    list.pushBack(&a);
    list.pushBack(&b);
    list.pushBack(&c);
    list.moveToBack(&a);  // [b c a]
    EXPECT_EQ(list.front(), &b);
    EXPECT_EQ(list.back(), &a);
    EXPECT_EQ(list.size(), 3u);
    list.moveToBack(&a);  // already at the back: no-op
    EXPECT_EQ(list.back(), &a);
    std::vector<int> seen;
    for (Node *node : list)
        seen.push_back(node->value);
    EXPECT_EQ(seen, (std::vector<int>{2, 3, 1}));
}

TEST(IntrusiveList, MoveToFrontPreservesNeighborLinks)
{
    // The direct-relink rotation must leave the remaining chain
    // intact in both directions, including from a middle position.
    List list;
    Node a(1), b(2), c(3), d(4);
    list.pushBack(&a);
    list.pushBack(&b);
    list.pushBack(&c);
    list.pushBack(&d);
    list.moveToFront(&c);  // [c a b d]
    std::vector<int> forward;
    for (Node *node : list)
        forward.push_back(node->value);
    EXPECT_EQ(forward, (std::vector<int>{3, 1, 2, 4}));
    std::vector<int> backward;
    for (Node *node = list.back(); node; node = list.prev(node))
        backward.push_back(node->value);
    EXPECT_EQ(backward, (std::vector<int>{4, 2, 1, 3}));
}

TEST(IntrusiveList, SpliceBackAppendsAndEmptiesSource)
{
    List list1, list2;
    Node a(1), b(2), c(3), d(4);
    list1.pushBack(&a);
    list1.pushBack(&b);
    list2.pushBack(&c);
    list2.pushBack(&d);
    list1.spliceBack(list2);  // [a b c d], list2 empty
    EXPECT_TRUE(list2.empty());
    EXPECT_EQ(list2.size(), 0u);
    EXPECT_EQ(list1.size(), 4u);
    std::vector<int> seen;
    for (Node *node : list1)
        seen.push_back(node->value);
    EXPECT_EQ(seen, (std::vector<int>{1, 2, 3, 4}));
    // Back-pointer chain must be intact after the splice.
    std::vector<int> backward;
    for (Node *node = list1.back(); node; node = list1.prev(node))
        backward.push_back(node->value);
    EXPECT_EQ(backward, (std::vector<int>{4, 3, 2, 1}));
}

TEST(IntrusiveList, SpliceBackFromEmptyAndIntoEmpty)
{
    List list1, list2;
    Node a(1);
    list1.pushBack(&a);
    list1.spliceBack(list2);  // empty source: no-op
    EXPECT_EQ(list1.size(), 1u);
    EXPECT_EQ(list1.front(), &a);

    List list3;
    list3.spliceBack(list1);  // into empty destination
    EXPECT_TRUE(list1.empty());
    EXPECT_EQ(list3.size(), 1u);
    EXPECT_EQ(list3.front(), &a);
    EXPECT_EQ(list3.back(), &a);
}

TEST(IntrusiveList, SpliceIsConstantTime)
{
    // O(1) splice: splicing a long list must not touch its interior
    // nodes. Verify by value: interior hooks keep their neighbours.
    List list1, list2;
    std::vector<Node> nodes;
    nodes.reserve(10000);
    for (int i = 0; i < 10000; ++i)
        nodes.emplace_back(i);
    for (int i = 0; i < 5000; ++i)
        list1.pushBack(&nodes[static_cast<size_t>(i)]);
    for (int i = 5000; i < 10000; ++i)
        list2.pushBack(&nodes[static_cast<size_t>(i)]);
    list1.spliceBack(list2);
    EXPECT_EQ(list1.size(), 10000u);
    EXPECT_EQ(list1.front()->value, 0);
    EXPECT_EQ(list1.back()->value, 9999);
    // Spot-check the seam.
    Node *seam = &nodes[5000];
    EXPECT_EQ(list1.prev(seam)->value, 4999);
}

TEST(IntrusiveList, PopBothEnds)
{
    List list;
    Node a(1), b(2), c(3);
    list.pushBack(&a);
    list.pushBack(&b);
    list.pushBack(&c);
    EXPECT_EQ(list.popFront(), &a);
    EXPECT_EQ(list.popBack(), &c);
    EXPECT_EQ(list.popFront(), &b);
    EXPECT_TRUE(list.empty());
}

TEST(IntrusiveList, PrevWalksBackward)
{
    List list;
    Node a(1), b(2), c(3);
    list.pushBack(&a);
    list.pushBack(&b);
    list.pushBack(&c);
    // Walk from the cold (back) end to the front.
    std::vector<int> seen;
    for (Node *node = list.back(); node; node = list.prev(node))
        seen.push_back(node->value);
    EXPECT_EQ(seen, (std::vector<int>{3, 2, 1}));
}

TEST(IntrusiveList, RemoveMiddleKeepsNeighbors)
{
    List list;
    Node a(1), b(2), c(3);
    list.pushBack(&a);
    list.pushBack(&b);
    list.pushBack(&c);
    list.remove(&b);
    EXPECT_EQ(list.size(), 2u);
    EXPECT_EQ(list.prev(list.back()), &a);
    std::vector<int> seen;
    for (Node *node : list)
        seen.push_back(node->value);
    EXPECT_EQ(seen, (std::vector<int>{1, 3}));
}

TEST(IntrusiveList, NodeMovesBetweenLists)
{
    List list1, list2;
    Node a(1);
    list1.pushBack(&a);
    list1.remove(&a);
    list2.pushBack(&a);
    EXPECT_TRUE(list1.empty());
    EXPECT_EQ(list2.front(), &a);
}

TEST(IntrusiveList, StressChurn)
{
    List list;
    std::vector<Node> nodes;
    nodes.reserve(1000);
    for (int i = 0; i < 1000; ++i)
        nodes.emplace_back(i);
    for (auto &node : nodes)
        list.pushBack(&node);
    EXPECT_EQ(list.size(), 1000u);
    // Remove the evens, rotate the odds.
    for (auto &node : nodes) {
        if (node.value % 2 == 0)
            list.remove(&node);
        else
            list.moveToFront(&node);
    }
    EXPECT_EQ(list.size(), 500u);
    // The last-rotated odd value is at the front.
    EXPECT_EQ(list.front()->value, 999);
}

} // namespace
} // namespace kloc
