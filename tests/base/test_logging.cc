/**
 * @file
 * Logging tests: level filtering, fatal/panic termination semantics
 * (gem5 discipline: fatal = user error, clean exit; panic = internal
 * bug, abort), and the KLOC_ASSERT macro.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"

namespace kloc {
namespace {

TEST(Logging, LevelRoundTrip)
{
    Logger &logger = Logger::instance();
    const LogLevel before = logger.level();
    logger.setLevel(LogLevel::Debug);
    EXPECT_EQ(logger.level(), LogLevel::Debug);
    logger.setLevel(LogLevel::Error);
    EXPECT_EQ(logger.level(), LogLevel::Error);
    logger.setLevel(before);
}

TEST(LoggingDeath, FatalExitsCleanly)
{
    EXPECT_EXIT({ fatal("user misconfigured %s", "everything"); },
                ::testing::ExitedWithCode(1), "misconfigured");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH({ panic("impossible state %d", 42); }, "impossible");
}

TEST(LoggingDeath, AssertMacroCarriesContext)
{
    EXPECT_DEATH(
        {
            const int x = 3;
            KLOC_ASSERT(x == 4, "x was %d", x);
        },
        "x == 4");
}

TEST(Logging, AssertPassesSilently)
{
    KLOC_ASSERT(1 + 1 == 2, "arithmetic broke");
    SUCCEED();
}

} // namespace
} // namespace kloc
