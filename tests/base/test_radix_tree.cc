/**
 * @file
 * Radix tree tests: page-cache-style usage, tag propagation, gang
 * lookups, height growth/shrink, node-observer accounting, and a
 * property sweep against std::map.
 */

#include <gtest/gtest.h>

#include <map>

#include "base/radix_tree.hh"
#include "base/rng.hh"

namespace kloc {
namespace {

// klint:allow(no-mutable-global): address-only sentinels, never written — the tree stores void*, which rules out const objects
int value_a = 1, value_b = 2, value_c = 3;

TEST(RadixTree, EmptyLookups)
{
    RadixTree tree;
    EXPECT_TRUE(tree.empty());
    EXPECT_EQ(tree.lookup(0), nullptr);
    EXPECT_EQ(tree.lookup(~0ULL), nullptr);
    EXPECT_EQ(tree.erase(5), nullptr);
    EXPECT_EQ(tree.nodeCount(), 0u);
}

TEST(RadixTree, InsertLookupErase)
{
    RadixTree tree;
    EXPECT_TRUE(tree.insert(42, &value_a));
    EXPECT_EQ(tree.size(), 1u);
    EXPECT_EQ(tree.lookup(42), &value_a);
    EXPECT_EQ(tree.lookup(43), nullptr);
    EXPECT_EQ(tree.erase(42), &value_a);
    EXPECT_TRUE(tree.empty());
    EXPECT_EQ(tree.nodeCount(), 0u) << "empty tree must free all nodes";
}

TEST(RadixTree, DuplicateInsertRejected)
{
    RadixTree tree;
    EXPECT_TRUE(tree.insert(7, &value_a));
    EXPECT_FALSE(tree.insert(7, &value_b));
    EXPECT_EQ(tree.lookup(7), &value_a);
}

TEST(RadixTree, LargeIndicesGrowHeight)
{
    RadixTree tree;
    EXPECT_TRUE(tree.insert(0, &value_a));
    EXPECT_TRUE(tree.insert(1ULL << 40, &value_b));
    EXPECT_TRUE(tree.insert(~0ULL, &value_c));
    EXPECT_EQ(tree.lookup(0), &value_a);
    EXPECT_EQ(tree.lookup(1ULL << 40), &value_b);
    EXPECT_EQ(tree.lookup(~0ULL), &value_c);
    EXPECT_EQ(tree.size(), 3u);
    // Erasing the deep entries shrinks the tree again.
    tree.erase(~0ULL);
    tree.erase(1ULL << 40);
    EXPECT_EQ(tree.lookup(0), &value_a);
}

TEST(RadixTree, DirtyTagPropagation)
{
    RadixTree tree;
    tree.insert(100, &value_a);
    tree.insert(200, &value_b);
    EXPECT_FALSE(tree.getTag(100, RadixTag::Dirty));
    tree.setTag(100, RadixTag::Dirty);
    EXPECT_TRUE(tree.getTag(100, RadixTag::Dirty));
    EXPECT_FALSE(tree.getTag(200, RadixTag::Dirty));
    // Tag lookup finds only the tagged slot.
    auto dirty = tree.gangLookupTag(0, 16, RadixTag::Dirty);
    ASSERT_EQ(dirty.size(), 1u);
    EXPECT_EQ(dirty[0].first, 100u);
    EXPECT_EQ(dirty[0].second, &value_a);
    tree.clearTag(100, RadixTag::Dirty);
    EXPECT_FALSE(tree.getTag(100, RadixTag::Dirty));
    EXPECT_TRUE(tree.gangLookupTag(0, 16, RadixTag::Dirty).empty());
}

TEST(RadixTree, TagClearedOnErase)
{
    RadixTree tree;
    tree.insert(5000, &value_a);
    tree.setTag(5000, RadixTag::Dirty);
    tree.erase(5000);
    tree.insert(5000, &value_b);
    EXPECT_FALSE(tree.getTag(5000, RadixTag::Dirty))
        << "stale tag survived erase";
}

TEST(RadixTree, TagsIndependent)
{
    RadixTree tree;
    tree.insert(1, &value_a);
    tree.setTag(1, RadixTag::Dirty);
    EXPECT_FALSE(tree.getTag(1, RadixTag::Towrite));
    tree.setTag(1, RadixTag::Towrite);
    tree.clearTag(1, RadixTag::Dirty);
    EXPECT_TRUE(tree.getTag(1, RadixTag::Towrite));
}

TEST(RadixTree, GangLookupOrdered)
{
    RadixTree tree;
    int values[10];
    const uint64_t indices[] = {3, 70, 65, 4096, 4097, 1, 100000};
    for (size_t i = 0; i < std::size(indices); ++i)
        tree.insert(indices[i], &values[i]);

    auto all = tree.gangLookup(0, 100);
    ASSERT_EQ(all.size(), std::size(indices));
    for (size_t i = 1; i < all.size(); ++i)
        EXPECT_LT(all[i - 1].first, all[i].first) << "not index-ordered";

    auto from65 = tree.gangLookup(65, 100);
    ASSERT_EQ(from65.size(), 5u);
    EXPECT_EQ(from65.front().first, 65u);

    auto limited = tree.gangLookup(0, 3);
    EXPECT_EQ(limited.size(), 3u);
}

TEST(RadixTree, GangLookupOutParamMatchesReturning)
{
    RadixTree tree;
    int values[8];
    const uint64_t indices[] = {2, 64, 66, 4095, 4096, 1ULL << 30};
    for (size_t i = 0; i < std::size(indices); ++i)
        tree.insert(indices[i], &values[i]);
    tree.setTag(66, RadixTag::Dirty);
    tree.setTag(4096, RadixTag::Dirty);

    std::vector<std::pair<uint64_t, void *>> out;
    tree.gangLookup(0, 100, out);
    EXPECT_EQ(out, tree.gangLookup(0, 100));

    tree.gangLookupTag(0, 100, RadixTag::Dirty, out);
    EXPECT_EQ(out, tree.gangLookupTag(0, 100, RadixTag::Dirty));
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].first, 66u);
    EXPECT_EQ(out[1].first, 4096u);
}

TEST(RadixTree, GangLookupOutParamClearsStaleContents)
{
    RadixTree tree;
    tree.insert(10, &value_a);
    std::vector<std::pair<uint64_t, void *>> out;
    out.emplace_back(999, &value_c);  // stale garbage from a prior use
    tree.gangLookup(0, 100, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].first, 10u);

    out.emplace_back(999, &value_c);
    tree.gangLookupTag(0, 100, RadixTag::Dirty, out);
    EXPECT_TRUE(out.empty()) << "untagged tree must yield nothing";
}

TEST(RadixTree, GangLookupOutParamIsAllocationFreeWhenWarm)
{
    RadixTree tree;
    int values[64];
    for (uint64_t i = 0; i < 64; ++i) {
        tree.insert(i * 3, &values[i]);
        tree.setTag(i * 3, RadixTag::Dirty);
    }
    std::vector<std::pair<uint64_t, void *>> out;
    tree.gangLookupTag(0, 64, RadixTag::Dirty, out);  // warm the buffer
    ASSERT_EQ(out.size(), 64u);
    const size_t warm_capacity = out.capacity();
    const auto *warm_data = out.data();
    for (int pass = 0; pass < 16; ++pass) {
        tree.gangLookupTag(0, 64, RadixTag::Dirty, out);
        EXPECT_EQ(out.capacity(), warm_capacity);
        EXPECT_EQ(out.data(), warm_data)
            << "warm gang lookup reallocated its buffer";
    }
}

TEST(RadixTree, NodeObserverBalances)
{
    RadixTree tree;
    int64_t live_nodes = 0;
    tree.setNodeObserver([&](bool created) {
        live_nodes += created ? 1 : -1;
    });
    for (uint64_t i = 0; i < 1000; ++i)
        tree.insert(i * 977, &value_a);
    EXPECT_EQ(static_cast<uint64_t>(live_nodes), tree.nodeCount());
    for (uint64_t i = 0; i < 1000; ++i)
        tree.erase(i * 977);
    EXPECT_EQ(live_nodes, 0);
    EXPECT_EQ(tree.nodeCount(), 0u);
}

TEST(RadixTree, ClearReleasesEverything)
{
    RadixTree tree;
    for (uint64_t i = 0; i < 500; ++i)
        tree.insert(i, &value_a);
    tree.clear();
    EXPECT_TRUE(tree.empty());
    EXPECT_EQ(tree.nodeCount(), 0u);
    EXPECT_EQ(tree.lookup(10), nullptr);
    // Reusable after clear.
    EXPECT_TRUE(tree.insert(10, &value_b));
}

class RadixProperty : public ::testing::TestWithParam<int>
{};

TEST_P(RadixProperty, MatchesReferenceModel)
{
    Rng rng(static_cast<uint64_t>(GetParam()));
    RadixTree tree;
    std::map<uint64_t, void *> model;
    int slots[8] = {};  // address-only sentinels; locals stay run-private

    for (int step = 0; step < 6000; ++step) {
        // Mix of dense-low and sparse-high indices.
        uint64_t index = rng.nextBool(0.7)
            ? rng.nextBounded(2048)
            : rng.next() >> static_cast<unsigned>(rng.nextBounded(30));
        void *value = &slots[rng.nextBounded(8)];
        const double action = rng.nextDouble();
        if (action < 0.5) {
            const bool inserted = tree.insert(index, value);
            const bool expected = model.find(index) == model.end();
            ASSERT_EQ(inserted, expected);
            if (inserted)
                model[index] = value;
        } else if (action < 0.8) {
            auto it = model.find(index);
            ASSERT_EQ(tree.lookup(index),
                      it == model.end() ? nullptr : it->second);
        } else {
            auto it = model.find(index);
            void *erased = tree.erase(index);
            ASSERT_EQ(erased, it == model.end() ? nullptr : it->second);
            if (it != model.end())
                model.erase(it);
        }
        ASSERT_EQ(tree.size(), model.size());
    }
    // Gang lookup sweeps the whole key space in model order.
    uint64_t start = 0;
    auto model_it = model.begin();
    while (true) {
        auto chunk = tree.gangLookup(start, 64);
        if (chunk.empty())
            break;
        for (auto &[index, item] : chunk) {
            ASSERT_NE(model_it, model.end());
            EXPECT_EQ(index, model_it->first);
            EXPECT_EQ(item, model_it->second);
            ++model_it;
        }
        if (chunk.back().first == ~0ULL)
            break;
        start = chunk.back().first + 1;
    }
    EXPECT_EQ(model_it, model.end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RadixProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 6666));

} // namespace
} // namespace kloc
