/**
 * @file
 * Red-black tree unit and property tests: structural invariants are
 * validated against the textbook definition after every mutation,
 * and behaviour is checked against std::map as a reference model.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "base/rbtree.hh"
#include "base/rng.hh"

namespace kloc {
namespace {

struct Item
{
    explicit Item(uint64_t k) : key(k) {}

    uint64_t key;
    RbNode hook;
};

struct ItemKey
{
    uint64_t operator()(const Item &item) const { return item.key; }
};

using Tree = RbTree<Item, &Item::hook, ItemKey>;

TEST(RbTree, EmptyTree)
{
    Tree tree;
    EXPECT_TRUE(tree.empty());
    EXPECT_EQ(tree.size(), 0u);
    EXPECT_EQ(tree.find(42u), nullptr);
    EXPECT_EQ(tree.first(), nullptr);
    tree.validate();
}

TEST(RbTree, SingleInsertFind)
{
    Tree tree;
    Item item(7);
    EXPECT_TRUE(tree.insert(&item));
    EXPECT_EQ(tree.size(), 1u);
    EXPECT_EQ(tree.find(7u), &item);
    EXPECT_EQ(tree.find(8u), nullptr);
    EXPECT_TRUE(item.hook.linked());
    tree.validate();
}

TEST(RbTree, DuplicateRejected)
{
    Tree tree;
    Item a(5), b(5);
    EXPECT_TRUE(tree.insert(&a));
    EXPECT_FALSE(tree.insert(&b));
    EXPECT_EQ(tree.size(), 1u);
    EXPECT_FALSE(b.hook.linked());
}

TEST(RbTree, EraseRestoresUnlinked)
{
    Tree tree;
    Item item(3);
    tree.insert(&item);
    tree.erase(&item);
    EXPECT_FALSE(item.hook.linked());
    EXPECT_TRUE(tree.empty());
    // Reinsertion after erase works.
    EXPECT_TRUE(tree.insert(&item));
    EXPECT_EQ(tree.find(3u), &item);
}

TEST(RbTree, InOrderIteration)
{
    Tree tree;
    std::vector<std::unique_ptr<Item>> storage;
    const std::vector<uint64_t> keys = {5, 1, 9, 3, 7, 2, 8, 4, 6, 0};
    for (const uint64_t key : keys) {
        storage.push_back(std::make_unique<Item>(key));
        tree.insert(storage.back().get());
    }
    uint64_t expected = 0;
    for (Item *item = tree.first(); item; item = tree.next(item))
        EXPECT_EQ(item->key, expected++);
    EXPECT_EQ(expected, keys.size());
}

TEST(RbTree, LowerBound)
{
    Tree tree;
    std::vector<std::unique_ptr<Item>> storage;
    for (uint64_t key : {10u, 20u, 30u}) {
        storage.push_back(std::make_unique<Item>(key));
        tree.insert(storage.back().get());
    }
    EXPECT_EQ(tree.lowerBound(5u)->key, 10u);
    EXPECT_EQ(tree.lowerBound(10u)->key, 10u);
    EXPECT_EQ(tree.lowerBound(11u)->key, 20u);
    EXPECT_EQ(tree.lowerBound(30u)->key, 30u);
    EXPECT_EQ(tree.lowerBound(31u), nullptr);
}

TEST(RbTree, NodesVisitedGrowsLogarithmically)
{
    Tree tree;
    std::vector<std::unique_ptr<Item>> storage;
    for (uint64_t key = 0; key < 1024; ++key) {
        storage.push_back(std::make_unique<Item>(key));
        tree.insert(storage.back().get());
    }
    const uint64_t before = tree.nodesVisited();
    tree.find(777u);
    const uint64_t depth = tree.nodesVisited() - before;
    // A 1024-node red-black tree has height <= 2*log2(1025) ~= 20.
    EXPECT_GE(depth, 1u);
    EXPECT_LE(depth, 20u);
}

/** Parameterised random-operation property test vs. std::map. */
class RbTreeProperty : public ::testing::TestWithParam<int>
{};

TEST_P(RbTreeProperty, MatchesReferenceModel)
{
    const int seed = GetParam();
    Rng rng(static_cast<uint64_t>(seed));
    Tree tree;
    std::map<uint64_t, std::unique_ptr<Item>> model;

    for (int step = 0; step < 4000; ++step) {
        const uint64_t key = rng.nextBounded(512);
        const double action = rng.nextDouble();
        if (action < 0.55) {
            auto item = std::make_unique<Item>(key);
            const bool inserted = tree.insert(item.get());
            const bool expected = model.find(key) == model.end();
            ASSERT_EQ(inserted, expected) << "key " << key;
            if (inserted)
                model.emplace(key, std::move(item));
        } else if (action < 0.9) {
            auto it = model.find(key);
            Item *found = tree.find(key);
            if (it == model.end()) {
                ASSERT_EQ(found, nullptr);
            } else {
                ASSERT_EQ(found, it->second.get());
                tree.erase(found);
                model.erase(it);
            }
        } else {
            ASSERT_EQ(tree.size(), model.size());
            tree.validate();
        }
    }
    tree.validate();
    ASSERT_EQ(tree.size(), model.size());
    // Full in-order sweep agrees with the model.
    auto model_it = model.begin();
    for (Item *item = tree.first(); item; item = tree.next(item)) {
        ASSERT_NE(model_it, model.end());
        EXPECT_EQ(item->key, model_it->first);
        ++model_it;
    }
    EXPECT_EQ(model_it, model.end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RbTreeProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 99, 12345));

TEST(RbTree, AscendingAndDescendingInsertStayBalanced)
{
    for (const bool ascending : {true, false}) {
        Tree tree;
        std::vector<std::unique_ptr<Item>> storage;
        for (uint64_t i = 0; i < 2048; ++i) {
            const uint64_t key = ascending ? i : 2048 - i;
            storage.push_back(std::make_unique<Item>(key));
            tree.insert(storage.back().get());
        }
        tree.validate();
        const uint64_t before = tree.nodesVisited();
        tree.find(ascending ? 2047u : 1u);
        EXPECT_LE(tree.nodesVisited() - before, 24u)
            << "degenerate tree detected";
    }
}

} // namespace
} // namespace kloc
