/**
 * @file
 * PRNG and Zipfian generator tests: determinism, bounds, and
 * distribution-shape properties (skew, coverage).
 */

#include <gtest/gtest.h>

#include <vector>

#include "base/rng.hh"

namespace kloc {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    for (const uint64_t bound : {1ULL, 2ULL, 10ULL, 1000ULL, 1ULL << 40}) {
        for (int i = 0; i < 200; ++i)
            ASSERT_LT(rng.nextBounded(bound), bound);
    }
}

TEST(Rng, BoundOneAlwaysZero)
{
    Rng rng(9);
    for (int i = 0; i < 50; ++i)
        ASSERT_EQ(rng.nextBounded(1), 0u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.nextDouble();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliRate)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.nextBool(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
    for (int i = 0; i < 100; ++i) {
        ASSERT_FALSE(rng.nextBool(0.0));
        ASSERT_TRUE(rng.nextBool(1.0));
    }
}

TEST(Rng, UniformCoverage)
{
    Rng rng(17);
    std::vector<int> buckets(16, 0);
    for (int i = 0; i < 16000; ++i)
        ++buckets[rng.nextBounded(16)];
    for (const int count : buckets)
        EXPECT_NEAR(count, 1000, 200);
}

TEST(Zipfian, InRangeAndDeterministic)
{
    ZipfianGenerator a(1000, 0.99, 5);
    ZipfianGenerator b(1000, 0.99, 5);
    for (int i = 0; i < 1000; ++i) {
        const uint64_t v = a.next();
        ASSERT_LT(v, 1000u);
        ASSERT_EQ(v, b.next());
    }
}

TEST(Zipfian, SkewConcentratesOnLowIndices)
{
    ZipfianGenerator zipf(10000, 0.99, 21);
    uint64_t in_top_100 = 0;
    const int samples = 20000;
    for (int i = 0; i < samples; ++i) {
        if (zipf.next() < 100)
            ++in_top_100;
    }
    // Under theta=0.99, the top 1% of items draws >40% of samples.
    EXPECT_GT(in_top_100, static_cast<uint64_t>(samples) * 4 / 10);
}

TEST(Zipfian, LowerThetaIsFlatter)
{
    ZipfianGenerator hot(10000, 0.99, 23);
    ZipfianGenerator mild(10000, 0.5, 23);
    uint64_t hot_top = 0, mild_top = 0;
    for (int i = 0; i < 20000; ++i) {
        hot_top += hot.next() < 100 ? 1 : 0;
        mild_top += mild.next() < 100 ? 1 : 0;
    }
    EXPECT_GT(hot_top, mild_top * 2);
}

TEST(Zipfian, SingleItemDomain)
{
    ZipfianGenerator zipf(1, 0.99, 31);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(zipf.next(), 0u);
}

} // namespace
} // namespace kloc
