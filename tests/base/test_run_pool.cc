/**
 * @file
 * RunPool unit tests: submission-order merging, exception semantics
 * (first-by-index rethrow after a full drain), reuse after wait(),
 * and a throw-heavy stress run that must not wedge the pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "base/run_pool.hh"

namespace kloc {
namespace {

TEST(RunPool, ClampsToAtLeastOneWorker)
{
    RunPool pool(0);
    EXPECT_EQ(pool.workers(), 1u);
}

TEST(RunPool, ResultsComeBackInSubmissionOrder)
{
    RunPool pool(8);
    // Later submissions sleep less, so completion order inverts
    // submission order — the result vector must not care.
    const std::vector<int> out = runIndexed<int>(pool, 32, [](size_t i) {
        std::this_thread::sleep_for(
            std::chrono::microseconds((32 - i) * 50));
        return static_cast<int>(i) * 3;
    });
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i) * 3);
}

TEST(RunPool, SingleWorkerExecutesSerially)
{
    RunPool pool(1);
    std::vector<size_t> order;
    runIndexedVoid(pool, 16, [&order](size_t i) { order.push_back(i); });
    std::vector<size_t> expect(16);
    std::iota(expect.begin(), expect.end(), size_t{0});
    EXPECT_EQ(order, expect);
}

TEST(RunPool, WaitRethrowsLowestSubmissionIndexException)
{
    RunPool pool(4);
    std::atomic<int> ran{0};
    for (size_t i = 0; i < 16; ++i) {
        pool.submit([&ran, i] {
            // Index 9 finishes (and throws) well before index 3, but
            // wait() must still surface index 3's exception — the one
            // a serial loop would have hit first.
            if (i == 9)
                throw std::runtime_error("late submit, early throw");
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            if (i == 3)
                throw std::runtime_error("first by submission index");
            ++ran;
        });
    }
    try {
        pool.wait();
        FAIL() << "wait() should have rethrown";
    } catch (const std::runtime_error &err) {
        EXPECT_STREQ(err.what(), "first by submission index");
    }
    // Every non-throwing run still executed: a throw drains, never
    // cancels.
    EXPECT_EQ(ran.load(), 14);
}

TEST(RunPool, PoolRemainsUsableAfterAThrow)
{
    RunPool pool(4);
    pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);

    // The error is consumed: the next batch starts clean.
    const std::vector<int> out =
        runIndexed<int>(pool, 8, [](size_t i) { return static_cast<int>(i); });
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i));
}

TEST(RunPool, ThrowHeavyStressDrains)
{
    // Half the runs throw, from every worker at once; the pool must
    // drain all of them and report the first-by-index error.
    RunPool pool(8);
    std::atomic<int> completed{0};
    for (size_t i = 0; i < 256; ++i) {
        pool.submit([&completed, i] {
            if (i % 2 == 1)
                throw std::runtime_error("odd run " + std::to_string(i));
            ++completed;
        });
    }
    try {
        pool.wait();
        FAIL() << "wait() should have rethrown";
    } catch (const std::runtime_error &err) {
        EXPECT_STREQ(err.what(), "odd run 1");
    }
    EXPECT_EQ(completed.load(), 128);
}

TEST(RunPool, DestructorDrainsOutstandingRuns)
{
    std::atomic<int> ran{0};
    {
        RunPool pool(2);
        for (int i = 0; i < 64; ++i)
            pool.submit([&ran] { ++ran; });
        // No wait(): the destructor must finish the queue.
    }
    EXPECT_EQ(ran.load(), 64);
}

TEST(RunPool, DefaultWorkersHonoursKlocJobs)
{
    // setenv on the test thread while no pool threads exist — the
    // getenv-vs-setenv race the BenchConfig refactor removed does not
    // apply here.
    setenv("KLOC_JOBS", "3", 1);
    EXPECT_EQ(RunPool::defaultWorkers(), 3u);
    setenv("KLOC_JOBS", "0", 1);   // non-positive falls back
    EXPECT_GE(RunPool::defaultWorkers(), 1u);
    unsetenv("KLOC_JOBS");
    EXPECT_GE(RunPool::defaultWorkers(), 1u);
}

} // namespace
} // namespace kloc
