/**
 * @file
 * Statistics facility tests: distributions, log-bucketed histograms
 * (the Fig. 2d reporting primitive), and StatSet snapshots.
 */

#include <gtest/gtest.h>

#include "base/stats.hh"

namespace kloc {
namespace {

TEST(Distribution, EmptyIsZero)
{
    Distribution dist;
    EXPECT_EQ(dist.count(), 0u);
    EXPECT_EQ(dist.mean(), 0.0);
    EXPECT_EQ(dist.min(), 0.0);
    EXPECT_EQ(dist.max(), 0.0);
}

TEST(Distribution, TracksMoments)
{
    Distribution dist;
    for (const double v : {4.0, 8.0, 6.0})
        dist.sample(v);
    EXPECT_EQ(dist.count(), 3u);
    EXPECT_DOUBLE_EQ(dist.sum(), 18.0);
    EXPECT_DOUBLE_EQ(dist.mean(), 6.0);
    EXPECT_DOUBLE_EQ(dist.min(), 4.0);
    EXPECT_DOUBLE_EQ(dist.max(), 8.0);
}

TEST(Distribution, ResetForgets)
{
    Distribution dist;
    dist.sample(100);
    dist.reset();
    EXPECT_EQ(dist.count(), 0u);
    dist.sample(5);
    EXPECT_DOUBLE_EQ(dist.min(), 5.0);
    EXPECT_DOUBLE_EQ(dist.max(), 5.0);
}

TEST(Histogram, BucketsByBitWidth)
{
    Histogram hist;
    hist.sample(0);    // bucket 0
    hist.sample(1);    // bucket 1
    hist.sample(2);    // bucket 2
    hist.sample(3);    // bucket 2
    hist.sample(255);  // bucket 8
    hist.sample(256);  // bucket 9
    EXPECT_EQ(hist.bucketCount(0), 1u);
    EXPECT_EQ(hist.bucketCount(1), 1u);
    EXPECT_EQ(hist.bucketCount(2), 2u);
    EXPECT_EQ(hist.bucketCount(8), 1u);
    EXPECT_EQ(hist.bucketCount(9), 1u);
    EXPECT_EQ(hist.dist().count(), 6u);
}

TEST(Histogram, PercentileUpperBound)
{
    Histogram hist;
    // 90 small samples, 10 large ones.
    for (int i = 0; i < 90; ++i)
        hist.sample(10);
    for (int i = 0; i < 10; ++i)
        hist.sample(100000);
    EXPECT_LE(hist.percentileUpperBound(0.5), 15u);
    EXPECT_GT(hist.percentileUpperBound(0.99), 65000u);
}

TEST(Histogram, HugeValuesClampToLastBucket)
{
    Histogram hist;
    hist.sample(~0ULL);
    EXPECT_EQ(hist.bucketCount(Histogram::kBuckets - 1), 1u);
}

TEST(Histogram, EdgeValuesPinExactBuckets)
{
    // Bucket index is the value's bit width: 64-bit-wide values get
    // their own bucket 64 instead of folding into bucket 63 (which
    // holds widths of 63, i.e. values up to 2^63 - 1).
    Histogram hist;
    hist.sample(0);                  // width 0  -> bucket 0
    hist.sample(1);                  // width 1  -> bucket 1
    hist.sample((1ULL << 63) - 1);   // width 63 -> bucket 63
    hist.sample(1ULL << 63);         // width 64 -> bucket 64
    hist.sample(~0ULL);              // width 64 -> bucket 64
    EXPECT_EQ(hist.bucketCount(0), 1u);
    EXPECT_EQ(hist.bucketCount(1), 1u);
    EXPECT_EQ(hist.bucketCount(63), 1u);
    EXPECT_EQ(hist.bucketCount(64), 2u);
    EXPECT_EQ(hist.dist().count(), 5u);
}

TEST(Histogram, TopBucketPercentileDoesNotOverflow)
{
    Histogram hist;
    for (int i = 0; i < 4; ++i)
        hist.sample(~0ULL);
    // All mass sits in bucket 64, whose upper bound is UINT64_MAX —
    // not (1 << 64), which would be undefined.
    EXPECT_EQ(hist.percentileUpperBound(0.5), ~0ULL);
    EXPECT_EQ(hist.percentileUpperBound(1.0), ~0ULL);
}

TEST(StatSet, SetGetHas)
{
    StatSet stats;
    EXPECT_FALSE(stats.has("x"));
    EXPECT_EQ(stats.get("x"), 0.0);
    stats.set("x", 3.5);
    EXPECT_TRUE(stats.has("x"));
    EXPECT_DOUBLE_EQ(stats.get("x"), 3.5);
    stats.set("x", 4.0);  // overwrite
    EXPECT_DOUBLE_EQ(stats.get("x"), 4.0);
}

TEST(StatSet, ToStringListsAll)
{
    StatSet stats;
    stats.set("alpha", 1);
    stats.set("beta", 2);
    const std::string text = stats.toString();
    EXPECT_NE(text.find("alpha 1"), std::string::npos);
    EXPECT_NE(text.find("beta 2"), std::string::npos);
}

} // namespace
} // namespace kloc
