/**
 * @file
 * Randomised invariant test of the KLOC manager: a long random
 * sequence of knode lifecycle operations, object tracking, hotness
 * transitions, daemon passes, and migrations, with global invariants
 * checked throughout:
 *
 *  - object counts in knode trees match a shadow model
 *  - frames' owner back-pointers track their knode
 *  - metadata accounting never underflows
 *  - every frame is freed by the end (no leaks)
 *
 * The whole run also executes with tracing on and the trace-level
 * InvariantChecker attached in strict mode, so the cross-subsystem
 * ordering rules hold under random churn too.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "base/rng.hh"
#include "core/kloc_manager.hh"
#include "fs/objects.hh"
#include "mem/placement.hh"
#include "sim/machine.hh"
#include "trace/invariants.hh"

namespace kloc {
namespace {

class KlocFuzz : public ::testing::TestWithParam<int>
{};

TEST_P(KlocFuzz, InvariantsHoldUnderChurn)
{
    Machine machine(8, 1);
    TierManager tiers(machine);
    LruEngine lru(machine, tiers);
    MemAccessor mem(machine, lru);
    MigrationEngine migrator(machine, tiers, lru);
    KernelHeap heap(mem, tiers);
    KlocManager kloc(heap, migrator);

    TierSpec spec;
    spec.name = "fast";
    spec.capacity = 512 * kPageSize;
    spec.readLatency = Tick{80};
    spec.writeLatency = Tick{80};
    spec.readBandwidth = 10 * kGiB;
    spec.writeBandwidth = 10 * kGiB;
    const TierId fast = tiers.addTier(spec);
    spec.name = "slow";
    spec.capacity = 2048 * kPageSize;
    const TierId slow = tiers.addTier(spec);

    StaticPlacement placement({fast, slow}, {fast, slow});
    heap.setPolicy(&placement);
    heap.setKlocInterface(true);
    kloc.setEnabled(true);
    kloc.setTierOrder({fast, slow});

    // Trace every event of the run and check cross-subsystem
    // invariants online. Strict: nothing was allocated yet.
    machine.tracer().setEnabled(true);
    InvariantChecker checker(machine.tracer(), /*strict=*/true);

    Rng rng(static_cast<uint64_t>(GetParam()));
    struct Shadow
    {
        Knode *knode;
        std::vector<std::unique_ptr<KernelObject>> objects;
    };
    std::map<uint64_t, Shadow> model;
    uint64_t next_id = 1;

    auto random_entry = [&]() -> Shadow * {
        if (model.empty())
            return nullptr;
        auto it = model.begin();
        std::advance(it, static_cast<long>(
                             rng.nextBounded(model.size())));
        return &it->second;
    };

    for (int step = 0; step < 8000; ++step) {
        const double action = rng.nextDouble();
        if (action < 0.12) {
            const uint64_t id = next_id++;
            Knode *knode = kloc.mapKnode(id);
            ASSERT_NE(knode, nullptr);
            model[id] = Shadow{knode, {}};
        } else if (action < 0.42) {
            Shadow *entry = random_entry();
            if (!entry)
                continue;
            const KobjKind kind = rng.nextBool(0.5)
                ? KobjKind::PageCachePage
                : (rng.nextBool(0.5) ? KobjKind::Extent
                                     : KobjKind::JournalRecord);
            auto obj = std::make_unique<KernelObject>(kind);
            if (!heap.allocBacking(*obj, entry->knode->inuse,
                                   entry->knode->id)) {
                continue;
            }
            kloc.addObject(entry->knode, obj.get());
            ASSERT_EQ(obj->knode, entry->knode);
            ASSERT_EQ(obj->frame()->owner, entry->knode);
            entry->objects.push_back(std::move(obj));
        } else if (action < 0.6) {
            Shadow *entry = random_entry();
            if (!entry || entry->objects.empty())
                continue;
            const auto idx = rng.nextBounded(entry->objects.size());
            auto obj = std::move(entry->objects[idx]);
            entry->objects[idx] = std::move(entry->objects.back());
            entry->objects.pop_back();
            kloc.removeObject(obj.get());
            heap.freeBacking(*obj);
        } else if (action < 0.72) {
            Shadow *entry = random_entry();
            if (!entry)
                continue;
            machine.setCurrentCpu(
                static_cast<unsigned>(rng.nextBounded(8)));
            if (rng.nextBool(0.6))
                kloc.markActive(entry->knode);
            else
                kloc.markInactive(entry->knode);
        } else if (action < 0.8) {
            machine.charge(
                static_cast<int64_t>(rng.nextBounded(30)) * kMillisecond);
            kloc.runDemotePass();
            kloc.runPromotePass();
            kloc.runWatermarkPass();
        } else if (action < 0.88) {
            Shadow *entry = random_entry();
            if (entry) {
                kloc.migrateKnodeObjects(
                    entry->knode, rng.nextBool(0.5) ? slow : fast);
            }
        } else if (action < 0.95) {
            // Lookup path + invariant spot checks.
            Shadow *entry = random_entry();
            if (!entry)
                continue;
            ASSERT_EQ(kloc.findKnode(entry->knode->id), entry->knode);
            ASSERT_EQ(entry->knode->objectCount(),
                      entry->objects.size());
        } else {
            // Destroy a whole KLOC.
            Shadow *entry = random_entry();
            if (!entry)
                continue;
            const uint64_t id = entry->knode->id;
            for (auto &obj : entry->objects) {
                kloc.removeObject(obj.get());
                heap.freeBacking(*obj);
            }
            entry->objects.clear();
            kloc.unmapKnode(entry->knode);
            model.erase(id);
        }
        if (step % 1000 == 0) {
            ASSERT_EQ(kloc.knodeCount(), model.size());
            ASSERT_GE(kloc.peakMetadataBytes(), kloc.metadataBytes());
        }
    }

    // Drain: everything must come back.
    for (auto &[id, entry] : model) {
        for (auto &obj : entry.objects) {
            kloc.removeObject(obj.get());
            heap.freeBacking(*obj);
        }
        entry.objects.clear();
        kloc.unmapKnode(entry.knode);
    }
    model.clear();
    EXPECT_EQ(kloc.knodeCount(), 0u);
    // The only frames left are slab empty-pool retention.
    EXPECT_LE(tiers.liveFrames(), 3 * KmemCache::kEmptyRetention);

    EXPECT_GT(checker.eventsChecked(), 0u);
    EXPECT_TRUE(checker.clean()) << checker.report();
    machine.tracer().setEnabled(false);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KlocFuzz,
                         ::testing::Values(7, 77, 777, 7777));

} // namespace
} // namespace kloc
