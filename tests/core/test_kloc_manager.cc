/**
 * @file
 * KLOC core tests: the Table 2 API surface, knode/kmap lifecycle,
 * per-CPU fast paths, object tracking in the split rbtrees, the
 * migration daemon's demote/promote/watermark behaviour, the class
 * mask (Fig. 5c), and metadata accounting (Table 6).
 */

#include <gtest/gtest.h>

#include "core/kloc_manager.hh"
#include "fs/objects.hh"
#include "mem/placement.hh"
#include "sim/machine.hh"

namespace kloc {
namespace {

class KlocTest : public ::testing::Test
{
  protected:
    KlocTest()
        : machine(4, 1), tiers(machine), lru(machine, tiers),
          mem(machine, lru), migrator(machine, tiers, lru),
          heap(mem, tiers), kloc(heap, migrator)
    {
        TierSpec spec;
        spec.name = "fast";
        spec.capacity = 256 * kPageSize;
        spec.readLatency = Tick{80};
        spec.writeLatency = Tick{80};
        spec.readBandwidth = 10 * kGiB;
        spec.writeBandwidth = 10 * kGiB;
        fastId = tiers.addTier(spec);
        spec.name = "slow";
        spec.capacity = 1024 * kPageSize;
        slowId = tiers.addTier(spec);

        placement = std::make_unique<StaticPlacement>(
            TierPreference{fastId, slowId},
            TierPreference{fastId, slowId});
        heap.setPolicy(placement.get());
        heap.setKlocInterface(true);
        kloc.setEnabled(true);
        kloc.setTierOrder({fastId, slowId});
    }

    /**
     * Push the fast tier above the low watermark so demote passes
     * actually migrate (they are pressure-gated, §4.1).
     */
    void
    applyPressure()
    {
        Tier &fast = tiers.tier(fastId);
        while (fast.utilization() < KlocManager::kLowWatermark) {
            Frame *frame =
                tiers.alloc(0, ObjClass::App, true, {fastId});
            ASSERT_NE(frame, nullptr);
            _pressure.push_back(frame);
        }
    }

    /** Make a tracked page-cache page under @p knode. */
    PageCachePage *
    makePage(Knode *knode)
    {
        auto *page = new PageCachePage();
        EXPECT_TRUE(heap.allocBacking(*page, knode->inuse, knode->id));
        kloc.addObject(knode, page);
        return page;
    }

    void
    destroyPage(PageCachePage *page)
    {
        if (page->knode)
            kloc.removeObject(page);
        heap.freeBacking(*page);
        delete page;
    }

    Machine machine;
    TierManager tiers;
    LruEngine lru;
    MemAccessor mem;
    MigrationEngine migrator;
    KernelHeap heap;
    KlocManager kloc;
    std::unique_ptr<StaticPlacement> placement;
    std::vector<Frame *> _pressure;
    TierId fastId = kInvalidTier;
    TierId slowId = kInvalidTier;
};

TEST_F(KlocTest, DisabledManagerReturnsNull)
{
    kloc.setEnabled(false);
    EXPECT_EQ(kloc.mapKnode(1), nullptr);
    EXPECT_EQ(kloc.findKnode(1), nullptr);
}

TEST_F(KlocTest, MapAndFindKnode)
{
    Knode *knode = kloc.mapKnode(42);
    ASSERT_NE(knode, nullptr);
    EXPECT_EQ(knode->id, 42u);
    EXPECT_TRUE(knode->inuse);
    EXPECT_TRUE(knode->backing.valid());
    EXPECT_EQ(knode->backing.frame->objClass, ObjClass::KlocMeta);
    EXPECT_EQ(kloc.findKnode(42), knode);
    EXPECT_EQ(kloc.findKnode(43), nullptr);
    EXPECT_EQ(kloc.knodeCount(), 1u);
    kloc.unmapKnode(knode);
    EXPECT_EQ(kloc.knodeCount(), 0u);
}

TEST_F(KlocTest, PerCpuFastPathHitsAndMisses)
{
    Knode *knode = kloc.mapKnode(7);
    machine.setCurrentCpu(0);
    kloc.markActive(knode);  // cached on cpu 0
    kloc.resetStats();
    EXPECT_EQ(kloc.findKnode(7), knode);
    EXPECT_EQ(kloc.stats().perCpuHits, 1u);
    // Another CPU misses its own list and falls back to the kmap.
    machine.setCurrentCpu(1);
    EXPECT_EQ(kloc.findKnode(7), knode);
    EXPECT_EQ(kloc.stats().perCpuMisses, 1u);
    // ...but is cached there now.
    EXPECT_EQ(kloc.findKnode(7), knode);
    EXPECT_EQ(kloc.stats().perCpuHits, 2u);
    kloc.unmapKnode(knode);
}

TEST_F(KlocTest, ObjectsSplitAcrossCacheAndSlabTrees)
{
    Knode *knode = kloc.mapKnode(1);
    PageCachePage *page = makePage(knode);
    auto *dentry = new Dentry();
    ASSERT_TRUE(heap.allocBacking(*dentry, true, knode->id));
    kloc.addObject(knode, dentry);

    EXPECT_EQ(knode->rbCache.size(), 1u);  // page-backed
    EXPECT_EQ(knode->rbSlab.size(), 1u);   // slab-backed
    EXPECT_EQ(knode->objectCount(), 2u);
    EXPECT_EQ(page->knode, knode);
    EXPECT_EQ(page->frame()->owner, knode);

    int cache_count = 0, slab_count = 0;
    kloc.forEachCacheObj(knode, [&](KernelObject *) { ++cache_count; });
    kloc.forEachSlabObj(knode, [&](KernelObject *) { ++slab_count; });
    EXPECT_EQ(cache_count, 1);
    EXPECT_EQ(slab_count, 1);

    kloc.removeObject(dentry);
    heap.freeBacking(*dentry);
    delete dentry;
    destroyPage(page);
    EXPECT_EQ(knode->objectCount(), 0u);
    kloc.unmapKnode(knode);
}

TEST_F(KlocTest, MigrateKnodeObjectsMovesWholeKloc)
{
    Knode *knode = kloc.mapKnode(1);
    std::vector<PageCachePage *> pages;
    for (int i = 0; i < 8; ++i)
        pages.push_back(makePage(knode));
    for (PageCachePage *page : pages)
        EXPECT_EQ(page->frame()->tier, fastId);

    const uint64_t moved = kloc.migrateKnodeObjects(knode, slowId);
    EXPECT_GE(moved, 8u);
    for (PageCachePage *page : pages)
        EXPECT_EQ(page->frame()->tier, slowId);

    for (PageCachePage *page : pages)
        destroyPage(page);
    kloc.unmapKnode(knode);
}

TEST_F(KlocTest, DemotePassHonoursGraceAndReactivation)
{
    applyPressure();
    Knode *knode = kloc.mapKnode(1);
    PageCachePage *page = makePage(knode);
    kloc.markInactive(knode);

    // Within the grace window nothing moves.
    kloc.runDemotePass();
    EXPECT_EQ(page->frame()->tier, fastId);

    // Re-activation cancels the queued demotion entirely.
    kloc.markActive(knode);
    machine.charge(KlocManager::kDemoteGrace + kMillisecond);
    kloc.runDemotePass();
    EXPECT_EQ(page->frame()->tier, fastId);

    // A real close followed by the grace window demotes.
    kloc.markInactive(knode);
    machine.charge(KlocManager::kDemoteGrace + kMillisecond);
    kloc.runDemotePass();
    EXPECT_EQ(page->frame()->tier, slowId);
    EXPECT_GT(kloc.stats().demotedPages, 0u);

    destroyPage(page);
    kloc.unmapKnode(knode);
}

TEST_F(KlocTest, TouchPromotionRequiresReuse)
{
    applyPressure();
    Knode *knode = kloc.mapKnode(1);
    PageCachePage *page = makePage(knode);
    // Demote it first.
    kloc.markInactive(knode);
    machine.charge(KlocManager::kDemoteGrace + kMillisecond);
    kloc.runDemotePass();
    ASSERT_EQ(page->frame()->tier, slowId);
    kloc.markActive(knode);

    // First touch: referenced bit set but no promotion.
    mem.touch(page->frame(), kPageSize, AccessType::Read);
    kloc.maybePromoteOnTouch(page->frame(), knode);
    EXPECT_EQ(page->frame()->tier, slowId);
    // Second touch: promoted.
    mem.touch(page->frame(), kPageSize, AccessType::Read);
    kloc.maybePromoteOnTouch(page->frame(), knode);
    EXPECT_EQ(page->frame()->tier, fastId);
    EXPECT_GT(kloc.stats().promotedPages, 0u);

    destroyPage(page);
    kloc.unmapKnode(knode);
}

TEST_F(KlocTest, ClassMaskExcludesObjects)
{
    Knode *knode = kloc.mapKnode(1);
    PageCachePage *page = makePage(knode);
    // Manage everything except page-cache pages.
    kloc.setManagedClasses(
        ~(1u << static_cast<unsigned>(ObjClass::PageCache)));
    EXPECT_FALSE(kloc.classManaged(ObjClass::PageCache));
    EXPECT_TRUE(kloc.classManaged(ObjClass::Journal));
    EXPECT_EQ(kloc.migrateKnodeObjects(knode, slowId), 0u);
    EXPECT_EQ(page->frame()->tier, fastId);
    kloc.setManagedClasses(~0u);
    destroyPage(page);
    kloc.unmapKnode(knode);
}

TEST_F(KlocTest, LruKnodesOrdersColdestFirst)
{
    Knode *active = kloc.mapKnode(1);
    Knode *idle = kloc.mapKnode(2);
    Knode *aged = kloc.mapKnode(3);
    kloc.markActive(active);
    kloc.markInactive(idle);
    aged->age = 5;

    auto order = kloc.lruKnodes(10);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], idle) << "inactive knode must sort coldest";
    EXPECT_EQ(order[1], aged);
    EXPECT_EQ(order[2], active);

    kloc.unmapKnode(active);
    kloc.unmapKnode(idle);
    kloc.unmapKnode(aged);
}

TEST_F(KlocTest, FindCpuReportsLastToucher)
{
    Knode *knode = kloc.mapKnode(1);
    machine.setCurrentCpu(3);
    kloc.markActive(knode);
    EXPECT_EQ(kloc.findCpu(knode), 3);
    kloc.unmapKnode(knode);
}

TEST_F(KlocTest, MetadataBytesTracksStructures)
{
    EXPECT_EQ(kloc.metadataBytes(), 0u);
    Knode *knode = kloc.mapKnode(1);
    const Bytes with_knode = kloc.metadataBytes();
    EXPECT_GE(with_knode, KlocManager::kKnodeSize);
    PageCachePage *page = makePage(knode);
    EXPECT_GE(kloc.metadataBytes(), with_knode + 8);
    EXPECT_GE(kloc.peakMetadataBytes(), kloc.metadataBytes());
    destroyPage(page);
    kloc.unmapKnode(knode);
}

TEST_F(KlocTest, DaemonRunsOnSchedule)
{
    applyPressure();
    Knode *knode = kloc.mapKnode(1);
    PageCachePage *page = makePage(knode);
    kloc.markInactive(knode);
    kloc.startDaemon(kMillisecond);
    machine.charge(KlocManager::kDemoteGrace + 5 * kMillisecond);
    EXPECT_EQ(page->frame()->tier, slowId)
        << "daemon failed to demote the inactive KLOC";
    kloc.stopDaemon();
    destroyPage(page);
    kloc.unmapKnode(knode);
}

TEST_F(KlocTest, MemLimitCapsFastTierUse)
{
    applyPressure();
    kloc.setMemLimit(fastId, kPageSize);  // absurdly small cap
    // The promote pass respects the cap (indirect check: call the
    // pass with a queued knode and verify nothing is pulled up).
    Knode *knode = kloc.mapKnode(1);
    PageCachePage *page = makePage(knode);
    kloc.markInactive(knode);
    machine.charge(KlocManager::kDemoteGrace + kMillisecond);
    kloc.runDemotePass();
    ASSERT_EQ(page->frame()->tier, slowId);
    kloc.markActive(knode);
    kloc.runPromotePass();
    EXPECT_EQ(page->frame()->tier, slowId) << "promoted past the cap";
    destroyPage(page);
    kloc.unmapKnode(knode);
}

TEST_F(KlocTest, UnmapReleasesKnodeBacking)
{
    const uint64_t before = tiers.liveFrames();
    Knode *knode = kloc.mapKnode(9);
    kloc.unmapKnode(knode);
    EXPECT_EQ(tiers.liveFrames(), before + 1)
        << "knode slab page should be retained by the empty pool only";
    EXPECT_EQ(kloc.stats().knodesDeleted, 1u);
}

} // namespace
} // namespace kloc
